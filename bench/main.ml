(* Benchmark harness.

   Three parts:

   1. Figure regeneration — runs every evaluation experiment of the paper
      (Figs 9-16 plus the §7.2 scalars) at full fidelity and prints the rows
      behind each plot, followed by the design-choice ablations from
      DESIGN.md.

   2. A Bechamel suite with one [Test.make] per table/figure (the quick
      variant of each driver, so the regression harness measures the cost of
      regenerating each experiment) plus microbenchmarks of the simulator's
      hot operations.

   3. A machine-readable summary: BENCH_results.json with per-workload
      simulated cycle counts and the full counter report (including the
      per-port beat/stall counters), for diffing across commits.  Run with
      --json-only to emit just that. *)

open Bechamel
open Toolkit

module Figures = Skipit_workload.Figures
module Ablation = Skipit_workload.Ablation
module Pool = Skipit_par.Pool
module S = Skipit_core.System
module C = Skipit_core.Config
module Trace = Skipit_obs.Trace
module Latency = Skipit_obs.Latency

(* --jobs N (or --jobs=N): worker domains for the figure/ablation drivers
   and the JSON workload set.  Default: one per core, capped at 8. *)
let jobs =
  let jobs = ref (Pool.default_jobs ()) in
  Array.iteri
    (fun i a ->
      let set v = match int_of_string_opt v with Some n when n > 0 -> jobs := n | _ -> () in
      if a = "--jobs" && i + 1 < Array.length Sys.argv then set Sys.argv.(i + 1)
      else if String.starts_with ~prefix:"--jobs=" a then
        set (String.sub a 7 (String.length a - 7)))
    Sys.argv;
  !jobs

(* --out FILE (or --out=FILE): where to write the JSON summary.  The CI
   perf gate uses this to produce a fresh file next to the committed one. *)
let out_path =
  let out = ref "BENCH_results.json" in
  Array.iteri
    (fun i a ->
      if a = "--out" && i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1)
      else if String.starts_with ~prefix:"--out=" a then
        out := String.sub a 6 (String.length a - 6))
    Sys.argv;
  !out

(* --profile: record per-workload GC deltas (minor/major words, collection
   counts) from [Gc.quick_stat] around each serial run.  Allocation is a
   host-side property, so the simulated results are unaffected; the JSON
   gains a "gc" object per workload. *)
let profile = Array.exists (( = ) "--profile") Sys.argv

(* --baseline FILE (or --baseline=FILE): the pinned pre-refactor serial
   measurement that "speedup_vs_serial" is defined against (see
   EXPERIMENTS.md).  Defaults to the committed pin; when the file is
   missing the ratio falls back to this run's own serial pass. *)
let baseline_path =
  let p = ref "bench/baseline_v1.json" in
  Array.iteri
    (fun i a ->
      if a = "--baseline" && i + 1 < Array.length Sys.argv then p := Sys.argv.(i + 1)
      else if String.starts_with ~prefix:"--baseline=" a then
        p := String.sub a 11 (String.length a - 11))
    Sys.argv;
  !p

(* Pull "wall_ms_workloads": <num> out of a results file without a JSON
   dependency: scan for the key, then read the number after the colon. *)
let baseline_workload_ms path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    let key = "\"wall_ms_workloads\"" in
    let klen = String.length key in
    let rec find i =
      if i + klen > String.length s then None
      else if String.sub s i klen = key then begin
        let j = ref (i + klen) in
        while !j < String.length s && (s.[!j] = ':' || s.[!j] = ' ') do incr j done;
        let k = ref !j in
        while
          !k < String.length s
          && (match s.[!k] with '0' .. '9' | '.' | '-' -> true | _ -> false)
        do
          incr k
        done;
        float_of_string_opt (String.sub s !j (!k - !j))
      end
      else find (i + 1)
    in
    find 0
  end

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let figure_test name =
  Test.make ~name
    (Staged.stage (fun () ->
       match Figures.by_name name with
       | Some f -> f ~quick:true null_ppf
       | None -> assert false))

(* Hot-path microbenchmarks of the simulator itself. *)
let sim_tests =
  let make_hot name f =
    Test.make ~name
      (Staged.stage (fun () ->
         let sys = S.create (C.platform ~cores:1 ~skip_it:true ()) in
         let addr = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
         f sys addr))
  in
  [
    make_hot "sim/store+clean+fence" (fun sys addr ->
      S.store sys ~core:0 addr 1;
      S.clean sys ~core:0 addr;
      S.fence sys ~core:0);
    make_hot "sim/load-hit-x100" (fun sys addr ->
      S.store sys ~core:0 addr 1;
      for _ = 1 to 100 do
        ignore (S.load sys ~core:0 addr)
      done);
    make_hot "sim/skip-drop-x100" (fun sys addr ->
      S.store sys ~core:0 addr 1;
      S.clean sys ~core:0 addr;
      S.fence sys ~core:0;
      for _ = 1 to 100 do
        S.clean sys ~core:0 addr
      done;
      S.fence sys ~core:0);
    (* The tuned primitives themselves: the cached-argmin resource and the
       open-addressed per-line table. *)
    Test.make ~name:"sim/resource-acquire-x1000"
      (Staged.stage (fun () ->
         let r = Skipit_sim.Resource.create ~count:8 "bench" in
         for i = 0 to 999 do
           ignore (Skipit_sim.Resource.acquire_finish r ~now:i ~busy:3)
         done));
    Test.make ~name:"sim/int_tbl-mixed-x1000"
      (Staged.stage (fun () ->
         let t = Skipit_sim.Int_tbl.create ~size_hint:256 () in
         for i = 0 to 999 do
           let key = i land 255 * 64 in
           Skipit_sim.Int_tbl.replace t key i;
           ignore (Skipit_sim.Int_tbl.find_default t key ~default:0)
         done));
  ]

let all_tests =
  Test.make_grouped ~name:"skipit" ~fmt:"%s %s"
    (List.map figure_test
       [ "scalar"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "fig15"; "fig16" ]
    @ sim_tests)

let run_bechamel () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n== Bechamel: one Test.make per figure (regeneration cost) ==\n";
  Printf.printf "%-28s %16s %10s\n" "test" "ns/run" "r^2";
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
       let est =
         match Analyze.OLS.estimates ols with Some (x :: _) -> x | Some [] | None -> nan
       in
       let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
       Printf.printf "%-28s %16.0f %10.3f\n" name est r2)

(* == Machine-readable results ========================================== *)

let trace_path name =
  let candidates =
    [
      Printf.sprintf "examples/traces/%s.trace" name;
      Printf.sprintf "../examples/traces/%s.trace" name;
      Printf.sprintf "../../../examples/traces/%s.trace" name;
    ]
  in
  List.find_opt Sys.file_exists candidates

(* A workload result: elapsed cycles, per-class latency percentiles, the
   full stats report, and the host wall-clock cost of simulating it. *)
type gc_delta = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

type workload_result = {
  w_name : string;
  cycles : int;
  checksums : int array;
  latency : (string * Latency.summary) list;
  attribution : (string * int) list;
      (* per-stage critical-path cycles; non-empty only for serve points *)
  stats : (string * int) list;
  mutable wall_ms : float;
  mutable gc : gc_delta option;
}

(* Run [f] with tracing on and distill the per-class latency summaries
   (plus "overall") from the recorded request spans.  Tracing never changes
   simulated timing, so the cycle counts are those of an untraced run. *)
let with_latency f =
  (* Reqs-only sink: the histograms are distilled purely from the
     [Req_start]/[Req_end] spans, so detail events are never recorded (or
     allocated) — the summaries are byte-identical to full tracing as long
     as the ring never dropped a span, which 2^20 slots guarantees for
     every workload here. *)
  let tr = Trace.start ~capacity:(1 lsl 20) ~reqs_only:true () in
  let r = Fun.protect ~finally:(fun () -> ignore (Trace.stop ())) f in
  let lat = Latency.of_trace tr in
  let overall =
    match Latency.summarize (Latency.overall lat) with
    | Some s -> [ "overall", s ]
    | None -> []
  in
  r, overall @ Latency.summaries lat

let run_trace_workload name ~skip_it =
  match trace_path name with
  | None -> None
  | Some path ->
    (match Skipit_workload.Trace_program.load_file path with
     | Error _ -> None
     | Ok program ->
       let cores = Skipit_workload.Trace_program.max_core program + 1 in
       let sys = S.create (C.platform ~cores ~skip_it ()) in
       let (cycles, checksums), latency =
         with_latency (fun () -> Skipit_workload.Trace_program.run sys program)
       in
       Some
         {
           w_name = Printf.sprintf "%s%s" name (if skip_it then "+skipit" else "");
           cycles;
           checksums;
           latency;
           attribution = [];
           stats = S.stats_report sys;
           wall_ms = 0.;
           gc = None;
         })

(* The Fig. 9-style scaling point: 8 threads, each store+flush+flush over a
   private region — the workload whose behaviour Skip It changes most. *)
let run_scaling_workload ~skip_it =
  let threads = 8 and lines = 64 in
  let sys = S.create (C.platform ~cores:threads ~skip_it ()) in
  let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:64 (lines * 64) in
  let module T = Skipit_core.Thread in
  let per = lines / threads in
  let task core =
    {
      T.core;
      body =
        (fun () ->
          for i = core * per to ((core + 1) * per) - 1 do
            T.store (base + (i * 64)) i;
            T.flush (base + (i * 64));
            T.flush (base + (i * 64))
          done;
          T.fence ());
    }
  in
  let cycles, latency = with_latency (fun () -> T.run sys (List.init threads task)) in
  {
    w_name = Printf.sprintf "store_double_flush_8t%s" (if skip_it then "+skipit" else "");
    cycles;
    checksums = [||];
    latency;
    attribution = [];
    stats = S.stats_report sys;
    wall_ms = 0.;
    gc = None;
  }

(* The banked-NUCA scaling row: the Fig. 9 32 KiB flush point at
   l2_banks = 4, 1 vs 8 threads.  As in the figure, the measured window
   covers the flush phase only (setup stores and the population fence are
   outside it).  "speedup_milli" pins the near-linear scaling the banked
   L2 buys; CI gates it with bench_gate --min-bank-speedup. *)
let run_banked_scaling_workload () =
  let params = C.Params.with_l2_banks C.default 4 in
  let size = 32768 and line = 64 in
  let measure threads =
    let params = C.Params.with_cores params threads in
    let sys = S.create params in
    let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:line size in
    let per = size / line / threads in
    let module T = Skipit_core.Thread in
    let starts = Array.make threads max_int and ends = Array.make threads 0 in
    let task core =
      {
        T.core;
        body =
          (fun () ->
            let lo = base + (core * per * line) in
            for i = 0 to per - 1 do
              T.store (lo + (i * line)) (i + 1)
            done;
            T.fence ();
            starts.(core) <- T.now ();
            for i = 0 to per - 1 do
              T.flush (lo + (i * line))
            done;
            T.fence ();
            ends.(core) <- T.now ());
      }
    in
    ignore (T.run sys (List.init threads task));
    Array.fold_left max 0 ends - Array.fold_left min max_int starts
  in
  let c1 = measure 1 and c8 = measure 8 in
  {
    w_name = "fig9_32k_flush_l2b4";
    cycles = c8;
    checksums = [| c1; c8 |];
    latency = [];
    attribution = [];
    stats =
      [
        "cycles_1t", c1;
        "cycles_8t", c8;
        ( "speedup_milli",
          int_of_float (Float.round (1000. *. float_of_int c1 /. float_of_int c8)) );
      ];
    wall_ms = 0.;
    gc = None;
  }

(* Serving-engine points: the hash table under Poisson load at three offered
   rates, per-operation persists (batch 1) vs group commit (batch 8).  The
   p99-vs-load pairs land in the JSON so the perf gate locks in the
   group-commit win (higher achieved throughput, lower tail at rate 16+). *)
let run_serve_workload ?workload ?(tag = "") ~batch ~rate () =
  let module Engine = Skipit_serve.Engine in
  let module Workload = Skipit_serve.Workload in
  let workload =
    match workload with Some w -> w | None -> Workload.default
  in
  let cfg =
    { Engine.default with Engine.requests = 600; batch; telemetry = true; workload }
  in
  let point, latency = with_latency (fun () -> Engine.run cfg ~rate) in
  {
    w_name = Printf.sprintf "serve_hash%s_r%.0f_b%d" tag rate batch;
    cycles = point.Engine.elapsed;
    checksums = [| point.Engine.served; point.Engine.shed |];
    latency;
    (* The per-stage breakdown lands in the JSON so the perf gate pins
       where the cycles go, not just how many there are. *)
    attribution = point.Engine.attribution;
    stats =
      [
        "served", point.Engine.served;
        "shed", point.Engine.shed;
        "epochs", point.Engine.epochs;
        "flushes", point.Engine.flushes;
        "deferred", point.Engine.deferred;
        "passthrough", point.Engine.passthrough;
        "fences", point.Engine.fences;
        ( "achieved_milli",
          int_of_float (Float.round (point.Engine.achieved *. 1000.)) );
        "attr_trimmed", point.Engine.attr_trimmed;
        "attr_conserved", (if point.Engine.attr_conserved then 1 else 0);
        "skip_dropped", point.Engine.skip_dropped;
        "wb_submitted", point.Engine.wb_submitted;
      ];
    wall_ms = 0.;
    gc = None;
  }

(* The fleet robustness row: 2×10^5 open-loop clients over a 4-shard,
   2-replica fleet with one seeded shard kill at steady state.  The pinned
   numbers are the kill-one-shard SLOs: achieved throughput, shed fraction,
   failover/recovery work — and zero verification violations, so CI holds
   the line on durable linearizability under crashes, not just on speed. *)
let run_fleet_workload () =
  let module Fleet = Skipit_fleet.Fleet in
  let cfg =
    {
      Fleet.default with
      Fleet.clients = 200_000;
      requests = 2000;
      faults = Fleet.Seeded 1;
    }
  in
  let point, latency = with_latency (fun () -> Fleet.run cfg ~rate:16.) in
  {
    w_name = "fleet_kill1";
    cycles = point.Fleet.elapsed;
    checksums = [| point.Fleet.served; point.Fleet.shed; point.Fleet.failovers |];
    latency;
    attribution = [];
    stats =
      [
        "served", point.Fleet.served;
        "shed", point.Fleet.shed;
        ( "shed_milli",
          int_of_float (Float.round (1000. *. Fleet.shed_fraction point)) );
        "partial", point.Fleet.partial;
        "failovers", point.Fleet.failovers;
        "crashes", point.Fleet.crashes;
        "repairs", point.Fleet.repairs;
        "retries", point.Fleet.retries;
        "hints", point.Fleet.hints;
        "recovery_cycles", point.Fleet.recovery_cycles;
        ( "achieved_milli",
          int_of_float (Float.round (point.Fleet.achieved *. 1000.)) );
        "violations", List.length point.Fleet.violations;
        "leaked", point.Fleet.leaked;
      ];
    wall_ms = 0.;
    gc = None;
  }

(* Host wall-clock timing of the JSON workload set: each workload is timed
   individually in the serial pass; the parallel pass times the whole set
   under the pool.  Simulated results are taken from the serial pass, so
   the cycle counts / checksums / stats in the file never depend on the
   pool width. *)
type timing = {
  t_jobs : int;
  t_width : int;  (* effective pool width after the host-core clamp *)
  t_cores : int;  (* host cores the clamp was computed from *)
  wall_ms_serial : float;
  wall_ms_parallel : float;  (* = serial when the effective width is 1 *)
  baseline_ms : float option;  (* pinned pre-refactor serial workload wall *)
}

let json_of_results ~timing results =
  let total_workload_ms =
    List.fold_left (fun acc r -> acc +. r.wall_ms) 0. results
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" timing.t_jobs);
  Buffer.add_string buf (Printf.sprintf "  \"pool_width\": %d,\n" timing.t_width);
  (* Honesty fields: when the pool clamped an oversubscribed --jobs to the
     host's core count, say so — the wall-clock ratios below were measured
     at the effective width, and the gate scales its floor accordingly. *)
  if timing.t_width < timing.t_jobs then begin
    Buffer.add_string buf "  \"pool_clamped\": true,\n";
    Buffer.add_string buf (Printf.sprintf "  \"cores_detected\": %d,\n" timing.t_cores)
  end;
  Buffer.add_string buf (Printf.sprintf "  \"wall_ms\": %.2f,\n" timing.wall_ms_parallel);
  Buffer.add_string buf
    (Printf.sprintf "  \"wall_ms_serial\": %.2f,\n" timing.wall_ms_serial);
  (* "speedup_vs_serial" is the engine-v2 headline: the pinned pre-refactor
     serial wall (bench/baseline_v1.json, measured with the v1 engine at
     --jobs 1) over this run's wall for the same workload set.  On hosts
     with real parallelism the pool compounds it; on a single-core host it
     measures the serial-path rebuild alone.  "pool_efficiency" is the
     honest intra-run ratio (this run's serial pass over its pooled pass). *)
  (match timing.baseline_ms with
   | Some b ->
     Buffer.add_string buf (Printf.sprintf "  \"baseline_wall_ms\": %.2f,\n" b);
     Buffer.add_string buf
       (Printf.sprintf "  \"speedup_vs_serial\": %.2f,\n"
          (if timing.wall_ms_parallel > 0. then b /. timing.wall_ms_parallel else 1.))
   | None ->
     Buffer.add_string buf
       (Printf.sprintf "  \"speedup_vs_serial\": %.2f,\n"
          (if timing.wall_ms_parallel > 0. then
             timing.wall_ms_serial /. timing.wall_ms_parallel
           else 1.)));
  Buffer.add_string buf
    (Printf.sprintf "  \"pool_efficiency\": %.2f,\n"
       (if timing.wall_ms_parallel > 0. then
          timing.wall_ms_serial /. timing.wall_ms_parallel
        else 1.));
  Buffer.add_string buf
    (Printf.sprintf "  \"wall_ms_workloads\": %.2f,\n" total_workload_ms);
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Printf.sprintf "    {\n      \"name\": \"%s\",\n" r.w_name);
      Buffer.add_string buf (Printf.sprintf "      \"cycles\": %d,\n" r.cycles);
      Buffer.add_string buf (Printf.sprintf "      \"wall_ms\": %.2f,\n" r.wall_ms);
      Buffer.add_string buf "      \"checksums\": [";
      Array.iteri
        (fun j c ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (string_of_int c))
        r.checksums;
      Buffer.add_string buf "],\n      \"latency\": {";
      List.iteri
        (fun j (cls, s) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf
               "\"%s\": {\"count\": %d, \"mean\": %.2f, \"p50\": %.1f, \"p95\": %.1f, \
                \"p99\": %.1f, \"p999\": %.1f, \"max\": %.1f}"
               cls s.Latency.count s.Latency.mean s.Latency.p50 s.Latency.p95
               s.Latency.p99 s.Latency.p999 s.Latency.max))
        r.latency;
      if r.attribution <> [] then begin
        Buffer.add_string buf "},\n      \"attribution\": {";
        List.iteri
          (fun j (stage, c) ->
            if j > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf (Printf.sprintf "\"%s\": %d" stage c))
          r.attribution
      end;
      (match r.gc with
       | Some g ->
         Buffer.add_string buf
           (Printf.sprintf
              "},\n      \"gc\": {\"minor_words\": %.0f, \"major_words\": %.0f, \"minor_collections\": %d, \"major_collections\": %d"
              g.minor_words g.major_words g.minor_collections g.major_collections)
       | None -> ());
      Buffer.add_string buf "},\n      \"stats\": {";
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "\"%s\": %d" k v))
        r.stats;
      Buffer.add_string buf "}\n    }")
    results;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let now_ms () = Unix.gettimeofday () *. 1000.

let emit_json ~jobs path =
  let traces = [ "producer_consumer"; "redundant_flush"; "fig5_semantics" ] in
  let thunks =
    List.concat_map
      (fun name ->
        List.map (fun skip_it () -> run_trace_workload name ~skip_it) [ false; true ])
      traces
    @ [
        (fun () -> Some (run_scaling_workload ~skip_it:false));
        (fun () -> Some (run_scaling_workload ~skip_it:true));
        (fun () -> Some (run_banked_scaling_workload ()));
        (fun () -> Some (run_fleet_workload ()));
      ]
    @ List.concat_map
        (fun rate ->
          List.map (fun batch () -> Some (run_serve_workload ~batch ~rate ())) [ 1; 8 ])
        [ 8.; 16.; 24. ]
    (* Skewed-workload rows: the same serve config under Zipfian key
       popularity (FliT's evaluation standard) so the gate can bound the
       skewed-over-uniform p99 ratio; the churn row additionally rotates
       the hot set every 4000 cycles. *)
    @ (let module Workload = Skipit_serve.Workload in
       [
         (fun () ->
           Some
             (run_serve_workload ~tag:"_zipf90"
                ~workload:{ Workload.keys = Workload.Zipf { theta_milli = 900 }; churn = None }
                ~batch:8 ~rate:16. ()));
         (fun () ->
           Some
             (run_serve_workload ~tag:"_zipf99"
                ~workload:{ Workload.keys = Workload.Zipf { theta_milli = 990 }; churn = None }
                ~batch:8 ~rate:16. ()));
         (fun () ->
           Some
             (run_serve_workload ~tag:"_zipf99churn"
                ~workload:
                  { Workload.keys = Workload.Zipf { theta_milli = 990 }; churn = Some 4000 }
                ~batch:8 ~rate:16. ()));
       ])
  in
  (* Serial pass: the source of truth for every simulated quantity, with
     each workload timed individually. *)
  let t0 = now_ms () in
  let results =
    List.filter_map
      (fun thunk ->
        let t = now_ms () in
        let g0 = if profile then Some (Gc.quick_stat ()) else None in
        let r = thunk () in
        (match r, g0 with
         | Some r, Some g0 ->
           let g1 = Gc.quick_stat () in
           r.gc <-
             Some
               {
                 minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
                 major_words = g1.Gc.major_words -. g0.Gc.major_words;
                 minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
                 major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
               }
         | _ -> ());
        Option.iter (fun r -> r.wall_ms <- now_ms () -. t) r;
        r)
      thunks
  in
  let wall_ms_serial = now_ms () -. t0 in
  (* Parallel pass: same jobs on the pool, timed as a set — only the
     wall-clock numbers come from it. *)
  let pool_width = ref 1 in
  let wall_ms_parallel =
    if jobs <= 1 then wall_ms_serial
    else
      Pool.with_pool ~jobs (fun pool ->
        pool_width := Pool.width pool;
        let t0 = now_ms () in
        ignore (Pool.map pool (fun thunk -> thunk ()) thunks);
        now_ms () -. t0)
  in
  let timing =
    {
      t_jobs = jobs;
      t_width = !pool_width;
      t_cores = Domain.recommended_domain_count ();
      wall_ms_serial;
      wall_ms_parallel;
      baseline_ms = baseline_workload_ms baseline_path;
    }
  in
  let oc = open_out path in
  output_string oc (json_of_results ~timing results);
  close_out oc;
  Printf.printf "wrote %s (%d workloads, jobs=%d, %.0f ms serial / %.0f ms parallel)\n"
    path (List.length results) jobs wall_ms_serial wall_ms_parallel

let () =
  if Array.exists (( = ) "--json-only") Sys.argv then
    emit_json ~jobs out_path
  else begin
    let ppf = Format.std_formatter in
    Format.pp_open_vbox ppf 0;
    let run_figures pool =
      Figures.all ~quick:false ?pool ppf;
      Ablation.run_all ?pool ppf
    in
    if jobs <= 1 then run_figures None
    else Pool.with_pool ~jobs (fun pool -> run_figures (Some pool));
    Format.pp_close_box ppf ();
    Format.pp_print_newline ppf ();
    run_bechamel ();
    emit_json ~jobs out_path
  end
