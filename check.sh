#!/bin/sh
# Repo health check: full build + test suite, plus a guard against ever
# staging dune build artifacts again (the _build/ tree was removed from
# version control and is covered by .gitignore).
set -eu
cd "$(dirname "$0")"

if git diff --cached --name-only --diff-filter=d 2>/dev/null | grep -q "^_build/"; then
  echo "check.sh: _build/ files are staged; unstage them (git restore --staged _build)" >&2
  exit 1
fi

dune build
dune runtest

# Workload smoke: one skewed+churned serve run must conserve requests
# (served + shed = offered, no leaked waiting-room slots).
dune exec bin/skipit_sim.exe -- serve --quick --keys zipf:0.99 --churn 4000 \
  --mix 80:20 --seed 11 | grep -q "conservation: ok" \
  || { echo "check.sh: workload smoke failed (no conservation line)" >&2; exit 1; }

echo "check.sh: OK"
