(* Command-line harness: regenerate any evaluation figure of the paper, dump
   system statistics, or run a free-form writeback microbenchmark. *)

module Figures = Skipit_workload.Figures
module Micro = Skipit_workload.Micro
module S = Skipit_core.System
module C = Skipit_core.Config
open Cmdliner

let with_ppf f =
  let ppf = Format.std_formatter in
  Format.pp_open_vbox ppf 0;
  f ppf;
  Format.pp_close_box ppf ();
  Format.pp_print_newline ppf ()

let figure_cmd =
  let figure =
    let doc =
      Printf.sprintf "Figure to regenerate: %s." (String.concat ", " Figures.names)
    in
    Arg.(required & pos 0 (some (enum (List.map (fun n -> n, n) Figures.names))) None
         & info [] ~docv:"FIGURE" ~doc)
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Fewer repetitions and sweep points.")
  in
  let run name quick =
    match Figures.by_name name with
    | Some f -> with_ppf (fun ppf -> f ~quick ppf)
    | None -> prerr_endline ("unknown figure " ^ name)
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's evaluation figures")
    Term.(const run $ figure $ quick)

let stats_cmd =
  let threads =
    Arg.(value & opt int 2 & info [ "threads" ] ~doc:"Simulated cores.")
  in
  let lines =
    Arg.(value & opt int 64 & info [ "lines" ] ~doc:"Cache lines to store+flush.")
  in
  let skip_it = Arg.(value & flag & info [ "skip-it" ] ~doc:"Enable Skip It.") in
  let shared_bus =
    Arg.(value & flag & info [ "shared-bus" ]
         ~doc:"Wire all L1 ports onto one shared bus instead of a crossbar.")
  in
  let run threads lines skip_it shared_bus =
    let topology = if shared_bus then `Shared_bus else `Crossbar in
    let sys = S.create (C.platform ~cores:threads ~skip_it ~topology ()) in
    let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:64 (lines * 64) in
    let module T = Skipit_core.Thread in
    let per = max 1 (lines / threads) in
    let task core =
      {
        T.core;
        body =
          (fun () ->
            for i = core * per to min lines ((core + 1) * per) - 1 do
              T.store (base + (i * 64)) i;
              T.flush (base + (i * 64));
              T.flush (base + (i * 64))
            done;
            T.fence ());
      }
    in
    let cycles = T.run sys (List.init threads task) in
    Printf.printf "elapsed: %d cycles\n" cycles;
    List.iter (fun (k, v) -> Printf.printf "%-28s %d\n" k v) (S.stats_report sys)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Run a store+double-flush loop and dump all counters")
    Term.(const run $ threads $ lines $ skip_it $ shared_bus)

let sweep_cmd =
  let threads = Arg.(value & opt int 1 & info [ "threads" ] ~doc:"Simulated cores.") in
  let clean =
    Arg.(value & flag & info [ "clean" ] ~doc:"Use CBO.CLEAN instead of CBO.FLUSH.")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.") in
  let contended =
    Arg.(value & flag & info [ "contended" ] ~doc:"All threads write back the same region.")
  in
  let run threads clean csv contended =
    let kind = if clean then Skipit_tilelink.Message.Wb_clean else Skipit_tilelink.Message.Wb_flush in
    let series =
      if contended then
        Micro.contended_sweep ~kind ~threads ~sizes:Micro.sizes_default ~repeats:3 ()
      else Micro.writeback_sweep ~kind ~threads ~sizes:Micro.sizes_default ~repeats:3 ()
    in
    with_ppf (fun ppf ->
      if csv then Skipit_workload.Series.pp_csv ppf [ series ]
      else Skipit_workload.Series.pp_table ~x_name:"bytes" ppf [ series ])
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Writeback-size latency sweep (Fig. 9 style)")
    Term.(const run $ threads $ clean $ csv $ contended)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace program file.")
  in
  let cores = Arg.(value & opt (some int) None & info [ "cores" ] ~doc:"Simulated cores (default: enough for the trace).") in
  let skip_it = Arg.(value & flag & info [ "skip-it" ] ~doc:"Enable Skip It.") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Dump all counters after the run.") in
  let shared_bus =
    Arg.(value & flag & info [ "shared-bus" ]
         ~doc:"Wire all L1 ports onto one shared bus instead of a crossbar.")
  in
  let run file cores skip_it stats shared_bus =
    match Skipit_workload.Trace_program.load_file file with
    | Error e ->
      prerr_endline ("trace error: " ^ e);
      exit 1
    | Ok program ->
      let needed = Skipit_workload.Trace_program.max_core program + 1 in
      let cores = match cores with Some n -> n | None -> needed in
      if cores < needed then begin
        Printf.eprintf "trace error: program uses core %d but only %d core%s simulated\n"
          (needed - 1) cores (if cores = 1 then " is" else "s are");
        exit 1
      end;
      let topology = if shared_bus then `Shared_bus else `Crossbar in
      let sys = S.create (C.platform ~cores ~skip_it ~topology ()) in
      let cycles, checksums = Skipit_workload.Trace_program.run sys program in
      Printf.printf "elapsed: %d cycles\n" cycles;
      Array.iteri (fun i c -> Printf.printf "core %d load-checksum: %#x\n" i c) checksums;
      if stats then
        List.iter (fun (k, v) -> Printf.printf "%-28s %d\n" k v) (S.stats_report sys)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a text trace program (see examples/traces/)")
    Term.(const run $ file $ cores $ skip_it $ stats $ shared_bus)

let ablate_cmd =
  let run () = with_ppf Skipit_workload.Ablation.run_all in
  Cmd.v
    (Cmd.info "ablate" ~doc:"Run the design-choice ablations (FSHR count, queue depth, skip decomposition, array width, coalescing)")
    Term.(const run $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "skipit_sim" ~version:"1.0.0"
      ~doc:"Simulator for 'Skip It: Take Control of Your Cache!' (ASPLOS 2024)"
  in
  exit (Cmd.eval (Cmd.group ~default info [ figure_cmd; stats_cmd; sweep_cmd; ablate_cmd; run_cmd ]))
