(* Command-line harness: regenerate any evaluation figure of the paper, dump
   system statistics, or run a free-form writeback microbenchmark. *)

module Figures = Skipit_workload.Figures
module Micro = Skipit_workload.Micro
module Pool = Skipit_par.Pool
module S = Skipit_core.System
module C = Skipit_core.Config
module Trace = Skipit_obs.Trace
module Latency = Skipit_obs.Latency
module Perfetto = Skipit_obs.Perfetto
open Cmdliner

let with_ppf f =
  let ppf = Format.std_formatter in
  Format.pp_open_vbox ppf 0;
  f ppf;
  Format.pp_close_box ppf ();
  Format.pp_print_newline ppf ()

(* ------------------------------------------------------------------ *)
(* Parallel experiment engine plumbing.                               *)

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains for independent simulation jobs (0 = auto: \
               one per core, capped at 8, or \\$SKIPIT_JOBS).  Results are \
               reduced in submission order, so the output is byte-identical \
               at any width.")

(* Resolve a --jobs value and hand [f] a pool (or [None] for width 1 —
   everything then runs inline on the calling domain). *)
let with_jobs jobs f =
  let jobs = if jobs <= 0 then Pool.default_jobs () else jobs in
  if jobs <= 1 then f None else Pool.with_pool ~jobs (fun pool -> f (Some pool))

(* ------------------------------------------------------------------ *)
(* Hierarchy shape shared by the simulation commands.                 *)

let l2_banks_arg =
  Arg.(value & opt int 1
       & info [ "l2-banks" ] ~docv:"N"
         ~doc:"Address-interleaved NUCA L2 banks, each with its own MSHRs, \
               directory and request queue (power of two; 1 = the paper's \
               monolithic L2).")

let banked_bus_arg =
  Arg.(value & flag & info [ "banked-bus" ]
       ~doc:"Wire the clients to the L2 over one bus per bank \
             (address-interleaved) instead of a full crossbar.")

let topology_of ~shared_bus ~banked_bus =
  if banked_bus then `Banked_bus else if shared_bus then `Shared_bus else `Crossbar

(* ------------------------------------------------------------------ *)
(* Tracing plumbing shared by the stats/run/trace commands.           *)

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Record a cycle-stamped event trace of the run and write it as \
               Chrome trace-event JSON (open in ui.perfetto.dev).")

let trace_filter_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-filter" ] ~docv:"COMPONENTS"
         ~doc:"Comma-separated component-track prefixes to record, e.g. \
               'l1,fu.0,port'.  Default: every component.")

let parse_filter = function
  | None -> None
  | Some s -> (
    let parts =
      String.split_on_char ',' s
      |> List.filter_map (fun p ->
           match String.trim p with "" -> None | p -> Some p)
    in
    match parts with [] -> None | l -> Some l)

(* Trace [f], then export the Perfetto JSON and print the latency table.
   The ring-buffer accounting prints as a stats-style group so overflow is
   visible in `stats`-flavoured output, not just the export warning. *)
let run_traced ?capacity ~out ~filter f =
  let tr = Trace.start ?capacity ?filter:(parse_filter filter) () in
  Fun.protect ~finally:(fun () -> ignore (Trace.stop ())) f;
  Perfetto.write_file out tr;
  with_ppf (fun ppf -> Latency.pp ppf (Latency.of_trace tr));
  Printf.printf "\n[trace]\n  %-26s %d\n  %-26s %d\n  %-26s %d\n" "events"
    (Trace.length tr) "capacity" (Trace.capacity tr) "dropped" (Trace.dropped tr);
  if Trace.dropped tr > 0 then
    Printf.printf
      "trace: %d event(s) dropped after the ring filled; narrow --trace-filter or \
       raise --trace-capacity\n"
      (Trace.dropped tr);
  Printf.printf "trace: wrote %s (%d events, %d tracks)\n" out (Trace.length tr)
    (List.length (Perfetto.tracks tr))

let maybe_traced ~out ~filter f =
  match out with None -> f () | Some out -> run_traced ~out ~filter f

(* Order names with digit runs compared numerically, so the per-bank groups
   read "l2.bank.2" before "l2.bank.10". *)
let natural_compare a b =
  let la = String.length a and lb = String.length b in
  let is_digit c = c >= '0' && c <= '9' in
  let digits s i l =
    let j = ref i in
    while !j < l && is_digit s.[!j] do incr j done;
    !j
  in
  let rec go i j =
    if i >= la || j >= lb then compare (la - i) (lb - j)
    else if is_digit a.[i] && is_digit b.[j] then begin
      let i' = digits a i la and j' = digits b j lb in
      let na = int_of_string (String.sub a i (i' - i)) in
      let nb = int_of_string (String.sub b j (j' - j)) in
      if na <> nb then compare na nb else go i' j'
    end
    else if a.[i] <> b.[j] then Char.compare a.[i] b.[j]
    else go (i + 1) (j + 1)
  in
  go 0 0

(* Print a stats report grouped by component ("l1.0.load_hits" sits in the
   "l1.0" block as "load_hits"; "l2.bank.3.hits" under "[l2.bank.3]").
   Natural-ordering the names keeps each component's members contiguous
   and the banks in index order. *)
let print_grouped_stats report =
  let report = List.sort (fun (a, _) (b, _) -> natural_compare a b) report in
  let split name =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1)
    | None -> "", name
  in
  let last = ref None in
  List.iter
    (fun (k, v) ->
      let g, leaf = split k in
      if !last <> Some g then begin
        if !last <> None then print_newline ();
        Printf.printf "[%s]\n" (if g = "" then "system" else g);
        last := Some g
      end;
      Printf.printf "  %-26s %d\n" leaf v)
    report

let figure_cmd =
  let figure =
    let doc =
      Printf.sprintf "Figure to regenerate: %s." (String.concat ", " Figures.names)
    in
    Arg.(required & pos 0 (some (enum (List.map (fun n -> n, n) Figures.names))) None
         & info [] ~docv:"FIGURE" ~doc)
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Fewer repetitions and sweep points.")
  in
  let cores =
    Arg.(value & opt (some int) None
         & info [ "cores" ] ~docv:"N"
           ~doc:"Scale the platform to N cores; the thread sweeps then extend \
                 in powers of two up to N (default: the paper's platform).")
  in
  let run name quick jobs cores l2_banks banked_bus =
    (* Only override the figure's own platform when the shape flags are
       used, so default invocations stay byte-identical. *)
    let params =
      if cores = None && l2_banks = 1 && not banked_bus then None
      else
        Some
          (C.platform ?cores ~l2_banks
             ~topology:(topology_of ~shared_bus:false ~banked_bus)
             ())
    in
    match Figures.by_name name with
    | Some f ->
      with_jobs jobs (fun pool -> with_ppf (fun ppf -> f ~quick ?pool ?params ppf))
    | None -> prerr_endline ("unknown figure " ^ name)
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's evaluation figures")
    Term.(const run $ figure $ quick $ jobs_arg $ cores $ l2_banks_arg $ banked_bus_arg)

let stats_cmd =
  let threads =
    Arg.(value & opt int 2 & info [ "threads" ] ~doc:"Simulated cores.")
  in
  let lines =
    Arg.(value & opt int 64 & info [ "lines" ] ~doc:"Cache lines to store+flush.")
  in
  let skip_it = Arg.(value & flag & info [ "skip-it" ] ~doc:"Enable Skip It.") in
  let shared_bus =
    Arg.(value & flag & info [ "shared-bus" ]
         ~doc:"Wire all L1 ports onto one shared bus instead of a crossbar.")
  in
  let run threads lines skip_it shared_bus l2_banks banked_bus trace_out trace_filter
      _jobs =
    (* --jobs is accepted for CLI uniformity; this command runs a single
       simulation, which is one job. *)
    maybe_traced ~out:trace_out ~filter:trace_filter (fun () ->
      let topology = topology_of ~shared_bus ~banked_bus in
      let sys = S.create (C.platform ~cores:threads ~skip_it ~topology ~l2_banks ()) in
      S.emit_trace_meta sys;
      let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:64 (lines * 64) in
      let module T = Skipit_core.Thread in
      let per = max 1 (lines / threads) in
      let task core =
        {
          T.core;
          body =
            (fun () ->
              for i = core * per to min lines ((core + 1) * per) - 1 do
                T.store (base + (i * 64)) i;
                T.flush (base + (i * 64));
                T.flush (base + (i * 64))
              done;
              T.fence ());
        }
      in
      let cycles = T.run sys (List.init threads task) in
      Printf.printf "elapsed: %d cycles\n" cycles;
      print_grouped_stats (S.stats_report sys))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Run a store+double-flush loop and dump all counters")
    Term.(const run $ threads $ lines $ skip_it $ shared_bus $ l2_banks_arg
          $ banked_bus_arg $ trace_out_arg $ trace_filter_arg $ jobs_arg)

let sweep_cmd =
  let threads = Arg.(value & opt int 1 & info [ "threads" ] ~doc:"Simulated cores.") in
  let clean =
    Arg.(value & flag & info [ "clean" ] ~doc:"Use CBO.CLEAN instead of CBO.FLUSH.")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.") in
  let contended =
    Arg.(value & flag & info [ "contended" ] ~doc:"All threads write back the same region.")
  in
  let run threads clean csv contended jobs =
    let kind = if clean then Skipit_tilelink.Message.Wb_clean else Skipit_tilelink.Message.Wb_flush in
    let prep =
      if contended then
        Micro.prep_contended_sweep ~kind ~threads ~sizes:Micro.sizes_default ~repeats:3 ()
      else Micro.prep_writeback_sweep ~kind ~threads ~sizes:Micro.sizes_default ~repeats:3 ()
    in
    let series =
      with_jobs jobs (fun pool ->
        match Micro.run_prepared ?pool [ prep ] with [ s ] -> s | _ -> assert false)
    in
    with_ppf (fun ppf ->
      if csv then Skipit_workload.Series.pp_csv ppf [ series ]
      else Skipit_workload.Series.pp_table ~x_name:"bytes" ppf [ series ])
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Writeback-size latency sweep (Fig. 9 style)")
    Term.(const run $ threads $ clean $ csv $ contended $ jobs_arg)

(* Shared by the run/trace commands: load a trace program and settle the
   core count. *)
let load_program file cores =
  match Skipit_workload.Trace_program.load_file file with
  | Error e ->
    prerr_endline ("trace error: " ^ e);
    exit 1
  | Ok program ->
    let needed = Skipit_workload.Trace_program.max_core program + 1 in
    let cores = match cores with Some n -> n | None -> needed in
    if cores < needed then begin
      Printf.eprintf "trace error: program uses core %d but only %d core%s simulated\n"
        (needed - 1) cores (if cores = 1 then " is" else "s are");
      exit 1
    end;
    program, cores

let program_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace program file.")

let cores_arg =
  Arg.(value & opt (some int) None
       & info [ "cores" ] ~doc:"Simulated cores (default: enough for the trace).")

let skip_it_arg = Arg.(value & flag & info [ "skip-it" ] ~doc:"Enable Skip It.")

let shared_bus_arg =
  Arg.(value & flag & info [ "shared-bus" ]
       ~doc:"Wire all L1 ports onto one shared bus instead of a crossbar.")

let run_program ~file ~cores ~skip_it ~shared_bus ~l2_banks ~banked_bus ~stats =
  let program, cores = load_program file cores in
  let topology = topology_of ~shared_bus ~banked_bus in
  let sys = S.create (C.platform ~cores ~skip_it ~topology ~l2_banks ()) in
  S.emit_trace_meta sys;
  let cycles, checksums = Skipit_workload.Trace_program.run sys program in
  Printf.printf "elapsed: %d cycles\n" cycles;
  Array.iteri (fun i c -> Printf.printf "core %d load-checksum: %#x\n" i c) checksums;
  if stats then print_grouped_stats (S.stats_report sys)

let run_cmd =
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Dump all counters after the run.") in
  let run file cores skip_it stats shared_bus l2_banks banked_bus trace_out trace_filter
      _jobs =
    (* --jobs accepted for uniformity; a trace program is a single job. *)
    maybe_traced ~out:trace_out ~filter:trace_filter (fun () ->
      run_program ~file ~cores ~skip_it ~shared_bus ~l2_banks ~banked_bus ~stats)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a text trace program (see examples/traces/)")
    Term.(const run $ program_arg $ cores_arg $ skip_it_arg $ stats $ shared_bus_arg
          $ l2_banks_arg $ banked_bus_arg $ trace_out_arg $ trace_filter_arg $ jobs_arg)

let trace_cmd =
  let out =
    Arg.(value & opt string "trace.json"
         & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Output file for the Chrome trace-event JSON (open in ui.perfetto.dev).")
  in
  let capacity =
    Arg.(value & opt int (1 lsl 20)
         & info [ "trace-capacity" ] ~docv:"N"
           ~doc:"Ring-buffer capacity in events; the oldest events are dropped beyond it.")
  in
  let run file cores skip_it shared_bus l2_banks banked_bus out filter capacity _jobs =
    (* --jobs accepted for uniformity; a traced run is a single job. *)
    run_traced ~capacity ~out ~filter (fun () ->
      run_program ~file ~cores ~skip_it ~shared_bus ~l2_banks ~banked_bus ~stats:false)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a trace program with event tracing on: write a Perfetto \
             timeline and print per-class latency percentiles")
    Term.(const run $ program_arg $ cores_arg $ skip_it_arg $ shared_bus_arg
          $ l2_banks_arg $ banked_bus_arg $ out $ trace_filter_arg $ capacity $ jobs_arg)

let ablate_cmd =
  let run jobs =
    with_jobs jobs (fun pool ->
      with_ppf (fun ppf -> Skipit_workload.Ablation.run_all ?pool ppf))
  in
  Cmd.v
    (Cmd.info "ablate" ~doc:"Run the design-choice ablations (FSHR count, queue depth, skip decomposition, array width, coalescing)")
    Term.(const run $ jobs_arg)

let audit_cmd =
  let module Campaign = Skipit_audit.Campaign in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign RNG seed.") in
  let ops =
    Arg.(value & opt int 40 & info [ "ops" ] ~doc:"Operations per trial schedule.")
  in
  let budget =
    Arg.(value & opt int 20
         & info [ "budget" ] ~docv:"N"
           ~doc:"Crash boundaries tested per spec (exhaustive when the run \
                 has at most N persist events, else first + last + sampled).")
  in
  let csv_list ~all ~name ~of_name arg_name doc =
    let cv =
      let parse s =
        let parts = String.split_on_char ',' s |> List.map String.trim in
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | p :: rest -> (
            match of_name p with
            | Some v -> go (v :: acc) rest
            | None ->
              Error (`Msg (Printf.sprintf "unknown %s %S (expected one of: %s)" arg_name p
                             (String.concat ", " (List.map name all)))))
        in
        go [] parts
      in
      let print ppf l = Format.pp_print_string ppf (String.concat "," (List.map name l)) in
      Arg.conv (parse, print)
    in
    Arg.(value & opt (some cv) None & info [ arg_name ] ~docv:"LIST" ~doc)
  in
  let structures =
    csv_list ~all:Campaign.all_structures ~name:Campaign.structure_name
      ~of_name:Campaign.structure_of_name "structures"
      "Comma-separated structures to test (default: all five)."
  in
  let modes =
    let module Pctx = Skipit_persist.Pctx in
    csv_list ~all:Pctx.all_modes ~name:Pctx.mode_name
      ~of_name:(fun s -> List.find_opt (fun m -> Pctx.mode_name m = s) Pctx.all_modes)
      "modes" "Comma-separated persistence modes (default: all three)."
  in
  let strategies =
    csv_list ~all:Campaign.all_strategies ~name:Campaign.strategy_name
      ~of_name:Campaign.strategy_of_name "strategies"
      "Comma-separated strategies (default: plain,skip-it)."
  in
  let fault =
    let cv =
      let parse s =
        match Campaign.fault_of_name s with
        | Some f -> Ok f
        | None -> Error (`Msg ("unknown fault " ^ s ^ " (none, drop-nth-persist:N, drop-all-persists)"))
      in
      Arg.conv (parse, fun ppf f -> Format.pp_print_string ppf (Campaign.fault_name f))
    in
    Arg.(value & opt cv Campaign.No_fault
         & info [ "fault" ] ~docv:"FAULT"
           ~doc:"Seeded fault for validating the campaign itself: a test-only \
                 strategy wrapper eliding required writebacks \
                 (none, drop-nth-persist:N, drop-all-persists).")
  in
  let repro =
    Arg.(value & opt (some file) None
         & info [ "repro" ] ~docv:"FILE" ~doc:"Replay a reproducer file instead of a campaign.")
  in
  let repro_out =
    Arg.(value & opt string "audit-repro.txt"
         & info [ "repro-out" ] ~docv:"FILE"
           ~doc:"Where to write the shrunk reproducer when a spec fails.")
  in
  let replay ~l2_banks file =
    match Campaign.read_reproducer file with
    | Error e ->
      prerr_endline ("reproducer error: " ^ e);
      exit 1
    | Ok f ->
      let t = Campaign.run_trial ~l2_banks f.Campaign.spec ~crash_at:f.Campaign.crash_at in
      Printf.printf "replay %s crash_at=%s: %d persists, %d op(s) completed\n"
        (Campaign.spec_name f.Campaign.spec)
        (match f.Campaign.crash_at with Some b -> string_of_int b | None -> "-")
        t.Campaign.persists t.Campaign.completed;
      if t.Campaign.violations = [] then print_endline "no violations (does not reproduce)"
      else begin
        List.iter (fun v -> Printf.printf "violation: %s\n" v) t.Campaign.violations;
        exit 1
      end
  in
  let run seed ops budget structures modes strategies fault repro repro_out l2_banks jobs =
    match repro with
    | Some file -> replay ~l2_banks file
    | None ->
      let structures = Option.value structures ~default:Campaign.all_structures in
      let modes = Option.value modes ~default:Skipit_persist.Pctx.all_modes in
      let strategies =
        Option.value strategies ~default:[ Campaign.Plain; Campaign.Skipit ]
      in
      let specs =
        List.concat_map
          (fun structure ->
            List.concat_map
              (fun mode ->
                List.filter_map
                  (fun strategy ->
                    let s =
                      { Campaign.structure; mode; strategy; fault; seed; n_ops = ops }
                    in
                    if Campaign.compatible s then Some s else None)
                  strategies)
              modes)
          structures
      in
      Printf.printf "audit campaign: %d spec(s), seed %d, %d op(s), boundary budget %d\n%!"
        (List.length specs) seed ops budget;
      let reports =
        with_jobs jobs (fun pool -> Campaign.run_campaign ?pool ~budget ~l2_banks specs)
      in
      let failed = ref 0 in
      List.iter
        (fun r ->
          with_ppf (fun ppf -> Campaign.pp_report ppf r);
          match r.Campaign.failure with
          | None -> ()
          | Some f ->
            incr failed;
            if !failed = 1 then begin
              print_endline "shrinking first failure...";
              let s = Campaign.shrink f in
              Campaign.write_reproducer repro_out s;
              Printf.printf
                "minimal reproducer: %s crash_at=%s (%d op(s)) -> wrote %s\n"
                (Campaign.spec_name s.Campaign.spec)
                (match s.Campaign.crash_at with Some b -> string_of_int b | None -> "-")
                s.Campaign.spec.Campaign.n_ops repro_out
            end)
        reports;
      if !failed = 0 then
        Printf.printf "audit campaign: all %d spec(s) clean\n" (List.length reports)
      else begin
        Printf.printf "audit campaign: %d/%d spec(s) FAILED\n" !failed (List.length reports);
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Crash-injection campaign: every structure x mode x strategy, \
             crashed at persist boundaries, repaired and checked for durable \
             linearizability plus hierarchy invariants")
    Term.(const run $ seed $ ops $ budget $ structures $ modes $ strategies $ fault
          $ repro $ repro_out $ l2_banks_arg $ jobs_arg)

let serve_cmd =
  let module Engine = Skipit_serve.Engine in
  let module Arrival = Skipit_serve.Arrival in
  let module Report = Skipit_serve.Report in
  let module Ops = Skipit_pds.Set_ops in
  let module Ds_bench = Skipit_workload.Ds_bench in
  let module Pctx = Skipit_persist.Pctx in
  let conv_of ~what ~of_name ~to_name =
    Arg.conv
      ( (fun s ->
          match of_name s with
          | Some v -> Ok v
          | None -> Error (`Msg (Printf.sprintf "unknown %s %S" what s))),
        fun ppf v -> Format.pp_print_string ppf (to_name v) )
  in
  let structure =
    let of_name s = List.find_opt (fun k -> Ops.kind_name k = s) Ops.all_kinds in
    Arg.(value
         & opt (conv_of ~what:"structure" ~of_name ~to_name:Ops.kind_name)
             Engine.default.Engine.kind
         & info [ "structure" ] ~docv:"S"
           ~doc:"Structure to serve: list, hash, bst, skiplist.")
  in
  let mode =
    let of_name s = List.find_opt (fun m -> Pctx.mode_name m = s) Pctx.all_modes in
    Arg.(value
         & opt (conv_of ~what:"mode" ~of_name ~to_name:Pctx.mode_name)
             Engine.default.Engine.mode
         & info [ "mode" ] ~docv:"M"
           ~doc:"Persistence mode: automatic, nvtraverse, manual.")
  in
  let strategy =
    Arg.(value
         & opt (conv_of ~what:"strategy" ~of_name:Ds_bench.spec_of_name
                  ~to_name:Ds_bench.spec_name)
             Engine.default.Engine.spec
         & info [ "strategy" ] ~docv:"STRAT"
           ~doc:"Persist strategy: plain, flit-adjacent, flit-hash[/N], \
                 link-and-persist, skip-it, baseline.")
  in
  let arrival =
    Arg.(value
         & opt (conv_of ~what:"arrival process" ~of_name:Arrival.process_of_name
                  ~to_name:Arrival.process_name)
             Engine.default.Engine.process
         & info [ "arrival" ] ~docv:"PROC"
           ~doc:"Arrival process: poisson, or bursty[:ON/OFF] (on/off phase \
                 lengths in cycles).")
  in
  let keys =
    let module Workload = Skipit_serve.Workload in
    Arg.(value
         & opt (conv_of ~what:"key distribution" ~of_name:Workload.keys_of_name
                  ~to_name:Workload.keys_name)
             Workload.Uniform
         & info [ "keys" ] ~docv:"DIST"
           ~doc:"Key popularity: uniform, zipf (theta 0.99), or zipf:THETA.")
  in
  let churn =
    Arg.(value & opt (some int) None
         & info [ "churn" ] ~docv:"CYCLES"
           ~doc:"Hot-set rotation period in cycles (requires zipf keys): \
                 every period the rank-to-key mapping rotates by a seeded \
                 offset.")
  in
  let mix =
    Arg.(value & opt (some string) None
         & info [ "mix" ] ~docv:"R:W"
           ~doc:"Read/write mix, e.g. 80:20 (overrides --update).")
  in
  let phases =
    Arg.(value & opt (some string) None
         & info [ "phases" ] ~docv:"LEN:MULT,..."
           ~doc:"Diurnal rate phases wrapped around the arrival process: \
                 comma-separated LEN:MULT segments (length in cycles, rate \
                 multiplier as a decimal; 0 = dead trough), e.g. \
                 4000:0.25,4000:2.5.")
  in
  let rates =
    Arg.(value
         & opt (some (list ~sep:',' float)) None
         & info [ "rate" ] ~docv:"R1,R2,..."
           ~doc:"Offered loads to sweep, in operations per 1000 cycles \
                 (default: the standard sweep; --quick thins it).")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Fewer sweep points and requests.") in
  let batch =
    Arg.(value & opt int Engine.default.Engine.batch
         & info [ "batch" ] ~docv:"N"
           ~doc:"Group-commit epoch size; 1 = per-operation persists.")
  in
  let depth =
    Arg.(value & opt int Engine.default.Engine.depth
         & info [ "depth" ] ~docv:"N"
           ~doc:"Waiting-room capacity; arrivals that find it full are shed.")
  in
  let clients =
    Arg.(value & opt int Engine.default.Engine.clients
         & info [ "clients" ] ~docv:"N" ~doc:"Independent open-loop sessions.")
  in
  let requests =
    Arg.(value & opt (some int) None
         & info [ "requests" ] ~docv:"N"
           ~doc:"Requests per sweep point (default 2000; 600 with --quick).")
  in
  let cores =
    Arg.(value & opt int Engine.default.Engine.cores
         & info [ "cores" ] ~docv:"N" ~doc:"Serving cores, each with its own batcher.")
  in
  let update =
    Arg.(value & opt int Engine.default.Engine.update_pct
         & info [ "update" ] ~docv:"PCT" ~doc:"Update percentage (insert/delete 50/50).")
  in
  let seed = Arg.(value & opt int Engine.default.Engine.seed & info [ "seed" ] ~doc:"Workload seed.") in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of a table.") in
  let telemetry =
    Arg.(value & opt (some string) None
         & info [ "telemetry" ] ~docv:"FILE"
           ~doc:"Record per-stage cycle attribution and windowed metrics \
                 during every run and write the telemetry JSON to FILE \
                 ('-' for stdout).  Simulated cycles are bit-identical with \
                 this on or off, and the document is byte-identical at any \
                 --jobs width.")
  in
  let window =
    Arg.(value & opt int Engine.default.Engine.window
         & info [ "window" ] ~docv:"CYCLES"
           ~doc:"Metrics window width in simulated cycles.")
  in
  let run structure mode strategy arrival keys churn mix phases rates quick batch depth
      clients requests cores update seed csv json telemetry window l2_banks jobs =
    let module Workload = Skipit_serve.Workload in
    let update_pct =
      match mix with
      | None -> update
      | Some spec -> (
        match Workload.mix_of_spec spec with
        | Some pct -> pct
        | None ->
          prerr_endline ("serve: bad --mix " ^ spec ^ " (want R:W, e.g. 80:20)");
          exit 2)
    in
    let process =
      match phases with
      | None -> arrival
      | Some spec -> (
        match Arrival.phases_of_spec spec with
        | None ->
          prerr_endline
            ("serve: bad --phases " ^ spec ^ " (want LEN:MULT[,LEN:MULT])");
          exit 2
        | Some ps -> (
          match Arrival.with_phases arrival ps with
          | Some p -> p
          | None ->
            prerr_endline "serve: --phases cannot wrap an already-phased process";
            exit 2))
    in
    let cfg =
      {
        Engine.default with
        Engine.kind = structure;
        mode;
        spec = strategy;
        process;
        workload = { Workload.keys; churn };
        clients;
        requests = (match requests with Some n -> n | None -> if quick then 600 else 2000);
        batch;
        depth;
        cores;
        update_pct;
        seed;
        telemetry = telemetry <> None;
        window;
      }
    in
    (match Engine.validate cfg with
     | Ok () -> ()
     | Error e ->
       prerr_endline ("serve: " ^ e);
       exit 2);
    let rates = match rates with Some rs -> rs | None -> Report.default_rates ~quick in
    let params =
      if l2_banks = 1 then None else Some (C.Params.with_l2_banks C.default l2_banks)
    in
    let points = with_jobs jobs (fun pool -> Engine.sweep ?params ?pool cfg ~rates) in
    if json then print_string (Report.to_json cfg points)
    else
      with_ppf (fun ppf ->
        if csv then Report.pp_csv ppf points
        else begin
          Report.pp_config ppf cfg;
          Report.pp_table ppf points
        end);
    (if not json && not csv then
       let leaked =
         List.fold_left (fun acc (p : Engine.point) -> acc + p.Engine.leaked) 0 points
       in
       if
         List.for_all
           (fun (p : Engine.point) -> p.Engine.served + p.Engine.shed = p.Engine.n)
           points
         && leaked = 0
       then
         Printf.printf "conservation: ok (served + shed = offered at every point, 0 leaked slots)\n"
       else begin
         Printf.printf "conservation: VIOLATED (%d leaked slot(s))\n" leaked;
         exit 1
       end);
    match telemetry with
    | None -> ()
    | Some "-" -> print_string (Report.telemetry_json cfg points)
    | Some file ->
      let oc = open_out file in
      output_string oc (Report.telemetry_json cfg points);
      close_out oc;
      Printf.printf "telemetry: wrote %s (%d point%s)\n" file (List.length points)
        (if List.length points = 1 then "" else "s")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Open-loop serving: arrival-process load over a persistent \
             structure with group-committed persists, bounded admission and \
             load shedding; prints the throughput-latency sweep")
    Term.(const run $ structure $ mode $ strategy $ arrival $ keys $ churn $ mix
          $ phases $ rates $ quick $ batch $ depth $ clients $ requests $ cores $ update
          $ seed $ csv $ json $ telemetry $ window $ l2_banks_arg $ jobs_arg)

let telemetry_cmd =
  let module Engine = Skipit_serve.Engine in
  let module Report = Skipit_serve.Report in
  let module Metrics = Skipit_obs.Metrics in
  let rate =
    Arg.(value & opt float 16.
         & info [ "rate" ] ~docv:"R" ~doc:"Offered load in operations per 1000 cycles.")
  in
  let requests =
    Arg.(value & opt int Engine.default.Engine.requests
         & info [ "requests" ] ~docv:"N" ~doc:"Requests to serve.")
  in
  let batch =
    Arg.(value & opt int Engine.default.Engine.batch
         & info [ "batch" ] ~docv:"N" ~doc:"Group-commit epoch size.")
  in
  let depth =
    Arg.(value & opt int Engine.default.Engine.depth
         & info [ "depth" ] ~docv:"N" ~doc:"Waiting-room capacity.")
  in
  let clients =
    Arg.(value & opt int Engine.default.Engine.clients
         & info [ "clients" ] ~docv:"N" ~doc:"Independent open-loop sessions.")
  in
  let cores =
    Arg.(value & opt int Engine.default.Engine.cores
         & info [ "cores" ] ~docv:"N" ~doc:"Serving cores.")
  in
  let update =
    Arg.(value & opt int Engine.default.Engine.update_pct
         & info [ "update" ] ~docv:"PCT" ~doc:"Update percentage.")
  in
  let seed =
    Arg.(value & opt int Engine.default.Engine.seed & info [ "seed" ] ~doc:"Workload seed.")
  in
  let window =
    Arg.(value & opt int Engine.default.Engine.window
         & info [ "window" ] ~docv:"CYCLES" ~doc:"Metrics window width in simulated cycles.")
  in
  let out_json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the full telemetry document (latency, attribution, metrics) \
                 as JSON ('-' for stdout).")
  in
  let out_prom =
    Arg.(value & opt (some string) None
         & info [ "prom" ] ~docv:"FILE"
           ~doc:"Write the metrics registry as Prometheus-style text ('-' for stdout).")
  in
  let out_csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
           ~doc:"Write the metrics registry as CSV ('-' for stdout).")
  in
  let out_perfetto =
    Arg.(value & opt (some string) None
         & info [ "perfetto" ] ~docv:"FILE"
           ~doc:"Also trace the run and write Chrome trace-event JSON with the \
                 metrics as counter tracks (open in ui.perfetto.dev).")
  in
  let write ~what dest content =
    match dest with
    | "-" -> print_string content
    | file ->
      let oc = open_out file in
      output_string oc content;
      close_out oc;
      Printf.printf "telemetry: wrote %s (%s)\n" file what
  in
  let run rate requests batch depth clients cores update seed window l2_banks out_json
      out_prom out_csv out_perfetto =
    let cfg =
      {
        Engine.default with
        Engine.requests;
        batch;
        depth;
        clients;
        cores;
        update_pct = update;
        seed;
        telemetry = true;
        window;
      }
    in
    (match Engine.validate cfg with
     | Ok () -> ()
     | Error e ->
       prerr_endline ("telemetry: " ^ e);
       exit 2);
    let tr =
      match out_perfetto with
      | None -> None
      | Some _ -> Some (Trace.start ~capacity:(1 lsl 21) ())
    in
    let params =
      if l2_banks = 1 then None else Some (C.Params.with_l2_banks C.default l2_banks)
    in
    let point = Engine.run ?params cfg ~rate in
    (match tr with Some _ -> ignore (Trace.stop ()) | None -> ());
    (* Console summary: the CO-corrected distribution next to what a naive
       (dequeue-stamped) recorder would have reported, then where the
       cycles went. *)
    let pp_summary name = function
      | Some (s : Latency.summary) ->
        Printf.printf "%-22s p50 %.0f  p95 %.0f  p99 %.0f  p99.9 %.0f  max %.0f\n" name
          s.Latency.p50 s.Latency.p95 s.Latency.p99 s.Latency.p999 s.Latency.max
      | None -> ()
    in
    Printf.printf "rate %.1f: served %d, shed %d (of %d)\n" rate point.Engine.served
      point.Engine.shed point.Engine.n;
    pp_summary "latency (intended):" point.Engine.latency;
    pp_summary "latency (dequeue):" point.Engine.dequeue_latency;
    (match point.Engine.gap with
     | Some g ->
       Printf.printf "%-22s p50 %.0f  p99 %.0f  p99.9 %.0f\n" "co gap (cycles):"
         g.Latency.gap_p50 g.Latency.gap_p99 g.Latency.gap_p999
     | None -> ());
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 point.Engine.attribution in
    if total > 0 then begin
      Printf.printf "attribution over %d request(s), %d cycle(s):\n"
        point.Engine.attr_requests total;
      List.iter
        (fun (name, c) ->
          if c > 0 then
            Printf.printf "  %-14s %10d  %5.1f%%\n" name c
              (100. *. float_of_int c /. float_of_int total))
        point.Engine.attribution;
      Printf.printf "conservation: %s (%d cycle(s) trimmed)\n"
        (if point.Engine.attr_conserved then "ok" else "VIOLATED")
        point.Engine.attr_trimmed
    end;
    (match out_json with
     | None -> ()
     | Some dest -> write ~what:"telemetry JSON" dest (Report.telemetry_json cfg [ point ]));
    (match point.Engine.metrics with
     | None -> ()
     | Some m ->
       (match out_prom with
        | None -> ()
        | Some dest -> write ~what:"prometheus text" dest (Metrics.to_prometheus m));
       (match out_csv with
        | None -> ()
        | Some dest -> write ~what:"metrics CSV" dest (Metrics.to_csv m)));
    match out_perfetto, tr, point.Engine.metrics with
    | Some dest, Some tr, Some m ->
      Perfetto.write_file ~counters:(Metrics.counter_tracks m) dest tr;
      Printf.printf "telemetry: wrote %s (%d events + %d counter tracks)\n" dest
        (Trace.length tr)
        (List.length (Metrics.counter_tracks m))
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:"Serve one offered-load point with cycle-accounting telemetry on: \
             per-stage critical-path attribution, windowed metrics, and \
             coordinated-omission-correct latency, exportable as JSON, \
             Prometheus text, CSV, or Perfetto counter tracks")
    Term.(const run $ rate $ requests $ batch $ depth $ clients $ cores $ update $ seed
          $ window $ l2_banks_arg $ out_json $ out_prom $ out_csv $ out_perfetto)

let fleet_cmd =
  let module Fleet = Skipit_fleet.Fleet in
  let module Arrival = Skipit_serve.Arrival in
  let module Ops = Skipit_pds.Set_ops in
  let module Ds_bench = Skipit_workload.Ds_bench in
  let module Pctx = Skipit_persist.Pctx in
  let conv_of ~what ~of_name ~to_name =
    Arg.conv
      ( (fun s ->
          match of_name s with
          | Some v -> Ok v
          | None -> Error (`Msg (Printf.sprintf "unknown %s %S" what s))),
        fun ppf v -> Format.pp_print_string ppf (to_name v) )
  in
  let d = Fleet.default in
  let shards =
    Arg.(value & opt int d.Fleet.shards
         & info [ "shards" ] ~docv:"N" ~doc:"Independent serving shards (one system each).")
  in
  let replicas =
    Arg.(value & opt int d.Fleet.replicas
         & info [ "replicas" ] ~docv:"K" ~doc:"Copies of every key (1 <= K <= shards).")
  in
  let vnodes =
    Arg.(value & opt int d.Fleet.vnodes
         & info [ "vnodes" ] ~docv:"N" ~doc:"Ring virtual nodes per shard.")
  in
  let structure =
    let of_name s = List.find_opt (fun k -> Ops.kind_name k = s) Ops.all_kinds in
    Arg.(value
         & opt (conv_of ~what:"structure" ~of_name ~to_name:Ops.kind_name) d.Fleet.kind
         & info [ "structure" ] ~docv:"S"
           ~doc:"Structure each shard serves: list, hash, bst, skiplist.")
  in
  let mode =
    let of_name s = List.find_opt (fun m -> Pctx.mode_name m = s) Pctx.all_modes in
    Arg.(value
         & opt (conv_of ~what:"mode" ~of_name ~to_name:Pctx.mode_name) d.Fleet.mode
         & info [ "mode" ] ~docv:"M" ~doc:"Persistence mode: automatic, nvtraverse, manual.")
  in
  let strategy =
    Arg.(value
         & opt (conv_of ~what:"strategy" ~of_name:Ds_bench.spec_of_name
                  ~to_name:Ds_bench.spec_name)
             d.Fleet.spec
         & info [ "strategy" ] ~docv:"STRAT"
           ~doc:"Persist strategy: plain, flit-adjacent, flit-hash[/N], \
                 link-and-persist, skip-it.")
  in
  let arrival =
    Arg.(value
         & opt (conv_of ~what:"arrival process" ~of_name:Arrival.process_of_name
                  ~to_name:Arrival.process_name)
             d.Fleet.process
         & info [ "arrival" ] ~docv:"PROC"
           ~doc:"Arrival process: poisson, bursty[:ON/OFF], or \
                 degraded:S-E[,S-E]:BASE (fault windows over BASE).")
  in
  let keys =
    let module Workload = Skipit_serve.Workload in
    Arg.(value
         & opt (conv_of ~what:"key distribution" ~of_name:Workload.keys_of_name
                  ~to_name:Workload.keys_name)
             Workload.Uniform
         & info [ "keys" ] ~docv:"DIST"
           ~doc:"Key popularity: uniform, zipf (theta 0.99), or zipf:THETA — \
                 skew concentrates traffic on few ring positions.")
  in
  let churn =
    Arg.(value & opt (some int) None
         & info [ "churn" ] ~docv:"CYCLES"
           ~doc:"Hot-set rotation period in cycles (requires zipf keys).")
  in
  let mix =
    Arg.(value & opt (some string) None
         & info [ "mix" ] ~docv:"R:W"
           ~doc:"Read/write mix, e.g. 80:20 (overrides --update).")
  in
  let phases =
    Arg.(value & opt (some string) None
         & info [ "phases" ] ~docv:"LEN:MULT,..."
           ~doc:"Diurnal rate phases wrapped around the arrival process \
                 (LEN:MULT comma list; composes under degraded windows).")
  in
  let faults =
    let of_name = Fleet.fault_schedule_of_name in
    Arg.(value
         & opt (conv_of ~what:"fault schedule" ~of_name
                  ~to_name:Fleet.fault_schedule_name)
             d.Fleet.faults
         & info [ "fault-schedule" ] ~docv:"SCHED"
           ~doc:"Shard kills: none, rand:N (N seeded mid-run kills), or \
                 AT:SHARD[,AT:SHARD] explicit kill times in cycles.")
  in
  let rates =
    Arg.(value & opt (list ~sep:',' float) [ 16. ]
         & info [ "rate" ] ~docv:"R1,R2,..."
           ~doc:"Offered loads to sweep, in operations per 1000 cycles.")
  in
  let clients =
    Arg.(value & opt int d.Fleet.clients
         & info [ "clients" ] ~docv:"N" ~doc:"Independent open-loop sessions.")
  in
  let requests =
    Arg.(value & opt int d.Fleet.requests
         & info [ "requests" ] ~docv:"N" ~doc:"Requests per sweep point.")
  in
  let depth =
    Arg.(value & opt int d.Fleet.depth
         & info [ "depth" ] ~docv:"N" ~doc:"Waiting-room slots per shard.")
  in
  let batch =
    Arg.(value & opt int d.Fleet.batch
         & info [ "batch" ] ~docv:"N" ~doc:"Group-commit epoch size per shard.")
  in
  let retry_max =
    Arg.(value & opt int d.Fleet.retry_max
         & info [ "retry-max" ] ~docv:"N" ~doc:"Retry budget before a write is shed.")
  in
  let backoff =
    Arg.(value & opt int d.Fleet.backoff
         & info [ "backoff" ] ~docv:"CYCLES"
           ~doc:"Base retry backoff; attempt i waits backoff*2^i (+ seeded jitter), \
                 capped by --backoff-cap.")
  in
  let backoff_cap =
    Arg.(value & opt int d.Fleet.backoff_cap
         & info [ "backoff-cap" ] ~docv:"CYCLES" ~doc:"Exponential backoff ceiling.")
  in
  let timeout =
    Arg.(value & opt int d.Fleet.timeout
         & info [ "timeout" ] ~docv:"CYCLES" ~doc:"Dead-shard detection penalty.")
  in
  let fanout_pct =
    Arg.(value & opt int d.Fleet.fanout_pct
         & info [ "fanout-pct" ] ~docv:"PCT" ~doc:"Percent of reads that become multi-gets.")
  in
  let update =
    Arg.(value & opt int d.Fleet.update_pct
         & info [ "update" ] ~docv:"PCT" ~doc:"Update percentage (insert/delete 50/50).")
  in
  let seed = Arg.(value & opt int d.Fleet.seed & info [ "seed" ] ~doc:"Fleet seed.") in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.") in
  let repro =
    Arg.(value & opt (some string) None
         & info [ "repro" ] ~docv:"FILE"
           ~doc:"Replay a fleet reproducer file instead of building a config \
                 from the other flags.")
  in
  let repro_out =
    Arg.(value & opt string "fleet-repro.txt"
         & info [ "repro-out" ] ~docv:"FILE"
           ~doc:"Where to write the shrunk reproducer when a run fails verification.")
  in
  let pp_points ppf (cfg : Fleet.config) points =
    let open Format in
    fprintf ppf
      "fleet: %d shard(s) x %d replica(s), %s/%s/%s, %s keys, %d client(s), \
       %d request(s), faults %s, seed %d@."
      cfg.Fleet.shards cfg.Fleet.replicas
      (Ops.kind_name cfg.Fleet.kind) (Pctx.mode_name cfg.Fleet.mode)
      (Ds_bench.spec_name cfg.Fleet.spec)
      (Skipit_serve.Workload.name cfg.Fleet.workload)
      cfg.Fleet.clients cfg.Fleet.requests
      (Fleet.fault_schedule_name cfg.Fleet.faults) cfg.Fleet.seed;
    fprintf ppf
      "%8s %8s %7s %6s %6s %6s %6s %6s %7s %9s %9s %9s@." "offered" "achieved"
      "served" "shed" "part" "fail" "crash" "retry" "hints" "p50" "p99" "p99.9";
    List.iter
      (fun (p : Fleet.point) ->
        let l f = match p.Fleet.latency with Some s -> f s | None -> 0. in
        fprintf ppf "%8.1f %8.2f %7d %6d %6d %6d %6d %6d %7d %9.0f %9.0f %9.0f@."
          p.Fleet.offered p.Fleet.achieved p.Fleet.served p.Fleet.shed p.Fleet.partial
          p.Fleet.failovers p.Fleet.crashes p.Fleet.retries p.Fleet.hints
          (l (fun s -> s.Latency.p50)) (l (fun s -> s.Latency.p99))
          (l (fun s -> s.Latency.p999)))
      points;
    List.iter
      (fun (p : Fleet.point) ->
        if p.Fleet.crashes > 0 || p.Fleet.violations <> [] then begin
          fprintf ppf "-- rate %.1f: shard detail --@." p.Fleet.offered;
          Array.iter
            (fun (s : Fleet.shard_stat) ->
              fprintf ppf
                "  shard %d: %s, %d op(s), %d commit(s), %d shed, %d crash(es), \
                 %d hint(s) replayed, %d recovery cycle(s)@."
                s.Fleet.s_id s.Fleet.s_state s.Fleet.s_executed s.Fleet.s_commits
                s.Fleet.s_shed s.Fleet.s_crashes s.Fleet.s_hints s.Fleet.s_recovery)
            p.Fleet.shards
        end)
      points
  in
  let pp_csv ppf points =
    Format.fprintf ppf
      "offered,achieved,served,shed,partial,failovers,crashes,repairs,retries,hints,\
       recovery_cycles,elapsed,p50,p99,p999@.";
    List.iter
      (fun (p : Fleet.point) ->
        let l f = match p.Fleet.latency with Some s -> f s | None -> 0. in
        Format.fprintf ppf "%g,%g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%g,%g,%g@."
          p.Fleet.offered p.Fleet.achieved p.Fleet.served p.Fleet.shed p.Fleet.partial
          p.Fleet.failovers p.Fleet.crashes p.Fleet.repairs p.Fleet.retries
          p.Fleet.hints p.Fleet.recovery_cycles p.Fleet.elapsed
          (l (fun s -> s.Latency.p50)) (l (fun s -> s.Latency.p99))
          (l (fun s -> s.Latency.p999)))
      points
  in
  let run shards replicas vnodes structure mode strategy arrival keys churn mix phases
      faults rates clients requests depth batch retry_max backoff backoff_cap timeout
      fanout_pct update seed csv repro repro_out jobs =
    let module Workload = Skipit_serve.Workload in
    let cfg, rates =
      match repro with
      | Some file -> (
        match Fleet.read_reproducer file with
        | Ok (cfg, rate) -> (cfg, [ rate ])
        | Error e ->
          prerr_endline ("fleet: " ^ e);
          exit 2)
      | None ->
        let update_pct =
          match mix with
          | None -> update
          | Some spec -> (
            match Workload.mix_of_spec spec with
            | Some pct -> pct
            | None ->
              prerr_endline ("fleet: bad --mix " ^ spec ^ " (want R:W, e.g. 80:20)");
              exit 2)
        in
        let process =
          match phases with
          | None -> arrival
          | Some spec -> (
            match Arrival.phases_of_spec spec with
            | None ->
              prerr_endline
                ("fleet: bad --phases " ^ spec ^ " (want LEN:MULT[,LEN:MULT])");
              exit 2
            | Some ps -> (
              match Arrival.with_phases arrival ps with
              | Some p -> p
              | None ->
                prerr_endline
                  "fleet: --phases cannot wrap an already-phased process";
                exit 2))
        in
        ( {
            Fleet.default with
            Fleet.shards;
            replicas;
            vnodes;
            kind = structure;
            mode;
            spec = strategy;
            process;
            workload = { Workload.keys; churn };
            clients;
            requests;
            depth;
            batch;
            retry_max;
            backoff;
            backoff_cap;
            timeout;
            fanout_pct;
            update_pct;
            seed;
            faults;
          },
          rates )
    in
    (match Fleet.validate cfg with
     | Ok () -> ()
     | Error e ->
       prerr_endline ("fleet: " ^ e);
       exit 2);
    let points = with_jobs jobs (fun pool -> Fleet.sweep ?pool cfg ~rates) in
    with_ppf (fun ppf -> if csv then pp_csv ppf points else pp_points ppf cfg points);
    let bad =
      List.filter (fun (p : Fleet.point) -> p.Fleet.violations <> []) points
    in
    if bad = [] then begin
      Printf.printf "conservation: ok (%d checkpoint(s))\n"
        (List.fold_left (fun acc (p : Fleet.point) -> acc + p.Fleet.checkpoints) 0 points);
      print_endline "verification: ok (durable linearizability holds fleet-wide)"
    end
    else begin
      List.iter
        (fun (p : Fleet.point) ->
          Printf.printf "verification FAILED at rate %.1f (%d violation(s)):\n"
            p.Fleet.offered
            (List.length p.Fleet.violations);
          List.iteri
            (fun i v -> if i < 8 then print_endline ("  " ^ v))
            p.Fleet.violations)
        bad;
      let rate =
        match bad with p :: _ -> p.Fleet.offered | [] -> assert false
      in
      let small, sp = Fleet.shrink cfg ~rate in
      Fleet.write_reproducer repro_out small ~rate;
      Printf.printf
        "minimal reproducer: %d request(s), %d violation(s) -> wrote %s\n"
        small.Fleet.requests
        (List.length sp.Fleet.violations)
        repro_out;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Sharded serving fleet: consistent-hash routing with K-way \
             replication over independent shard systems, crash-driven \
             failover with retry/backoff and hinted handoff, graceful load \
             shedding, and fleet-wide durable-linearizability verification")
    Term.(const run $ shards $ replicas $ vnodes $ structure $ mode $ strategy $ arrival
          $ keys $ churn $ mix $ phases $ faults $ rates $ clients $ requests $ depth
          $ batch $ retry_max $ backoff $ backoff_cap $ timeout $ fanout_pct $ update
          $ seed $ csv $ repro $ repro_out $ jobs_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "skipit_sim" ~version:"1.0.0"
      ~doc:"Simulator for 'Skip It: Take Control of Your Cache!' (ASPLOS 2024)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            figure_cmd; stats_cmd; sweep_cmd; ablate_cmd; run_cmd; trace_cmd; audit_cmd;
            serve_cmd; telemetry_cmd; fleet_cmd;
          ]))
