(* The observability layer: ring-buffer mechanics, request-span matching,
   the zero-impact contract (golden cycle counts with tracing ENABLED), a
   deterministic event fingerprint for a fixed trace program, and the
   structure of the Perfetto export. *)

module Trace = Skipit_obs.Trace
module Latency = Skipit_obs.Latency
module Perfetto = Skipit_obs.Perfetto
module S = Skipit_core.System
module C = Skipit_core.Config
module TP = Skipit_workload.Trace_program

let l1 ?(core = 0) ?(addr = 0x40) op = Trace.L1 { core; op; addr }

(* == Ring buffer ======================================================= *)

let test_ring_wraparound () =
  let t = Trace.create ~capacity:8 () in
  for i = 1 to 20 do
    Trace.add t ~at:i (l1 ~addr:i Trace.Load_hit)
  done;
  Alcotest.(check int) "length capped" 8 (Trace.length t);
  Alcotest.(check int) "dropped counted" 12 (Trace.dropped t);
  Alcotest.(check (list int)) "oldest-first survivors"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map (fun r -> r.Trace.at) (Trace.records t))

let test_filter () =
  let t = Trace.create ~filter:[ "l1.0"; "dram" ] () in
  Trace.add t ~at:1 (l1 ~core:0 Trace.Load_hit);
  Trace.add t ~at:2 (l1 ~core:1 Trace.Load_hit);
  Trace.add t ~at:3 (Trace.Dram { op = Trace.Dram_read; addr = 0 });
  Alcotest.(check int) "core 1 filtered out" 2 (Trace.length t);
  Alcotest.(check (list string)) "kept tracks" [ "l1.0"; "dram" ]
    (List.map (fun r -> Trace.track r.Trace.ev) (Trace.records t))

let test_disabled_is_inert () =
  ignore (Trace.stop ());
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  Trace.emit ~at:1 (l1 Trace.Load_hit) (* must not raise *);
  let id = Trace.req_start ~at:1 ~cls:Trace.Cls_load_miss ~core:0 ~addr:0 in
  Alcotest.(check int) "req_start returns -1 when disabled" (-1) id;
  Trace.req_end ~at:2 id

(* == Latency matching ================================================== *)

let test_latency_matching () =
  let t = Trace.create () in
  (* Two matched spans in one class, one in another, one unmatched start and
     one unmatched end. *)
  Trace.add t ~at:10 (Trace.Req_start { id = 1; cls = Trace.Cls_load_miss; core = 0; addr = 0x40 });
  Trace.add t ~at:60 (Trace.Req_end { id = 1 });
  Trace.add t ~at:20 (Trace.Req_start { id = 2; cls = Trace.Cls_load_miss; core = 0; addr = 0x80 });
  Trace.add t ~at:120 (Trace.Req_end { id = 2 });
  Trace.add t ~at:0 (Trace.Req_start { id = 3; cls = Trace.Cls_cbo_flush; core = 1; addr = 0xc0 });
  Trace.add t ~at:7 (Trace.Req_end { id = 3 });
  Trace.add t ~at:5 (Trace.Req_start { id = 4; cls = Trace.Cls_store_miss; core = 0; addr = 0x100 });
  Trace.add t ~at:9 (Trace.Req_end { id = 99 });
  let lat = Latency.of_trace t in
  let module Sample = Skipit_sim.Stats.Sample in
  Alcotest.(check int) "load_miss count" 2 (Sample.count (Latency.sample lat Trace.Cls_load_miss));
  Alcotest.(check (float 1e-9)) "load_miss median" 75.
    (Sample.median (Latency.sample lat Trace.Cls_load_miss));
  Alcotest.(check int) "cbo.flush count" 1 (Sample.count (Latency.sample lat Trace.Cls_cbo_flush));
  Alcotest.(check int) "overall count" 3 (Sample.count (Latency.overall lat));
  Alcotest.(check int) "unmatched starts" 1 (Latency.unmatched_starts lat);
  Alcotest.(check int) "unmatched ends" 1 (Latency.unmatched_ends lat);
  match Latency.summarize (Latency.overall lat) with
  | None -> Alcotest.fail "overall summary empty"
  | Some s ->
    Alcotest.(check int) "summary count" 3 s.Latency.count;
    Alcotest.(check (float 1e-9)) "summary max" 100. s.Latency.max

let test_occupancy_series () =
  let t = Trace.create () in
  let res at idx op = Trace.add t ~at (Trace.Resource { comp = "l2.mshr"; idx; op }) in
  res 10 0 Trace.Res_alloc;
  res 12 1 Trace.Res_alloc;
  res 20 0 Trace.Res_free;
  res 30 1 Trace.Res_free;
  Alcotest.(check (list (pair int int)))
    "step series" [ 10, 1; 12, 2; 20, 1; 30, 0 ]
    (Latency.occupancy_series t ~comp:"l2.mshr")

(* == Whole-system runs ================================================= *)

let trace name = Printf.sprintf "../../../examples/traces/%s.trace" name

let run_traced ?(skip_it = true) name =
  match TP.load_file (trace name) with
  | Error e -> Alcotest.failf "trace %s: %s" name e
  | Ok program ->
    let cores = TP.max_core program + 1 in
    let sys = S.create (C.platform ~cores ~skip_it ()) in
    let (cycles, _), tr = Trace.with_trace (fun () -> TP.run sys program) in
    cycles, tr

(* The golden cycle counts must hold with tracing ENABLED: recording events
   may not perturb simulated time. *)
let test_golden_cycles_traced () =
  List.iter
    (fun (name, golden) ->
      List.iter
        (fun skip_it ->
          let cycles, tr = run_traced ~skip_it name in
          Alcotest.(check int)
            (Printf.sprintf "%s skip_it=%b (traced)" name skip_it)
            golden cycles;
          Alcotest.(check bool) (name ^ " produced events") true (Trace.length tr > 0))
        [ false; true ])
    [ "producer_consumer", 915; "redundant_flush", 1120; "fig5_semantics", 127 ]

(* Aggregate event counts by top-level component.  The fixed program is
   deterministic, so this fingerprint only moves when emission points are
   added, removed, or rescheduled — exactly the diff a reviewer wants to
   see. *)
let component_fingerprint tr =
  let tbl = Hashtbl.create 16 in
  Trace.iter tr (fun r ->
    let track = Trace.track r.Trace.ev in
    let comp =
      match String.index_opt track '.' with
      | Some i -> String.sub track 0 i
      | None -> track
    in
    Hashtbl.replace tbl comp (1 + Option.value ~default:0 (Hashtbl.find_opt tbl comp)));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let test_event_fingerprint () =
  let _, tr = run_traced ~skip_it:true "producer_consumer" in
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped tr);
  Alcotest.(check (list (pair string int)))
    "producer_consumer component fingerprint"
    [ "dram", 10; "fu", 40; "l1", 47; "l2", 65; "port", 58; "req", 30 ]
    (component_fingerprint tr);
  (* Same program, same events: the trace is deterministic. *)
  let _, tr2 = run_traced ~skip_it:true "producer_consumer" in
  Alcotest.(check int) "same length on re-run" (Trace.length tr) (Trace.length tr2)

(* == Perfetto export =================================================== *)

(* Pull the first integer following [key] out of a JSON line. *)
let int_after line key =
  let klen = String.length key and len = String.length line in
  let rec find i =
    if i + klen > len then None
    else if String.sub line i klen = key then begin
      let j = ref (i + klen) in
      let start = !j in
      if !j < len && line.[!j] = '-' then incr j;
      while !j < len && line.[!j] >= '0' && line.[!j] <= '9' do
        incr j
      done;
      if !j > start then Some (int_of_string (String.sub line start (!j - start)))
      else None
    end
    else find (i + 1)
  in
  find 0

let test_perfetto_structure () =
  let _, tr = run_traced ~skip_it:true "producer_consumer" in
  let json = Perfetto.to_string tr in
  let tail = {|],"displayTimeUnit":"ns"}|} ^ "\n" in
  Alcotest.(check bool) "wrapper object" true
    (String.length json > 40
    && String.sub json 0 16 = {|{"traceEvents":[|}
    && String.sub json (String.length json - String.length tail) (String.length tail)
       = tail);
  let tracks = Perfetto.tracks tr in
  Alcotest.(check bool)
    (Printf.sprintf "at least 5 tracks (got %d)" (List.length tracks))
    true
    (List.length tracks >= 5);
  let lines = String.split_on_char '\n' json in
  let thread_names = ref 0 and entries = ref 0 in
  let last_ts = Hashtbl.create 32 in
  List.iter
    (fun line ->
      (* Every entry line is one JSON object (the wrapper's opening line
         also starts with '{' but carries no "ph" field). *)
      if String.length line > 0 && line.[0] = '{' && int_after line {|"pid":|} <> None
      then begin
        let count c = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 line in
        Alcotest.(check int) "balanced braces" (count '{') (count '}');
        if int_after line {|"thread_name"|} <> None then ();
        let is_meta =
          String.length line > 8
          && (let rec mem i =
                i + 13 <= String.length line
                && (String.sub line i 13 = {|"thread_name"|} || mem (i + 1))
              in
              mem 0)
        in
        if is_meta then incr thread_names;
        match int_after line {|"ts":|} with
        | None -> ()
        | Some ts ->
          incr entries;
          let tid = Option.get (int_after line {|"tid":|}) in
          (match Hashtbl.find_opt last_ts tid with
           | Some prev ->
             Alcotest.(check bool)
               (Printf.sprintf "non-decreasing ts on tid %d" tid)
               true (ts >= prev)
           | None -> ());
          Hashtbl.replace last_ts tid ts
      end)
    lines;
  Alcotest.(check int) "one thread_name per track" (List.length tracks) !thread_names;
  Alcotest.(check bool) "has timestamped entries" true (!entries > 50);
  (* Request spans render as complete slices with durations. *)
  let has_slice =
    List.exists
      (fun line -> int_after line {|"dur":|} <> None)
      lines
  in
  Alcotest.(check bool) "has X slices for request spans" true has_slice;
  (* Deterministic export: same trace, same bytes. *)
  Alcotest.(check string) "byte-identical re-export" json (Perfetto.to_string tr)

let tests =
  ( "obs",
    [
      Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
      Alcotest.test_case "track filter" `Quick test_filter;
      Alcotest.test_case "disabled sink is inert" `Quick test_disabled_is_inert;
      Alcotest.test_case "latency start/end matching" `Quick test_latency_matching;
      Alcotest.test_case "occupancy series" `Quick test_occupancy_series;
      Alcotest.test_case "golden cycles with tracing on" `Quick test_golden_cycles_traced;
      Alcotest.test_case "event fingerprint" `Quick test_event_fingerprint;
      Alcotest.test_case "perfetto export structure" `Quick test_perfetto_structure;
    ] )
