(* Golden regression for the port-layer refactor: the example traces must
   produce exactly the cycle counts, checksums and counter values the
   pre-port tree produced.  The crossbar topology (the default) gives every
   port private channel wires acquired in the same order as the old direct
   wiring, so any drift here means the refactor changed latency shapes. *)

module S = Skipit_core.System
module C = Skipit_core.Config
module TP = Skipit_workload.Trace_program

let trace name = Printf.sprintf "../../../examples/traces/%s.trace" name

let run_trace ?(topology = `Crossbar) ~skip_it name =
  match TP.load_file (trace name) with
  | Error e -> Alcotest.failf "trace %s: %s" name e
  | Ok program ->
    let cores = TP.max_core program + 1 in
    let sys = S.create (C.platform ~cores ~skip_it ~topology ()) in
    let cycles, checksums = TP.run sys program in
    sys, cycles, checksums

let stat sys name =
  match List.assoc_opt name (S.stats_report sys) with
  | Some v -> v
  | None -> Alcotest.failf "counter %s missing from stats_report" name

let check_stats sys expected =
  List.iter
    (fun (name, v) -> Alcotest.(check int) name v (stat sys name))
    expected

(* Cycle counts are identical with Skip It on and off for these traces (no
   redundant same-line flush is close enough to pay the skip latency back);
   what matters here is that both configurations reproduce the seed. *)
let test_cycles_golden () =
  List.iter
    (fun (name, golden) ->
      List.iter
        (fun skip_it ->
          let _, cycles, _ = run_trace ~skip_it name in
          Alcotest.(check int)
            (Printf.sprintf "%s skip_it=%b" name skip_it)
            golden cycles)
        [ false; true ])
    [ "producer_consumer", 915; "redundant_flush", 1120; "fig5_semantics", 127 ]

(* The periodic invariant auditor is observation-only: with it attached at
   a cadence that fires many times per trace, the cycle counts must stay
   bit-identical to the unaudited runs — and it must find nothing. *)
let test_cycles_golden_with_auditor () =
  List.iter
    (fun (name, golden) ->
      List.iter
        (fun skip_it ->
          match TP.load_file (trace name) with
          | Error e -> Alcotest.failf "trace %s: %s" name e
          | Ok program ->
            let cores = TP.max_core program + 1 in
            let sys = S.create (C.platform ~cores ~skip_it ~topology:`Crossbar ()) in
            let auditor = Skipit_audit.Auditor.create sys in
            Skipit_audit.Auditor.attach auditor ~every:25;
            let cycles, _ = TP.run sys program in
            Alcotest.(check int)
              (Printf.sprintf "%s skip_it=%b audited" name skip_it)
              golden cycles;
            match Skipit_audit.Auditor.failures auditor with
            | [] -> ()
            | v :: _ ->
              Alcotest.failf "%s: auditor reported %s" name
                (Skipit_audit.Invariant.violation_to_string v))
        [ false; true ])
    [ "producer_consumer", 915; "redundant_flush", 1120; "fig5_semantics", 127 ]

let test_checksums_golden () =
  let _, _, checksums = run_trace ~skip_it:false "producer_consumer" in
  Alcotest.(check (array int)) "producer_consumer checksums" [| 0; 0xd |] checksums

let test_producer_consumer_stats () =
  let sys, _, _ = run_trace ~skip_it:false "producer_consumer" in
  check_stats sys
    [
      "l2.hits", 5;
      "l2.misses", 5;
      "l2.probes", 5;
      "l2.grants_clean", 10;
      "l2.root_releases", 5;
      "dram.reads", 5;
      "dram.writes", 5;
    ]

let test_redundant_flush_stats () =
  let sys, _, _ = run_trace ~skip_it:true "redundant_flush" in
  check_stats sys
    [
      "fu.0.skip_dropped", 80;
      "l2.misses", 8;
      "l2.grants_clean", 8;
      "l2.root_releases", 8;
      "l2.root_invals", 8;
      "dram.reads", 8;
      "dram.writes", 8;
    ]

let test_fig5_stats () =
  let sys, _, _ = run_trace ~skip_it:false "fig5_semantics" in
  check_stats sys
    [
      "l2.misses", 3;
      "l2.root_releases", 2;
      "dram.reads", 3;
      "dram.writes", 2;
    ]

let test_port_counters_present () =
  let sys, _, _ = run_trace ~skip_it:false "producer_consumer" in
  (* Every boundary reports under the "port." prefix: both L1 client ports
     and the L2's memory-side port. *)
  Alcotest.(check int) "core 0 acquires" 5 (stat sys "port.l1.0.acquires");
  Alcotest.(check int) "core 0 A beats" 5 (stat sys "port.l1.0.a_beats");
  Alcotest.(check int) "core 0 probed" 5 (stat sys "port.l1.0.b_probes");
  Alcotest.(check int) "core 1 grants = 5 acquires x 4 beats" 20
    (stat sys "port.l1.1.d_beats");
  Alcotest.(check int) "memside reads" 5 (stat sys "port.l2.mem.reads");
  Alcotest.(check int) "memside persists" 5 (stat sys "port.l2.mem.persists")

let test_shared_bus_coherent () =
  (* The bus serializes channel wires across cores; results must stay
     architecturally identical even if timing differs. *)
  List.iter
    (fun name ->
      let crossbar, _, sum_x = run_trace ~skip_it:true name in
      let bus, _, sum_b = run_trace ~topology:`Shared_bus ~skip_it:true name in
      Alcotest.(check (array int))
        (name ^ ": checksums independent of topology") sum_x sum_b;
      (match S.check_coherence bus with
       | Ok () -> ()
       | Error e -> Alcotest.fail e);
      match S.check_coherence crossbar with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ "producer_consumer"; "redundant_flush"; "fig5_semantics" ]

let tests =
  ( "golden-stats",
    [
      Alcotest.test_case "trace cycles unchanged from seed" `Quick test_cycles_golden;
      Alcotest.test_case "cycles identical with auditor attached" `Quick
        test_cycles_golden_with_auditor;
      Alcotest.test_case "checksums unchanged" `Quick test_checksums_golden;
      Alcotest.test_case "producer_consumer counters" `Quick test_producer_consumer_stats;
      Alcotest.test_case "redundant_flush counters" `Quick test_redundant_flush_stats;
      Alcotest.test_case "fig5 counters" `Quick test_fig5_stats;
      Alcotest.test_case "port counters present" `Quick test_port_counters_present;
      Alcotest.test_case "shared bus stays coherent" `Quick test_shared_bus_coherent;
    ] )
