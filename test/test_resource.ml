module Resource = Skipit_sim.Resource

let test_single_unit_serializes () =
  let r = Resource.create "r" in
  let s1, f1 = Resource.acquire r ~now:0 ~busy:10 in
  let s2, f2 = Resource.acquire r ~now:0 ~busy:10 in
  Alcotest.(check (pair int int)) "first immediate" (0, 10) (s1, f1);
  Alcotest.(check (pair int int)) "second queued" (10, 20) (s2, f2)

let test_parallel_units () =
  let r = Resource.create ~count:3 "r" in
  let starts = List.init 4 (fun _ -> fst (Resource.acquire r ~now:0 ~busy:10)) in
  Alcotest.(check (list int)) "three run now, fourth waits" [ 0; 0; 0; 10 ] starts

let test_idle_time_not_billed () =
  let r = Resource.create "r" in
  let _ = Resource.acquire r ~now:0 ~busy:5 in
  let s, f = Resource.acquire r ~now:100 ~busy:5 in
  Alcotest.(check (pair int int)) "starts at request time when idle" (100, 105) (s, f)

let test_all_free_at () =
  let r = Resource.create ~count:2 "r" in
  ignore (Resource.acquire r ~now:0 ~busy:10);
  ignore (Resource.acquire r ~now:0 ~busy:30);
  Alcotest.(check int) "all free when slowest done" 30 (Resource.all_free_at r);
  Alcotest.(check int) "earliest free" 10 (Resource.earliest_free r);
  Alcotest.(check int) "busy at t=5" 2 (Resource.busy_at r 5);
  Alcotest.(check int) "busy at t=15" 1 (Resource.busy_at r 15)

let test_acquire_dyn () =
  let r = Resource.create "r" in
  let s, f = Resource.acquire_dyn r ~now:3 (fun start -> start + 7) in
  Alcotest.(check (pair int int)) "dyn occupancy" (3, 10) (s, f);
  let s2, _ = Resource.acquire_dyn r ~now:0 (fun start -> start) in
  Alcotest.(check int) "queued behind dyn" 10 s2

let test_utilization () =
  let r = Resource.create "r" in
  ignore (Resource.acquire r ~now:0 ~busy:4);
  ignore (Resource.acquire r ~now:0 ~busy:6);
  Alcotest.(check int) "busy cycles accumulate" 10 (Resource.total_busy_cycles r);
  Resource.reset r;
  Alcotest.(check int) "reset" 0 (Resource.total_busy_cycles r)

let test_banked_routing () =
  let b = Resource.Banked.create ~banks:4 "banks" in
  (* Same line → same bank → serialize; different lines → parallel. *)
  let _, f1 = Resource.Banked.acquire b ~addr:0 ~line_bytes:64 ~now:0 ~busy:10 in
  let s2, _ = Resource.Banked.acquire b ~addr:0 ~line_bytes:64 ~now:0 ~busy:10 in
  let s3, _ = Resource.Banked.acquire b ~addr:64 ~line_bytes:64 ~now:0 ~busy:10 in
  Alcotest.(check int) "same bank serializes" f1 s2;
  Alcotest.(check int) "other bank parallel" 0 s3;
  (* Bank index wraps. *)
  let bank0 = Resource.Banked.bank_of b ~addr:0 ~line_bytes:64 in
  let bank4 = Resource.Banked.bank_of b ~addr:(4 * 64) ~line_bytes:64 in
  Alcotest.(check string) "wraps modulo banks" (Resource.name bank0) (Resource.name bank4)

(* Naive reference model for the cached-argmin implementation: a plain
   array of per-unit free times, scanned in full on every acquire with the
   same first-lowest-index tie-break.  The cached version must agree on
   every start/finish pair and on the derived queries after every step. *)
module Naive = struct
  type t = int array

  let create count : t = Array.make count 0

  let acquire (t : t) ~now ~busy =
    let best = ref 0 in
    for i = 1 to Array.length t - 1 do
      if t.(i) < t.(!best) then best := i
    done;
    let start = max now t.(!best) in
    let finish = start + busy in
    t.(!best) <- finish;
    start, finish

  let earliest_free (t : t) = Array.fold_left min t.(0) t
  let all_free_at (t : t) = Array.fold_left max t.(0) t

  let busy_at (t : t) at =
    Array.fold_left (fun acc f -> if f > at then acc + 1 else acc) 0 t
end

let prop_matches_naive_scan =
  QCheck.Test.make ~name:"cached argmin agrees with naive scan" ~count:500
    QCheck.(
      pair (int_range 1 8)
        (list_of_size (QCheck.Gen.int_range 1 60)
           (pair (int_range 0 50) (int_range 0 25))))
  @@ fun (count, reqs) ->
  let r = Resource.create ~count "r" in
  let m = Naive.create count in
  (* Requests arrive with non-decreasing [now], as in the simulator. *)
  let _, ok =
    List.fold_left
      (fun (now, ok) (dt, busy) ->
        let now = now + dt in
        let s, f = Resource.acquire r ~now ~busy in
        let s', f' = Naive.acquire m ~now ~busy in
        ( now,
          ok && s = s' && f = f'
          && Resource.earliest_free r = Naive.earliest_free m
          && Resource.all_free_at r = Naive.all_free_at m
          && Resource.busy_at r now = Naive.busy_at m now ))
      (0, true) reqs
  in
  ok

let prop_start_never_before_now =
  QCheck.Test.make ~name:"start >= now always" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (pair (int_range 0 100) (int_range 0 20)))
  @@ fun reqs ->
  let r = Skipit_sim.Resource.create ~count:2 "r" in
  List.for_all
    (fun (now, busy) ->
      let s, f = Resource.acquire r ~now ~busy in
      s >= now && f = s + busy)
    reqs

let tests =
  ( "resource",
    [
      Alcotest.test_case "single unit serializes" `Quick test_single_unit_serializes;
      Alcotest.test_case "parallel units" `Quick test_parallel_units;
      Alcotest.test_case "idle time not billed" `Quick test_idle_time_not_billed;
      Alcotest.test_case "all_free_at/busy_at" `Quick test_all_free_at;
      Alcotest.test_case "acquire_dyn" `Quick test_acquire_dyn;
      Alcotest.test_case "utilization accounting" `Quick test_utilization;
      Alcotest.test_case "banked routing" `Quick test_banked_routing;
      QCheck_alcotest.to_alcotest prop_start_never_before_now;
      QCheck_alcotest.to_alcotest prop_matches_naive_scan;
    ] )
