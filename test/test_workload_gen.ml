(* The workload-generation layer: the Q30 integer Zipf sampler against a
   naive float reference (the integer kernel exists so schedules are
   bit-identical across hosts — but it still has to be *correct*, which
   the float reference checks), sampled frequencies against the CDF,
   cross-host determinism pins, churn rotation, mix parsing, and the
   diurnal phase plumbing in [Arrival]. *)

module Arrival = Skipit_serve.Arrival
module Workload = Skipit_serve.Workload
module Rng = Skipit_sim.Rng

let zipf ?churn theta_milli =
  { Workload.keys = Workload.Zipf { theta_milli }; churn }

(* == Q30 CDF vs the naive float reference ============================== *)

(* Normalised CDF fractions of the integer table must track the float
   reference sum(k^-theta).  The kernel is good to ~1e-6 absolute over
   the whole supported (n, theta) envelope; the tolerance leaves room
   for the tail floor (every weight >= 1 ulp). *)
let cdf_close ~n ~theta_milli =
  let cum = Workload.zipf_cdf ~n ~theta_milli in
  let total = float_of_int cum.(n - 1) in
  let theta = float_of_int theta_milli /. 1000. in
  let fw = Array.init n (fun k -> Float.pow (float_of_int (k + 1)) (-.theta)) in
  let ftot = Array.fold_left ( +. ) 0. fw in
  let facc = ref 0. and worst = ref 0. in
  Array.iteri
    (fun k w ->
      facc := !facc +. w;
      let err =
        abs_float ((float_of_int cum.(k) /. total) -. (!facc /. ftot))
      in
      if err > !worst then worst := err)
    fw;
  !worst

let test_cdf_reference () =
  List.iter
    (fun (n, theta_milli) ->
      let worst = cdf_close ~n ~theta_milli in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d theta_milli=%d: |cdf - ref| = %g < 1e-5" n
           theta_milli worst)
        true (worst < 1e-5))
    [ (1, 990); (50, 900); (50, 990); (64, 1200); (100, 0); (512, 2000);
      (512, 4000); (4096, 990) ]

let prop_cdf_reference =
  QCheck.Test.make ~name:"Q30 zipf CDF tracks float reference" ~count:100
    QCheck.(pair (int_range 1 600) (int_range 0 4000))
    (fun (n, theta_milli) ->
      match cdf_close ~n ~theta_milli with
      | worst when worst < 1e-5 -> true
      | worst ->
        QCheck.Test.fail_reportf "n=%d theta_milli=%d: worst err %g" n
          theta_milli worst)

let test_cdf_monotone_positive () =
  let cum = Workload.zipf_cdf ~n:1024 ~theta_milli:4000 in
  Array.iteri
    (fun k c ->
      (* Strictly increasing: the 1-ulp floor keeps every key reachable
         even at theta = 4 deep in the tail. *)
      Alcotest.(check bool) "cdf strictly increasing" true
        (c > if k = 0 then 0 else cum.(k - 1)))
    cum

(* == Sampled frequencies vs the CDF ===================================== *)

let test_draw_frequencies () =
  let n = 32 and samples = 20_000 in
  let draw =
    Workload.draw (zipf 990) ~key_range:n ~update_pct:20 ~seed:5
  in
  let rng = Rng.create ~seed:77 in
  let counts = Array.make (n + 1) 0 in
  for _ = 1 to samples do
    let _, key = draw rng ~at:0 in
    Alcotest.(check bool) "key in range" true (key >= 1 && key <= n);
    counts.(key) <- counts.(key) + 1
  done;
  (* Reconstruct the seeded rank->key permutation and compare each key's
     empirical frequency with its CDF mass: Pearson chi-square, 31 dof.
     The 99.9th percentile of chi2(31) is 61.1; everything here is
     seeded, so this is a deterministic regression check, not a flaky
     statistical one. *)
  let cum = Workload.zipf_cdf ~n ~theta_milli:990 in
  let total = float_of_int cum.(n - 1) in
  let perm = Array.init n (fun i -> i + 1) in
  Rng.shuffle (Rng.create ~seed:5) perm;
  let chi = ref 0. in
  for rank = 0 to n - 1 do
    let mass = cum.(rank) - if rank = 0 then 0 else cum.(rank - 1) in
    let expected = float_of_int mass /. total *. float_of_int samples in
    let observed = float_of_int counts.(perm.(rank)) in
    chi := !chi +. (((observed -. expected) ** 2.) /. expected)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "chi-square %.2f < 61.1 (chi2_31 @ 0.999)" !chi)
    true (!chi < 61.1)

let test_draw_skews () =
  (* Rank-0 mass should dominate at theta = 0.99 over 256 keys: ~16% of
     draws against 0.39% under uniform. *)
  let n = 256 and samples = 10_000 in
  let draw = Workload.draw (zipf 990) ~key_range:n ~update_pct:0 ~seed:3 in
  let rng = Rng.create ~seed:11 in
  let counts = Array.make (n + 1) 0 in
  for _ = 1 to samples do
    let _, key = draw rng ~at:0 in
    counts.(key) <- counts.(key) + 1
  done;
  let top = Array.fold_left max 0 counts in
  Alcotest.(check bool)
    (Printf.sprintf "hottest key holds %d/%d draws (>= 10x uniform)" top samples)
    true
    (top * n >= 10 * samples)

(* == Cross-host determinism pins ======================================== *)

let op_key = Alcotest.(list (pair string int))

let test_draw_golden () =
  (* Pinned (op, key) stream: zipf:0.99 over 16 keys, 20% updates,
     workload seed 7, arrival stream seed 123.  Any change to the Q30
     kernel, the permutation seeding or the rng consumption order shows
     up here before it shows up as a CI diff between hosts. *)
  let draw = Workload.draw (zipf 990) ~key_range:16 ~update_pct:20 ~seed:7 in
  let rng = Rng.create ~seed:123 in
  let got =
    List.init 8 (fun _ ->
        let op, key = draw rng ~at:0 in
        (Arrival.op_name op, key))
  in
  Alcotest.check op_key "pinned zipf draw stream"
    [ ("delete", 13); ("contains", 4); ("contains", 16); ("contains", 5);
      ("contains", 13); ("delete", 9); ("contains", 9); ("contains", 2) ]
    got

let test_churn_golden () =
  (* Same rng state at every call, so the key only moves when the churn
     epoch rotates the permutation offset. *)
  let draw =
    Workload.draw (zipf 990 ~churn:100) ~key_range:16 ~update_pct:20 ~seed:7
  in
  let key_at at =
    let _, key = draw (Rng.create ~seed:99) ~at in
    key
  in
  Alcotest.(check (list int)) "pinned per-epoch hot key"
    [ 13; 5; 8; 11; 7; 7; 1; 1 ]
    (List.init 8 (fun e -> key_at (e * 100)))

(* == Churn rotation ===================================================== *)

let test_churn_rotates () =
  let draw =
    Workload.draw (zipf 990 ~churn:200) ~key_range:64 ~update_pct:0 ~seed:42
  in
  let key_at at =
    let _, key = draw (Rng.create ~seed:1) ~at in
    key
  in
  (* Constant within an epoch... *)
  Alcotest.(check int) "stable inside epoch 0" (key_at 0) (key_at 199);
  Alcotest.(check int) "stable inside epoch 3" (key_at 600) (key_at 799);
  (* ...and the hot set moves across epochs (with a 1/64 chance per epoch
     of a coincidental repeat, 20 epochs all matching means it's broken). *)
  let first = key_at 0 in
  Alcotest.(check bool) "offset rotates across epochs" true
    (List.exists (fun e -> key_at (e * 200) <> first) (List.init 20 succ));
  (* The epoch memo must survive non-monotonic [at] (pool workers replay
     arrivals out of order). *)
  let a = key_at 0 in
  let _ = key_at 1000 in
  Alcotest.(check int) "memo recomputes on epoch re-entry" a (key_at 0)

let test_churn_same_seed_same_rotation () =
  let mk () =
    Workload.draw (zipf 990 ~churn:50) ~key_range:32 ~update_pct:50 ~seed:9
  in
  let sample draw =
    let rng = Rng.create ~seed:4 in
    List.init 40 (fun i ->
        let op, key = draw rng ~at:(i * 37) in
        (Arrival.op_name op, key))
  in
  Alcotest.check op_key "same seed, same churned stream" (sample (mk ()))
    (sample (mk ()))

(* == Validation and names =============================================== *)

let test_validate () =
  let ok t kr = Result.is_ok (Workload.validate t ~key_range:kr) in
  Alcotest.(check bool) "uniform ok" true (ok Workload.default 1_000_000);
  Alcotest.(check bool) "zipf ok" true (ok (zipf 990) 4096);
  Alcotest.(check bool) "zipf+churn ok" true (ok (zipf 990 ~churn:4000) 4096);
  Alcotest.(check bool) "churn without zipf rejected" false
    (ok { Workload.keys = Workload.Uniform; churn = Some 100 } 4096);
  Alcotest.(check bool) "non-positive churn rejected" false
    (ok (zipf 990 ~churn:0) 4096);
  Alcotest.(check bool) "theta above 4.0 rejected" false (ok (zipf 4001) 4096);
  Alcotest.(check bool) "zipf key_range above CDF cap rejected" false
    (ok (zipf 990) ((1 lsl 22) + 1));
  Alcotest.(check bool) "uniform key_range unbounded" true
    (ok Workload.default ((1 lsl 22) + 1))

let test_names_round_trip () =
  List.iter
    (fun keys ->
      let name = Workload.keys_name keys in
      Alcotest.(check bool) (name ^ " round-trips") true
        (Workload.keys_of_name name = Some keys))
    [ Workload.Uniform; Workload.Zipf { theta_milli = 990 };
      Workload.Zipf { theta_milli = 1200 }; Workload.Zipf { theta_milli = 0 };
      Workload.Zipf { theta_milli = 4000 } ];
  Alcotest.(check bool) "bare zipf means 0.99" true
    (Workload.keys_of_name "zipf" = Some (Workload.Zipf { theta_milli = 990 }));
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " rejected") true
        (Workload.keys_of_name s = None))
    [ "zipf:4.001"; "zipf:-1"; "zipf:0.9999"; "zipf:"; "lru"; "zipfian:1" ];
  Alcotest.(check string) "churn shows in the workload name"
    "zipf:0.99+churn:4000"
    (Workload.name (zipf 990 ~churn:4000))

let test_mix_of_spec () =
  List.iter
    (fun (spec, expect) ->
      Alcotest.(check (option int)) ("mix " ^ spec) expect
        (Workload.mix_of_spec spec))
    [ ("80:20", Some 20); ("100:0", Some 0); ("0:100", Some 100);
      ("4:1", Some 20); ("1:2", Some 67); ("50:50", Some 50); ("0:0", None);
      ("a:b", None); ("50", None); ("-1:2", None); ("1:2:3", None) ]

(* == Diurnal phases ===================================================== *)

let test_phase_names_round_trip () =
  List.iter
    (fun p ->
      let name = Arrival.process_name p in
      Alcotest.(check bool) (name ^ " round-trips") true
        (Arrival.process_of_name name = Some p))
    [ Arrival.Phased { phases = [ (4000, 500); (4000, 1500) ]; base = Arrival.Poisson };
      Arrival.Phased
        { phases = [ (100, 0); (900, 2000) ]; base = Arrival.Bursty { on = 10; off = 30 } };
      Arrival.Degraded
        { windows = [ (50, 80) ];
          base = Arrival.Phased { phases = [ (40, 250) ]; base = Arrival.Poisson } } ]

let test_phases_of_spec () =
  Alcotest.(check (option (list (pair int int)))) "decimal multipliers"
    (Some [ (4000, 500); (4000, 1500) ])
    (Arrival.phases_of_spec "4000:0.5,4000:1.5");
  Alcotest.(check (option (list (pair int int)))) "zero trough allowed"
    (Some [ (100, 0); (300, 1333) ])
    (Arrival.phases_of_spec "100:0,300:1.333");
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " rejected") true
        (Arrival.phases_of_spec s = None))
    [ ""; "4000"; "4000:0.5,"; "0:1"; "100:0"; "100:-1"; "100:x"; "100:1001" ]

let test_with_phases () =
  let ph = [ (10, 500); (10, 1500) ] in
  Alcotest.(check bool) "wraps poisson" true
    (Arrival.with_phases Arrival.Poisson ph
    = Some (Arrival.Phased { phases = ph; base = Arrival.Poisson }));
  (let d = Arrival.Degraded { windows = [ (5, 9) ]; base = Arrival.Poisson } in
   Alcotest.(check bool) "wraps under degraded windows" true
     (Arrival.with_phases d ph
     = Some
         (Arrival.Degraded
            { windows = [ (5, 9) ];
              base = Arrival.Phased { phases = ph; base = Arrival.Poisson } })));
  Alcotest.(check bool) "refuses double phasing" true
    (Arrival.with_phases (Arrival.Phased { phases = ph; base = Arrival.Poisson }) ph
    = None);
  Alcotest.(check bool) "refuses an all-zero cycle" true
    (Arrival.with_phases Arrival.Poisson [ (10, 0) ] = None)

let test_phase_trough_is_dark () =
  (* 1000-cycle dead trough alternating with a 2x segment: no arrival may
     land in [0, 1000) mod 2000 — on both the per-session path and the
     aggregate path (> aggregate_threshold clients). *)
  List.iter
    (fun clients ->
      let s =
        Arrival.schedule
          ~process:
            (Arrival.Phased { phases = [ (1000, 0); (1000, 2000) ]; base = Arrival.Poisson })
          ~rate:8. ~clients ~requests:300 ~key_range:64 ~update_pct:20 ~seed:17
          ()
      in
      Alcotest.(check int) "full schedule" 300 (Array.length s);
      Array.iter
        (fun (r : Arrival.request) ->
          Alcotest.(check bool)
            (Printf.sprintf "clients=%d: arrival %d outside the trough" clients
               r.Arrival.arrival)
            true
            (r.Arrival.arrival mod 2000 >= 1000))
        s)
    [ 8; Arrival.aggregate_threshold + 1 ]

let test_mult_milli_at () =
  let p = Arrival.Phased { phases = [ (100, 250); (50, 0); (100, 2000) ]; base = Arrival.Poisson } in
  List.iter
    (fun (t, expect) ->
      Alcotest.(check int) (Printf.sprintf "mult at %d" t) expect
        (Arrival.mult_milli_at p t))
    [ (0, 250); (99, 250); (100, 0); (149, 0); (150, 2000); (249, 2000);
      (250, 250); (349, 250); (499, 2000) ];
  Alcotest.(check int) "non-phased is 1000" 1000
    (Arrival.mult_milli_at Arrival.Poisson 12345)

let test_zipf_schedule_deterministic () =
  let mk () =
    let draw = Workload.draw (zipf 990 ~churn:500) ~key_range:128 ~update_pct:20 ~seed:44 in
    Arrival.schedule
      ~process:(Arrival.Phased { phases = [ (500, 500); (500, 1500) ]; base = Arrival.Poisson })
      ~draw ~rate:8. ~clients:8 ~requests:400 ~key_range:128 ~update_pct:20
      ~seed:42 ()
  in
  let tup (r : Arrival.request) =
    (r.Arrival.arrival, r.Arrival.client, Arrival.op_name r.Arrival.op, r.Arrival.key)
  in
  Alcotest.(check bool) "same config, same zipf schedule" true
    (Array.for_all2 (fun a b -> tup a = tup b) (mk ()) (mk ()));
  let uniform =
    Arrival.schedule
      ~process:(Arrival.Phased { phases = [ (500, 500); (500, 1500) ]; base = Arrival.Poisson })
      ~rate:8. ~clients:8 ~requests:400 ~key_range:128 ~update_pct:20 ~seed:42
      ()
  in
  Alcotest.(check bool) "zipf keys differ from uniform keys" false
    (Array.for_all2 (fun a b -> tup a = tup b) (mk ()) uniform)

let tests =
  ( "workload-gen",
    [
      Alcotest.test_case "Q30 CDF matches float reference" `Quick test_cdf_reference;
      QCheck_alcotest.to_alcotest prop_cdf_reference;
      Alcotest.test_case "CDF strictly increasing at theta=4" `Quick
        test_cdf_monotone_positive;
      Alcotest.test_case "sampled frequencies match CDF (chi-square)" `Quick
        test_draw_frequencies;
      Alcotest.test_case "zipf skews toward the hot key" `Quick test_draw_skews;
      Alcotest.test_case "pinned draw stream (cross-host)" `Quick test_draw_golden;
      Alcotest.test_case "pinned churn epochs (cross-host)" `Quick test_churn_golden;
      Alcotest.test_case "churn rotates per epoch, stable within" `Quick
        test_churn_rotates;
      Alcotest.test_case "churn streams reproducible" `Quick
        test_churn_same_seed_same_rotation;
      Alcotest.test_case "workload validation" `Quick test_validate;
      Alcotest.test_case "keys names round-trip" `Quick test_names_round_trip;
      Alcotest.test_case "mix spec parsing" `Quick test_mix_of_spec;
      Alcotest.test_case "phase names round-trip" `Quick test_phase_names_round_trip;
      Alcotest.test_case "phase spec parsing" `Quick test_phases_of_spec;
      Alcotest.test_case "with_phases nesting" `Quick test_with_phases;
      Alcotest.test_case "zero-mult trough has no arrivals" `Quick
        test_phase_trough_is_dark;
      Alcotest.test_case "mult_milli_at segments" `Quick test_mult_milli_at;
      Alcotest.test_case "zipf+churn+phases schedule deterministic" `Quick
        test_zipf_schedule_deterministic;
    ] )
