module Q = Skipit_l1.Flush_queue
open Skipit_tilelink

let entry ?(kind = Message.Wb_flush) ?(hit = true) ?(dirty = true) addr =
  { Q.addr; kind; hit; dirty; enq_at = 0; coalesced = 0 }

let test_fifo () =
  let q = Q.create ~depth:4 () in
  Alcotest.(check bool) "enq a" true (Q.enqueue q (entry 0x40));
  Alcotest.(check bool) "enq b" true (Q.enqueue q (entry 0x80));
  Alcotest.(check int) "length" 2 (Q.length q);
  (match Q.dequeue q with
   | Some e -> Alcotest.(check int) "FIFO head" 0x40 e.Q.addr
   | None -> Alcotest.fail "expected entry");
  Alcotest.(check int) "length after" 1 (Q.length q)

let test_capacity () =
  let q = Q.create ~depth:2 () in
  Alcotest.(check bool) "1" true (Q.enqueue q (entry 0x40));
  Alcotest.(check bool) "2" true (Q.enqueue q (entry 0x80));
  Alcotest.(check bool) "full nacks" false (Q.enqueue q (entry 0xc0));
  Alcotest.(check bool) "is_full" true (Q.is_full q);
  ignore (Q.dequeue q);
  Alcotest.(check bool) "space again" true (Q.enqueue q (entry 0xc0))

let test_probe_invalidate_to_nothing () =
  (* §5.4.1: probe to Nothing clears hit and dirty of pending entries for
     the line — and only that line. *)
  let q = Q.create ~depth:4 () in
  ignore (Q.enqueue q (entry 0x40));
  ignore (Q.enqueue q (entry 0x80));
  Q.probe_invalidate q ~addr:0x40 ~cap:Perm.Nothing;
  (match Q.to_list q with
   | [ a; b ] ->
     Alcotest.(check bool) "hit cleared" false a.Q.hit;
     Alcotest.(check bool) "dirty cleared" false a.Q.dirty;
     Alcotest.(check bool) "other entry untouched" true (b.Q.hit && b.Q.dirty)
   | _ -> Alcotest.fail "expected 2 entries")

let test_probe_invalidate_to_branch () =
  (* Downgrade to Branch hands the dirty data over but keeps the line. *)
  let q = Q.create ~depth:4 () in
  ignore (Q.enqueue q (entry 0x40));
  Q.probe_invalidate q ~addr:0x40 ~cap:Perm.Branch;
  (match Q.to_list q with
   | [ a ] ->
     Alcotest.(check bool) "still hit" true a.Q.hit;
     Alcotest.(check bool) "dirty cleared" false a.Q.dirty
   | _ -> Alcotest.fail "expected 1 entry")

let test_evict_invalidate () =
  let q = Q.create ~depth:4 () in
  ignore (Q.enqueue q (entry 0x40));
  Q.evict_invalidate q ~addr:0x40;
  (match Q.to_list q with
   | [ a ] -> Alcotest.(check bool) "evicted => miss" false (a.Q.hit || a.Q.dirty)
   | _ -> Alcotest.fail "expected 1 entry")

let test_coalescible_same_kind_only () =
  (* §5.3: clean may coalesce with pending clean, flush with flush, never
     across kinds. *)
  let q = Q.create ~depth:4 () in
  ignore (Q.enqueue q (entry ~kind:Message.Wb_clean 0x40));
  Alcotest.(check bool) "clean+clean" true
    (Q.find_coalescible q ~addr:0x40 ~kind:Message.Wb_clean <> None);
  Alcotest.(check bool) "flush+clean rejected" true
    (Q.find_coalescible q ~addr:0x40 ~kind:Message.Wb_flush = None);
  Alcotest.(check bool) "different line rejected" true
    (Q.find_coalescible q ~addr:0x80 ~kind:Message.Wb_clean = None)

let test_record_coalesce () =
  let e = entry 0x40 in
  Q.record_coalesce e;
  Q.record_coalesce e;
  Alcotest.(check int) "count" 2 e.Q.coalesced

let prop_enqueue_respects_depth =
  QCheck.Test.make ~name:"never exceeds depth" ~count:200
    QCheck.(pair (int_range 0 8) (list_of_size (QCheck.Gen.int_range 0 20) (int_range 0 7)))
  @@ fun (depth, lines) ->
  let q = Q.create ~depth () in
  List.iter (fun line -> ignore (Q.enqueue q (entry (line * 64)))) lines;
  Q.length q <= depth

let tests =
  ( "flush_queue",
    [
      Alcotest.test_case "FIFO order" `Quick test_fifo;
      Alcotest.test_case "capacity nack" `Quick test_capacity;
      Alcotest.test_case "probe invalidate (toN)" `Quick test_probe_invalidate_to_nothing;
      Alcotest.test_case "probe invalidate (toB)" `Quick test_probe_invalidate_to_branch;
      Alcotest.test_case "evict invalidate" `Quick test_evict_invalidate;
      Alcotest.test_case "coalescing kind rules" `Quick test_coalescible_same_kind_only;
      Alcotest.test_case "coalesce counter" `Quick test_record_coalesce;
      QCheck_alcotest.to_alcotest prop_enqueue_respects_depth;
    ] )
