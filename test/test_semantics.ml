(* The §4 memory semantics, scenario by scenario (Fig. 5), observed through
   the persist log — the order in which lines actually become durable. *)

module S = Skipit_core.System
module C = Skipit_core.Config
module PL = Skipit_mem.Persist_log

let fresh () =
  let sys = S.create (C.platform ~cores:1 ()) in
  let line () = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  sys, line (), line ()

let test_scenario_a_no_writeback_no_order () =
  (* Fig. 5(a): x := 1; y := 1.  Without writebacks nothing is guaranteed to
     persist at all — both stores stay in the volatile cache. *)
  let sys, x, y = fresh () in
  S.store sys ~core:0 x 1;
  S.store sys ~core:0 y 1;
  Alcotest.(check int) "no persist events" 0 (PL.length (S.persist_log sys));
  S.crash sys;
  Alcotest.(check int) "x lost" 0 (S.persisted_word sys x);
  Alcotest.(check int) "y lost" 0 (S.persisted_word sys y)

let test_scenario_b_writeback_orders_same_line_only () =
  (* Fig. 5(b): x := 1; writeback(x); y := 1; writeback(y).  Writebacks are
     asynchronous and mutually unordered: y may become durable BEFORE x even
     though writeback(x) was issued first.  We exhibit exactly that by
     making x's writeback slow (a sharer in core 1 forces the L2 to probe,
     §5.5) while y's takes the direct path. *)
  let sys = S.create (C.platform ~cores:2 ()) in
  let line () = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  let x = line () and y = line () in
  S.store sys ~core:0 x 1;
  ignore (S.load sys ~core:1 x) (* core 1 shares x: its flush must probe *);
  ignore (S.load sys ~core:0 y) (* pre-warm y so its store hits *);
  S.store sys ~core:0 y 1;
  S.flush sys ~core:0 x;
  S.flush sys ~core:0 y;
  S.fence sys ~core:0;
  let log = S.persist_log sys in
  let tx = Option.get (PL.first_persist_time log x) in
  let ty = Option.get (PL.first_persist_time log y) in
  Alcotest.(check bool)
    (Printf.sprintf "y durable before x despite program order (y=%d, x=%d)" ty tx)
    true (ty < tx);
  Alcotest.(check int) "both values durable after the fence" 1 (S.persisted_word sys x);
  Alcotest.(check int) "both values durable after the fence" 1 (S.persisted_word sys y)

let test_scenario_c_fence_orders_across () =
  (* Fig. 5(c): x := 1; writeback(x); fence(); y := x.  By the time the
     post-fence code runs, x is durable. *)
  let sys, x, _ = fresh () in
  S.store sys ~core:0 x 1;
  S.flush sys ~core:0 x;
  S.fence sys ~core:0;
  let fence_done = S.clock sys ~core:0 in
  let log = S.persist_log sys in
  let tx = Option.get (PL.first_persist_time log x) in
  Alcotest.(check bool) "x durable before the fence retires" true (tx <= fence_done);
  (* The post-fence read sees the (now also durable) value. *)
  Alcotest.(check int) "y = x reads 1" 1 (S.load sys ~core:0 x)

let test_writeback_covers_earlier_writes_to_line () =
  (* writeback(c) covers ALL earlier writes to any c' in the same line. *)
  let sys, x, _ = fresh () in
  S.store sys ~core:0 x 1;
  S.store sys ~core:0 (x + 8) 2;
  S.store sys ~core:0 (x + 56) 3;
  S.flush sys ~core:0 (x + 16) (* any address in the line *);
  S.fence sys ~core:0;
  Alcotest.(check int) "word 0" 1 (S.persisted_word sys x);
  Alcotest.(check int) "word 1" 2 (S.persisted_word sys (x + 8));
  Alcotest.(check int) "word 7" 3 (S.persisted_word sys (x + 56))

let test_writeback_not_ordered_with_later_writes () =
  (* A writeback is NOT ordered with respect to subsequent writes to the
     same line: a store issued after the CBO.X (on BOOM, after its commit)
     must not ride along. *)
  let sys, x, _ = fresh () in
  S.store sys ~core:0 x 1;
  S.clean sys ~core:0 x;
  S.fence sys ~core:0;
  S.store sys ~core:0 x 2 (* after the writeback: stays volatile *);
  Alcotest.(check int) "later write not persisted" 1 (S.persisted_word sys x);
  Alcotest.(check int) "but architecturally visible" 2 (S.peek_word sys x)

let test_fence_drains_all_pending () =
  (* FENCE RW,RW extended per §5.3: every pending writeback, to any line,
     completes before the fence does. *)
  let sys = S.create (C.platform ~cores:1 ()) in
  let lines =
    List.init 16 (fun _ -> Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64)
  in
  List.iteri (fun i a -> S.store sys ~core:0 a (i + 1)) lines;
  List.iter (fun a -> S.flush sys ~core:0 a) lines;
  S.fence sys ~core:0;
  let fence_done = S.clock sys ~core:0 in
  let log = S.persist_log sys in
  List.iter
    (fun a ->
      match PL.first_persist_time log a with
      | Some t -> Alcotest.(check bool) "persist before fence" true (t <= fence_done)
      | None -> Alcotest.fail "line missed")
    lines;
  List.iteri (fun i a -> Alcotest.(check int) "value" (i + 1) (S.persisted_word sys a)) lines

let test_per_core_fence_scope () =
  (* The fence drains the issuing core's flush counter, not other cores'. *)
  let sys = S.create (C.platform ~cores:2 ()) in
  let a = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  let b = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  S.store sys ~core:0 a 1;
  S.store sys ~core:1 b 2;
  S.flush sys ~core:0 a;
  S.flush sys ~core:1 b;
  let before = S.clock sys ~core:0 in
  S.fence sys ~core:0;
  Alcotest.(check bool) "core0's fence waits for its own writeback" true
    (S.clock sys ~core:0 - before > 50);
  (* Core 1's writeback is still pending as far as its own fence goes. *)
  Alcotest.(check int) "core1 still has one pending" 1
    (Skipit_cpu.Lsu.pending_writebacks (S.lsu sys 1))

let test_persist_log_api () =
  let log = PL.create () in
  PL.record log ~addr:0x44 ~time:10 (* interior address → line 0x40 *);
  PL.record log ~addr:0x80 ~time:5 (* later seq, earlier time *);
  PL.record log ~addr:0x40 ~time:20;
  Alcotest.(check int) "length" 3 (PL.length log);
  Alcotest.(check int) "events per line" 2 (List.length (PL.persists_of log ~addr:0x40));
  Alcotest.(check (option int)) "first time" (Some 10) (PL.first_persist_time log 0x40);
  Alcotest.(check (option int)) "last time" (Some 20) (PL.last_persist_time log 0x40);
  Alcotest.(check bool) "0x80 before 0x40? last(0x80)=5 <= first(0x40)=10" true
    (PL.persisted_before log 0x80 0x40 = PL.Before);
  Alcotest.(check bool) "0x40 not before 0x80" true
    (PL.persisted_before log 0x40 0x80 = PL.Not_before);
  PL.clear log;
  Alcotest.(check int) "cleared" 0 (PL.length log)

let test_persist_log_edges () =
  let log = PL.create () in
  (* Totality: never-persisted operands are reported explicitly, on both
     sides, instead of collapsing into [false]. *)
  Alcotest.(check bool) "both never persisted" true
    (PL.persisted_before log 0x40 0x80 = PL.Never_persisted { a = false; b = false });
  PL.record log ~addr:0x40 ~time:7;
  Alcotest.(check bool) "right side never persisted" true
    (PL.persisted_before log 0x40 0x80 = PL.Never_persisted { a = true; b = false });
  Alcotest.(check bool) "left side never persisted" true
    (PL.persisted_before log 0x80 0x40 = PL.Never_persisted { a = false; b = true });
  (* last_persist_time edges: absent line, then single and repeated events
     (interior addresses map to the line base). *)
  Alcotest.(check (option int)) "no events: no last time" None
    (PL.last_persist_time log 0x80);
  Alcotest.(check (option int)) "single event: last = first" (Some 7)
    (PL.last_persist_time log 0x40);
  PL.record log ~addr:0x78 ~time:9 (* interior of line 0x40 *);
  Alcotest.(check (option int)) "interior address folds to line" (Some 9)
    (PL.last_persist_time log 0x40);
  Alcotest.(check (option int)) "first unchanged" (Some 7)
    (PL.first_persist_time log 0x40)

let tests =
  ( "semantics",
    [
      Alcotest.test_case "Fig5(a): stores alone persist nothing" `Quick
        test_scenario_a_no_writeback_no_order;
      Alcotest.test_case "Fig5(b): writebacks async, per-line" `Quick
        test_scenario_b_writeback_orders_same_line_only;
      Alcotest.test_case "Fig5(c): fence orders across" `Quick test_scenario_c_fence_orders_across;
      Alcotest.test_case "writeback covers earlier same-line writes" `Quick
        test_writeback_covers_earlier_writes_to_line;
      Alcotest.test_case "writeback excludes later writes" `Quick
        test_writeback_not_ordered_with_later_writes;
      Alcotest.test_case "fence drains all pending" `Quick test_fence_drains_all_pending;
      Alcotest.test_case "fence is per-core" `Quick test_per_core_fence_scope;
      Alcotest.test_case "persist log api" `Quick test_persist_log_api;
      Alcotest.test_case "persist log edge cases" `Quick test_persist_log_edges;
    ] )
