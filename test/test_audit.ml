(* The invariant auditor and the crash campaign (lib/audit): healthy
   systems audit clean, a crash mid-flush leaves no leaked occupancy and
   the same system stays usable, campaigns pass on the default config, and
   a seeded fault (a strategy eliding a required writeback) is caught,
   shrunk and round-tripped through a reproducer file. *)

module S = Skipit_core.System
module C = Skipit_core.Config
module T = Skipit_core.Thread
module Params = Skipit_cache.Params
module Dcache = Skipit_l1.Dcache
module Flush_unit = Skipit_l1.Flush_unit
module PL = Skipit_mem.Persist_log
module Invariant = Skipit_audit.Invariant
module Auditor = Skipit_audit.Auditor
module Campaign = Skipit_audit.Campaign
module Pctx = Skipit_persist.Pctx
module Strategy = Skipit_persist.Strategy
module Ops = Skipit_pds.Set_ops

let no_violations what vs =
  if vs <> [] then
    Alcotest.failf "%s: %d violation(s), first: %s" what (List.length vs)
      (Invariant.violation_to_string (List.hd vs))

(* ------------------------------------------------------------------ *)

let store_flush_lines sys ~base ~lines =
  let body () =
    for i = 0 to lines - 1 do
      T.store (base + (i * 64)) (i + 1);
      T.flush (base + (i * 64))
    done;
    T.fence ()
  in
  ignore (T.run sys [ { T.core = 0; body } ])

let test_healthy_audit () =
  let sys = S.create (C.tiny ~cores:2 ()) in
  let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:64 (32 * 64) in
  no_violations "fresh system" (Invariant.check_all ~quiesced:true sys);
  store_flush_lines sys ~base ~lines:32;
  no_violations "after store+flush" (Invariant.check_all ~quiesced:true sys);
  (* Dirty lines present (no flush): structural checks still hold. *)
  ignore
    (T.run sys
       [ { T.core = 1; body = (fun () -> T.store (base + 8) 99; T.store (base + 640) 7) } ]);
  no_violations "with dirty lines" (Invariant.check_all ~quiesced:true sys)

let test_auditor_conservation () =
  let sys = S.create (C.tiny ~cores:1 ()) in
  let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:64 (8 * 64) in
  let auditor = Auditor.create sys in
  ignore (T.run sys [ { T.core = 0; body = (fun () -> T.store base 1) } ]);
  no_violations "observe dirty" (Auditor.observe auditor);
  ignore (T.run sys [ { T.core = 0; body = (fun () -> T.flush base; T.fence ()) } ]);
  (* The line left the dirty set via a persist: conservation holds. *)
  no_violations "observe after flush" (Auditor.observe auditor);
  no_violations "accumulated" (Auditor.failures auditor)

(* Satellite: crash mid-flush must reset Resource occupancy and flush-queue
   state, and the same system must run a fresh workload afterwards. *)
let test_crash_mid_flush () =
  let sys = S.create (C.tiny ~cores:1 ()) in
  let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:64 (64 * 64) in
  let log = S.persist_log sys in
  (* Stop in the middle of a burst of flushes: persist events exist but the
     instruction stream is nowhere near done. *)
  let outcome =
    T.run_until sys
      ~stop:(fun () -> PL.length log >= 3)
      [
        {
          T.core = 0;
          body =
            (fun () ->
              for i = 0 to 63 do
                T.store (base + (i * 64)) i;
                T.flush (base + (i * 64))
              done;
              T.fence ());
        };
      ]
  in
  (match outcome with
   | `Stopped _ -> ()
   | `Completed _ -> Alcotest.fail "expected the run to stop mid-flush");
  S.crash sys;
  let dc = S.dcache sys 0 in
  let fu = Dcache.flush_unit dc in
  Alcotest.(check int) "no FSHR pendings survive" 0 (Flush_unit.outstanding fu ~now:max_int);
  Alcotest.(check int) "flush queue drained" 0 (Flush_unit.queue_occupants fu);
  no_violations "post-crash invariants" (Invariant.check_all ~quiesced:true sys);
  (* The same system must accept a fresh workload after the crash. *)
  store_flush_lines sys ~base ~lines:16;
  no_violations "post-crash reuse" (Invariant.check_all ~quiesced:true sys);
  for i = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "line %d durable after re-run" i)
      (i + 1)
      (S.persisted_word sys (base + (i * 64)))
  done

(* ------------------------------------------------------------------ *)

let quick_spec ?(fault = Campaign.No_fault) ?(ops = 10) structure mode strategy =
  { Campaign.structure; mode; strategy; fault; seed = 11; n_ops = ops }

let test_campaign_clean () =
  (* One structure per mode keeps the smoke test quick; the CLI covers the
     full matrix. *)
  let specs =
    [
      quick_spec Campaign.Queue Pctx.Manual Campaign.Skipit;
      quick_spec (Campaign.Set Ops.List_set) Pctx.Nvtraverse Campaign.Plain;
      quick_spec (Campaign.Set Ops.Hash_set) Pctx.Automatic Campaign.Plain;
    ]
  in
  List.iter
    (fun spec ->
      let r = Campaign.run_spec ~budget:4 spec in
      match r.Campaign.failure with
      | None -> ()
      | Some f ->
        Alcotest.failf "%s failed at crash_at=%s: %s" (Campaign.spec_name spec)
          (match f.Campaign.crash_at with Some b -> string_of_int b | None -> "-")
          (String.concat "; " f.Campaign.violations))
    specs

let test_campaign_catches_fault () =
  (* A strategy that silently drops every required writeback must fail, and
     the failure must shrink and round-trip through a reproducer file. *)
  let spec =
    quick_spec ~fault:Campaign.Drop_all_persists ~ops:12 (Campaign.Set Ops.List_set)
      Pctx.Manual Campaign.Plain
  in
  let r = Campaign.run_spec ~budget:8 spec in
  match r.Campaign.failure with
  | None -> Alcotest.fail "campaign missed a strategy that elides every writeback"
  | Some f ->
    let s = Campaign.shrink f in
    Alcotest.(check bool) "shrunk schedule no longer than original" true
      (s.Campaign.spec.Campaign.n_ops <= spec.Campaign.n_ops);
    Alcotest.(check bool) "shrunk failure still has violations" true
      (s.Campaign.violations <> []);
    let file = Filename.temp_file "skipit-repro" ".txt" in
    Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
    Campaign.write_reproducer file s;
    (match Campaign.read_reproducer file with
     | Error e -> Alcotest.failf "reproducer did not parse back: %s" e
     | Ok f' ->
       Alcotest.(check string) "spec round-trips"
         (Campaign.spec_name s.Campaign.spec)
         (Campaign.spec_name f'.Campaign.spec);
       Alcotest.(check bool) "crash point round-trips" true
         (f'.Campaign.crash_at = s.Campaign.crash_at);
       let t = Campaign.run_trial f'.Campaign.spec ~crash_at:f'.Campaign.crash_at in
       Alcotest.(check bool) "replayed reproducer still fails" true
         (t.Campaign.violations <> []))

(* ------------------------------------------------------------------ *)
(* Satellite: per-structure qcheck property — random ops, random crash
   point, repair ⇒ every durably-completed update is present and nothing
   phantom appears.  run_trial's oracle is exactly that check, so the
   property is "no trial on an un-faulted spec ever reports a violation". *)

let prop_crash_repair structure =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: crash+repair durable linearizability" (Campaign.structure_name structure))
    ~count:6
    QCheck.(triple small_int (int_range 0 2) (int_range 1 30))
    (fun (seed, mode_ix, boundary) ->
      let mode = List.nth Pctx.all_modes mode_ix in
      let spec =
        { Campaign.structure; mode; strategy = Campaign.Skipit; fault = Campaign.No_fault;
          seed; n_ops = 8 }
      in
      let t = Campaign.run_trial spec ~crash_at:(Some boundary) in
      match t.Campaign.violations with
      | [] -> true
      | v -> QCheck.Test.fail_reportf "%s crash_at=%d: %s" (Campaign.spec_name spec) boundary
               (String.concat "; " v))

let tests =
  ( "audit",
    [
      Alcotest.test_case "healthy system audits clean" `Quick test_healthy_audit;
      Alcotest.test_case "auditor dirty-line conservation" `Quick test_auditor_conservation;
      Alcotest.test_case "crash mid-flush resets occupancy" `Quick test_crash_mid_flush;
      Alcotest.test_case "campaign clean on default config" `Slow test_campaign_clean;
      Alcotest.test_case "campaign catches seeded fault" `Slow test_campaign_catches_fault;
    ]
    @ List.map
        (fun s -> QCheck_alcotest.to_alcotest (prop_crash_repair s))
        Campaign.all_structures )
