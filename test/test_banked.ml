(* The banked NUCA L2 (lib/l2): a bank array behind the XOR-folded
   line-number interleave must be purely a timing change.  Banked and
   monolithic configurations are observationally equivalent on random
   schedules, the monolithic goldens stay bit-identical at l2_banks=1,
   figure output stays byte-identical at any pool width (including the
   all-steals path) when the platform is banked, per-bank counters surface
   in the stats report, the invariant checker sums cleanly across banks,
   and the crash campaign survives crash/repair on a banked hierarchy. *)

module S = Skipit_core.System
module C = Skipit_core.Config
module Params = Skipit_cache.Params
module TP = Skipit_workload.Trace_program
module Figures = Skipit_workload.Figures
module Pool = Skipit_par.Pool
module Invariant = Skipit_audit.Invariant
module Campaign = Skipit_audit.Campaign
module Pctx = Skipit_persist.Pctx
module Rng = Skipit_sim.Rng

(* == Monolithic goldens: banks=1 is the paper's L2, bit-identical ======= *)

let trace name = Printf.sprintf "../../../examples/traces/%s.trace" name

let test_golden_cycles_at_one_bank () =
  List.iter
    (fun (name, golden) ->
      match TP.load_file (trace name) with
      | Error e -> Alcotest.failf "trace %s: %s" name e
      | Ok program ->
        let cores = TP.max_core program + 1 in
        let sys =
          S.create (C.platform ~cores ~skip_it:false ~l2_banks:1 ())
        in
        let cycles, _ = TP.run sys program in
        Alcotest.(check int)
          (Printf.sprintf "%s at l2_banks=1" name)
          golden cycles;
        (* The monolithic report must not grow per-bank keys. *)
        List.iter
          (fun (k, _) ->
            if String.length k >= 8 && String.sub k 0 8 = "l2.bank." then
              Alcotest.failf "%s: unexpected banked counter %s" name k)
          (S.stats_report sys))
    [ "producer_consumer", 915; "redundant_flush", 1120; "fig5_semantics", 127 ]

(* == Observational equivalence: banked vs monolithic ==================== *)

(* Drive the same randomly generated schedule through a system and record
   everything architecturally visible: every loaded value, every CAS
   outcome, and the final memory image.  Timing (cycle counts) is allowed
   to differ between bank counts; values are not. *)
let drive ~banks ~cores ~ops ~seed =
  let p = Params.with_l2_banks (C.tiny ~cores ()) banks in
  let sys = S.create p in
  let rng = Rng.create ~seed in
  let lines =
    Array.init 12 (fun _ ->
        Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64)
  in
  let obs = ref [] in
  for _ = 1 to ops do
    let core = Rng.int rng cores in
    let a = lines.(Rng.int rng (Array.length lines)) + (8 * Rng.int rng 8) in
    match Rng.int rng 10 with
    | 0 | 1 | 2 -> obs := S.load sys ~core a :: !obs
    | 3 | 4 | 5 -> S.store sys ~core a (Rng.int rng 10000)
    | 6 -> S.clean sys ~core a
    | 7 | 8 ->
      S.flush sys ~core a;
      S.fence sys ~core
    | _ ->
      let expected = Rng.int rng 10000 and desired = Rng.int rng 10000 in
      obs := (if S.cas sys ~core a ~expected ~desired then 1 else 0) :: !obs
  done;
  let coherent =
    match S.check_coherence sys with Ok () -> None | Error e -> Some e
  in
  let final =
    Array.to_list lines
    |> List.concat_map (fun base ->
           List.init 8 (fun w -> S.peek_word sys (base + (8 * w))))
  in
  (List.rev !obs @ final, coherent)

let prop_banked_equivalent =
  QCheck.Test.make ~name:"banked L2 observationally equal to monolithic"
    ~count:25
    QCheck.(triple small_int (int_range 1 4) (int_range 1 2))
  @@ fun (seed, cores, lg_banks) ->
  let banks = 1 lsl lg_banks in
  let mono, c1 = drive ~banks:1 ~cores ~ops:300 ~seed in
  let banked, cb = drive ~banks ~cores ~ops:300 ~seed in
  match (c1, cb) with
  | Some e, _ -> QCheck.Test.fail_reportf "monolithic incoherent: %s" e
  | _, Some e -> QCheck.Test.fail_reportf "banks=%d incoherent: %s" banks e
  | None, None ->
    if mono <> banked then
      QCheck.Test.fail_reportf
        "banks=%d diverged from monolithic (seed=%d cores=%d)" banks seed
        cores
    else true

(* == Determinism under the pool on a banked platform ==================== *)

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_open_vbox ppf 0;
  f ppf;
  Format.pp_close_box ppf ();
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let figure_output ?deque_cap ~params name ~jobs =
  match Figures.by_name name with
  | None -> Alcotest.failf "unknown figure %s" name
  | Some f ->
    if jobs = 1 then render (fun ppf -> f ~quick:true ~params ppf)
    else
      Pool.with_pool ~oversubscribe:true ?deque_cap ~jobs (fun pool ->
          render (fun ppf -> f ~quick:true ~pool ~params ppf))

let test_banked_steal_path_deterministic () =
  (* fig9 on the 4-banked platform: byte-identical output at --jobs 1 and
     at widths 2/8 with every worker deque capped at one chunk, so nearly
     all work migrates between domains by stealing. *)
  let params = C.platform ~l2_banks:4 () in
  let seq = figure_output ~params "fig9" ~jobs:1 in
  Alcotest.(check bool) "banked fig9 non-empty" true (String.length seq > 0);
  List.iter
    (fun jobs ->
      let par = figure_output ~params ~deque_cap:1 "fig9" ~jobs in
      Alcotest.(check bool)
        (Printf.sprintf "banked fig9 --jobs 1 vs steals --jobs %d" jobs)
        true (String.equal seq par))
    [ 2; 8 ]

(* == Per-bank counters and cross-bank invariants ======================== *)

let test_per_bank_stats_and_invariants () =
  let sys = S.create (C.platform ~cores:2 ~l2_banks:4 ()) in
  let alloc = S.allocator sys in
  let lines =
    Array.init 64 (fun _ -> Skipit_mem.Allocator.alloc_line alloc ~line_bytes:64)
  in
  Array.iteri
    (fun i a ->
      S.store sys ~core:(i land 1) a (i + 1);
      S.flush sys ~core:(i land 1) a)
    lines;
  S.fence sys ~core:0;
  S.fence sys ~core:1;
  let report = S.stats_report sys in
  let bank_has i =
    let prefix = Printf.sprintf "l2.bank.%d." i in
    List.exists
      (fun (k, v) ->
        v > 0
        && String.length k > String.length prefix
        && String.sub k 0 (String.length prefix) = prefix)
      report
  in
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "l2.bank.%d.* counters present and active" i)
      true (bank_has i)
  done;
  Array.iteri
    (fun i a ->
      Alcotest.(check int) (Printf.sprintf "line %d readback" i) (i + 1)
        (S.load sys ~core:0 a))
    lines;
  (match S.check_coherence sys with
   | Ok () -> ()
   | Error e -> Alcotest.failf "banked coherence: %s" e);
  match Invariant.check_all ~quiesced:true sys with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "banked invariant: %s" (Invariant.violation_to_string v)

(* == Crash campaign on a banked hierarchy =============================== *)

let test_banked_campaign_smoke () =
  let spec =
    {
      Campaign.structure = Campaign.Queue;
      mode = Pctx.Manual;
      strategy = Campaign.Skipit;
      fault = Campaign.No_fault;
      seed = 11;
      n_ops = 10;
    }
  in
  let r = Campaign.run_spec ~budget:3 ~l2_banks:4 spec in
  match r.Campaign.failure with
  | None -> ()
  | Some f ->
    Alcotest.failf "banked campaign %s failed at crash_at=%s: %s"
      (Campaign.spec_name spec)
      (match f.Campaign.crash_at with
       | Some b -> string_of_int b
       | None -> "-")
      (String.concat "; " f.Campaign.violations)

let tests =
  ( "banked-l2",
    [
      Alcotest.test_case "goldens at l2_banks=1" `Quick
        test_golden_cycles_at_one_bank;
      QCheck_alcotest.to_alcotest prop_banked_equivalent;
      Alcotest.test_case "steal-path determinism, banks=4" `Quick
        test_banked_steal_path_deterministic;
      Alcotest.test_case "per-bank stats + invariants" `Quick
        test_per_bank_stats_and_invariants;
      Alcotest.test_case "crash campaign, banks=4" `Quick
        test_banked_campaign_smoke;
    ] )
