(* L1 data-cache behaviour driven directly: hit/miss paths, upgrades, the
   §5.3 pending-writeback interactions, and probe handling. *)

module S = Skipit_core.System
module C = Skipit_core.Config
module Dcache = Skipit_l1.Dcache
open Skipit_tilelink

let fresh ?(cores = 2) ?(params_f = Fun.id) () =
  let sys = S.create (params_f (C.platform ~cores ())) in
  sys, S.dcache sys 0, Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64

let test_load_miss_then_hit () =
  let _, dc, a = fresh () in
  let _, t1 = Dcache.load dc ~addr:a ~now:0 in
  Alcotest.(check bool) "miss pays the L2/DRAM trip" true (t1 > 50);
  let _, t2 = Dcache.load dc ~addr:a ~now:t1 in
  Alcotest.(check bool) "hit is a few cycles" true (t2 - t1 < 10)

let test_store_sets_dirty_and_value () =
  let _, dc, a = fresh () in
  let t = Dcache.store dc ~addr:(a + 16) ~value:5 ~now:0 in
  let line = Option.get (Dcache.line_state dc a) in
  Alcotest.(check bool) "dirty" true line.Dcache.dirty;
  Alcotest.(check bool) "Trunk" true (Perm.equal line.Dcache.perm Perm.Trunk);
  Alcotest.(check int) "word placed" 5 (Dcache.peek_word dc (a + 16));
  Alcotest.(check int) "other words zero" 0 (Dcache.peek_word dc a);
  Alcotest.(check bool) "time" true (t > 0)

let test_branch_to_trunk_upgrade () =
  let _, dc, a = fresh () in
  ignore (Dcache.load dc ~addr:a ~now:0) (* Branch *);
  let t = Dcache.store dc ~addr:a ~value:1 ~now:1000 in
  Alcotest.(check bool) "upgrade went to L2" true (t - 1000 > 20);
  let line = Option.get (Dcache.line_state dc a) in
  Alcotest.(check bool) "now Trunk" true (Perm.equal line.Dcache.perm Perm.Trunk);
  Alcotest.(check int) "one upgrade counted" 1
    (Skipit_sim.Stats.Registry.get (Dcache.stats dc) "store_upgrades")

let test_cas_semantics () =
  let _, dc, a = fresh () in
  ignore (Dcache.store dc ~addr:a ~value:3 ~now:0);
  let ok, t1 = Dcache.cas dc ~addr:a ~expected:3 ~desired:4 ~now:500 in
  Alcotest.(check bool) "success" true ok;
  let ok2, _ = Dcache.cas dc ~addr:a ~expected:3 ~desired:5 ~now:t1 in
  Alcotest.(check bool) "failure leaves value" false ok2;
  Alcotest.(check int) "value" 4 (Dcache.peek_word dc a)

let test_cbo_skip_check_disabled () =
  (* With skip_it off the fast drop never fires even when safe. *)
  let sys = S.create (C.platform ~cores:1 ~skip_it:false ()) in
  let dc = S.dcache sys 0 in
  let a = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  ignore (Dcache.load dc ~addr:a ~now:0) (* clean + skip set *);
  let r = Dcache.cbo dc ~addr:a ~kind:Message.Wb_clean ~now:1000 in
  Alcotest.(check bool) "executed, not dropped" true (r.Dcache.dropped = `Executed)

let coalescing_params p =
  { p with Skipit_cache.Params.coalescing = true; n_fshrs = 1 }

let test_cbo_coalesce () =
  let sys, dc, a = fresh ~params_f:coalescing_params () in
  (* Pin the single FSHR with a writeback of another line so the next
     request waits in the queue, where coalescing applies (§5.3). *)
  let blocker = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  ignore (Dcache.store dc ~addr:blocker ~value:1 ~now:0);
  ignore (Dcache.store dc ~addr:a ~value:1 ~now:0);
  ignore (Dcache.cbo dc ~addr:blocker ~kind:Message.Wb_clean ~now:99);
  let r1 = Dcache.cbo dc ~addr:a ~kind:Message.Wb_clean ~now:100 in
  let r2 = Dcache.cbo dc ~addr:a ~kind:Message.Wb_clean ~now:105 in
  Alcotest.(check bool) "first executed" true (r1.Dcache.dropped = `Executed);
  Alcotest.(check bool) "second coalesced" true (r2.Dcache.dropped = `Coalesced);
  Alcotest.(check int) "same completion" r1.Dcache.ack_at r2.Dcache.ack_at

let test_cbo_store_then_no_coalesce () =
  let _, dc, a = fresh ~params_f:coalescing_params () in
  ignore (Dcache.store dc ~addr:a ~value:1 ~now:0);
  let r1 = Dcache.cbo dc ~addr:a ~kind:Message.Wb_clean ~now:100 in
  (* An intervening store changes the line: §5.3 forbids merging. *)
  let t = Dcache.store dc ~addr:a ~value:2 ~now:(r1.Dcache.commit_at + 1) in
  let r2 = Dcache.cbo dc ~addr:a ~kind:Message.Wb_clean ~now:(t + 1) in
  Alcotest.(check bool) "fresh writeback" true (r2.Dcache.dropped = `Executed)

let test_load_forwarding_after_flush () =
  let _, dc, a = fresh () in
  ignore (Dcache.store dc ~addr:a ~value:9 ~now:0);
  let r = Dcache.cbo dc ~addr:a ~kind:Message.Wb_flush ~now:100 in
  (* Immediately after the flush commits, the line is gone but the FSHR's
     buffer holds it: the load forwards (§5.3). *)
  let v, t = Dcache.load dc ~addr:a ~now:(r.Dcache.commit_at + 1) in
  Alcotest.(check int) "forwarded value" 9 v;
  Alcotest.(check bool) "well before the ack" true (t < r.Dcache.ack_at);
  Alcotest.(check int) "counted" 1
    (Skipit_sim.Stats.Registry.get (Dcache.stats dc) "load_forwards")

let test_store_blocked_by_pending_flush () =
  let _, dc, a = fresh () in
  ignore (Dcache.store dc ~addr:a ~value:1 ~now:0);
  let r = Dcache.cbo dc ~addr:a ~kind:Message.Wb_flush ~now:100 in
  (* §5.3: stores to a line with a pending *flush* wait for the ack. *)
  let t = Dcache.store dc ~addr:a ~value:2 ~now:(r.Dcache.commit_at + 1) in
  Alcotest.(check bool) "store delayed past the ack" true (t >= r.Dcache.ack_at)

let test_store_proceeds_after_clean_fill () =
  let _, dc, a = fresh () in
  ignore (Dcache.store dc ~addr:a ~value:1 ~now:0);
  let r = Dcache.cbo dc ~addr:a ~kind:Message.Wb_clean ~now:100 in
  let t = Dcache.store dc ~addr:a ~value:2 ~now:(r.Dcache.commit_at + 1) in
  Alcotest.(check bool) "store released before the ack (§5.3 clean rule)" true
    (t < r.Dcache.ack_at);
  Alcotest.(check int) "both values correct" 2 (Dcache.peek_word dc a)

let test_probe_handling () =
  let _, dc, a = fresh () in
  ignore (Dcache.store dc ~addr:a ~value:6 ~now:0);
  let r = Dcache.handle_probe dc ~addr:a ~cap:Perm.Branch ~now:100 in
  (match r.Skipit_l2.Inclusive_cache.dirty_data with
   | Some data -> Alcotest.(check int) "dirty data handed over" 6 data.(0)
   | None -> Alcotest.fail "expected dirty data");
  let line = Option.get (Dcache.line_state dc a) in
  Alcotest.(check bool) "downgraded" true (Perm.equal line.Dcache.perm Perm.Branch);
  Alcotest.(check bool) "clean now" false line.Dcache.dirty;
  (* Probing a line we do not have acks without data. *)
  let r2 = Dcache.handle_probe dc ~addr:(a + 4096) ~cap:Perm.Nothing ~now:200 in
  Alcotest.(check bool) "miss probe: no data" true
    (r2.Skipit_l2.Inclusive_cache.dirty_data = None)

let test_probe_blocked_by_fshr () =
  (* §5.4.1: a probe racing an allocated FSHR waits for flush_rdy. *)
  let _, dc, a = fresh () in
  ignore (Dcache.store dc ~addr:a ~value:1 ~now:0);
  let r = Dcache.cbo dc ~addr:a ~kind:Message.Wb_flush ~now:100 in
  let pending =
    Option.get (Skipit_l1.Flush_unit.find_pending (Dcache.flush_unit dc) ~addr:a ~now:(r.Dcache.commit_at + 1))
  in
  let probe =
    Dcache.handle_probe dc ~addr:a ~cap:Perm.Nothing
      ~now:(pending.Skipit_l1.Flush_unit.alloc_at + 1)
  in
  Alcotest.(check bool) "probe completion after release" true
    (probe.Skipit_l2.Inclusive_cache.done_at >= pending.Skipit_l1.Flush_unit.release_at)

let test_l1_hit_zero_alloc () =
  (* The bench --profile gate pins the L1 hit path at zero minor-heap words
     per operation; this is the unit-level pin.  Driven through [load_word]
     directly — the Thread effect layer would charge its continuation
     captures to the measurement. *)
  let _, dc, a = fresh () in
  ignore (Dcache.load_word dc ~addr:a ~now:0) (* fill *);
  let now = Dcache.done_at dc in
  (* Warm-up binds the lazily-created stat counters before measuring. *)
  for _ = 1 to 100 do
    ignore (Dcache.load_word dc ~addr:a ~now)
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Dcache.load_word dc ~addr:a ~now)
  done;
  let allocated = Gc.minor_words () -. before in
  (* Slack covers only the boxing of [before] itself; any per-hit
     allocation would show up as >= 20k words. *)
  Alcotest.(check bool)
    (Printf.sprintf "0 minor words across 10k L1 hits (saw %.0f)" allocated)
    true (allocated < 64.)

let test_held_lines_inclusion () =
  let sys, dc, a = fresh () in
  ignore (Dcache.load dc ~addr:a ~now:0);
  Alcotest.(check bool) "listed" true
    (List.mem_assoc a (Dcache.held_lines dc));
  match S.check_coherence sys with Ok () -> () | Error e -> Alcotest.fail e

let tests =
  ( "dcache",
    [
      Alcotest.test_case "load miss/hit" `Quick test_load_miss_then_hit;
      Alcotest.test_case "store dirty+value" `Quick test_store_sets_dirty_and_value;
      Alcotest.test_case "B->T upgrade" `Quick test_branch_to_trunk_upgrade;
      Alcotest.test_case "cas" `Quick test_cas_semantics;
      Alcotest.test_case "skip check gated" `Quick test_cbo_skip_check_disabled;
      Alcotest.test_case "cbo coalescing" `Quick test_cbo_coalesce;
      Alcotest.test_case "store breaks coalescing" `Quick test_cbo_store_then_no_coalesce;
      Alcotest.test_case "load forwards from FSHR" `Quick test_load_forwarding_after_flush;
      Alcotest.test_case "store blocked by flush" `Quick test_store_blocked_by_pending_flush;
      Alcotest.test_case "store freed by clean fill" `Quick test_store_proceeds_after_clean_fill;
      Alcotest.test_case "probe handling" `Quick test_probe_handling;
      Alcotest.test_case "probe blocked by FSHR (§5.4.1)" `Quick test_probe_blocked_by_fshr;
      Alcotest.test_case "L1 hit allocates zero minor words" `Quick test_l1_hit_zero_alloc;
      Alcotest.test_case "held lines" `Quick test_held_lines_inclusion;
    ] )
