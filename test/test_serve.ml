(* The open-loop serving engine: arrival-schedule determinism, the
   group-commit batcher's ordering contract, conservation of requests
   through admission + shedding, and byte-identical sweeps at any pool
   width. *)

module Arrival = Skipit_serve.Arrival
module Batcher = Skipit_serve.Batcher
module Engine = Skipit_serve.Engine
module Report = Skipit_serve.Report
module Strategy = Skipit_persist.Strategy
module Pctx = Skipit_persist.Pctx
module Pool = Skipit_par.Pool

(* == Arrival schedules ================================================== *)

let schedule ?(process = Arrival.Poisson) ?(seed = 42) ?(rate = 8.) () =
  Arrival.schedule ~process ~rate ~clients:8 ~requests:400 ~key_range:256
    ~update_pct:20 ~seed ()

let req_tuple (r : Arrival.request) =
  (r.Arrival.arrival, r.Arrival.client, r.Arrival.seq, Arrival.op_name r.Arrival.op, r.Arrival.key)

let test_schedule_deterministic () =
  List.iter
    (fun process ->
      let a = schedule ~process () and b = schedule ~process () in
      Alcotest.(check (list (triple int int int)))
        (Arrival.process_name process ^ ": same seed, same schedule")
        (Array.to_list (Array.map (fun (r : Arrival.request) -> r.arrival, r.client, r.key) a))
        (Array.to_list (Array.map (fun (r : Arrival.request) -> r.arrival, r.client, r.key) b));
      Alcotest.(check bool)
        (Arrival.process_name process ^ ": different seed, different schedule")
        false
        (Array.for_all2 (fun x y -> req_tuple x = req_tuple y) a (schedule ~process ~seed:43 ())))
    [ Arrival.Poisson; Arrival.default_bursty ]

let test_schedule_shape () =
  let s = schedule () in
  Alcotest.(check int) "requested length" 400 (Array.length s);
  Array.iteri
    (fun i (r : Arrival.request) ->
      if i > 0 then
        Alcotest.(check bool) "arrivals nondecreasing" true
          (r.arrival >= s.(i - 1).Arrival.arrival);
      Alcotest.(check bool) "key in range" true (r.key >= 1 && r.key <= 256))
    s;
  (* Per-client sequence numbers count that client's emissions in order. *)
  let next_seq = Array.make 8 0 in
  Array.iter
    (fun (r : Arrival.request) ->
      Alcotest.(check int)
        (Printf.sprintf "client %d seq" r.client)
        next_seq.(r.client) r.seq;
      next_seq.(r.client) <- r.seq + 1)
    s

let test_bursty_respects_phases () =
  let on = 500 and off = 1500 in
  let s = schedule ~process:(Arrival.Bursty { on; off }) () in
  Array.iter
    (fun (r : Arrival.request) ->
      Alcotest.(check bool)
        (Printf.sprintf "arrival %d inside an on phase" r.arrival)
        true
        (r.arrival mod (on + off) < on))
    s

let test_process_names_round_trip () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Arrival.process_name p ^ " round-trips")
        true
        (Arrival.process_of_name (Arrival.process_name p) = Some p))
    [
      Arrival.Poisson;
      Arrival.default_bursty;
      Arrival.Bursty { on = 17; off = 3 };
      Arrival.Degraded { windows = [ (100, 300) ]; base = Arrival.Poisson };
      Arrival.Degraded
        { windows = [ (10, 20); (50, 90) ]; base = Arrival.Bursty { on = 17; off = 3 } };
    ];
  Alcotest.(check bool) "bad spec rejected" true
    (Arrival.process_of_name "bursty:0/5" = None
    && Arrival.process_of_name "sawtooth" = None
    && Arrival.process_of_name "degraded:30-20:poisson" = None
    && Arrival.process_of_name "degraded:10-20,15-30:poisson" = None
    && Arrival.process_of_name "degraded:10-20:degraded:30-40:poisson" = None)

let test_degraded_windows_are_quiet () =
  (* No arrival lands inside a fault window, and outside the windows the
     schedule is exactly the base process (bit-identical seeding): erasing
     the windows from a degraded schedule's arrivals leaves a prefix of the
     base schedule's arrival sequence restricted to the same gaps. *)
  let windows = [ (1000, 3000); (5000, 6000) ] in
  let base = Arrival.Bursty { on = 500; off = 700 } in
  let s = schedule ~process:(Arrival.Degraded { windows; base }) () in
  Array.iter
    (fun (r : Arrival.request) ->
      Alcotest.(check bool)
        (Printf.sprintf "arrival %d outside every fault window" r.arrival)
        true
        (not (List.exists (fun (a, b) -> r.arrival >= a && r.arrival < b) windows));
      Alcotest.(check bool)
        (Printf.sprintf "arrival %d still respects the base's on phases" r.arrival)
        true
        (r.arrival mod 1200 < 500))
    s

let test_aggregate_path_matches_contract () =
  (* Above the client threshold the scheduler switches to one merged
     Bernoulli stream.  The contract stays: sorted arrivals, per-client
     seqs, keys in range, deterministic in the seed. *)
  let clients = 4 * Arrival.aggregate_threshold in
  let make seed =
    Arrival.schedule ~process:Arrival.Poisson ~rate:16. ~clients ~requests:600
      ~key_range:256 ~update_pct:20 ~seed ()
  in
  let s = make 42 in
  Alcotest.(check int) "requested length" 600 (Array.length s);
  let next_seq = Hashtbl.create 64 in
  Array.iteri
    (fun i (r : Arrival.request) ->
      if i > 0 then
        Alcotest.(check bool) "arrivals nondecreasing" true
          (r.arrival >= s.(i - 1).Arrival.arrival);
      Alcotest.(check bool) "client in range" true (r.client >= 0 && r.client < clients);
      Alcotest.(check bool) "key in range" true (r.key >= 1 && r.key <= 256);
      let expect = Option.value ~default:0 (Hashtbl.find_opt next_seq r.client) in
      Alcotest.(check int) "per-client seq" expect r.seq;
      Hashtbl.replace next_seq r.client (r.seq + 1))
    s;
  Alcotest.(check bool) "same seed, same schedule" true
    (Array.for_all2 (fun a b -> req_tuple a = req_tuple b) s (make 42));
  Alcotest.(check bool) "different seed, different schedule" false
    (Array.for_all2 (fun a b -> req_tuple a = req_tuple b) s (make 43))

(* == Batcher ordering contract ========================================== *)

(* A probe strategy that only logs: operations via [write], persist points
   and fences via the batcher's replay.  No simulated memory is touched, so
   this runs outside any Thread task. *)
let probe log =
  {
    Strategy.name = "probe";
    field_stride = 8;
    uses_word_bit = false;
    read = (fun _ -> 0);
    write = (fun addr _ -> log := ("op", addr) :: !log);
    cas =
      (fun addr ~expected:_ ~desired:_ ->
        log := ("op", addr) :: !log;
        true);
    persist_store = (fun addr -> log := ("persist", addr) :: !log);
    persist_load = (fun addr -> log := ("persist", addr) :: !log);
    fence = (fun () -> log := ("fence", -1) :: !log);
    persistent = true;
    deferrable = true;
  }

let test_batcher_defers_and_orders () =
  let log = ref [] in
  let b = Batcher.create ~strategy:(probe log) ~mode:Pctx.Automatic () in
  Alcotest.(check bool) "grouping active" true (Batcher.grouping b);
  let pctx = Batcher.pctx b in
  (* Two requests: ops on lines 64 and 128, plus a duplicate store to 64. *)
  Pctx.write pctx 64 1;
  Pctx.commit pctx ~updated:true;
  Pctx.write pctx 128 2;
  Pctx.write pctx 70 3;  (* same line as 64 *)
  Pctx.commit pctx ~updated:true;
  let before = List.rev !log in
  Alcotest.(check bool) "no persist reaches the base strategy before commit" true
    (List.for_all (fun (e, _) -> e = "op") before);
  Alcotest.(check int) "distinct lines pending" 2 (Batcher.pending b);
  Batcher.commit b;
  let events = List.rev !log in
  let ops, tail = List.partition (fun (e, _) -> e = "op") events in
  Alcotest.(check int) "three ops" 3 (List.length ops);
  Alcotest.(check (list (pair string int)))
    "commit replays one persist per distinct line, first-capture order, then one fence"
    [ "persist", 64; "persist", 128; "fence", -1 ]
    tail;
  (* Every op precedes the whole persist replay: the epoch closes after the
     last member operation, so no request's persist is reordered before its
     own accesses. *)
  let first_persist =
    List.mapi (fun i (e, _) -> i, e) events
    |> List.find (fun (_, e) -> e = "persist")
    |> fst
  in
  List.iteri
    (fun i (e, _) -> if e = "op" then Alcotest.(check bool) "op before persists" true (i < first_persist))
    events;
  Batcher.commit b;
  Alcotest.(check int) "empty commit is a no-op" (3 + 2 + 1) (List.length !log)

let test_batcher_non_deferrable_passthrough () =
  let log = ref [] in
  let strategy = { (probe log) with Strategy.deferrable = false } in
  let b = Batcher.create ~strategy ~mode:Pctx.Automatic () in
  let pctx = Batcher.pctx b in
  Pctx.write pctx 64 1;
  Pctx.commit pctx ~updated:true;
  Alcotest.(check (list (pair string int)))
    "persist point forwarded immediately, fence still deferred"
    [ "op", 64; "persist", 64 ]
    (List.rev !log);
  Alcotest.(check int) "nothing pending (only the fence)" 0 (Batcher.pending b);
  Batcher.commit b;
  Alcotest.(check (list (pair string int)))
    "epoch fence issued at commit"
    [ "op", 64; "persist", 64; "fence", -1 ]
    (List.rev !log)

let test_batcher_manual_and_ungrouped_fall_back () =
  List.iter
    (fun (label, b) ->
      let log_len_before = 0 in
      ignore log_len_before;
      Alcotest.(check bool) (label ^ ": grouping off") false (Batcher.grouping b))
    [
      "manual mode", Batcher.create ~strategy:(probe (ref [])) ~mode:Pctx.Manual ();
      "group:false", Batcher.create ~group:false ~strategy:(probe (ref [])) ~mode:Pctx.Automatic ();
      ( "non-persistent",
        Batcher.create
          ~strategy:{ (probe (ref [])) with Strategy.persistent = false }
          ~mode:Pctx.Automatic () );
    ];
  (* Per-op semantics under fallback: persists and fences pass straight
     through and commit is a no-op. *)
  let log = ref [] in
  let b = Batcher.create ~strategy:(probe log) ~mode:Pctx.Manual () in
  let pctx = Batcher.pctx b in
  Pctx.write pctx 64 1;
  Pctx.persist pctx 64;
  Pctx.commit pctx ~updated:true;
  Batcher.commit b;
  Alcotest.(check (list (pair string int)))
    "manual mode: author-placed persist order untouched"
    [ "op", 64; "persist", 64; "fence", -1 ]
    (List.rev !log)

(* == Conservation through admission + shedding ========================== *)

let spike_cfg =
  {
    Engine.default with
    Engine.requests = 500;
    clients = 8;
    depth = 8;
    batch = 4;
    key_range = 256;
    prefill = 128;
  }

let test_spike_conservation () =
  (* Offered load far beyond saturation: the waiting room must overflow,
     yet every request is either served or shed, no admission slot leaks,
     and exactly the served requests have latencies. *)
  let p = Engine.run spike_cfg ~rate:60. in
  Alcotest.(check bool) "spike actually sheds" true (p.Engine.shed > 0);
  Alcotest.(check bool) "still serves" true (p.Engine.served > 0);
  Alcotest.(check int) "served + shed = offered requests" p.Engine.n
    (p.Engine.served + p.Engine.shed);
  Alcotest.(check int) "no admission slots leak" 0 p.Engine.leaked;
  (match p.Engine.latency with
   | None -> Alcotest.fail "latency summary missing"
   | Some s ->
     Alcotest.(check int) "one latency sample per served request" p.Engine.served
       s.Skipit_obs.Latency.count;
     Alcotest.(check bool) "positive latencies" true (s.Skipit_obs.Latency.p50 > 0.));
  (* A gentle load on the same config sheds nothing. *)
  let q = Engine.run spike_cfg ~rate:2. in
  Alcotest.(check int) "gentle load sheds nothing" 0 q.Engine.shed;
  Alcotest.(check int) "gentle load serves everything" q.Engine.n q.Engine.served

let test_group_commit_beats_per_op () =
  (* The point of the batcher: near saturation, epochs spend fewer cycles
     on persists, so group commit serves more than per-op persists. *)
  let rate = 16. in
  let cfg = { Engine.default with Engine.requests = 600 } in
  let b8 = Engine.run cfg ~rate in
  let b1 = Engine.run { cfg with Engine.batch = 1 } ~rate in
  Alcotest.(check bool)
    (Printf.sprintf "achieved %.2f (batch 8) > %.2f (batch 1)" b8.Engine.achieved
       b1.Engine.achieved)
    true
    (b8.Engine.achieved > b1.Engine.achieved);
  Alcotest.(check bool) "per-op run batches nothing" true (b1.Engine.epochs = 0);
  Alcotest.(check bool) "grouped run commits epochs" true (b8.Engine.epochs > 0)

(* == Telemetry: CO-correct latency and conservation ===================== *)

let test_telemetry_co_latency_and_conservation () =
  (* Saturating load: the backlog makes intended-arrival latency strictly
     dominate the dequeue-stamped latency a coordinated-omission-blind
     recorder would report. *)
  let p = Engine.run { spike_cfg with Engine.telemetry = true } ~rate:60. in
  let intended = Option.get p.Engine.latency in
  let dequeue = Option.get p.Engine.dequeue_latency in
  let module L = Skipit_obs.Latency in
  Alcotest.(check int) "same sample count" intended.L.count dequeue.L.count;
  List.iter
    (fun (name, i, d) ->
      Alcotest.(check bool)
        (Printf.sprintf "intended %s %.1f >= dequeue %.1f" name i d)
        true (i >= d))
    [
      "mean", intended.L.mean, dequeue.L.mean;
      "p50", intended.L.p50, dequeue.L.p50;
      "p99", intended.L.p99, dequeue.L.p99;
      "p99.9", intended.L.p999, dequeue.L.p999;
      "max", intended.L.max, dequeue.L.max;
    ];
  (match p.Engine.gap with
   | None -> Alcotest.fail "gap missing"
   | Some g ->
     Alcotest.(check bool) "saturation opens a visible CO gap at p99" true
       (g.L.gap_p99 > 0.));
  (* Attribution: every served request decomposed, stage cycles summing
     exactly to its intended-arrival -> persist-complete span. *)
  Alcotest.(check int) "every served request attributed" p.Engine.served
    p.Engine.attr_requests;
  Alcotest.(check bool) "stage cycles conserve each request's span" true
    p.Engine.attr_conserved;
  Alcotest.(check int) "no off-critical-path cycles trimmed" 0 p.Engine.attr_trimmed;
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 p.Engine.attribution in
  Alcotest.(check bool) "attribution non-trivial" true (total > 0);
  Alcotest.(check bool) "saturated: admission wait dominates" true
    (List.assoc "adm_wait" p.Engine.attribution > total / 2)

let test_telemetry_leaves_simulation_untouched () =
  (* The whole point of the enabled() guards: cycles, counts and latency
     percentiles are bit-identical with telemetry on or off. *)
  let rate = 16. in
  let off = Engine.run spike_cfg ~rate in
  let on = Engine.run { spike_cfg with Engine.telemetry = true } ~rate in
  Alcotest.(check int) "served identical" off.Engine.served on.Engine.served;
  Alcotest.(check int) "shed identical" off.Engine.shed on.Engine.shed;
  Alcotest.(check int) "elapsed identical" off.Engine.elapsed on.Engine.elapsed;
  Alcotest.(check int) "flushes identical" off.Engine.flushes on.Engine.flushes;
  let s l = Option.get l.Engine.latency in
  let module L = Skipit_obs.Latency in
  Alcotest.(check (list (float 0.)))
    "latency summary identical"
    [ (s off).L.mean; (s off).L.p50; (s off).L.p99; (s off).L.p999; (s off).L.max ]
    [ (s on).L.mean; (s on).L.p50; (s on).L.p99; (s on).L.p999; (s on).L.max ];
  Alcotest.(check bool) "off-run records no attribution" true
    (off.Engine.attribution = [] && off.Engine.metrics = None)

(* == Sweep determinism under the pool =================================== *)

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_open_vbox ppf 0;
  f ppf;
  Format.pp_close_box ppf ();
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_sweep_byte_identical_across_jobs () =
  let cfg = { spike_cfg with Engine.requests = 300 } in
  let rates = [ 4.; 12.; 40. ] in
  let output pool =
    let points = Engine.sweep ?pool cfg ~rates in
    render (fun ppf ->
      Report.pp_config ppf cfg;
      Report.pp_table ppf points;
      Report.pp_csv ppf points)
    ^ Report.to_json cfg points
  in
  let seq = output None in
  let par = Pool.with_pool ~oversubscribe:true ~jobs:4 (fun pool -> output (Some pool)) in
  Alcotest.(check bool) "serve sweep --jobs 1 vs --jobs 4 byte-identical" true
    (String.equal seq par);
  Alcotest.(check bool) "sweep output non-empty" true (String.length seq > 0)

let tests =
  ( "serve",
    [
      Alcotest.test_case "schedules are seed-deterministic" `Quick test_schedule_deterministic;
      Alcotest.test_case "schedule shape and per-client seq" `Quick test_schedule_shape;
      Alcotest.test_case "bursty arrivals stay in on phases" `Quick test_bursty_respects_phases;
      Alcotest.test_case "process names round-trip" `Quick test_process_names_round_trip;
      Alcotest.test_case "degraded windows erase load, keep seeding" `Quick
        test_degraded_windows_are_quiet;
      Alcotest.test_case "aggregate path keeps the schedule contract" `Quick
        test_aggregate_path_matches_contract;
      Alcotest.test_case "batcher defers, dedups, never reorders" `Quick test_batcher_defers_and_orders;
      Alcotest.test_case "non-deferrable strategies pass through" `Quick
        test_batcher_non_deferrable_passthrough;
      Alcotest.test_case "manual / ungrouped fall back to per-op" `Quick
        test_batcher_manual_and_ungrouped_fall_back;
      Alcotest.test_case "load spike conserves requests and slots" `Quick test_spike_conservation;
      Alcotest.test_case "group commit beats per-op persists" `Quick test_group_commit_beats_per_op;
      Alcotest.test_case "CO-correct latency and conservation" `Quick
        test_telemetry_co_latency_and_conservation;
      Alcotest.test_case "telemetry leaves simulation untouched" `Quick
        test_telemetry_leaves_simulation_untouched;
      Alcotest.test_case "sweep byte-identical at any width" `Slow
        test_sweep_byte_identical_across_jobs;
    ] )
