(* The typed TileLink port layer: channel-beat accounting, stall behaviour
   under contention, agent binding discipline, and memside-port counters. *)

open Skipit_tilelink
module Port = Skipit_tilelink.Port
module Registry = Skipit_sim.Stats.Registry

let get p name = Registry.get (Port.stats p) name

let test_channel_occupancy () =
  let p = Port.create ~name:"t" () in
  (* Contention-free: a send whose serialization is already accounted in
     [finish] costs nothing extra. *)
  Alcotest.(check int) "free C channel" 10 (Port.send_c p ~addr:0 ~finish:10 ~beats:4);
  (* A second sender wanting the same window queues behind the first. *)
  Alcotest.(check int) "contended send queues" 14 (Port.send_c p ~addr:0 ~finish:10 ~beats:4);
  (* Channels are independent wire sets. *)
  Alcotest.(check int) "A channel free" 8 (Port.send_a p ~addr:0 ~now:7);
  Alcotest.(check int) "D channel free" 11 (Port.recv_d p ~addr:0 ~finish:11 ~beats:4)

let test_beat_and_stall_counters () =
  let p = Port.create ~name:"t" () in
  ignore (Port.send_c p ~addr:0 ~finish:10 ~beats:4);
  ignore (Port.send_c p ~addr:0 ~finish:10 ~beats:4);
  ignore (Port.send_a p ~addr:0 ~now:7);
  ignore (Port.recv_d p ~addr:0 ~finish:11 ~beats:4);
  Alcotest.(check int) "c beats" 8 (get p "c_beats");
  Alcotest.(check int) "c stalls: only the queued send" 1 (get p "c_stalls");
  Alcotest.(check int) "c wait cycles" 4 (get p "c_wait_cycles");
  Alcotest.(check int) "a beats" 1 (get p "a_beats");
  Alcotest.(check int) "a stalls" 0 (get p "a_stalls");
  Alcotest.(check int) "d beats" 4 (get p "d_beats")

let dummy_manager done_at =
  {
    Port.acquire =
      (fun ~addr:_ ~grow:_ ~now:_ ->
        { Port.perm = Perm.Trunk; data = [||]; l2_dirty = false; done_at });
    release = (fun ~addr:_ ~shrink:_ ~data:_ ~now -> now + 1);
    root_release = (fun ~addr:_ ~kind:_ ~data:_ ~now -> now + 2);
    root_inval = (fun ~addr:_ ~now -> now + 3);
    peek_word = (fun _ -> 42);
  }

let test_manager_forwarding () =
  let p = Port.create ~name:"t" () in
  Port.connect_manager p (dummy_manager 99);
  let g = Port.acquire p ~addr:0x40 ~grow:Perm.N_to_T ~now:0 in
  Alcotest.(check int) "grant forwarded" 99 g.Port.done_at;
  Alcotest.(check int) "release forwarded" 6 (Port.release p ~addr:0 ~shrink:Perm.T_to_N ~data:None ~now:5);
  Alcotest.(check int) "root_release forwarded" 7
    (Port.root_release p ~addr:0 ~kind:Message.Wb_flush ~data:None ~now:5);
  Alcotest.(check int) "root_inval forwarded" 8 (Port.root_inval p ~addr:0 ~now:5);
  Alcotest.(check int) "peek forwarded" 42 (Port.peek_word p 0);
  Alcotest.(check int) "acquires counted" 1 (get p "acquires");
  Alcotest.(check int) "releases counted" 1 (get p "releases");
  Alcotest.(check int) "root_releases counted" 1 (get p "root_releases");
  Alcotest.(check int) "root_invals counted" 1 (get p "root_invals")

let test_client_probe () =
  let p = Port.create ~name:"t" () in
  Port.connect_client p
    { Port.probe = (fun ~addr:_ ~cap:_ ~now -> { Port.dirty_data = None; done_at = now + 7 }) };
  let r = Port.probe p ~addr:0x40 ~cap:Perm.Nothing ~now:3 in
  Alcotest.(check int) "probe forwarded" 10 r.Port.done_at;
  Alcotest.(check int) "b_probes counted" 1 (get p "b_probes");
  Alcotest.(check int) "b_beats counted" 1 (get p "b_beats")

let test_unconnected_raises () =
  let p = Port.create ~name:"t" () in
  Alcotest.check_raises "no manager" (Invalid_argument "Port.t: no manager connected")
    (fun () -> ignore (Port.acquire p ~addr:0 ~grow:Perm.N_to_B ~now:0));
  Alcotest.check_raises "no client" (Invalid_argument "Port.t: no client connected")
    (fun () -> ignore (Port.probe p ~addr:0 ~cap:Perm.Nothing ~now:0))

let test_double_connect_raises () =
  let p = Port.create ~name:"t" () in
  Port.connect_manager p (dummy_manager 0);
  Alcotest.check_raises "manager rebind" (Invalid_argument "Port.t: manager already connected")
    (fun () -> Port.connect_manager p (dummy_manager 0));
  let client =
    { Port.probe = (fun ~addr:_ ~cap:_ ~now -> { Port.dirty_data = None; done_at = now }) }
  in
  Port.connect_client p client;
  Alcotest.check_raises "client rebind" (Invalid_argument "Port.t: client already connected")
    (fun () -> Port.connect_client p client)

let test_shared_bus_contention () =
  (* Two ports on one wire set contend; two crossbar ports do not. *)
  let bus = Port.Channels.create ~name:"bus" in
  let p0 = Port.create ~channels:bus ~name:"p0" () in
  let p1 = Port.create ~channels:bus ~name:"p1" () in
  Alcotest.(check int) "first sender on the bus" 10 (Port.send_c p0 ~addr:0 ~finish:10 ~beats:4);
  Alcotest.(check int) "second port queues on shared wires" 14
    (Port.send_c p1 ~addr:0 ~finish:10 ~beats:4);
  Alcotest.(check int) "stall landed on the queued port" 1 (get p1 "c_stalls");
  Alcotest.(check int) "no stall on the winner" 0 (get p0 "c_stalls");
  let q0 = Port.create ~name:"q0" () in
  let q1 = Port.create ~name:"q1" () in
  ignore (Port.send_c q0 ~addr:0 ~finish:10 ~beats:4);
  Alcotest.(check int) "crossbar ports are independent" 10
    (Port.send_c q1 ~addr:0 ~finish:10 ~beats:4)

let test_memside_counters () =
  let m =
    Port.Memside.create ~name:"mem" ~beats_per_line:4 (fun stats ->
      {
        Port.Memside.read_line =
          (fun ~addr:_ ~now ->
            Port.Memside.note_wait stats 3;
            Array.make 8 0, now + 10, false);
        write_line = (fun ~addr:_ ~data:_ ~now -> now + 5);
        persist_line = (fun ~addr:_ ~data:_ ~now -> now + 6);
        persist_if_dirty = (fun ~addr:_ ~now -> now);
        discard_line = (fun ~addr:_ -> ());
        peek_word = (fun _ -> 0);
        crash = (fun () -> ());
      })
  in
  let get name = Registry.get (Port.Memside.stats m) name in
  let _, t, dirty = Port.Memside.read_line m ~addr:0x40 ~now:0 in
  Alcotest.(check int) "read timed" 10 t;
  Alcotest.(check bool) "clean" false dirty;
  ignore (Port.Memside.write_line m ~addr:0x40 ~data:[||] ~now:0);
  ignore (Port.Memside.persist_line m ~addr:0x40 ~data:[||] ~now:0);
  ignore (Port.Memside.persist_if_dirty m ~addr:0x40 ~now:0);
  Alcotest.(check int) "reads" 1 (get "reads");
  Alcotest.(check int) "read beats" 4 (get "read_beats");
  Alcotest.(check int) "writes" 1 (get "writes");
  Alcotest.(check int) "write beats cover write+persist" 8 (get "write_beats");
  Alcotest.(check int) "persists" 1 (get "persists");
  Alcotest.(check int) "persist checks" 1 (get "persist_checks");
  Alcotest.(check int) "agent-reported stalls" 1 (get "stalls");
  Alcotest.(check int) "agent-reported wait cycles" 3 (get "wait_cycles")

let tests =
  ( "port",
    [
      Alcotest.test_case "channel occupancy" `Quick test_channel_occupancy;
      Alcotest.test_case "beat/stall counters" `Quick test_beat_and_stall_counters;
      Alcotest.test_case "manager forwarding" `Quick test_manager_forwarding;
      Alcotest.test_case "client probe" `Quick test_client_probe;
      Alcotest.test_case "unconnected raises" `Quick test_unconnected_raises;
      Alcotest.test_case "double connect raises" `Quick test_double_connect_raises;
      Alcotest.test_case "shared-bus contention" `Quick test_shared_bus_contention;
      Alcotest.test_case "memside counters" `Quick test_memside_counters;
    ] )
