module A = Skipit_sim.Admission

let test_passthrough_when_space () =
  let a = A.create ~capacity:2 in
  Alcotest.(check int) "first enters now" 5 (A.admit a ~now:5);
  Alcotest.(check int) "second enters now" 6 (A.admit a ~now:6);
  Alcotest.(check int) "two occupants" 2 (A.occupants a)

let test_full_blocks_until_departure () =
  let a = A.create ~capacity:2 in
  ignore (A.admit a ~now:0);
  ignore (A.admit a ~now:0);
  A.release a ~at:50;
  A.release a ~at:80;
  (* Third waits for the first departure, fourth for the second. *)
  Alcotest.(check int) "third blocked to 50" 50 (A.admit a ~now:1);
  Alcotest.(check int) "fourth blocked to 80" 80 (A.admit a ~now:2);
  (* A late arrival after the departure is not delayed. *)
  A.release a ~at:60;
  A.release a ~at:90;
  Alcotest.(check int) "late arrival passes" 100 (A.admit a ~now:100)

let test_peek_entry_is_nonmutating () =
  let a = A.create ~capacity:2 in
  (* Empty room: entry is immediate, repeatedly. *)
  Alcotest.(check int) "peek with space" 7 (A.peek_entry a ~now:7);
  Alcotest.(check int) "peek again unchanged" 7 (A.peek_entry a ~now:7);
  Alcotest.(check int) "occupancy untouched" 0 (A.occupants a);
  ignore (A.admit a ~now:7);
  ignore (A.admit a ~now:7);
  (* Full, no departure recorded yet: a shedder sees "not now". *)
  Alcotest.(check int) "full + no departure = never" max_int (A.peek_entry a ~now:8);
  A.release a ~at:50;
  Alcotest.(check int) "full: entry at next departure" 50 (A.peek_entry a ~now:8);
  Alcotest.(check int) "peek matches admit" 50 (A.admit a ~now:8);
  (* After the real admit consumed the slot, peek sees a full room again. *)
  Alcotest.(check int) "slot consumed" max_int (A.peek_entry a ~now:9);
  A.release a ~at:40;
  Alcotest.(check int) "stale departure never beats now" 60 (A.peek_entry a ~now:60)

let test_capacity_guard () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Admission.create: capacity must be positive") (fun () ->
      ignore (A.create ~capacity:0))

let prop_admission_never_early =
  QCheck.Test.make ~name:"admission time >= arrival" ~count:300
    QCheck.(pair (int_range 1 4) (list_of_size (QCheck.Gen.int_range 1 40) (int_range 0 50)))
  @@ fun (capacity, gaps) ->
  let a = A.create ~capacity in
  let now = ref 0 in
  List.for_all
    (fun gap ->
      now := !now + gap;
      let entry = A.admit a ~now:!now in
      A.release a ~at:(entry + 10);
      entry >= !now)
    gaps

let test_l2_list_buffer_backpressure () =
  (* Saturate the L2 MSHRs + ListBuffer with root releases: with a tiny
     buffer, senders stall measurably. *)
  let module S = Skipit_core.System in
  let module C = Skipit_core.Config in
  let run buffer =
    let params =
      { (C.platform ~cores:1 ()) with
        Skipit_cache.Params.l2_mshrs = 1;
        l2_list_buffer = buffer;
        n_fshrs = 16;
        flush_queue_depth = 16;
      }
    in
    let sys = S.create params in
    let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:64 (16 * 64) in
    for i = 0 to 15 do
      S.store sys ~core:0 (base + (i * 64)) i
    done;
    S.fence sys ~core:0;
    let t0 = S.clock sys ~core:0 in
    for i = 0 to 15 do
      S.flush sys ~core:0 (base + (i * 64))
    done;
    S.fence sys ~core:0;
    S.clock sys ~core:0 - t0
  in
  (* The total work is MSHR-bound either way; a 1-deep buffer must not be
     faster than a 16-deep one, and both complete. *)
  Alcotest.(check bool) "bounded buffer not faster" true (run 1 >= run 16)

let tests =
  ( "admission",
    [
      Alcotest.test_case "pass-through when space" `Quick test_passthrough_when_space;
      Alcotest.test_case "full blocks until departure" `Quick test_full_blocks_until_departure;
      Alcotest.test_case "peek_entry is non-mutating" `Quick test_peek_entry_is_nonmutating;
      Alcotest.test_case "capacity guard" `Quick test_capacity_guard;
      Alcotest.test_case "L2 ListBuffer back-pressure" `Quick test_l2_list_buffer_backpressure;
      QCheck_alcotest.to_alcotest prop_admission_never_early;
    ] )
