module Geometry = Skipit_cache.Geometry
module Store = Skipit_cache.Store

let tiny = Geometry.v ~size_bytes:(4 * 2 * 64) ~ways:2 ~line_bytes:64
(* 4 sets, 2 ways. *)

let addr_for ~set ~tag = Geometry.addr_of tiny ~tag ~index:set

let test_miss_then_hit () =
  let s = Store.create tiny in
  let a = addr_for ~set:1 ~tag:5 in
  Alcotest.(check bool) "initially miss" true (Store.find s a = Store.miss);
  let id = Store.victim s a in
  Store.fill s id ~addr:a ~payload:"x" ~now:0;
  let found = Store.find s a in
  Alcotest.(check bool) "hit" true (found <> Store.miss);
  Alcotest.(check string) "payload" "x" (Store.payload s found);
  Alcotest.(check int) "slot addr" a (Store.slot_addr s id)

let test_lru_victim () =
  let s = Store.create tiny in
  let a = addr_for ~set:0 ~tag:1 and b = addr_for ~set:0 ~tag:2 in
  Store.fill s (Store.victim s a) ~addr:a ~payload:"a" ~now:0;
  Store.fill s (Store.victim s b) ~addr:b ~payload:"b" ~now:1;
  (* Touch [a] so [b] becomes LRU. *)
  Store.touch s (Store.find s a) ~now:5;
  let c = addr_for ~set:0 ~tag:3 in
  let victim = Store.victim s c in
  Alcotest.(check int) "victim is LRU (b)" b (Store.slot_addr s victim)

let test_invalid_way_preferred () =
  let s = Store.create tiny in
  let a = addr_for ~set:2 ~tag:1 in
  Store.fill s (Store.victim s a) ~addr:a ~payload:"a" ~now:0;
  let b = addr_for ~set:2 ~tag:2 in
  let v = Store.victim s b in
  Alcotest.(check bool) "free way chosen before eviction" false (Store.is_valid s v)

let test_invalidate () =
  let s = Store.create tiny in
  let a = addr_for ~set:3 ~tag:7 in
  Store.fill s (Store.victim s a) ~addr:a ~payload:"a" ~now:0;
  Store.invalidate s (Store.find s a);
  Alcotest.(check bool) "gone" true (Store.find s a = Store.miss);
  Alcotest.(check int) "count" 0 (Store.count_valid s)

let test_iter_and_invalidate_all () =
  let s = Store.create tiny in
  let addrs = List.init 6 (fun i -> addr_for ~set:(i mod 4) ~tag:(10 + i)) in
  List.iter (fun a -> Store.fill s (Store.victim s a) ~addr:a ~payload:"p" ~now:0) addrs;
  Alcotest.(check int) "count" 6 (Store.count_valid s);
  let seen = ref [] in
  Store.iter_valid s (fun addr _ -> seen := addr :: !seen);
  Alcotest.(check (list int)) "iter covers all"
    (List.sort compare addrs) (List.sort compare !seen);
  Store.invalidate_all s;
  Alcotest.(check int) "crash clears" 0 (Store.count_valid s)

let test_tag_aliasing () =
  (* Same index, different tags must not alias. *)
  let s = Store.create tiny in
  let a = addr_for ~set:1 ~tag:1 and b = addr_for ~set:1 ~tag:2 in
  Store.fill s (Store.victim s a) ~addr:a ~payload:"a" ~now:0;
  Alcotest.(check bool) "b still misses" true (Store.find s b = Store.miss)

let test_random_replacement () =
  let rng = Skipit_sim.Rng.create ~seed:9 in
  let s = Store.create ~policy:(Store.Random rng) tiny in
  let a = addr_for ~set:0 ~tag:1 and b = addr_for ~set:0 ~tag:2 in
  Store.fill s (Store.victim s a) ~addr:a ~payload:"a" ~now:0;
  Store.fill s (Store.victim s b) ~addr:b ~payload:"b" ~now:1;
  (* The victim is one of the two valid ways, regardless of recency. *)
  let c = addr_for ~set:0 ~tag:3 in
  let seen = Hashtbl.create 4 in
  for _ = 1 to 32 do
    Hashtbl.replace seen (Store.slot_addr s (Store.victim s c)) ()
  done;
  Alcotest.(check bool) "both ways eventually chosen" true (Hashtbl.length seen = 2)

let test_payload_of_invalid_raises () =
  let s = Store.create tiny in
  let a = addr_for ~set:0 ~tag:1 in
  let id = Store.victim s a in
  Alcotest.check_raises "payload of invalid slot" (Invalid_argument "Store.payload: invalid slot")
    (fun () -> ignore (Store.payload s id))

let prop_fill_find =
  QCheck.Test.make ~name:"fill then find returns the slot" ~count:300
    QCheck.(int_range 0 0xFFFF)
  @@ fun line_no ->
  let s = Store.create tiny in
  let addr = line_no * 64 in
  let id = Store.victim s addr in
  Store.fill s id ~addr ~payload:line_no ~now:0;
  let found = Store.find s addr in
  found <> Store.miss && Store.payload s found = line_no && Store.slot_addr s found = addr

let tests =
  ( "store",
    [
      Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
      Alcotest.test_case "LRU victim" `Quick test_lru_victim;
      Alcotest.test_case "invalid way preferred" `Quick test_invalid_way_preferred;
      Alcotest.test_case "invalidate" `Quick test_invalidate;
      Alcotest.test_case "iter + invalidate_all" `Quick test_iter_and_invalidate_all;
      Alcotest.test_case "tag aliasing" `Quick test_tag_aliasing;
      Alcotest.test_case "random replacement" `Quick test_random_replacement;
      Alcotest.test_case "payload of invalid raises" `Quick test_payload_of_invalid_raises;
      QCheck_alcotest.to_alcotest prop_fill_find;
    ] )
