(* The windowed metrics registry and the cycle-accounting attributor:
   histogram bucket boundaries, window rollover, order-insensitive
   occupancy integration, byte-identical exports at any pool width, and
   the cursor-segmentation conservation guarantee (including overshoot
   trimming). *)

module Metrics = Skipit_obs.Metrics
module Attr = Skipit_obs.Attribution
module Engine = Skipit_serve.Engine
module Report = Skipit_serve.Report
module Pool = Skipit_par.Pool

(* == Histogram buckets ================================================== *)

let test_bucket_boundaries () =
  Alcotest.(check int) "0 lands in bucket 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "negatives land in bucket 0" 0 (Metrics.bucket_of (-5));
  Alcotest.(check int) "bucket 0 lower bound" 0 (Metrics.bucket_lo 0);
  for b = 1 to 20 do
    let lo = Metrics.bucket_lo b in
    Alcotest.(check int) (Printf.sprintf "2^%d lower edge" (b - 1)) b (Metrics.bucket_of lo);
    Alcotest.(check int)
      (Printf.sprintf "below bucket %d's lower edge" b)
      (b - 1)
      (Metrics.bucket_of (lo - 1));
    Alcotest.(check int)
      (Printf.sprintf "bucket %d's upper edge" b)
      b
      (Metrics.bucket_of ((2 * lo) - 1))
  done

(* == Window rollover ==================================================== *)

let test_window_rollover () =
  let m = Metrics.create ~window:100 () in
  Alcotest.(check int) "cycle 99 in window 0" 0 (Metrics.widx m ~at:99);
  Alcotest.(check int) "cycle 100 rolls to window 1" 1 (Metrics.widx m ~at:100);
  Metrics.counter_incr m "c" ~at:0;
  Metrics.counter_incr m "c" ~at:99;
  Metrics.counter_incr m "c" ~at:100;
  Metrics.counter_add m "c" ~at:250 3;
  Alcotest.(check (list (pair int int)))
    "counter windows split at the boundary"
    [ 0, 2; 1, 1; 2, 3 ]
    (Metrics.counter_series m "c");
  Alcotest.(check int) "counter total spans windows" 6 (Metrics.counter_total m "c");
  Metrics.occupancy_alloc m "o" ~at:10;
  Metrics.occupancy_alloc m "o" ~at:120;
  Metrics.occupancy_free m "o" ~at:130;
  Metrics.occupancy_free m "o" ~at:310;
  Alcotest.(check (list (pair (pair int int) (pair int int))))
    "occupancy level integrates across windows (gaps carry the level)"
    [ (0, 1), (0, 1); (1, 1), (1, 1); (3, 0), (1, 0) ]
    (List.map (fun (w, a, f, l) -> (w, a), (f, l)) (Metrics.occupancy_series m "o"));
  Metrics.histogram_observe m "h" ~at:50 7;
  Metrics.histogram_observe m "h" ~at:150 8;
  let count, sum = Metrics.histogram_totals m "h" in
  Alcotest.(check (pair int int)) "histogram totals span windows" (2, 15) (count, sum)

let test_occupancy_order_insensitive () =
  (* The level series is integrated at export from per-window deltas, so
     recording order — which varies with fiber interleaving — is
     irrelevant. *)
  let record events =
    let m = Metrics.create ~window:64 () in
    List.iter
      (fun (ev, at) ->
        match ev with
        | `A -> Metrics.occupancy_alloc m "r" ~at
        | `F -> Metrics.occupancy_free m "r" ~at)
      events;
    Metrics.occupancy_series m "r"
  in
  let events = [ `A, 10; `A, 70; `F, 75; `A, 200; `F, 210; `F, 220 ] in
  let shuffled = [ `F, 220; `A, 10; `F, 75; `A, 200; `A, 70; `F, 210 ] in
  Alcotest.(check bool) "series independent of recording order" true
    (record events = record shuffled)

(* == Export determinism across pool widths ============================== *)

let test_exports_byte_identical_across_jobs () =
  let cfg =
    {
      Engine.default with
      Engine.requests = 300;
      clients = 8;
      depth = 8;
      batch = 4;
      key_range = 256;
      prefill = 128;
      telemetry = true;
    }
  in
  let rates = [ 4.; 40. ] in
  let output pool =
    let points = Engine.sweep ?pool cfg ~rates in
    Report.telemetry_json cfg points
    ^ String.concat "\n"
        (List.concat_map
           (fun (p : Engine.point) ->
             match p.Engine.metrics with
             | Some m ->
               [ Metrics.to_prometheus m; Metrics.to_csv m; Metrics.to_json m ]
             | None -> [])
           points)
  in
  let seq = output None in
  let par = Pool.with_pool ~oversubscribe:true ~jobs:4 (fun pool -> output (Some pool)) in
  Alcotest.(check bool) "telemetry exports --jobs 1 vs --jobs 4 byte-identical" true
    (String.equal seq par);
  Alcotest.(check bool) "exports non-empty" true (String.length seq > 0)

(* == Attribution segmentation =========================================== *)

let totals_assoc a = Attr.totals a

let stage_total a stage = List.assoc (Attr.stage_name stage) (totals_assoc a)

let test_attribution_segmentation () =
  let a = Attr.create ~keep_records:true () in
  let fr = Attr.frame ~at:100 in
  Attr.mark_frame fr Attr.L1_hit ~at:150;
  (* A mark at or behind the cursor charges nothing. *)
  Attr.mark_frame fr Attr.Mshr ~at:140;
  Attr.mark_frame fr Attr.Dram ~at:180;
  Alcotest.(check int) "frame total so far" 80 (Attr.frame_total fr);
  Attr.close a fr ~at:200;
  Alcotest.(check int) "l1 cycles" 50 (stage_total a Attr.L1_hit);
  Alcotest.(check int) "behind-cursor mark charged nothing" 0 (stage_total a Attr.Mshr);
  Alcotest.(check int) "dram cycles" 30 (stage_total a Attr.Dram);
  Alcotest.(check int) "residual lands in other" 20 (stage_total a Attr.Other);
  Alcotest.(check int) "one request" 1 (Attr.requests a);
  Alcotest.(check int) "nothing trimmed" 0 (Attr.trimmed a);
  Alcotest.(check bool) "conserved" true (Attr.conserved a);
  (match Attr.records a with
   | [ r ] ->
     Alcotest.(check int) "record total is the span" 100 r.Attr.total;
     Alcotest.(check int) "record cycles sum to the span" 100
       (Array.fold_left ( + ) 0 r.Attr.cycles)
   | rs -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length rs)))

let test_attribution_overshoot_trim () =
  (* A mark later than the close stamp — background work that escaped the
     suspend bracketing — is trimmed back so conservation still holds. *)
  let a = Attr.create ~keep_records:true () in
  let fr = Attr.frame ~at:0 in
  Attr.mark_frame fr Attr.L1_hit ~at:50;
  Attr.mark_frame fr Attr.Dram ~at:120;
  Attr.close a fr ~at:100;
  Alcotest.(check int) "l1 keeps its cycles" 50 (stage_total a Attr.L1_hit);
  Alcotest.(check int) "dram trimmed to the span" 50 (stage_total a Attr.Dram);
  Alcotest.(check int) "trimming close counted" 1 (Attr.trimmed a);
  Alcotest.(check bool) "conserved after trim" true (Attr.conserved a);
  (match Attr.records a with
   | [ r ] ->
     Alcotest.(check int) "trimmed record sums to the span" 100
       (Array.fold_left ( + ) 0 r.Attr.cycles)
   | _ -> Alcotest.fail "expected 1 record")

let test_attribution_sink_binding () =
  (* With no sink installed every ambient hook is a no-op. *)
  Attr.mark Attr.Dram ~at:10;
  Attr.activate ~core:3;
  Alcotest.(check bool) "no sink: disabled" false (Attr.enabled ());
  let _installed = Attr.start ~cores:2 () in
  let fr = Attr.frame ~at:0 in
  Attr.bind ~core:1 (Some fr);
  Attr.mark Attr.L1_hit ~at:10;
  (* Another core's context: no frame bound there, marks vanish. *)
  Attr.activate ~core:0;
  Attr.mark Attr.Dram ~at:30;
  (* Back on core 1 the frame resumes from its own cursor. *)
  Attr.activate ~core:1;
  Attr.mark Attr.Dram ~at:25;
  let saved = Attr.suspend () in
  Attr.mark Attr.Fence ~at:90;
  Attr.restore saved;
  let a = Option.get (Attr.stop ()) in
  Attr.close a fr ~at:40;
  Alcotest.(check int) "core-1 l1 cycles" 10 (stage_total a Attr.L1_hit);
  Alcotest.(check int) "core-1 dram cycles" 15 (stage_total a Attr.Dram);
  Alcotest.(check int) "suspended mark charged nothing" 0 (stage_total a Attr.Fence);
  Alcotest.(check int) "residual" 15 (stage_total a Attr.Other);
  Alcotest.(check bool) "conserved" true (Attr.conserved a)

let tests =
  ( "metrics",
    [
      Alcotest.test_case "histogram bucket boundaries" `Quick test_bucket_boundaries;
      Alcotest.test_case "window rollover" `Quick test_window_rollover;
      Alcotest.test_case "occupancy is order-insensitive" `Quick
        test_occupancy_order_insensitive;
      Alcotest.test_case "exports byte-identical at any width" `Slow
        test_exports_byte_identical_across_jobs;
      Alcotest.test_case "attribution segmentation" `Quick test_attribution_segmentation;
      Alcotest.test_case "attribution trims overshoot" `Quick
        test_attribution_overshoot_trim;
      Alcotest.test_case "attribution sink binding" `Quick test_attribution_sink_binding;
    ] )
