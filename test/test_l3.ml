(* The memory-side L3 (deeper-hierarchy extension): standalone behaviour and
   full-system integration, especially the skip-bit invariant one level
   deeper. *)

module S = Skipit_core.System
module C = Skipit_core.Config
module Params = Skipit_cache.Params
module Memside = Skipit_l2.Memside_cache
module Geometry = Skipit_cache.Geometry
module Dram = Skipit_mem.Dram

let make_l3 ?(geom = Geometry.v ~size_bytes:4096 ~ways:4 ~line_bytes:64) () =
  let dram =
    Dram.create ~channels:2 ~read_latency:8 ~write_latency:6 ~occupancy:2 ~line_bytes:64
  in
  let below = Skipit_l2.Backend.of_dram ~name:"l3.dram" ~beats_per_line:4 dram in
  ( Memside.create ~geom ~access_latency:10 ~banks:2 ~bank_busy:2 ~below ~beats_per_line:4 (),
    dram )

let test_read_caches () =
  let l3, dram = make_l3 () in
  let b = Memside.backend l3 in
  Dram.poke_word dram 0x40 9;
  let data, t1, dirty = Skipit_l2.Backend.read_line b ~addr:0x40 ~now:0 in
  Alcotest.(check int) "value from DRAM" 9 data.(0);
  Alcotest.(check bool) "clean" false dirty;
  Alcotest.(check bool) "first read slow" true (t1 > 10);
  let _, t2, _ = Skipit_l2.Backend.read_line b ~addr:0x40 ~now:1000 in
  Alcotest.(check bool) "second read hits L3" true (t2 - 1000 < t1);
  Alcotest.(check int) "hit counted" 1 (Skipit_sim.Stats.Registry.get (Memside.stats l3) "hits")

let test_writeback_lodges_dirty () =
  let l3, dram = make_l3 () in
  let b = Memside.backend l3 in
  let data = Array.make 8 5 in
  ignore (Skipit_l2.Backend.write_line b ~addr:0x40 ~data ~now:0);
  Alcotest.(check bool) "dirty in L3" true (Memside.dirty l3 0x40);
  Alcotest.(check int) "not yet in DRAM" 0 (Dram.peek_word dram 0x40);
  (* A read now reports dirty-below. *)
  let v, _, dirty = Skipit_l2.Backend.read_line b ~addr:0x40 ~now:10 in
  Alcotest.(check bool) "dirty reported" true dirty;
  Alcotest.(check int) "freshest data" 5 v.(0)

let test_persist_writes_through () =
  let l3, dram = make_l3 () in
  let b = Memside.backend l3 in
  ignore (Skipit_l2.Backend.write_line b ~addr:0x40 ~data:(Array.make 8 5) ~now:0);
  ignore (Skipit_l2.Backend.persist_line b ~addr:0x40 ~data:(Array.make 8 6) ~now:10);
  Alcotest.(check int) "durable" 6 (Dram.peek_word dram 0x40);
  Alcotest.(check bool) "L3 copy clean after" false (Memside.dirty l3 0x40)

let test_persist_if_dirty () =
  let l3, dram = make_l3 () in
  let b = Memside.backend l3 in
  ignore (Skipit_l2.Backend.write_line b ~addr:0x40 ~data:(Array.make 8 7) ~now:0);
  ignore (Skipit_l2.Backend.persist_if_dirty b ~addr:0x40 ~now:5);
  Alcotest.(check int) "pushed" 7 (Dram.peek_word dram 0x40);
  (* Clean or absent lines are no-ops. *)
  let t = Skipit_l2.Backend.persist_if_dirty b ~addr:0x80 ~now:5 in
  Alcotest.(check int) "absent = free" 5 t

let test_eviction_writes_back () =
  (* 4 sets x 4 ways with line 64: fill one set beyond capacity. *)
  let geom = Geometry.v ~size_bytes:(4 * 4 * 64) ~ways:4 ~line_bytes:64 in
  let l3, dram = make_l3 ~geom () in
  let b = Memside.backend l3 in
  let stride = geom.Geometry.sets * 64 in
  for i = 0 to 5 do
    ignore (Skipit_l2.Backend.write_line b ~addr:(i * stride) ~data:(Array.make 8 (i + 1)) ~now:(i * 10))
  done;
  Alcotest.(check bool) "evictions happened" true
    (Skipit_sim.Stats.Registry.get (Memside.stats l3) "evictions" >= 2);
  (* Every value must be recoverable (from L3 or DRAM). *)
  for i = 0 to 5 do
    let v, _, _ = Skipit_l2.Backend.read_line b ~addr:(i * stride) ~now:1000 in
    Alcotest.(check int) "value survives eviction" (i + 1) v.(0)
  done;
  Alcotest.(check bool) "dirty evictions reached DRAM" true (Dram.writes dram >= 2)

let with_l3_platform ?(skip_it = true) () =
  S.create (Params.with_l3 (C.platform ~cores:2 ~skip_it ()))

let line sys = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64

let test_system_flush_through_l3 () =
  let sys = with_l3_platform () in
  let a = line sys in
  S.store sys ~core:0 a 11;
  S.flush sys ~core:0 a;
  S.fence sys ~core:0;
  Alcotest.(check int) "durable through L3" 11 (S.persisted_word sys a);
  match S.check_coherence sys with Ok () -> () | Error e -> Alcotest.fail e

let test_skip_invariant_with_dirty_l3 () =
  (* Line dirty only in the L3 (L2 evicted it); a refetch must grant
     GrantDataDirty so the skip bit stays safe, and a clean must push the
     L3's data to DRAM. *)
  let sys = with_l3_platform () in
  let params = S.params sys in
  let l2_geom = params.Params.l2_geom in
  let sets = l2_geom.Geometry.sets in
  let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:(sets * 64) (sets * 64 * 12) in
  (* Dirty 12 lines aliasing to one L2 set (8 ways): L2 evicts some into
     the L3, where they sit dirty. *)
  for i = 0 to 11 do
    S.store sys ~core:0 (base + (i * sets * 64)) (200 + i)
  done;
  let l3 = Option.get (S.l3 sys) in
  let dirty_in_l3 =
    List.filter
      (fun i ->
        let a = base + (i * sets * 64) in
        Memside.dirty l3 a && not (Skipit_l2.Inclusive_cache.present (S.l2 sys) a))
      (List.init 12 Fun.id)
  in
  Alcotest.(check bool) "some line is dirty only in L3" true (dirty_in_l3 <> []);
  let i = List.hd dirty_in_l3 in
  let a = base + (i * sets * 64) in
  (* Refetch: the L1's skip bit must NOT be set (data is not durable). *)
  ignore (S.load sys ~core:1 a);
  (match Skipit_l1.Dcache.line_state (S.dcache sys 1) a with
   | Some l -> Alcotest.(check bool) "skip unset for dirty-below line" false l.Skipit_l1.Dcache.skip
   | None -> Alcotest.fail "line not installed");
  (match S.check_coherence sys with Ok () -> () | Error e -> Alcotest.fail e);
  (* And a clean must make it durable even though the L2 copy is clean. *)
  S.clean sys ~core:1 a;
  S.fence sys ~core:1;
  Alcotest.(check int) "L3's dirty data persisted" (200 + i) (S.persisted_word sys a)

let test_crash_clears_l3 () =
  let sys = with_l3_platform () in
  let a = line sys in
  S.store sys ~core:0 a 5;
  (* Push the dirty line into the L3 only. *)
  S.inval sys ~core:0 a (* discards — use a writeback instead *);
  S.store sys ~core:0 a 6;
  S.crash sys;
  let l3 = Option.get (S.l3 sys) in
  Alcotest.(check bool) "L3 volatile" false (Memside.present l3 a);
  Alcotest.(check int) "unflushed store lost" 0 (S.persisted_word sys a)

let test_l3_latency_visible () =
  (* A flush is slower through the L3 than straight to DRAM. *)
  let flush_cycles params =
    let sys = S.create params in
    let a = line sys in
    S.store sys ~core:0 a 1;
    let t0 = S.clock sys ~core:0 in
    S.flush sys ~core:0 a;
    S.fence sys ~core:0;
    S.clock sys ~core:0 - t0
  in
  let flat = flush_cycles (C.platform ~cores:1 ()) in
  let deep = flush_cycles (Params.with_l3 (C.platform ~cores:1 ())) in
  Alcotest.(check bool)
    (Printf.sprintf "deeper hierarchy costs more (%d vs %d)" deep flat)
    true (deep > flat)

let tests =
  ( "l3",
    [
      Alcotest.test_case "read caches" `Quick test_read_caches;
      Alcotest.test_case "writeback lodges dirty" `Quick test_writeback_lodges_dirty;
      Alcotest.test_case "persist writes through" `Quick test_persist_writes_through;
      Alcotest.test_case "persist_if_dirty" `Quick test_persist_if_dirty;
      Alcotest.test_case "eviction writes back" `Quick test_eviction_writes_back;
      Alcotest.test_case "system flush through L3" `Quick test_system_flush_through_l3;
      Alcotest.test_case "skip invariant with dirty L3" `Quick test_skip_invariant_with_dirty_l3;
      Alcotest.test_case "crash clears L3" `Quick test_crash_clears_l3;
      Alcotest.test_case "L3 latency visible" `Quick test_l3_latency_visible;
    ] )
