open Skipit_tilelink

let test_beats () =
  Alcotest.(check int) "data = 4 beats on 16B bus"
    4 (Message.beats ~bus_bytes:16 ~line_bytes:64 ~has_data:true);
  Alcotest.(check int) "header = 1 beat"
    1 (Message.beats ~bus_bytes:16 ~line_bytes:64 ~has_data:false);
  Alcotest.(check int) "wider bus, fewer beats"
    2 (Message.beats ~bus_bytes:32 ~line_bytes:64 ~has_data:true)

let test_chan_c_accessors () =
  let data = Array.make 8 0 in
  let cases =
    [
      Message.Probe_ack { addr = 0x40; shrink = Perm.T_to_N }, 0x40, false;
      Message.Probe_ack_data { addr = 0x80; shrink = Perm.T_to_B; data }, 0x80, true;
      Message.Release { addr = 0xc0; shrink = Perm.B_to_N }, 0xc0, false;
      Message.Release_data { addr = 0x100; shrink = Perm.T_to_N; data }, 0x100, true;
      Message.Root_release { addr = 0x140; kind = Message.Wb_flush; data = Some data }, 0x140, true;
      Message.Root_release { addr = 0x180; kind = Message.Wb_clean; data = None }, 0x180, false;
    ]
  in
  List.iter
    (fun (msg, addr, has_data) ->
      Alcotest.(check int) "addr" addr (Message.chan_c_addr msg);
      Alcotest.(check bool) "has_data" has_data (Message.chan_c_has_data msg))
    cases

let test_pp_encodings () =
  (* The paper's encodings (§5.1/§6) surface in the printed forms. *)
  let s =
    Format.asprintf "%a" Message.pp_chan_c
      (Message.Root_release { addr = 0x40; kind = Message.Wb_flush; data = None })
  in
  Alcotest.(check string) "RootReleaseFlush" "RootReleaseFLUSH(0x40)" s;
  let s =
    Format.asprintf "%a" Message.pp_chan_d
      (Message.Grant_data { addr = 0x40; perm = Perm.Trunk; dirty = true; data = [||] })
  in
  Alcotest.(check string) "GrantDataDirty" "GrantDataDirty(0x40, T)" s;
  let s =
    Format.asprintf "%a" Message.pp_chan_d (Message.Root_release_ack { addr = 0x80 })
  in
  Alcotest.(check string) "RootReleaseAck" "RootReleaseAck(0x80)" s

let tests =
  ( "message",
    [
      Alcotest.test_case "beat counts" `Quick test_beats;
      Alcotest.test_case "channel C accessors" `Quick test_chan_c_accessors;
      Alcotest.test_case "paper encodings printable" `Quick test_pp_encodings;
    ] )
