module Sample = Skipit_sim.Stats.Sample
module Counter = Skipit_sim.Stats.Counter
module Registry = Skipit_sim.Stats.Registry

let of_list xs =
  let s = Sample.create () in
  List.iter (Sample.add s) xs;
  s

let test_median_odd () =
  Alcotest.(check (float 1e-9)) "median of odd count" 3. (Sample.median (of_list [ 5.; 1.; 3. ]))

let test_median_even () =
  Alcotest.(check (float 1e-9)) "median of even count" 2.5
    (Sample.median (of_list [ 1.; 2.; 3.; 4. ]))

let test_percentiles () =
  let s = of_list (List.init 101 float_of_int) in
  Alcotest.(check (float 1e-9)) "p0" 0. (Sample.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100" 100. (Sample.percentile s 100.);
  Alcotest.(check (float 1e-9)) "p90" 90. (Sample.percentile s 90.)

let test_mean_stddev () =
  let s = of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check (float 1e-9)) "mean" 5. (Sample.mean s);
  Alcotest.(check (float 1e-9)) "population stddev" 2. (Sample.stddev s)

let test_empty_raises () =
  Alcotest.check_raises "median of empty" (Invalid_argument "Sample.percentile: empty")
    (fun () -> ignore (Sample.median (Sample.create ())));
  ignore (Alcotest.(check bool) "empty" true (Sample.is_empty (Sample.create ())))

let test_sorted_cache_invalidated () =
  (* percentile/median share a lazily built sorted view; an add must
     invalidate it or later queries see stale order statistics. *)
  let s = of_list [ 10.; 20.; 30. ] in
  Alcotest.(check (float 1e-9)) "median before add" 20. (Sample.median s);
  Sample.add s 1.;
  Sample.add s 2.;
  Alcotest.(check (float 1e-9)) "median sees new elements" 10. (Sample.median s);
  Alcotest.(check (float 1e-9)) "p0 sees new minimum" 1. (Sample.percentile s 0.);
  (* Repeated queries without adds stay consistent (served from the cache). *)
  Alcotest.(check (float 1e-9)) "repeat query stable" 10. (Sample.median s)

let test_growth () =
  let s = Sample.create () in
  for i = 1 to 1000 do
    Sample.add_int s i
  done;
  Alcotest.(check int) "count" 1000 (Sample.count s);
  Alcotest.(check (float 1e-9)) "min" 1. (Sample.min s);
  Alcotest.(check (float 1e-9)) "max" 1000. (Sample.max s);
  Alcotest.(check (float 1e-9)) "total" 500500. (Sample.total s)

let test_percentile_edges () =
  (* Documented boundary behaviour: a single element answers every p; p=0 and
     p=100 are the exact min/max (no interpolation rounding); out-of-range or
     NaN p raises. *)
  let one = of_list [ 42. ] in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "singleton p%g" p)
        42. (Sample.percentile one p))
    [ 0.; 37.2; 50.; 99.; 100. ];
  let s = of_list [ 3.; 1.; 2.; 2.; 5. ] in
  Alcotest.(check (float 1e-9)) "p0 is min" 1. (Sample.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100 is max" 5. (Sample.percentile s 100.);
  Alcotest.check_raises "p < 0" (Invalid_argument "Sample.percentile: p out of range")
    (fun () -> ignore (Sample.percentile s (-1.)));
  Alcotest.check_raises "p > 100" (Invalid_argument "Sample.percentile: p out of range")
    (fun () -> ignore (Sample.percentile s 100.5));
  Alcotest.check_raises "p nan" (Invalid_argument "Sample.percentile: p out of range")
    (fun () -> ignore (Sample.percentile s Float.nan));
  Alcotest.check_raises "empty" (Invalid_argument "Sample.percentile: empty")
    (fun () -> ignore (Sample.percentile (Sample.create ()) 50.))

(* Independent reference: sort a copy and linearly interpolate at rank
   p/100 * (n-1).  The production implementation must agree on every input. *)
let naive_percentile xs p =
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  if p <= 0. then arr.(0)
  else if p >= 100. then arr.(n - 1)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
  end

let prop_percentile_matches_reference =
  QCheck.Test.make ~name:"percentile agrees with naive sorted-array reference"
    ~count:500
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 80) (float_range (-1e6) 1e6))
        (float_range 0. 100.))
  @@ fun (xs, p) ->
  let got = Sample.percentile (of_list xs) p in
  let want = naive_percentile xs p in
  Float.abs (got -. want) <= 1e-6 *. Float.max 1. (Float.abs want)

let prop_median_bounded =
  QCheck.Test.make ~name:"median within [min,max]" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) (float_range (-1e6) 1e6))
  @@ fun xs ->
  let s = of_list xs in
  let m = Sample.median s in
  m >= Sample.min s && m <= Sample.max s

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:300
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 60) (float_range (-1e6) 1e6))
        (pair (float_range 0. 100.) (float_range 0. 100.)))
  @@ fun (xs, (p1, p2)) ->
  let s = of_list xs in
  let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
  Sample.percentile s lo <= Sample.percentile s hi +. 1e-9

let test_counter () =
  let c = Counter.create () in
  Counter.incr c;
  Counter.add c 5;
  Alcotest.(check int) "count" 6 (Counter.get c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.get c)

let test_registry () =
  let r = Registry.create () in
  Registry.incr r "hits";
  Registry.add r "hits" 2;
  Registry.incr r "misses";
  Alcotest.(check int) "hits" 3 (Registry.get r "hits");
  Alcotest.(check int) "untouched" 0 (Registry.get r "nacks");
  Alcotest.(check (list (pair string int))) "to_list sorted"
    [ "hits", 3; "misses", 1 ]
    (Registry.to_list r);
  Registry.reset_all r;
  Alcotest.(check int) "reset all" 0 (Registry.get r "hits")

let tests =
  ( "stats",
    [
      Alcotest.test_case "median odd" `Quick test_median_odd;
      Alcotest.test_case "median even" `Quick test_median_even;
      Alcotest.test_case "percentiles" `Quick test_percentiles;
      Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
      Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges;
      Alcotest.test_case "empty raises" `Quick test_empty_raises;
      Alcotest.test_case "sorted cache invalidated" `Quick test_sorted_cache_invalidated;
      Alcotest.test_case "growth to 1000" `Quick test_growth;
      Alcotest.test_case "counter" `Quick test_counter;
      Alcotest.test_case "registry" `Quick test_registry;
      QCheck_alcotest.to_alcotest prop_percentile_matches_reference;
      QCheck_alcotest.to_alcotest prop_median_bounded;
      QCheck_alcotest.to_alcotest prop_percentile_monotone;
    ] )
