(* The sharded serving fleet: consistent-hash ring properties, healthy and
   crash-driven runs against the fleet-wide durable-linearizability oracle,
   graceful degradation when every replica of a range is down, request
   conservation at every checkpoint, byte-identical sweeps at any pool
   width under an active fault schedule, and the reproducer/shrink
   round-trip for an injected durability failure. *)

module Fleet = Skipit_fleet.Fleet
module Ring = Skipit_fleet.Ring
module Arrival = Skipit_serve.Arrival
module Pool = Skipit_par.Pool

(* == Ring ============================================================== *)

let test_ring_properties () =
  let t = Ring.create ~shards:5 ~vnodes:16 ~seed:11 in
  Alcotest.(check int) "shards" 5 (Ring.shards t);
  for key = 1 to 500 do
    let r3 = Ring.replicas t ~key ~k:3 in
    Alcotest.(check int) "k distinct shards" 3 (List.length (List.sort_uniq compare r3));
    List.iter
      (fun s -> Alcotest.(check bool) "shard in range" true (s >= 0 && s < 5))
      r3;
    (* replica lists are prefix-consistent: k=1 is the head of k=3 *)
    Alcotest.(check int) "owner is primary" (Ring.owner t ~key) (List.hd r3);
    (* k capped at shard count *)
    Alcotest.(check int) "k capped" 5 (List.length (Ring.replicas t ~key ~k:9))
  done;
  (* Same parameters, same ring; placement is a pure function. *)
  let t' = Ring.create ~shards:5 ~vnodes:16 ~seed:11 in
  for key = 1 to 200 do
    Alcotest.(check (list int))
      "ring deterministic" (Ring.replicas t ~key ~k:2) (Ring.replicas t' ~key ~k:2)
  done

let test_ring_balance () =
  (* Virtual nodes keep primary ownership within a loose band — no shard
     owns almost everything or almost nothing. *)
  let shards = 4 in
  let t = Ring.create ~shards ~vnodes:64 ~seed:3 in
  let counts = Array.make shards 0 in
  let keys = 4000 in
  for key = 1 to keys do
    let o = Ring.owner t ~key in
    counts.(o) <- counts.(o) + 1
  done;
  let ideal = keys / shards in
  Array.iteri
    (fun s c ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d ownership %d within 3x band of %d" s c ideal)
        true
        (c > ideal / 3 && c < ideal * 3))
    counts

(* == Healthy and crashing runs ========================================= *)

let quick_cfg =
  {
    Fleet.default with
    Fleet.clients = 512;
    requests = 600;
    key_range = 512;
    prefill = 256;
  }

let test_healthy_run () =
  let p = Fleet.run quick_cfg ~rate:16. in
  Alcotest.(check (list string)) "no violations" [] p.Fleet.violations;
  Alcotest.(check int) "all requests accounted" p.Fleet.n
    (p.Fleet.served + p.Fleet.shed);
  Alcotest.(check int) "no crashes" 0 p.Fleet.crashes;
  Alcotest.(check int) "no leaked slots" 0 p.Fleet.leaked;
  Alcotest.(check bool) "served most of the load" true
    (p.Fleet.served > (9 * p.Fleet.n) / 10);
  Alcotest.(check bool) "latency recorded" true (p.Fleet.latency <> None)

let test_kill_run_passes_oracle () =
  (* One seeded mid-run kill: the fleet must fail over, repair, replay
     hints, and still satisfy the durable-linearizability oracle — with
     every request either served or shed (zero hangs, by construction of
     the checkpoint accounting). *)
  let cfg = { quick_cfg with Fleet.faults = Fleet.Seeded 1 } in
  let p = Fleet.run cfg ~rate:16. in
  Alcotest.(check (list string)) "no violations" [] p.Fleet.violations;
  Alcotest.(check int) "one crash" 1 p.Fleet.crashes;
  Alcotest.(check bool) "crash was detected and repaired" true (p.Fleet.repairs >= 1);
  Alcotest.(check bool) "reads failed over" true (p.Fleet.failovers > 0);
  Alcotest.(check bool) "recovery work recorded" true (p.Fleet.recovery_cycles > 0);
  Alcotest.(check int) "all requests accounted" p.Fleet.n
    (p.Fleet.served + p.Fleet.shed);
  Alcotest.(check int) "no leaked slots" 0 p.Fleet.leaked;
  Alcotest.(check bool) "conservation checked at every fleet event" true
    (p.Fleet.checkpoints >= 4);
  (* every shard is live again at quiesce *)
  Array.iter
    (fun (s : Fleet.shard_stat) ->
      Alcotest.(check string)
        (Printf.sprintf "shard %d live at quiesce" s.Fleet.s_id)
        "live" s.Fleet.s_state)
    p.Fleet.shards

let test_unreplicated_kill_degrades_gracefully () =
  (* replicas=1 and a kill: writes to the dead shard's ranges retry with
     backoff and are eventually shed, never parked — and the run still
     verifies (shed writes that touched a structure get crash amnesty). *)
  let cfg =
    {
      quick_cfg with
      Fleet.shards = 2;
      replicas = 1;
      faults = Fleet.Seeded 1;
      retry_max = 2;
    }
  in
  let p = Fleet.run cfg ~rate:16. in
  Alcotest.(check (list string)) "no violations" [] p.Fleet.violations;
  Alcotest.(check int) "all requests accounted" p.Fleet.n
    (p.Fleet.served + p.Fleet.shed);
  Alcotest.(check bool) "load was shed while down" true (p.Fleet.shed > 0);
  Alcotest.(check bool) "writes retried with backoff" true (p.Fleet.retries > 0)

let test_replication_reduces_shed () =
  (* The EXPERIMENTS.md observation, as an inequality: under the same kill
     schedule, K=2 sheds strictly less than K=1 and serves strictly more. *)
  let run k =
    Fleet.run
      { quick_cfg with Fleet.shards = 4; replicas = k; faults = Fleet.Seeded 1 }
      ~rate:16.
  in
  let p1 = run 1 and p2 = run 2 in
  Alcotest.(check (list string)) "K=1 verifies" [] p1.Fleet.violations;
  Alcotest.(check (list string)) "K=2 verifies" [] p2.Fleet.violations;
  Alcotest.(check bool)
    (Printf.sprintf "K=2 sheds no more than K=1 (%d vs %d)" p2.Fleet.shed p1.Fleet.shed)
    true
    (p2.Fleet.shed <= p1.Fleet.shed);
  Alcotest.(check bool) "K=1 sheds under the kill" true (p1.Fleet.shed > 0)

(* == Determinism ======================================================= *)

let test_sweep_deterministic_under_faults () =
  (* The whole point list — achieved, latencies, failovers, recovery —
     must be identical serial vs an oversubscribed pool, under an active
     fault schedule. *)
  let cfg = { quick_cfg with Fleet.clients = 2048; faults = Fleet.Seeded 2 } in
  let rates = [ 8.; 16. ] in
  let serial = Fleet.sweep cfg ~rates in
  let pool = Pool.create ~jobs:8 ~oversubscribe:true () in
  let parallel =
    Fun.protect ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Fleet.sweep ~pool cfg ~rates)
  in
  Alcotest.(check bool) "sweep identical at any width" true (serial = parallel);
  (* and a re-run from scratch is bit-identical too *)
  Alcotest.(check bool) "re-run identical" true (serial = Fleet.sweep cfg ~rates)

(* == Injected failure, reproducer, shrink ============================== *)

let failing_cfg =
  (* Shard 0 silently drops every persist after setup; an explicit kill
     lands on it mid-run, so committed-then-crashed writes are acked but
     lost — the oracle must catch the divergence. *)
  {
    quick_cfg with
    Fleet.shards = 3;
    replicas = 2;
    requests = 400;
    update_pct = 30;
    faults = Fleet.Kill [ { Fleet.at = 9000; shard = 0 } ];
    drop_persists = Some 0;
  }

let test_injected_durability_failure_is_caught () =
  let p = Fleet.run failing_cfg ~rate:16. in
  Alcotest.(check bool) "violations reported" true (p.Fleet.violations <> []);
  let contains_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "durability rule named" true
    (List.exists (fun v -> contains_sub v "fleet-durability") p.Fleet.violations)

let test_shrink_and_reproducer_roundtrip () =
  let small, sp = Fleet.shrink failing_cfg ~rate:16. in
  Alcotest.(check bool) "shrunk config still fails" true (sp.Fleet.violations <> []);
  Alcotest.(check bool) "shrunk below the original" true
    (small.Fleet.requests < failing_cfg.Fleet.requests);
  let path = Filename.temp_file "fleet_repro" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
    Fleet.write_reproducer path small ~rate:16.;
    match Fleet.read_reproducer path with
    | Error e -> Alcotest.fail e
    | Ok (cfg', rate') ->
      Alcotest.(check bool) "config round-trips" true (cfg' = small);
      Alcotest.(check (float 0.)) "rate round-trips" 16. rate';
      (* replaying the reproducer reproduces the violation, bit-for-bit *)
      let p' = Fleet.run cfg' ~rate:rate' in
      Alcotest.(check (list string))
        "replay reproduces the exact violations" sp.Fleet.violations
        p'.Fleet.violations)

let test_fault_schedule_names () =
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Fleet.fault_schedule_name f ^ " round-trips")
        true
        (Fleet.fault_schedule_of_name (Fleet.fault_schedule_name f) = Some f))
    [
      Fleet.No_faults;
      Fleet.Seeded 3;
      Fleet.Kill [ { Fleet.at = 9000; shard = 0 } ];
      Fleet.Kill [ { Fleet.at = 100; shard = 2 }; { Fleet.at = 900; shard = 1 } ];
    ];
  Alcotest.(check bool) "garbage rejected" true
    (Fleet.fault_schedule_of_name "12:" = None);
  Alcotest.(check bool) "negative rejected" true
    (Fleet.fault_schedule_of_name "rand:0" = None)

let test_validate () =
  let bad cfg msg =
    match Fleet.validate cfg with
    | Error _ -> ()
    | Ok () -> Alcotest.fail ("validate accepted " ^ msg)
  in
  bad { Fleet.default with Fleet.replicas = 5 } "replicas > shards";
  bad { Fleet.default with Fleet.shards = 0 } "zero shards";
  bad
    { Fleet.default with Fleet.spec = Skipit_workload.Ds_bench.Baseline;
      faults = Fleet.Seeded 1 }
    "non-persistent baseline under faults";
  bad { Fleet.default with Fleet.drop_persists = Some 7 } "drop_persists out of range";
  bad
    { Fleet.default with Fleet.faults = Fleet.Kill [ { Fleet.at = 1; shard = 9 } ] }
    "fault on unknown shard";
  match Fleet.validate Fleet.default with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("default config rejected: " ^ e)

let tests =
  ( "fleet",
    [
      Alcotest.test_case "ring: replica sets well-formed + deterministic" `Quick
        test_ring_properties;
      Alcotest.test_case "ring: vnode ownership balance" `Quick test_ring_balance;
      Alcotest.test_case "healthy run verifies" `Quick test_healthy_run;
      Alcotest.test_case "mid-run kill: failover + repair + oracle" `Quick
        test_kill_run_passes_oracle;
      Alcotest.test_case "replicas=1 kill: retry, backoff, shed — no hang" `Quick
        test_unreplicated_kill_degrades_gracefully;
      Alcotest.test_case "replication reduces shed under a kill" `Quick
        test_replication_reduces_shed;
      Alcotest.test_case "sweep byte-identical at any width under faults" `Quick
        test_sweep_deterministic_under_faults;
      Alcotest.test_case "injected drop-persists failure is caught" `Quick
        test_injected_durability_failure_is_caught;
      Alcotest.test_case "shrink + reproducer round-trip" `Quick
        test_shrink_and_reproducer_roundtrip;
      Alcotest.test_case "fault schedule names round-trip" `Quick
        test_fault_schedule_names;
      Alcotest.test_case "config validation" `Quick test_validate;
    ] )
