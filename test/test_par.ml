(* The parallel experiment engine: pool mechanics, domain isolation of the
   trace sink, and the determinism contract — experiment output at any pool
   width is byte-identical to the sequential run. *)

module Pool = Skipit_par.Pool
module Figures = Skipit_workload.Figures
module Ablation = Skipit_workload.Ablation
module Micro = Skipit_workload.Micro
module Series = Skipit_workload.Series
module Trace = Skipit_obs.Trace
module S = Skipit_core.System
module C = Skipit_core.Config
module TP = Skipit_workload.Trace_program

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_open_vbox ppf 0;
  f ppf;
  Format.pp_close_box ppf ();
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* == Pool mechanics ===================================================== *)

let test_map_order () =
  Pool.with_pool ~oversubscribe:true ~jobs:4 (fun pool ->
    let xs = List.init 100 Fun.id in
    Alcotest.(check (list int))
      "results in submission order"
      (List.map (fun x -> x * x) xs)
      (Pool.map pool (fun x -> x * x) xs))

let test_map_empty_and_width () =
  Pool.with_pool ~oversubscribe:true ~jobs:3 (fun pool ->
    Alcotest.(check int) "width" 3 (Pool.width pool);
    Alcotest.(check (list int)) "empty" [] (Pool.map pool Fun.id []));
  Pool.with_pool ~oversubscribe:true ~jobs:1 (fun pool ->
    Alcotest.(check (list int)) "width 1 runs inline" [ 1; 2 ] (Pool.map pool Fun.id [ 1; 2 ]))

exception Boom of int

let test_exception_propagates () =
  Pool.with_pool ~oversubscribe:true ~jobs:2 (fun pool ->
    Alcotest.check_raises "job exception re-raised" (Boom 3) (fun () ->
      ignore (Pool.map pool (fun x -> if x = 3 then raise (Boom 3) else x) [ 1; 2; 3; 4 ])))

let test_nested_map_runs_inline () =
  (* A job that maps on its own pool must not deadlock waiting for a worker
     slot it occupies itself. *)
  Pool.with_pool ~oversubscribe:true ~jobs:2 (fun pool ->
    let r =
      Pool.map pool
        (fun x -> List.fold_left ( + ) 0 (Pool.map pool (fun y -> x * y) [ 1; 2; 3 ]))
        [ 1; 2 ]
    in
    Alcotest.(check (list int)) "nested map" [ 6; 12 ] r)

let test_pool_reuse () =
  (* The same pool serves several batches (the CLI reuses one pool across
     every figure of a run). *)
  Pool.with_pool ~oversubscribe:true ~jobs:2 (fun pool ->
    for i = 1 to 5 do
      Alcotest.(check (list int))
        (Printf.sprintf "batch %d" i)
        (List.init 10 (fun x -> x + i))
        (Pool.map pool (fun x -> x + i) (List.init 10 Fun.id))
    done)

(* == Domain isolation of the trace sink ================================= *)

let test_trace_sink_is_domain_local () =
  (* Jobs tracing on pool domains never touch the caller's sink. *)
  Alcotest.(check bool) "main sink off" false (Trace.enabled ());
  Pool.with_pool ~oversubscribe:true ~jobs:2 (fun pool ->
    let lengths =
      Pool.map pool
        (fun i ->
          let (), tr =
            Trace.with_trace (fun () ->
              for at = 0 to i do
                Trace.emit ~at (Trace.Meta { track = "t"; note = "n" })
              done)
          in
          Trace.length tr)
        [ 4; 9 ]
    in
    Alcotest.(check (list int)) "each job saw only its own events" [ 5; 10 ] lengths);
  Alcotest.(check bool) "main sink still off" false (Trace.enabled ())

(* == Determinism of the experiment drivers ============================== *)

let figure_output ?deque_cap name ~jobs =
  match Figures.by_name name with
  | None -> Alcotest.failf "unknown figure %s" name
  | Some f ->
    if jobs = 1 then render (fun ppf -> f ~quick:true ppf)
    else
      Pool.with_pool ~oversubscribe:true ?deque_cap ~jobs (fun pool ->
        render (fun ppf -> f ~quick:true ~pool ppf))

let test_figures_deterministic () =
  List.iter
    (fun name ->
      let seq = figure_output name ~jobs:1 in
      let par = figure_output name ~jobs:4 in
      Alcotest.(check bool)
        (Printf.sprintf "%s --jobs 1 vs --jobs 4 byte-identical" name)
        true
        (String.equal seq par);
      Alcotest.(check bool) (name ^ " non-empty") true (String.length seq > 0))
    [ "scalar"; "fig9"; "fig13"; "fig15" ]

let test_steal_path_deterministic () =
  (* Byte-identical output across widths even when every worker's local
     deque holds at most one chunk (~deque_cap:1), so nearly all work moves
     by stealing from other domains — the reduction must reassemble results
     in submission order no matter which domain ran which chunk. *)
  List.iter
    (fun name ->
      let seq = figure_output name ~jobs:1 in
      List.iter
        (fun jobs ->
          let par = figure_output ~deque_cap:1 name ~jobs in
          Alcotest.(check bool)
            (Printf.sprintf "%s --jobs %d with forced steals byte-identical" name jobs)
            true
            (String.equal seq par))
        [ 2; 8 ])
    [ "fig9"; "fig13" ]

let test_ablation_deterministic () =
  let section pool = render (fun ppf ->
    Series.pp_table ~x_name:"bytes" ppf (Ablation.skip_decomposition ?pool ()))
  in
  let seq = section None in
  let par = Pool.with_pool ~oversubscribe:true ~jobs:4 (fun pool -> section (Some pool)) in
  Alcotest.(check bool) "skip decomposition identical under pool" true (String.equal seq par)

let test_prepared_split () =
  (* run_prepared must route each experiment's slice of the flat result
     list back to its own reducer. *)
  let prep label xs = { Micro.jobs = List.map (fun x () -> x) xs; reduce = (fun ys -> label, ys) } in
  let r =
    Pool.with_pool ~oversubscribe:true ~jobs:3 (fun pool ->
      Micro.run_prepared ~pool [ prep "a" [ 1.; 2. ]; prep "b" [ 3. ]; prep "c" [] ])
  in
  Alcotest.(check (list (pair string (list (float 0.)))))
    "slices" [ "a", [ 1.; 2. ]; "b", [ 3. ]; "c", [] ] r

(* == Golden cycle counts re-pinned under the pool ======================= *)

let test_golden_cycles_under_pool () =
  let run name =
    match TP.load_file (Printf.sprintf "../../../examples/traces/%s.trace" name) with
    | Error e -> Alcotest.failf "trace %s: %s" name e
    | Ok program ->
      let cores = TP.max_core program + 1 in
      let sys = S.create (C.platform ~cores ~skip_it:false ()) in
      let cycles, _ = TP.run sys program in
      cycles
  in
  let cycles =
    Pool.with_pool ~oversubscribe:true ~jobs:3 (fun pool ->
      Pool.map pool run [ "producer_consumer"; "redundant_flush"; "fig5_semantics" ])
  in
  Alcotest.(check (list int)) "golden cycles 915/1120/127 under the pool"
    [ 915; 1120; 127 ] cycles

let tests =
  ( "par",
    [
      Alcotest.test_case "map preserves submission order" `Quick test_map_order;
      Alcotest.test_case "width / empty input" `Quick test_map_empty_and_width;
      Alcotest.test_case "job exception propagates" `Quick test_exception_propagates;
      Alcotest.test_case "nested map runs inline" `Quick test_nested_map_runs_inline;
      Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
      Alcotest.test_case "trace sink is domain-local" `Quick test_trace_sink_is_domain_local;
      Alcotest.test_case "figures byte-identical at any width" `Slow test_figures_deterministic;
      Alcotest.test_case "steal path byte-identical (deque_cap 1)" `Slow test_steal_path_deterministic;
      Alcotest.test_case "ablation byte-identical under pool" `Slow test_ablation_deterministic;
      Alcotest.test_case "run_prepared slices results" `Quick test_prepared_split;
      Alcotest.test_case "golden cycles under the pool" `Quick test_golden_cycles_under_pool;
    ] )
