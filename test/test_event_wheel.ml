(* The calendar event wheel against a naive sorted-list model.

   The wheel's contract (see event_wheel.mli): an inserted entry fires via
   [advance ~now] exactly once, as soon as the high-water mark of the nows
   seen so far reaches its due cycle — including entries inserted with
   [due <= now] after the wheel has already advanced past them (the
   overdue lane), and entries cancelled before firing never fire.  Within
   one [advance], same-cycle firing order is unspecified, so the oracle
   comparison is on sorted (due, payload) multisets. *)

module Wheel = Skipit_sim.Event_wheel

(* Naive model: a list of (due, payload, cancelled ref); [advance ~now]
   fires every non-cancelled entry with due <= high-water mark. *)
type model = { mutable entries : (int * int * bool ref) list; mutable hw : int }

let model_create () = { entries = []; hw = -1 }

let model_insert m ~at payload =
  let c = ref false in
  m.entries <- (at, payload, c) :: m.entries;
  c

let model_advance m ~now =
  if now > m.hw then m.hw <- now;
  let fired, rest =
    List.partition (fun (due, _, c) -> (not !c) && due <= m.hw) m.entries
  in
  m.entries <- List.filter (fun (_, _, c) -> not !c) rest;
  List.map (fun (due, p, _) -> due, p) fired

(* A random interleaving of inserts, cancels and advances. *)
type op = Insert of int (* due offset, possibly behind now *) | Cancel of int | Advance of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun d -> Insert d) (int_range (-8) 40));
        (1, map (fun i -> Cancel i) (int_range 0 30));
        (2, map (fun d -> Advance d) (int_range 0 12));
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Insert d -> Printf.sprintf "I%d" d
             | Cancel i -> Printf.sprintf "C%d" i
             | Advance d -> Printf.sprintf "A%d" d)
           ops))
    QCheck.Gen.(list_size (int_range 1 120) op_gen)

let sorted l = List.sort compare l

let run_script ~slots ops =
  let w = Wheel.create ~slots () in
  let m = model_create () in
  let now = ref 0 in
  let wheel_fired = ref [] in
  let live_wheel = ref [] in
  (* insertion-order ids *)
  let live_model = ref [] in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | Insert d ->
        let due = max 0 (!now + d) in
        let payload = (due * 1000) + List.length !live_wheel in
        let node = Wheel.insert w ~at:due payload in
        let cancel = model_insert m ~at:due payload in
        live_wheel := (node, payload) :: !live_wheel;
        live_model := (cancel, payload) :: !live_model
      | Cancel i ->
        let n = List.length !live_wheel in
        if n > 0 then begin
          let j = i mod n in
          let node, _ = List.nth !live_wheel j in
          let cancel, _ = List.nth !live_model j in
          Wheel.cancel w node;
          cancel := true
        end
      | Advance d ->
        (* [at] trails the task counter [now] by an accumulating d/3 slack,
           so later inserts land both ahead of and behind the wheel's
           high-water mark — the latter exercising the overdue lane. *)
        let at = !now + d - (d / 3) in
        now := max !now (!now + d);
        Wheel.advance w ~now:at (fun p -> wheel_fired := p :: !wheel_fired);
        let fired_model = model_advance m ~now:at in
        let fired_wheel = !wheel_fired in
        wheel_fired := [];
        let fw = sorted (List.map (fun p -> p / 1000, p) fired_wheel) in
        let fm = sorted fired_model in
        if fw <> fm then ok := false)
    ops;
  (* Drain: everything still pending fires by max_int-ish horizon. *)
  Wheel.advance w ~now:(1 lsl 30) (fun p -> wheel_fired := p :: !wheel_fired);
  let fm = sorted (model_advance m ~now:(1 lsl 30)) in
  let fw = sorted (List.map (fun p -> p / 1000, p) !wheel_fired) in
  !ok && fw = fm

let prop_wheel_matches_model =
  QCheck.Test.make ~name:"event wheel matches sorted-list model" ~count:500 ops_arb
    (fun ops -> run_script ~slots:8 ops)

let prop_wheel_matches_model_wide =
  QCheck.Test.make ~name:"event wheel matches model (256 slots)" ~count:200 ops_arb
    (fun ops -> run_script ~slots:256 ops)

(* Directed cases for the corners the qcheck script reaches rarely. *)

let test_fire_once_and_order () =
  let w = Wheel.create ~slots:4 () in
  let fired = ref [] in
  ignore (Wheel.insert w ~at:5 'a');
  ignore (Wheel.insert w ~at:3 'b');
  ignore (Wheel.insert w ~at:9 'c');
  Wheel.advance w ~now:4 (fun c -> fired := c :: !fired);
  Alcotest.(check (list char)) "due<=4" [ 'b' ] (List.rev !fired);
  Wheel.advance w ~now:4 (fun c -> fired := c :: !fired);
  Alcotest.(check (list char)) "no refire" [ 'b' ] (List.rev !fired);
  Wheel.advance w ~now:100 (fun c -> fired := c :: !fired);
  Alcotest.(check (list char)) "rest in due order" [ 'b'; 'a'; 'c' ] (List.rev !fired)

let test_overdue_insert_fires () =
  (* Insert behind the high-water mark: fires on the next advance even if
     now does not move. *)
  let w = Wheel.create ~slots:4 () in
  Wheel.advance w ~now:50 (fun _ -> ());
  ignore (Wheel.insert w ~at:10 `Late);
  let fired = ref 0 in
  Wheel.advance w ~now:50 (fun _ -> incr fired);
  Alcotest.(check int) "overdue entry fired" 1 !fired

let test_cancel_suppresses () =
  let w = Wheel.create ~slots:4 () in
  let n1 = Wheel.insert w ~at:7 1 in
  let n2 = Wheel.insert w ~at:7 2 in
  Wheel.cancel w n1;
  Wheel.cancel w n1;
  (* idempotent *)
  let fired = ref [] in
  Wheel.advance w ~now:7 (fun p -> fired := p :: !fired);
  Alcotest.(check (list int)) "only live entry fired" [ 2 ] !fired;
  ignore n2

let test_distant_due_skips () =
  (* A due far past the wheel's span exercises the min-due fast-forward
     (the cursor must not walk 2^20 buckets one by one). *)
  let w = Wheel.create ~slots:4 () in
  ignore (Wheel.insert w ~at:(1 lsl 20) ());
  let fired = ref 0 in
  let t0 = Sys.time () in
  Wheel.advance w ~now:((1 lsl 20) - 1) (fun () -> incr fired);
  Alcotest.(check int) "not yet due" 0 !fired;
  Wheel.advance w ~now:(1 lsl 20) (fun () -> incr fired);
  Alcotest.(check int) "fires at its cycle" 1 !fired;
  Alcotest.(check bool) "advance is O(live), not O(cycles)" true
    (Sys.time () -. t0 < 0.5)

let tests =
  ( "event_wheel",
    [
      Alcotest.test_case "fires once, in due order" `Quick test_fire_once_and_order;
      Alcotest.test_case "overdue insert fires" `Quick test_overdue_insert_fires;
      Alcotest.test_case "cancel suppresses (idempotent)" `Quick test_cancel_suppresses;
      Alcotest.test_case "distant due uses min-due skip" `Quick test_distant_due_skips;
      QCheck_alcotest.to_alcotest prop_wheel_matches_model;
      QCheck_alcotest.to_alcotest prop_wheel_matches_model_wide;
    ] )
