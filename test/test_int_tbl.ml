module Int_tbl = Skipit_sim.Int_tbl

let test_empty () =
  let t = Int_tbl.create () in
  Alcotest.(check int) "length" 0 (Int_tbl.length t);
  Alcotest.(check bool) "mem" false (Int_tbl.mem t 0);
  Alcotest.(check int) "find_default" (-7) (Int_tbl.find_default t 42 ~default:(-7))

let test_replace_overwrites () =
  let t = Int_tbl.create () in
  Int_tbl.replace t 5 10;
  Int_tbl.replace t 5 20;
  Alcotest.(check int) "length counts keys, not writes" 1 (Int_tbl.length t);
  Alcotest.(check int) "latest value wins" 20 (Int_tbl.find_default t 5 ~default:0)

let test_growth_preserves_bindings () =
  (* Start tiny so insertion forces several rehashes. *)
  let t = Int_tbl.create ~size_hint:1 () in
  for k = 0 to 999 do
    Int_tbl.replace t (k * 64) (k * 3)
  done;
  Alcotest.(check int) "length" 1000 (Int_tbl.length t);
  for k = 0 to 999 do
    if Int_tbl.find_default t (k * 64) ~default:(-1) <> k * 3 then
      Alcotest.failf "binding %d lost across growth" k
  done

let test_clear () =
  let t = Int_tbl.create () in
  Int_tbl.replace t 1 1;
  Int_tbl.replace t 2 2;
  Int_tbl.clear t;
  Alcotest.(check int) "length" 0 (Int_tbl.length t);
  Alcotest.(check bool) "mem" false (Int_tbl.mem t 1);
  Int_tbl.replace t 1 9;
  Alcotest.(check int) "usable after clear" 9 (Int_tbl.find_default t 1 ~default:0)

let test_negative_key_rejected () =
  let t = Int_tbl.create () in
  Alcotest.check_raises "negative key"
    (Invalid_argument "Int_tbl.replace: negative key") (fun () ->
      Int_tbl.replace t (-1) 0)

let test_iter () =
  let t = Int_tbl.create () in
  List.iter (fun (k, v) -> Int_tbl.replace t k v) [ 1, 10; 2, 20; 3, 30 ];
  let sum_k = ref 0 and sum_v = ref 0 in
  Int_tbl.iter t (fun k v ->
    sum_k := !sum_k + k;
    sum_v := !sum_v + v);
  Alcotest.(check (pair int int)) "iter visits every binding" (6, 60) (!sum_k, !sum_v)

(* Model-based property: after any sequence of replaces, every lookup agrees
   with a reference Hashtbl.  Keys cluster mod 257 to force probe chains. *)
let prop_matches_hashtbl =
  QCheck.Test.make ~name:"Int_tbl agrees with Hashtbl reference" ~count:200
    QCheck.(
      list_of_size (QCheck.Gen.int_range 0 400)
        (pair (int_range 0 100_000) (int_range (-1000) 1000)))
  @@ fun ops ->
  let t = Int_tbl.create ~size_hint:2 () in
  let ref_tbl = Hashtbl.create 16 in
  List.iter
    (fun (k, v) ->
      let k = (k mod 257) * 64 in
      Int_tbl.replace t k v;
      Hashtbl.replace ref_tbl k v)
    ops;
  Int_tbl.length t = Hashtbl.length ref_tbl
  && Hashtbl.fold
       (fun k v acc ->
         acc && Int_tbl.mem t k && Int_tbl.find_default t k ~default:(v - 1) = v)
       ref_tbl true
  && List.for_all
       (fun (k, _) ->
         let k = ((k + 13) mod 521) * 64 in
         Hashtbl.mem ref_tbl k = Int_tbl.mem t k)
       ops

let tests =
  ( "int_tbl",
    [
      Alcotest.test_case "empty table" `Quick test_empty;
      Alcotest.test_case "replace overwrites" `Quick test_replace_overwrites;
      Alcotest.test_case "growth preserves bindings" `Quick test_growth_preserves_bindings;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "negative key rejected" `Quick test_negative_key_rejected;
      Alcotest.test_case "iter" `Quick test_iter;
      QCheck_alcotest.to_alcotest prop_matches_hashtbl;
    ] )
