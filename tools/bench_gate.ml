(* Perf-regression gate over BENCH_results.json.

   Usage: bench_gate [--min-speedup X] [--max-serial-regress Y]
                     [--allow-missing] BASELINE FRESH [REPORT]

   Compares the committed baseline against a freshly generated file.  Every
   simulated quantity — per-workload cycles, checksums, latency summaries
   (through p99.9), per-stage cycle attribution, and the stats counters —
   is deterministic by construction, so the gate demands exact equality for
   them.  Host-dependent fields (wall_ms, wall_ms_serial, jobs) are ignored
   except for a very generous sanity bound on per-workload wall_ms (10x
   either way, floored at 1 ms, catches only pathological blowups, never
   scheduler noise).

   [--allow-missing] relaxes one direction: a gated key present in the
   fresh run but absent from the baseline is noted, not failed — the
   escape hatch for rolling the schema forward (new telemetry fields)
   against a baseline generated before they existed.  Keys the baseline
   has MUST still match exactly.

   Two optional hard perf gates (the execution-engine-v2 contract):

   - [--min-speedup X]: fail unless the fresh file's "speedup_vs_serial"
     (pinned-baseline serial wall over this run's wall, computed by the
     bench) is at least X.  When the fresh run records "pool_clamped"
     (an oversubscribed --jobs clamped to the host's cores), the floor is
     scaled by pool_width/jobs — the run never had the parallelism the
     floor assumed, and demanding it anyway would gate on host shape.
   - [--max-serial-regress Y]: fail if the fresh "wall_ms_workloads"
     exceeds the baseline file's by more than the fraction Y (0.20 = 20%).
   - [--min-bank-speedup X]: fail unless the fresh "fig9_32k_flush_l2b4"
     workload (the Fig. 9 32 KiB flush point on the 4-bank NUCA L2)
     records an 8-thread speedup of at least X (its "speedup_milli" stat,
     a simulated — hence deterministic — quantity).

   Two fleet robustness gates over the "fleet_kill1" workload (the
   kill-one-shard-at-steady-state row; both quantities are simulated and
   deterministic).  Either gate also fails outright if the row records any
   verification violations or leaked waiting-room slots:

   - [--max-fleet-shed F]: fail if the shed fraction ("shed_milli"/1000)
     exceeds F — losing one of four shards must not shed more than F of
     the offered load.
   - [--min-fleet-achieved X]: fail unless achieved throughput
     ("achieved_milli"/1000, served ops per 1000 cycles) is at least X.

   One skewed-workload gate over the serve rows (both quantities are
   simulated request latencies, class "serve", hence deterministic):

   - [--max-skew-p99-ratio R]: fail if the fresh
     "serve_hash_zipf99_r16_b8" row's serve p99 exceeds R times the fresh
     "serve_hash_r16_b8" (uniform-keys) serve p99 — Zipfian skew
     concentrates writes on hot lines, and this bounds how much tail the
     skew is allowed to cost.  Missing rows or latency classes fail.

   Writes a human-readable diff report to REPORT (default
   bench_gate_report.txt) and exits 1 when any gated field drifts, so CI
   can fail the build and upload the report as an artifact.

   The parser below handles exactly the JSON subset the bench emits:
   objects, arrays, strings with only simple escapes, numbers, booleans,
   null.  No external dependencies. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
  in
  let expect c =
    skip_ws ();
    if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | c -> Buffer.add_char buf c);
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (advance (); Obj [])
      else
        let rec members acc =
          let k = (skip_ws (); parse_string ()) in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((k, v) :: acc)
          | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (advance (); List [])
      else
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements (v :: acc)
          | ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
    | '"' -> Str (parse_string ())
    | 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then (pos := !pos + 4; Bool true)
      else fail "bad literal"
    | 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then (pos := !pos + 5; Bool false)
      else fail "bad literal"
    | 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then (pos := !pos + 4; Null)
      else fail "bad literal"
    | c when c = '-' || (c >= '0' && c <= '9') -> Num (parse_number ())
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* -- accessors --------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None

let rec render = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> if Float.is_integer f then string_of_int (int_of_float f) else string_of_float f
  | Str s -> Printf.sprintf "%S" s
  | List vs -> "[" ^ String.concat ", " (List.map render vs) ^ "]"
  | Obj kvs ->
    "{" ^ String.concat ", " (List.map (fun (k, v) -> k ^ ": " ^ render v) kvs) ^ "}"

(* -- comparison -------------------------------------------------------- *)

let drifts : string list ref = ref []

let notes : string list ref = ref []

let drift fmt = Printf.ksprintf (fun m -> drifts := m :: !drifts) fmt

let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt

(* Exact structural comparison; floats must match to the printed digit
   (both files come from the same printf formats, so real equality). *)
let rec equal_json a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y
  | Str x, Str y -> x = y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal_json xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> k1 = k2 && equal_json v1 v2)
         xs ys
  | _ -> false

let allow_missing = ref false

(* Subset comparison for --allow-missing: every key the baseline has must
   exist in the fresh run and match; keys only the fresh run has (new
   telemetry fields, at any nesting depth) are fine. *)
let rec subset_json b f =
  match b, f with
  | Obj xs, Obj ys ->
    List.for_all
      (fun (k, v) ->
        match List.assoc_opt k ys with Some w -> subset_json v w | None -> false)
      xs
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 subset_json xs ys
  | _ -> equal_json b f

let compare_exact ~where key base fresh =
  match base, fresh with
  | None, None -> ()
  | Some b, None -> drift "%s: %s missing from fresh run (baseline %s)" where key (render b)
  | None, Some f ->
    if !allow_missing then
      note "%s: %s new in fresh run (%s), absent from baseline (--allow-missing)" where
        key (render f)
    else drift "%s: %s appeared in fresh run (%s), absent from baseline" where key (render f)
  | Some b, Some f ->
    let same = if !allow_missing then subset_json b f else equal_json b f in
    if not same then
      drift "%s: %s drifted: baseline %s, fresh %s" where key (render b) (render f)

let compare_wall ~where base fresh =
  match base, fresh with
  | Some b, Some f when b > 0. ->
    let lo = Float.max 1. (b /. 10.) and hi = Float.max 10. (b *. 10.) in
    if f > hi || (f < lo && b >= 10.) then
      note "%s: wall_ms %.2f vs baseline %.2f (outside 10x band; informational)" where f b
  | _ -> ()

let compare_workload name base fresh =
  let where = "workload " ^ name in
  List.iter
    (fun key -> compare_exact ~where key (member key base) (member key fresh))
    [ "cycles"; "checksums"; "latency"; "attribution"; "stats" ];
  compare_wall ~where
    (Option.bind (member "wall_ms" base) to_num)
    (Option.bind (member "wall_ms" fresh) to_num)

let workloads j =
  match member "workloads" j with
  | Some (List ws) ->
    List.filter_map
      (fun w -> Option.map (fun n -> n, w) (Option.bind (member "name" w) to_str))
      ws
  | _ -> []

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let usage () =
  prerr_endline
    "usage: bench_gate [--min-speedup X] [--max-serial-regress Y] \
     [--min-bank-speedup X] [--max-fleet-shed F] [--min-fleet-achieved X] \
     [--max-skew-p99-ratio R] [--allow-missing] BASELINE FRESH [REPORT]";
  exit 2

let () =
  let min_speedup = ref None and max_serial_regress = ref None in
  let min_bank_speedup = ref None in
  let max_fleet_shed = ref None and min_fleet_achieved = ref None in
  let max_skew_p99_ratio = ref None in
  let positional = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--min-speedup" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f -> min_speedup := Some f; parse_args rest
      | None -> usage ())
    | "--max-serial-regress" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f -> max_serial_regress := Some f; parse_args rest
      | None -> usage ())
    | "--min-bank-speedup" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f -> min_bank_speedup := Some f; parse_args rest
      | None -> usage ())
    | "--max-fleet-shed" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f -> max_fleet_shed := Some f; parse_args rest
      | None -> usage ())
    | "--min-fleet-achieved" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f -> min_fleet_achieved := Some f; parse_args rest
      | None -> usage ())
    | "--max-skew-p99-ratio" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f -> max_skew_p99_ratio := Some f; parse_args rest
      | None -> usage ())
    | "--allow-missing" :: rest ->
      allow_missing := true;
      parse_args rest
    | a :: rest ->
      if String.length a > 1 && a.[0] = '-' then usage ();
      positional := a :: !positional;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let baseline_path, fresh_path, report_path =
    match List.rev !positional with
    | [ b; f ] -> b, f, "bench_gate_report.txt"
    | [ b; f; r ] -> b, f, r
    | _ -> usage ()
  in
  let load path =
    try parse (read_file path) with
    | Sys_error e ->
      Printf.eprintf "bench_gate: %s\n" e;
      exit 2
    | Parse_error e ->
      Printf.eprintf "bench_gate: %s: %s\n" path e;
      exit 2
  in
  let base = load baseline_path and fresh = load fresh_path in
  let bws = workloads base and fws = workloads fresh in
  List.iter
    (fun (name, bw) ->
      match List.assoc_opt name fws with
      | Some fw -> compare_workload name bw fw
      | None -> drift "workload %s present in baseline, missing from fresh run" name)
    bws;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name bws) then
        drift "workload %s appeared in fresh run, absent from baseline" name)
    fws;
  (match !min_speedup with
   | None -> ()
   | Some fl -> (
     match Option.bind (member "speedup_vs_serial" fresh) to_num with
     | None -> drift "speedup gate: fresh run has no speedup_vs_serial field"
     | Some s ->
       (* Compare against the width the run actually had: an oversubscribed
          --jobs clamped to the host's cores cannot reach a floor computed
          for the requested width. *)
       let fl =
         match
           ( member "pool_clamped" fresh,
             Option.bind (member "pool_width" fresh) to_num,
             Option.bind (member "jobs" fresh) to_num )
         with
         | Some (Bool true), Some w, Some j when j > 0. && w < j ->
           let fl' = Float.max 1. (fl *. w /. j) in
           note
             "speedup gate: pool clamped to %.0f of %.0f requested domain(s); floor \
              scaled %.2f -> %.2f"
             w j fl fl';
           fl'
         | _ -> fl
       in
       if s < fl then
         drift "speedup gate: speedup_vs_serial %.2f below required %.2f" s fl
       else note "speedup gate: speedup_vs_serial %.2f >= %.2f" s fl));
  (match !min_bank_speedup with
   | None -> ()
   | Some fl -> (
     let w_name = "fig9_32k_flush_l2b4" in
     match List.assoc_opt w_name fws with
     | None -> drift "bank-speedup gate: workload %s missing from fresh run" w_name
     | Some w -> (
       match
         Option.bind (member "stats" w) (member "speedup_milli")
         |> Fun.flip Option.bind to_num
       with
       | None -> drift "bank-speedup gate: %s has no speedup_milli stat" w_name
       | Some m ->
         let s = m /. 1000. in
         if s < fl then
           drift "bank-speedup gate: banked fig9 8-thread speedup %.2f below required %.2f"
             s fl
         else note "bank-speedup gate: banked fig9 8-thread speedup %.2f >= %.2f" s fl)));
  (if !max_fleet_shed <> None || !min_fleet_achieved <> None then begin
     let w_name = "fleet_kill1" in
     match List.assoc_opt w_name fws with
     | None -> drift "fleet gate: workload %s missing from fresh run" w_name
     | Some w ->
       let stat key =
         Option.bind (member "stats" w) (member key) |> Fun.flip Option.bind to_num
       in
       (match stat "violations" with
        | Some v when v > 0. ->
          drift "fleet gate: %s records %.0f verification violation(s)" w_name v
        | Some _ -> ()
        | None -> drift "fleet gate: %s has no violations stat" w_name);
       (match stat "leaked" with
        | Some v when v > 0. ->
          drift "fleet gate: %s leaked %.0f waiting-room slot(s)" w_name v
        | _ -> ());
       (match !max_fleet_shed with
        | None -> ()
        | Some fl -> (
          match stat "shed_milli" with
          | None -> drift "fleet gate: %s has no shed_milli stat" w_name
          | Some m ->
            let f = m /. 1000. in
            if f > fl then
              drift "fleet-shed gate: shed fraction %.3f above allowed %.3f" f fl
            else note "fleet-shed gate: shed fraction %.3f <= %.3f" f fl));
       match !min_fleet_achieved with
       | None -> ()
       | Some fl -> (
         match stat "achieved_milli" with
         | None -> drift "fleet gate: %s has no achieved_milli stat" w_name
         | Some m ->
           let a = m /. 1000. in
           if a < fl then
             drift
               "fleet-achieved gate: achieved %.2f ops/kcycle below required %.2f" a fl
           else note "fleet-achieved gate: achieved %.2f ops/kcycle >= %.2f" a fl)
   end);
  (match !max_skew_p99_ratio with
   | None -> ()
   | Some fl ->
     let serve_p99 w_name =
       match List.assoc_opt w_name fws with
       | None ->
         drift "skew gate: workload %s missing from fresh run" w_name;
         None
       | Some w -> (
         match
           Option.bind (member "latency" w) (member "serve")
           |> Fun.flip Option.bind (member "p99")
           |> Fun.flip Option.bind to_num
         with
         | None ->
           drift "skew gate: %s has no serve p99 latency" w_name;
           None
         | some -> some)
     in
     (match serve_p99 "serve_hash_r16_b8", serve_p99 "serve_hash_zipf99_r16_b8" with
      | Some uniform, Some skewed when uniform > 0. ->
        let ratio = skewed /. uniform in
        if ratio > fl then
          drift
            "skew gate: zipf:0.99 serve p99 %.1f is %.2fx the uniform p99 %.1f \
             (allowed %.2fx)"
            skewed ratio uniform fl
        else
          note "skew gate: zipf:0.99 serve p99 %.1f / uniform %.1f = %.2fx <= %.2fx"
            skewed uniform ratio fl
      | Some uniform, Some _ ->
        drift "skew gate: uniform serve p99 %.1f is not positive" uniform
      | _ -> ()));
  (match !max_serial_regress with
   | None -> ()
   | Some frac -> (
     match
       ( Option.bind (member "wall_ms_workloads" base) to_num,
         Option.bind (member "wall_ms_workloads" fresh) to_num )
     with
     | Some b, Some f when b > 0. ->
       let limit = b *. (1. +. frac) in
       if f > limit then
         drift
           "serial-regress gate: wall_ms_workloads %.2f exceeds baseline %.2f by more             than %.0f%% (limit %.2f)"
           f b (frac *. 100.) limit
       else note "serial-regress gate: wall_ms_workloads %.2f within %.0f%% of %.2f" f (frac *. 100.) b
     | _ -> drift "serial-regress gate: wall_ms_workloads missing from baseline or fresh"));
  let drifts = List.rev !drifts and notes = List.rev !notes in
  let oc = open_out report_path in
  Printf.fprintf oc "bench_gate: %s vs %s\n" baseline_path fresh_path;
  Printf.fprintf oc "workloads: %d baseline, %d fresh\n" (List.length bws)
    (List.length fws);
  if drifts = [] then Printf.fprintf oc "PASS: all gated fields identical\n"
  else begin
    Printf.fprintf oc "FAIL: %d drift(s)\n" (List.length drifts);
    List.iter (fun d -> Printf.fprintf oc "  %s\n" d) drifts
  end;
  List.iter (fun w -> Printf.fprintf oc "  note: %s\n" w) notes;
  close_out oc;
  print_string (read_file report_path);
  if drifts <> [] then exit 1
