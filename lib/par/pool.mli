(** Fixed-size domain pool for independent simulation jobs.

    The experiment drivers (figures, ablations, data-structure benches, the
    serving engine's load sweeps) are grids of {e independent} simulations:
    every job builds its own [System.create], its own [Rng] and its own
    stats, so no simulator state crosses a domain boundary.  Workers pull
    thunks off a mutex-protected queue and write each result into a
    dedicated slot of the caller's result array; {!map} returns results in
    submission order, which is what makes every table, CSV and JSON artifact
    byte-identical to a sequential run regardless of the pool width.

    Determinism contract for jobs:
    - a job must not read or write any state shared with another job (the
      tracing sink is domain-local, so [Trace.with_trace] inside a job is
      fine);
    - a job's result must depend only on its inputs (own seed, own system);
    - host-time measurements are allowed (they are reported, not reduced
      into simulated results).

    A pool of width 1 spawns no domains at all and runs jobs inline, so
    [--jobs 1] is exactly the sequential driver it replaced.  Jobs submitted
    from inside a worker also run inline (a worker must never block on a
    nested {!map} of its own pool). *)

type job = unit -> unit

type t

val default_jobs : unit -> int
(** The [--jobs 0] resolution: [$SKIPIT_JOBS] when set to a positive
    integer, otherwise one per core capped at 8. *)

val create : ?jobs:int -> unit -> t
(** [jobs] defaults to {!default_jobs}; must be at least 1.  Width 1 spawns
    no domains. *)

val width : t -> int

val shutdown : t -> unit
(** Stop accepting work, drain the queue and join all worker domains. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Map over the pool; results come back in list order.  The first failing
    job (by submission order) re-raises in the caller. *)

val run_jobs : t -> (unit -> 'a) list -> 'a list
(** Run ready-made thunks, results in submission order. *)

val map_opt : t option -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} with an optional pool: [None] is the sequential engine. *)
