(** Work-stealing domain pool for independent simulation jobs.

    The experiment drivers (figures, ablations, data-structure benches, the
    serving engine's load sweeps, the crash campaign) are grids of
    {e independent} simulations: every job builds its own [System.create],
    its own [Rng] and its own stats, so no simulator state crosses a domain
    boundary.

    Engine v2: a {!map} over n items is cut into index-range chunks (about
    four per worker by default, tunable via {!run_chunked}), the chunks are
    dealt into one Chase–Lev deque per worker before the batch is
    published, and workers pop their own deque then steal from siblings
    when they run dry.  Every item's result lands in its own slot of a
    result array and {!map} returns the slots in submission order — which
    is what makes every table, CSV and JSON artifact byte-identical to a
    sequential run regardless of pool width, chunk size, or steal
    interleaving.

    Determinism contract for jobs:
    - a job must not read or write any state shared with another job (the
      tracing sink is domain-local, so [Trace.with_trace] inside a job is
      fine);
    - a job's result must depend only on its inputs (own seed, own system);
    - host-time measurements are allowed (they are reported, not reduced
      into simulated results).

    A pool of width 1 spawns no domains at all and runs jobs inline, so
    [--jobs 1] is exactly the sequential driver it replaced.  Jobs submitted
    from inside a worker also run inline (a worker must never block on a
    nested {!map} of its own pool). *)

type job = unit -> unit

type t

val default_jobs : unit -> int
(** The [--jobs 0] resolution: [$SKIPIT_JOBS] when set to a positive
    integer, otherwise one per core capped at 8. *)

val create : ?jobs:int -> ?deque_cap:int -> ?oversubscribe:bool -> unit -> t
(** [jobs] defaults to {!default_jobs}; must be at least 1.  [jobs] is a
    {e maximum}: the pool clamps its width to the host's
    [Domain.recommended_domain_count] — oversubscribing a CPU-bound pool
    only multiplies GC stop-the-world rendezvous cost (a measured 4-5x
    slowdown at [--jobs 4] on a single-core host), and the output is
    byte-identical at any width so clamping never changes results.  Pass
    [~oversubscribe:true] to force the requested width anyway (the steal
    determinism and sweep byte-equality tests do, to get real multi-domain
    interleavings on any host).  Width 1 spawns no domains.

    [deque_cap] is a test knob: seed at most that many chunks into each
    worker's deque and pile the rest into worker 0's, forcing the steal
    path even on batches that would otherwise split evenly. *)

val width : t -> int
(** The effective width (after clamping). *)

val shutdown : t -> unit
(** Stop accepting work and join all worker domains. *)

val with_pool : ?jobs:int -> ?deque_cap:int -> ?oversubscribe:bool -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Map over the pool; results come back in list order.  The first failing
    job (by submission order) re-raises in the caller.  Equivalent to
    {!run_chunked} with the default chunk size. *)

val run_chunked : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} with an explicit chunk size: items are dispatched to workers
    [chunk] at a time, amortizing per-job dispatch cost over the chunk.
    [chunk] defaults to [n / (4 * width)] (at least 1); pass [~chunk:1]
    for maximal balancing of coarse, uneven jobs. *)

val run_jobs : t -> (unit -> 'a) list -> 'a list
(** Run ready-made thunks, results in submission order.  Dispatches with
    [~chunk:1] — ready-made thunks are coarse enough that dispatch is
    already amortized. *)

val map_opt : t option -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} with an optional pool: [None] is the sequential engine. *)

val run_chunked_opt : ?chunk:int -> t option -> ('a -> 'b) -> 'a list -> 'b list
(** {!run_chunked} with an optional pool: [None] is the sequential engine. *)
