(* Work-stealing domain pool for independent simulation jobs.

   The experiment drivers (figures, ablations, data-structure benches, the
   serving sweeps, the crash campaign) are large grids of *independent*
   simulations: every job builds its own [System.create], its own [Rng] and
   its own stats, so no simulator state ever crosses a domain boundary.

   Engine v2 (this file) replaces the v1 single mutex/condition [Queue]
   with per-domain Chase–Lev deques and *chunked* submission:

   - a [map] over n items is cut into index-range chunks (~4 chunks per
     worker by default, override with [run_chunked ~chunk]), so the
     per-job dispatch cost of v1 — one lock acquisition, one condition
     signal and one closure allocation per job — is amortized over the
     whole chunk;
   - the submitting domain distributes the chunks round-robin into one
     deque per worker *before* publishing the batch, so during a batch the
     only synchronisation is each worker popping its own deque bottom and,
     when it runs dry, CAS-stealing from a sibling's top;
   - every item's result is written into its own slot of a result array,
     and [map] returns slots in submission order — which is what keeps
     every table, CSV and JSON artifact byte-identical to a sequential run
     at any pool width, chunk size, and steal interleaving;
   - workers park on a condition variable between batches (parked domains
     cost nothing and cooperate instantly with the GC's stop-the-world
     sections, which matters when the pool is wider than the host).

   Determinism contract for jobs:
   - a job must not read or write any state shared with another job (the
     tracing sink is domain-local, so [Trace.with_trace] inside a job is
     fine);
   - a job's result must depend only on its inputs (own seed, own system);
   - host-time measurements are allowed (they are reported, not reduced
     into simulated results).

   A pool of width 1 spawns no domains at all and runs jobs inline, so
   [--jobs 1] is exactly the sequential driver it replaced. *)

type job = unit -> unit

(* A chunk is an index range [start, start+len) of the batch's item array,
   encoded in one immediate int so the deques never box:
   [start lsl 24 lor len].  24 bits of length and 38 of start comfortably
   cover any experiment grid. *)
let chunk_shift = 24
let chunk_len_mask = (1 lsl chunk_shift) - 1
let encode_chunk ~start ~len = (start lsl chunk_shift) lor len
let chunk_start c = c lsr chunk_shift
let chunk_len c = c land chunk_len_mask

type batch = {
  deques : int Ws_deque.t array;
  run_chunk : int -> unit;  (* executes one encoded chunk's items *)
  remaining : int Atomic.t;  (* chunks not yet fully executed *)
}

type t = {
  width : int;
  lock : Mutex.t;
  work_available : Condition.t;  (* workers: a new batch was published *)
  batch_done : Condition.t;  (* submitter: the current batch drained *)
  mutable epoch : int;  (* bumped at every publication *)
  mutable batch : batch option;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  (* Test knob: cap the number of chunks seeded into each non-zero deque
     (the rest pile into deque 0), forcing the steal path even for batches
     small enough to otherwise split evenly. *)
  deque_cap : int option;
}

(* Cap the default so a many-core host doesn't spawn dozens of domains for
   a handful of jobs; explicit [~jobs] overrides the cap. *)
let default_cap = 8

let default_jobs () =
  match Sys.getenv_opt "SKIPIT_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> 1)
  | None -> min default_cap (Domain.recommended_domain_count ())

(* A worker must never block on a nested [map] of its own pool: the inner
   jobs would sit behind the very worker waiting for them.  Jobs submitted
   from inside a worker run inline instead. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Drain [b] as worker [me]: own deque first (bottom end), then steal
   sweeps over the siblings.  Returns when a full sweep finds every deque
   empty — the batch may still be in flight on other workers, but there is
   nothing left to take. *)
let work_batch b ~me =
  let n = Array.length b.deques in
  let execute c =
    b.run_chunk c;
    if Atomic.fetch_and_add b.remaining (-1) = 1 then `Last else `More
  in
  let rec own () =
    match Ws_deque.pop b.deques.(me) with
    | Some c -> (match execute c with `Last -> `Last | `More -> own ())
    | None -> sweep 1 false
  and sweep i saw_retry =
    if i >= n then if saw_retry then sweep 1 false else `More
    else begin
      let victim = (me + i) mod n in
      if victim = me then sweep (i + 1) saw_retry
      else
        match Ws_deque.steal b.deques.(victim) with
        | Ws_deque.Stolen c ->
          (match execute c with `Last -> `Last | `More -> own ())
        | Ws_deque.Empty -> sweep (i + 1) saw_retry
        | Ws_deque.Retry -> sweep (i + 1) true
    end
  in
  own ()

let rec worker_loop pool ~me ~seen_epoch =
  Mutex.lock pool.lock;
  while pool.epoch = seen_epoch && not pool.stopping do
    Condition.wait pool.work_available pool.lock
  done;
  if pool.stopping then Mutex.unlock pool.lock
  else begin
    let epoch = pool.epoch in
    let batch = pool.batch in
    Mutex.unlock pool.lock;
    (match batch with
     | Some b -> (
       match work_batch b ~me with
       | `Last ->
         (* Every chunk has fully executed; wake the submitter.  The
            atomics' release sequence on [remaining] orders every other
            worker's result writes before this signal. *)
         Mutex.lock pool.lock;
         Condition.broadcast pool.batch_done;
         Mutex.unlock pool.lock
       | `More -> ())
     | None -> ());
    worker_loop pool ~me ~seen_epoch:epoch
  end

let create ?jobs ?deque_cap ?(oversubscribe = false) () =
  let requested = match jobs with Some n -> n | None -> default_jobs () in
  if requested < 1 then invalid_arg "Pool.create: jobs < 1";
  (* [jobs] is a maximum: spawning more domains than the host has cores
     never helps a CPU-bound pool and actively hurts — every minor GC is a
     stop-the-world rendezvous across all running domains, so an
     oversubscribed pool turns each collection into a context-switch storm
     (measured 4-5x *slowdown* at --jobs 4 on a single-core host).  Output
     is byte-identical at any width, so clamping is semantics-preserving.
     Tests that need real multi-domain interleavings on any host (steal
     determinism, sweep byte-equality) pass [~oversubscribe:true]. *)
  let width =
    if oversubscribe then requested
    else min requested (max 1 (Domain.recommended_domain_count ()))
  in
  (match deque_cap with
   | Some c when c < 0 -> invalid_arg "Pool.create: deque_cap < 0"
   | Some _ | None -> ());
  let pool =
    {
      width;
      lock = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      epoch = 0;
      batch = None;
      stopping = false;
      domains = [];
      deque_cap;
    }
  in
  if width > 1 then
    pool.domains <-
      List.init width (fun me ->
        Domain.spawn (fun () ->
          Domain.DLS.set in_worker true;
          worker_loop pool ~me ~seen_epoch:0));
  pool

let width t = t.width

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?jobs ?deque_cap ?oversubscribe f =
  let pool = create ?jobs ?deque_cap ?oversubscribe () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

type 'b slot = Empty | Ok_r of 'b | Exn_r of exn * Printexc.raw_backtrace

let run_inline f xs = List.map f xs

(* ~4 chunks per worker amortizes dispatch while leaving the stealers
   enough granularity to balance uneven job costs. *)
let default_chunk ~width n = max 1 (n / (width * 4))

(* Cut [0, n) into [chunk]-sized ranges and deal them round-robin into one
   deque per worker.  With [deque_cap = Some c], workers 1..w-1 are seeded
   at most [c] chunks each and every remaining chunk lands in deque 0 —
   the forced-steal test configuration. *)
let distribute pool ~n ~chunk =
  let n_chunks = (n + chunk - 1) / chunk in
  (* Which deque does chunk [i] land in? *)
  let home =
    match pool.deque_cap with
    | None -> fun i -> i mod pool.width
    | Some cap ->
      let capped = min n_chunks (cap * (pool.width - 1)) in
      fun i -> if i < capped then 1 + (i mod (pool.width - 1)) else 0
  in
  let counts = Array.make pool.width 0 in
  for i = 0 to n_chunks - 1 do
    let d = home i in
    counts.(d) <- counts.(d) + 1
  done;
  let arrays = Array.map (fun c -> Array.make c 0) counts in
  let filled = Array.make pool.width 0 in
  (* Deal chunks in index order so each deque's array is sorted by start;
     owners pop from the bottom (high indices) and thieves steal low ones,
     but execution order never matters — results are slotted by index. *)
  for i = 0 to n_chunks - 1 do
    let start = i * chunk in
    let len = min chunk (n - start) in
    let d = home i in
    arrays.(d).(filled.(d)) <- encode_chunk ~start ~len;
    filled.(d) <- filled.(d) + 1
  done;
  let deques = Array.init pool.width (fun _ -> Ws_deque.create ()) in
  Array.iteri (fun d arr -> Ws_deque.fill deques.(d) arr) arrays;
  deques, n_chunks

(* Map [f] over [xs] on the pool in [chunk]-sized batches; results come
   back in list order.  The first failing job (by submission order)
   re-raises in the caller. *)
let run_chunked ?chunk pool f xs =
  if pool.width = 1 || Domain.DLS.get in_worker then run_inline f xs
  else begin
    let items = Array.of_list xs in
    let n = Array.length items in
    if n = 0 then []
    else begin
      let chunk =
        match chunk with
        | Some c when c >= 1 -> c
        | Some _ -> invalid_arg "Pool.run_chunked: chunk < 1"
        | None -> default_chunk ~width:pool.width n
      in
      let results = Array.make n Empty in
      let run_chunk c =
        let start = chunk_start c and len = chunk_len c in
        for i = start to start + len - 1 do
          results.(i) <-
            (try Ok_r (f items.(i))
             with e -> Exn_r (e, Printexc.get_raw_backtrace ()))
        done
      in
      let deques, n_chunks = distribute pool ~n ~chunk in
      let batch = { deques; run_chunk; remaining = Atomic.make n_chunks } in
      Mutex.lock pool.lock;
      pool.batch <- Some batch;
      pool.epoch <- pool.epoch + 1;
      Condition.broadcast pool.work_available;
      while Atomic.get batch.remaining > 0 do
        Condition.wait pool.batch_done pool.lock
      done;
      pool.batch <- None;
      Mutex.unlock pool.lock;
      (* The final worker's broadcast ran under the mutex, and the atomic
         decrements of [remaining] form a release chain across workers:
         every result write is ordered before this read-back. *)
      Array.to_list
        (Array.map
           (function
             | Ok_r r -> r
             | Exn_r (e, bt) -> Printexc.raise_with_backtrace e bt
             | Empty -> assert false)
           results)
    end
  end

let map pool f xs = run_chunked pool f xs

(* Run a list of ready-made jobs, results in submission order.  Chunk 1:
   ready-made thunks (campaign trials, serve sweeps) are coarse enough
   that dispatch is already amortized, and fine-grained dealing gives the
   stealers the most to balance. *)
let run_jobs pool jobs = run_chunked ~chunk:1 pool (fun job -> job ()) jobs

(* [map]/[run_chunked] with an optional pool: [None] is the sequential
   engine. *)
let map_opt pool f xs =
  match pool with None -> run_inline f xs | Some p -> map p f xs

let run_chunked_opt ?chunk pool f xs =
  match pool with
  | None -> run_inline f xs
  | Some p -> run_chunked ?chunk p f xs
