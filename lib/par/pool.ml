(* Fixed-size domain pool for independent simulation jobs.

   The experiment drivers (figures, ablations, data-structure benches) are
   large grids of *independent* simulations: every job builds its own
   [System.create], its own [Rng] and its own stats, so no simulator state
   ever crosses a domain boundary.  The pool therefore needs no
   synchronisation beyond the work queue itself: workers pull thunks off a
   mutex-protected queue and write each result into a dedicated slot of the
   caller's result array, and [map] returns results in submission order —
   which is what makes every table, CSV and JSON artifact byte-identical to
   a sequential run regardless of the pool width.

   Determinism contract for jobs:
   - a job must not read or write any state shared with another job (the
     tracing sink is domain-local, so [Trace.with_trace] inside a job is
     fine);
   - a job's result must depend only on its inputs (own seed, own system);
   - host-time measurements are allowed (they are reported, not reduced
     into simulated results).

   A pool of width 1 spawns no domains at all and runs jobs inline, so
   [--jobs 1] is exactly the sequential driver it replaced. *)

type job = unit -> unit

type t = {
  width : int;
  queue : job Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

(* Cap the default so a many-core host doesn't spawn dozens of domains for
   a handful of jobs; explicit [~jobs] overrides the cap. *)
let default_cap = 8

let default_jobs () =
  match Sys.getenv_opt "SKIPIT_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> 1)
  | None -> min default_cap (Domain.recommended_domain_count ())

(* A worker must never block on a nested [map] of its own pool: the inner
   jobs would sit behind the very worker waiting for them.  Jobs submitted
   from inside a worker run inline instead. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue && not pool.stopping do
    Condition.wait pool.work_available pool.lock
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.lock
  else begin
    let job = Queue.pop pool.queue in
    Mutex.unlock pool.lock;
    (* The job's own wrapper captures exceptions; a raise here would mean a
       bug in the pool, not in the job. *)
    job ();
    worker_loop pool
  end

let create ?jobs () =
  let width = match jobs with Some n -> n | None -> default_jobs () in
  if width < 1 then invalid_arg "Pool.create: jobs < 1";
  let pool =
    {
      width;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      stopping = false;
      domains = [];
    }
  in
  if width > 1 then
    pool.domains <-
      List.init width (fun _ ->
        Domain.spawn (fun () ->
          Domain.DLS.set in_worker true;
          worker_loop pool));
  pool

let width t = t.width

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

type 'b slot = Empty | Ok_r of 'b | Exn_r of exn * Printexc.raw_backtrace

let run_inline f xs = List.map f xs

(* Map [f] over [xs] on the pool; results come back in list order.  The
   first failing job (by submission order) re-raises in the caller. *)
let map pool f xs =
  if pool.width = 1 || Domain.DLS.get in_worker then run_inline f xs
  else begin
    let items = Array.of_list xs in
    let n = Array.length items in
    if n = 0 then []
    else begin
      let results = Array.make n Empty in
      let remaining = ref n in
      let all_done = Condition.create () in
      let thunk i () =
        let r =
          try Ok_r (f items.(i))
          with e -> Exn_r (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock pool.lock;
        results.(i) <- r;
        decr remaining;
        if !remaining = 0 then Condition.broadcast all_done;
        Mutex.unlock pool.lock
      in
      Mutex.lock pool.lock;
      for i = 0 to n - 1 do
        Queue.push (thunk i) pool.queue
      done;
      Condition.broadcast pool.work_available;
      while !remaining > 0 do
        Condition.wait all_done pool.lock
      done;
      Mutex.unlock pool.lock;
      (* The mutex hand-off above orders every worker's result write before
         this read back on the submitting domain. *)
      Array.to_list
        (Array.map
           (function
             | Ok_r r -> r
             | Exn_r (e, bt) -> Printexc.raise_with_backtrace e bt
             | Empty -> assert false)
           results)
    end
  end

(* Run a list of ready-made jobs, results in submission order. *)
let run_jobs pool jobs = map pool (fun job -> job ()) jobs

(* [map] with an optional pool: [None] is the sequential engine. *)
let map_opt pool f xs =
  match pool with None -> run_inline f xs | Some p -> map p f xs
