(* Batch-filled Chase–Lev work-stealing deque.

   The pool's submission protocol makes the classic deque radically simpler
   without giving up its concurrency structure: the submitting domain fills
   [items] *before* publishing the batch (publication happens under the
   pool's mutex, which gives the necessary happens-before), and during the
   batch the array is read-only.  What remains of Chase–Lev is exactly its
   index protocol — the owner takes from the bottom end, thieves CAS the
   top forward — with none of the dynamic-growth or ABA hazards, because
   no push ever races with a take.

   Owner pops run in the common case with one atomic store and one atomic
   load; a CAS is only needed for the last element, where owner and thieves
   can race.  Thieves always CAS.  All atomics are OCaml [Atomic], i.e.
   sequentially consistent, which is stronger than the fences the original
   algorithm needs. *)

type 'a t = {
  mutable items : 'a array;
  (* [top] is the next index a thief would steal; [bottom] is one past the
     next index the owner would pop.  The live window is [top, bottom). *)
  top : int Atomic.t;
  bottom : int Atomic.t;
}

let create () = { items = [||]; top = Atomic.make 0; bottom = Atomic.make 0 }

(* Refill for a new batch.  Must only be called while no worker is running
   the deque (the pool publishes the batch after every refill, under its
   lock). *)
let fill t items =
  t.items <- items;
  Atomic.set t.top 0;
  Atomic.set t.bottom (Array.length items)

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

(* Owner take, bottom end. *)
let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b > tp then Some t.items.(b)
  else if b = tp then begin
    (* Last element: win it against any thief with the same CAS thieves
       use, then reset the deque to canonical empty. *)
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (tp + 1);
    if won then Some t.items.(b) else None
  end
  else begin
    Atomic.set t.bottom tp;
    None
  end

type 'a steal_result = Stolen of 'a | Empty | Retry

(* Thief take, top end.  [Retry] means a concurrent take won the CAS; the
   deque may or may not still hold work. *)
let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then Empty
  else begin
    let x = t.items.(tp) in
    if Atomic.compare_and_set t.top tp (tp + 1) then Stolen x else Retry
  end
