(** Batch-filled Chase–Lev work-stealing deque.

    The owner takes from the bottom end with {!pop}; other domains take
    from the top end with {!steal}.  {!fill} replaces the whole contents
    and must only run while no domain is taking (the pool refills between
    batches, under its lock, so publication of the new batch provides the
    happens-before edge).  During a batch the item array is read-only:
    this removes the growth/ABA machinery of the classic algorithm while
    keeping its owner/thief index protocol. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a array -> unit
(** Replace the contents.  Caller must guarantee quiescence (no concurrent
    {!pop}/{!steal}); the pool does this between batches. *)

val size : 'a t -> int
(** Instantaneous live count; advisory under concurrency. *)

val pop : 'a t -> 'a option
(** Owner take (bottom end).  At most one domain may call [pop] per deque
    at a time. *)

type 'a steal_result = Stolen of 'a | Empty | Retry

val steal : 'a t -> 'a steal_result
(** Thief take (top end); any domain may call it.  [Retry] means a
    concurrent take won the race — the caller should re-examine. *)
