open Skipit_sim
module Trace = Skipit_obs.Trace

type grant = { perm : Perm.t; data : int array; l2_dirty : bool; done_at : int }
type probe_result = { dirty_data : int array option; done_at : int }

type manager = {
  acquire : addr:int -> grow:Perm.grow -> now:int -> grant;
  release : addr:int -> shrink:Perm.shrink -> data:int array option -> now:int -> int;
  root_release : addr:int -> kind:Message.wb_kind -> data:int array option -> now:int -> int;
  root_inval : addr:int -> now:int -> int;
  peek_word : int -> int;
}

type client = { probe : addr:int -> cap:Perm.t -> now:int -> probe_result }

module Channels = struct
  type t = { a : Resource.t; c : Resource.t; d : Resource.t }

  let create ~name =
    {
      a = Resource.create (name ^ "-a");
      c = Resource.create (name ^ "-c");
      d = Resource.create (name ^ "-d");
    }
end

(* Per-channel counter cache for the beat hot path.  The registry key
   strings are built once at port creation, and each [Stats.Counter.t] is
   bound on its first increment — never earlier, so a port that sees no
   stalls reports no [*_stalls] key, exactly as with per-call
   [Registry.add] lookups.  After binding, a beat costs two field reads
   and an integer add: no string concat, no hashtable probe, no
   allocation. *)
type chan_stats = {
  beats_name : string;
  stalls_name : string;
  waits_name : string;
  tchan : Trace.chan;
  mutable beats : Stats.Counter.t option;
  mutable stalls : Stats.Counter.t option;
  mutable waits : Stats.Counter.t option;
}

let chan_stats chan tchan =
  {
    beats_name = chan ^ "_beats";
    stalls_name = chan ^ "_stalls";
    waits_name = chan ^ "_wait_cycles";
    tchan;
    beats = None;
    stalls = None;
    waits = None;
  }

type t = {
  name : string;
  channels : Channels.t;
  bank_channels : Channels.t array;  (* [||] = unbanked wiring *)
  line_bytes : int;
  stats : Stats.Registry.t;
  cs_a : chan_stats;
  cs_c : chan_stats;
  cs_d : chan_stats;
  mutable probes : Stats.Counter.t option;  (* b_probes, bound lazily *)
  mutable probe_beats : Stats.Counter.t option;  (* b_beats, bound lazily *)
  mutable manager : manager option;
  mutable client : client option;
}

let create ?channels ?(bank_channels = [||]) ?(line_bytes = 64) ~name () =
  let channels =
    match channels with Some c -> c | None -> Channels.create ~name
  in
  {
    name;
    channels;
    bank_channels;
    line_bytes;
    stats = Stats.Registry.create ();
    cs_a = chan_stats "a" Trace.Ch_a;
    cs_c = chan_stats "c" Trace.Ch_c;
    cs_d = chan_stats "d" Trace.Ch_d;
    probes = None;
    probe_beats = None;
    manager = None;
    client = None;
  }

let name t = t.name
let stats t = t.stats
let channels t = t.channels

(* Banked wiring routes each message to the wire set of the LLC bank that
   owns the line — the same XOR-folded line-number hash the banked L2 uses
   for bank selection, so bus [i] carries exactly bank [i]'s traffic;
   unbanked ports ignore [addr]. *)
let chans_for t ~addr =
  let n = Array.length t.bank_channels in
  if n = 0 then t.channels
  else begin
    let m = n - 1 in
    let shift =
      let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
      go 0 n
    in
    let h = ref 0 and x = ref (addr / t.line_bytes) in
    while !x <> 0 do
      h := !h lxor (!x land m);
      x := !x lsr shift
    done;
    t.bank_channels.(!h)
  end

let connect_manager t m =
  if t.manager <> None then invalid_arg ("Port." ^ t.name ^ ": manager already connected");
  t.manager <- Some m

let connect_client t c =
  if t.client <> None then invalid_arg ("Port." ^ t.name ^ ": client already connected");
  t.client <- Some c

let manager_exn t =
  match t.manager with
  | Some m -> m
  | None -> invalid_arg ("Port." ^ t.name ^ ": no manager connected")

let client_exn t =
  match t.client with
  | Some c -> c
  | None -> invalid_arg ("Port." ^ t.name ^ ": no client connected")

(* Occupy one channel's wires for [beats] cycles starting no earlier than
   [now]; a sender that finds the channel busy queues (stall), exactly how
   structural hazards surface in hardware. *)
let occupy t res cs ~now ~beats =
  let start, finish = Resource.acquire res ~now ~busy:beats in
  (match cs.beats with
   | Some c -> Stats.Counter.add c beats
   | None ->
     let c = Stats.Registry.counter t.stats cs.beats_name in
     cs.beats <- Some c;
     Stats.Counter.add c beats);
  if Trace.enabled () then
    Trace.emit ~at:start
      (Trace.Channel { port = t.name; chan = cs.tchan; op = Trace.Beats beats });
  if start > now then begin
    (match cs.stalls with
     | Some c -> Stats.Counter.incr c
     | None ->
       let c = Stats.Registry.counter t.stats cs.stalls_name in
       cs.stalls <- Some c;
       Stats.Counter.incr c);
    (match cs.waits with
     | Some c -> Stats.Counter.add c (start - now)
     | None ->
       let c = Stats.Registry.counter t.stats cs.waits_name in
       cs.waits <- Some c;
       Stats.Counter.add c (start - now));
    if Trace.enabled () then
      Trace.emit ~at:now
        (Trace.Channel { port = t.name; chan = cs.tchan; op = Trace.Stall (start - now) })
  end;
  finish

let send_a t ~addr ~now =
  occupy t (chans_for t ~addr).Channels.a t.cs_a ~now ~beats:1

let send_c t ~addr ~finish ~beats =
  occupy t (chans_for t ~addr).Channels.c t.cs_c ~now:(finish - beats) ~beats

let recv_d t ~addr ~finish ~beats =
  occupy t (chans_for t ~addr).Channels.d t.cs_d ~now:(finish - beats) ~beats

let trace_msg t ~op ~addr ~now =
  if Trace.enabled () then Trace.emit ~at:now (Trace.Message { port = t.name; op; addr })

let acquire t ~addr ~grow ~now =
  Stats.Registry.incr t.stats "acquires";
  trace_msg t ~op:Trace.Msg_acquire ~addr ~now;
  (manager_exn t).acquire ~addr ~grow ~now

let release t ~addr ~shrink ~data ~now =
  Stats.Registry.incr t.stats "releases";
  trace_msg t ~op:Trace.Msg_release ~addr ~now;
  (manager_exn t).release ~addr ~shrink ~data ~now

let root_release t ~addr ~kind ~data ~now =
  Stats.Registry.incr t.stats "root_releases";
  trace_msg t ~op:Trace.Msg_root_release ~addr ~now;
  (manager_exn t).root_release ~addr ~kind ~data ~now

let root_inval t ~addr ~now =
  Stats.Registry.incr t.stats "root_invals";
  trace_msg t ~op:Trace.Msg_root_inval ~addr ~now;
  (manager_exn t).root_inval ~addr ~now

let peek_word t addr = (manager_exn t).peek_word addr

let probe t ~addr ~cap ~now =
  (match t.probes with
   | Some c -> Stats.Counter.incr c
   | None ->
     let c = Stats.Registry.counter t.stats "b_probes" in
     t.probes <- Some c;
     Stats.Counter.incr c);
  (match t.probe_beats with
   | Some c -> Stats.Counter.incr c
   | None ->
     let c = Stats.Registry.counter t.stats "b_beats" in
     t.probe_beats <- Some c;
     Stats.Counter.incr c);
  if Trace.enabled () then begin
    Trace.emit ~at:now (Trace.Message { port = t.name; op = Trace.Msg_probe; addr });
    Trace.emit ~at:now (Trace.Channel { port = t.name; chan = Trace.Ch_b; op = Trace.Beats 1 })
  end;
  (client_exn t).probe ~addr ~cap ~now

module Memside = struct
  type ops = {
    read_line : addr:int -> now:int -> int array * int * bool;
    write_line : addr:int -> data:int array -> now:int -> int;
    persist_line : addr:int -> data:int array -> now:int -> int;
    persist_if_dirty : addr:int -> now:int -> int;
    discard_line : addr:int -> unit;
    peek_word : int -> int;
    crash : unit -> unit;
  }

  type t = {
    name : string;
    beats_per_line : int;
    burst_cost : int;  (* extra cycles per line transfer, beats × beat cost *)
    txn : Resource.t option;  (* outstanding-transaction IDs, None = unlimited *)
    stats : Stats.Registry.t;
    ops : ops;
  }

  let create ~name ~beats_per_line ?(max_inflight = 0) ?(burst_beat_cost = 0) mk =
    let stats = Stats.Registry.create () in
    let txn =
      if max_inflight > 0 then
        Some (Resource.create ~count:max_inflight (name ^ "-txn"))
      else None
    in
    {
      name;
      beats_per_line;
      burst_cost = beats_per_line * burst_beat_cost;
      txn;
      stats;
      ops = mk stats;
    }

  let name t = t.name
  let stats t = t.stats

  let note_wait stats cycles =
    if cycles > 0 then begin
      Stats.Registry.incr stats "stalls";
      Stats.Registry.add stats "wait_cycles" cycles
    end

  let note_txn_wait t ~now ~start =
    if start > now then begin
      Stats.Registry.incr t.stats "txn_stalls";
      Stats.Registry.add t.stats "txn_wait_cycles" (start - now)
    end

  let trace_op t ~op ~addr ~now =
    if Trace.enabled () then Trace.emit ~at:now (Trace.Mem { name = t.name; op; addr })

  (* AXI-style transaction bracket for the line-moving operations: a burst
     holds one outstanding-transaction ID from issue to completion (a full
     ID table delays issue — txn_stalls/txn_wait_cycles), and its data
     beats add [burst_cost] cycles to the completion time.  With the
     defaults (unlimited IDs, free beats) this is the identity. *)
  let burst_op t ~now f =
    match t.txn with
    | None -> f ~now + t.burst_cost
    | Some txn ->
      let start, finish =
        Resource.acquire_dyn txn ~now (fun start ->
            max start (f ~now:start + t.burst_cost))
      in
      note_txn_wait t ~now ~start;
      finish

  let read_line t ~addr ~now =
    Stats.Registry.incr t.stats "reads";
    Stats.Registry.add t.stats "read_beats" t.beats_per_line;
    trace_op t ~op:Trace.Mem_read ~addr ~now;
    match t.txn with
    | None ->
      let data, at, dirty = t.ops.read_line ~addr ~now in
      (data, at + t.burst_cost, dirty)
    | Some txn ->
      let res = ref None in
      let start, finish =
        Resource.acquire_dyn txn ~now (fun start ->
            let ((_, at, _) as r) = t.ops.read_line ~addr ~now:start in
            res := Some r;
            max start (at + t.burst_cost))
      in
      note_txn_wait t ~now ~start;
      (match !res with
       | Some (data, _, dirty) -> (data, finish, dirty)
       | None -> assert false)

  let write_line t ~addr ~data ~now =
    Stats.Registry.incr t.stats "writes";
    Stats.Registry.add t.stats "write_beats" t.beats_per_line;
    trace_op t ~op:Trace.Mem_write ~addr ~now;
    burst_op t ~now (fun ~now -> t.ops.write_line ~addr ~data ~now)

  let persist_line t ~addr ~data ~now =
    Stats.Registry.incr t.stats "persists";
    Stats.Registry.add t.stats "write_beats" t.beats_per_line;
    trace_op t ~op:Trace.Mem_persist ~addr ~now;
    burst_op t ~now (fun ~now -> t.ops.persist_line ~addr ~data ~now)

  let persist_if_dirty t ~addr ~now =
    Stats.Registry.incr t.stats "persist_checks";
    t.ops.persist_if_dirty ~addr ~now

  let discard_line t ~addr = t.ops.discard_line ~addr
  let peek_word t addr = t.ops.peek_word addr

  let crash t =
    (match t.txn with Some r -> Resource.reset r | None -> ());
    t.ops.crash ()
end
