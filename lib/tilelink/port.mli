(** Typed TileLink agent ports (§2.2, Fig. 3).

    A [Port.t] is one client↔manager link of the hierarchy: the L1 side (the
    {e client}) sends AcquireBlock on channel A and Release/RootRelease on
    channel C, and receives Grants on channel D; the manager side (the L2)
    sends Probes on channel B and receives their acks on C.  The port owns

    - the per-channel wire occupancy (one physical wire set per channel, so
      concurrent senders serialize — eight FSHRs may be ready to release
      simultaneously, but their beats leave one at a time on channel C;
      grants share channel D; channels B and E carry single-beat messages
      and are modelled as counters only);
    - the binding to the two agents ({!connect_manager}/{!connect_client}),
      replacing any direct module reference between hierarchy levels;
    - per-channel counters: [<chan>_beats], [<chan>_stalls],
      [<chan>_wait_cycles], plus request counts ([acquires], [releases],
      [root_releases], [root_invals], [b_probes]).

    Topology is a wiring choice of the system builder: a {e crossbar} gives
    every port its own {!Channels.t}; a {e shared bus} threads one
    {!Channels.t} through every port, so all cores contend for the same
    wires. *)

type grant = {
  perm : Perm.t;  (** Permission granted (always the requested level). *)
  data : int array;  (** Line contents. *)
  l2_dirty : bool;
      (** [true] ⇒ the response is {e GrantDataDirty}: the block is not
          persisted and the L1 must clear its skip bit (§6.1). *)
  done_at : int;  (** Cycle the Grant(Data) finishes arriving at the L1. *)
}

type probe_result = {
  dirty_data : int array option;
      (** Data handed back on channel C iff the client held the line dirty. *)
  done_at : int;  (** Cycle the ProbeAck arrives back at the manager. *)
}

(** What a manager must implement to serve a client port.  All operations
    take [now] = the cycle the message leaves the client and return
    completion times that include link traversal and downstream contention. *)
type manager = {
  acquire : addr:int -> grow:Perm.grow -> now:int -> grant;
  release : addr:int -> shrink:Perm.shrink -> data:int array option -> now:int -> int;
  root_release : addr:int -> kind:Message.wb_kind -> data:int array option -> now:int -> int;
  root_inval : addr:int -> now:int -> int;
  peek_word : int -> int;  (** Functional read, costs no simulated time. *)
}

(** What a client must implement to accept B-channel traffic. *)
type client = { probe : addr:int -> cap:Perm.t -> now:int -> probe_result }

(** The physical wire sets of one link.  Create one per port for a crossbar,
    or share one across ports for a bus. *)
module Channels : sig
  type t

  val create : name:string -> t
end

type t

val create :
  ?channels:Channels.t ->
  ?bank_channels:Channels.t array ->
  ?line_bytes:int ->
  name:string ->
  unit ->
  t
(** [create ~name ()] makes a port with private channel wires;
    [create ~channels ~name ()] attaches it to existing (shared) wires;
    [create ~bank_channels ~line_bytes ~name ()] routes each message to
    the wire set of the LLC bank owning its line
    ([addr / line_bytes mod banks], power-of-two bank counts) — the
    per-bank bus of a banked NUCA LLC.  [line_bytes] defaults to 64. *)

val name : t -> string
val stats : t -> Skipit_sim.Stats.Registry.t
val channels : t -> Channels.t

val connect_manager : t -> manager -> unit
(** Bind the manager side.  Raises [Invalid_argument] on a second bind. *)

val connect_client : t -> client -> unit
(** Bind the client side.  Raises [Invalid_argument] on a second bind. *)

(** {2 Channel occupancy}

    Serialization time is already part of [finish]: contention-free sends
    cost nothing extra, concurrent senders queue. *)

val send_a : t -> addr:int -> now:int -> int
(** Occupy channel A for one header beat; returns the cycle the message has
    left the client.  [addr] selects the bank wire set on banked ports
    (ignored on unbanked wiring). *)

val send_c : t -> addr:int -> finish:int -> beats:int -> int
(** Occupy channel C for [beats] cycles ending no earlier than [finish]
    (4 for a data-bearing release on the 16 B bus); returns the
    send-completion cycle. *)

val recv_d : t -> addr:int -> finish:int -> beats:int -> int
(** Occupy channel D (grants, acks into the client). *)

(** {2 Client-side requests} — forwarded to the connected manager.
    Raise [Invalid_argument] when no manager is connected. *)

val acquire : t -> addr:int -> grow:Perm.grow -> now:int -> grant
val release : t -> addr:int -> shrink:Perm.shrink -> data:int array option -> now:int -> int
val root_release :
  t -> addr:int -> kind:Message.wb_kind -> data:int array option -> now:int -> int
val root_inval : t -> addr:int -> now:int -> int
val peek_word : t -> int -> int

(** {2 Manager-side requests} *)

val probe : t -> addr:int -> cap:Perm.t -> now:int -> probe_result
(** B-channel Probe to the connected client.  Raises [Invalid_argument] when
    no client is connected. *)

(** {2 Memory-side ports}

    The boundary below the LLC (L2↔DRAM, L2↔L3, L3↔DRAM) carries whole-line
    transfers rather than coherence traffic.  A [Memside.t] wraps an agent's
    operations with per-port counters ([reads], [writes], [persists],
    [read_beats], [write_beats], [stalls], [wait_cycles]); the agent reports
    its own queueing via {!Memside.note_wait}. *)
module Memside : sig
  (** Semantics the cache above relies on:

      - [read_line] returns the freshest copy and whether that copy is
        {e dirty with respect to the persistence domain} (a dirty memory-side
        copy means the line is not yet durable — the grant flavour and hence
        the skip bit must reflect it, §6);
      - [write_line] is a cacheable victim writeback: it may lodge in the
        memory-side cache without reaching DRAM;
      - [persist_line] is a durability write (RootRelease path): it must not
        be acknowledged before the data is in DRAM;
      - [persist_if_dirty] pushes the agent's own dirty copy (if any) to
        DRAM — needed so the L2's "trivial skip" (§5.5) never skips a line
        whose only dirty copy lives below it;
      - [discard_line] drops any cached copy without writing back
        (CBO.INVAL);
      - [crash] loses all volatile state. *)
  type ops = {
    read_line : addr:int -> now:int -> int array * int * bool;
        (** [(data, available_at, dirty_below)]. *)
    write_line : addr:int -> data:int array -> now:int -> int;
    persist_line : addr:int -> data:int array -> now:int -> int;
    persist_if_dirty : addr:int -> now:int -> int;
    discard_line : addr:int -> unit;
    peek_word : int -> int;
    crash : unit -> unit;
  }

  type t

  val create :
    name:string ->
    beats_per_line:int ->
    ?max_inflight:int ->
    ?burst_beat_cost:int ->
    (Skipit_sim.Stats.Registry.t -> ops) ->
    t
  (** The agent's [ops] are built against the port's own counter registry so
      the agent can report queueing with {!note_wait}.

      [max_inflight] (default 0 = unlimited) caps outstanding line
      transactions AXI-style: a burst holds one transaction ID from issue
      to completion, and a full ID table delays issue — recorded as
      [txn_stalls] / [txn_wait_cycles].  [burst_beat_cost] (default 0 =
      free) adds [beats_per_line × cost] cycles to every line burst's
      completion.  Both apply to [read_line] / [write_line] /
      [persist_line]; the defaults are timing-neutral. *)

  val name : t -> string
  val stats : t -> Skipit_sim.Stats.Registry.t

  val note_wait : Skipit_sim.Stats.Registry.t -> int -> unit
  (** [note_wait stats cycles] records [cycles] of queueing delay (no-op for
      [cycles <= 0]). *)

  val read_line : t -> addr:int -> now:int -> int array * int * bool
  val write_line : t -> addr:int -> data:int array -> now:int -> int
  val persist_line : t -> addr:int -> data:int array -> now:int -> int
  val persist_if_dirty : t -> addr:int -> now:int -> int
  val discard_line : t -> addr:int -> unit
  val peek_word : t -> int -> int
  val crash : t -> unit
end
