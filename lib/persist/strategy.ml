module Thread = Skipit_core.Thread

type t = {
  name : string;
  field_stride : int;
  uses_word_bit : bool;
  read : int -> int;
  write : int -> int -> unit;
  cas : int -> expected:int -> desired:int -> bool;
  persist_store : int -> unit;
  persist_load : int -> unit;
  fence : unit -> unit;
  persistent : bool;
  deferrable : bool;
}

let plain () =
  {
    name = "plain";
    field_stride = 8;
    uses_word_bit = false;
    read = Thread.load;
    write = Thread.store;
    cas = Thread.cas;
    persist_store = Thread.flush;
    persist_load = Thread.flush;
    fence = Thread.fence;
    persistent = true;
    deferrable = true;
  }

let none () =
  {
    name = "none";
    field_stride = 8;
    uses_word_bit = false;
    read = Thread.load;
    write = Thread.store;
    cas = Thread.cas;
    persist_store = (fun _ -> ());
    persist_load = (fun _ -> ());
    fence = (fun () -> ());
    persistent = false;
    deferrable = true;
  }

let skipit_hw () =
  (* No software support whatsoever: issue the writeback unconditionally and
     let the skip bit in the L1 metadata drop the redundant ones (§6). *)
  { (plain ()) with name = "skipit" }

(* FliT [73]: a per-word flush counter.  An instrumented store raises the
   counter (the paper uses fetch&add; we model it as load+store, which is
   what it costs on the simulated core) before writing; the store-side
   persist point flushes and lowers it.  A load-side persist point flushes
   only when the counter is non-zero — the redundant-writeback avoidance
   this mechanism exists for. *)
module Flit = struct
  let make ~name ~field_stride ~counter_of =
    let bump addr delta =
      let c = counter_of addr in
      Thread.store c (Thread.load c + delta)
    in
    let write addr value =
      bump addr 1;
      Thread.store addr value
    in
    let cas addr ~expected ~desired =
      bump addr 1;
      let ok = Thread.cas addr ~expected ~desired in
      if not ok then bump addr (-1);
      ok
    in
    let persist_store addr =
      Thread.flush addr;
      bump addr (-1)
    in
    let persist_load addr = if Thread.load (counter_of addr) > 0 then Thread.flush addr in
    {
      name;
      field_stride;
      uses_word_bit = false;
      read = Thread.load;
      write;
      cas;
      persist_store;
      persist_load;
      fence = Thread.fence;
      persistent = true;
      (* The counter bookkeeping lives inside the persist point: postponing
         it would leave counters raised across an epoch and break the
         load-side avoidance test. *)
      deferrable = false;
    }
end

let flit_adjacent () =
  (* Counter in the word immediately after the variable: same cache line,
     double the footprint. *)
  Flit.make ~name:"flit-adjacent" ~field_stride:16 ~counter_of:(fun addr -> addr + 8)

let flit_hash ~table_base ~table_slots =
  if table_slots <= 0 then invalid_arg "Strategy.flit_hash: empty table";
  (* Fibonacci hashing of the word address into the counter table. *)
  let counter_of addr =
    let h = addr * 0x9E3779B97F4A7C1 in
    let slot = (h lsr 17) land max_int mod table_slots in
    table_base + (slot * 8)
  in
  Flit.make
    ~name:(Printf.sprintf "flit-hash[%d]" table_slots)
    ~field_stride:8 ~counter_of

(* Link-and-Persist [23]: bit 62 inside the data word marks "written but not
   yet persisted".  Stores set it; any persist point that finds it set
   flushes the line and clears the mark with a CAS.  Loads mask it out. *)
let lap_mask = 1 lsl 62

let link_and_persist () =
  let strip v = v land lnot lap_mask in
  let read addr = strip (Thread.load addr) in
  let write addr value = Thread.store addr (value lor lap_mask) in
  let cas addr ~expected ~desired =
    (* The stored word may carry the mark in either state; try both
       encodings of the expected value, marked first (recent writes). *)
    Thread.cas addr ~expected:(expected lor lap_mask) ~desired:(desired lor lap_mask)
    || Thread.cas addr ~expected ~desired:(desired lor lap_mask)
  in
  let persist addr =
    let v = Thread.load addr in
    if v land lap_mask <> 0 then begin
      Thread.flush addr;
      (* Clear the mark; losing the CAS race only costs an extra flush
         later, never a missed writeback. *)
      ignore (Thread.cas addr ~expected:v ~desired:(strip v))
    end
  in
  {
    name = "link-and-persist";
    field_stride = 8;
    uses_word_bit = true;
    read;
    write;
    cas;
    persist_store = persist;
    persist_load = persist;
    fence = Thread.fence;
    persistent = true;
    (* The persist point clears the in-word mark; deferring it would leave
       marks set for readers across the whole epoch. *)
    deferrable = false;
  }

let all_persistent ~table_base ~table_slots () =
  [
    plain ();
    flit_adjacent ();
    flit_hash ~table_base ~table_slots;
    link_and_persist ();
    skipit_hw ();
  ]
