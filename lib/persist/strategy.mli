(** Software strategies for avoiding redundant writebacks (§7.4).

    The paper compares its hardware mechanism against the state-of-the-art
    software techniques.  Each strategy wraps the raw simulated-memory
    operations ({!Skipit_core.Thread}) with the bookkeeping that technique
    performs on real hardware:

    - {b plain} — no avoidance: every persist point issues the writeback;
    - {b FliT adjacent} [73] — a counter word next to every variable (same
      cache line); a store sets it, a persist writes back only when set;
    - {b FliT hash table} [73] — the counters live in a separate fixed-size
      table indexed by address hash; collisions cause spurious writebacks
      and the table competes for cache space (Fig. 16);
    - {b Link-and-Persist} [23] — a mark {e inside} the data word (we use
      bit 62) set by stores and cleared once the line is persisted; loads
      must mask it, and it conflicts with algorithms that use spare word
      bits themselves (the BST), exactly as the paper notes;
    - {b Skip It} — no software bookkeeping at all: every persist point
      issues CBO.FLUSH and the hardware drops redundant ones;
    - {b none} — the non-persistent baseline (dotted line in Figs 14/15).

    All operation functions must run inside a {!Skipit_core.Thread} task. *)

type t = {
  name : string;
  field_stride : int;
      (** Bytes between logical fields in node layouts — 16 for FliT
          adjacent (value word + counter word), 8 otherwise. *)
  uses_word_bit : bool;
      (** Occupies a bit inside the data word (Link-and-Persist); such
          strategies are incompatible with data structures that use spare
          word bits for their own logic. *)
  read : int -> int;  (** Load a shared word (masking any strategy mark). *)
  write : int -> int -> unit;  (** Store a shared word + bookkeeping. *)
  cas : int -> expected:int -> desired:int -> bool;
      (** CAS on a shared word, transparent to any strategy mark. *)
  persist_store : int -> unit;
      (** Persist point after a store/CAS to the word (FliT decrements the
          word's counter after flushing; Link-and-Persist clears the in-word
          mark). *)
  persist_load : int -> unit;
      (** Persist point after a load of the word — the side the software
          techniques optimise: the writeback is issued only when the word
          has unflushed stores pending (FliT counter ≠ 0, LaP mark set). *)
  fence : unit -> unit;  (** Persist barrier ([unit] for [none]). *)
  persistent : bool;  (** [false] only for [none]. *)
  deferrable : bool;
      (** The persist points carry no software bookkeeping, so a group-commit
          batcher may postpone and deduplicate them to an epoch boundary
          (plain, Skip It).  [false] for FliT and Link-and-Persist, whose
          persist points maintain counters / in-word marks that other threads
          observe — for those only the trailing fence may be batched. *)
}

val plain : unit -> t
val none : unit -> t
val skipit_hw : unit -> t

val flit_adjacent : unit -> t

val flit_hash : table_base:int -> table_slots:int -> t
(** The counter table must be a [table_slots * 8]-byte region reserved via
    the system allocator (zero-initialised memory). *)

val link_and_persist : unit -> t

val lap_mask : int
(** The in-word mark bit used by {!link_and_persist} (bit 62) — exposed so
    recovery procedures and tests can strip it from persisted images. *)

val all_persistent :
  table_base:int -> table_slots:int -> unit -> t list
(** [plain; flit_adjacent; flit_hash; link_and_persist; skipit_hw] — the five
    compared series of Figs 14/15. *)
