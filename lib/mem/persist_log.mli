(** Ordered record of persist events — the observability needed to test the
    paper's §4 memory semantics (Fig. 5).

    The DRAM model reports every line-sized write (the moment data becomes
    durable) to an attached log.  Tests replay the three §4 scenarios and
    assert exactly what the semantics guarantee:

    - plain stores persist in {e no} particular order (writeback-cache
      eviction order);
    - [writeback(c)] orders only the earlier writes {e to c's line} before
      the writeback's completion, not other lines;
    - [writeback(c); fence()] orders them before everything the thread does
      after the fence. *)

type event = { addr : int; time : int; seq : int }
(** A line became durable: line base address, simulated completion cycle,
    and a global sequence number (ties in [time] are broken by arrival). *)

type t

val create : unit -> t

val record : t -> addr:int -> time:int -> unit
(** Called by the DRAM model on each durable line write. *)

val events : t -> event list
(** Chronological (sequence) order. *)

val persists_of : t -> addr:int -> event list
(** Events for one line (any address within it, 64 B lines). *)

(** Total answer to "did [a]'s line persist before [b]'s?" — a line that
    never persisted is reported explicitly instead of collapsing into
    [false] and relying on caller discipline. *)
type order =
  | Before  (** Both persisted; last persist of [a] ≤ first persist of [b]. *)
  | Not_before  (** Both persisted, but [a]'s last persist came later. *)
  | Never_persisted of { a : bool; b : bool }
      (** At least one line never persisted; the flags say which ones did. *)

val persisted_before : t -> int -> int -> order

val first_persist_time : t -> int -> int option
(** Completion cycle of the line's first persist, if any. *)

val last_persist_time : t -> int -> int option
(** Completion cycle of the line's most recent persist, if any. *)

val clear : t -> unit
val length : t -> int
