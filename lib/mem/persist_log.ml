type event = { addr : int; time : int; seq : int }

type t = { mutable rev_events : event list; mutable next_seq : int }

let create () = { rev_events = []; next_seq = 0 }

let line_base addr = addr land lnot 63

let record t ~addr ~time =
  t.rev_events <- { addr = line_base addr; time; seq = t.next_seq } :: t.rev_events;
  t.next_seq <- t.next_seq + 1

let events t = List.rev t.rev_events

let persists_of t ~addr =
  let base = line_base addr in
  List.filter (fun e -> e.addr = base) (events t)

let first_persist_time t addr =
  match persists_of t ~addr with [] -> None | e :: _ -> Some e.time

let last_persist_time t addr =
  match List.rev (persists_of t ~addr) with [] -> None | e :: _ -> Some e.time

type order =
  | Before
  | Not_before
  | Never_persisted of { a : bool; b : bool }

let persisted_before t a b =
  match last_persist_time t a, first_persist_time t b with
  | Some ta, Some tb -> if ta <= tb then Before else Not_before
  | la, lb ->
    Never_persisted { a = Option.is_some la; b = Option.is_some lb }

let clear t =
  t.rev_events <- [];
  t.next_seq <- 0

let length t = List.length t.rev_events
