open Skipit_sim
module Trace = Skipit_obs.Trace
module Attr = Skipit_obs.Attribution
module Metrics = Skipit_obs.Metrics

type t = {
  backing : Backing.t;
  channels : Resource.t;
  read_latency : int;
  write_latency : int;
  occupancy : int;
  line_bytes : int;
  mutable reads : int;
  mutable writes : int;
  mutable log : Persist_log.t option;
}

let create ~channels ~read_latency ~write_latency ~occupancy ~line_bytes =
  {
    backing = Backing.create ();
    channels = Resource.create ~count:channels "dram";
    read_latency;
    write_latency;
    occupancy;
    line_bytes;
    reads = 0;
    writes = 0;
    log = None;
  }

let line_bytes t = t.line_bytes

(* How long a request arriving at [now] would queue for a free channel —
   deterministic lookahead for the memside port's stall accounting. *)
let queue_wait t ~now = max 0 (Resource.earliest_free t.channels - now)

let read_line t ~addr ~now =
  t.reads <- t.reads + 1;
  let start = Resource.acquire_start t.channels ~now ~busy:t.occupancy in
  if Trace.enabled () then Trace.emit ~at:start (Trace.Dram { op = Trace.Dram_read; addr });
  if Metrics.enabled () then Metrics.count "dram.reads" ~at:start;
  Attr.mark Attr.Dram ~at:(start + t.read_latency);
  let data = Backing.read_line t.backing ~line_bytes:t.line_bytes addr in
  data, start + t.read_latency

let write_line t ~addr ~data ~now =
  t.writes <- t.writes + 1;
  let start = Resource.acquire_start t.channels ~now ~busy:t.occupancy in
  if Trace.enabled () then Trace.emit ~at:start (Trace.Dram { op = Trace.Dram_write; addr });
  if Metrics.enabled () then Metrics.count "dram.writes" ~at:start;
  Backing.write_line t.backing ~line_bytes:t.line_bytes addr data;
  let durable_at = start + t.write_latency in
  Attr.mark Attr.Dram ~at:durable_at;
  (match t.log with
   | Some log -> Persist_log.record log ~addr ~time:durable_at
   | None -> ());
  durable_at

let peek_word t addr = Backing.read_word t.backing addr
let poke_word t addr v = Backing.write_word t.backing addr v
let peek_line t ~addr = Backing.read_line t.backing ~line_bytes:t.line_bytes addr
let snapshot t = Backing.copy t.backing
let backing t = t.backing
let reads t = t.reads
let writes t = t.writes

let reset_timing t =
  Resource.reset t.channels;
  t.reads <- 0;
  t.writes <- 0

let channels t = t.channels

(* Power failure: contents survive (this IS the persistence domain), but
   channel occupancy from in-flight transactions does not.  Counters and
   the persist log are history, not state — they are kept. *)
let crash t = Resource.reset t.channels

let attach_log t log = t.log <- Some log
