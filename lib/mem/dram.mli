(** Timed DRAM model and persistence domain.

    Wraps a {!Backing} store with a channel-occupancy latency model (the
    FASED stand-in).  In the simulated machine the DRAM {e is} the
    persistence domain (§2.5): a value is persisted exactly when a line-sized
    write lands here.  Crash simulation therefore consists of discarding all
    cache state and reading whatever this module holds. *)

type t

val create :
  channels:int ->
  read_latency:int ->
  write_latency:int ->
  occupancy:int ->
  line_bytes:int ->
  t

val line_bytes : t -> int

val queue_wait : t -> now:int -> int
(** How long a request arriving at [now] would wait for a free channel (0
    when one is idle) — lookahead for port-level stall accounting; does not
    acquire anything. *)

val read_line : t -> addr:int -> now:int -> int array * int
(** [read_line t ~addr ~now] returns the line and the cycle at which the data
    is available to the requester-side of the memory controller. *)

val write_line : t -> addr:int -> data:int array -> now:int -> int
(** Returns the cycle at which the write is durable (acknowledged). *)

val peek_word : t -> int -> int
(** Untimed read of the persisted image — for tests and crash recovery. *)

val poke_word : t -> int -> int -> unit
(** Untimed write — for initialising test fixtures. *)

val peek_line : t -> addr:int -> int array

val snapshot : t -> Backing.t
(** Copy of the current persisted image. *)

val backing : t -> Backing.t
(** The live backing store (shared, not a copy). *)

val reads : t -> int
val writes : t -> int
(** Access counters for utilisation accounting. *)

val reset_timing : t -> unit
(** Clear channel occupancy and counters, keep contents. *)

val channels : t -> Skipit_sim.Resource.t
(** Channel occupancy tracker (audit/conservation checks). *)

val crash : t -> unit
(** Power failure: contents and counters survive (NVMM), in-flight channel
    occupancy is dropped. *)

val attach_log : t -> Persist_log.t -> unit
(** Record every durable line write into the log (at most one log). *)
