(* splitmix64 finalizer: the same mixer Skipit_sim.Rng is built on, used
   here as a stateless hash. *)
let mix64 x =
  let open Int64 in
  let x = logxor x (shift_right_logical x 30) in
  let x = mul x 0xbf58476d1ce4e5b9L in
  let x = logxor x (shift_right_logical x 27) in
  let x = mul x 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let golden = 0x9e3779b97f4a7c15L

type t = {
  n : int;
  points : int64 array;  (* sorted ring positions *)
  owners : int array;  (* owners.(i) owns points.(i) *)
  salt : int64;
}

let create ~shards ~vnodes ~seed =
  if shards < 1 then invalid_arg "Ring.create: shards must be >= 1";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be >= 1";
  let salt = mix64 (Int64.mul (Int64.of_int (seed + 1)) golden) in
  let pts =
    Array.init (shards * vnodes) (fun i ->
      let s = i / vnodes and v = i mod vnodes in
      let h =
        mix64
          (Int64.add salt
             (Int64.mul (Int64.of_int (((s + 1) * 65599) + v + 1)) golden))
      in
      (h, s))
  in
  (* Unsigned order, owner id as a deterministic tie-break (a 64-bit point
     collision is astronomically unlikely but must not make the sort
     order host-dependent). *)
  Array.sort
    (fun (a, sa) (b, sb) ->
      let c = Int64.unsigned_compare a b in
      if c <> 0 then c else compare sa sb)
    pts;
  {
    n = shards;
    points = Array.map fst pts;
    owners = Array.map snd pts;
    salt;
  }

let shards t = t.n

let key_point t key = mix64 (Int64.add t.salt (Int64.mul (Int64.of_int key) golden))

(* First ring index whose point is >= h (unsigned), wrapping to 0. *)
let search t h =
  let lo = ref 0 and hi = ref (Array.length t.points) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare t.points.(mid) h < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo >= Array.length t.points then 0 else !lo

let replicas t ~key ~k =
  let k = min k t.n in
  if k <= 0 then []
  else begin
    let len = Array.length t.points in
    let start = search t (key_point t key) in
    let seen = Array.make t.n false in
    let out = ref [] in
    let found = ref 0 in
    let i = ref 0 in
    while !found < k && !i < len do
      let s = t.owners.((start + !i) mod len) in
      if not seen.(s) then begin
        seen.(s) <- true;
        out := s :: !out;
        incr found
      end;
      incr i
    done;
    List.rev !out
  end

let owner t ~key = match replicas t ~key ~k:1 with s :: _ -> s | [] -> assert false
