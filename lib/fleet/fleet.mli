(** Sharded serving fleet: a consistent-hash router over N independent
    simulated systems, with K-way replication, crash-driven failover, and
    graceful degradation.

    The fleet is the "millions of users" layer over the PR-5 serving
    engine: each shard is its own {!Skipit_core.System} (one simulated
    domain) running a persistent structure behind a group-commit
    {!Skipit_serve.Batcher} and a bounded waiting room; the router
    consistent-hashes every key to [replicas] shards ({!Ring}) and drives
    the whole fleet from one open-loop {!Skipit_serve.Arrival} schedule in
    {e fleet time} (schedule cycles).  Shard service cost is measured by
    running each operation on the shard's own simulated hierarchy and
    charging the observed cycle delta, so fleet results inherit the
    simulator's timing model without coupling shard clocks to each other.

    Robustness machinery, all deterministic and seeded:
    - a fault schedule kills shards mid-run through
      {!Skipit_core.System.crash} (volatile state wiped, NVMM survives);
    - the router detects a dead shard on first contact after paying a
      [timeout] penalty, fails reads over to the next live replica, and
      hint-logs writes for the dead one (hinted handoff);
    - writes whose every executed replica died before commit are retried
      with capped exponential backoff plus seeded jitter; after
      [retry_max] attempts — or when the waiting room is full — the
      request is shed, never parked (graceful degradation, no hangs);
    - a detected shard is repaired through the PR-4 audit path (post-crash
      {!Skipit_audit.Invariant} sweep, then the structure's [repair]),
      replays its hint log, and only then re-admits traffic;
    - [served + shed + in_flight = issued] is asserted at every fleet
      checkpoint (crash, detection, re-admission, quiesce) and reported as
      {!Skipit_audit.Invariant.violation} records;
    - at quiesce, durable linearizability is verified fleet-wide against
      the completed-prefix oracle: acked writes applied in ack order must
      match every live replica's snapshot, with the campaign's "either
      way" amnesty for writes lost mid-crash (touched but never acked). *)

module Arrival = Skipit_serve.Arrival
module Workload = Skipit_serve.Workload

(** One scheduled shard kill, in fleet time. *)
type fault = { at : int; shard : int }

type fault_schedule =
  | No_faults
  | Kill of fault list  (** Explicit kill times, sorted or not. *)
  | Seeded of int  (** N kills at seeded times/shards mid-run. *)

val fault_schedule_name : fault_schedule -> string
val fault_schedule_of_name : string -> fault_schedule option
(** ["none"], ["rand:N"], or ["AT:SHARD\[,AT:SHARD\]"]. *)

type config = {
  shards : int;
  replicas : int;  (** Copies of every key, [1 <= replicas <= shards]. *)
  vnodes : int;  (** Ring virtual nodes per shard. *)
  kind : Skipit_pds.Set_ops.kind;
  mode : Skipit_persist.Pctx.mode;
  spec : Skipit_workload.Ds_bench.strategy_spec;
  process : Arrival.process;
  workload : Workload.t;
      (** Key popularity / churn shape ({!Skipit_serve.Workload}); skew
          concentrates traffic on few ring positions, stressing replica
          balance and per-shard admission. *)
  clients : int;
  requests : int;
  depth : int;  (** Waiting-room slots per shard. *)
  batch : int;  (** Group-commit epoch size per shard. *)
  linger : int;  (** Max cycles an epoch stays open short of [batch]. *)
  retry_max : int;
  backoff : int;  (** Base backoff in cycles; attempt i waits [backoff * 2^i]. *)
  backoff_cap : int;
  timeout : int;  (** Dead-shard detection penalty in cycles. *)
  fanout_pct : int;  (** Percent of reads that become multi-gets. *)
  fanout : int;  (** Sub-reads per multi-get. *)
  key_range : int;
  update_pct : int;
  prefill : int;
  seed : int;
  faults : fault_schedule;
  drop_persists : int option;
      (** Test-only injected fault: this shard's strategy silently elides
          every persist point — after it crashes, the fleet verifier must
          catch the durability violation. *)
}

val default : config
val validate : config -> (unit, string) result

type shard_stat = {
  s_id : int;
  s_state : string;  (** ["live"] (or a terminal anomaly) at quiesce. *)
  s_executed : int;  (** Operations run on this shard (incl. replication). *)
  s_commits : int;  (** Epochs committed. *)
  s_shed : int;  (** Requests shed at this shard's waiting room. *)
  s_crashes : int;
  s_hints : int;  (** Hinted-handoff writes replayed into this shard. *)
  s_recovery : int;  (** Cycles spent in audit + repair + hint replay. *)
  s_busy : int;  (** Service cycles executed. *)
}

type point = {
  offered : float;
  achieved : float;  (** Served ops per 1000 fleet cycles. *)
  served : int;
  shed : int;
  partial : int;  (** Multi-gets served with missing sub-reads. *)
  n : int;
  latency : Skipit_obs.Latency.summary option;  (** Intended-arrival → ack. *)
  dequeue_latency : Skipit_obs.Latency.summary option;  (** Service start → ack. *)
  gap : Skipit_obs.Latency.gap option;  (** Coordinated-omission gap. *)
  elapsed : int;
  failovers : int;  (** Requests served by a non-primary replica. *)
  crashes : int;
  repairs : int;  (** Detection → audit/repair → re-admission cycles run. *)
  recovery_cycles : int;
  retries : int;
  hints : int;
  checkpoints : int;  (** Conservation checkpoints evaluated. *)
  violations : string list;
      (** Conservation, post-crash invariant, and durability failures;
          empty on a healthy run. *)
  leaked : int;  (** Waiting-room slots still held at quiesce (must be 0). *)
  shards : shard_stat array;
}

val shed_fraction : point -> float

val run : config -> rate:float -> point
(** One fleet run at [rate] offered ops per 1000 cycles.  Deterministic:
    equal configurations give equal points, at any [--jobs] width. *)

val sweep : ?pool:Skipit_par.Pool.t -> config -> rates:float list -> point list

(** {1 Failure reproducers} *)

val write_reproducer : string -> config -> rate:float -> unit
(** Key=value reproducer file, campaign-style. *)

val read_reproducer : string -> (config * float, string) result

val shrink : config -> rate:float -> config * point
(** Greedily shrink [requests] while the run still reports violations;
    returns the smallest failing config and its point (the input config's
    point if it does not fail at all). *)
