module S = Skipit_core.System
module T = Skipit_core.Thread
module C = Skipit_core.Config
module Params = Skipit_cache.Params
module Strategy = Skipit_persist.Strategy
module Pctx = Skipit_persist.Pctx
module Ops = Skipit_pds.Set_ops
module Rng = Skipit_sim.Rng
module Sample = Skipit_sim.Stats.Sample
module Trace = Skipit_obs.Trace
module Latency = Skipit_obs.Latency
module Pool = Skipit_par.Pool
module Ds_bench = Skipit_workload.Ds_bench
module Arrival = Skipit_serve.Arrival
module Workload = Skipit_serve.Workload
module Batcher = Skipit_serve.Batcher
module Invariant = Skipit_audit.Invariant

(* ------------------------------------------------------------------ *)
(* Fault schedules.                                                   *)

type fault = { at : int; shard : int }

type fault_schedule = No_faults | Kill of fault list | Seeded of int

let fault_schedule_name = function
  | No_faults -> "none"
  | Seeded n -> Printf.sprintf "rand:%d" n
  | Kill fs ->
    String.concat "," (List.map (fun f -> Printf.sprintf "%d:%d" f.at f.shard) fs)

let fault_schedule_of_name s =
  match s with
  | "none" | "" -> Some No_faults
  | _ ->
    if String.length s > 5 && String.sub s 0 5 = "rand:" then
      match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some n when n >= 1 -> Some (Seeded n)
      | _ -> None
    else begin
      let parse_one part =
        match String.split_on_char ':' part with
        | [ a; b ] -> (
          match int_of_string_opt a, int_of_string_opt b with
          | Some at, Some shard when at >= 0 && shard >= 0 -> Some { at; shard }
          | _ -> None)
        | _ -> None
      in
      let parts = String.split_on_char ',' s in
      let fs = List.filter_map parse_one parts in
      if List.length fs = List.length parts && fs <> [] then Some (Kill fs) else None
    end

(* ------------------------------------------------------------------ *)
(* Configuration.                                                     *)

type config = {
  shards : int;
  replicas : int;
  vnodes : int;
  kind : Ops.kind;
  mode : Pctx.mode;
  spec : Ds_bench.strategy_spec;
  process : Arrival.process;
  workload : Workload.t;
  clients : int;
  requests : int;
  depth : int;
  batch : int;
  linger : int;
  retry_max : int;
  backoff : int;
  backoff_cap : int;
  timeout : int;
  fanout_pct : int;
  fanout : int;
  key_range : int;
  update_pct : int;
  prefill : int;
  seed : int;
  faults : fault_schedule;
  drop_persists : int option;
}

let default =
  {
    shards = 4;
    replicas = 2;
    vnodes = 16;
    kind = Ops.Hash_set;
    mode = Pctx.Automatic;
    spec = Ds_bench.Skipit;
    process = Arrival.Poisson;
    workload = Workload.default;
    clients = 1024;
    requests = 2000;
    depth = 48;
    batch = 8;
    linger = 600;
    retry_max = 5;
    backoff = 200;
    backoff_cap = 3200;
    timeout = 400;
    fanout_pct = 10;
    fanout = 4;
    key_range = 1024;
    update_pct = 20;
    prefill = 512;
    seed = 11;
    faults = No_faults;
    drop_persists = None;
  }

let validate cfg =
  let check cond msg = if cond then Error msg else Ok () in
  let ( >>= ) r f = Result.bind r (fun () -> f ()) in
  check (cfg.shards <= 0) "shards must be positive"
  >>= fun () -> check (cfg.replicas <= 0 || cfg.replicas > cfg.shards)
                  "replicas must be in [1, shards]"
  >>= fun () -> check (cfg.vnodes <= 0) "vnodes must be positive"
  >>= fun () -> check (cfg.clients <= 0) "clients must be positive"
  >>= fun () -> check (cfg.requests <= 0) "requests must be positive"
  >>= fun () -> check (cfg.depth <= 0) "depth must be positive"
  >>= fun () -> check (cfg.batch <= 0) "batch must be positive"
  >>= fun () -> check (cfg.linger <= 0) "linger must be positive"
  >>= fun () -> check (cfg.retry_max < 0) "retry-max must be non-negative"
  >>= fun () -> check (cfg.backoff <= 0) "backoff must be positive"
  >>= fun () -> check (cfg.backoff_cap < cfg.backoff) "backoff-cap must be >= backoff"
  >>= fun () -> check (cfg.timeout <= 0) "timeout must be positive"
  >>= fun () -> check (cfg.fanout_pct < 0 || cfg.fanout_pct > 100)
                  "fanout-pct must be in [0,100]"
  >>= fun () -> check (cfg.fanout <= 0) "fanout must be positive"
  >>= fun () -> check (cfg.key_range <= 0) "key-range must be positive"
  >>= fun () -> check (cfg.update_pct < 0 || cfg.update_pct > 100)
                  "update-pct must be in [0,100]"
  >>= fun () -> check (cfg.prefill < 0) "prefill must be non-negative"
  >>= fun () ->
  (match Workload.validate cfg.workload ~key_range:cfg.key_range with
   | Ok () -> Ok ()
   | Error e -> Error e)
  >>= fun () ->
  check
    (not (Ds_bench.compatible cfg.kind cfg.spec))
    (Printf.sprintf "%s is incompatible with %s (word-bit conflict)"
       (Ds_bench.spec_name cfg.spec) (Ops.kind_name cfg.kind))
  >>= fun () ->
  check
    (cfg.faults <> No_faults && cfg.spec = Ds_bench.Baseline)
    "the non-persistent baseline cannot survive a fault schedule"
  >>= fun () ->
  check
    (match cfg.drop_persists with Some s -> s < 0 || s >= cfg.shards | None -> false)
    "drop-persists shard out of range"
  >>= fun () ->
  check
    (match cfg.faults with
     | Kill fs -> List.exists (fun f -> f.shard < 0 || f.shard >= cfg.shards) fs
     | _ -> false)
    "fault schedule names a shard out of range"

(* ------------------------------------------------------------------ *)
(* Results.                                                           *)

type shard_stat = {
  s_id : int;
  s_state : string;
  s_executed : int;
  s_commits : int;
  s_shed : int;
  s_crashes : int;
  s_hints : int;
  s_recovery : int;
  s_busy : int;
}

type point = {
  offered : float;
  achieved : float;
  served : int;
  shed : int;
  partial : int;
  n : int;
  latency : Latency.summary option;
  dequeue_latency : Latency.summary option;
  gap : Latency.gap option;
  elapsed : int;
  failovers : int;
  crashes : int;
  repairs : int;
  recovery_cycles : int;
  retries : int;
  hints : int;
  checkpoints : int;
  violations : string list;
  leaked : int;
  shards : shard_stat array;
}

let shed_fraction p = if p.n = 0 then 0. else float_of_int p.shed /. float_of_int p.n

(* ------------------------------------------------------------------ *)
(* A deterministic binary min-heap keyed (time, insertion stamp), so    *)
(* same-time events process in creation order on every run.            *)

module Pq = struct
  type 'a t = {
    mutable a : (int * int * 'a) array;
    mutable n : int;
    mutable stamp : int;
    dummy : int * int * 'a;
  }

  let create dummy = { a = Array.make 64 (0, 0, dummy); n = 0; stamp = 0; dummy = (0, 0, dummy) }
  let length q = q.n

  let less (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

  let push q t v =
    if q.n = Array.length q.a then begin
      let a' = Array.make (2 * q.n) q.dummy in
      Array.blit q.a 0 a' 0 q.n;
      q.a <- a'
    end;
    let e = (t, q.stamp, v) in
    q.stamp <- q.stamp + 1;
    let i = ref q.n in
    q.n <- q.n + 1;
    q.a.(!i) <- e;
    while !i > 0 && less q.a.(!i) q.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = q.a.(p) in
      q.a.(p) <- q.a.(!i);
      q.a.(!i) <- tmp;
      i := p
    done

  let peek q = if q.n = 0 then None else let t, _, v = q.a.(0) in Some (t, v)

  let pop q =
    let t, _, v = q.a.(0) in
    q.n <- q.n - 1;
    q.a.(0) <- q.a.(q.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < q.n && less q.a.(l) q.a.(!m) then m := l;
      if r < q.n && less q.a.(r) q.a.(!m) then m := r;
      if !m = !i then continue := false
      else begin
        let tmp = q.a.(!m) in
        q.a.(!m) <- q.a.(!i);
        q.a.(!i) <- tmp;
        i := !m
      end
    done;
    (t, v)
end

(* ------------------------------------------------------------------ *)
(* Per-shard state.                                                   *)

type shard_phase =
  | Live
  | Dead  (* crashed, not yet noticed by the router *)
  | Repairing  (* detected; audited + repaired; re-admitted at [readmit] *)

(* One replicated write in flight: shared by every shard epoch that holds
   it.  [m_waits] counts executed-but-uncommitted replicas; the request
   resolves when it reaches 0. *)
type member = {
  m_req : int;
  mutable m_waits : int;
  mutable m_committed : int;
  mutable m_ack : int;  (* max commit finish over replicas: the linearization stamp *)
}

type shard = {
  sid : int;
  sys : S.t;
  strat : Strategy.t;
  h : Ops.handle;
  mutable b : Batcher.t;
  mutable phase : shard_phase;
  mutable readmit : int;
  mutable busy_until : int;
  mutable occ : int;
  mutable epoch : member list;  (* newest first *)
  mutable epoch_n : int;
  mutable epoch_deadline : int;
  hints : (Arrival.op * int) Queue.t;
  mutable executed : int;
  mutable commits : int;
  mutable shed_full : int;
  mutable crashes : int;
  mutable hints_replayed : int;
  mutable recovery : int;
  mutable busy_cycles : int;
}

type status = Pending | Served | Shed

type req_state = {
  idx : int;
  mutable status : status;
  mutable ack : int;
  mutable lin : int;  (* last replica commit time: the model-order stamp *)
  mutable svc_start : int;
  mutable attempts : int;
  mutable touched : bool;
  mutable is_partial : bool;
}

(* ------------------------------------------------------------------ *)

let run_task sys f = ignore (T.run sys [ { T.core = 0; body = f } ])

let drop_persists_fault (s : Strategy.t) =
  { s with name = s.name ^ "+drop-persists"; persist_store = (fun _ -> ()) }

(* The prefilled key set: every (key_range/prefill)-th key, as in the
   serving engine.  Both the shards and the oracle derive it from the
   config alone. *)
let prefill_keys cfg =
  if cfg.prefill = 0 then [||]
  else begin
    let step = max 1 (cfg.key_range / max 1 cfg.prefill) in
    Array.init (cfg.key_range / step) (fun i -> 1 + (i * step))
  end

let realize_faults cfg ~rate =
  let fs =
    match cfg.faults with
    | No_faults -> []
    | Kill fs -> fs
    | Seeded n ->
      let horizon = max 1000 (int_of_float (float_of_int cfg.requests *. 1000. /. rate)) in
      let rng = Rng.create ~seed:(cfg.seed + 5) in
      List.init n (fun _ ->
        let at = Rng.int_in rng ~lo:(horizon / 5) ~hi:(max (horizon / 5) (4 * horizon / 5)) in
        { at; shard = Rng.int rng cfg.shards })
  in
  let a = Array.of_list fs in
  Array.sort (fun f1 f2 -> compare (f1.at, f1.shard) (f2.at, f2.shard)) a;
  a

let run cfg ~rate =
  (match validate cfg with
   | Ok () -> ()
   | Error e -> invalid_arg ("Fleet.run: " ^ e));
  if rate <= 0. then invalid_arg "Fleet.run: rate must be positive";
  let ring = Ring.create ~shards:cfg.shards ~vnodes:cfg.vnodes ~seed:cfg.seed in
  let route key = Ring.replicas ring ~key ~k:cfg.replicas in
  let group = cfg.batch > 1 in
  let pre = prefill_keys cfg in
  (* Build every shard: its own tiny system, strategy, structure, batcher;
     prefill it with the keys it owns and fence so the base state is
     durable (the oracle's ground truth must survive any crash). *)
  let make_shard sid =
    let params =
      { (C.tiny ~cores:1 ()) with
        Params.skip_it = Ds_bench.wants_skip_it_hw cfg.spec }
    in
    let sys = S.create params in
    (* Setup (structure skeleton + prefill) always persists properly — the
       drop-persists fault, like the campaign's, applies to post-setup
       operation only, so a crash exposes lost updates, not a garbage
       skeleton. *)
    let clean = Ds_bench.realize cfg.spec sys in
    let strat = if cfg.drop_persists = Some sid then drop_persists_fault clean else clean in
    let setup_pctx = Pctx.make clean cfg.mode in
    let handle = ref None in
    let buckets = max 16 (cfg.key_range / 4) in
    run_task sys (fun () ->
      let h = Ops.create_sized cfg.kind ~buckets setup_pctx (S.allocator sys) in
      let keys = Array.copy pre in
      Rng.shuffle (Rng.create ~seed:(cfg.seed + sid)) keys;
      Array.iter
        (fun k ->
          if List.mem sid (route k) then ignore (h.Ops.insert setup_pctx k))
        keys;
      strat.Strategy.fence ();
      handle := Some h);
    {
      sid;
      sys;
      strat;
      h = Option.get !handle;
      b = Batcher.create ~group ~strategy:strat ~mode:cfg.mode ();
      phase = Live;
      readmit = 0;
      busy_until = 0;
      occ = 0;
      epoch = [];
      epoch_n = 0;
      epoch_deadline = 0;
      hints = Queue.create ();
      executed = 0;
      commits = 0;
      shed_full = 0;
      crashes = 0;
      hints_replayed = 0;
      recovery = 0;
      busy_cycles = 0;
    }
  in
  let shards = Array.init cfg.shards make_shard in
  let draw =
    Workload.draw cfg.workload ~key_range:cfg.key_range
      ~update_pct:cfg.update_pct ~seed:(cfg.seed + 2)
  in
  let sched =
    Arrival.schedule ~process:cfg.process ~draw ~rate ~clients:cfg.clients
      ~requests:cfg.requests ~key_range:cfg.key_range ~update_pct:cfg.update_pct
      ~seed:(cfg.seed + 1) ()
  in
  let n = Array.length sched in
  let reqs =
    Array.init n (fun idx ->
      { idx; status = Pending; ack = 0; lin = 0; svc_start = -1; attempts = 0;
        touched = false; is_partial = false })
  in
  (* Which reads fan out into multi-gets: drawn once, in schedule order, so
     a retry sees the same classification. *)
  let multi =
    let frng = Rng.create ~seed:(cfg.seed + 4) in
    Array.init n (fun _ -> Rng.int frng 100 < cfg.fanout_pct)
  in
  let jitter_rng = Rng.create ~seed:(cfg.seed + 3) in
  let backoff_delay attempt =
    min cfg.backoff_cap (cfg.backoff lsl min attempt 20)
    + Rng.int jitter_rng (max 1 (cfg.backoff / 2))
  in
  (* Fleet-time event machinery. *)
  let releases : int Pq.t = Pq.create 0 in  (* (free time, shard id) *)
  let retry_q : int Pq.t = Pq.create 0 in  (* (due time, request idx) *)
  let faults = realize_faults cfg ~rate in
  let fault_i = ref 0 in
  (* Counters. *)
  let issued = ref 0 and served = ref 0 and shed = ref 0 and partial = ref 0 in
  let failovers = ref 0 and crashes = ref 0 and repairs = ref 0 in
  let recovery_cycles = ref 0 and retries = ref 0 and hints_total = ref 0 in
  let checkpoints = ref 0 in
  let dispatching = ref 0 in
  let t_end = ref 0 in
  let violations = ref [] in
  let n_violations = ref 0 in
  let violation v =
    incr n_violations;
    if !n_violations <= 64 then violations := Invariant.violation_to_string v :: !violations
  in
  let lat = Sample.create () and dlat = Sample.create () in
  let bump_end t = if t > !t_end then t_end := t in
  let drain_releases t =
    let continue = ref true in
    while !continue do
      match Pq.peek releases with
      | Some (u, sid) when u <= t ->
        ignore (Pq.pop releases);
        shards.(sid).occ <- shards.(sid).occ - 1
      | _ -> continue := false
    done
  in
  (* served + shed + in_flight = issued, where in_flight is counted
     independently: distinct pending epoch members, queued retries, and the
     one request mid-dispatch.  Checked at every crash, detection,
     re-admission and at quiesce. *)
  let checkpoint ~at what =
    incr checkpoints;
    let pending = !issued - !served - !shed in
    let seen = Hashtbl.create 64 in
    Array.iter
      (fun s ->
        List.iter
          (fun m ->
            if reqs.(m.m_req).status = Pending then Hashtbl.replace seen m.m_req ())
          s.epoch)
      shards;
    let tracked = Hashtbl.length seen + Pq.length retry_q + !dispatching in
    if pending <> tracked then
      violation
        (Invariant.make ~rule:"fleet-conservation"
           (Printf.sprintf
              "at %s (cycle %d): issued %d - served %d - shed %d = %d in flight, but \
               %d tracked (%d epoch members, %d retries, %d dispatching)"
              what at !issued !served !shed pending tracked (Hashtbl.length seen)
              (Pq.length retry_q) !dispatching))
  in
  let exec s f =
    let c0 = S.max_clock s.sys in
    run_task s.sys f;
    let d = S.max_clock s.sys - c0 in
    s.executed <- s.executed + 1;
    s.busy_cycles <- s.busy_cycles + d;
    d
  in
  let apply_op pctx (h : Ops.handle) op key =
    match op with
    | Arrival.Insert -> ignore (h.Ops.insert pctx key : bool)
    | Arrival.Delete -> ignore (h.Ops.delete pctx key : bool)
    | Arrival.Contains -> ignore (h.Ops.contains pctx key : bool)
  in
  let resolve_served r ~ack ~lin ~key ~primary =
    r.status <- Served;
    r.ack <- ack;
    r.lin <- lin;
    incr served;
    bump_end ack;
    let arrival = sched.(r.idx).Arrival.arrival in
    Sample.add_int lat (ack - arrival);
    if r.svc_start >= 0 then Sample.add_int dlat (ack - r.svc_start);
    let rid = Trace.req_start ~at:arrival ~cls:Trace.Cls_fleet ~core:primary ~addr:key in
    Trace.req_end ~at:ack rid
  in
  let resolve_shed r ~at =
    r.status <- Shed;
    r.ack <- at;
    incr shed;
    bump_end at
  in
  let resolve_member m =
    let r = reqs.(m.m_req) in
    if r.status = Pending then begin
      let key = sched.(m.m_req).Arrival.key in
      if m.m_committed > 0 then
        resolve_served r ~ack:m.m_ack ~lin:m.m_ack ~key
          ~primary:(match route key with p :: _ -> p | [] -> 0)
      else assert false  (* waits hit 0 without commits only via crash, handled there *)
    end
  in
  let commit_shard s ~at =
    if s.epoch_n > 0 then begin
      let start = max at s.busy_until in
      let c0 = S.max_clock s.sys in
      run_task s.sys (fun () -> Batcher.commit s.b);
      let d = S.max_clock s.sys - c0 in
      let f = start + d in
      s.busy_until <- f;
      s.busy_cycles <- s.busy_cycles + d;
      s.commits <- s.commits + 1;
      let members = List.rev s.epoch in
      s.epoch <- [];
      s.epoch_n <- 0;
      List.iter
        (fun m ->
          Pq.push releases f s.sid;
          m.m_waits <- m.m_waits - 1;
          m.m_committed <- m.m_committed + 1;
          if f > m.m_ack then m.m_ack <- f;
          if m.m_waits = 0 then resolve_member m)
        members;
      bump_end f
    end
  in
  let lazy_commits t =
    Array.iter
      (fun s ->
        if s.phase = Live && s.epoch_n > 0 && s.epoch_deadline <= t then
          commit_shard s ~at:s.epoch_deadline)
      shards
  in
  let schedule_retry ridx ~at =
    incr retries;
    Pq.push retry_q at ridx
  in
  let crash_shard f =
    let s = shards.(f.shard) in
    S.crash s.sys;
    s.crashes <- s.crashes + 1;
    incr crashes;
    (* the open epoch (volatile, unfenced) dies with the shard *)
    let lost = List.rev s.epoch in
    s.epoch <- [];
    s.occ <- s.occ - s.epoch_n;
    s.epoch_n <- 0;
    s.b <- Batcher.create ~group ~strategy:s.strat ~mode:cfg.mode ();
    s.phase <- Dead;
    s.busy_until <- f.at;
    bump_end f.at;
    List.iter
      (fun m ->
        let req = sched.(m.m_req) in
        (* this shard lost its (uncommitted) copy: hint it for replay *)
        Queue.add (req.Arrival.op, req.Arrival.key) s.hints;
        m.m_waits <- m.m_waits - 1;
        if m.m_waits = 0 then begin
          let r = reqs.(m.m_req) in
          if r.status = Pending then
            if m.m_committed > 0 then
              (* durable on other replicas; the client ack rides the
                 replication timeout instead of the dead shard's commit *)
              resolve_served r ~ack:(max m.m_ack (f.at + cfg.timeout)) ~lin:m.m_ack
                ~key:req.Arrival.key
                ~primary:(match route req.Arrival.key with p :: _ -> p | [] -> 0)
            else if r.attempts >= cfg.retry_max then
              resolve_shed r ~at:(f.at + cfg.timeout)
            else begin
              r.attempts <- r.attempts + 1;
              schedule_retry m.m_req
                ~at:(f.at + cfg.timeout + backoff_delay (r.attempts - 1))
            end
        end)
      lost;
    checkpoint ~at:f.at "crash"
  in
  (* First contact with a dead shard: the router pays [timeout], then runs
     the PR-4 recovery path — post-crash invariant sweep, structure repair,
     epoch commit — and schedules re-admission. *)
  let detect s ~at =
    incr repairs;
    List.iter
      (fun v ->
        violation
          (Invariant.make ~rule:("shard-" ^ string_of_int s.sid ^ "/" ^ v.Invariant.rule)
             ?addr:v.Invariant.addr v.Invariant.detail))
      (Invariant.check_all ~quiesced:true s.sys);
    let c0 = S.max_clock s.sys in
    run_task s.sys (fun () ->
      ignore (s.h.Ops.repair (Batcher.pctx s.b) : int);
      Batcher.commit s.b);
    let d = S.max_clock s.sys - c0 in
    s.recovery <- s.recovery + d;
    recovery_cycles := !recovery_cycles + d;
    s.phase <- Repairing;
    s.readmit <- at + cfg.timeout + d;
    s.busy_until <- s.readmit;
    bump_end s.readmit;
    checkpoint ~at "detect"
  in
  (* Re-admission: replay the hint log (writes the shard missed while down)
     through the structure and commit, then take traffic again. *)
  let readmit_shard s ~at =
    if not (Queue.is_empty s.hints) then begin
      let count = Queue.length s.hints in
      let c0 = S.max_clock s.sys in
      run_task s.sys (fun () ->
        let pctx = Batcher.pctx s.b in
        Queue.iter (fun (op, key) -> apply_op pctx s.h op key) s.hints;
        Batcher.commit s.b);
      Queue.clear s.hints;
      let d = S.max_clock s.sys - c0 in
      s.recovery <- s.recovery + d;
      recovery_cycles := !recovery_cycles + d;
      s.hints_replayed <- s.hints_replayed + count;
      hints_total := !hints_total + count;
      s.busy_until <- max s.busy_until at + d
    end;
    s.phase <- Live;
    bump_end at;
    checkpoint ~at "readmit"
  in
  let join_epoch s m ~start =
    if s.epoch_n = 0 then s.epoch_deadline <- start + cfg.linger;
    s.epoch <- m :: s.epoch;
    s.epoch_n <- s.epoch_n + 1;
    s.occ <- s.occ + 1;
    if s.epoch_n >= min cfg.batch cfg.depth then commit_shard s ~at:s.busy_until
  in
  (* Walk a key's replica set from fleet time [t]: re-admit repaired shards
     whose time has come, detect dead ones (paying [timeout] each), and
     return the first shard that can serve a read. *)
  let rec walk_read t = function
    | [] -> `Down t
    | sid :: rest -> (
      let s = shards.(sid) in
      if s.phase = Repairing && t >= s.readmit then readmit_shard s ~at:t;
      match s.phase with
      | Dead ->
        detect s ~at:t;
        walk_read (t + cfg.timeout) rest
      | Repairing -> walk_read t rest
      | Live ->
        drain_releases t;
        if s.occ >= cfg.depth then `Full (s, t) else `Serve (s, t))
  in
  let classify_write t rt =
    let t_eff = ref t in
    let live = ref [] and down = ref [] in
    List.iter
      (fun sid ->
        let s = shards.(sid) in
        if s.phase = Repairing && !t_eff >= s.readmit then readmit_shard s ~at:!t_eff;
        match s.phase with
        | Dead ->
          detect s ~at:!t_eff;
          t_eff := !t_eff + cfg.timeout;
          down := s :: !down
        | Repairing -> down := s :: !down
        | Live -> live := s :: !live)
      rt;
    (List.rev !live, List.rev !down, !t_eff)
  in
  let exec_read s key ~at =
    let start = max at s.busy_until in
    let d = exec s (fun () -> ignore (s.h.Ops.contains (Batcher.pctx s.b) key : bool)) in
    let fin = start + d in
    s.busy_until <- fin;
    s.occ <- s.occ + 1;
    Pq.push releases fin s.sid;
    (start, fin)
  in
  let dispatch_write r ~at =
    let req = sched.(r.idx) in
    let key = req.Arrival.key in
    let rt = route key in
    let primary = match rt with p :: _ -> p | [] -> 0 in
    let live, down, t_eff = classify_write at rt in
    match live with
    | [] ->
      if r.attempts >= cfg.retry_max then resolve_shed r ~at:t_eff
      else begin
        r.attempts <- r.attempts + 1;
        schedule_retry r.idx ~at:(t_eff + backoff_delay (r.attempts - 1))
      end
    | s0 :: _ ->
      drain_releases t_eff;
      if s0.occ >= cfg.depth then begin
        s0.shed_full <- s0.shed_full + 1;
        resolve_shed r ~at:t_eff
      end
      else begin
        if s0.sid <> primary then incr failovers;
        r.touched <- true;
        let m = { m_req = r.idx; m_waits = List.length live; m_committed = 0; m_ack = 0 } in
        List.iter
          (fun s ->
            let start = max t_eff s.busy_until in
            if r.svc_start < 0 then r.svc_start <- start;
            let d =
              exec s (fun () -> apply_op (Batcher.pctx s.b) s.h req.Arrival.op key)
            in
            s.busy_until <- start + d;
            join_epoch s m ~start)
          live;
        List.iter (fun s -> Queue.add (req.Arrival.op, key) s.hints) down
      end
  in
  let dispatch_read r ~at =
    let req = sched.(r.idx) in
    let key = req.Arrival.key in
    let rt = route key in
    let primary = match rt with p :: _ -> p | [] -> 0 in
    match walk_read at rt with
    | `Serve (s, t_eff) ->
      if s.sid <> primary then incr failovers;
      let start, fin = exec_read s key ~at:t_eff in
      if r.svc_start < 0 then r.svc_start <- start;
      resolve_served r ~ack:fin ~lin:fin ~key ~primary
    | `Full (s, t_eff) ->
      s.shed_full <- s.shed_full + 1;
      resolve_shed r ~at:t_eff
    | `Down t_eff ->
      if r.attempts >= cfg.retry_max then resolve_shed r ~at:t_eff
      else begin
        r.attempts <- r.attempts + 1;
        schedule_retry r.idx ~at:(t_eff + backoff_delay (r.attempts - 1))
      end
  in
  (* Multi-get: [fanout] sub-reads fanned out concurrently over derived
     keys; the request completes at the slowest sub-read.  Sub-reads that
     find every replica down (or a full waiting room) are dropped and the
     result is partial — degraded, never blocked. *)
  let dispatch_multi r ~at =
    let req = sched.(r.idx) in
    let base = req.Arrival.key in
    let step = max 1 (cfg.key_range / cfg.fanout) in
    let best_ack = ref (-1) in
    let missing = ref 0 in
    for j = 0 to cfg.fanout - 1 do
      let key = 1 + ((base - 1 + (j * step)) mod cfg.key_range) in
      let rt = route key in
      let primary = match rt with p :: _ -> p | [] -> 0 in
      match walk_read at rt with
      | `Serve (s, t_eff) ->
        if s.sid <> primary then incr failovers;
        let start, fin = exec_read s key ~at:t_eff in
        if r.svc_start < 0 then r.svc_start <- start;
        if fin > !best_ack then best_ack := fin
      | `Full (s, _) ->
        s.shed_full <- s.shed_full + 1;
        incr missing
      | `Down _ -> incr missing
    done;
    if !best_ack < 0 then resolve_shed r ~at
    else begin
      if !missing > 0 then begin
        r.is_partial <- true;
        incr partial
      end;
      let primary = match route base with p :: _ -> p | [] -> 0 in
      resolve_served r ~ack:!best_ack ~lin:!best_ack ~key:base ~primary
    end
  in
  let dispatch idx ~at =
    let r = reqs.(idx) in
    match sched.(idx).Arrival.op with
    | Arrival.Insert | Arrival.Delete -> dispatch_write r ~at
    | Arrival.Contains -> if multi.(idx) then dispatch_multi r ~at else dispatch_read r ~at
  in
  (* Process every crash and due retry with time <= t, in time order
     (crashes win ties), committing lingering epochs as the clock passes
     their deadlines. *)
  let rec advance t =
    let nf = if !fault_i < Array.length faults then Some faults.(!fault_i).at else None in
    let nr = match Pq.peek retry_q with Some (u, _) -> Some u | None -> None in
    match nf, nr with
    | Some tf, _ when tf <= t && (match nr with Some u -> tf <= u | None -> true) ->
      let f = faults.(!fault_i) in
      incr fault_i;
      lazy_commits f.at;
      crash_shard f;
      advance t
    | _, Some u when u <= t ->
      let _, ridx = Pq.pop retry_q in
      lazy_commits u;
      drain_releases u;
      dispatching := 1;
      dispatch ridx ~at:u;
      dispatching := 0;
      advance t
    | _ ->
      lazy_commits t;
      drain_releases t
  in
  (* ---------------- main loop ---------------- *)
  for idx = 0 to n - 1 do
    let at = sched.(idx).Arrival.arrival in
    advance at;
    dispatch idx ~at;
    incr issued
  done;
  (* Quiesce: drain every remaining fault and retry, close every epoch,
     then force still-down shards through detection/re-admission so the
     whole fleet is live (and hint logs are empty) for verification. *)
  advance max_int;
  Array.iter
    (fun s ->
      match s.phase with
      | Dead ->
        let at = max !t_end s.busy_until in
        detect s ~at;
        readmit_shard s ~at:s.readmit
      | Repairing -> readmit_shard s ~at:(max s.readmit !t_end)
      | Live -> ())
    shards;
  advance max_int;
  drain_releases max_int;
  checkpoint ~at:!t_end "quiesce";
  let hung = !issued - !served - !shed in
  if hung <> 0 then
    violation
      (Invariant.make ~rule:"fleet-hang"
         (Printf.sprintf "%d request(s) neither served nor shed at quiesce" hung));
  let leaked = Array.fold_left (fun acc s -> acc + s.occ) 0 shards in
  if leaked <> 0 then
    violation
      (Invariant.make ~rule:"fleet-leak"
         (Printf.sprintf "%d waiting-room slot(s) still held at quiesce" leaked));
  (* Structural invariants on every (now quiesced, repaired) shard. *)
  Array.iter
    (fun s ->
      List.iter
        (fun v ->
          violation
            (Invariant.make
               ~rule:("shard-" ^ string_of_int s.sid ^ "/" ^ v.Invariant.rule)
               ?addr:v.Invariant.addr v.Invariant.detail))
        (Invariant.check_all ~quiesced:true s.sys))
    shards;
  (* ---------------- durable-linearizability oracle ----------------
     Replay acked writes in linearization order over the prefilled model;
     every replica of every key must agree, except keys written by a
     touched-but-shed request (lost mid-crash: "either way" amnesty). *)
  let model = Hashtbl.create 256 in
  Array.iter (fun k -> Hashtbl.replace model k true) pre;
  let writes =
    Array.to_list reqs
    |> List.filter_map (fun r ->
         let req = sched.(r.idx) in
         match req.Arrival.op with
         | Arrival.Insert | Arrival.Delete when r.status = Served ->
           Some (r.lin, r.idx, req.Arrival.op, req.Arrival.key)
         | _ -> None)
    |> List.sort compare
  in
  List.iter
    (fun (_, _, op, key) ->
      Hashtbl.replace model key (op = Arrival.Insert))
    writes;
  let amnesty = Hashtbl.create 64 in
  Array.iter
    (fun r ->
      let req = sched.(r.idx) in
      match req.Arrival.op with
      | (Arrival.Insert | Arrival.Delete) when r.touched && r.status = Shed ->
        Hashtbl.replace amnesty req.Arrival.key ()
      | _ -> ())
    reqs;
  let snaps =
    Array.map
      (fun s ->
        let tbl = Hashtbl.create 256 in
        List.iter
          (fun k ->
            Hashtbl.replace tbl k ();
            if k < 1 || k > cfg.key_range then
              violation
                (Invariant.make ~rule:"fleet-durability"
                   (Printf.sprintf "shard %d holds out-of-range key %d" s.sid k))
            else if not (List.mem s.sid (route k)) then
              violation
                (Invariant.make ~rule:"fleet-durability"
                   (Printf.sprintf "shard %d holds key %d it does not replicate" s.sid k)))
          (s.h.Ops.snapshot s.sys);
        tbl)
      shards
  in
  for key = 1 to cfg.key_range do
    if not (Hashtbl.mem amnesty key) then begin
      let expected = Hashtbl.find_opt model key = Some true in
      List.iter
        (fun sid ->
          let actual = Hashtbl.mem snaps.(sid) key in
          if actual <> expected then
            violation
              (Invariant.make ~rule:"fleet-durability" ~addr:key
                 (Printf.sprintf
                    "key %d %s on shard %d but the acked-prefix model says %s" key
                    (if actual then "present" else "missing")
                    sid
                    (if expected then "present" else "absent"))))
        (route key)
    end
  done;
  let violations =
    let base = List.rev !violations in
    if !n_violations > 64 then
      base @ [ Printf.sprintf "... (%d more violations suppressed)" (!n_violations - 64) ]
    else base
  in
  let latency = Latency.summarize lat in
  let dequeue_latency = Latency.summarize dlat in
  let gap =
    match latency, dequeue_latency with
    | Some i, Some r -> Some (Latency.gap ~intended:i ~recorded:r)
    | _ -> None
  in
  let elapsed = !t_end in
  {
    offered = rate;
    achieved =
      (if elapsed > 0 then float_of_int !served *. 1000. /. float_of_int elapsed else 0.);
    served = !served;
    shed = !shed;
    partial = !partial;
    n;
    latency;
    dequeue_latency;
    gap;
    elapsed;
    failovers = !failovers;
    crashes = !crashes;
    repairs = !repairs;
    recovery_cycles = !recovery_cycles;
    retries = !retries;
    hints = !hints_total;
    checkpoints = !checkpoints;
    violations;
    leaked;
    shards =
      Array.map
        (fun s ->
          {
            s_id = s.sid;
            s_state =
              (match s.phase with Live -> "live" | Dead -> "dead" | Repairing -> "repairing");
            s_executed = s.executed;
            s_commits = s.commits;
            s_shed = s.shed_full;
            s_crashes = s.crashes;
            s_hints = s.hints_replayed;
            s_recovery = s.recovery;
            s_busy = s.busy_cycles;
          })
        shards;
  }

let sweep ?pool cfg ~rates = Pool.run_chunked_opt ~chunk:1 pool (fun rate -> run cfg ~rate) rates

(* ------------------------------------------------------------------ *)
(* Reproducers (campaign-style key=value files) and shrinking.        *)

let write_reproducer path (cfg : config) ~rate =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "# skipit fleet failure reproducer\n";
  p "shards=%d\n" cfg.shards;
  p "replicas=%d\n" cfg.replicas;
  p "vnodes=%d\n" cfg.vnodes;
  p "structure=%s\n" (Ops.kind_name cfg.kind);
  p "mode=%s\n" (Pctx.mode_name cfg.mode);
  p "strategy=%s\n" (Ds_bench.spec_name cfg.spec);
  p "process=%s\n" (Arrival.process_name cfg.process);
  p "keys=%s\n" (Workload.keys_name cfg.workload.Workload.keys);
  (match cfg.workload.Workload.churn with
   | Some c -> p "churn=%d\n" c
   | None -> ());
  p "rate=%h\n" rate;
  p "clients=%d\n" cfg.clients;
  p "requests=%d\n" cfg.requests;
  p "depth=%d\n" cfg.depth;
  p "batch=%d\n" cfg.batch;
  p "linger=%d\n" cfg.linger;
  p "retry_max=%d\n" cfg.retry_max;
  p "backoff=%d\n" cfg.backoff;
  p "backoff_cap=%d\n" cfg.backoff_cap;
  p "timeout=%d\n" cfg.timeout;
  p "fanout_pct=%d\n" cfg.fanout_pct;
  p "fanout=%d\n" cfg.fanout;
  p "key_range=%d\n" cfg.key_range;
  p "update_pct=%d\n" cfg.update_pct;
  p "prefill=%d\n" cfg.prefill;
  p "seed=%d\n" cfg.seed;
  p "faults=%s\n" (fault_schedule_name cfg.faults);
  (match cfg.drop_persists with Some s -> p "drop_persists=%d\n" s | None -> ());
  close_out oc

let read_reproducer path =
  let ic = open_in path in
  let tbl = Hashtbl.create 32 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.index_opt line '=' with
         | Some i ->
           Hashtbl.replace tbl
             (String.sub line 0 i)
             (String.sub line (i + 1) (String.length line - i - 1))
         | None -> ()
     done
   with End_of_file -> close_in ic);
  let missing = ref [] in
  let get name =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
      missing := name :: !missing;
      ""
  in
  let int name ~default:d =
    match int_of_string_opt (get name) with Some v -> v | None -> d
  in
  let cfg =
    {
      shards = int "shards" ~default:default.shards;
      replicas = int "replicas" ~default:default.replicas;
      vnodes = int "vnodes" ~default:default.vnodes;
      kind =
        (match
           List.find_opt (fun k -> Ops.kind_name k = get "structure") Ops.all_kinds
         with
         | Some k -> k
         | None -> default.kind);
      mode =
        (match
           List.find_opt (fun m -> Pctx.mode_name m = get "mode") Pctx.all_modes
         with
         | Some m -> m
         | None -> default.mode);
      spec =
        (match Ds_bench.spec_of_name (get "strategy") with
         | Some s -> s
         | None -> default.spec);
      process =
        (match Arrival.process_of_name (get "process") with
         | Some p -> p
         | None -> default.process);
      workload =
        (* Optional for pre-workload reproducers, like drop_persists. *)
        {
          Workload.keys =
            (match Hashtbl.find_opt tbl "keys" with
             | Some v -> (
               match Workload.keys_of_name v with
               | Some k -> k
               | None -> Workload.Uniform)
             | None -> Workload.Uniform);
          churn =
            (match Hashtbl.find_opt tbl "churn" with
             | Some v -> int_of_string_opt v
             | None -> None);
        };
      clients = int "clients" ~default:default.clients;
      requests = int "requests" ~default:default.requests;
      depth = int "depth" ~default:default.depth;
      batch = int "batch" ~default:default.batch;
      linger = int "linger" ~default:default.linger;
      retry_max = int "retry_max" ~default:default.retry_max;
      backoff = int "backoff" ~default:default.backoff;
      backoff_cap = int "backoff_cap" ~default:default.backoff_cap;
      timeout = int "timeout" ~default:default.timeout;
      fanout_pct = int "fanout_pct" ~default:default.fanout_pct;
      fanout = int "fanout" ~default:default.fanout;
      key_range = int "key_range" ~default:default.key_range;
      update_pct = int "update_pct" ~default:default.update_pct;
      prefill = int "prefill" ~default:default.prefill;
      seed = int "seed" ~default:default.seed;
      faults =
        (match fault_schedule_of_name (get "faults") with
         | Some f -> f
         | None -> default.faults);
      drop_persists =
        (match Hashtbl.find_opt tbl "drop_persists" with
         | Some v -> int_of_string_opt v
         | None -> None);
    }
  in
  let rate = match float_of_string_opt (get "rate") with Some r -> r | None -> 16. in
  match List.filter (fun k -> k <> "drop_persists") !missing with
  | [] -> Ok (cfg, rate)
  | ks -> Error (Printf.sprintf "reproducer %s: missing key(s) %s" path (String.concat ", " ks))

let shrink cfg ~rate =
  let fails c = let p = run c ~rate in (p, p.violations <> []) in
  let p0, failing = fails cfg in
  if not failing then (cfg, p0)
  else begin
    (* Greedy: halve the schedule while the failure survives, then walk
       back up by quarters to the smallest failing count found. *)
    let best = ref (cfg, p0) in
    let continue = ref true in
    while !continue do
      let c, _ = !best in
      let next = { c with requests = c.requests / 2 } in
      if next.requests < 1 then continue := false
      else
        let p, f = fails next in
        if f then best := (next, p) else continue := false
    done;
    let c, _ = !best in
    let lo = ref c.requests and hi = ref (min cfg.requests (c.requests * 2)) in
    (* smallest failing request count in (lo, hi]: lo already fails *)
    while !hi - !lo > max 1 (!lo / 8) do
      let mid = (!lo + !hi) / 2 in
      let next = { c with requests = mid } in
      let p, f = fails next in
      if f && mid < (fst !best).requests then begin
        best := (next, p);
        hi := mid
      end
      else if f then hi := mid
      else lo := mid
    done;
    ignore !lo;
    !best
  end
