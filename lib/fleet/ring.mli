(** Consistent-hash ring for the fleet router.

    Each shard owns [vnodes] points on a 64-bit ring; a key hashes to a
    point and walks clockwise collecting the first [k] {e distinct} shards
    — its replica set, primary first.  Virtual nodes smooth the ownership
    distribution, and consistent hashing keeps the map stable: the ring is
    a pure function of [(shards, vnodes, seed)], so the router, the
    prefill, and the end-of-run oracle all agree on placement without
    communicating.

    Hashing is the splitmix64 finalizer over exact integer arithmetic — no
    host-dependent behaviour, same determinism contract as
    {!Skipit_sim.Rng}. *)

type t

val create : shards:int -> vnodes:int -> seed:int -> t
(** [shards >= 1], [vnodes >= 1]. *)

val shards : t -> int

val replicas : t -> key:int -> k:int -> int list
(** The first [min k (shards t)] distinct shards clockwise from [key]'s
    ring point, primary first.  Deterministic in [(t, key, k)]. *)

val owner : t -> key:int -> int
(** [List.hd (replicas t ~key ~k:1)]. *)
