(** System-wide microarchitectural parameters.

    One record gathers every tunable of the simulated SoC: geometries,
    structure capacities, per-stage cycle costs, and the feature toggles the
    ablation benches flip (Skip It, flush-queue coalescing, the widened data
    array of §5.2).  [boom_default] is calibrated so that a single CBO.X of
    one dirty line costs ≈100 cycles end-to-end, matching §7.2. *)

(** Optional memory-side L3 between the LLC and DRAM (§7.4's deeper-
    hierarchy hypothesis; see the hierarchy ablation). *)
type l3_config = {
  l3_geom : Geometry.t;
  l3_latency : int;  (** Access latency seen by the L2. *)
  l3_banks : int;
  l3_bank_busy : int;
}

type t = {
  n_cores : int;
  l1_geom : Geometry.t;
  l2_geom : Geometry.t;
  bus_bytes : int;  (** TileLink data-bus width; 16 B in SonicBOOM (Fig. 3). *)
  (* L1 structures *)
  l1_mshrs : int;
  n_fshrs : int;  (** 8 in the paper (§5.2). *)
  flush_queue_depth : int;
  l1_load_to_use : int;  (** Load-hit latency through the LSU. *)
  l1_store_commit : int;  (** STQ fire + hit store cost. *)
  cbo_issue_cost : int;
      (** STQ fire + metadata check for a CBO.X — slightly cheaper than a
          store (no store data to move). *)
  l1_meta_access : int;  (** Metadata array read/modify (one state of Fig. 7). *)
  l1_fill_buffer_wide : int;  (** Widened data array: whole line in 1 cycle. *)
  l1_fill_buffer_narrow : int;
      (** Unmodified array: one word per cycle, so [words_per_line] cycles —
          the §5.2 optimisation ablation. *)
  (* Interconnect *)
  link_latency : int;  (** One-way header latency L1↔L2. *)
  (* L2 structures *)
  l2_mshrs : int;  (** Per NUCA bank. *)
  l2_list_buffer : int;
      (** ListBuffer entries in front of the L2 MSHRs (§3.4), per NUCA
          bank: channel-C requests that cannot get an MSHR wait here; a
          full buffer pushes back on the senders. *)
  l2_banks : int;
      (** Address-interleaved NUCA banks (line-address mod [l2_banks]).
          1 (default) = the paper's monolithic inclusive L2; each extra
          bank carries its own MSHR file, ListBuffer, directory and
          BankedStore slices.  Must be a power of two ≤ L2 sets. *)
  l2_slices : int;  (** BankedStore data slices per NUCA bank. *)
  l2_slice_busy : int;  (** BankedStore slice occupancy per line access. *)
  l2_tag_access : int;  (** Directory lookup/update. *)
  (* Memory *)
  dram_channels : int;
  dram_read_latency : int;
  dram_write_latency : int;
  dram_occupancy : int;  (** Channel occupancy per line transfer. *)
  mem_max_inflight : int;
      (** AXI-style cap on outstanding memory-side transactions per
          channel-set (read/write IDs in flight); 0 = unlimited (the
          pre-burst-model behaviour). *)
  mem_burst_beat_cost : int;
      (** Extra cycles per data beat of a memory-side burst (a line moves
          as [data_beats] beats); 0 = free beats (timing-neutral). *)
  (* Core *)
  fence_base_cost : int;
  cas_extra : int;  (** Extra cycles an AMO/CAS pays over a plain store hit. *)
  nack_retry_delay : int;  (** LSU retry interval after a nack (§3.3). *)
  (* Feature toggles *)
  skip_it : bool;
  coalescing : bool;
      (** Flush-queue coalescing of dependent CBO.X (§5.3).  Off by default:
          §5.3 describes coalescing as permitted, and the measured Fig. 13
          gap implies the shipped hardware rarely absorbs the redundant
          requests this way (with it on, the queue filters redundancy almost
          as well as Skip It — see the coalescing ablation). *)
  wide_data_array : bool;  (** §5.2 single-cycle line read. *)
  l2_trivial_skip : bool;
      (** LLC drops the DRAM write when its dirty bit is clear (§5.5) —
          present even without Skip It; ablatable. *)
  l3 : l3_config option;  (** [None] = the paper's platform (DRAM behind L2). *)
  l1_replacement : [ `Lru | `Random ];
      (** BOOM's data cache replaces pseudo-randomly; [`Lru] (the default
          here) keeps runs order-insensitive for the oracle tests. *)
  async_stores : bool;
      (** §3.2: stores retire at commit and drain from the STQ in the
          background (BOOM's actual behaviour; the ROB considers a store
          complete once the data cache accepts it).  Off = stores block the
          core until the cache completes them (the stricter model, as an
          ablation). *)
  stq_entries : int;  (** Store-queue capacity (32 in SonicBOOM, Fig. 2). *)
  topology : [ `Crossbar | `Shared_bus | `Banked_bus ];
      (** Interconnect shape between the L1 clients and the LLC.
          [`Crossbar] (the default, and what the SiFive generator elaborates
          for a BOOM tile) gives every L1↔L2 port private channel wiring;
          [`Shared_bus] makes all client ports contend for one set of A/C/D
          channels — an ablation for small SoCs; [`Banked_bus] gives each
          NUCA bank one shared set of channels that all clients contend
          for — the per-bank crossbar of a banked LLC. *)
}

val boom_default : t
(** Dual-purpose default: the §7.1 platform (32 KiB L1 / 512 KiB shared L2),
    one core; override [n_cores] and toggles per experiment. *)

val with_cores : t -> int -> t
val with_skip_it : t -> bool -> t

val with_topology : t -> [ `Crossbar | `Shared_bus | `Banked_bus ] -> t
(** Select the client↔LLC interconnect shape. *)

val with_l2_banks : t -> int -> t
(** Set the NUCA bank count (power of two ≤ L2 sets). *)

val with_mem_burst : t -> max_inflight:int -> beat_cost:int -> t
(** Configure the memory-side AXI burst model. *)

val with_l3 : t -> t
(** Add a 4 MiB 16-way memory-side L3 (the deeper-hierarchy experiment). *)

val line_bytes : t -> int
val words_per_line : t -> int

val data_beats : t -> int
(** Beats to move one line over the bus ([line_bytes / bus_bytes] = 4). *)

val fill_buffer_cycles : t -> int
(** Honours [wide_data_array]. *)

val validate : t -> (unit, string) result
(** Sanity-check cross-field constraints (L1/L2 line sizes equal, positive
    capacities, bus divides line, [l2_banks] a power of two ≤ sets, ...). *)
