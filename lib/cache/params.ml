type l3_config = {
  l3_geom : Geometry.t;
  l3_latency : int;
  l3_banks : int;
  l3_bank_busy : int;
}

type t = {
  n_cores : int;
  l1_geom : Geometry.t;
  l2_geom : Geometry.t;
  bus_bytes : int;
  l1_mshrs : int;
  n_fshrs : int;
  flush_queue_depth : int;
  l1_load_to_use : int;
  l1_store_commit : int;
  cbo_issue_cost : int;
  l1_meta_access : int;
  l1_fill_buffer_wide : int;
  l1_fill_buffer_narrow : int;
  link_latency : int;
  l2_mshrs : int;
  l2_list_buffer : int;
  l2_banks : int;
  l2_slices : int;
  l2_slice_busy : int;
  l2_tag_access : int;
  dram_channels : int;
  dram_read_latency : int;
  dram_write_latency : int;
  dram_occupancy : int;
  mem_max_inflight : int;
  mem_burst_beat_cost : int;
  fence_base_cost : int;
  cas_extra : int;
  nack_retry_delay : int;
  skip_it : bool;
  coalescing : bool;
  wide_data_array : bool;
  l2_trivial_skip : bool;
  l3 : l3_config option;
  l1_replacement : [ `Lru | `Random ];
  async_stores : bool;
  stq_entries : int;
  topology : [ `Crossbar | `Shared_bus | `Banked_bus ];
}

let boom_default =
  {
    n_cores = 1;
    l1_geom = Geometry.boom_l1;
    l2_geom = Geometry.boom_l2;
    bus_bytes = 16;
    l1_mshrs = 8;
    n_fshrs = 8;
    flush_queue_depth = 8;
    l1_load_to_use = 3;
    l1_store_commit = 4;
    cbo_issue_cost = 3;
    l1_meta_access = 2;
    l1_fill_buffer_wide = 1;
    l1_fill_buffer_narrow = 8;
    link_latency = 10;
    (* Enough L2 MSHRs that the DRAM round trip each one holds does not cap
       the 8-thread scaling of Fig. 9 (the SiFive generator makes this a
       free parameter). *)
    l2_mshrs = 64;
    l2_list_buffer = 16;
    (* NUCA banks: 1 = the monolithic L2 of the paper's platform.  Each
       bank replicates the MSHR file / ListBuffer / directory, so >1 both
       multiplies control capacity and removes the shared-structure
       serialisation Fig. 9 saturates on. *)
    l2_banks = 1;
    l2_slices = 8;
    l2_slice_busy = 4;
    l2_tag_access = 8;
    dram_channels = 8;
    dram_read_latency = 60;
    dram_write_latency = 55;
    dram_occupancy = 2;
    (* AXI-style memory-side transaction model: 0 = unlimited in-flight
       transactions and free burst beats (the pre-burst-model behaviour,
       timing-neutral). *)
    mem_max_inflight = 0;
    mem_burst_beat_cost = 0;
    fence_base_cost = 5;
    cas_extra = 4;
    nack_retry_delay = 4;
    skip_it = false;
    coalescing = false;
    wide_data_array = true;
    l2_trivial_skip = true;
    l3 = None;
    l1_replacement = `Lru;
    async_stores = true;
    stq_entries = 32;
    topology = `Crossbar;
  }

let with_cores t n = { t with n_cores = n }
let with_skip_it t b = { t with skip_it = b }
let with_topology t topology = { t with topology }
let with_l2_banks t n = { t with l2_banks = n }

let with_mem_burst t ~max_inflight ~beat_cost =
  { t with mem_max_inflight = max_inflight; mem_burst_beat_cost = beat_cost }

let with_l3 t =
  {
    t with
    l3 =
      Some
        {
          l3_geom = Geometry.v ~size_bytes:(4 * 1024 * 1024) ~ways:16 ~line_bytes:64;
          l3_latency = 30;
          l3_banks = 8;
          l3_bank_busy = 4;
        };
  }

let line_bytes t = t.l1_geom.Geometry.line_bytes
let words_per_line t = Geometry.words_per_line t.l1_geom
let data_beats t = line_bytes t / t.bus_bytes

let fill_buffer_cycles t =
  if t.wide_data_array then t.l1_fill_buffer_wide else t.l1_fill_buffer_narrow

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.n_cores <= 0 then err "n_cores must be positive"
  else if t.l1_geom.Geometry.line_bytes <> t.l2_geom.Geometry.line_bytes then
    err "L1 and L2 line sizes differ"
  else if line_bytes t mod t.bus_bytes <> 0 then err "bus width must divide line size"
  else if t.l1_mshrs <= 0 || t.n_fshrs <= 0 then err "MSHR/FSHR counts must be positive"
  else if t.flush_queue_depth < 0 then err "flush queue depth must be non-negative"
  else if t.stq_entries <= 0 then err "STQ must have at least one entry"
  else if t.l2_mshrs <= 0 || t.l2_slices <= 0 || t.dram_channels <= 0 then
    err "L2/DRAM structure counts must be positive"
  else if not (is_pow2 t.l2_banks) then err "l2_banks must be a power of two"
  else if t.l2_banks > t.l2_geom.Geometry.sets then
    err "l2_banks must not exceed L2 set count"
  else if t.mem_max_inflight < 0 || t.mem_burst_beat_cost < 0 then
    err "memory burst parameters must be non-negative"
  else
    match t.l3 with
    | Some l3 when l3.l3_geom.Geometry.line_bytes <> line_bytes t ->
      err "L3 line size must match L1/L2"
    | Some l3 when l3.l3_banks <= 0 -> err "L3 bank count must be positive"
    | Some _ | None -> Ok ()
