(* Struct-of-arrays set-associative tag store.

   v1 kept one heap record per way ([{tag; valid; payload; last_use}]),
   which meant every lookup returned a ['a slot option] — an allocation on
   the L1-hit path — and a tag scan chased a pointer per way.  v2 keys
   everything by an integer slot id ([set * ways + way]) into flat
   parallel tables: tags and LRU stamps in [int array]s, valid bits in a
   [Bytes.t], payloads in one ['a option array].  Lookups return the slot
   id (-1 for a miss), so the hit path allocates nothing, and a set's tags
   sit in 8|ways| contiguous bytes of one array.

   Levels that want pure SoA line storage (the L1 keeps per-line metadata
   in a packed byte table and line words in one flat array) instantiate
   ['a = unit] and index their own tables by the same slot id; levels with
   richer payloads (L2 directory entries, memory-side lines) store them in
   the payload table, paying one small allocation per *fill* — never per
   lookup. *)

type policy = Lru | Random of Skipit_sim.Rng.t

type 'a t = {
  geom : Geometry.t;
  policy : policy;
  ways : int;
  tags : int array;  (* by slot id *)
  valid : Bytes.t;  (* 0/1 by slot id *)
  last_use : int array;  (* by slot id *)
  payload : 'a option array;  (* [Some] iff valid *)
}

let miss = -1

let create ?(policy = Lru) geom =
  let slots = geom.Geometry.sets * geom.Geometry.ways in
  {
    geom;
    policy;
    ways = geom.Geometry.ways;
    tags = Array.make slots 0;
    valid = Bytes.make slots '\000';
    last_use = Array.make slots 0;
    payload = Array.make slots None;
  }

let geometry t = t.geom
let slots t = Array.length t.tags
let is_valid t id = Bytes.unsafe_get t.valid id <> '\000'

(* Top-level so the tag scan compiles to a static call: a local [let rec]
   closing over [t]/[base]/[tag] is a minor-heap closure per lookup
   (without flambda), which would break the zero-alloc L1-hit pin. *)
let rec scan_ways t base tag i =
  if i >= t.ways then miss
  else begin
    let id = base + i in
    if is_valid t id && Array.unsafe_get t.tags id = tag then id
    else scan_ways t base tag (i + 1)
  end

let find t addr =
  let base = Geometry.index_of t.geom addr * t.ways in
  let tag = Geometry.tag_of t.geom addr in
  scan_ways t base tag 0

let payload t id =
  match t.payload.(id) with
  | Some p -> p
  | None -> invalid_arg "Store.payload: invalid slot"

let touch t id ~now = t.last_use.(id) <- now

(* Replacement (matching v1 bit for bit): the lowest-numbered invalid way
   if any, else the policy's pick — for LRU the lowest-numbered way with
   the strictly smallest stamp. *)
let victim t addr =
  let base = Geometry.index_of t.geom addr * t.ways in
  let rec find_invalid i =
    if i >= t.ways then miss
    else if not (is_valid t (base + i)) then base + i
    else find_invalid (i + 1)
  in
  match find_invalid 0 with
  | id when id <> miss -> id
  | _ -> (
    match t.policy with
    | Lru ->
      let best = ref base in
      for i = 1 to t.ways - 1 do
        if t.last_use.(base + i) < t.last_use.(!best) then best := base + i
      done;
      !best
    | Random rng -> base + Skipit_sim.Rng.int rng t.ways)

let fill t id ~addr ~payload ~now =
  t.tags.(id) <- Geometry.tag_of t.geom addr;
  Bytes.unsafe_set t.valid id '\001';
  t.payload.(id) <- Some payload;
  t.last_use.(id) <- now

let invalidate t id =
  Bytes.unsafe_set t.valid id '\000';
  t.payload.(id) <- None

let slot_addr t id =
  if not (is_valid t id) then invalid_arg "Store.slot_addr: invalid slot";
  Geometry.addr_of t.geom ~tag:t.tags.(id) ~index:(id / t.ways)

let iter_valid t f =
  for id = 0 to Array.length t.tags - 1 do
    if is_valid t id then f (slot_addr t id) id
  done

let count_valid t =
  let n = ref 0 in
  for id = 0 to Array.length t.tags - 1 do
    if is_valid t id then incr n
  done;
  !n

let invalidate_all t =
  Bytes.fill t.valid 0 (Bytes.length t.valid) '\000';
  Array.fill t.payload 0 (Array.length t.payload) None
