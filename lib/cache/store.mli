(** Struct-of-arrays set-associative tag store with LRU replacement.

    Both the L1 metadata/data arrays (§3.3) and the L2 directory+BankedStore
    (§3.4) are instances.  All state lives in flat parallel tables (tags,
    valid bits, LRU stamps, payloads) indexed by an integer {e slot id} —
    [set_index * ways + way] — and lookups return that id rather than an
    option, so the hit path allocates nothing.  [-1] ({!miss}) means not
    present.

    The per-line payload type ['a] carries whatever metadata a level wants
    in the store itself (directory bits, line records); a level keeping its
    line state in its own struct-of-arrays tables instantiates ['a = unit]
    and indexes those tables by the same slot id (see {!slots}).

    Replacement picks the lowest-numbered invalid way first; among valid
    ways the policy chooses: [Lru] (the default — deterministic and easiest
    to reason about in tests) or [Random] seeded pseudo-random — what the
    BOOM data cache actually implements. *)

(** Victim-selection policy among valid ways. *)
type policy = Lru | Random of Skipit_sim.Rng.t

type 'a t

val create : ?policy:policy -> Geometry.t -> 'a t
val geometry : 'a t -> Geometry.t

val slots : 'a t -> int
(** Total slot count ([sets * ways]); the valid id range for parallel
    side tables. *)

val miss : int
(** The not-present slot id, [-1]. *)

val find : 'a t -> int -> int
(** [find t addr] is the slot id holding [addr]'s line, or {!miss}. *)

val is_valid : 'a t -> int -> bool

val payload : 'a t -> int -> 'a
(** Payload of a valid slot id.  Raises [Invalid_argument] on an invalid
    slot. *)

val touch : 'a t -> int -> now:int -> unit
(** Record a use for LRU. *)

val victim : 'a t -> int -> int
(** [victim t addr] is the slot id to (re)fill for [addr]'s set: the
    lowest-numbered invalid way if one exists, else the policy's pick
    (which the caller must first evict — check {!is_valid}). *)

val fill : 'a t -> int -> addr:int -> payload:'a -> now:int -> unit
(** Install a line into a slot id (tag set from [addr], marked valid). *)

val invalidate : 'a t -> int -> unit

val slot_addr : 'a t -> int -> int
(** Line base address currently held by a valid slot id. *)

val iter_valid : 'a t -> (int -> int -> unit) -> unit
(** [iter_valid t f] calls [f line_addr id] for every valid slot. *)

val count_valid : 'a t -> int

val invalidate_all : 'a t -> unit
(** Drop every line — used to simulate a crash (volatile caches lose
    contents, §2.5). *)
