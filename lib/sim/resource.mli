(** Timed hardware resources with limited parallelism.

    The simulator is transaction-level: each memory operation computes its
    completion time by {e acquiring} the hardware structures it flows through.
    A resource models [count] identical units (MSHRs, FSHRs, L2 banks, DRAM
    channels, link channels, ...): acquiring it at time [now] for [busy]
    cycles picks the earliest-free unit, starts no earlier than [now], and
    occupies that unit for [busy] cycles.  Contention therefore surfaces as
    delayed start times, exactly how structural hazards surface in hardware. *)

type t

val create : ?count:int -> string -> t
(** [create ~count name] makes a resource with [count] parallel units
    (default 1).  [name] labels it in statistics. *)

val name : t -> string
val count : t -> int

val acquire : t -> now:int -> busy:int -> int * int
(** [acquire t ~now ~busy] returns [(start, finish)] with [start >= now] the
    earliest time a unit is free and [finish = start + busy].  The unit is
    marked busy until [finish]. *)

val acquire_finish : t -> now:int -> busy:int -> int
(** {!acquire} returning only [finish] — no pair allocation on the
    per-access path. *)

val acquire_start : t -> now:int -> busy:int -> int
(** {!acquire} returning only [start]. *)

val acquire_dyn : t -> now:int -> (int -> int) -> int * int
(** [acquire_dyn t ~now f] picks the earliest-free unit; the occupancy is
    computed from the actual start time: [start = max now unit_free],
    [finish = f start].  Used for structures held for the whole lifetime of a
    transaction whose duration depends on downstream contention (MSHRs).
    [f start] must be [>= start]. *)

val acquire_dyn_idx : t -> now:int -> (idx:int -> int -> int) -> int * int * int
(** Like {!acquire_dyn} but also exposes which unit was picked: the callback
    receives [~idx] (0-based unit index) and the result is
    [(idx, start, finish)].  Lets observability layers attribute occupancy to
    individual MSHRs/FSHRs. *)

val earliest_free : t -> int
(** Next time at which at least one unit is free (without acquiring). *)

val all_free_at : t -> int
(** Time at which every unit is idle — e.g. when the last outstanding FSHR
    completes. *)

val busy_at : t -> int -> int
(** [busy_at t now] is how many units are still busy at time [now]. *)

val total_busy_cycles : t -> int
(** Accumulated busy cycles across all units (utilisation accounting). *)

val reset : t -> unit

module Banked : sig
  type bank = t
  type t

  val create : banks:int -> ?count:int -> string -> t
  (** [banks] independent resources, each with [count] units; requests are
      routed by address. *)

  val acquire : t -> addr:int -> line_bytes:int -> now:int -> busy:int -> int * int
  (** Route to bank [(addr / line_bytes) mod banks] and acquire it. *)

  val bank_of : t -> addr:int -> line_bytes:int -> bank
  val reset : t -> unit
end
