(* Open-addressed int->int hash table for per-line bookkeeping on the
   simulator's access path (e.g. the L1's last-change cycle per line base).
   Compared to a polymorphic [Hashtbl] it boxes nothing, allocates nothing
   on lookup (no [option]), and probes with an int hash instead of the
   generic structural hash.

   Keys must be non-negative (they are addresses); [min_int] is the empty
   slot sentinel.  Linear probing over a power-of-two table, grown at 50%
   load.  Entries can be overwritten but never removed, matching the
   bookkeeping use. *)

type t = {
  mutable keys : int array;  (* [min_int] = empty *)
  mutable vals : int array;
  mutable mask : int;  (* capacity - 1, capacity a power of two *)
  mutable len : int;
}

let empty_key = min_int

let capacity_for hint =
  let rec up c = if c >= hint * 2 && c >= 16 then c else up (c * 2) in
  up 16

let create ?(size_hint = 64) () =
  let cap = capacity_for size_hint in
  { keys = Array.make cap empty_key; vals = Array.make cap 0; mask = cap - 1; len = 0 }

let length t = t.len

(* Fibonacci hashing spreads consecutive line bases across the table. *)
let slot t key = key * 0x2545F4914F6CDD1D land t.mask

let rec probe keys mask i key =
  let k = keys.(i) in
  if k = key || k = empty_key then i else probe keys mask ((i + 1) land mask) key

let grow t =
  let keys = t.keys and vals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if k <> empty_key then begin
        let j = probe t.keys t.mask (slot t k) k in
        t.keys.(j) <- k;
        t.vals.(j) <- vals.(i)
      end)
    keys

let replace t key v =
  if key < 0 then invalid_arg "Int_tbl.replace: negative key";
  let i = probe t.keys t.mask (slot t key) key in
  if t.keys.(i) = empty_key then begin
    t.keys.(i) <- key;
    t.vals.(i) <- v;
    t.len <- t.len + 1;
    if 2 * t.len > t.mask then grow t
  end
  else t.vals.(i) <- v

let find_default t key ~default =
  if key < 0 then invalid_arg "Int_tbl.find_default: negative key";
  let i = probe t.keys t.mask (slot t key) key in
  if t.keys.(i) = empty_key then default else t.vals.(i)

let mem t key =
  if key < 0 then invalid_arg "Int_tbl.mem: negative key";
  let i = probe t.keys t.mask (slot t key) key in
  t.keys.(i) <> empty_key

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  t.len <- 0

let iter t f =
  Array.iteri (fun i k -> if k <> empty_key then f k t.vals.(i)) t.keys
