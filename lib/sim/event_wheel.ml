(* Calendar event wheel: O(1) insert/cancel, amortized-O(1) advance.

   The simulator's retirement problem — "drop every pending thing whose
   deadline has passed" — was previously solved by rescanning a list on
   every query ([List.filter] per call in [Flush_unit.prune]).  The wheel
   turns that into time-indexed buckets: an event due at cycle [c] sits in
   bucket [c land mask]; advancing the clock visits each elapsed bucket
   once and fires the events whose due time matches the visited cycle
   (events a full rotation or more ahead stay put and are skipped until
   their rotation comes around).

   The clock only moves forward: [advance ~now] with [now] at or before
   the high-water mark fires nothing from the buckets.  Simulator callers
   do present non-monotone [now] values (a cross-core probe carries the
   probing core's clock), and the contract that makes this correct is the
   overdue lane: an insert whose due time is already at or behind the
   high-water mark goes to a separate overdue list, which every [advance]
   scans against its own [now] — so a late-inserted event still fires at
   the first call whose [now] reaches it, exactly as a filter-based
   structure would.

   Firing order: bucketed events fire in nondecreasing due order (the
   wheel steps cycle by cycle); events sharing a due cycle fire in
   unspecified (but deterministic) order; overdue events fire before any
   bucketed event of the same [advance] call.

   Two shortcuts keep long idle gaps cheap: when no bucketed event is
   pending the clock jumps straight to [now], and a monotone lower bound
   on the earliest pending due time ([min_due]) lets the wheel skip the
   provably empty prefix of a large jump. *)

type state = Bucketed | Overdue | Done

type 'a node = { value : 'a; due : int; mutable state : state }

type 'a t = {
  buckets : 'a node list array;
  mask : int;
  mutable time : int;  (* high-water mark: all bucketed events <= time fired *)
  mutable live : int;  (* pending bucketed nodes *)
  mutable min_due : int;  (* lower bound on earliest pending bucketed due *)
  mutable overdue : 'a node list;  (* inserted with due <= time at the time *)
}

let default_slots = 256

let create ?(slots = default_slots) () =
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Event_wheel.create: slots must be a positive power of two";
  {
    buckets = Array.make slots [];
    mask = slots - 1;
    time = -1;
    live = 0;
    min_due = max_int;
    overdue = [];
  }

let time t = t.time
let live t = t.live + List.length (List.filter (fun n -> n.state = Overdue) t.overdue)
let is_pending n = n.state <> Done

let insert t ~at v =
  if at <= t.time then begin
    let n = { value = v; due = at; state = Overdue } in
    t.overdue <- n :: t.overdue;
    n
  end
  else begin
    let n = { value = v; due = at; state = Bucketed } in
    let b = at land t.mask in
    t.buckets.(b) <- n :: t.buckets.(b);
    t.live <- t.live + 1;
    if at < t.min_due then t.min_due <- at;
    n
  end

(* Idempotent; fired nodes are already [Done].  A cancelled bucketed node
   stays in its bucket and is dropped when the bucket is next visited. *)
let cancel t n =
  match n.state with
  | Done -> ()
  | Overdue -> n.state <- Done
  | Bucketed ->
    n.state <- Done;
    t.live <- t.live - 1

let fire n f =
  n.state <- Done;
  f n.value

(* Visit bucket for cycle [c]: fire pending nodes due exactly [c], drop
   dead ones, keep future rotations. *)
let visit_bucket t ~c f =
  let b = c land t.mask in
  match t.buckets.(b) with
  | [] -> ()
  | nodes ->
    let keep = ref [] in
    List.iter
      (fun n ->
        match n.state with
        | Done -> ()
        | Overdue -> assert false
        | Bucketed ->
          if n.due = c then begin
            t.live <- t.live - 1;
            fire n f
          end
          else keep := n :: !keep)
      nodes;
    t.buckets.(b) <- !keep

let advance t ~now f =
  (* Overdue lane first: fires against this call's [now] even when the
     high-water mark does not move. *)
  (match t.overdue with
   | [] -> ()
   | nodes ->
     let keep = ref [] in
     List.iter
       (fun n ->
         match n.state with
         | Done -> ()
         | Bucketed -> assert false
         | Overdue -> if n.due <= now then fire n f else keep := n :: !keep)
       nodes;
     t.overdue <- !keep);
  (* The high-water mark itself is the cursor: [time < now] is the loop
     guard, so a [now] of [max_int] (fence/audit sentinels) cannot
     overflow a cycle counter past it. *)
  while t.time < now do
    if t.live = 0 then t.time <- now
    else begin
      let c = t.time + 1 in
      if c < t.min_due then
        (* Provably empty prefix: skip to the earliest possible due. *)
        t.time <- min now (t.min_due - 1)
      else begin
        visit_bucket t ~c f;
        (* Every event due at or before [c] has now fired, so the bound can
           be re-armed past it — this is what keeps repeated long jumps
           cheap after the early events drain. *)
        if t.min_due <= c then t.min_due <- c + 1;
        t.time <- c
      end
    end
  done

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) [];
  t.live <- 0;
  t.min_due <- max_int;
  t.overdue <- []
