module Sample = struct
  type t = {
    mutable data : float array;
    mutable len : int;
    (* Sorted view shared by percentile/median; rebuilt lazily after adds.
       Order-statistic sweeps (p50/p90/p99 over the same sample) would
       otherwise re-sort per query. *)
    mutable sorted_cache : float array option;
  }

  let create () = { data = Array.make 16 0.; len = 0; sorted_cache = None }

  let add t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0. in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted_cache <- None

  let add_int t x = add t (float_of_int x)
  let count t = t.len
  let is_empty t = t.len = 0

  let fold f init t =
    let acc = ref init in
    for i = 0 to t.len - 1 do
      acc := f !acc t.data.(i)
    done;
    !acc

  let total t = fold ( +. ) 0. t

  let mean t =
    if t.len = 0 then invalid_arg "Sample.mean: empty";
    total t /. float_of_int t.len

  let min t =
    if t.len = 0 then invalid_arg "Sample.min: empty";
    fold Float.min Float.infinity t

  let max t =
    if t.len = 0 then invalid_arg "Sample.max: empty";
    fold Float.max Float.neg_infinity t

  let sorted t =
    match t.sorted_cache with
    | Some arr -> arr
    | None ->
      let arr = Array.sub t.data 0 t.len in
      Array.sort Float.compare arr;
      t.sorted_cache <- Some arr;
      arr

  let percentile t p =
    if t.len = 0 then invalid_arg "Sample.percentile: empty";
    if Float.is_nan p || p < 0. || p > 100. then
      invalid_arg "Sample.percentile: p out of range";
    let arr = sorted t in
    let n = Array.length arr in
    (* The boundary cases are answered exactly rather than through the
       interpolation arithmetic, so p=0/p=100 return the true min/max even
       when [p /. 100. *. (n-1)] would round across an index boundary. *)
    if n = 1 || p <= 0. then arr.(0)
    else if p >= 100. then arr.(n - 1)
    else begin
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let lo = if lo < 0 then 0 else Stdlib.min lo (n - 1) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      let frac = if frac < 0. then 0. else Stdlib.min frac 1. in
      (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
    end

  let median t = percentile t 50.

  let stddev t =
    if t.len < 2 then 0.
    else begin
      let m = mean t in
      let sumsq = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. t in
      sqrt (sumsq /. float_of_int t.len)
    end

  let values t = Array.sub t.data 0 t.len
end

module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let get t = t.n
  let reset t = t.n <- 0
end

module Registry = struct
  type t = (string, Counter.t) Hashtbl.t

  let create () : t = Hashtbl.create 32

  let counter t name =
    match Hashtbl.find_opt t name with
    | Some c -> c
    | None ->
      let c = Counter.create () in
      Hashtbl.add t name c;
      c

  let get t name =
    match Hashtbl.find_opt t name with Some c -> Counter.get c | None -> 0

  let incr t name = Counter.incr (counter t name)
  let add t name k = Counter.add (counter t name) k
  let reset_all t = Hashtbl.iter (fun _ c -> Counter.reset c) t

  let to_list t =
    Hashtbl.fold (fun name c acc -> (name, Counter.get c) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let pp ppf t =
    Format.fprintf ppf "@[<v>";
    List.iter (fun (name, n) -> Format.fprintf ppf "%s: %d@," name n) (to_list t);
    Format.fprintf ppf "@]"
end
