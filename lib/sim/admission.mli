(** Bounded waiting rooms in the transaction-level timing model.

    Several structures in the paper's SoC are FIFO buffers that admit a
    request, hold it until a downstream unit accepts it, and push back on
    the producer when full: the flush queue in front of the FSHRs (§5.2 — a
    full queue nacks the LSU) and the L2's ListBuffer in front of its MSHRs
    (§3.4).  In completion-time arithmetic that behaviour reduces to: the
    k-th request may enter only once the (k − capacity)-th request has left.

    Usage: [admit] on arrival (returns the possibly-delayed entry time),
    then [release] with the time the request left the buffer, in admission
    order. *)

type t

val create : capacity:int -> t
(** [capacity] must be positive. *)

val capacity : t -> int

val admit : t -> now:int -> int
(** Entry time: [now], or the departure time of the request [capacity]
    positions earlier if the room is still full then. *)

val peek_entry : t -> now:int -> int
(** What {!admit} would return, without admitting.  When the room is full
    and the slot-freeing departure has not been recorded yet, the entry time
    is unknown but certainly after [now]: [max_int] is returned.  Load
    shedders test [peek_entry t ~now > now] — "the room was full at the
    instant the request arrived". *)

val release : t -> at:int -> unit
(** Record (in FIFO order) that the oldest occupant left at [at]. *)

val occupants : t -> int
(** Requests admitted but not yet released. *)

val reset : t -> unit
(** Forget all admissions and recorded departures (power failure: in-flight
    requests vanish and must not back-pressure the next run). *)
