(** Calendar event wheel: O(1) insert/cancel, amortized-O(1) advance.

    Time-indexed buckets for the simulator's retirement problem ("drop
    every pending thing whose deadline has passed"), replacing per-query
    list rescans.  An event due at cycle [c] lives in bucket
    [c mod slots]; {!advance} visits each elapsed bucket once and fires
    the events whose due cycle was reached.  Events more than a rotation
    ahead wait in place for their rotation.

    The clock is a high-water mark and only moves forward, but callers may
    present non-monotone [now] values (a cross-core probe carries the
    probing core's clock): an insert whose due time is already at or
    behind the mark goes to an overdue lane that every {!advance} scans
    against its own [now], so a late insert still fires at the first call
    whose [now] reaches its due time — exactly the semantics of a
    filter-based structure.

    Firing order: overdue events first, then bucketed events in
    nondecreasing due order; order within one due cycle is deterministic
    but unspecified. *)

type 'a t

type 'a node
(** Handle for {!cancel}; owned by the wheel that created it. *)

val create : ?slots:int -> unit -> 'a t
(** [slots] must be a positive power of two (default 256).  More slots
    spread dense schedules thinner; fewer make long jumps revisit events
    ahead of their rotation more often. *)

val time : 'a t -> int
(** The high-water mark: every bucketed event due at or before it has
    fired.  [-1] on a fresh wheel. *)

val insert : 'a t -> at:int -> 'a -> 'a node
(** Schedule [v] to fire once the clock reaches [at] (due times at or
    behind {!time} fire on the first {!advance} whose [now] reaches
    them). *)

val cancel : 'a t -> 'a node -> unit
(** Remove a pending event; idempotent, O(1) (already-fired nodes are
    untouched). *)

val is_pending : 'a node -> bool
(** [true] until the node fires or is cancelled. *)

val advance : 'a t -> now:int -> ('a -> unit) -> unit
(** Fire every pending event due at or before [now] and raise {!time} to
    at least [now].  The callback must not touch the wheel. *)

val live : 'a t -> int
(** Pending events (diagnostic; O(overdue)). *)

val clear : 'a t -> unit
(** Drop every pending event (crash reset). *)
