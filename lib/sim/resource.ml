type t = {
  name : string;
  free_at : int array;  (* per-unit time at which the unit becomes idle *)
  mutable busy_cycles : int;
}

let create ?(count = 1) name =
  if count <= 0 then invalid_arg "Resource.create: count <= 0";
  { name; free_at = Array.make count 0; busy_cycles = 0 }

let name t = t.name
let count t = Array.length t.free_at

let min_index arr =
  let best = ref 0 in
  for i = 1 to Array.length arr - 1 do
    if arr.(i) < arr.(!best) then best := i
  done;
  !best

let acquire t ~now ~busy =
  if busy < 0 then invalid_arg "Resource.acquire: negative busy";
  let i = min_index t.free_at in
  let start = max now t.free_at.(i) in
  let finish = start + busy in
  t.free_at.(i) <- finish;
  t.busy_cycles <- t.busy_cycles + busy;
  finish - busy, finish

let acquire_dyn_idx t ~now f =
  let i = min_index t.free_at in
  let start = max now t.free_at.(i) in
  let finish = f ~idx:i start in
  if finish < start then invalid_arg "Resource.acquire_dyn: finish < start";
  t.free_at.(i) <- finish;
  t.busy_cycles <- t.busy_cycles + (finish - start);
  i, start, finish

let acquire_dyn t ~now f =
  let _, start, finish = acquire_dyn_idx t ~now (fun ~idx:_ start -> f start) in
  start, finish

let earliest_free t = t.free_at.(min_index t.free_at)

let all_free_at t = Array.fold_left max 0 t.free_at

let busy_at t now =
  Array.fold_left (fun acc f -> if f > now then acc + 1 else acc) 0 t.free_at

let total_busy_cycles t = t.busy_cycles

let reset t =
  Array.fill t.free_at 0 (Array.length t.free_at) 0;
  t.busy_cycles <- 0

module Banked = struct
  type bank = t
  type nonrec t = { banks : t array }

  let create ~banks ?(count = 1) name =
    if banks <= 0 then invalid_arg "Resource.Banked.create: banks <= 0";
    { banks = Array.init banks (fun i -> create ~count (Printf.sprintf "%s[%d]" name i)) }

  let bank_of t ~addr ~line_bytes =
    t.banks.(addr / line_bytes mod Array.length t.banks)

  let acquire t ~addr ~line_bytes ~now ~busy =
    acquire (bank_of t ~addr ~line_bytes) ~now ~busy

  let reset t = Array.iter reset t.banks
end
