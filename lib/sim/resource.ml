type t = {
  name : string;
  free_at : int array;  (* per-unit time at which the unit becomes idle *)
  mutable busy_cycles : int;
  (* Cached argmin of [free_at], maintained across acquisitions so the hot
     path avoids a per-acquire O(count) scan.  [cmin] is the *first* index
     attaining the minimum (the same unit the naive scan picks) and
     [csecond] the minimum over every other unit, both meaningful only when
     [cvalid].  After an acquisition bumps [free_at.(cmin)] to [finish],
     the cache survives iff [finish < csecond] — the updated unit is still
     the unique earliest-free one.  Single-unit resources (writeback units,
     channel wires) have [csecond = max_int] and therefore never rescan. *)
  mutable cmin : int;
  mutable csecond : int;
  mutable cvalid : bool;
}

let create ?(count = 1) name =
  if count <= 0 then invalid_arg "Resource.create: count <= 0";
  {
    name;
    free_at = Array.make count 0;
    busy_cycles = 0;
    cmin = 0;
    csecond = (if count = 1 then max_int else 0);
    cvalid = true;
  }

let name t = t.name
let count t = Array.length t.free_at

(* One pass: first index with the minimum value, plus the runner-up value.
   Ties go to the lowest index, exactly as the naive scan broke them. *)
let rescan t =
  let arr = t.free_at in
  let n = Array.length arr in
  let best = ref 0 and best_v = ref arr.(0) and second_v = ref max_int in
  for i = 1 to n - 1 do
    let v = arr.(i) in
    if v < !best_v then begin
      second_v := !best_v;
      best_v := v;
      best := i
    end
    else if v < !second_v then second_v := v
  done;
  t.cmin <- !best;
  t.csecond <- !second_v;
  t.cvalid <- true

let min_index t =
  if not t.cvalid then rescan t;
  t.cmin

(* [free_at.(cmin)] just rose to [finish]; keep or drop the cache. *)
let bumped t ~finish = if finish >= t.csecond then t.cvalid <- false

let acquire t ~now ~busy =
  if busy < 0 then invalid_arg "Resource.acquire: negative busy";
  let i = min_index t in
  let start = max now t.free_at.(i) in
  let finish = start + busy in
  t.free_at.(i) <- finish;
  bumped t ~finish;
  t.busy_cycles <- t.busy_cycles + busy;
  finish - busy, finish

(* Tuple-free variants for call sites that need only one end of the
   occupancy interval: the per-access timing arithmetic runs once per
   simulated memory operation, so the pair allocation is worth avoiding. *)
let acquire_finish t ~now ~busy =
  if busy < 0 then invalid_arg "Resource.acquire: negative busy";
  let i = min_index t in
  let start = max now t.free_at.(i) in
  let finish = start + busy in
  t.free_at.(i) <- finish;
  bumped t ~finish;
  t.busy_cycles <- t.busy_cycles + busy;
  finish

let acquire_start t ~now ~busy = acquire_finish t ~now ~busy - busy

let acquire_dyn_idx t ~now f =
  let i = min_index t in
  let start = max now t.free_at.(i) in
  let finish = f ~idx:i start in
  if finish < start then invalid_arg "Resource.acquire_dyn: finish < start";
  t.free_at.(i) <- finish;
  bumped t ~finish;
  t.busy_cycles <- t.busy_cycles + (finish - start);
  i, start, finish

let acquire_dyn t ~now f =
  let _, start, finish = acquire_dyn_idx t ~now (fun ~idx:_ start -> f start) in
  start, finish

let earliest_free t = t.free_at.(min_index t)

let all_free_at t = Array.fold_left max 0 t.free_at

let busy_at t now =
  Array.fold_left (fun acc f -> if f > now then acc + 1 else acc) 0 t.free_at

let total_busy_cycles t = t.busy_cycles

let reset t =
  Array.fill t.free_at 0 (Array.length t.free_at) 0;
  t.busy_cycles <- 0;
  t.cmin <- 0;
  t.csecond <- (if Array.length t.free_at = 1 then max_int else 0);
  t.cvalid <- true

module Banked = struct
  type bank = t
  type nonrec t = { banks : t array }

  let create ~banks ?(count = 1) name =
    if banks <= 0 then invalid_arg "Resource.Banked.create: banks <= 0";
    { banks = Array.init banks (fun i -> create ~count (Printf.sprintf "%s[%d]" name i)) }

  let bank_of t ~addr ~line_bytes =
    t.banks.(addr / line_bytes mod Array.length t.banks)

  let acquire t ~addr ~line_bytes ~now ~busy =
    acquire (bank_of t ~addr ~line_bytes) ~now ~busy

  let reset t = Array.iter reset t.banks
end
