(** Measurement aggregation for simulation experiments.

    The paper reports medians and standard deviations over repeated
    microbenchmarks (§7.1: 50 repetitions, median latency) and mean throughput
    over repeated runs.  [Sample] collects raw observations and answers those
    queries; [Counter] is a named monotonic event counter used for
    microarchitectural accounting (hits, misses, nacks, skipped writebacks,
    ...). *)

module Sample : sig
  type t
  (** A growable collection of float observations. *)

  val create : unit -> t
  val add : t -> float -> unit
  val add_int : t -> int -> unit
  val count : t -> int
  val is_empty : t -> bool
  val mean : t -> float
  val total : t -> float
  val min : t -> float
  val max : t -> float

  val median : t -> float
  (** Median (average of middle two for even counts).  Raises
      [Invalid_argument] when empty. *)

  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [\[0,100\]], nearest-rank with linear
      interpolation between adjacent order statistics.

      Documented edge behaviour:
      - empty sample: raises [Invalid_argument];
      - [p] NaN or outside [\[0,100\]]: raises [Invalid_argument];
      - single element: that element, for every valid [p];
      - [p = 0.] / [p = 100.]: exactly the minimum / maximum (no
        interpolation rounding). *)

  val stddev : t -> float
  (** Population standard deviation, [0.] for fewer than two samples. *)

  val values : t -> float array
  (** Snapshot of all observations in insertion order. *)
end

module Counter : sig
  type t
  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

module Registry : sig
  type t
  (** A named set of counters, used as the per-component stats block so tests
      and benches can interrogate microarchitectural event counts by name. *)

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** [counter t name] returns the counter registered under [name], creating
      it on first use. *)

  val get : t -> string -> int
  (** [get t name] is the current count ([0] if never touched). *)

  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val reset_all : t -> unit

  val to_list : t -> (string * int) list
  (** All counters sorted by name. *)

  val pp : Format.formatter -> t -> unit
end
