type t = {
  capacity : int;
  (* Departure times recorded but not yet consumed by a later [admit]. *)
  departures : int Queue.t;
  mutable admitted : int;
  mutable released : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Admission.create: capacity must be positive";
  { capacity; departures = Queue.create (); admitted = 0; released = 0 }

let capacity t = t.capacity

let peek_entry t ~now =
  (* Mirror [admit]'s arithmetic without consuming state: the next admission
     is number [admitted + 1], which waits on the FIFO-head departure once
     the room has been filled.  When that departure has not been recorded
     yet (its occupant is still inside), entry is unboundedly far away. *)
  if t.admitted < t.capacity then now
  else match Queue.peek_opt t.departures with
    | Some d -> max now d
    | None -> max_int

let admit t ~now =
  t.admitted <- t.admitted + 1;
  (* The k-th admission waits for the departure of the (k - capacity)-th
     occupant; departures are recorded in admission order, so it is the
     FIFO head. *)
  if t.admitted > t.capacity then max now (Queue.pop t.departures) else now

let release t ~at =
  t.released <- t.released + 1;
  Queue.add at t.departures

let occupants t = t.admitted - t.released

let reset t =
  Queue.clear t.departures;
  t.admitted <- 0;
  t.released <- 0
