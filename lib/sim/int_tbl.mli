(** Open-addressed int->int hash table for per-line bookkeeping on the
    access path: no boxing, no [option] allocation on lookup, int hashing
    instead of structural hashing.  Keys must be non-negative (they are
    addresses).  Entries are overwritten in place and never removed. *)

type t

val create : ?size_hint:int -> unit -> t
(** [create ~size_hint ()] pre-sizes the table for about [size_hint]
    entries (default 64), avoiding rehashes while it fills. *)

val replace : t -> int -> int -> unit
(** [replace t key v] binds [key] to [v], overwriting any previous
    binding.  Raises [Invalid_argument] on a negative key. *)

val find_default : t -> int -> default:int -> int
(** [find_default t key ~default] is the value bound to [key], or
    [default] when unbound. *)

val mem : t -> int -> bool
val length : t -> int
val clear : t -> unit
val iter : t -> (int -> int -> unit) -> unit
