module Rng = Skipit_sim.Rng

type process =
  | Poisson
  | Bursty of { on : int; off : int }
  | Degraded of { windows : (int * int) list; base : process }

let default_bursty = Bursty { on = 2000; off = 6000 }

let rec process_name = function
  | Poisson -> "poisson"
  | Bursty { on; off } -> Printf.sprintf "bursty:%d/%d" on off
  | Degraded { windows; base } ->
    Printf.sprintf "degraded:%s:%s"
      (String.concat ","
         (List.map (fun (s, e) -> Printf.sprintf "%d-%d" s e) windows))
      (process_name base)

(* Fault windows must be well-formed for the gap walk to terminate:
   non-empty, each window non-empty, sorted, disjoint. *)
let valid_windows windows =
  windows <> []
  && fst (List.hd windows) >= 0
  && List.for_all (fun (s, e) -> e > s) windows
  && fst (List.fold_left (fun (ok, prev) (s, e) -> (ok && s >= prev, e)) (true, 0) windows)

let parse_window w =
  match String.split_on_char '-' w with
  | [ a; b ] -> (
    match int_of_string_opt a, int_of_string_opt b with
    | Some s, Some e -> Some (s, e)
    | _ -> None)
  | _ -> None

let rec process_of_name s =
  match s with
  | "poisson" -> Some Poisson
  | "bursty" -> Some default_bursty
  | _ ->
    (match String.index_opt s ':' with
     | Some i when String.sub s 0 i = "bursty" -> (
       let rest = String.sub s (i + 1) (String.length s - i - 1) in
       match String.split_on_char '/' rest with
       | [ a; b ] -> (
         match int_of_string_opt a, int_of_string_opt b with
         | Some on, Some off when on > 0 && off >= 0 -> Some (Bursty { on; off })
         | _ -> None)
       | _ -> None)
     | Some i when String.sub s 0 i = "degraded" -> (
       (* degraded:S-E[,S-E]:BASE — the window list never contains ':', so
          the first ':' after the prefix splits windows from the base name
          (which may itself contain ':'). *)
       let rest = String.sub s (i + 1) (String.length s - i - 1) in
       match String.index_opt rest ':' with
       | None -> None
       | Some j -> (
         let wspec = String.sub rest 0 j in
         let bspec = String.sub rest (j + 1) (String.length rest - j - 1) in
         let windows =
           List.filter_map parse_window (String.split_on_char ',' wspec)
         in
         if List.length windows <> List.length (String.split_on_char ',' wspec)
            || not (valid_windows windows)
         then None
         else
           match process_of_name bspec with
           | Some (Degraded _) | None -> None
           | Some base -> Some (Degraded { windows; base })))
     | _ -> None)

type op = Insert | Delete | Contains

let op_name = function Insert -> "insert" | Delete -> "delete" | Contains -> "contains"

type request = {
  arrival : int;
  client : int;
  seq : int;
  op : op;
  key : int;
}

(* Skip [t] forward past every cycle in which no arrival can occur: the off
   phases of a bursty process, and any degraded (fault) window.  Each
   recursion strictly advances [t], and the window list is finite, so the
   walk terminates. *)
let rec skip_gaps process t =
  match process with
  | Poisson -> t
  | Bursty { on; off } ->
    let period = on + off in
    if t mod period < on then t else (t / period + 1) * period
  | Degraded { windows; base } -> (
    let t' = skip_gaps base t in
    match List.find_opt (fun (s, e) -> t' >= s && t' < e) windows with
    | Some (_, e) -> skip_gaps process e
    | None -> t')

(* The on-phase rate boost that keeps long-run offered load at the
   configured rate.  Degraded windows deliberately do NOT boost: a fault
   window erases the load that would have arrived during it (clients gone
   dark), it does not defer it. *)
let rec rate_boost = function
  | Poisson -> 1.
  | Bursty { on; off } -> float_of_int (on + off) /. float_of_int on
  | Degraded { base; _ } -> rate_boost base

(* One client session: its own Rng split, its own clock, its own request
   counter.  [p] is the per-cycle arrival probability during an active
   phase. *)
type session = {
  id : int;
  rng : Rng.t;
  p : float;
  mutable clock : int;
  mutable count : int;
}

(* Advance [s.clock] past its next arrival: Bernoulli trials cycle by
   cycle, skipping off phases and degraded windows.  The trial cap bounds
   the walk when [p] is tiny (it shows up as one very late arrival rather
   than an unbounded loop). *)
let next_arrival process s =
  let cap = 10_000_000 in
  let t = ref (skip_gaps process (s.clock + 1)) in
  let trials = ref 0 in
  while not (Rng.chance s.rng s.p) && !trials < cap do
    incr trials;
    t := skip_gaps process (!t + 1)
  done;
  s.clock <- !t;
  !t

let aggregate_threshold = 256

(* Fleet-scale populations: walking one Bernoulli stream per session costs
   O(clients^2 / rate) trials just to prime the merge.  Above the
   threshold we sample the *aggregate* process instead — one merged
   Bernoulli stream at the full offered rate, with the owning client drawn
   uniformly per arrival.  For a thinned Bernoulli/Poisson process the two
   formulations have identical law (and bursty phases are global — every
   session shares the same on/off alignment — so the on-phase boost
   composes the same way); the concrete draws differ from the per-session
   merge, so schedules are comparable only within one regime.  Still a
   pure function of the configuration. *)
let schedule_aggregate ~process ~p ~clients ~requests ~key_range ~update_pct ~seed =
  let rng = Rng.create ~seed in
  let counts = Array.make clients 0 in
  let clock = ref (-1) in
  let cap = 10_000_000 in
  Array.init requests (fun _ ->
    let t = ref (skip_gaps process (!clock + 1)) in
    let trials = ref 0 in
    while not (Rng.chance rng p) && !trials < cap do
      incr trials;
      t := skip_gaps process (!t + 1)
    done;
    clock := !t;
    let client = Rng.int rng clients in
    let r = Rng.int rng 100 in
    let op =
      if r < update_pct then if Rng.bool rng then Insert else Delete else Contains
    in
    let key = 1 + Rng.int rng key_range in
    let seq = counts.(client) in
    counts.(client) <- seq + 1;
    { arrival = !t; client; seq; op; key })

let schedule ~process ~rate ~clients ~requests ~key_range ~update_pct ~seed =
  if rate <= 0. then invalid_arg "Arrival.schedule: rate must be positive";
  if clients <= 0 then invalid_arg "Arrival.schedule: clients must be positive";
  if key_range <= 0 then invalid_arg "Arrival.schedule: key_range must be positive";
  (match process with
   | Degraded { windows; base } ->
     if not (valid_windows windows) then
       invalid_arg "Arrival.schedule: degraded windows must be sorted, disjoint, non-empty";
     (match base with
      | Degraded _ -> invalid_arg "Arrival.schedule: degraded process cannot nest"
      | _ -> ())
   | _ -> ());
  let boost = rate_boost process in
  if clients > aggregate_threshold then
    let p = Float.min 1. (rate /. 1000. *. boost) in
    schedule_aggregate ~process ~p ~clients ~requests ~key_range ~update_pct ~seed
  else begin
    let p = Float.min 1. (rate /. 1000. /. float_of_int clients *. boost) in
    let master = Rng.create ~seed in
    let sessions =
      Array.init clients (fun id ->
        { id; rng = Rng.split master; p; clock = -1; count = 0 })
    in
    (* Prime every session with its first arrival, then pull the globally
       earliest [requests] times (earliest-deadline merge; ties by client id
       via the scan order, seq is strictly increasing per client). *)
    Array.iter (fun s -> ignore (next_arrival process s)) sessions;
    let out =
      Array.init requests (fun _ ->
        let best = ref sessions.(0) in
        Array.iter (fun s -> if s.clock < !best.clock then best := s) sessions;
        let s = !best in
        let r = Rng.int s.rng 100 in
        let op =
          if r < update_pct then if Rng.bool s.rng then Insert else Delete
          else Contains
        in
        let key = 1 + Rng.int s.rng key_range in
        let req = { arrival = s.clock; client = s.id; seq = s.count; op; key } in
        s.count <- s.count + 1;
        ignore (next_arrival process s);
        req)
    in
    out
  end
