module Rng = Skipit_sim.Rng

type process =
  | Poisson
  | Bursty of { on : int; off : int }
  | Phased of { phases : (int * int) list; base : process }
  | Degraded of { windows : (int * int) list; base : process }

let default_bursty = Bursty { on = 2000; off = 6000 }

let rec process_name = function
  | Poisson -> "poisson"
  | Bursty { on; off } -> Printf.sprintf "bursty:%d/%d" on off
  | Phased { phases; base } ->
    Printf.sprintf "phases:%s:%s"
      (String.concat ","
         (List.map (fun (l, m) -> Printf.sprintf "%dx%d" l m) phases))
      (process_name base)
  | Degraded { windows; base } ->
    Printf.sprintf "degraded:%s:%s"
      (String.concat ","
         (List.map (fun (s, e) -> Printf.sprintf "%d-%d" s e) windows))
      (process_name base)

(* Fault windows must be well-formed for the gap walk to terminate:
   non-empty, each window non-empty, sorted, disjoint. *)
let valid_windows windows =
  windows <> []
  && fst (List.hd windows) >= 0
  && List.for_all (fun (s, e) -> e > s) windows
  && fst (List.fold_left (fun (ok, prev) (s, e) -> (ok && s >= prev, e)) (true, 0) windows)

let parse_window w =
  match String.split_on_char '-' w with
  | [ a; b ] -> (
    match int_of_string_opt a, int_of_string_opt b with
    | Some s, Some e -> Some (s, e)
    | _ -> None)
  | _ -> None

(* A phase list must have positive lengths and at least one phase with a
   non-zero rate multiplier, or the gap walk would never find an active
   cycle. *)
let valid_phases phases =
  phases <> []
  && List.for_all (fun (l, m) -> l > 0 && m >= 0) phases
  && List.exists (fun (_, m) -> m > 0) phases

let parse_phase seg =
  match String.split_on_char 'x' seg with
  | [ a; b ] -> (
    match int_of_string_opt a, int_of_string_opt b with
    | Some l, Some m -> Some (l, m)
    | _ -> None)
  | _ -> None

let rec process_of_name s =
  match s with
  | "poisson" -> Some Poisson
  | "bursty" -> Some default_bursty
  | _ ->
    (match String.index_opt s ':' with
     | Some i when String.sub s 0 i = "bursty" -> (
       let rest = String.sub s (i + 1) (String.length s - i - 1) in
       match String.split_on_char '/' rest with
       | [ a; b ] -> (
         match int_of_string_opt a, int_of_string_opt b with
         | Some on, Some off when on > 0 && off >= 0 -> Some (Bursty { on; off })
         | _ -> None)
       | _ -> None)
     | Some i when String.sub s 0 i = "phases" -> (
       (* phases:LENxMILLI[,LENxMILLI]:BASE — segment lengths in cycles,
          rate multipliers in thousandths (integers, so the name
          round-trips without float formatting).  BASE must be a plain
          poisson/bursty process. *)
       let rest = String.sub s (i + 1) (String.length s - i - 1) in
       match String.index_opt rest ':' with
       | None -> None
       | Some j -> (
         let pspec = String.sub rest 0 j in
         let bspec = String.sub rest (j + 1) (String.length rest - j - 1) in
         let phases =
           List.filter_map parse_phase (String.split_on_char ',' pspec)
         in
         if List.length phases <> List.length (String.split_on_char ',' pspec)
            || not (valid_phases phases)
         then None
         else
           match process_of_name bspec with
           | Some ((Poisson | Bursty _) as base) -> Some (Phased { phases; base })
           | _ -> None))
     | Some i when String.sub s 0 i = "degraded" -> (
       (* degraded:S-E[,S-E]:BASE — the window list never contains ':', so
          the first ':' after the prefix splits windows from the base name
          (which may itself contain ':'). *)
       let rest = String.sub s (i + 1) (String.length s - i - 1) in
       match String.index_opt rest ':' with
       | None -> None
       | Some j -> (
         let wspec = String.sub rest 0 j in
         let bspec = String.sub rest (j + 1) (String.length rest - j - 1) in
         let windows =
           List.filter_map parse_window (String.split_on_char ',' wspec)
         in
         if List.length windows <> List.length (String.split_on_char ',' wspec)
            || not (valid_windows windows)
         then None
         else
           match process_of_name bspec with
           | Some (Degraded _) | None -> None
           | Some base -> Some (Degraded { windows; base })))
     | _ -> None)

type op = Insert | Delete | Contains

let op_name = function Insert -> "insert" | Delete -> "delete" | Contains -> "contains"

type request = {
  arrival : int;
  client : int;
  seq : int;
  op : op;
  key : int;
}

type draw = Rng.t -> at:int -> op * int

(* The historical inline op/key draw, kept as the default so every
   schedule produced before the workload layer existed is byte-identical:
   one [Rng.int _ 100] for the op class, a [Rng.bool] only for updates,
   then one [Rng.int _ key_range] for the key. *)
let uniform_draw ~key_range ~update_pct : draw =
 fun rng ~at:_ ->
  let r = Rng.int rng 100 in
  let op =
    if r < update_pct then if Rng.bool rng then Insert else Delete
    else Contains
  in
  let key = 1 + Rng.int rng key_range in
  (op, key)

(* Skip [t] forward past every cycle in which no arrival can occur: the off
   phases of a bursty process, and any degraded (fault) window.  Each
   recursion strictly advances [t], and the window list is finite, so the
   walk terminates. *)
let rec skip_gaps process t =
  match process with
  | Poisson -> t
  | Bursty { on; off } ->
    let period = on + off in
    if t mod period < on then t else (t / period + 1) * period
  | Phased { phases; base } -> (
    let t' = skip_gaps base t in
    let period = List.fold_left (fun a (l, _) -> a + l) 0 phases in
    let pos = t' mod period in
    (* Find the segment containing [pos]; a zero-multiplier segment is a
       gap, so jump to its end and rewalk the whole process from there. *)
    let rec seg start = function
      | [] -> t' (* unreachable: pos < period *)
      | (l, m) :: rest ->
        if pos < start + l then
          if m > 0 then t' else skip_gaps process (t' - pos + start + l)
        else seg (start + l) rest
    in
    seg 0 phases)
  | Degraded { windows; base } -> (
    let t' = skip_gaps base t in
    match List.find_opt (fun (s, e) -> t' >= s && t' < e) windows with
    | Some (_, e) -> skip_gaps process e
    | None -> t')

(* The on-phase rate boost that keeps long-run offered load at the
   configured rate.  Degraded windows deliberately do NOT boost: a fault
   window erases the load that would have arrived during it (clients gone
   dark), it does not defer it.  Phased segments DO normalise — a diurnal
   trough defers load to the peaks, so the per-cycle base probability is
   scaled by period / Σ(len·mult) and each active cycle then multiplies by
   its own segment multiplier ({!mult_milli_at}), keeping the long-run
   offered load at [rate]. *)
let rec rate_boost = function
  | Poisson -> 1.
  | Bursty { on; off } -> float_of_int (on + off) /. float_of_int on
  | Phased { phases; base } ->
    let period = List.fold_left (fun a (l, _) -> a + l) 0 phases in
    let weight = List.fold_left (fun a (l, m) -> a + (l * m)) 0 phases in
    float_of_int period *. 1000. /. float_of_int weight *. rate_boost base
  | Degraded { base; _ } -> rate_boost base

(* Diurnal rate multiplier (in thousandths) in force at cycle [t]; 1000
   everywhere except inside a [Phased] segment. *)
let mult_milli_at process t =
  let rec go = function
    | Poisson | Bursty _ -> 1000
    | Degraded { base; _ } -> go base
    | Phased { phases; base } ->
      let period = List.fold_left (fun a (l, _) -> a + l) 0 phases in
      let pos = t mod period in
      let rec seg start = function
        | [] -> 1000 (* unreachable: pos < period *)
        | (l, m) :: rest -> if pos < start + l then m else seg (start + l) rest
      in
      seg 0 phases * go base / 1000
  in
  go process

(* Per-cycle trial probability at cycle [t].  The [1000] fast path keeps
   non-phased processes bit-identical to the historical fixed-probability
   walk (p *. 1.0 is exact, but not even that is evaluated). *)
let p_at process p t =
  match mult_milli_at process t with
  | 1000 -> p
  | m -> p *. (float_of_int m /. 1000.)

(* Wrap [process] in a diurnal phase schedule at the right nesting depth:
   phases sit below degraded windows (an outage erases whatever the
   schedule would have offered) and above the base poisson/bursty shape. *)
let with_phases process phases =
  if not (valid_phases phases) then None
  else
    match process with
    | (Poisson | Bursty _) as base -> Some (Phased { phases; base })
    | Phased _ -> None
    | Degraded { windows; base } -> (
      match base with
      | (Poisson | Bursty _) as b ->
        Some (Degraded { windows; base = Phased { phases; base = b } })
      | _ -> None)

(* CLI-facing phase spec: "LEN:MULT[,LEN:MULT]" with MULT a decimal
   multiplier ("36000:0.25,12000:2.5").  Parsed once into integer
   thousandths, so everything downstream stays float-format-free. *)
let phases_of_spec spec =
  let seg s =
    match String.split_on_char ':' s with
    | [ a; b ] -> (
      match int_of_string_opt a, float_of_string_opt b with
      | Some l, Some m when m >= 0. && m <= 1000. ->
        Some (l, int_of_float ((m *. 1000.) +. 0.5))
      | _ -> None)
    | _ -> None
  in
  let parts = String.split_on_char ',' spec in
  let phases = List.filter_map seg parts in
  if List.length phases <> List.length parts || not (valid_phases phases) then
    None
  else Some phases

(* One client session: its own Rng split, its own clock, its own request
   counter.  [p] is the per-cycle arrival probability during an active
   phase. *)
type session = {
  id : int;
  rng : Rng.t;
  p : float;
  mutable clock : int;
  mutable count : int;
}

(* Advance [s.clock] past its next arrival: Bernoulli trials cycle by
   cycle, skipping off phases and degraded windows.  The trial cap bounds
   the walk when [p] is tiny (it shows up as one very late arrival rather
   than an unbounded loop). *)
let next_arrival process s =
  let cap = 10_000_000 in
  let t = ref (skip_gaps process (s.clock + 1)) in
  let trials = ref 0 in
  while not (Rng.chance s.rng (p_at process s.p !t)) && !trials < cap do
    incr trials;
    t := skip_gaps process (!t + 1)
  done;
  s.clock <- !t;
  !t

let aggregate_threshold = 256

(* Fleet-scale populations: walking one Bernoulli stream per session costs
   O(clients^2 / rate) trials just to prime the merge.  Above the
   threshold we sample the *aggregate* process instead — one merged
   Bernoulli stream at the full offered rate, with the owning client drawn
   uniformly per arrival.  For a thinned Bernoulli/Poisson process the two
   formulations have identical law (and bursty phases are global — every
   session shares the same on/off alignment — so the on-phase boost
   composes the same way); the concrete draws differ from the per-session
   merge, so schedules are comparable only within one regime.  Still a
   pure function of the configuration. *)
let schedule_aggregate ~process ~draw ~p ~clients ~requests ~seed =
  let rng = Rng.create ~seed in
  let counts = Array.make clients 0 in
  let clock = ref (-1) in
  let cap = 10_000_000 in
  Array.init requests (fun _ ->
    let t = ref (skip_gaps process (!clock + 1)) in
    let trials = ref 0 in
    while not (Rng.chance rng (p_at process p !t)) && !trials < cap do
      incr trials;
      t := skip_gaps process (!t + 1)
    done;
    clock := !t;
    let client = Rng.int rng clients in
    let op, key = draw rng ~at:!t in
    let seq = counts.(client) in
    counts.(client) <- seq + 1;
    { arrival = !t; client; seq; op; key })

(* Reject malformed process nestings before any rng state is consumed.
   Phases sit strictly between degraded windows and the poisson/bursty
   base; neither wrapper nests with itself. *)
let rec validate_process = function
  | Poisson | Bursty _ -> ()
  | Phased { phases; base } ->
    if not (valid_phases phases) then
      invalid_arg
        "Arrival.schedule: phases need positive lengths and a non-zero multiplier";
    (match base with
     | Poisson | Bursty _ -> validate_process base
     | _ -> invalid_arg "Arrival.schedule: phased base must be poisson or bursty")
  | Degraded { windows; base } ->
    if not (valid_windows windows) then
      invalid_arg "Arrival.schedule: degraded windows must be sorted, disjoint, non-empty";
    (match base with
     | Degraded _ -> invalid_arg "Arrival.schedule: degraded process cannot nest"
     | _ -> validate_process base)

let schedule ~process ?draw ~rate ~clients ~requests ~key_range ~update_pct ~seed () =
  if rate <= 0. then invalid_arg "Arrival.schedule: rate must be positive";
  if clients <= 0 then invalid_arg "Arrival.schedule: clients must be positive";
  if key_range <= 0 then invalid_arg "Arrival.schedule: key_range must be positive";
  validate_process process;
  let draw =
    match draw with Some d -> d | None -> uniform_draw ~key_range ~update_pct
  in
  let boost = rate_boost process in
  if clients > aggregate_threshold then
    let p = Float.min 1. (rate /. 1000. *. boost) in
    schedule_aggregate ~process ~draw ~p ~clients ~requests ~seed
  else begin
    let p = Float.min 1. (rate /. 1000. /. float_of_int clients *. boost) in
    let master = Rng.create ~seed in
    let sessions =
      Array.init clients (fun id ->
        { id; rng = Rng.split master; p; clock = -1; count = 0 })
    in
    (* Prime every session with its first arrival, then pull the globally
       earliest [requests] times (earliest-deadline merge; ties by client id
       via the scan order, seq is strictly increasing per client). *)
    Array.iter (fun s -> ignore (next_arrival process s)) sessions;
    let out =
      Array.init requests (fun _ ->
        let best = ref sessions.(0) in
        Array.iter (fun s -> if s.clock < !best.clock then best := s) sessions;
        let s = !best in
        let op, key = draw s.rng ~at:s.clock in
        let req = { arrival = s.clock; client = s.id; seq = s.count; op; key } in
        s.count <- s.count + 1;
        ignore (next_arrival process s);
        req)
    in
    out
  end
