module Rng = Skipit_sim.Rng

type process =
  | Poisson
  | Bursty of { on : int; off : int }

let default_bursty = Bursty { on = 2000; off = 6000 }

let process_name = function
  | Poisson -> "poisson"
  | Bursty { on; off } -> Printf.sprintf "bursty:%d/%d" on off

let process_of_name s =
  match s with
  | "poisson" -> Some Poisson
  | "bursty" -> Some default_bursty
  | _ ->
    (match String.index_opt s ':' with
     | Some i when String.sub s 0 i = "bursty" -> (
       let rest = String.sub s (i + 1) (String.length s - i - 1) in
       match String.split_on_char '/' rest with
       | [ a; b ] -> (
         match int_of_string_opt a, int_of_string_opt b with
         | Some on, Some off when on > 0 && off >= 0 -> Some (Bursty { on; off })
         | _ -> None)
       | _ -> None)
     | _ -> None)

type op = Insert | Delete | Contains

let op_name = function Insert -> "insert" | Delete -> "delete" | Contains -> "contains"

type request = {
  arrival : int;
  client : int;
  seq : int;
  op : op;
  key : int;
}

(* One client session: its own Rng split, its own clock, its own request
   counter.  [p] is the per-cycle arrival probability during an active
   phase. *)
type session = {
  id : int;
  rng : Rng.t;
  p : float;
  mutable clock : int;
  mutable count : int;
}

(* Advance [s.clock] past its next arrival: Bernoulli trials cycle by
   cycle, skipping off phases for bursty processes.  The trial cap bounds
   the walk when [p] is tiny (it shows up as one very late arrival rather
   than an unbounded loop). *)
let next_arrival process s =
  let skip_off t =
    match process with
    | Poisson -> t
    | Bursty { on; off } ->
      let period = on + off in
      if t mod period < on then t else (t / period + 1) * period
  in
  let cap = 10_000_000 in
  let t = ref (skip_off (s.clock + 1)) in
  let trials = ref 0 in
  while not (Rng.chance s.rng s.p) && !trials < cap do
    incr trials;
    t := skip_off (!t + 1)
  done;
  s.clock <- !t;
  !t

let schedule ~process ~rate ~clients ~requests ~key_range ~update_pct ~seed =
  if rate <= 0. then invalid_arg "Arrival.schedule: rate must be positive";
  if clients <= 0 then invalid_arg "Arrival.schedule: clients must be positive";
  if key_range <= 0 then invalid_arg "Arrival.schedule: key_range must be positive";
  let boost =
    match process with
    | Poisson -> 1.
    | Bursty { on; off } -> float_of_int (on + off) /. float_of_int on
  in
  let p = Float.min 1. (rate /. 1000. /. float_of_int clients *. boost) in
  let master = Rng.create ~seed in
  let sessions =
    Array.init clients (fun id ->
      { id; rng = Rng.split master; p; clock = -1; count = 0 })
  in
  (* Prime every session with its first arrival, then pull the globally
     earliest [requests] times (earliest-deadline merge; ties by client id
     via the scan order, seq is strictly increasing per client). *)
  Array.iter (fun s -> ignore (next_arrival process s)) sessions;
  let out =
    Array.init requests (fun _ ->
      let best = ref sessions.(0) in
      Array.iter (fun s -> if s.clock < !best.clock then best := s) sessions;
      let s = !best in
      let r = Rng.int s.rng 100 in
      let op =
        if r < update_pct then if Rng.bool s.rng then Insert else Delete
        else Contains
      in
      let key = 1 + Rng.int s.rng key_range in
      let req = { arrival = s.clock; client = s.id; seq = s.count; op; key } in
      s.count <- s.count + 1;
      ignore (next_arrival process s);
      req)
  in
  out
