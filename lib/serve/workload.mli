(** Seeded, bit-identical workload shapes for the serving tier.

    The arrival layer ({!Arrival}) decides {e when} requests arrive; this
    module decides {e what} they ask for: key popularity (uniform or
    Zipfian), read/write mix, and hot-key churn.  Combined with the
    diurnal [Phased] arrival wrapper it gives the serving and fleet
    engines production-shaped traffic — skewed popularity keeps hot lines
    L1-dirty (where skip bits win) while concentrating directory probes
    on the contended lines (where they hurt), which is the trade the
    paper makes interesting.

    Everything is a pure function of the configuration and seed.  The
    Zipf sampler is a precomputed Q30 fixed-point CDF built from integer
    square roots and bit-by-bit log2/exp2 — no [libm] calls, so the same
    config yields the same bytes on every host, every [--jobs] width. *)

type keys =
  | Uniform
  | Zipf of { theta_milli : int }
      (** Zipfian popularity with exponent [theta_milli / 1000]: the
          k-th most popular of n keys has weight ∝ 1/k^θ.  θ = 0 is
          uniform; FliT-style benchmarks use θ ≈ 0.99. *)

type t = {
  keys : keys;
  churn : int option;
      (** Hot-set rotation period in cycles: every [period] cycles the
          rank→key mapping rotates by a fresh seeded offset, so the
          popular keys move while the popularity {e distribution} stays
          fixed.  Requires Zipf keys. *)
}

val default : t
(** Uniform keys, no churn — the historical behaviour. *)

val default_zipf_theta_milli : int
(** 990 (θ = 0.99), the FliT evaluation standard. *)

val max_zipf_range : int
(** Largest [key_range] accepted for Zipf keys (CDF table bound). *)

val keys_name : keys -> string
val keys_of_name : string -> keys option
(** ["uniform"], ["zipf"] (θ = 0.99), or ["zipf:THETA"] with [THETA] a
    decimal like [0.9] (up to 3 fractional digits; parsed to integer
    thousandths, so names round-trip exactly). *)

val name : t -> string
(** E.g. ["uniform"], ["zipf:0.99"], ["zipf:0.99+churn:8000"]. *)

val validate : t -> key_range:int -> (unit, string) result

val zipf_cdf : n:int -> theta_milli:int -> int array
(** Cumulative Q30 fixed-point Zipf weights over ranks [1..n] (exposed
    for the qcheck comparison against a naive float reference). *)

val draw : t -> key_range:int -> update_pct:int -> seed:int -> Arrival.draw
(** The op/key sampler to hand {!Arrival.schedule}.  Uniform keys
    reproduce {!Arrival.uniform_draw} exactly (byte-identical schedules);
    Zipf keys draw a rank from the fixed-point CDF and map it through a
    seeded permutation, rotated per churn epoch.  Raises [Invalid_argument]
    on a config that fails {!validate}. *)

val mix_of_spec : string -> int option
(** ["R:W"] read/write mix → update percentage (e.g. ["80:20"] → [20]). *)
