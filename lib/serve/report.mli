(** Throughput-latency curve rendering for the serving engine.

    All three forms print only simulated quantities (cycles, counts,
    fractions) with fixed formatting, so the output is byte-identical across
    hosts and [--jobs] widths. *)

val default_rates : quick:bool -> float list
(** The standard offered-load sweep (ops per 1000 cycles), crossing the
    single-core saturation point of the default configuration. *)

val pp_config : Format.formatter -> Engine.config -> unit
(** One header line echoing the configuration. *)

val pp_table : Format.formatter -> Engine.point list -> unit

val pp_csv : Format.formatter -> Engine.point list -> unit

val to_json : Engine.config -> Engine.point list -> string
(** A self-contained JSON document: the configuration plus one object per
    sweep point.  Points carry CO-corrected latency (with p99.9), dequeue
    latency, the recorded-vs-intended gap, and — when the run had telemetry
    on — the per-stage cycle attribution. *)

val telemetry_json : Engine.config -> Engine.point list -> string
(** The telemetry dump behind [serve --telemetry]: {!to_json}'s per-point
    fields plus each run's windowed metrics registry
    ({!Skipit_obs.Metrics.to_json}). *)
