module Strategy = Skipit_persist.Strategy
module Pctx = Skipit_persist.Pctx
module Int_tbl = Skipit_sim.Int_tbl

type stats = {
  mutable epochs : int;
  mutable deferred : int;
  mutable flushes : int;
  mutable fences : int;
  mutable passthrough : int;
}

type t = {
  base : Strategy.t;
  pctx : Pctx.t;
  grouping : bool;
  defer_persists : bool;
  (* Distinct lines captured in the open epoch: membership table plus
     first-capture order (replay order must be deterministic). *)
  seen : Int_tbl.t;
  mutable lines : int list;  (* reversed *)
  mutable n_lines : int;
  mutable fence_due : bool;
  stats : stats;
}

let line_of addr = addr land lnot 63

let create ?(group = true) ~strategy ~mode () =
  let stats = { epochs = 0; deferred = 0; flushes = 0; fences = 0; passthrough = 0 } in
  let grouping =
    group && strategy.Strategy.persistent && mode <> Pctx.Manual
  in
  let defer_persists = grouping && strategy.Strategy.deferrable in
  (* Forward references so the wrapped closures can reach the batcher
     record built after them. *)
  let self = ref None in
  let get () = Option.get !self in
  let wrapped =
    if not grouping then strategy
    else
      let persist_point forward addr =
        let b = get () in
        if b.defer_persists then begin
          b.stats.deferred <- b.stats.deferred + 1;
          let line = line_of addr in
          if Int_tbl.find_default b.seen line ~default:0 = 0 then begin
            Int_tbl.replace b.seen line 1;
            b.lines <- line :: b.lines;
            b.n_lines <- b.n_lines + 1
          end
        end
        else begin
          b.stats.passthrough <- b.stats.passthrough + 1;
          forward addr
        end
      in
      {
        strategy with
        Strategy.persist_store = persist_point strategy.Strategy.persist_store;
        persist_load = persist_point strategy.Strategy.persist_load;
        fence = (fun () -> (get ()).fence_due <- true);
      }
  in
  let t =
    {
      base = strategy;
      pctx = Pctx.make wrapped mode;
      grouping;
      defer_persists;
      seen = Int_tbl.create ~size_hint:64 ();
      lines = [];
      n_lines = 0;
      fence_due = false;
      stats;
    }
  in
  self := Some t;
  t

let pctx t = t.pctx
let grouping t = t.grouping
let pending t = t.n_lines
let stats t = t.stats

let commit t =
  if t.grouping && (t.n_lines > 0 || t.fence_due) then begin
    t.stats.epochs <- t.stats.epochs + 1;
    List.iter
      (fun line ->
        t.stats.flushes <- t.stats.flushes + 1;
        t.base.Strategy.persist_store line)
      (List.rev t.lines);
    t.lines <- [];
    t.n_lines <- 0;
    Int_tbl.clear t.seen;
    t.stats.fences <- t.stats.fences + 1;
    t.fence_due <- false;
    t.base.Strategy.fence ()
  end
