module Latency = Skipit_obs.Latency
module Pctx = Skipit_persist.Pctx
module Ops = Skipit_pds.Set_ops
module Ds_bench = Skipit_workload.Ds_bench

let default_rates ~quick =
  if quick then [ 2.; 8.; 24. ] else [ 1.; 2.; 4.; 8.; 12.; 16.; 24.; 32. ]

let pp_config ppf (cfg : Engine.config) =
  Format.fprintf ppf
    "serve: %s x %s x %s, %s arrivals, %s keys, mix %d:%d, %d clients, %d requests, \
     batch %d, depth %d, %d core%s, seed %d@,"
    (Ops.kind_name cfg.Engine.kind)
    (Pctx.mode_name cfg.Engine.mode)
    (Ds_bench.spec_name cfg.Engine.spec)
    (Arrival.process_name cfg.Engine.process)
    (Workload.name cfg.Engine.workload)
    (100 - cfg.Engine.update_pct) cfg.Engine.update_pct
    cfg.Engine.clients cfg.Engine.requests cfg.Engine.batch cfg.Engine.depth
    cfg.Engine.cores
    (if cfg.Engine.cores = 1 then "" else "s")
    cfg.Engine.seed

(* Latency columns render "-" when nothing was served. *)
let lat_cols (p : Engine.point) =
  match p.Engine.latency with
  | Some s ->
    ( Printf.sprintf "%.0f" s.Latency.p50,
      Printf.sprintf "%.0f" s.Latency.p95,
      Printf.sprintf "%.0f" s.Latency.p99,
      Printf.sprintf "%.0f" s.Latency.p999,
      Printf.sprintf "%.0f" s.Latency.max )
  | None -> "-", "-", "-", "-", "-"

let pp_table ppf points =
  Format.fprintf ppf "%8s %9s %7s %7s %7s %8s %8s %8s %8s %8s %7s %8s %6s@," "offered"
    "achieved" "served" "shed" "shed%" "p50" "p95" "p99" "p99.9" "max" "epochs" "wb"
    "skip%";
  List.iter
    (fun (p : Engine.point) ->
      let p50, p95, p99, p999, pmax = lat_cols p in
      Format.fprintf ppf
        "%8.1f %9.2f %7d %7d %6.1f%% %8s %8s %8s %8s %8s %7d %8d %5.1f%%@,"
        p.Engine.offered p.Engine.achieved p.Engine.served p.Engine.shed
        (100. *. Engine.shed_fraction p)
        p50 p95 p99 p999 pmax p.Engine.epochs p.Engine.flushes
        (100. *. Engine.skip_hit_rate p))
    points

let pp_csv ppf points =
  Format.fprintf ppf
    "offered,achieved,served,shed,shed_fraction,p50,p95,p99,p999,max,elapsed,epochs,flushes,deferred,passthrough,fences,skip_dropped,wb_submitted@,";
  List.iter
    (fun (p : Engine.point) ->
      let p50, p95, p99, p999, pmax = lat_cols p in
      Format.fprintf ppf "%.3f,%.3f,%d,%d,%.4f,%s,%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d@,"
        p.Engine.offered p.Engine.achieved p.Engine.served p.Engine.shed
        (Engine.shed_fraction p) p50 p95 p99 p999 pmax p.Engine.elapsed p.Engine.epochs
        p.Engine.flushes p.Engine.deferred p.Engine.passthrough p.Engine.fences
        p.Engine.skip_dropped p.Engine.wb_submitted)
    points

let summary_json name (s : Latency.summary) =
  Printf.sprintf
    ", \"%s\": {\"count\": %d, \"mean\": %.2f, \"p50\": %.1f, \"p95\": %.1f, \
     \"p99\": %.1f, \"p999\": %.1f, \"max\": %.1f}"
    name s.Latency.count s.Latency.mean s.Latency.p50 s.Latency.p95 s.Latency.p99
    s.Latency.p999 s.Latency.max

let attribution_json (p : Engine.point) =
  match p.Engine.attribution with
  | [] -> ""
  | stages ->
    let fields =
      String.concat ", "
        (List.map (fun (name, c) -> Printf.sprintf "\"%s\": %d" name c) stages)
    in
    Printf.sprintf
      ", \"attribution\": {%s}, \"attr_requests\": %d, \"attr_trimmed\": %d, \
       \"attr_conserved\": %b"
      fields p.Engine.attr_requests p.Engine.attr_trimmed p.Engine.attr_conserved

let gap_json (p : Engine.point) =
  match p.Engine.gap with
  | None -> ""
  | Some g ->
    Printf.sprintf
      ", \"co_gap\": {\"p50\": %.1f, \"p99\": %.1f, \"p999\": %.1f}"
      g.Latency.gap_p50 g.Latency.gap_p99 g.Latency.gap_p999

let to_json (cfg : Engine.config) points =
  let buf = Buffer.create 2048 in
  let add = Buffer.add_string buf in
  add "{\n";
  add
    (Printf.sprintf
       "  \"config\": {\"structure\": \"%s\", \"mode\": \"%s\", \"strategy\": \"%s\", \
        \"arrival\": \"%s\", \"workload\": \"%s\", \"clients\": %d, \"requests\": %d, \
        \"batch\": %d, \"depth\": %d, \"cores\": %d, \"key_range\": %d, \
        \"update_pct\": %d, \"seed\": %d},\n"
       (Ops.kind_name cfg.Engine.kind)
       (Pctx.mode_name cfg.Engine.mode)
       (Ds_bench.spec_name cfg.Engine.spec)
       (Arrival.process_name cfg.Engine.process)
       (Workload.name cfg.Engine.workload)
       cfg.Engine.clients cfg.Engine.requests cfg.Engine.batch cfg.Engine.depth
       cfg.Engine.cores cfg.Engine.key_range cfg.Engine.update_pct cfg.Engine.seed);
  add "  \"points\": [\n";
  List.iteri
    (fun i (p : Engine.point) ->
      if i > 0 then add ",\n";
      add
        (Printf.sprintf
           "    {\"offered\": %.3f, \"achieved\": %.3f, \"served\": %d, \"shed\": %d, \
            \"shed_fraction\": %.4f, \"elapsed\": %d, \"epochs\": %d, \"flushes\": %d, \
            \"deferred\": %d, \"passthrough\": %d, \"fences\": %d, \
            \"skip_dropped\": %d, \"wb_submitted\": %d"
           p.Engine.offered p.Engine.achieved p.Engine.served p.Engine.shed
           (Engine.shed_fraction p) p.Engine.elapsed p.Engine.epochs p.Engine.flushes
           p.Engine.deferred p.Engine.passthrough p.Engine.fences
           p.Engine.skip_dropped p.Engine.wb_submitted);
      (match p.Engine.latency with
       | Some s -> add (summary_json "latency" s)
       | None -> ());
      (match p.Engine.dequeue_latency with
       | Some s -> add (summary_json "dequeue_latency" s)
       | None -> ());
      add (gap_json p);
      add (attribution_json p);
      add "}")
    points;
  add "\n  ]\n}\n";
  Buffer.contents buf

(* A telemetry dump is the sweep JSON plus, per point, the run's windowed
   metrics registry.  Everything is simulated-cycle keyed, so the document
   is byte-identical at any --jobs width. *)
let telemetry_json (cfg : Engine.config) points =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n";
  add
    (Printf.sprintf
       "  \"config\": {\"structure\": \"%s\", \"mode\": \"%s\", \"strategy\": \"%s\", \
        \"arrival\": \"%s\", \"workload\": \"%s\", \"clients\": %d, \"requests\": %d, \
        \"batch\": %d, \"depth\": %d, \"cores\": %d, \"seed\": %d, \"window\": %d},\n"
       (Ops.kind_name cfg.Engine.kind)
       (Pctx.mode_name cfg.Engine.mode)
       (Ds_bench.spec_name cfg.Engine.spec)
       (Arrival.process_name cfg.Engine.process)
       (Workload.name cfg.Engine.workload)
       cfg.Engine.clients cfg.Engine.requests cfg.Engine.batch cfg.Engine.depth
       cfg.Engine.cores cfg.Engine.seed cfg.Engine.window);
  add "  \"points\": [\n";
  List.iteri
    (fun i (p : Engine.point) ->
      if i > 0 then add ",\n";
      add
        (Printf.sprintf "    {\"offered\": %.3f, \"served\": %d, \"shed\": %d"
           p.Engine.offered p.Engine.served p.Engine.shed);
      (match p.Engine.latency with
       | Some s -> add (summary_json "latency" s)
       | None -> ());
      (match p.Engine.dequeue_latency with
       | Some s -> add (summary_json "dequeue_latency" s)
       | None -> ());
      add (gap_json p);
      add (attribution_json p);
      (match p.Engine.metrics with
       | Some m -> add (", \"metrics\": " ^ Skipit_obs.Metrics.to_json m)
       | None -> ());
      add "}")
    points;
  add "\n  ]\n}\n";
  Buffer.contents buf
