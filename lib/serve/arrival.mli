(** Open-loop arrival schedules for the serving engine.

    Unlike the closed-loop §7.4 harness (a fixed number of worker threads
    issuing the next operation as soon as the previous one returns), an
    open-loop client population decides {e when} requests arrive
    independently of how fast the server drains them — the regime where
    queueing delay, tail latency and load shedding exist at all.

    A schedule is the deterministic merge of [clients] independent session
    streams.  Each session owns a split of the master {!Skipit_sim.Rng}
    stream and draws its own inter-arrival gaps, operations and keys, so the
    whole schedule is a pure function of the configuration — the property
    the byte-identical [--jobs] reduction and the CI gates rely on.  Above
    {!aggregate_threshold} clients the schedule is drawn from the merged
    aggregate stream instead (same law, one Bernoulli walk at the full
    offered rate), which is what makes 10{^5}–10{^6}-client fleet runs
    tractable.

    Inter-arrival gaps are sampled from a Bernoulli process (one trial per
    simulated cycle), i.e. the discrete-time Poisson process, using only
    integer and exact [Rng] arithmetic — no [libm] calls whose last-ulp
    behaviour could differ across hosts. *)

(** Arrival process shape.  [Bursty] alternates fixed-length on/off phases
    per client; arrivals are drawn only during on phases, at a rate scaled
    by [(on + off) / on] so the long-run offered load still matches the
    configured rate (a deterministic on/off — interrupted Poisson —
    process).  [Phased] imposes a piecewise-constant diurnal rate schedule:
    a repeating cycle of [(length, mult_milli)] segments (multiplier in
    integer thousandths) scaling the base poisson/bursty rate, normalised
    so the long-run offered load still matches the configured rate; a
    zero-multiplier segment is a dead trough (no arrivals).  [Degraded]
    suppresses arrivals inside fixed fault windows [(start, stop)]
    (half-open, in cycles) layered over any non-degraded base process:
    clients inside a fault window are dark, and — unlike a bursty off
    phase or a diurnal trough — their load is erased, not deferred, so a
    fault schedule can overlap a bursty or phased schedule without
    changing the draws outside the windows.  Nesting order is
    [Degraded ⊃ Phased ⊃ {Poisson, Bursty}]. *)
type process =
  | Poisson
  | Bursty of { on : int; off : int }
  | Phased of { phases : (int * int) list; base : process }
  | Degraded of { windows : (int * int) list; base : process }

val default_bursty : process
(** 2000 cycles on, 6000 off: 4x the average rate in one quarter of the
    time. *)

val process_name : process -> string

val process_of_name : string -> process option
(** ["poisson"], ["bursty"] (the default phases), ["bursty:ON/OFF"],
    ["phases:LENxMILLI[,LENxMILLI]:BASE"] ([BASE] poisson/bursty), or
    ["degraded:S-E[,S-E]:BASE"] where [BASE] is any non-degraded process
    name (windows sorted, disjoint, non-empty), including a phased one. *)

val with_phases : process -> (int * int) list -> process option
(** [with_phases process phases] wraps [process] in a diurnal schedule at
    the canonical nesting depth: below any [Degraded] windows, above the
    poisson/bursty base.  [None] if [process] is already phased or the
    phase list is invalid. *)

val phases_of_spec : string -> (int * int) list option
(** CLI phase spec ["LEN:MULT[,LEN:MULT]"] with [MULT] a decimal rate
    multiplier, e.g. ["36000:0.25,12000:2.5"]; parsed once into integer
    thousandths. *)

val skip_gaps : process -> int -> int
(** [skip_gaps process t] is the earliest cycle [>= t] at which an arrival
    is possible (skips bursty off phases, zero-multiplier diurnal
    segments, and degraded windows). *)

val mult_milli_at : process -> int -> int
(** Diurnal rate multiplier (integer thousandths) in force at a cycle;
    1000 everywhere for non-phased processes. *)

val aggregate_threshold : int
(** Client-count bound above which {!schedule} samples the merged aggregate
    stream instead of one stream per session. *)

type op = Insert | Delete | Contains

val op_name : op -> string

type request = {
  arrival : int;  (** Cycles after the serving window opens. *)
  client : int;  (** Owning session. *)
  seq : int;  (** Per-session sequence number. *)
  op : op;
  key : int;  (** In [\[1, key_range\]]. *)
}

type draw = Skipit_sim.Rng.t -> at:int -> op * int
(** Per-arrival op/key sampler: given the stream that owns the arrival and
    the arrival cycle, produce the operation and key.  Must be a pure
    function of the rng state and [at] so schedules stay bit-identical. *)

val uniform_draw : key_range:int -> update_pct:int -> draw
(** The historical draw (uniform keys, update split by [Rng.bool]); the
    default when {!schedule} is given no [draw]. *)

val schedule :
  process:process ->
  ?draw:draw ->
  rate:float ->
  clients:int ->
  requests:int ->
  key_range:int ->
  update_pct:int ->
  seed:int ->
  unit ->
  request array
(** [rate] is the aggregate offered load in operations per 1000 cycles,
    split evenly across [clients] sessions.  The result holds [requests]
    entries sorted by arrival (ties broken by client id, then sequence
    number).  Equal configurations give equal schedules.  [draw] replaces
    the op/key sampler (see {!Workload.draw}); omitting it reproduces the
    pre-workload schedules byte-for-byte. *)
