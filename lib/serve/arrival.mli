(** Open-loop arrival schedules for the serving engine.

    Unlike the closed-loop §7.4 harness (a fixed number of worker threads
    issuing the next operation as soon as the previous one returns), an
    open-loop client population decides {e when} requests arrive
    independently of how fast the server drains them — the regime where
    queueing delay, tail latency and load shedding exist at all.

    A schedule is the deterministic merge of [clients] independent session
    streams.  Each session owns a split of the master {!Skipit_sim.Rng}
    stream and draws its own inter-arrival gaps, operations and keys, so the
    whole schedule is a pure function of the configuration — the property
    the byte-identical [--jobs] reduction and the CI gates rely on.  Above
    {!aggregate_threshold} clients the schedule is drawn from the merged
    aggregate stream instead (same law, one Bernoulli walk at the full
    offered rate), which is what makes 10{^5}–10{^6}-client fleet runs
    tractable.

    Inter-arrival gaps are sampled from a Bernoulli process (one trial per
    simulated cycle), i.e. the discrete-time Poisson process, using only
    integer and exact [Rng] arithmetic — no [libm] calls whose last-ulp
    behaviour could differ across hosts. *)

(** Arrival process shape.  [Bursty] alternates fixed-length on/off phases
    per client; arrivals are drawn only during on phases, at a rate scaled
    by [(on + off) / on] so the long-run offered load still matches the
    configured rate (a deterministic on/off — interrupted Poisson —
    process).  [Degraded] suppresses arrivals inside fixed fault windows
    [(start, stop)] (half-open, in cycles) layered over any non-degraded
    base process: clients inside a fault window are dark, and — unlike a
    bursty off phase — their load is erased, not deferred, so a fault
    schedule can overlap a bursty schedule without changing the draws
    outside the windows. *)
type process =
  | Poisson
  | Bursty of { on : int; off : int }
  | Degraded of { windows : (int * int) list; base : process }

val default_bursty : process
(** 2000 cycles on, 6000 off: 4x the average rate in one quarter of the
    time. *)

val process_name : process -> string

val process_of_name : string -> process option
(** ["poisson"], ["bursty"] (the default phases), ["bursty:ON/OFF"], or
    ["degraded:S-E[,S-E]:BASE"] where [BASE] is any non-degraded process
    name (windows sorted, disjoint, non-empty). *)

val skip_gaps : process -> int -> int
(** [skip_gaps process t] is the earliest cycle [>= t] at which an arrival
    is possible (skips bursty off phases and degraded windows). *)

val aggregate_threshold : int
(** Client-count bound above which {!schedule} samples the merged aggregate
    stream instead of one stream per session. *)

type op = Insert | Delete | Contains

val op_name : op -> string

type request = {
  arrival : int;  (** Cycles after the serving window opens. *)
  client : int;  (** Owning session. *)
  seq : int;  (** Per-session sequence number. *)
  op : op;
  key : int;  (** In [\[1, key_range\]]. *)
}

val schedule :
  process:process ->
  rate:float ->
  clients:int ->
  requests:int ->
  key_range:int ->
  update_pct:int ->
  seed:int ->
  request array
(** [rate] is the aggregate offered load in operations per 1000 cycles,
    split evenly across [clients] sessions.  The result holds [requests]
    entries sorted by arrival (ties broken by client id, then sequence
    number).  Equal configurations give equal schedules. *)
