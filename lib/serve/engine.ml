module S = Skipit_core.System
module T = Skipit_core.Thread
module Params = Skipit_cache.Params
module Pctx = Skipit_persist.Pctx
module Ops = Skipit_pds.Set_ops
module Rng = Skipit_sim.Rng
module Admission = Skipit_sim.Admission
module Sample = Skipit_sim.Stats.Sample
module Trace = Skipit_obs.Trace
module Latency = Skipit_obs.Latency
module Attr = Skipit_obs.Attribution
module Metrics = Skipit_obs.Metrics
module Pool = Skipit_par.Pool
module Ds_bench = Skipit_workload.Ds_bench

type config = {
  kind : Ops.kind;
  mode : Pctx.mode;
  spec : Ds_bench.strategy_spec;
  process : Arrival.process;
  workload : Workload.t;
  clients : int;
  requests : int;
  batch : int;
  depth : int;
  cores : int;
  key_range : int;
  update_pct : int;
  prefill : int;
  seed : int;
  telemetry : bool;
  window : int;
}

let default =
  {
    kind = Ops.Hash_set;
    mode = Pctx.Automatic;
    spec = Ds_bench.Skipit;
    process = Arrival.Poisson;
    workload = Workload.default;
    clients = 16;
    requests = 2000;
    batch = 8;
    depth = 64;
    cores = 1;
    key_range = 1024;
    update_pct = 20;
    prefill = 512;
    seed = 11;
    telemetry = false;
    window = Metrics.default_window;
  }

let validate cfg =
  let check cond msg = if cond then Error msg else Ok () in
  let ( >>= ) r f = Result.bind r (fun () -> f ()) in
  check (cfg.clients <= 0) "clients must be positive"
  >>= fun () -> check (cfg.requests <= 0) "requests must be positive"
  >>= fun () -> check (cfg.batch <= 0) "batch must be positive"
  >>= fun () -> check (cfg.depth <= 0) "depth must be positive"
  >>= fun () -> check (cfg.cores <= 0) "cores must be positive"
  >>= fun () -> check (cfg.key_range <= 0) "key-range must be positive"
  >>= fun () -> check (cfg.update_pct < 0 || cfg.update_pct > 100) "update-pct must be in [0,100]"
  >>= fun () -> check (cfg.prefill < 0) "prefill must be non-negative"
  >>= fun () -> check (cfg.window <= 0) "window must be positive"
  >>= fun () ->
  (match Workload.validate cfg.workload ~key_range:cfg.key_range with
   | Ok () -> Ok ()
   | Error e -> Error e)
  >>= fun () ->
  check
    (not (Ds_bench.compatible cfg.kind cfg.spec))
    (Printf.sprintf "%s is incompatible with %s (word-bit conflict)"
       (Ds_bench.spec_name cfg.spec) (Ops.kind_name cfg.kind))

type point = {
  offered : float;
  achieved : float;
  served : int;
  shed : int;
  n : int;
  latency : Latency.summary option;
  dequeue_latency : Latency.summary option;
  gap : Latency.gap option;
  elapsed : int;
  epochs : int;
  flushes : int;
  deferred : int;
  passthrough : int;
  fences : int;
  leaked : int;
  attribution : (string * int) list;
  attr_requests : int;
  attr_trimmed : int;
  attr_conserved : bool;
  metrics : Metrics.t option;
  skip_dropped : int;
  wb_submitted : int;
}

let skip_hit_rate p =
  let total = p.skip_dropped + p.wb_submitted in
  if total = 0 then 0. else float_of_int p.skip_dropped /. float_of_int total

let shed_fraction p = if p.n = 0 then 0. else float_of_int p.shed /. float_of_int p.n

let run ?(params = Params.boom_default) cfg ~rate =
  (match validate cfg with
   | Ok () -> ()
   | Error e -> invalid_arg ("Serve.Engine.run: " ^ e));
  let params =
    Params.with_skip_it
      (Params.with_cores params cfg.cores)
      (Ds_bench.wants_skip_it_hw cfg.spec)
  in
  let sys = S.create params in
  let strategy = Ds_bench.realize cfg.spec sys in
  let alloc = S.allocator sys in
  (* Build + prefill (untimed relative to the serving window) with a plain
     per-operation context, exactly like the closed-loop harness: every
     (range/prefill)-th key in shuffled order. *)
  let setup_pctx = Pctx.make strategy cfg.mode in
  let handle = ref None in
  let buckets = max 16 (cfg.key_range / 4) in
  ignore
    (T.run sys
       [
         {
           T.core = 0;
           body =
             (fun () ->
               let h = Ops.create_sized cfg.kind ~buckets setup_pctx alloc in
               let step = max 1 (cfg.key_range / max 1 cfg.prefill) in
               let keys = Array.init (cfg.key_range / step) (fun i -> 1 + (i * step)) in
               Rng.shuffle (Rng.create ~seed:cfg.seed) keys;
               Array.iter (fun k -> ignore (h.Ops.insert setup_pctx k)) keys;
               handle := Some h);
         };
       ]);
  let h = Option.get !handle in
  (* The serving window opens when the prefill quiesces; arrival offsets are
     relative to it. *)
  let t0 = S.max_clock sys in
  let draw =
    Workload.draw cfg.workload ~key_range:cfg.key_range
      ~update_pct:cfg.update_pct ~seed:(cfg.seed + 2)
  in
  let sched =
    Arrival.schedule ~process:cfg.process ~draw ~rate ~clients:cfg.clients
      ~requests:cfg.requests ~key_range:cfg.key_range ~update_pct:cfg.update_pct
      ~seed:(cfg.seed + 1) ()
  in
  let n = Array.length sched in
  let arrival i = t0 + sched.(i).Arrival.arrival in
  let adm = Admission.create ~capacity:cfg.depth in
  let batchers =
    Array.init cfg.cores (fun _ ->
      Batcher.create ~group:(cfg.batch > 1) ~strategy ~mode:cfg.mode ())
  in
  (* An epoch can never usefully exceed the waiting room: its members all
     occupy admission slots until the commit fence. *)
  let batch = max 1 (min cfg.batch cfg.depth) in
  let cursor = ref 0 in
  let completions = Array.make n (-1) in
  (* Admitted request indices in admission order; released (in FIFO order,
     as Admission requires) once their epoch has committed. *)
  let admitted_fifo = Queue.create () in
  let shed = ref 0 in
  let served = ref 0 in
  let lat = Sample.create () in
  let dlat = Sample.create () in
  let t_end = ref t0 in
  (* Telemetry sinks are installed for the serving window only (the prefill
     is untimed) and live on this domain, so a sweep's pool jobs never share
     state and output is byte-identical at any --jobs width.  Recording
     never alters simulated timing: cycles are identical on/off. *)
  let attr = if cfg.telemetry then Some (Attr.start ~cores:cfg.cores ~keep_records:true ()) else None in
  let mx = if cfg.telemetry then Some (Metrics.start ~window:cfg.window ()) else None in
  let drain () =
    let continue = ref true in
    while !continue do
      match Queue.peek_opt admitted_fifo with
      | Some j when completions.(j) >= 0 ->
        ignore (Queue.pop admitted_fifo);
        Admission.release adm ~at:completions.(j);
        (match mx with
         | Some m -> Metrics.occupancy_free m "serve.admission" ~at:completions.(j)
         | None -> ())
      | _ -> continue := false
    done
  in
  let worker core =
    {
      T.core;
      body =
        (fun () ->
          let b = batchers.(core) in
          let members = ref [] in
          let n_members = ref 0 in
          let commit_epoch () =
            if !n_members > 0 then begin
              let commit_start = T.now () in
              Batcher.commit b;
              let t = T.now () in
              if t > !t_end then t_end := t;
              List.iter
                (fun (i, rid, frame, issued) ->
                  completions.(i) <- t;
                  Sample.add_int lat (t - arrival i);
                  Sample.add_int dlat (t - issued);
                  Trace.req_end ~at:t rid;
                  (match frame, attr with
                   | Some fr, Some a ->
                     (* The wait for the epoch to close, then the shared
                        commit work (flush replay + fence), charged to every
                        member; the frame closes exactly at the latency
                        sample's completion stamp, so stage cycles sum to
                        the recorded span. *)
                     Attr.mark_frame fr Attr.Commit_wait ~at:commit_start;
                     Attr.mark_frame fr Attr.Fence ~at:t;
                     Attr.close a fr ~at:t
                   | _ -> ());
                  (match mx with
                   | Some m ->
                     Metrics.counter_incr m "serve.served" ~at:t;
                     Metrics.histogram_observe m "serve.latency" ~at:t (t - arrival i)
                   | None -> ());
                  incr served)
                (List.rev !members);
              members := [];
              n_members := 0;
              drain ()
            end
          in
          let rec loop () =
            let i = !cursor in
            if i >= n then commit_epoch ()
            else begin
              let at = arrival i in
              let now = T.now () in
              if at > now && !n_members > 0 then begin
                (* No request is waiting: close the epoch rather than
                   parking admitted work behind a future arrival. *)
                commit_epoch ();
                loop ()
              end
              else begin
                incr cursor;
                if at > now then T.delay (at - now);
                drain ();
                (* Shed iff the waiting room was full at the arrival
                   instant. *)
                if Admission.peek_entry adm ~now:at > at then begin
                  incr shed;
                  (match mx with
                   | Some m -> Metrics.counter_incr m "serve.shed" ~at
                   | None -> ());
                  (* Backpressure signal: free this worker's own slots
                     before the next claim. *)
                  commit_epoch ()
                end
                else begin
                  ignore (Admission.admit adm ~now:at : int);
                  Queue.add i admitted_fifo;
                  let r = sched.(i) in
                  let rid =
                    Trace.req_start ~at ~cls:Trace.Cls_serve ~core ~addr:r.Arrival.key
                  in
                  (* The frame opens at the *intended* arrival, so queueing
                     behind a backlogged server (coordinated omission) is
                     charged to Adm_wait rather than silently dropped. *)
                  let issued = T.now () in
                  let frame =
                    match attr with
                    | Some _ ->
                      let fr = Attr.frame ~at in
                      Attr.mark_frame fr Attr.Adm_wait ~at:issued;
                      Attr.bind ~core (Some fr);
                      Some fr
                    | None -> None
                  in
                  (match mx with
                   | Some m ->
                     Metrics.counter_incr m "serve.admitted" ~at;
                     Metrics.occupancy_alloc m "serve.admission" ~at
                   | None -> ());
                  let pctx = Batcher.pctx b in
                  (match r.Arrival.op with
                   | Arrival.Insert -> ignore (h.Ops.insert pctx r.Arrival.key)
                   | Arrival.Delete -> ignore (h.Ops.delete pctx r.Arrival.key)
                   | Arrival.Contains -> ignore (h.Ops.contains pctx r.Arrival.key));
                  if attr <> None then Attr.bind ~core None;
                  members := (i, rid, frame, issued) :: !members;
                  incr n_members;
                  if !n_members >= batch then commit_epoch ()
                end;
                loop ()
              end
            end
          in
          loop ());
    }
  in
  ignore (T.run sys (List.init cfg.cores worker));
  drain ();
  (if cfg.telemetry then begin
     ignore (Attr.stop () : Attr.t option);
     ignore (Metrics.stop () : Metrics.t option)
   end);
  let elapsed = !t_end - t0 in
  let epochs = ref 0 and flushes = ref 0 and deferred = ref 0 in
  let passthrough = ref 0 and fences = ref 0 in
  Array.iter
    (fun b ->
      let s = Batcher.stats b in
      epochs := !epochs + s.Batcher.epochs;
      flushes := !flushes + s.Batcher.flushes;
      deferred := !deferred + s.Batcher.deferred;
      passthrough := !passthrough + s.Batcher.passthrough;
      fences := !fences + s.Batcher.fences)
    batchers;
  (* Per-strategy skip effectiveness over the whole run (prefill included,
     like every other hardware counter): CBOs elided by the skip bit vs
     writebacks actually submitted to the flush FSHRs. *)
  let skip_dropped = ref 0 and wb_submitted = ref 0 in
  List.iter
    (fun (k, v) ->
      let suffix s = String.length k >= String.length s
                     && String.sub k (String.length k - String.length s) (String.length s) = s in
      if String.length k > 3 && String.sub k 0 3 = "fu." then begin
        if suffix ".skip_dropped" then skip_dropped := !skip_dropped + v
        else if suffix ".submitted" then wb_submitted := !wb_submitted + v
      end)
    (S.stats_report sys);
  let latency = Latency.summarize lat in
  let dequeue_latency = Latency.summarize dlat in
  let gap =
    match latency, dequeue_latency with
    | Some i, Some r -> Some (Latency.gap ~intended:i ~recorded:r)
    | _ -> None
  in
  {
    offered = rate;
    achieved =
      (if elapsed > 0 then float_of_int !served *. 1000. /. float_of_int elapsed else 0.);
    served = !served;
    shed = !shed;
    n;
    latency;
    dequeue_latency;
    gap;
    elapsed;
    epochs = !epochs;
    flushes = !flushes;
    deferred = !deferred;
    passthrough = !passthrough;
    fences = !fences;
    leaked = Admission.occupants adm;
    attribution = (match attr with Some a -> Attr.totals a | None -> []);
    attr_requests = (match attr with Some a -> Attr.requests a | None -> 0);
    attr_trimmed = (match attr with Some a -> Attr.trimmed a | None -> 0);
    attr_conserved = (match attr with Some a -> Attr.conserved a | None -> true);
    metrics = mx;
    skip_dropped = !skip_dropped;
    wb_submitted = !wb_submitted;
  }

let sweep ?params ?pool cfg ~rates =
  Pool.run_chunked_opt ~chunk:1 pool (fun rate -> run ?params cfg ~rate) rates
