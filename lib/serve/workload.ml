module Rng = Skipit_sim.Rng

type keys = Uniform | Zipf of { theta_milli : int }
type t = { keys : keys; churn : int option }

let default = { keys = Uniform; churn = None }
let default_zipf_theta_milli = 990
let max_zipf_range = 1 lsl 22
let max_theta_milli = 4000

(* ------------------------------------------------------------------ *)
(* Q30 fixed-point kernel.  Everything below is integer-only: the same
   inputs give the same bits on every host, which is what lets the
   workload-determinism CI step diff serve output across machines.  All
   intermediates fit OCaml's 63-bit native int: the largest products are
   (2^31)^2 = 2^62 in [exp2_frac]/[log2_q] and 2^32 * 2^30 = 2^62 in
   [mul_q]. *)

let q = 30
let one = 1 lsl q

(* Integer square root: largest r with r * r <= n.  Valid for n < 2^62;
   the initial bit is the largest power of four <= the largest input we
   feed it ((2 * one) lsl q = 2^61). *)
let isqrt n0 =
  let n = ref n0 and res = ref 0 in
  let bit = ref (1 lsl 60) in
  while !bit > n0 do bit := !bit lsr 2 done;
  while !bit <> 0 do
    (if !n >= !res + !bit then begin
       n := !n - (!res + !bit);
       res := (!res lsr 1) + !bit
     end else res := !res lsr 1);
    bit := !bit lsr 2
  done;
  !res

(* exp2_consts.(i) = 2^(2^-i) in Q30, built by repeated integer square
   roots of 2.0 — no libm. *)
let exp2_consts =
  let c = Array.make (q + 1) 0 in
  c.(0) <- 2 * one;
  for i = 1 to q do
    c.(i) <- isqrt (c.(i - 1) lsl q)
  done;
  c

(* 2^(f / 2^30) for f in [0, 2^30): multiply out the constants for the
   set bits of f.  Result in [one, 2 * one). *)
let exp2_frac f =
  let r = ref one in
  for i = 1 to q do
    if f land (one lsr i) <> 0 then r := (!r * exp2_consts.(i)) asr q
  done;
  !r

(* log2 of a positive integer in Q30: integer part from the MSB index,
   fractional bits by 30 rounds of mantissa squaring. *)
let log2_q x =
  if x < 1 then invalid_arg "Workload.log2_q: positive argument required";
  let e = ref 0 in
  let v = ref x in
  while !v > 1 do
    incr e;
    v := !v lsr 1
  done;
  let m = ref (if !e <= q then x lsl (q - !e) else x asr (!e - q)) in
  let frac = ref 0 in
  for i = 1 to q do
    (* NB: [lsl]/[asr] bind tighter than [*] in OCaml — the parens here
       (and in [exp2_frac]/[mul_q]) are load-bearing. *)
    m := (!m * !m) asr q;
    if !m >= 2 * one then begin
      m := !m asr 1;
      frac := !frac lor (one lsr i)
    end
  done;
  (!e lsl q) lor !frac

(* (a * b) >> 30 without overflowing: split b into Q30 integer and
   fraction parts.  Safe for a <= 2^32 (theta <= 4.0). *)
let mul_q a b = (a * (b asr q)) + ((a * (b land (one - 1))) asr q)

(* x^(-theta) in Q30 via exp2(-theta * log2 x); floored at 1 so every
   key keeps non-zero probability mass even deep in the tail. *)
let pow_neg_q ~theta_q x =
  if x = 1 || theta_q = 0 then one
  else begin
    let t = mul_q theta_q (log2_q x) in
    let n = t asr q and f = t land (one - 1) in
    let w =
      if f = 0 then if n >= 62 then 0 else one asr n
      else if n >= 61 then 0
      else exp2_frac (one - f) asr (n + 1)
    in
    if w < 1 then 1 else w
  end

let zipf_cdf ~n ~theta_milli =
  if n < 1 then invalid_arg "Workload.zipf_cdf: n must be positive";
  if n > max_zipf_range then invalid_arg "Workload.zipf_cdf: n too large";
  if theta_milli < 0 || theta_milli > max_theta_milli then
    invalid_arg "Workload.zipf_cdf: theta out of range";
  let theta_q = theta_milli * one / 1000 in
  let cum = Array.make n 0 in
  let acc = ref 0 in
  for k = 0 to n - 1 do
    acc := !acc + pow_neg_q ~theta_q (k + 1);
    cum.(k) <- !acc
  done;
  cum

(* Smallest rank with cum.(rank) > u; u in [0, total). *)
let rank_of cum u =
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

(* ------------------------------------------------------------------ *)
(* Names: integer-thousandths theta formatting so names round-trip with
   no float printing involved. *)

let theta_string m =
  let whole = m / 1000 and frac = m mod 1000 in
  if frac = 0 then string_of_int whole
  else begin
    let s = Printf.sprintf "%03d" frac in
    let len = ref 3 in
    while s.[!len - 1] = '0' do decr len done;
    Printf.sprintf "%d.%s" whole (String.sub s 0 !len)
  end

let theta_of_string s =
  let digits t = t <> "" && String.for_all (fun c -> c >= '0' && c <= '9') t in
  match String.split_on_char '.' s with
  | [ w ] when digits w -> int_of_string_opt w |> Option.map (fun w -> w * 1000)
  | [ w; f ] when digits w && digits f && String.length f <= 3 ->
    let scale = match String.length f with 1 -> 100 | 2 -> 10 | _ -> 1 in
    Some ((int_of_string w * 1000) + (int_of_string f * scale))
  | _ -> None

let keys_name = function
  | Uniform -> "uniform"
  | Zipf { theta_milli } -> "zipf:" ^ theta_string theta_milli

let keys_of_name s =
  match s with
  | "uniform" -> Some Uniform
  | "zipf" -> Some (Zipf { theta_milli = default_zipf_theta_milli })
  | _ -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "zipf" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match theta_of_string rest with
      | Some m when m >= 0 && m <= max_theta_milli ->
        Some (Zipf { theta_milli = m })
      | _ -> None)
    | _ -> None)

let name t =
  keys_name t.keys
  ^ match t.churn with None -> "" | Some p -> Printf.sprintf "+churn:%d" p

let validate t ~key_range =
  match t.keys, t.churn with
  | _, Some p when p <= 0 -> Error "churn period must be positive"
  | Uniform, Some _ -> Error "churn requires zipf keys (uniform has no hot set)"
  | Uniform, None -> Ok ()
  | Zipf { theta_milli }, _ ->
    if theta_milli < 0 || theta_milli > max_theta_milli then
      Error "zipf theta must be in [0, 4.0]"
    else if key_range > max_zipf_range then
      Error
        (Printf.sprintf "zipf key_range capped at %d (CDF table size)"
           max_zipf_range)
    else Ok ()

(* ------------------------------------------------------------------ *)

let draw t ~key_range ~update_pct ~seed : Arrival.draw =
  (match validate t ~key_range with
   | Ok () -> ()
   | Error e -> invalid_arg ("Workload.draw: " ^ e));
  match t.keys with
  | Uniform -> Arrival.uniform_draw ~key_range ~update_pct
  | Zipf { theta_milli } ->
    let cum = zipf_cdf ~n:key_range ~theta_milli in
    let total = cum.(key_range - 1) in
    (* Rank->key indirection: a seeded permutation hides the rank order
       (rank 0 is not literally key 1), and churn rotates the hot set by
       a per-epoch seeded offset — both pure functions of (seed, at). *)
    let perm = Array.init key_range (fun i -> i + 1) in
    Rng.shuffle (Rng.create ~seed) perm;
    let churn_seed = seed + 0x5bd1e995 in
    let last_epoch = ref (-1) and last_offset = ref 0 in
    let offset_at at =
      match t.churn with
      | None -> 0
      | Some period ->
        let epoch = at / period in
        if epoch <> !last_epoch then begin
          last_epoch := epoch;
          last_offset := Rng.int (Rng.create ~seed:(churn_seed + epoch)) key_range
        end;
        !last_offset
    in
    fun rng ~at ->
      let r = Rng.int rng 100 in
      let op =
        if r < update_pct then
          if Rng.bool rng then Arrival.Insert else Arrival.Delete
        else Arrival.Contains
      in
      let u = Rng.int rng total in
      let rank = rank_of cum u in
      let key = perm.((rank + offset_at at) mod key_range) in
      (op, key)

let mix_of_spec spec =
  match String.split_on_char ':' spec with
  | [ r; w ] -> (
    match int_of_string_opt r, int_of_string_opt w with
    | Some r, Some w when r >= 0 && w >= 0 && r + w > 0 ->
      (* update_pct = write share of the mix, rounded to nearest. *)
      Some (((w * 100) + ((r + w) / 2)) / (r + w))
    | _ -> None)
  | _ -> None
