(** Open-loop request-serving engine over the persistent data structures.

    Where the §7.4 harness asks "how fast can a fixed thread count spin?",
    the engine asks the serving question: given requests arriving at a
    configured offered load ({!Arrival}), a bounded waiting room
    ({!Skipit_sim.Admission} — arrivals that find it full are {e shed}), and
    a group-commit persist {!Batcher} per serving core, what throughput does
    the system achieve and what does the latency {e distribution} from
    enqueue to persist-complete look like?

    One {!run} is a single simulation: build the system, prefill the
    structure, then serve the whole schedule.  A {!sweep} runs one
    independent simulation per offered-load point — each is a
    {!Skipit_par.Pool} job, and results are reduced in submission order, so
    every report is byte-identical at any [--jobs] width. *)

type config = {
  kind : Skipit_pds.Set_ops.kind;
  mode : Skipit_persist.Pctx.mode;
  spec : Skipit_workload.Ds_bench.strategy_spec;
  process : Arrival.process;
  workload : Workload.t;
      (** Key popularity / churn shape; {!Workload.default} reproduces the
          historical uniform draws byte-for-byte. *)
  clients : int;  (** Independent open-loop sessions. *)
  requests : int;  (** Schedule length per run. *)
  batch : int;  (** Epoch size; 1 = per-operation persists (no grouping). *)
  depth : int;  (** Waiting-room capacity; arrivals past it are shed. *)
  cores : int;  (** Serving cores, each with its own batcher. *)
  key_range : int;
  update_pct : int;
  prefill : int;
  seed : int;
  telemetry : bool;
      (** Install per-run attribution + metrics sinks for the serving
          window.  Recording never alters simulated timing: cycles and
          checksums are bit-identical on or off. *)
  window : int;  (** Metrics window width in simulated cycles. *)
}

val default : config
(** Hash table, automatic persistence, Skip It, Poisson arrivals, 16
    clients, 2000 requests, batch 8, depth 64, 1 serving core. *)

val validate : config -> (unit, string) result
(** Rejects non-positive sizes and incompatible structure x strategy
    combinations (Link-and-Persist on the BST). *)

type point = {
  offered : float;  (** Configured ops per 1000 cycles. *)
  achieved : float;  (** Persist-complete ops per 1000 cycles of serving. *)
  served : int;
  shed : int;
  n : int;
  latency : Skipit_obs.Latency.summary option;
      (** {e Intended}-arrival to persist-complete, cycles — the
          coordinated-omission-correct distribution; [None] when nothing
          was served. *)
  dequeue_latency : Skipit_obs.Latency.summary option;
      (** Issue (dequeue) to persist-complete — what a naive recorder
          would report.  Under saturating load this understates tails. *)
  gap : Skipit_obs.Latency.gap option;
      (** Recorded-vs-intended percentile gap; [None] when nothing was
          served. *)
  elapsed : int;  (** Serving-window cycles (first arrival to last commit). *)
  epochs : int;
  flushes : int;  (** Distinct-line writebacks replayed at epoch commits. *)
  deferred : int;  (** Persist points captured by the batchers. *)
  passthrough : int;  (** Persist points forwarded per-operation. *)
  fences : int;  (** Epoch fences issued. *)
  leaked : int;  (** Admission occupants after the run — always 0. *)
  attribution : (string * int) list;
      (** Exclusive per-stage cycle totals over all served requests, in
          stage order; empty unless [telemetry].  Stage cycles of each
          request sum to its intended-arrival→persist-complete span. *)
  attr_requests : int;  (** Requests attributed (= served when telemetry). *)
  attr_trimmed : int;
      (** Requests whose stage marks overshot their completion and were
          trimmed — should be 0; nonzero flags a hook charging
          off-critical-path work. *)
  attr_conserved : bool;
      (** Every attributed request's stage cycles summed exactly to its
          span. *)
  metrics : Skipit_obs.Metrics.t option;
      (** The run's windowed metrics registry, when [telemetry]. *)
  skip_dropped : int;
      (** Writebacks elided by the skip bit across all flush units —
          non-zero only for strategies with the skip-it hardware. *)
  wb_submitted : int;
      (** Writebacks actually submitted to the flush FSHRs. *)
}

val shed_fraction : point -> float

val skip_hit_rate : point -> float
(** [skip_dropped / (skip_dropped + wb_submitted)]; 0 when no flush
    traffic (or no skip hardware). *)

val run : ?params:Skipit_cache.Params.t -> config -> rate:float -> point
(** Raises [Invalid_argument] when {!validate} does.  When tracing is
    active, each served request is recorded as a
    {!Skipit_obs.Trace.Cls_serve} span from arrival to persist-complete. *)

val sweep :
  ?params:Skipit_cache.Params.t ->
  ?pool:Skipit_par.Pool.t ->
  config ->
  rates:float list ->
  point list
(** One independent {!run} per offered load, on [pool] when given. *)
