(** Group-commit persist batcher.

    Closed-loop persistence pays a writeback + fence per operation.  A
    serving layer can instead coalesce the persist points of all requests
    admitted into one {e epoch} and make them durable together: one CBO per
    {e distinct} dirty line, then a single fence — the group-commit idea of
    architecture-aware PM transactions.  A request is not acknowledged
    (persist-complete) until its epoch's fence returns, so a crash inside an
    epoch loses only unacknowledged work: durability moves from operation
    granularity to epoch granularity, which is exactly what the engine's
    enqueue-to-persist-complete latency measures.

    The batcher is strategy- and mode-aware:
    - {b deferrable} strategies (plain, Skip It — no software bookkeeping at
      persist points) have their persist points captured, deduplicated per
      cache line, and replayed at {!commit}, followed by one fence;
    - {b non-deferrable} strategies (FliT, Link-and-Persist — persist points
      maintain counters / in-word marks that concurrent readers observe)
      keep per-operation persist points, and only the trailing fence is
      deferred to the epoch boundary;
    - {b manual} mode falls back to per-operation persists entirely: the
      structure author placed provably-sufficient persist points whose
      ordering an epoch must not disturb;
    - the non-persistent baseline has nothing to batch.

    All mutating entry points must run inside a {!Skipit_core.Thread} task
    (they replay persist points through the wrapped strategy). *)

type stats = {
  mutable epochs : int;  (** {!commit} calls that did any work. *)
  mutable deferred : int;  (** Persist points captured into epochs. *)
  mutable flushes : int;  (** Distinct-line writebacks replayed at commits. *)
  mutable fences : int;  (** Epoch fences issued. *)
  mutable passthrough : int;  (** Persist points forwarded per-operation. *)
}

type t

val create :
  ?group:bool -> strategy:Skipit_persist.Strategy.t -> mode:Skipit_persist.Pctx.mode -> unit -> t
(** One batcher per serving core.  [group] (default [true]) enables epoch
    batching; [~group:false] is the per-operation baseline — the returned
    context persists exactly as the closed-loop harness does and {!commit}
    is a no-op. *)

val pctx : t -> Skipit_persist.Pctx.t
(** The persistence context requests must execute under. *)

val grouping : t -> bool
(** Whether any deferral is active (persistent strategy, non-manual mode,
    [group = true]). *)

val pending : t -> int
(** Distinct lines captured in the open epoch (0 for non-deferrable
    strategies, which defer only the fence). *)

val commit : t -> unit
(** Close the open epoch: replay one persist point per distinct captured
    line (in first-capture order) through the wrapped strategy, then issue
    its fence once — iff any persist point or operation fence was deferred
    since the previous commit. *)

val stats : t -> stats
