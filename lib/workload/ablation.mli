(** Ablations of the design choices §5–§6 call out, beyond the paper's own
    figures.  Each returns labelled series suitable for the text tables; the
    bench harness prints them after the figure reproductions.

    1. {b FSHR count} — the writeback MLP that produces Fig. 9's slope;
    2. {b flush-queue depth} — buffering lets the LSU commit CBO.X early
       (§5.2); depth 0 makes writebacks synchronous;
    3. {b skip-path decomposition} — none vs L2-trivial-skip-only (§5.5) vs
       full Skip It (§6) on the redundant-writeback microbenchmark;
    4. {b data-array width} — the §5.2 single-cycle line read vs the
       original word-per-cycle array;
    5. {b coalescing} — §5.3 merging of back-to-back CBO.X to one line. *)

(** Each ablation is a grid of independent per-config simulations; [pool]
    runs one job per config on the parallel experiment engine, with results
    reduced in submission order so the tables are byte-identical at any
    pool width. *)

val fshr_count : ?counts:int list -> ?pool:Skipit_par.Pool.t -> unit -> Series.t
(** x = FSHR count, y = cycles to flush the full 32 KiB L1 (1 thread). *)

val queue_depth : ?depths:int list -> ?pool:Skipit_par.Pool.t -> unit -> Series.t
(** x = queue depth, y = cycles for a 64-line store+flush burst ending in
    one fence. *)

val skip_decomposition : ?pool:Skipit_par.Pool.t -> unit -> Series.t list
(** Redundant-writeback latency (Fig. 13 workload, 4 KiB) for the three
    configurations. *)

val data_array_width : ?pool:Skipit_par.Pool.t -> unit -> Series.t list
(** Flush sweep with the widened vs narrow L1 data array. *)

val coalescing : ?pool:Skipit_par.Pool.t -> unit -> Series.t list
(** The Fig. 13 naive workload with flush-queue coalescing on vs off — with
    it on, the backed-up queue merges most redundant requests itself. *)

val hierarchy_depth : ?pool:Skipit_par.Pool.t -> unit -> Series.t list
(** §7.4's closing hypothesis: single-flush latency and the Fig. 13
    redundant-writeback workload with and without a memory-side L3. *)

val contention : ?pool:Skipit_par.Pool.t -> unit -> Series.t list
(** Contended (same region) vs disjoint per-thread writebacks at 4 KiB. *)

val skew : ?pool:Skipit_par.Pool.t -> unit -> Series.t list
(** Uniform vs Zipf-skewed keys on the hash table: skew concentrates
    redundant writebacks on hot lines, the regime Skip It targets. *)

val run_all : ?pool:Skipit_par.Pool.t -> Format.formatter -> unit
