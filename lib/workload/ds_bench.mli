(** Throughput harness for the persistent data-structure comparison
    (§7.4, Figs 14–16).

    A run builds a fresh system (Skip It enabled only for the Skip-It
    strategy), creates and prefills the structure to half the key range,
    then lets [threads] worker threads execute a read/update mix for a
    fixed window of simulated cycles.  Updates split evenly between inserts
    and deletes of uniformly random keys (§7.4).  Reported throughput is
    operations per 1000 simulated cycles. *)

(** The compared series.  [Baseline] is the non-persistent dotted line of
    Figs 14/15. *)
type strategy_spec =
  | Plain
  | Flit_adjacent
  | Flit_hash of int  (** counter-table slots *)
  | Link_and_persist
  | Skipit
  | Baseline

val spec_name : strategy_spec -> string

val default_specs : strategy_spec list
(** The five compared methods plus the baseline, with the paper's default
    FliT table of 2{^16} slots. *)

val realize : strategy_spec -> Skipit_core.System.t -> Skipit_persist.Strategy.t
(** Allocate any auxiliary memory (the FliT counter table) in the system
    and return the strategy. *)

val wants_skip_it_hw : strategy_spec -> bool

val compatible : Skipit_pds.Set_ops.kind -> strategy_spec -> bool
(** [false] for the one excluded combination family: a word-bit strategy
    (Link-and-Persist) on a structure that uses spare word bits itself
    (the BST). *)

val spec_of_name : string -> strategy_spec option
(** Inverse of {!spec_name}; accepts ["flit-hash"] (the default 2{^16}-slot
    table) and ["flit-hash/N"]. *)

type workload = {
  threads : int;  (** 2 in the paper's runs. *)
  key_range : int;
  update_pct : int;  (** 0–100; each update is insert or delete 50/50. *)
  prefill : int;  (** Keys inserted before measuring. *)
  window : int;  (** Measured simulated cycles. *)
  seed : int;
  skew : float;
      (** Zipf theta over the key space (0 = uniform, the paper's setting;
          ~0.99 = heavy skew — hot lines see many more redundant
          writebacks). *)
}

val default_workload : workload

val throughput :
  ?params:Skipit_cache.Params.t ->
  kind:Skipit_pds.Set_ops.kind ->
  mode:Skipit_persist.Pctx.mode ->
  spec:strategy_spec ->
  workload ->
  float
(** Ops per 1000 cycles; [nan] when the combination is incompatible
    (Link-and-Persist × BST). *)

val fig14 :
  ?params:Skipit_cache.Params.t ->
  kind:Skipit_pds.Set_ops.kind ->
  workload ->
  (string * Series.t list) list
(** For one structure: per persistence mode, throughput of every strategy
    (x = strategy index; rendered as grouped bars).  The baseline series is
    included once per mode. *)

val update_sweep :
  ?params:Skipit_cache.Params.t ->
  ?pool:Skipit_par.Pool.t ->
  kind:Skipit_pds.Set_ops.kind ->
  mode:Skipit_persist.Pctx.mode ->
  updates:int list ->
  workload ->
  Series.t list
(** Fig. 15: throughput vs update percentage, one series per strategy.  The
    specs × updates grid runs as one trial per cell on [pool] when given;
    results are identical at any pool width. *)

val flit_table_sweep :
  ?params:Skipit_cache.Params.t ->
  ?pool:Skipit_par.Pool.t ->
  kind:Skipit_pds.Set_ops.kind ->
  mode:Skipit_persist.Pctx.mode ->
  slots:int list ->
  workload ->
  Series.t
(** Fig. 16: FliT hash-table size sensitivity (x = slots), one trial per
    slot count on [pool] when given. *)
