module Params = Skipit_cache.Params
module Pctx = Skipit_persist.Pctx
module Ops = Skipit_pds.Set_ops
module Model = Skipit_xarch.Model
module Pool = Skipit_par.Pool
open Skipit_tilelink

let header ppf title =
  Format.fprintf ppf "@,== %s ==@," title

let table ?(x_name = "bytes") ppf series = Series.pp_table ~x_name ppf series

let repeats quick = if quick then 1 else 5
let sizes quick = if quick then [ 64; 512; 4096; 32768 ] else Micro.sizes_default

(* Every figure below splits into two phases: produce the job grid and run
   it (on [pool] when given — results come back in submission order, so the
   printed tables are byte-identical at any pool width), then print. *)

let scalar_7_2 ?(quick = false) ?pool ?params ppf =
  header ppf "§7.2 scalars";
  let reps = if quick then 3 else 50 in
  let scalars =
    Micro.run_prepared ?pool
      [
        Micro.prep_single_line ?params ~kind:Message.Wb_clean ~repeats:reps ();
        Micro.prep_single_line ?params ~kind:Message.Wb_flush ~repeats:reps ();
      ]
  in
  (match scalars with
   | [ (med_c, sd_c); (med_f, sd_f) ] ->
     Format.fprintf ppf "single-line CBO.CLEAN + fence: median %.0f cycles (sigma %.1f)@," med_c sd_c;
     Format.fprintf ppf "single-line CBO.FLUSH + fence: median %.0f cycles (sigma %.1f)@," med_f sd_f
   | _ -> ());
  let full =
    match
      Micro.run_prepared ?pool
        [
          Micro.prep_writeback_sweep ?params ~kind:Message.Wb_flush ~threads:1
            ~sizes:[ 32 * 1024 ] ~repeats:(repeats quick) ();
        ]
    with
    | [ s ] -> s
    | _ -> assert false
  in
  (match full.Series.points with
   | [ p ] -> Format.fprintf ppf "flush of full 32 KiB L1, 1 thread: %.0f cycles@," p.Series.y
   | _ -> ());
  Format.fprintf ppf "(paper: ~100 cycles sigma 13.2; ~7460 cycles)@,"

(* Powers of two up to the platform's core count (at least the paper's 8). *)
let thread_sweep params =
  let top =
    max 8 (match params with Some p -> p.Params.n_cores | None -> 1)
  in
  let rec up acc t = if t > top then List.rev acc else up (t :: acc) (t * 2) in
  up [] 1

let fig9 ?(quick = false) ?pool ?params ppf =
  let threads = thread_sweep params in
  header ppf
    (Printf.sprintf "Figure 9: CBO.X latency vs size, %s threads"
       (String.concat "/" (List.map string_of_int threads)));
  let series =
    Micro.run_prepared ?pool
      (List.map
         (fun threads ->
           Micro.prep_writeback_sweep ?params ~kind:Message.Wb_flush ~threads
             ~sizes:(sizes quick) ~repeats:(repeats quick) ())
         threads)
  in
  table ppf series

let fig10 ?(quick = false) ?pool ?params ppf =
  header ppf "Figure 10: write - writeback x10 - fence - read (latency, log-scale in paper)";
  let series =
    Micro.run_prepared ?pool
      (List.concat_map
         (fun threads ->
           [
             Micro.prep_write_wb_read ?params ~kind:Message.Wb_clean ~threads
               ~sizes:(sizes quick) ~repeats:(repeats quick) ();
             Micro.prep_write_wb_read ?params ~kind:Message.Wb_flush ~threads
               ~sizes:(sizes quick) ~repeats:(repeats quick) ();
           ])
         [ 1; 8 ])
  in
  table ppf series

let comparative ~threads ~quick ?pool ?params ppf =
  let szs = sizes quick in
  let boom =
    match
      Micro.run_prepared ?pool
        [
          Micro.prep_writeback_sweep ?params ~kind:Message.Wb_flush ~threads ~sizes:szs
            ~repeats:(repeats quick) ();
        ]
    with
    | [ s ] -> s
    | _ -> assert false
  in
  let boom = { boom with Series.label = "boom-cbo.flush" } in
  let models =
    List.map
      (fun instr ->
        Series.v (Model.name instr)
          (List.map
             (fun bytes -> float_of_int bytes, Model.latency instr ~threads ~bytes)
             szs))
      Model.flush_like
  in
  table ppf (boom :: models)

let fig11 ?(quick = false) ?pool ?params ppf =
  header ppf "Figure 11: cross-architecture writeback latency, 1 thread";
  comparative ~threads:1 ~quick ?pool ?params ppf

let fig12 ?(quick = false) ?pool ?params ppf =
  header ppf "Figure 12: cross-architecture writeback latency, 8 threads";
  comparative ~threads:8 ~quick ?pool ?params ppf

let fig13 ?(quick = false) ?pool ?params ppf =
  header ppf "Figure 13: naive vs Skip It, 10 redundant writebacks (CBO.CLEAN semantics)";
  let series =
    Micro.run_prepared ?pool
      (List.concat_map
         (fun threads ->
           List.map
             (fun skip_it ->
               Micro.prep_redundant ?params ~kind:Message.Wb_clean ~skip_it ~threads
                 ~redundant:10 ~sizes:(sizes quick) ~repeats:(repeats quick) ())
             [ false; true ])
         [ 1; 8 ])
  in
  table ppf series;
  (* Also report the speedup at the largest size. *)
  let speedup naive skip =
    match List.rev naive.Series.points, List.rev skip.Series.points with
    | pn :: _, ps :: _ -> (pn.Series.y -. ps.Series.y) /. pn.Series.y *. 100.
    | _ -> nan
  in
  (match series with
   | [ n1; s1; n8; s8 ] ->
     Format.fprintf ppf "speedup at 32KiB: 1T %.0f%%, 8T %.0f%% (paper: 15-30%%)@,"
       (speedup n1 s1) (speedup n8 s8)
   | _ -> ())

let ds_workload quick =
  if quick then
    { Ds_bench.default_workload with Ds_bench.key_range = 256; prefill = 128; window = 120_000 }
  else Ds_bench.default_workload

(* Linked lists are O(n) per operation, so the paper (like the literature it
   follows) keeps them an order of magnitude smaller than the other
   structures. *)
let workload_for kind w =
  match kind with
  | Ops.List_set -> { w with Ds_bench.key_range = 512; prefill = 256 }
  | Ops.Hash_set | Ops.Bst_set | Ops.Skiplist_set -> w

let fig14 ?(quick = false) ?pool ?params ppf =
  ignore (params : Params.t option);
  header ppf "Figure 14: throughput (ops/1000 cycles), 5% updates, 2 threads";
  let w0 = ds_workload quick in
  let kinds = if quick then [ Ops.List_set; Ops.Bst_set ] else Ops.all_kinds in
  (* One trial per (structure, mode, strategy) cell, flattened to a job
     list; the printing below walks the cells in the same order. *)
  let cells =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun mode -> List.map (fun spec -> kind, mode, spec) Ds_bench.default_specs)
          Pctx.all_modes)
      kinds
  in
  let values =
    Pool.run_chunked_opt ~chunk:1 pool
      (fun (kind, mode, spec) ->
        Ds_bench.throughput ~kind ~mode ~spec (workload_for kind w0))
      cells
  in
  let next = ref values in
  let pop () =
    match !next with
    | v :: tl ->
      next := tl;
      v
    | [] -> assert false
  in
  List.iter
    (fun kind ->
      Format.fprintf ppf "@,-- %s --@," (Ops.kind_name kind);
      List.iter
        (fun mode ->
          Format.fprintf ppf "%-12s" (Pctx.mode_name mode);
          List.iter
            (fun _spec ->
              let v = pop () in
              if Float.is_nan v then Format.fprintf ppf "%18s" "n/a"
              else Format.fprintf ppf "%18.2f" v)
            Ds_bench.default_specs;
          Format.fprintf ppf "@,")
        Pctx.all_modes;
      Format.fprintf ppf "%-12s" "(columns)";
      List.iter
        (fun spec -> Format.fprintf ppf "%18s" (Ds_bench.spec_name spec))
        Ds_bench.default_specs;
      Format.fprintf ppf "@,")
    kinds

let fig15 ?(quick = false) ?pool ?params ppf =
  ignore (params : Params.t option);
  header ppf "Figure 15: throughput vs update percentage (automatic persistence, 2 threads)";
  let w = ds_workload quick in
  let updates = if quick then [ 0; 50 ] else [ 0; 5; 20; 50; 100 ] in
  let kinds = if quick then [ Ops.List_set ] else Ops.all_kinds in
  List.iter
    (fun kind ->
      Format.fprintf ppf "@,-- %s --@," (Ops.kind_name kind);
      let series = Ds_bench.update_sweep ?pool ~kind ~mode:Pctx.Automatic ~updates w in
      Series.pp_table ~x_name:"update%" ppf series)
    kinds

let fig16 ?(quick = false) ?pool ?params ppf =
  ignore (params : Params.t option);
  header ppf "Figure 16: BST throughput vs FliT hash-table slots (automatic, 2 threads)";
  let w =
    let base = ds_workload quick in
    if quick then base
    else { base with Ds_bench.key_range = 10_000; prefill = 5_000; window = 600_000 }
  in
  let slots = if quick then [ 64; 4096 ] else [ 64; 256; 1024; 4096; 16384; 65536 ] in
  let series = Ds_bench.flit_table_sweep ?pool ~kind:Ops.Bst_set ~mode:Pctx.Automatic ~slots w in
  Series.pp_table ~x_name:"slots" ppf [ series ]

let all ?quick ?pool ?params ppf =
  scalar_7_2 ?quick ?pool ?params ppf;
  fig9 ?quick ?pool ?params ppf;
  fig10 ?quick ?pool ?params ppf;
  fig11 ?quick ?pool ?params ppf;
  fig12 ?quick ?pool ?params ppf;
  fig13 ?quick ?pool ?params ppf;
  fig14 ?quick ?pool ?params ppf;
  fig15 ?quick ?pool ?params ppf;
  fig16 ?quick ?pool ?params ppf

let registry =
  [
    "scalar", scalar_7_2;
    "fig9", fig9;
    "fig10", fig10;
    "fig11", fig11;
    "fig12", fig12;
    "fig13", fig13;
    "fig14", fig14;
    "fig15", fig15;
    "fig16", fig16;
    "all", all;
  ]

let by_name name = List.assoc_opt name registry
let names = List.map fst registry
