module S = Skipit_core.System
module T = Skipit_core.Thread
module Params = Skipit_cache.Params
module Strategy = Skipit_persist.Strategy
module Pctx = Skipit_persist.Pctx
module Ops = Skipit_pds.Set_ops
module Rng = Skipit_sim.Rng
module Pool = Skipit_par.Pool

type strategy_spec =
  | Plain
  | Flit_adjacent
  | Flit_hash of int
  | Link_and_persist
  | Skipit
  | Baseline

let spec_name = function
  | Plain -> "plain"
  | Flit_adjacent -> "flit-adjacent"
  | Flit_hash n -> Printf.sprintf "flit-hash/%d" n
  | Link_and_persist -> "link-and-persist"
  | Skipit -> "skip-it"
  | Baseline -> "baseline"

let default_specs =
  [ Plain; Flit_adjacent; Flit_hash 65536; Link_and_persist; Skipit; Baseline ]

let spec_of_name s =
  match s with
  | "plain" -> Some Plain
  | "flit-adjacent" -> Some Flit_adjacent
  | "flit-hash" -> Some (Flit_hash 65536)
  | "link-and-persist" -> Some Link_and_persist
  | "skip-it" -> Some Skipit
  | "baseline" -> Some Baseline
  | _ ->
    (match String.index_opt s '/' with
     | Some i when String.sub s 0 i = "flit-hash" ->
       let rest = String.sub s (i + 1) (String.length s - i - 1) in
       (match int_of_string_opt rest with
        | Some n when n > 0 -> Some (Flit_hash n)
        | Some _ | None -> None)
     | _ -> None)

let realize spec sys =
  match spec with
  | Plain -> Strategy.plain ()
  | Flit_adjacent -> Strategy.flit_adjacent ()
  | Flit_hash slots ->
    let table_base =
      Skipit_mem.Allocator.alloc (S.allocator sys) ~align:64 (slots * 8)
    in
    Strategy.flit_hash ~table_base ~table_slots:slots
  | Link_and_persist -> Strategy.link_and_persist ()
  | Skipit -> Strategy.skipit_hw ()
  | Baseline -> Strategy.none ()

let wants_skip_it_hw = function
  | Skipit -> true
  | Plain | Flit_adjacent | Flit_hash _ | Link_and_persist | Baseline -> false

type workload = {
  threads : int;
  key_range : int;
  update_pct : int;
  prefill : int;
  window : int;
  seed : int;
  skew : float;
}

(* Sized so the structures pressure the 32 KiB L1 (and, with FliT's doubled
   footprint or separate counter table, the 512 KiB L2) the way the paper's
   544 KiB total cache is pressured (§7.4). *)
let default_workload =
  {
    threads = 2;
    key_range = 2048;
    update_pct = 5;
    prefill = 1024;
    window = 500_000;
    seed = 7;
    skew = 0.;
  }

let spec_uses_word_bit = function
  | Link_and_persist -> true
  | Plain | Flit_adjacent | Flit_hash _ | Skipit | Baseline -> false

let compatible kind spec = not (Ops.uses_word_bits kind && spec_uses_word_bit spec)

let throughput ?(params = Params.boom_default) ~kind ~mode ~spec w =
  if Ops.uses_word_bits kind && spec_uses_word_bit spec then nan
  else begin
    let params =
      Params.with_skip_it (Params.with_cores params w.threads) (wants_skip_it_hw spec)
    in
    let sys = S.create params in
    let strategy = realize spec sys in
    let pctx = Pctx.make strategy mode in
    let alloc = S.allocator sys in
    let handle = ref None in
    let buckets = max 16 (w.key_range / 4) in
    (* Build + prefill (every other key, giving [prefill] resident keys). *)
    ignore
      (T.run sys
         [
           {
             T.core = 0;
             body =
               (fun () ->
                 let h = Ops.create_sized kind ~buckets pctx alloc in
                 (* Insert every (range/prefill)-th key in shuffled order:
                    sorted insertion would degenerate the external BST into
                    a vine. *)
                 let step = max 1 (w.key_range / max 1 w.prefill) in
                 let keys =
                   Array.init (w.key_range / step) (fun i -> 1 + (i * step))
                 in
                 Rng.shuffle (Rng.create ~seed:w.seed) keys;
                 Array.iter (fun k -> ignore (h.Ops.insert pctx k)) keys;
                 handle := Some h);
           };
         ]);
    let h = Option.get !handle in
    let ops_done = Array.make w.threads 0 in
    let distribution =
      if w.skew > 0. then Some (Skipit_sim.Distribution.zipf ~n:w.key_range ~theta:w.skew)
      else None
    in
    let worker core =
      {
        T.core;
        body =
          (fun () ->
            let rng = Rng.create ~seed:(w.seed + (core * 7919)) in
            let stop_at = T.now () + w.window in
            let n = ref 0 in
            while T.now () < stop_at do
              let key =
                match distribution with
                | Some d -> 1 + Skipit_sim.Distribution.sample d rng
                | None -> 1 + Rng.int rng w.key_range
              in
              let r = Rng.int rng 100 in
              (if r < w.update_pct then
                 if Rng.bool rng then ignore (h.Ops.insert pctx key)
                 else ignore (h.Ops.delete pctx key)
               else ignore (h.Ops.contains pctx key));
              incr n
            done;
            ops_done.(core) <- !n);
      }
    in
    ignore (T.run sys (List.init w.threads worker));
    let total = Array.fold_left ( + ) 0 ops_done in
    float_of_int total *. 1000. /. float_of_int w.window
  end

let fig14 ?params ~kind w =
  Pctx.all_modes
  |> List.map (fun mode ->
       let points =
         List.mapi
           (fun i spec -> float_of_int i, throughput ?params ~kind ~mode ~spec w)
           default_specs
       in
       let label_series =
         List.mapi
           (fun i spec -> Series.v (spec_name spec) [ List.nth points i ])
           default_specs
       in
       Pctx.mode_name mode, label_series)

(* Fig. 15's grid is specs × update percentages: flatten it into one job
   list (one trial per cell, each with its own system and seed), then
   regroup the in-order results into per-spec series. *)
let update_sweep ?params ?pool ~kind ~mode ~updates w =
  let cells =
    List.concat_map
      (fun spec -> List.map (fun pct -> spec, pct) updates)
      default_specs
  in
  let ys =
    Pool.run_chunked_opt ~chunk:1 pool
      (fun (spec, pct) ->
        throughput ?params ~kind ~mode ~spec { w with update_pct = pct })
      cells
  in
  let tbl = List.combine cells ys in
  default_specs
  |> List.map (fun spec ->
       Series.v (spec_name spec)
         (List.map
            (fun pct -> float_of_int pct, List.assoc (spec, pct) tbl)
            updates))

let flit_table_sweep ?params ?pool ~kind ~mode ~slots w =
  let ys =
    Pool.run_chunked_opt ~chunk:1 pool
      (fun n -> throughput ?params ~kind ~mode ~spec:(Flit_hash n) w)
      slots
  in
  Series.v "flit-hash" (List.map2 (fun n y -> float_of_int n, y) slots ys)
