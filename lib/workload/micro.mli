(** Microbenchmark drivers for §7.2 and §7.4's Fig. 13.

    Each driver builds a fresh system per repetition, runs the instruction
    sequence the paper describes on [threads] simulated cores, and reports
    the median elapsed cycles over the repetitions (the paper repeats 50×
    and reports medians; the simulator is deterministic, so repetitions vary
    only the region placement). *)

open Skipit_tilelink

val sizes_default : int list
(** 64 B … 32 KiB in powers of two (Fig. 9's x axis). *)

(** {1 Job-list form}

    Every driver is a grid of independent simulations.  A [prepared]
    experiment exposes the grid as self-contained jobs (each builds its own
    system and RNG — nothing crosses a domain boundary) plus a pure reducer
    over the results in submission order, so running the jobs on a
    {!Skipit_par.Pool} of any width produces byte-identical tables. *)

type 'r prepared = {
  jobs : (unit -> float) list;
  reduce : float list -> 'r;
}

val run_prepared : ?pool:Skipit_par.Pool.t -> 'r prepared list -> 'r list
(** Run the concatenated job lists of a batch of experiments — on the pool
    when given, inline otherwise — and reduce each experiment's slice. *)

val prep_single_line :
  ?params:Skipit_cache.Params.t -> kind:Message.wb_kind -> repeats:int -> unit ->
  (float * float) prepared
(** One job per repetition. *)

val prep_writeback_sweep :
  ?params:Skipit_cache.Params.t -> kind:Message.wb_kind -> threads:int ->
  sizes:int list -> repeats:int -> unit -> Series.t prepared
(** One job per sweep point (size); repetitions run inside the job. *)

val prep_write_wb_read :
  ?params:Skipit_cache.Params.t -> kind:Message.wb_kind -> threads:int ->
  sizes:int list -> repeats:int -> unit -> Series.t prepared

val prep_contended_sweep :
  ?params:Skipit_cache.Params.t -> kind:Message.wb_kind -> threads:int ->
  sizes:int list -> repeats:int -> unit -> Series.t prepared

val prep_redundant :
  ?params:Skipit_cache.Params.t -> kind:Message.wb_kind -> skip_it:bool ->
  threads:int -> redundant:int -> sizes:int list -> repeats:int -> unit ->
  Series.t prepared

(** {1 Sequential wrappers} *)

val single_line : ?params:Skipit_cache.Params.t -> kind:Message.wb_kind -> repeats:int -> unit -> float * float
(** [(median, stddev)] cycles for one CBO.X of a dirty line plus the fence —
    the §7.2 "≈100 cycles (σ: 13.2)" scalar. *)

val writeback_sweep :
  ?params:Skipit_cache.Params.t ->
  kind:Message.wb_kind ->
  threads:int ->
  sizes:int list ->
  repeats:int ->
  unit ->
  Series.t
(** Fig. 9: dirty a region, then each thread writes back its disjoint share
    sequentially and fences once; elapsed = last fence − first writeback. *)

val write_wb_read :
  ?params:Skipit_cache.Params.t ->
  kind:Message.wb_kind ->
  threads:int ->
  sizes:int list ->
  repeats:int ->
  unit ->
  Series.t
(** Fig. 10: per share — write every line, issue the writeback 10×, fence,
    then re-read every line; elapsed covers the whole sequence.  CBO.CLEAN
    re-reads hit; CBO.FLUSH re-reads refetch (≈2× total latency). *)

val contended_sweep :
  ?params:Skipit_cache.Params.t ->
  kind:Message.wb_kind ->
  threads:int ->
  sizes:int list ->
  repeats:int ->
  unit ->
  Series.t
(** The contended counterpart of Fig. 9 (the paper measures non-contended
    lines): every thread writes back the {e same} region, so the writebacks
    race through cross-core probes and the §5.4.1 interlocks.  One thread
    dirties the region; all threads then write it back and fence. *)

val redundant :
  ?params:Skipit_cache.Params.t ->
  kind:Message.wb_kind ->
  skip_it:bool ->
  threads:int ->
  redundant:int ->
  sizes:int list ->
  repeats:int ->
  unit ->
  Series.t
(** Fig. 13: per line — store, one writeback, then [redundant] more
    writeback passes over the region, one final fence.  With [skip_it] the
    redundant passes are dropped at the L1 (§6.1).  The paper uses
    CBO.FLUSH and notes results are identical for CBO.CLEAN; we default the
    harness to CBO.CLEAN because after an {e invalidating} first writeback
    the redundant ones miss the L1 and are not skippable — see
    EXPERIMENTS.md. *)
