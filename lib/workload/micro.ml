module S = Skipit_core.System
module T = Skipit_core.Thread
module Params = Skipit_cache.Params
module Sample = Skipit_sim.Stats.Sample
module Pool = Skipit_par.Pool
open Skipit_tilelink

let sizes_default =
  let rec up n acc = if n > 32 * 1024 then List.rev acc else up (n * 2) (n :: acc) in
  up 64 []

let line_bytes = 64

let wb kind addr =
  match kind with Message.Wb_clean -> T.clean addr | Message.Wb_flush -> T.flush addr

(* Carve a [size]-byte region into per-thread shares of whole lines.  With
   fewer lines than threads, only the first [lines] threads work. *)
let shares ~size ~threads =
  let lines = size / line_bytes in
  let per = max 1 (lines / threads) in
  List.init threads (fun i ->
    let first = i * per in
    let count = if i = threads - 1 then lines - first else per in
    first, max 0 count)
  |> List.filter (fun (_, count) -> count > 0)

(* Run one measured configuration: [setup] then [measure] per thread; the
   reported elapsed time is (latest measure end) − (earliest measure
   start). *)
let run_once params ~threads ~size ~offset ~setup ~measure =
  let params = Params.with_cores params threads in
  let sys = S.create params in
  let base =
    Skipit_mem.Allocator.alloc (S.allocator sys) ~align:line_bytes (size + offset) + offset
  in
  let starts = Array.make threads max_int in
  let ends = Array.make threads 0 in
  let tasks =
    shares ~size ~threads
    |> List.mapi (fun core (first, count) ->
         {
           T.core;
           body =
             (fun () ->
               let lo = base + (first * line_bytes) in
               setup ~lo ~count;
               T.fence ();
               starts.(core) <- T.now ();
               measure ~lo ~count;
               ends.(core) <- T.now ());
         })
  in
  ignore (T.run sys tasks);
  let t0 = Array.fold_left min max_int starts in
  let t1 = Array.fold_left max 0 ends in
  t1 - t0

let dirty_lines ~lo ~count =
  for i = 0 to count - 1 do
    T.store (lo + (i * line_bytes)) (i + 1)
  done

(* Shift the region by a different line offset each repetition so set
   mapping varies, mimicking the paper's run-to-run variance. *)
let rep_offset r = r * line_bytes * 7

let median_over ~repeats f =
  let sample = Sample.create () in
  for r = 0 to repeats - 1 do
    Sample.add_int sample (f ~offset:(rep_offset r))
  done;
  sample

(* == Job-list producers ================================================= *)

(* Every experiment below is a grid of *independent* simulations.  A
   [prepared] experiment exposes that grid as a list of self-contained jobs
   (each builds its own system, so nothing is shared across pool domains)
   plus a pure reducer from the jobs' results — in submission order — to
   the experiment's value.  [run_prepared] executes a batch of prepared
   experiments on an optional domain pool; with no pool (or a width-1
   pool) the jobs run inline in exactly the order the sequential driver
   used, so results are identical by construction. *)
type 'r prepared = {
  jobs : (unit -> float) list;
  reduce : float list -> 'r;
}

let run_prepared ?pool preps =
  let jobs = List.concat_map (fun p -> p.jobs) preps in
  (* Each job is a whole simulation: dispatch is already amortized, so
     chunk 1 gives the stealers the most to balance. *)
  let ys = Pool.run_chunked_opt ~chunk:1 pool (fun job -> job ()) jobs in
  let rec split preps ys =
    match preps with
    | [] -> []
    | p :: rest ->
      let rec take n ys acc =
        if n = 0 then List.rev acc, ys
        else
          match ys with
          | [] -> invalid_arg "Micro.run_prepared: result count mismatch"
          | y :: tl -> take (n - 1) tl (y :: acc)
      in
      let mine, others = take (List.length p.jobs) ys [] in
      p.reduce mine :: split rest others
  in
  split preps ys

(* One job per sweep point; the median over repetitions runs inside the
   job (repetitions of one point share nothing either, but the point is
   the natural unit the tables are built from). *)
let prep_sweep ?(params = Params.boom_default) ~label ~threads ~sizes ~repeats ~setup
    ~measure () =
  {
    jobs =
      List.map
        (fun size () ->
          let sample =
            median_over ~repeats (fun ~offset ->
              run_once params ~threads ~size ~offset ~setup ~measure)
          in
          Sample.median sample)
        sizes;
    reduce =
      (fun ys -> Series.v label (List.map2 (fun s y -> float_of_int s, y) sizes ys));
  }

(* One job per repetition: the §7.2 scalars repeat 50×, which is the whole
   grid for this experiment. *)
let prep_single_line ?(params = Params.boom_default) ~kind ~repeats () =
  {
    jobs =
      List.init repeats (fun r () ->
        float_of_int
          (run_once params ~threads:1 ~size:line_bytes ~offset:(rep_offset r)
             ~setup:dirty_lines
             ~measure:(fun ~lo ~count ->
               for i = 0 to count - 1 do
                 wb kind (lo + (i * line_bytes))
               done;
               T.fence ())));
    reduce =
      (fun ys ->
        let sample = Sample.create () in
        List.iter (Sample.add sample) ys;
        Sample.median sample, Sample.stddev sample);
  }

let prep_writeback_sweep ?params ~kind ~threads ~sizes ~repeats () =
  prep_sweep ?params
    ~label:(Printf.sprintf "cbo.%s/%dT" (match kind with Message.Wb_clean -> "clean" | Message.Wb_flush -> "flush") threads)
    ~threads ~sizes ~repeats ~setup:dirty_lines
    ~measure:(fun ~lo ~count ->
      for i = 0 to count - 1 do
        wb kind (lo + (i * line_bytes))
      done;
      T.fence ())
    ()

let prep_write_wb_read ?params ~kind ~threads ~sizes ~repeats () =
  prep_sweep ?params
    ~label:(Printf.sprintf "%s/%dT" (match kind with Message.Wb_clean -> "clean" | Message.Wb_flush -> "flush") threads)
    ~threads ~sizes ~repeats
    ~setup:(fun ~lo:_ ~count:_ -> ())
    ~measure:(fun ~lo ~count ->
      dirty_lines ~lo ~count;
      for _pass = 1 to 10 do
        for i = 0 to count - 1 do
          wb kind (lo + (i * line_bytes))
        done
      done;
      T.fence ();
      for i = 0 to count - 1 do
        ignore (T.load (lo + (i * line_bytes)))
      done)
    ()

(* All threads write back the same region (contended). *)
let contended_once params ~kind ~threads ~size ~offset =
  let params = Params.with_cores params threads in
  let sys = S.create params in
  let base =
    Skipit_mem.Allocator.alloc (S.allocator sys) ~align:line_bytes (size + offset)
    + offset
  in
  let lines = size / line_bytes in
  let starts = Array.make threads max_int in
  let ends = Array.make threads 0 in
  let task core =
    {
      T.core;
      body =
        (fun () ->
          if core = 0 then dirty_lines ~lo:base ~count:lines;
          T.fence ();
          starts.(core) <- T.now ();
          for i = 0 to lines - 1 do
            wb kind (base + (i * line_bytes))
          done;
          T.fence ();
          ends.(core) <- T.now ());
    }
  in
  ignore (T.run sys (List.init threads task));
  Array.fold_left max 0 ends - Array.fold_left min max_int starts

let prep_contended_sweep ?(params = Params.boom_default) ~kind ~threads ~sizes ~repeats () =
  {
    jobs =
      List.map
        (fun size () ->
          let sample =
            median_over ~repeats (fun ~offset ->
              contended_once params ~kind ~threads ~size ~offset)
          in
          Sample.median sample)
        sizes;
    reduce =
      (fun ys ->
        Series.v
          (Printf.sprintf "contended/%dT" threads)
          (List.map2 (fun s y -> float_of_int s, y) sizes ys));
  }

let prep_redundant ?(params = Params.boom_default) ~kind ~skip_it ~threads ~redundant
    ~sizes ~repeats () =
  let params = Params.with_skip_it params skip_it in
  prep_sweep ~params
    ~label:(Printf.sprintf "%s/%dT" (if skip_it then "skip-it" else "naive") threads)
    ~threads ~sizes ~repeats
    ~setup:(fun ~lo:_ ~count:_ -> ())
    ~measure:(fun ~lo ~count ->
      (* The paper's exact per-line burst: a store, one writeback, then the
         redundant writebacks back-to-back to the same line.  Early
         redundant ones coalesce with the pending request (§5.3); the rest
         are dropped by Skip It or pay the L2 round trip. *)
      for i = 0 to count - 1 do
        let addr = lo + (i * line_bytes) in
        T.store addr (i + 1);
        wb kind addr;
        for _r = 1 to redundant do
          wb kind addr
        done
      done;
      T.fence ())
    ()

(* == Sequential wrappers ================================================ *)

let run_one prep = match run_prepared [ prep ] with [ r ] -> r | _ -> assert false

let single_line ?params ~kind ~repeats () =
  run_one (prep_single_line ?params ~kind ~repeats ())

let writeback_sweep ?params ~kind ~threads ~sizes ~repeats () =
  run_one (prep_writeback_sweep ?params ~kind ~threads ~sizes ~repeats ())

let write_wb_read ?params ~kind ~threads ~sizes ~repeats () =
  run_one (prep_write_wb_read ?params ~kind ~threads ~sizes ~repeats ())

let contended_sweep ?params ~kind ~threads ~sizes ~repeats () =
  run_one (prep_contended_sweep ?params ~kind ~threads ~sizes ~repeats ())

let redundant ?params ~kind ~skip_it ~threads ~redundant ~sizes ~repeats () =
  run_one (prep_redundant ?params ~kind ~skip_it ~threads ~redundant ~sizes ~repeats ())
