(** Regeneration of every figure in the paper's evaluation (§7).

    Each function runs the corresponding experiment on the simulator (plus
    the {!Skipit_xarch} analytic models for the commercial CPUs of
    Figs 11/12) and prints the series as an aligned text table — the rows
    behind the paper's plots.  [quick] trades repetitions / sweep density /
    measurement-window length for speed (used by the default bench run).

    Every figure is a grid of independent simulations; [pool] runs the grid
    on the parallel experiment engine.  Results are reduced in submission
    order, so the printed output is byte-identical at any pool width.

    [params] overrides the simulated platform (core count, [l2_banks],
    topology, burst model, ...); figures that sweep thread counts (Fig 9)
    extend the sweep in powers of two up to [n_cores].  The data-structure
    figures (14-16) run on their own fixed platforms and ignore it. *)

val scalar_7_2 :
  ?quick:bool ->
  ?pool:Skipit_par.Pool.t ->
  ?params:Skipit_cache.Params.t ->
  Format.formatter ->
  unit
(** §7.2 headline numbers: single-line CBO.X median/σ and the full-32 KiB
    flush, 1 thread. *)

val fig9 :
  ?quick:bool ->
  ?pool:Skipit_par.Pool.t ->
  ?params:Skipit_cache.Params.t ->
  Format.formatter ->
  unit
(** CBO.X latency vs writeback size for 1/2/4/8 threads. *)

val fig10 :
  ?quick:bool ->
  ?pool:Skipit_par.Pool.t ->
  ?params:Skipit_cache.Params.t ->
  Format.formatter ->
  unit
(** Write – writeback ×10 – fence – read: CBO.CLEAN vs CBO.FLUSH, 1 and 8
    threads. *)

val fig11 :
  ?quick:bool ->
  ?pool:Skipit_par.Pool.t ->
  ?params:Skipit_cache.Params.t ->
  Format.formatter ->
  unit
(** Cross-architecture writeback latency, 1 thread. *)

val fig12 :
  ?quick:bool ->
  ?pool:Skipit_par.Pool.t ->
  ?params:Skipit_cache.Params.t ->
  Format.formatter ->
  unit
(** Cross-architecture writeback latency, 8 threads. *)

val fig13 :
  ?quick:bool ->
  ?pool:Skipit_par.Pool.t ->
  ?params:Skipit_cache.Params.t ->
  Format.formatter ->
  unit
(** Naïve vs Skip It under redundant writebacks, 1 and 8 threads. *)

val fig14 :
  ?quick:bool ->
  ?pool:Skipit_par.Pool.t ->
  ?params:Skipit_cache.Params.t ->
  Format.formatter ->
  unit
(** Data-structure throughput at 5 % updates: 4 structures × 3 persistence
    algorithms × 5 strategies (+ non-persistent baseline), 2 threads. *)

val fig15 :
  ?quick:bool ->
  ?pool:Skipit_par.Pool.t ->
  ?params:Skipit_cache.Params.t ->
  Format.formatter ->
  unit
(** Throughput vs update percentage. *)

val fig16 :
  ?quick:bool ->
  ?pool:Skipit_par.Pool.t ->
  ?params:Skipit_cache.Params.t ->
  Format.formatter ->
  unit
(** BST (10 k keys) sensitivity to the FliT hash-table size. *)

val all :
  ?quick:bool ->
  ?pool:Skipit_par.Pool.t ->
  ?params:Skipit_cache.Params.t ->
  Format.formatter ->
  unit

val by_name :
  string ->
  (?quick:bool ->
  ?pool:Skipit_par.Pool.t ->
  ?params:Skipit_cache.Params.t ->
  Format.formatter ->
  unit)
  option
(** Lookup "fig9" … "fig16", "scalar", "all". *)

val names : string list
