module Params = Skipit_cache.Params
module S = Skipit_core.System
module T = Skipit_core.Thread
module Pool = Skipit_par.Pool
open Skipit_tilelink

let line_bytes = 64

(* Store+flush [lines] lines, one fence; fresh single-core system. *)
let flush_region_cycles params ~lines =
  let sys = S.create (Params.with_cores params 1) in
  let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:line_bytes (lines * line_bytes) in
  let elapsed = ref 0 in
  ignore
    (T.run sys
       [
         {
           T.core = 0;
           body =
             (fun () ->
               for i = 0 to lines - 1 do
                 T.store (base + (i * line_bytes)) i
               done;
               T.fence ();
               let t0 = T.now () in
               for i = 0 to lines - 1 do
                 T.flush (base + (i * line_bytes))
               done;
               T.fence ();
               elapsed := T.now () - t0);
         };
       ]);
  !elapsed

(* Each ablation is a grid of independent per-config simulations: build the
   config list, run one job per config (on [pool] when given), zip results
   back in order. *)

let fshr_count ?(counts = [ 1; 2; 4; 8; 16 ]) ?pool () =
  let ys =
    Pool.run_chunked_opt ~chunk:1 pool
      (fun n ->
        let params = { Params.boom_default with Params.n_fshrs = n } in
        float_of_int (flush_region_cycles params ~lines:512))
      counts
  in
  Series.v "32KiB flush" (List.map2 (fun n y -> float_of_int n, y) counts ys)

let queue_depth ?(depths = [ 0; 1; 2; 4; 8; 16 ]) ?pool () =
  let ys =
    Pool.run_chunked_opt ~chunk:1 pool
      (fun d ->
        let params = { Params.boom_default with Params.flush_queue_depth = d } in
        float_of_int (flush_region_cycles params ~lines:64))
      depths
  in
  Series.v "64-line store+flush burst" (List.map2 (fun d y -> float_of_int d, y) depths ys)

(* Fig. 13's redundant workload at one size under a given config. *)
let redundant_cycles params =
  let series =
    Micro.redundant ~params ~kind:Message.Wb_clean
      ~skip_it:params.Params.skip_it ~threads:1 ~redundant:10 ~sizes:[ 4096 ] ~repeats:3 ()
  in
  match series.Series.points with [ p ] -> p.Series.y | _ -> nan

let skip_decomposition ?pool () =
  let base = Params.boom_default in
  let configs =
    [
      ( "no-skip-at-all",
        { base with Params.skip_it = false; l2_trivial_skip = false; coalescing = false } );
      ( "l2-trivial-only",
        { base with Params.skip_it = false; l2_trivial_skip = true; coalescing = false } );
      ( "full-skip-it",
        { base with Params.skip_it = true; l2_trivial_skip = true; coalescing = false } );
    ]
  in
  let ys = Pool.run_chunked_opt ~chunk:1 pool (fun (_, params) -> redundant_cycles params) configs in
  List.map2 (fun (label, _) y -> Series.v label [ 4096., y ]) configs ys

let data_array_width ?pool () =
  let widths = [ "wide-1cycle", true; "narrow-8cycle", false ] in
  let lines_list = [ 1; 64; 512 ] in
  let cells =
    List.concat_map (fun (_, wide) -> List.map (fun l -> wide, l) lines_list) widths
  in
  let ys =
    Pool.run_chunked_opt ~chunk:1 pool
      (fun (wide, lines) ->
        let params = { Params.boom_default with Params.wide_data_array = wide } in
        float_of_int (flush_region_cycles params ~lines))
      cells
  in
  let tbl = List.combine cells ys in
  List.map
    (fun (label, wide) ->
      Series.v label
        (List.map
           (fun lines ->
             float_of_int (lines * line_bytes), List.assoc (wide, lines) tbl)
           lines_list))
    widths

(* The Fig. 13 naive workload with queue coalescing on vs off: when the
   FSHRs back up, queued same-line requests merge, so the flush queue
   itself filters most redundancy — which is why coalescing is off in the
   default calibration (see Params). *)
let coalescing ?pool () =
  let configs = [ "coalescing-on", true; "coalescing-off", false ] in
  let ys =
    Pool.run_chunked_opt ~chunk:1 pool
      (fun (_, coalescing) ->
        redundant_cycles { Params.boom_default with Params.coalescing })
      configs
  in
  List.map2 (fun (label, _) y -> Series.v label [ 4096., y ]) configs ys

(* §7.4's closing hypothesis: a deeper hierarchy increases writeback
   latencies — measure how the Fig. 13 redundant-writeback workload and the
   single-line latency respond to a memory-side L3. *)
let hierarchy_depth ?pool () =
  let single params =
    let series =
      Micro.writeback_sweep ~params ~kind:Message.Wb_flush ~threads:1 ~sizes:[ 64 ]
        ~repeats:1 ()
    in
    match series.Series.points with [ p ] -> p.Series.y | _ -> nan
  in
  let jobs =
    [ "l2-only", Params.boom_default; "with-l3", Params.with_l3 Params.boom_default ]
    |> List.concat_map (fun (label, base) ->
         [
           (label ^ "/single-flush", 64., fun () -> single base);
           ( label ^ "/naive",
             4096.,
             fun () -> redundant_cycles { base with Params.skip_it = false } );
           ( label ^ "/skip-it",
             4096.,
             fun () -> redundant_cycles { base with Params.skip_it = true } );
         ])
  in
  let ys = Pool.run_chunked_opt ~chunk:1 pool (fun (_, _, job) -> job ()) jobs in
  List.map2 (fun (label, x, _) y -> Series.v label [ x, y ]) jobs ys

(* Contended vs non-contended writebacks (Fig. 9 is non-contended): all
   threads flushing the same region exercise cross-core probes and the
   §5.4.1 interlocks. *)
let contention ?pool () =
  let preps =
    List.concat_map
      (fun threads ->
        [
          Micro.prep_writeback_sweep ~kind:Message.Wb_flush ~threads ~sizes:[ 4096 ]
            ~repeats:1 ();
          Micro.prep_contended_sweep ~kind:Message.Wb_flush ~threads ~sizes:[ 4096 ]
            ~repeats:1 ();
        ])
      [ 1; 2; 4; 8 ]
  in
  Micro.run_prepared ?pool preps
  |> List.mapi (fun i s ->
       (* Even slots are the disjoint sweeps: relabel them per thread count. *)
       if i mod 2 = 0 then
         { s with Series.label = Printf.sprintf "disjoint/%dT" (List.nth [ 1; 2; 4; 8 ] (i / 2)) }
       else s)

(* Access skew concentrates redundant writebacks on hot lines — the regime
   Skip It targets.  Hash-table throughput under automatic persistence,
   uniform vs Zipf(0.99) keys, Skip It vs plain. *)
let skew ?pool () =
  let base =
    { Ds_bench.default_workload with Ds_bench.key_range = 1024; prefill = 512; window = 250_000 }
  in
  let cells =
    [ "uniform", 0.; "zipf-0.99", 0.99 ]
    |> List.concat_map (fun (label, skew) ->
         [ label ^ "/plain", skew, Ds_bench.Plain; label ^ "/skip-it", skew, Ds_bench.Skipit ])
  in
  let ys =
    Pool.run_chunked_opt ~chunk:1 pool
      (fun (_, skew, spec) ->
        Ds_bench.throughput ~kind:Skipit_pds.Set_ops.Hash_set
          ~mode:Skipit_persist.Pctx.Automatic ~spec
          { base with Ds_bench.skew })
      cells
  in
  List.map2 (fun (label, _, _) y -> Series.v label [ 1024., y ]) cells ys

let run_all ?pool ppf =
  let section title series ~x_name =
    Format.fprintf ppf "@,== Ablation: %s ==@," title;
    Series.pp_table ~x_name ppf series
  in
  section "FSHR count (writeback MLP)" [ fshr_count ?pool () ] ~x_name:"fshrs";
  section "flush queue depth (early commit)" [ queue_depth ?pool () ] ~x_name:"depth";
  section "redundant-writeback skip decomposition" (skip_decomposition ?pool ())
    ~x_name:"bytes";
  section "L1 data-array width (fill_buffer)" (data_array_width ?pool ()) ~x_name:"bytes";
  section "flush-queue coalescing on the redundant-writeback workload" (coalescing ?pool ())
    ~x_name:"bytes";
  section "hierarchy depth (memory-side L3, §7.4 hypothesis)" (hierarchy_depth ?pool ())
    ~x_name:"bytes";
  section "contended vs disjoint writebacks (4 KiB)" (contention ?pool ()) ~x_name:"bytes";
  section "key skew (hash table, automatic persistence, ops/kcycle)" (skew ?pool ())
    ~x_name:"keys"
