module S = Skipit_core.System
module C = Skipit_core.Config
module T = Skipit_core.Thread
module Params = Skipit_cache.Params
module Strategy = Skipit_persist.Strategy
module Pctx = Skipit_persist.Pctx
module Ops = Skipit_pds.Set_ops
module MQ = Skipit_pds.Ms_queue
module PL = Skipit_mem.Persist_log
module Rng = Skipit_sim.Rng
module Pool = Skipit_par.Pool

(* ------------------------------------------------------------------ *)
(* Campaign dimensions.                                               *)

type structure = Queue | Set of Ops.kind

let all_structures = Queue :: List.map (fun k -> Set k) Ops.all_kinds
let structure_name = function Queue -> "ms-queue" | Set k -> Ops.kind_name k

let structure_of_name name =
  List.find_opt (fun s -> structure_name s = name) all_structures

type strategy_spec = Plain | Skipit | Flit_adjacent | Link_and_persist

let all_strategies = [ Plain; Skipit; Flit_adjacent; Link_and_persist ]

let strategy_name = function
  | Plain -> "plain"
  | Skipit -> "skip-it"
  | Flit_adjacent -> "flit-adjacent"
  | Link_and_persist -> "link-and-persist"

let strategy_of_name name =
  List.find_opt (fun s -> strategy_name s = name) all_strategies

type fault = No_fault | Drop_nth_persist of int | Drop_all_persists

let fault_name = function
  | No_fault -> "none"
  | Drop_nth_persist n -> Printf.sprintf "drop-nth-persist:%d" n
  | Drop_all_persists -> "drop-all-persists"

let fault_of_name = function
  | "none" -> Some No_fault
  | "drop-all-persists" -> Some Drop_all_persists
  | s -> (
    match String.index_opt s ':' with
    | Some i
      when String.sub s 0 i = "drop-nth-persist" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some n when n >= 1 -> Some (Drop_nth_persist n)
      | _ -> None)
    | _ -> None)

type spec = {
  structure : structure;
  mode : Pctx.mode;
  strategy : strategy_spec;
  fault : fault;
  seed : int;
  n_ops : int;
}

let spec_name s =
  Printf.sprintf "%s/%s/%s%s seed=%d ops=%d" (structure_name s.structure)
    (Pctx.mode_name s.mode) (strategy_name s.strategy)
    (match s.fault with No_fault -> "" | f -> "+" ^ fault_name f)
    s.seed s.n_ops

let uses_word_bits = function Queue -> false | Set k -> Ops.uses_word_bits k

let compatible s =
  not (uses_word_bits s.structure && s.strategy = Link_and_persist)

let default_specs ~seed ~n_ops ~fault =
  List.concat_map
    (fun structure ->
      List.concat_map
        (fun mode ->
          List.filter_map
            (fun strategy ->
              let s = { structure; mode; strategy; fault; seed; n_ops } in
              if compatible s then Some s else None)
            [ Plain; Skipit ])
        Pctx.all_modes)
    all_structures

(* ------------------------------------------------------------------ *)
(* Strategy realization and fault injection.                          *)

let wants_skip_it_hw = function Skipit -> true | Plain | Flit_adjacent | Link_and_persist -> false

let realize_strategy spec =
  match spec.strategy with
  | Plain -> Strategy.plain ()
  | Skipit -> Strategy.skipit_hw ()
  | Flit_adjacent -> Strategy.flit_adjacent ()
  | Link_and_persist -> Strategy.link_and_persist ()

(* The seeded-fault wrapper: silently elide required store-side writebacks.
   Exactly the bug class FliT frames — one missing flush breaking durable
   linearizability — and what the campaign must demonstrably catch. *)
let apply_fault fault (s : Strategy.t) =
  match fault with
  | No_fault -> s
  | Drop_all_persists ->
    { s with name = s.name ^ "+" ^ fault_name fault; persist_store = (fun _ -> ()) }
  | Drop_nth_persist n ->
    let calls = ref 0 in
    {
      s with
      name = s.name ^ "+" ^ fault_name fault;
      persist_store =
        (fun addr ->
          incr calls;
          if !calls <> n then s.persist_store addr);
    }

(* ------------------------------------------------------------------ *)
(* Deterministic op schedules and the sequential oracle.              *)

type op = Insert of int | Delete of int | Contains of int | Enqueue of int | Dequeue

let set_key_range = 16

let gen_ops spec =
  let rng = Rng.create ~seed:(spec.seed lxor (Hashtbl.hash (structure_name spec.structure) * 65599)) in
  match spec.structure with
  | Set _ ->
    Array.init spec.n_ops (fun _ ->
      let key = 1 + Rng.int rng set_key_range in
      let r = Rng.int rng 100 in
      if r < 45 then Insert key else if r < 80 then Delete key else Contains key)
  | Queue ->
    let next_value = ref 0 in
    Array.init spec.n_ops (fun _ ->
      if Rng.int rng 100 < 60 then begin
        incr next_value;
        Enqueue !next_value
      end
      else Dequeue)

(* ------------------------------------------------------------------ *)
(* One trial.                                                         *)

type trial = {
  persists : int;
  crashed : bool;
  completed : int;
  violations : string list;
}

let build_system ?(l2_banks = 1) spec =
  let params =
    { (C.tiny ~cores:1 ()) with Params.skip_it = wants_skip_it_hw spec.strategy; l2_banks }
  in
  S.create params

let run_task sys f =
  let r = ref None in
  ignore (T.run sys [ { T.core = 0; body = (fun () -> r := Some (f ())) } ]);
  Option.get !r

(* Replay the completed prefix of the schedule on the host-side model. *)
let set_model ops ~completed =
  let model = Hashtbl.create 64 in
  Array.iteri
    (fun i op ->
      if i < completed then
        match op with
        | Insert k -> Hashtbl.replace model k true
        | Delete k -> Hashtbl.replace model k false
        | Contains _ | Enqueue _ | Dequeue -> ())
    ops;
  model

let queue_model ops ~completed =
  let q = ref [] in
  Array.iteri
    (fun i op ->
      if i < completed then
        match op with
        | Enqueue v -> q := !q @ [ v ]
        | Dequeue -> (match !q with [] -> () | _ :: t -> q := t)
        | Insert _ | Delete _ | Contains _ -> ())
    ops;
  !q

let verify_set (h : Ops.handle) p sys ops ~completed =
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  ignore (run_task sys (fun () -> h.Ops.repair p));
  let snap = h.Ops.snapshot sys in
  let model = set_model ops ~completed in
  let pending = if completed < Array.length ops then Some ops.(completed) else None in
  let pending_key =
    match pending with Some (Insert k) | Some (Delete k) -> Some k | _ -> None
  in
  let touched = Hashtbl.create 64 in
  Array.iteri
    (fun i op ->
      if i <= completed then
        match op with
        | Insert k | Delete k | Contains k -> Hashtbl.replace touched k ()
        | Enqueue _ | Dequeue -> ())
    ops;
  List.iter
    (fun k ->
      if not (Hashtbl.mem touched k) then
        add "phantom element %d in post-crash snapshot (never inserted)" k)
    snap;
  Hashtbl.iter
    (fun k present ->
      if Some k <> pending_key then
        if present && not (List.mem k snap) then
          add "durably-inserted key %d lost after crash+repair" k
        else if (not present) && List.mem k snap then
          add "durably-deleted key %d resurrected after crash+repair" k)
    model;
  List.rev !out

let verify_queue q p sys ops ~completed =
  ignore (run_task sys (fun () -> MQ.repair q p));
  let snap = MQ.to_list_unsafe q sys in
  let base = queue_model ops ~completed in
  let pending = if completed < Array.length ops then Some ops.(completed) else None in
  let acceptable =
    match pending with
    | Some (Enqueue v) -> [ base; base @ [ v ] ]
    | Some Dequeue -> [ base; (match base with [] -> [] | _ :: t -> t) ]
    | _ -> [ base ]
  in
  if List.mem snap acceptable then []
  else
    [
      Printf.sprintf "queue mismatch after crash+repair: got [%s], expected [%s]%s"
        (String.concat "; " (List.map string_of_int snap))
        (String.concat "; " (List.map string_of_int base))
        (match pending with
         | Some (Enqueue v) -> Printf.sprintf " (or with pending enqueue %d)" v
         | Some Dequeue -> " (or with pending dequeue applied)"
         | _ -> "");
    ]

let run_trial ?(audit_every = 400) ?l2_banks spec ~crash_at =
  let sys = build_system ?l2_banks spec in
  let strategy = apply_fault spec.fault (realize_strategy spec) in
  (* Crash boundaries count persist-point *calls*, not persist-log events:
     a fault that elides the writeback must not also elide the boundary
     that would expose it.  The counter increments after the call returns,
     so an honest flush has already issued (and, under eager timing, its
     data is durable) when the crash lands at the next dispatch. *)
  let persist_points = ref 0 in
  let counted =
    {
      strategy with
      persist_store =
        (fun a ->
          strategy.Strategy.persist_store a;
          incr persist_points);
      persist_load =
        (fun a ->
          strategy.Strategy.persist_load a;
          incr persist_points);
    }
  in
  let p = Pctx.make counted spec.mode in
  let ops = gen_ops spec in
  let completed = ref 0 in
  let handle = ref None in
  let body () =
    (match spec.structure with
     | Queue -> handle := Some (`Queue (MQ.create p (S.allocator sys)))
     | Set k -> handle := Some (`Set (Ops.create_sized k ~buckets:4 p (S.allocator sys))));
    Array.iter
      (fun op ->
        (match op, !handle with
         | Insert k, Some (`Set h) -> ignore (h.Ops.insert p k)
         | Delete k, Some (`Set h) -> ignore (h.Ops.delete p k)
         | Contains k, Some (`Set h) -> ignore (h.Ops.contains p k)
         | Enqueue v, Some (`Queue q) -> MQ.enqueue q p v
         | Dequeue, Some (`Queue q) -> ignore (MQ.dequeue q p)
         | _ -> assert false);
        incr completed)
      ops
  in
  let auditor = Auditor.create sys in
  Auditor.attach auditor ~every:audit_every;
  let stop =
    match crash_at with
    | None -> fun () -> false
    | Some b -> fun () -> !persist_points >= b
  in
  let outcome = T.run_until sys ~stop [ { T.core = 0; body } ] in
  let crashed = match outcome with `Stopped _ -> true | `Completed _ -> false in
  let violations = ref [] in
  let note_invariants ~quiesced =
    List.iter
      (fun v -> violations := Invariant.violation_to_string v :: !violations)
      (Invariant.check_all ~quiesced sys)
  in
  if crashed then begin
    S.crash sys;
    Auditor.note_crash auditor;
    (* Post-crash, pre-repair: the crash must leave the machinery clean. *)
    note_invariants ~quiesced:true;
    (match !handle with
     | None -> ()  (* crashed during construction: nothing was promised *)
     | Some (`Set h) ->
       List.iter (fun v -> violations := v :: !violations)
         (verify_set h p sys ops ~completed:!completed)
     | Some (`Queue q) ->
       List.iter (fun v -> violations := v :: !violations)
         (verify_queue q p sys ops ~completed:!completed))
  end
  else begin
    (* Uncrashed run: quiesced structural + conservation + oracle checks. *)
    ignore (Auditor.observe auditor);
    note_invariants ~quiesced:true;
    match !handle with
    | Some (`Set h) ->
      let snap = h.Ops.snapshot sys in
      let model = set_model ops ~completed:!completed in
      Hashtbl.iter
        (fun k present ->
          if present <> List.mem k snap then
            violations :=
              Printf.sprintf "uncrashed run: key %d %s" k
                (if present then "missing" else "present-but-deleted")
              :: !violations)
        model
    | Some (`Queue q) ->
      let snap = MQ.to_list_unsafe q sys in
      let want = queue_model ops ~completed:!completed in
      if snap <> want then
        violations :=
          Printf.sprintf "uncrashed run: queue [%s], expected [%s]"
            (String.concat "; " (List.map string_of_int snap))
            (String.concat "; " (List.map string_of_int want))
          :: !violations
    | None -> violations := "uncrashed run never constructed the structure" :: !violations
  end;
  List.iter
    (fun v -> violations := ("audit: " ^ Invariant.violation_to_string v) :: !violations)
    (Auditor.failures auditor);
  {
    persists = !persist_points;
    crashed;
    completed = !completed;
    violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Campaign driver.                                                   *)

type failure = { spec : spec; crash_at : int option; completed : int; violations : string list }

type report = {
  spec : spec;
  persists : int;
  boundaries_tested : int;
  failure : failure option;
}

let boundaries ~persists ~budget ~seed =
  if persists <= 0 then []
  else if persists <= budget then List.init persists (fun i -> i + 1)
  else begin
    let rng = Rng.create ~seed:(seed lxor 0x5EED) in
    let picks = Hashtbl.create budget in
    Hashtbl.replace picks 1 ();
    Hashtbl.replace picks persists ();
    while Hashtbl.length picks < budget do
      Hashtbl.replace picks (1 + Rng.int rng persists) ()
    done;
    List.sort compare (Hashtbl.fold (fun b () acc -> b :: acc) picks [])
  end

let run_spec ?pool ?(budget = 20) ?l2_banks spec =
  let full = run_trial ?l2_banks spec ~crash_at:None in
  match full.violations with
  | _ :: _ ->
    {
      spec;
      persists = full.persists;
      boundaries_tested = 0;
      failure =
        Some { spec; crash_at = None; completed = full.completed; violations = full.violations };
    }
  | [] ->
    let bs = boundaries ~persists:full.persists ~budget ~seed:spec.seed in
    let trials =
      Pool.run_chunked_opt ~chunk:1 pool
        (fun b -> b, run_trial ?l2_banks spec ~crash_at:(Some b))
        bs
    in
    let failure =
      List.find_map
        (fun (b, (t : trial)) ->
          match t.violations with
          | [] -> None
          | v -> Some { spec; crash_at = Some b; completed = t.completed; violations = v })
        trials
    in
    { spec; persists = full.persists; boundaries_tested = List.length bs; failure }

let run_campaign ?pool ?budget ?l2_banks specs =
  (* Parallelism lives inside each spec (its crash boundaries fan out over
     the pool); specs run in sequence so reports stay in submission order
     with bounded memory. *)
  List.map (fun spec -> run_spec ?pool ?budget ?l2_banks spec) specs

(* ------------------------------------------------------------------ *)
(* Shrinking.                                                         *)

(* Earliest failing boundary of [spec], scanning from 1 (capped). *)
let first_failing spec ~cap =
  let full = run_trial spec ~crash_at:None in
  let limit = min full.persists cap in
  let rec scan b =
    if b > limit then None
    else begin
      let t = run_trial spec ~crash_at:(Some b) in
      if t.violations <> [] then
        Some { spec; crash_at = Some b; completed = t.completed; violations = t.violations }
      else scan (b + 1)
    end
  in
  scan 1

let shrink fail =
  match fail.crash_at with
  | None -> fail  (* an uncrashed-run failure has no schedule to minimise *)
  | Some _ ->
    let cap = 64 in
    (* Ops after the in-flight one never ran; drop them outright. *)
    let start_ops = min fail.spec.n_ops (fail.completed + 1) in
    let current = ref { fail with spec = { fail.spec with n_ops = start_ops } } in
    (match first_failing !current.spec ~cap with
     | Some f -> current := f
     | None -> current := fail);
    let continue_ = ref true in
    while !continue_ do
      let n = !current.spec.n_ops in
      let candidates = List.filter (fun n' -> n' >= 1 && n' < n) [ n / 2; n - 1 ] in
      match
        List.find_map
          (fun n' -> first_failing { !current.spec with n_ops = n' } ~cap)
          candidates
      with
      | Some f -> current := f
      | None -> continue_ := false
    done;
    !current

(* ------------------------------------------------------------------ *)
(* Reproducer files.                                                  *)

let write_reproducer path (fail : failure) =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  Printf.fprintf oc "# skipit_sim audit reproducer (replay: skipit_sim audit --repro %s)\n" path;
  Printf.fprintf oc "structure=%s\n" (structure_name fail.spec.structure);
  Printf.fprintf oc "mode=%s\n" (Pctx.mode_name fail.spec.mode);
  Printf.fprintf oc "strategy=%s\n" (strategy_name fail.spec.strategy);
  Printf.fprintf oc "fault=%s\n" (fault_name fail.spec.fault);
  Printf.fprintf oc "seed=%d\n" fail.spec.seed;
  Printf.fprintf oc "ops=%d\n" fail.spec.n_ops;
  Printf.fprintf oc "crash_at=%d\n" (match fail.crash_at with Some b -> b | None -> 0);
  List.iter (fun v -> Printf.fprintf oc "# violation: %s\n" v) fail.violations

let read_reproducer path =
  try
    let ic = open_in path in
    let fields = Hashtbl.create 8 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then
           match String.index_opt line '=' with
           | Some i ->
             Hashtbl.replace fields
               (String.sub line 0 i)
               (String.sub line (i + 1) (String.length line - i - 1))
           | None -> ()
       done
     with End_of_file -> close_in ic);
    let get k = match Hashtbl.find_opt fields k with Some v -> Ok v | None -> Error ("missing field " ^ k) in
    let ( let* ) = Result.bind in
    let* structure =
      let* s = get "structure" in
      Option.to_result ~none:("unknown structure " ^ s) (structure_of_name s)
    in
    let* mode =
      let* s = get "mode" in
      Option.to_result ~none:("unknown mode " ^ s)
        (List.find_opt (fun m -> Pctx.mode_name m = s) Pctx.all_modes)
    in
    let* strategy =
      let* s = get "strategy" in
      Option.to_result ~none:("unknown strategy " ^ s) (strategy_of_name s)
    in
    let* fault =
      let* s = get "fault" in
      Option.to_result ~none:("unknown fault " ^ s) (fault_of_name s)
    in
    let int_field k =
      let* s = get k in
      Option.to_result ~none:("bad integer for " ^ k) (int_of_string_opt s)
    in
    let* seed = int_field "seed" in
    let* n_ops = int_field "ops" in
    let* crash_at = int_field "crash_at" in
    Ok
      {
        spec = { structure; mode; strategy; fault; seed; n_ops };
        crash_at = (if crash_at > 0 then Some crash_at else None);
        completed = 0;
        violations = [];
      }
  with Sys_error e -> Error e

let pp_report ppf r =
  match r.failure with
  | None ->
    Format.fprintf ppf "PASS %-50s %3d persists, %2d boundaries" (spec_name r.spec)
      r.persists r.boundaries_tested
  | Some f ->
    Format.fprintf ppf "FAIL %-50s crash_at=%s (%d violation(s)):" (spec_name r.spec)
      (match f.crash_at with Some b -> string_of_int b | None -> "-")
      (List.length f.violations);
    List.iter (fun v -> Format.fprintf ppf "@,       %s" v) f.violations
