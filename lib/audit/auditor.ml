module S = Skipit_core.System
module Params = Skipit_cache.Params
module Dcache = Skipit_l1.Dcache
module L2 = Skipit_l2.Inclusive_cache
module Directory = Skipit_l2.Directory
module Memside = Skipit_l2.Memside_cache
module PL = Skipit_mem.Persist_log

type t = {
  sys : S.t;
  (* line base -> persist-event count for that line at the last observation
     that saw it dirty.  A line leaving the set must either have persisted
     since (count grew) or match NVMM word-for-word (discarded). *)
  tracked : (int, int) Hashtbl.t;
  mutable rev_failures : Invariant.violation list;
}

let create sys = { sys; tracked = Hashtbl.create 64; rev_failures = [] }

let persist_count t addr = List.length (PL.persists_of (S.persist_log t.sys) ~addr)

let dirty_lines t =
  let acc = Hashtbl.create 64 in
  let note addr = Hashtbl.replace acc addr () in
  for core = 0 to S.n_cores t.sys - 1 do
    let dc = S.dcache t.sys core in
    List.iter
      (fun (addr, _) ->
        match Dcache.line_state dc addr with
        | Some line when line.Dcache.dirty -> note addr
        | Some _ | None -> ())
      (Dcache.held_lines dc)
  done;
  L2.iter_lines (S.l2 t.sys) (fun addr dir -> if dir.Directory.dirty then note addr);
  (match S.l3 t.sys with
   | Some l3 -> Memside.iter_lines l3 (fun addr ~dirty ~data:_ -> if dirty then note addr)
   | None -> ());
  acc

let matches_nvmm t addr =
  let words = Params.line_bytes (S.params t.sys) / 8 in
  let rec scan w =
    w >= words
    ||
    let a = addr + (w * 8) in
    S.peek_word t.sys a = S.persisted_word t.sys a && scan (w + 1)
  in
  scan 0

let conservation_step t =
  let now_dirty = dirty_lines t in
  let out = ref [] in
  (* Lines that left the dirty set: demand a persist or an NVMM match. *)
  Hashtbl.iter
    (fun addr seen_count ->
      if not (Hashtbl.mem now_dirty addr) then begin
        if persist_count t addr <= seen_count && not (matches_nvmm t addr) then
          out :=
            {
              Invariant.rule = "dirty-conservation";
              addr = Some addr;
              detail =
                Printf.sprintf
                  "line was dirty, is now clean everywhere, has no new persist event and \
                   differs from NVMM";
            }
            :: !out;
        Hashtbl.remove t.tracked addr
      end)
    (Hashtbl.copy t.tracked);
  (* (Re)track everything currently dirty at the current persist count. *)
  Hashtbl.iter (fun addr () -> Hashtbl.replace t.tracked addr (persist_count t addr)) now_dirty;
  List.rev !out

let observe t =
  let fresh = Invariant.check_all t.sys @ conservation_step t in
  t.rev_failures <- List.rev_append fresh t.rev_failures;
  fresh

let attach t ~every = S.set_audit_hook t.sys ~every (fun _ -> ignore (observe t))
let detach t = S.clear_audit_hook t.sys
let note_crash t = Hashtbl.reset t.tracked
let failures t = List.rev t.rev_failures
