(** Systematic crash-injection campaigns over the persistent data
    structures (§7.4 meets §4).

    A campaign runs every structure × persistence mode × strategy spec,
    crashing the system at persist-point boundaries (each persist-point
    call the program makes is a boundary — counted {e after} the call, so
    an honest flush has issued when the crash lands, while a faulted one
    that elided the writeback keeps its boundary and loses its data; the
    run is stopped at instruction granularity), then
    runs the structure's [repair] and verifies {e durable linearizability}
    against an oracle model replaying the operations that completed before
    the crash: every completed, fenced operation must be reflected in the
    post-crash snapshot, the single in-flight operation may land either
    way, and no phantom element may appear.  Structural invariants
    ({!Invariant}, {!Auditor}) are audited during the run and after the
    crash.

    Failing crash points are shrunk to a minimal (op count, boundary) pair
    and written as a one-command reproducer file. *)

module Pool = Skipit_par.Pool
module Pctx = Skipit_persist.Pctx

type structure = Queue | Set of Skipit_pds.Set_ops.kind

val all_structures : structure list
val structure_name : structure -> string
val structure_of_name : string -> structure option

type strategy_spec = Plain | Skipit | Flit_adjacent | Link_and_persist

val all_strategies : strategy_spec list
val strategy_name : strategy_spec -> string
val strategy_of_name : string -> strategy_spec option

(** Seeded faults for validating the campaign itself: a test-only strategy
    wrapper that elides required writebacks.  The campaign must catch the
    resulting durability violation and shrink it. *)
type fault = No_fault | Drop_nth_persist of int | Drop_all_persists

val fault_name : fault -> string
val fault_of_name : string -> fault option

type spec = {
  structure : structure;
  mode : Pctx.mode;
  strategy : strategy_spec;
  fault : fault;
  seed : int;
  n_ops : int;
}

val spec_name : spec -> string

val compatible : spec -> bool
(** Link-and-Persist is excluded for the BST (word-bit clash, §7.4). *)

val default_specs : seed:int -> n_ops:int -> fault:fault -> spec list
(** All 5 structures × 3 modes × (Plain, Skipit), compatibility-filtered. *)

type trial = {
  persists : int;  (** Persist-point calls made when the run ended. *)
  crashed : bool;  (** The stop predicate fired (vs. ran to completion). *)
  completed : int;  (** Operations completed before the end. *)
  violations : string list;  (** Durability oracle + invariant violations. *)
}

val run_trial : ?audit_every:int -> ?l2_banks:int -> spec -> crash_at:int option -> trial
(** One simulation: build a fresh system, run the generated op schedule,
    optionally crash at persist-point boundary [crash_at] (stop once that
    many persist-point calls have returned), repair, audit, verify.
    [audit_every] (default 400) attaches the periodic {!Auditor};
    [l2_banks] (default 1) runs the trial on a banked NUCA L2, exercising
    the crash/repair path across every bank. *)

type failure = { spec : spec; crash_at : int option; completed : int; violations : string list }

type report = {
  spec : spec;
  persists : int;  (** Total persist-point calls of the uncrashed run. *)
  boundaries_tested : int;
  failure : failure option;  (** First failing crash point, if any. *)
}

val run_spec : ?pool:Pool.t -> ?budget:int -> ?l2_banks:int -> spec -> report
(** Test one spec: an uncrashed run first (oracle + invariants at quiesce),
    then up to [budget] (default 20) crash boundaries — enumerated
    exhaustively when the run has that few persists, otherwise the first,
    the last and RNG-sampled interior boundaries.  Crash trials fan out
    over [pool]. *)

val run_campaign : ?pool:Pool.t -> ?budget:int -> ?l2_banks:int -> spec list -> report list

val shrink : failure -> failure
(** Minimise a failing crash point: truncate the schedule to the in-flight
    operation, greedily shrink the op count while a failing boundary
    survives, then take the earliest failing boundary. *)

val write_reproducer : string -> failure -> unit
val read_reproducer : string -> (failure, string) result
(** Round-trip a failure as a small key=value file; replay the spec with
    {!run_trial} [~crash_at:failure.crash_at]. *)

val pp_report : Format.formatter -> report -> unit
