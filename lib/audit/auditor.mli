(** Stateful hierarchy auditor: structural checks plus {e dirty-line
    conservation} across observations.

    Conservation is the temporal half of the §4 argument: once a line has
    been observed dirty somewhere in the hierarchy, it may only stop being
    dirty by persisting (a new {!Skipit_mem.Persist_log} event) or by being
    discarded with its architectural value already matching the persistence
    domain (CBO.INVAL forfeits data by definition).  A line that silently
    turns clean while its value still differs from NVMM is exactly the
    elided-writeback bug class FliT exists to catch.

    An auditor can be invoked directly ({!observe}) or attached as the
    periodic {!Skipit_core.System} audit hook ({!attach}) — the hook is
    untimed, so golden cycle counts are identical with auditing on or
    off. *)

type t

val create : Skipit_core.System.t -> t

val observe : t -> Invariant.violation list
(** Run {!Invariant.check_all} plus the conservation step against the
    tracked dirty-line set, record any violations, and return the new ones
    from this observation. *)

val attach : t -> every:int -> unit
(** Install {!observe} as the system's periodic audit hook, firing every
    [every] simulated cycles.  Violations accumulate in {!failures}. *)

val detach : t -> unit

val note_crash : t -> unit
(** Tell the auditor a power failure happened: dirty lines legitimately
    vanished, so the tracked set is discarded (the durability oracle, not
    conservation, judges crash-induced loss). *)

val failures : t -> Invariant.violation list
(** All violations recorded so far, oldest first. *)
