module S = Skipit_core.System
module Params = Skipit_cache.Params
module Dcache = Skipit_l1.Dcache
module Flush_unit = Skipit_l1.Flush_unit
module L2 = Skipit_l2.Inclusive_cache
module Directory = Skipit_l2.Directory
module Memside = Skipit_l2.Memside_cache
module Dram = Skipit_mem.Dram
module PL = Skipit_mem.Persist_log
module Resource = Skipit_sim.Resource
module Perm = Skipit_tilelink.Perm

type violation = { rule : string; addr : int option; detail : string }

let pp_violation ppf v =
  match v.addr with
  | Some a -> Format.fprintf ppf "[%s] line %#x: %s" v.rule a v.detail
  | None -> Format.fprintf ppf "[%s] %s" v.rule v.detail

let violation_to_string v = Format.asprintf "%a" pp_violation v

let make ~rule ?addr detail = { rule; addr; detail }

(* ------------------------------------------------------------------ *)

type ctx = {
  sys : S.t;
  words : int;  (* words per line *)
  mutable out : violation list;  (* collected in reverse *)
}

let fail ctx ?addr rule fmt =
  Printf.ksprintf (fun detail -> ctx.out <- { rule; addr; detail } :: ctx.out) fmt

let words_per_line sys = Params.line_bytes (S.params sys) / 8

(* Word-granular compare of a cached line against a reference read
   function; returns the first differing word offset. *)
let first_diff ctx ~base ~data read_ref =
  let rec scan w =
    if w >= ctx.words then None
    else begin
      let reference = read_ref (base + (w * 8)) in
      if data.(w) <> reference then Some (w, data.(w), reference) else scan (w + 1)
    end
  in
  scan 0

(* Every L1 copy present in the L2 directory with matching permissions
   (§3.4 inclusion), at most one Trunk/dirty copy, skip-bit safety and the
   durability strengthening, and clean-copy value agreement with the L2. *)
let check_l1_lines ctx =
  let sys = ctx.sys in
  let l2 = S.l2 sys in
  let n = S.n_cores sys in
  for core = 0 to n - 1 do
    let dc = S.dcache sys core in
    List.iter
      (fun (addr, perm) ->
        (* Inclusion + directory agreement. *)
        if not (L2.present l2 addr) then
          fail ctx ~addr "inclusion" "held by core %d (%s) but absent from L2" core
            (Perm.to_string perm)
        else begin
          let dperm = L2.owner_perm l2 ~core ~addr in
          if not (Perm.equal dperm perm) then
            fail ctx ~addr "inclusion" "core %d holds %s but directory says %s" core
              (Perm.to_string perm) (Perm.to_string dperm)
        end;
        match Dcache.line_state dc addr with
        | None -> ()
        | Some line ->
          (* Single writer / dirty requires Trunk. *)
          if Perm.equal line.Dcache.perm Perm.Trunk then
            for other = 0 to n - 1 do
              if other <> core && Dcache.line_state (S.dcache sys other) addr <> None then
                fail ctx ~addr "single-writer" "Trunk on core %d but core %d holds a copy"
                  core other
            done;
          if line.Dcache.dirty && not (Perm.equal line.Dcache.perm Perm.Trunk) then
            fail ctx ~addr "single-writer" "dirty without Trunk on core %d" core;
          if not line.Dcache.dirty then begin
            if line.Dcache.skip then begin
              (* §6.2 safety: valid ∧ ¬dirty ∧ skip ⇒ L2 copy not dirty. *)
              if L2.dir_dirty l2 addr then
                fail ctx ~addr "skip-safety" "skip set on core %d but L2 copy is dirty" core;
              (* Strengthening: the skip bit claims "already persisted", so
                 the clean copy must equal the persistence domain. *)
              match first_diff ctx ~base:addr ~data:line.Dcache.data (S.persisted_word sys) with
              | Some (w, got, want) ->
                fail ctx ~addr "skip-durability"
                  "skip set on core %d but word %d differs from NVMM (%#x vs %#x)" core w
                  got want
              | None -> ()
            end;
            (* Clean copies agree with the L2 directory data. *)
            match
              first_diff ctx ~base:addr ~data:line.Dcache.data (L2.peek_word l2)
            with
            | Some (w, got, want) ->
              fail ctx ~addr "value-coherence"
                "clean L1 copy on core %d: word %d is %#x but L2 has %#x" core w got want
            | None -> ()
          end)
      (Dcache.held_lines dc)
  done

(* A clean L2 line agrees with the level below it; a clean L3 line agrees
   with DRAM.  Catches an elided-but-needed writeback the moment metadata
   claims cleanliness. *)
let check_lower_levels ctx =
  let sys = ctx.sys in
  let l2 = S.l2 sys in
  let backend = L2.backend l2 in
  L2.iter_lines l2 (fun addr dir ->
    if not dir.Directory.dirty then
      match
        first_diff ctx ~base:addr ~data:dir.Directory.data
          (Skipit_l2.Backend.peek_word backend)
      with
      | Some (w, got, want) ->
        fail ctx ~addr "value-coherence" "clean L2 line: word %d is %#x but below has %#x" w
          got want
      | None -> ());
  match S.l3 sys with
  | None -> ()
  | Some l3 ->
    Memside.iter_lines l3 (fun addr ~dirty ~data ->
      if not dirty then
        match first_diff ctx ~base:addr ~data (S.persisted_word sys) with
        | Some (w, got, want) ->
          fail ctx ~addr "value-coherence" "clean L3 line: word %d is %#x but NVMM has %#x"
            w got want
        | None -> ())

(* §4 observability: the log is an ordered record — sequence numbers dense
   and ascending from zero, times non-negative. *)
let check_persist_log ctx =
  let log = S.persist_log ctx.sys in
  let expected = ref 0 in
  List.iter
    (fun (e : PL.event) ->
      if e.PL.seq <> !expected then
        fail ctx ~addr:e.PL.addr "persist-log" "sequence %d where %d expected" e.PL.seq
          !expected;
      if e.PL.time < 0 then
        fail ctx ~addr:e.PL.addr "persist-log" "negative persist time %d (seq %d)" e.PL.time
          e.PL.seq;
      expected := e.PL.seq + 1)
    (PL.events log);
  if PL.length log <> !expected then
    fail ctx "persist-log" "length %d but %d events enumerated" (PL.length log) !expected

(* Occupancy conservation at quiesce: past every resource's busy horizon no
   FSHR pendings, flush-queue admissions or ListBuffer admissions remain.
   This is what catches units leaked across a crash (satellite: crash must
   reset Resource occupancy and flush-queue state cleanly). *)
let check_conservation ctx =
  let sys = ctx.sys in
  let l2 = S.l2 sys in
  let horizon = ref (S.max_clock sys) in
  let widen r = horizon := max !horizon (Resource.all_free_at r) in
  for core = 0 to S.n_cores sys - 1 do
    let dc = S.dcache sys core in
    widen (Dcache.mshrs dc);
    widen (Dcache.wbu dc);
    widen (Flush_unit.fshrs (Dcache.flush_unit dc))
  done;
  Array.iter widen (L2.mshr_files l2);
  widen (Dram.channels (S.dram sys));
  let h = !horizon in
  for core = 0 to S.n_cores sys - 1 do
    let fu = Dcache.flush_unit (S.dcache sys core) in
    let pending = Flush_unit.outstanding fu ~now:h in
    if pending <> 0 then
      fail ctx "conservation" "core %d: %d FSHR pending(s) survive the busy horizon (%d)"
        core pending h;
    let q = Flush_unit.queue_occupants fu in
    if q <> 0 then
      fail ctx "conservation" "core %d: %d flush-queue admission(s) never released" core q
  done;
  let lb = L2.list_buffer_occupants l2 in
  if lb <> 0 then fail ctx "conservation" "L2 ListBuffer: %d admission(s) never released" lb

let check_all ?(quiesced = false) sys =
  let ctx = { sys; words = words_per_line sys; out = [] } in
  check_l1_lines ctx;
  check_lower_levels ctx;
  check_persist_log ctx;
  if quiesced then check_conservation ctx;
  List.rev ctx.out
