(** Cross-layer structural invariants of the simulated hierarchy.

    The golden traces pin cycle counts; this module pins {e meaning}.  Every
    check encodes a property the paper's argument depends on:

    - {b Inclusion} (§3.4): every L1-resident line is present in the L2 with
      directory permissions that match the L1's view.
    - {b Single writer}: a Trunk copy excludes all other copies; a dirty
      line requires Trunk.
    - {b Skip-bit safety} (§6.2): a valid, clean L1 line with its skip bit
      set implies the L2 copy is not dirty — dropping its writeback cannot
      lose data.  Strengthened here to a value check: such a line's data
      must already equal the persistence domain's.
    - {b Value coherence}: a clean L1 line agrees word-for-word with the L2
      directory copy; a clean L2 line agrees with the level below.  This is
      the check that catches an elided-but-needed writeback the moment the
      metadata claims cleanliness.
    - {b Persist-log well-formedness} (§4): sequence numbers are dense and
      ascending, times non-negative.
    - {b Occupancy conservation} (with [~quiesced:true]): once every
      resource's busy horizon has passed, no FSHR pendings, flush-queue
      admissions, booked entries or ListBuffer admissions remain — the
      check that catches units leaked across {!Skipit_core.System.crash}.

    All checks are untimed observations; running them never perturbs the
    simulation. *)

type violation = {
  rule : string;  (** Stable identifier, e.g. ["inclusion"], ["skip-safety"]. *)
  addr : int option;  (** Offending line base address, when line-specific. *)
  detail : string;  (** Human-readable description. *)
}

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

val make : rule:string -> ?addr:int -> string -> violation
(** Construct a violation for checks that live outside this module (the
    fleet's conservation and durability checks report through the same
    record so campaign-style tooling renders them uniformly). *)

val check_all : ?quiesced:bool -> Skipit_core.System.t -> violation list
(** Run every structural check; [~quiesced:true] (default [false]) adds the
    occupancy-conservation checks that are only meaningful once no
    instruction stream is mid-flight. *)
