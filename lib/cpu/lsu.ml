module Dcache = Skipit_l1.Dcache
module Flush_unit = Skipit_l1.Flush_unit
module Params = Skipit_cache.Params
module Attr = Skipit_obs.Attribution
open Skipit_tilelink

type t = {
  dcache : Dcache.t;
  stq : Store_queue.t;
  async_stores : bool;
  store_commit_cost : int;
  mutable clock : int;
  mutable instructions : int;
}

let create dcache =
  let p = Dcache.params dcache in
  {
    dcache;
    stq = Store_queue.create ~entries:p.Params.stq_entries;
    async_stores = p.Params.async_stores;
    store_commit_cost = p.Params.l1_store_commit;
    clock = 0;
    instructions = 0;
  }
let dcache t = t.dcache
let core t = Dcache.core t.dcache
let clock t = t.clock

let advance_to t cycle = if cycle > t.clock then t.clock <- cycle

let exec t instr =
  t.instructions <- t.instructions + 1;
  match instr with
  | Instr.Load { addr } ->
    let value = Dcache.load_word t.dcache ~addr ~now:t.clock in
    t.clock <- Dcache.done_at t.dcache;
    value
  | Instr.Store { addr; value } ->
    if t.async_stores then begin
      (* §3.2: the store retires once the STQ holds it; it drains in the
         background and only fences (or a full STQ) expose its latency —
         so the drain's future-dated hierarchy marks are shielded from the
         attribution cursor and the visible STQ-commit cost is charged to
         the L1 stage instead. *)
      let saved = Attr.suspend () in
      let drain_at = Dcache.store t.dcache ~addr ~value ~now:t.clock in
      Attr.restore saved;
      let commit = Store_queue.insert t.stq ~now:t.clock ~drain_at in
      t.clock <- commit + t.store_commit_cost;
      Attr.activate ~core:(Dcache.core t.dcache);
      Attr.mark Attr.L1_hit ~at:t.clock
    end
    else t.clock <- Dcache.store t.dcache ~addr ~value ~now:t.clock;
    0
  | Instr.Cas { addr; expected; desired } ->
    let ok = Dcache.cas_word t.dcache ~addr ~expected ~desired ~now:t.clock in
    t.clock <- Dcache.done_at t.dcache;
    if ok then 1 else 0
  | Instr.Cbo_clean { addr } ->
    let r = Dcache.cbo t.dcache ~addr ~kind:Message.Wb_clean ~now:t.clock in
    t.clock <- r.Dcache.commit_at;
    0
  | Instr.Cbo_flush { addr } ->
    let r = Dcache.cbo t.dcache ~addr ~kind:Message.Wb_flush ~now:t.clock in
    t.clock <- r.Dcache.commit_at;
    0
  | Instr.Cbo_inval { addr } ->
    t.clock <- Dcache.cbo_inval t.dcache ~addr ~now:t.clock;
    0
  | Instr.Cbo_zero { addr } ->
    t.clock <- Dcache.cbo_zero t.dcache ~addr ~now:t.clock;
    0
  | Instr.Fence ->
    let flushes_done = Dcache.fence t.dcache ~now:t.clock in
    let stores_done = Store_queue.drained_at t.stq ~now:t.clock in
    t.clock <- max flushes_done stores_done;
    Attr.mark Attr.Fence ~at:t.clock;
    0
  | Instr.Delay n ->
    if n < 0 then invalid_arg "Lsu.exec: negative delay";
    t.clock <- t.clock + n;
    0

let instructions t = t.instructions

let pending_writebacks t =
  Flush_unit.outstanding (Dcache.flush_unit t.dcache) ~now:t.clock

let pending_stores t = Store_queue.occupancy t.stq ~now:t.clock
