(** The LLC's memory-side port.

    The paper's platform has DRAM directly behind the L2; §7.4 hypothesises
    that a deeper hierarchy (an L3/L4) would increase writeback latencies
    and thus Skip It's savings.  To test that, the inclusive cache talks to
    a {!Skipit_tilelink.Port.Memside} agent port that is either DRAM itself
    ({!of_dram}) or a {!Memside_cache} in front of it
    ({!Memside_cache.backend}).  The port counts beats, stalls and
    occupancy-wait cycles at the boundary; the operation semantics the L2
    relies on are documented in {!Skipit_tilelink.Port.Memside.ops}. *)

type t = Skipit_tilelink.Port.Memside.t

val create :
  name:string ->
  beats_per_line:int ->
  ?max_inflight:int ->
  ?burst_beat_cost:int ->
  (Skipit_sim.Stats.Registry.t -> Skipit_tilelink.Port.Memside.ops) ->
  t

val name : t -> string
val stats : t -> Skipit_sim.Stats.Registry.t

val read_line : t -> addr:int -> now:int -> int array * int * bool
(** [(data, available_at, dirty_below)]. *)

val write_line : t -> addr:int -> data:int array -> now:int -> int
val persist_line : t -> addr:int -> data:int array -> now:int -> int
val persist_if_dirty : t -> addr:int -> now:int -> int
val discard_line : t -> addr:int -> unit
val peek_word : t -> int -> int
val crash : t -> unit

val of_dram :
  ?name:string ->
  beats_per_line:int ->
  ?max_inflight:int ->
  ?burst_beat_cost:int ->
  Skipit_mem.Dram.t ->
  t
(** DRAM is the persistence domain itself: [write_line] = [persist_line],
    [persist_if_dirty] and [discard_line] are no-ops, nothing is volatile.
    Channel-queueing inside the DRAM controller is reported as the port's
    stall/wait counters.  [max_inflight] / [burst_beat_cost] configure the
    AXI-style outstanding-transaction/burst model of
    {!Skipit_tilelink.Port.Memside.create} (defaults timing-neutral). *)
