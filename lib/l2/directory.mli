(** Per-line L2 directory state (§3.4).

    The SiFive inclusive cache keeps a full map of directory bits with each
    line's metadata: which L1 clients hold the line and at what permission,
    plus the line's dirty bit.  This module is the pure bookkeeping; the
    timed agent lives in {!Inclusive_cache}. *)

open Skipit_tilelink

type t = {
  mutable dirty : bool;  (** L2 copy differs from DRAM. *)
  data : int array;  (** The BankedStore words for this line. *)
  owners : Perm.t array;  (** Per-client permission (full map). *)
}

val create : n_cores:int -> data:int array -> dirty:bool -> t

val owner_perm : t -> int -> Perm.t
val set_owner : t -> int -> Perm.t -> unit

val trunk_owner : t -> int option
(** The unique client holding Trunk, if any. *)

val owners_above : t -> Perm.t -> int list
(** Clients holding strictly more than the given level. *)

val owners_into : t -> Perm.t -> exclude:int -> int array -> int
(** Allocation-free {!owners_above} for the probe hot paths: write the
    owning cores (ascending order, skipping [exclude]; pass [-1] to skip
    none) into the caller's reusable buffer and return the count.  The
    buffer must hold at least [n_cores] entries. *)

val has_owners : t -> bool

val check_invariants : t -> (unit, string) result
(** Single-Trunk and Trunk-excludes-Branch coherence invariants. *)
