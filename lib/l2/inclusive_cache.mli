(** The SiFive-style inclusive last-level cache (§3.4, §5.5, §6.1).

    Acts as the manager for all L1 clients and as a client of DRAM.  Holds a
    full-map directory per line, enforces inclusion (an L2 eviction probes
    and revokes every L1 copy), merges dirty data handed back by probes, and
    implements the paper's extensions:

    - {b RootRelease handling} (§5.5): on [RootReleaseFlush] it recursively
      probes every other owner and revokes permissions; on
      [RootReleaseClean] it probes only a foreign Trunk owner.  Dirty data —
      whether carried by the request, already present, or extracted by the
      probes — is then released to DRAM.  If the line is dirty nowhere, the
      DRAM write is {e trivially skipped} via the L2 dirty bit (toggle
      [Params.l2_trivial_skip]).  Completion is acknowledged with
      [RootReleaseAck].
    - {b GrantDataDirty} (§6.1): Acquire responses report whether the L2
      block is dirty so the L1 can maintain its skip bit.

    Each L1 client is attached through a typed {!Skipit_tilelink.Port}: the
    system builder calls {!connect_client} once per core, which binds this
    cache as the port's manager agent and records the port so B-channel
    probes for that core travel back through it.  This keeps the library
    independent of the L1 implementation while every message crosses a
    counted boundary.

    Timing: all entry points take [now] = the cycle the message leaves the
    client, and return completion times that include link traversal, beat
    counts, per-bank MSHR/ListBuffer queueing, tag and data-slice occupancy,
    probe round trips and DRAM latency. *)

open Skipit_tilelink
open Skipit_cache

type probe_result = Port.probe_result = {
  dirty_data : int array option;
      (** Data handed back on channel C iff the client held the line dirty. *)
  done_at : int;  (** Cycle the ProbeAck arrives back at the L2. *)
}
(** Re-export of {!Skipit_tilelink.Port.probe_result} so existing users can
    keep referring to the fields through this module. *)

type grant = Port.grant = {
  perm : Perm.t;  (** Permission granted (always the requested level). *)
  data : int array;  (** Line contents. *)
  l2_dirty : bool;
      (** [true] ⇒ the response is {e GrantDataDirty}: the block is not
          persisted and the L1 must clear its skip bit (§6.1). *)
  done_at : int;  (** Cycle the Grant(Data) finishes arriving at the L1. *)
}
(** Re-export of {!Skipit_tilelink.Port.grant}. *)

type t

val create : Params.t -> backend:Backend.t -> t
(** [backend] is DRAM itself ({!Backend.of_dram}) or a memory-side L3
    ({!Memside_cache.backend}).  [Params.l2_banks] splits the cache into
    that many address-interleaved NUCA banks (line address mod banks),
    each with its own MSHR file, ListBuffer, directory store and
    BankedStore slices; 1 (the default) is bit-identical to the
    monolithic cache. *)

val connect_client : t -> core:int -> Port.t -> unit
(** Bind this cache as the manager agent of the port and remember it as the
    probe path for [core].  Must be called exactly once per core by the
    system builder before any traffic; raises [Invalid_argument] on a
    duplicate or out-of-range core. *)

val client_port : t -> core:int -> Port.t option
(** The port registered by {!connect_client}, if any. *)

val backend : t -> Backend.t
(** The memory-side port this cache was created over. *)

val acquire : t -> core:int -> addr:int -> grow:Perm.grow -> now:int -> grant
(** Channel-A AcquireBlock.  May recursively probe other owners and/or evict
    an L2 victim (probing its owners and writing dirty data back to DRAM). *)

val release : t -> core:int -> addr:int -> shrink:Perm.shrink -> data:int array option -> now:int -> int
(** Channel-C voluntary Release(Data) from an L1 writeback unit; returns the
    ReleaseAck arrival time. *)

val root_release :
  t -> core:int -> addr:int -> kind:Message.wb_kind -> data:int array option -> now:int -> int
(** The paper's new channel-C message (§5.1/§5.5); returns the
    RootReleaseAck arrival time, by which the line is persisted. *)

val root_inval : t -> core:int -> addr:int -> now:int -> int
(** CBO.INVAL (CMO spec): revoke and {e discard} every cached copy of the
    line, including the L2's own, without writing anything back.  Returns
    the acknowledgement time. *)

val dir_dirty : t -> int -> bool
(** Is the line present-and-dirty in L2?  (The ground truth against which the
    skip-bit invariant of §6.2 is checked.) *)

val present : t -> int -> bool
val owner_perm : t -> core:int -> addr:int -> Perm.t

val peek_word : t -> int -> int
(** Functional read: L2 copy if present, else DRAM. *)

val check_inclusion : t -> l1_lines:(int -> (int * Perm.t) list) -> (unit, string) result
(** Verify that every line any L1 claims to hold is present in L2 with
    directory bits matching ([l1_lines core] lists that L1's
    (line address, permission) pairs). *)

val iter_lines : t -> (int -> Directory.t -> unit) -> unit
(** [iter_lines t f] calls [f line_addr dir] for every resident line — the
    audit layer's window onto directory state (dirty bits, owner perms,
    cached data). *)

val n_banks : t -> int

val mshr_files : t -> Skipit_sim.Resource.t array
(** Per-bank MSHR occupancy trackers (audit/conservation checks);
    length {!n_banks}. *)

val list_buffer_occupants : t -> int
(** ListBuffer requests admitted but not yet dequeued into an MSHR. *)

val crash : t -> unit
(** Drop all (volatile) contents. *)

val stats : t -> Skipit_sim.Stats.Registry.t
(** Aggregate counters across banks: ["hits"], ["misses"], ["probes"],
    ["evictions"], ["dram_writebacks"], ["trivial_skips"],
    ["root_releases"], ["grants_dirty"], ["grants_clean"]. *)

val bank_stats : t -> Skipit_sim.Stats.Registry.t array
(** Per-bank shadows of the same counters, populated only when
    [l2_banks > 1] (exported by the system as [l2.bank.<i>.*]). *)
