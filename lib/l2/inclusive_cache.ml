open Skipit_sim
open Skipit_tilelink
open Skipit_cache
module Trace = Skipit_obs.Trace
module Attr = Skipit_obs.Attribution
module Metrics = Skipit_obs.Metrics

type probe_result = Port.probe_result = {
  dirty_data : int array option;
  done_at : int;
}

type grant = Port.grant = {
  perm : Perm.t;
  data : int array;
  l2_dirty : bool;
  done_at : int;
}

(* One NUCA bank: a full slice of the inclusive LLC's control and data
   structures.  Lines are interleaved across banks by an XOR-fold of the
   line number (see [fold] below), and each bank's tag store runs on
   {e compressed} addresses — the bank bits are folded out of the line
   number — so that
   per-bank set indexing and tags partition the monolithic store exactly:
   at [l2_banks = 1] every structure, name and timing is bit-identical to
   the unbanked cache. *)
type bank = {
  b_idx : int;
  store : Directory.t Store.t;  (* compressed-address tag store *)
  mshrs : Resource.t;
  (* The ListBuffer (§3.4): channel-C requests that cannot get an MSHR wait
     here; when it is full the sender stalls until the oldest waiter is
     scheduled. *)
  list_buffer : Admission.t;
  slices : Resource.Banked.t;  (* BankedStore data slices *)
  b_stats : Stats.Registry.t;  (* per-bank counters, exported when banked *)
  mshr_comp : string;  (* trace/metrics component for this bank's MSHRs *)
}

type t = {
  p : Params.t;
  n_banks : int;
  bank_shift : int;  (* log2 n_banks *)
  slice_shift : int;  (* log2 l2_slices, for the banked slice hash *)
  slice_mask : int;  (* l2_slices - 1 when banked and pow2, else 0 = no hash *)
  lb : int;  (* line bytes *)
  (* First attribution mark of every L2 transaction: the wait to get into
     the owning bank's MSHR/ListBuffer is a bank conflict when banked. *)
  acq_stage : Attr.stage;
  banks : bank array;
  backend : Backend.t;
  (* One manager port per client core; B-channel probes route through the
     port to whatever client agent is connected on the other side. *)
  ports : Port.t option array;
  (* Reusable scratch for [Directory.owners_into]: the probe fan-out paths
     fill this instead of allocating an owner list per request.  Safe to
     share because a system's requests are processed one at a time and
     probe handling never re-enters the directory walk. *)
  probe_buf : int array;
  stats : Stats.Registry.t;  (* aggregate across banks *)
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create p ~backend =
  let n = p.Params.l2_banks in
  let g = p.Params.l2_geom in
  let bank_geom =
    if n = 1 then g
    else
      Geometry.v
        ~size_bytes:(g.Geometry.size_bytes / n)
        ~ways:g.Geometry.ways ~line_bytes:g.Geometry.line_bytes
  in
  {
    p;
    n_banks = n;
    bank_shift = log2 n;
    slice_shift = log2 p.Params.l2_slices;
    slice_mask =
      (let s = p.Params.l2_slices in
       if n > 1 && s > 1 && s land (s - 1) = 0 then s - 1 else 0);
    lb = g.Geometry.line_bytes;
    acq_stage = (if n > 1 then Attr.Bank_wait else Attr.L2);
    banks =
      Array.init n (fun i ->
        {
          b_idx = i;
          store = Store.create bank_geom;
          mshrs =
            Resource.create ~count:p.Params.l2_mshrs
              (if n = 1 then "l2-mshrs" else Printf.sprintf "l2.bank%d-mshrs" i);
          list_buffer = Admission.create ~capacity:p.Params.l2_list_buffer;
          slices =
            Resource.Banked.create ~banks:p.Params.l2_slices
              (if n = 1 then "l2-banks" else Printf.sprintf "l2.bank%d-slices" i);
          b_stats = Stats.Registry.create ();
          mshr_comp = (if n = 1 then "l2.mshr" else Printf.sprintf "l2.bank.%d.mshr" i);
        });
    backend;
    ports = Array.make p.Params.n_cores None;
    probe_buf = Array.make p.Params.n_cores 0;
    stats = Stats.Registry.create ();
  }

let stats t = t.stats
let backend t = t.backend
let client_port t ~core = t.ports.(core)
let n_banks t = t.n_banks
let bank_stats t = Array.map (fun b -> b.b_stats) t.banks
let mshr_files t = Array.map (fun b -> b.mshrs) t.banks

let line t addr = Geometry.line_base t.p.Params.l2_geom addr
let beats t = Params.data_beats t.p

(* Line-address interleaving and the compressed per-bank address space.
   The bank index XOR-folds the whole line number in [bank_shift]-wide
   chunks: plain low-bit interleaving leaves power-of-two-strided access
   patterns (e.g. one contiguous region per core) hammering one bank in
   lockstep, while folding the upper bits in decorrelates them — the usual
   NUCA bank hash.  [compress] shifts the low bank-field out of the line
   number; [decompress] recovers it from the bank index and the fold of the
   surviving upper bits (fold(line) = low xor fold(high), so
   low = b_idx xor fold(high)) — with one bank all three are the identity. *)
let fold ~shift ~mask line =
  let h = ref 0 and x = ref line in
  while !x <> 0 do
    h := !h lxor (!x land mask);
    x := !x lsr shift
  done;
  !h

let fold_hash t line = fold ~shift:t.bank_shift ~mask:(t.n_banks - 1) line

let bank_of t addr = if t.n_banks = 1 then 0 else fold_hash t (addr / t.lb)
let bank_for t addr = t.banks.(bank_of t addr)

let compress t addr =
  ((addr / t.lb) lsr t.bank_shift * t.lb) lor (addr land (t.lb - 1))

let decompress t b caddr =
  if t.n_banks = 1 then caddr
  else
    let high = caddr / t.lb in
    ((high lsl t.bank_shift) lor (b.b_idx lxor fold_hash t high)) * t.lb

(* Aggregate counters keep their monolithic names (the golden pins);
   per-bank shadows are kept only when actually banked. *)
let incr_stat t b name =
  Stats.Registry.incr t.stats name;
  if t.n_banks > 1 then Stats.Registry.incr b.b_stats name

let l2_ev ~at ~addr op = if Trace.enabled () then Trace.emit ~at (Trace.L2 { op; addr })

(* Within a NUCA bank the data-array slice is picked by the same XOR-fold
   of the compressed line number, so strided patterns the bank hash just
   decorrelated don't re-collide on one slice.  The monolithic cache keeps
   the original low-bit slice interleave (the golden timing), as does a
   non-power-of-two slice count. *)
let slice_access t b ~caddr ~now =
  let addr =
    if t.slice_mask = 0 then caddr
    else fold ~shift:t.slice_shift ~mask:t.slice_mask (caddr / t.lb) * t.lb
  in
  let _, finish =
    Resource.Banked.acquire b.slices ~addr ~line_bytes:t.lb ~now
      ~busy:t.p.Params.l2_slice_busy
  in
  finish

(* Probe one client.  The client agent behind the port accounts for its own
   processing and the C-channel serialization; we add the outgoing B-channel
   travel here and trust [done_at] to be the ProbeAck arrival at the L2. *)
let probe_one t b ~core ~addr ~cap ~now =
  match t.ports.(core) with
  | Some port ->
    incr_stat t b "probes";
    l2_ev ~at:now ~addr L2_probe;
    Port.probe port ~addr ~cap ~now:(now + t.p.Params.link_latency)
  | None -> invalid_arg (Printf.sprintf "Inclusive_cache: no client port for core %d" core)

(* Probe the first [n] cores of [t.probe_buf] in parallel, capping each to
   [cap]; merge any dirty data into the directory payload.  Returns the
   time the last ProbeAck lands. *)
let probe_all t b ~addr ~cap ~n ~now dir =
  let t_done = ref now in
  for i = 0 to n - 1 do
    let core = t.probe_buf.(i) in
    let prev = Directory.owner_perm dir core in
    let r = probe_one t b ~core ~addr ~cap ~now in
    (match r.dirty_data with
     | Some d ->
       Array.blit d 0 dir.Directory.data 0 (Array.length d);
       dir.Directory.dirty <- true
     | None -> ());
    let next = if Perm.compare prev cap > 0 then cap else prev in
    Directory.set_owner dir core next;
    if r.done_at > !t_done then t_done := r.done_at
  done;
  !t_done

(* Evict a valid L2 victim: revoke every L1 copy (inclusion), then push dirty
   data to DRAM.  The DRAM write proceeds off the critical path; the returned
   time is when the slot is vacated. *)
let evict_victim t b id ~now =
  let vaddr = decompress t b (Store.slot_addr b.store id) in
  let dir = Store.payload b.store id in
  incr_stat t b "evictions";
  l2_ev ~at:now ~addr:vaddr L2_evict;
  let n = Directory.owners_into dir Perm.Nothing ~exclude:(-1) t.probe_buf in
  let t_probed = probe_all t b ~addr:vaddr ~cap:Perm.Nothing ~n ~now dir in
  if dir.Directory.dirty then begin
    incr_stat t b "dram_writebacks";
    l2_ev ~at:t_probed ~addr:vaddr L2_writeback;
    (* DRAM write proceeds off the critical path: keep its future-dated
       completion out of the attribution cursor. *)
    let saved = Attr.suspend () in
    ignore (Backend.write_line t.backend ~addr:vaddr ~data:dir.Directory.data ~now:t_probed);
    Attr.restore saved
  end;
  Store.invalidate b.store id;
  t_probed

let acquire t ~core ~addr ~grow ~now =
  let addr = line t addr in
  let b = bank_for t addr in
  let caddr = compress t addr in
  let arrive = now + t.p.Params.link_latency in
  let target = Perm.grow_to grow in
  let result = ref (false, [||]) in
  let _, _, finish =
    Resource.acquire_dyn_idx b.mshrs ~now:arrive (fun ~idx start ->
      if Trace.enabled () then
        Trace.emit ~at:start (Trace.Resource { comp = b.mshr_comp; idx; op = Trace.Res_alloc });
      Attr.mark t.acq_stage ~at:start;
      if Metrics.enabled () then Metrics.alloc b.mshr_comp ~at:start;
      let mshr_free ~at =
        if Trace.enabled () then
          Trace.emit ~at (Trace.Resource { comp = b.mshr_comp; idx; op = Trace.Res_free });
        if Metrics.enabled () then Metrics.free b.mshr_comp ~at;
        at
      in
      let tm = start + t.p.Params.l2_tag_access in
      match Store.find b.store caddr with
      | id when id <> Store.miss ->
        incr_stat t b "hits";
        l2_ev ~at:start ~addr L2_hit;
        let dir = Store.payload b.store id in
        let n_probe =
          match target with
          | Perm.Trunk -> Directory.owners_into dir Perm.Nothing ~exclude:core t.probe_buf
          | Perm.Branch | Perm.Nothing ->
            (match Directory.trunk_owner dir with
             | Some c when c <> core ->
               t.probe_buf.(0) <- c;
               1
             | Some _ | None -> 0)
        in
        let cap = match target with Perm.Trunk -> Perm.Nothing | _ -> Perm.Branch in
        let tm = probe_all t b ~addr ~cap ~n:n_probe ~now:tm dir in
        let tm = slice_access t b ~caddr ~now:tm in
        Directory.set_owner dir core target;
        Store.touch b.store id ~now:tm;
        result := (dir.Directory.dirty, Array.copy dir.Directory.data);
        Attr.mark Attr.L2 ~at:tm;
        mshr_free ~at:tm
      | _ ->
        incr_stat t b "misses";
        l2_ev ~at:start ~addr L2_miss;
        let victim = Store.victim b.store caddr in
        let t_evict =
          if Store.is_valid b.store victim then evict_victim t b victim ~now:tm else tm
        in
        Attr.mark Attr.L2 ~at:t_evict;
        let data, t_data, dirty_below = Backend.read_line t.backend ~addr ~now:tm in
        (* A dirty memory-side copy means the line is not persisted: the
           L2 copy inherits the dirty bit so grants carry GrantDataDirty
           and a later RootRelease pushes it to DRAM (§6.2 one level
           deeper). *)
        let dir =
          Directory.create ~n_cores:t.p.Params.n_cores ~data:(Array.copy data)
            ~dirty:dirty_below
        in
        Directory.set_owner dir core target;
        let t_fill = max t_evict t_data in
        Store.fill b.store victim ~addr:caddr ~payload:dir ~now:t_fill;
        result := (dirty_below, Array.copy data);
        Attr.mark Attr.L2 ~at:t_fill;
        mshr_free ~at:t_fill)
  in
  let l2_dirty, data = !result in
  incr_stat t b (if l2_dirty then "grants_dirty" else "grants_clean");
  (* D-channel: serialization beats for the data plus travel. *)
  { perm = target; data; l2_dirty; done_at = finish + beats t + t.p.Params.link_latency }

(* Channel-C requests pass through the owning bank's ListBuffer before one
   of its MSHRs; the buffer's admission stall models SinkC back-pressure
   (§3.4). *)
let sink_c t b ~arrive f =
  let admitted = Admission.admit b.list_buffer ~now:arrive in
  let _, start, finish =
    Resource.acquire_dyn_idx b.mshrs ~now:admitted (fun ~idx start ->
      if Trace.enabled () then
        Trace.emit ~at:start (Trace.Resource { comp = b.mshr_comp; idx; op = Trace.Res_alloc });
      Attr.mark t.acq_stage ~at:start;
      if Metrics.enabled () then Metrics.alloc b.mshr_comp ~at:start;
      let fin = f start in
      if Trace.enabled () then
        Trace.emit ~at:fin (Trace.Resource { comp = b.mshr_comp; idx; op = Trace.Res_free });
      Attr.mark Attr.L2 ~at:fin;
      if Metrics.enabled () then Metrics.free b.mshr_comp ~at:fin;
      fin)
  in
  Admission.release b.list_buffer ~at:start;
  finish

let release t ~core ~addr ~shrink ~data ~now =
  let addr = line t addr in
  let b = bank_for t addr in
  let caddr = compress t addr in
  let arrive = now + t.p.Params.link_latency in
  l2_ev ~at:arrive ~addr L2_release;
  let finish =
    sink_c t b ~arrive (fun start ->
      let tm = start + t.p.Params.l2_tag_access in
      match Store.find b.store caddr with
      | id when id <> Store.miss ->
        let dir = Store.payload b.store id in
        let tm =
          match data with
          | Some d ->
            let tb = slice_access t b ~caddr ~now:tm in
            Array.blit d 0 dir.Directory.data 0 (Array.length d);
            dir.Directory.dirty <- true;
            tb
          | None -> tm
        in
        Directory.set_owner dir core (Perm.shrink_to shrink);
        Store.touch b.store id ~now:tm;
        tm
      | _ ->
        (* Inclusion guarantees the line is present whenever a client can
           release it; reaching this is a coherence bug. *)
        invalid_arg (Printf.sprintf "Inclusive_cache.release: %#x not present" addr))
  in
  finish + t.p.Params.link_latency

let root_release t ~core ~addr ~kind ~data ~now =
  let addr = line t addr in
  let b = bank_for t addr in
  let caddr = compress t addr in
  incr_stat t b "root_releases";
  let arrive = now + t.p.Params.link_latency in
  l2_ev ~at:arrive ~addr L2_root_release;
  let finish =
    sink_c t b ~arrive (fun start ->
      let tm = start + t.p.Params.l2_tag_access in
      match Store.find b.store caddr with
      | id when id <> Store.miss ->
        let dir = Store.payload b.store id in
        (* The RootRelease doubles as the requester's own permission report:
           a flush implies it invalidated its copy, a clean keeps it. *)
        (match kind with
         | Message.Wb_flush -> Directory.set_owner dir core Perm.Nothing
         | Message.Wb_clean -> ());
        let tm =
          match data with
          | Some d ->
            let tb = slice_access t b ~caddr ~now:tm in
            Array.blit d 0 dir.Directory.data 0 (Array.length d);
            dir.Directory.dirty <- true;
            tb
          | None -> tm
        in
        let n_probe, cap =
          match kind with
          | Message.Wb_flush ->
            Directory.owners_into dir Perm.Nothing ~exclude:core t.probe_buf, Perm.Nothing
          | Message.Wb_clean ->
            ( (match Directory.trunk_owner dir with
               | Some c when c <> core ->
                 t.probe_buf.(0) <- c;
                 1
               | Some _ | None -> 0),
              Perm.Branch )
        in
        let tm = probe_all t b ~addr ~cap ~n:n_probe ~now:tm dir in
        let tm =
          if dir.Directory.dirty || not t.p.Params.l2_trivial_skip then begin
            incr_stat t b "dram_writebacks";
            l2_ev ~at:tm ~addr L2_writeback;
            let tb = slice_access t b ~caddr ~now:tm in
            let td = Backend.persist_line t.backend ~addr ~data:dir.Directory.data ~now:tb in
            dir.Directory.dirty <- false;
            td
          end
          else begin
            incr_stat t b "trivial_skips";
            l2_ev ~at:tm ~addr L2_trivial_skip;
            (* The L2 copy is clean, but a dirty copy may sit in a
               memory-side cache below: it must be pushed for the ack to
               mean "persisted". *)
            Backend.persist_if_dirty t.backend ~addr ~now:tm
          end
        in
        (match kind with
         | Message.Wb_flush -> Store.invalidate b.store id
         | Message.Wb_clean -> Store.touch b.store id ~now:tm);
        tm
      | _ -> (
        (* Not present in L2: by inclusion no L1 holds it either, so there is
           nothing to write back above — but a memory-side cache may still
           hold it dirty, and data carried by the request is pushed
           straight through (defensive; cannot arise sequentially). *)
        match data with
        | Some d ->
          incr_stat t b "dram_writebacks";
          l2_ev ~at:tm ~addr L2_writeback;
          Backend.persist_line t.backend ~addr ~data:d ~now:tm
        | None ->
          incr_stat t b "trivial_skips";
          l2_ev ~at:tm ~addr L2_trivial_skip;
          Backend.persist_if_dirty t.backend ~addr ~now:tm))
  in
  finish + t.p.Params.link_latency

let root_inval t ~core ~addr ~now =
  let addr = line t addr in
  let b = bank_for t addr in
  let caddr = compress t addr in
  incr_stat t b "root_invals";
  let arrive = now + t.p.Params.link_latency in
  l2_ev ~at:arrive ~addr L2_root_inval;
  let finish =
    sink_c t b ~arrive (fun start ->
      let tm = start + t.p.Params.l2_tag_access in
      match Store.find b.store caddr with
      | id when id <> Store.miss ->
        let dir = Store.payload b.store id in
        Directory.set_owner dir core Perm.Nothing;
        let n = Directory.owners_into dir Perm.Nothing ~exclude:core t.probe_buf in
        (* Probe and revoke; any dirty data handed back is discarded with
           the line (CBO.INVAL forfeits unwritten data by definition). *)
        let tm = probe_all t b ~addr ~cap:Perm.Nothing ~n ~now:tm dir in
        Store.invalidate b.store id;
        Backend.discard_line t.backend ~addr;
        tm
      | _ ->
        Backend.discard_line t.backend ~addr;
        tm)
  in
  finish + t.p.Params.link_latency

(* Cold lookup shared by the functional/audit read paths. *)
let find_slot t addr =
  let b = bank_for t addr in
  (b, Store.find b.store (compress t addr))

let dir_dirty t addr =
  match find_slot t (line t addr) with
  | b, id when id <> Store.miss -> (Store.payload b.store id).Directory.dirty
  | _ -> false

let present t addr =
  let _, id = find_slot t (line t addr) in
  id <> Store.miss

let owner_perm t ~core ~addr =
  match find_slot t (line t addr) with
  | b, id when id <> Store.miss -> Directory.owner_perm (Store.payload b.store id) core
  | _ -> Perm.Nothing

let peek_word t addr =
  match find_slot t (line t addr) with
  | b, id when id <> Store.miss ->
    let dir = Store.payload b.store id in
    dir.Directory.data.(Geometry.offset_word t.p.Params.l2_geom addr)
  | _ -> Backend.peek_word t.backend addr

let check_inclusion t ~l1_lines =
  let violation = ref None in
  for core = 0 to t.p.Params.n_cores - 1 do
    List.iter
      (fun (addr, perm) ->
        if !violation = None then begin
          match find_slot t (line t addr) with
          | _, id when id = Store.miss ->
            violation :=
              Some (Printf.sprintf "core %d holds %#x but L2 does not" core addr)
          | b, id ->
            let dir = Store.payload b.store id in
            if not (Perm.equal (Directory.owner_perm dir core) perm) then
              violation :=
                Some
                  (Printf.sprintf "directory for %#x: core %d has %s, dir says %s" addr
                     core (Perm.to_string perm)
                     (Perm.to_string (Directory.owner_perm dir core)))
        end)
      (l1_lines core)
  done;
  match !violation with Some msg -> Error msg | None -> Ok ()

let iter_lines t f =
  Array.iter
    (fun b ->
      Store.iter_valid b.store (fun caddr id ->
        f (decompress t b caddr) (Store.payload b.store id)))
    t.banks

let list_buffer_occupants t =
  Array.fold_left (fun acc b -> acc + Admission.occupants b.list_buffer) 0 t.banks

let crash t =
  (* In-flight transactions die with the power: reset MSHR/slice occupancy
     and ListBuffer admissions in every bank so nothing leaks into the next
     run. *)
  Array.iter
    (fun b ->
      Store.invalidate_all b.store;
      Resource.reset b.mshrs;
      Resource.Banked.reset b.slices;
      Admission.reset b.list_buffer)
    t.banks;
  Backend.crash t.backend

(* Bind this cache as the manager agent of [port] for client [core]: the
   client's A/C-channel requests arrive here, and our B-channel probes for
   that core leave through the same port. *)
let connect_client t ~core port =
  if core < 0 || core >= Array.length t.ports then
    invalid_arg (Printf.sprintf "Inclusive_cache.connect_client: core %d out of range" core);
  (match t.ports.(core) with
   | Some _ -> invalid_arg (Printf.sprintf "Inclusive_cache.connect_client: core %d already connected" core)
   | None -> ());
  t.ports.(core) <- Some port;
  Port.connect_manager port
    {
      Port.acquire = (fun ~addr ~grow ~now -> acquire t ~core ~addr ~grow ~now);
      release = (fun ~addr ~shrink ~data ~now -> release t ~core ~addr ~shrink ~data ~now);
      root_release = (fun ~addr ~kind ~data ~now -> root_release t ~core ~addr ~kind ~data ~now);
      root_inval = (fun ~addr ~now -> root_inval t ~core ~addr ~now);
      peek_word = (fun addr -> peek_word t addr);
    }
