open Skipit_sim
open Skipit_tilelink
open Skipit_cache
module Trace = Skipit_obs.Trace
module Attr = Skipit_obs.Attribution
module Metrics = Skipit_obs.Metrics

type probe_result = Port.probe_result = {
  dirty_data : int array option;
  done_at : int;
}

type grant = Port.grant = {
  perm : Perm.t;
  data : int array;
  l2_dirty : bool;
  done_at : int;
}

type t = {
  p : Params.t;
  store : Directory.t Store.t;
  mshrs : Resource.t;
  (* The ListBuffer (§3.4): channel-C requests that cannot get an MSHR wait
     here; when it is full the sender stalls until the oldest waiter is
     scheduled. *)
  list_buffer : Admission.t;
  banks : Resource.Banked.t;
  backend : Backend.t;
  (* One manager port per client core; B-channel probes route through the
     port to whatever client agent is connected on the other side. *)
  ports : Port.t option array;
  (* Reusable scratch for [Directory.owners_into]: the probe fan-out paths
     fill this instead of allocating an owner list per request.  Safe to
     share because a system's requests are processed one at a time and
     probe handling never re-enters the directory walk. *)
  probe_buf : int array;
  stats : Stats.Registry.t;
}

let create p ~backend =
  {
    p;
    store = Store.create p.Params.l2_geom;
    mshrs = Resource.create ~count:p.Params.l2_mshrs "l2-mshrs";
    list_buffer = Admission.create ~capacity:p.Params.l2_list_buffer;
    banks = Resource.Banked.create ~banks:p.Params.l2_banks "l2-banks";
    backend;
    ports = Array.make p.Params.n_cores None;
    probe_buf = Array.make p.Params.n_cores 0;
    stats = Stats.Registry.create ();
  }

let stats t = t.stats
let backend t = t.backend
let client_port t ~core = t.ports.(core)

let line t addr = Geometry.line_base t.p.Params.l2_geom addr
let line_bytes t = Params.line_bytes t.p
let beats t = Params.data_beats t.p

let l2_ev ~at ~addr op = if Trace.enabled () then Trace.emit ~at (Trace.L2 { op; addr })

let bank_access t ~addr ~now =
  let _, finish =
    Resource.Banked.acquire t.banks ~addr ~line_bytes:(line_bytes t) ~now
      ~busy:t.p.Params.l2_bank_busy
  in
  finish

(* Probe one client.  The client agent behind the port accounts for its own
   processing and the C-channel serialization; we add the outgoing B-channel
   travel here and trust [done_at] to be the ProbeAck arrival at the L2. *)
let probe_one t ~core ~addr ~cap ~now =
  match t.ports.(core) with
  | Some port ->
    Stats.Registry.incr t.stats "probes";
    l2_ev ~at:now ~addr L2_probe;
    Port.probe port ~addr ~cap ~now:(now + t.p.Params.link_latency)
  | None -> invalid_arg (Printf.sprintf "Inclusive_cache: no client port for core %d" core)

(* Probe the first [n] cores of [t.probe_buf] in parallel, capping each to
   [cap]; merge any dirty data into the directory payload.  Returns the
   time the last ProbeAck lands. *)
let probe_all t ~addr ~cap ~n ~now dir =
  let t_done = ref now in
  for i = 0 to n - 1 do
    let core = t.probe_buf.(i) in
    let prev = Directory.owner_perm dir core in
    let r = probe_one t ~core ~addr ~cap ~now in
    (match r.dirty_data with
     | Some d ->
       Array.blit d 0 dir.Directory.data 0 (Array.length d);
       dir.Directory.dirty <- true
     | None -> ());
    let next = if Perm.compare prev cap > 0 then cap else prev in
    Directory.set_owner dir core next;
    if r.done_at > !t_done then t_done := r.done_at
  done;
  !t_done

(* Evict a valid L2 victim: revoke every L1 copy (inclusion), then push dirty
   data to DRAM.  The DRAM write proceeds off the critical path; the returned
   time is when the slot is vacated. *)
let evict_victim t id ~now =
  let vaddr = Store.slot_addr t.store id in
  let dir = Store.payload t.store id in
  Stats.Registry.incr t.stats "evictions";
  l2_ev ~at:now ~addr:vaddr L2_evict;
  let n = Directory.owners_into dir Perm.Nothing ~exclude:(-1) t.probe_buf in
  let t_probed = probe_all t ~addr:vaddr ~cap:Perm.Nothing ~n ~now dir in
  if dir.Directory.dirty then begin
    Stats.Registry.incr t.stats "dram_writebacks";
    l2_ev ~at:t_probed ~addr:vaddr L2_writeback;
    (* DRAM write proceeds off the critical path: keep its future-dated
       completion out of the attribution cursor. *)
    let saved = Attr.suspend () in
    ignore (Backend.write_line t.backend ~addr:vaddr ~data:dir.Directory.data ~now:t_probed);
    Attr.restore saved
  end;
  Store.invalidate t.store id;
  t_probed

let acquire t ~core ~addr ~grow ~now =
  let addr = line t addr in
  let arrive = now + t.p.Params.link_latency in
  let target = Perm.grow_to grow in
  let result = ref (false, [||]) in
  let _, _, finish =
    Resource.acquire_dyn_idx t.mshrs ~now:arrive (fun ~idx start ->
      if Trace.enabled () then
        Trace.emit ~at:start (Trace.Resource { comp = "l2.mshr"; idx; op = Trace.Res_alloc });
      Attr.mark Attr.L2 ~at:start;
      if Metrics.enabled () then Metrics.alloc "l2.mshr" ~at:start;
      let mshr_free ~at =
        if Trace.enabled () then
          Trace.emit ~at (Trace.Resource { comp = "l2.mshr"; idx; op = Trace.Res_free });
        if Metrics.enabled () then Metrics.free "l2.mshr" ~at;
        at
      in
      let tm = start + t.p.Params.l2_tag_access in
      match Store.find t.store addr with
      | id when id <> Store.miss ->
        Stats.Registry.incr t.stats "hits";
        l2_ev ~at:start ~addr L2_hit;
        let dir = Store.payload t.store id in
        let n_probe =
          match target with
          | Perm.Trunk -> Directory.owners_into dir Perm.Nothing ~exclude:core t.probe_buf
          | Perm.Branch | Perm.Nothing ->
            (match Directory.trunk_owner dir with
             | Some c when c <> core ->
               t.probe_buf.(0) <- c;
               1
             | Some _ | None -> 0)
        in
        let cap = match target with Perm.Trunk -> Perm.Nothing | _ -> Perm.Branch in
        let tm = probe_all t ~addr ~cap ~n:n_probe ~now:tm dir in
        let tm = bank_access t ~addr ~now:tm in
        Directory.set_owner dir core target;
        Store.touch t.store id ~now:tm;
        result := (dir.Directory.dirty, Array.copy dir.Directory.data);
        Attr.mark Attr.L2 ~at:tm;
        mshr_free ~at:tm
      | _ ->
        Stats.Registry.incr t.stats "misses";
        l2_ev ~at:start ~addr L2_miss;
        let victim = Store.victim t.store addr in
        let t_evict =
          if Store.is_valid t.store victim then evict_victim t victim ~now:tm else tm
        in
        Attr.mark Attr.L2 ~at:t_evict;
        let data, t_data, dirty_below = Backend.read_line t.backend ~addr ~now:tm in
        (* A dirty memory-side copy means the line is not persisted: the
           L2 copy inherits the dirty bit so grants carry GrantDataDirty
           and a later RootRelease pushes it to DRAM (§6.2 one level
           deeper). *)
        let dir =
          Directory.create ~n_cores:t.p.Params.n_cores ~data:(Array.copy data)
            ~dirty:dirty_below
        in
        Directory.set_owner dir core target;
        let t_fill = max t_evict t_data in
        Store.fill t.store victim ~addr ~payload:dir ~now:t_fill;
        result := (dirty_below, Array.copy data);
        Attr.mark Attr.L2 ~at:t_fill;
        mshr_free ~at:t_fill)
  in
  let l2_dirty, data = !result in
  Stats.Registry.incr t.stats (if l2_dirty then "grants_dirty" else "grants_clean");
  (* D-channel: serialization beats for the data plus travel. *)
  { perm = target; data; l2_dirty; done_at = finish + beats t + t.p.Params.link_latency }

(* Channel-C requests pass through the ListBuffer before an MSHR; the
   buffer's admission stall models SinkC back-pressure (§3.4). *)
let sink_c t ~arrive f =
  let admitted = Admission.admit t.list_buffer ~now:arrive in
  let _, start, finish =
    Resource.acquire_dyn_idx t.mshrs ~now:admitted (fun ~idx start ->
      if Trace.enabled () then
        Trace.emit ~at:start (Trace.Resource { comp = "l2.mshr"; idx; op = Trace.Res_alloc });
      Attr.mark Attr.L2 ~at:start;
      if Metrics.enabled () then Metrics.alloc "l2.mshr" ~at:start;
      let fin = f start in
      if Trace.enabled () then
        Trace.emit ~at:fin (Trace.Resource { comp = "l2.mshr"; idx; op = Trace.Res_free });
      Attr.mark Attr.L2 ~at:fin;
      if Metrics.enabled () then Metrics.free "l2.mshr" ~at:fin;
      fin)
  in
  Admission.release t.list_buffer ~at:start;
  finish

let release t ~core ~addr ~shrink ~data ~now =
  let addr = line t addr in
  let arrive = now + t.p.Params.link_latency in
  l2_ev ~at:arrive ~addr L2_release;
  let finish =
    sink_c t ~arrive (fun start ->
      let tm = start + t.p.Params.l2_tag_access in
      match Store.find t.store addr with
      | id when id <> Store.miss ->
        let dir = Store.payload t.store id in
        let tm =
          match data with
          | Some d ->
            let tb = bank_access t ~addr ~now:tm in
            Array.blit d 0 dir.Directory.data 0 (Array.length d);
            dir.Directory.dirty <- true;
            tb
          | None -> tm
        in
        Directory.set_owner dir core (Perm.shrink_to shrink);
        Store.touch t.store id ~now:tm;
        tm
      | _ ->
        (* Inclusion guarantees the line is present whenever a client can
           release it; reaching this is a coherence bug. *)
        invalid_arg (Printf.sprintf "Inclusive_cache.release: %#x not present" addr))
  in
  finish + t.p.Params.link_latency

let root_release t ~core ~addr ~kind ~data ~now =
  let addr = line t addr in
  Stats.Registry.incr t.stats "root_releases";
  let arrive = now + t.p.Params.link_latency in
  l2_ev ~at:arrive ~addr L2_root_release;
  let finish =
    sink_c t ~arrive (fun start ->
      let tm = start + t.p.Params.l2_tag_access in
      match Store.find t.store addr with
      | id when id <> Store.miss ->
        let dir = Store.payload t.store id in
        (* The RootRelease doubles as the requester's own permission report:
           a flush implies it invalidated its copy, a clean keeps it. *)
        (match kind with
         | Message.Wb_flush -> Directory.set_owner dir core Perm.Nothing
         | Message.Wb_clean -> ());
        let tm =
          match data with
          | Some d ->
            let tb = bank_access t ~addr ~now:tm in
            Array.blit d 0 dir.Directory.data 0 (Array.length d);
            dir.Directory.dirty <- true;
            tb
          | None -> tm
        in
        let n_probe, cap =
          match kind with
          | Message.Wb_flush ->
            Directory.owners_into dir Perm.Nothing ~exclude:core t.probe_buf, Perm.Nothing
          | Message.Wb_clean ->
            ( (match Directory.trunk_owner dir with
               | Some c when c <> core ->
                 t.probe_buf.(0) <- c;
                 1
               | Some _ | None -> 0),
              Perm.Branch )
        in
        let tm = probe_all t ~addr ~cap ~n:n_probe ~now:tm dir in
        let tm =
          if dir.Directory.dirty || not t.p.Params.l2_trivial_skip then begin
            Stats.Registry.incr t.stats "dram_writebacks";
            l2_ev ~at:tm ~addr L2_writeback;
            let tb = bank_access t ~addr ~now:tm in
            let td = Backend.persist_line t.backend ~addr ~data:dir.Directory.data ~now:tb in
            dir.Directory.dirty <- false;
            td
          end
          else begin
            Stats.Registry.incr t.stats "trivial_skips";
            l2_ev ~at:tm ~addr L2_trivial_skip;
            (* The L2 copy is clean, but a dirty copy may sit in a
               memory-side cache below: it must be pushed for the ack to
               mean "persisted". *)
            Backend.persist_if_dirty t.backend ~addr ~now:tm
          end
        in
        (match kind with
         | Message.Wb_flush -> Store.invalidate t.store id
         | Message.Wb_clean -> Store.touch t.store id ~now:tm);
        tm
      | _ -> (
        (* Not present in L2: by inclusion no L1 holds it either, so there is
           nothing to write back above — but a memory-side cache may still
           hold it dirty, and data carried by the request is pushed
           straight through (defensive; cannot arise sequentially). *)
        match data with
        | Some d ->
          Stats.Registry.incr t.stats "dram_writebacks";
          l2_ev ~at:tm ~addr L2_writeback;
          Backend.persist_line t.backend ~addr ~data:d ~now:tm
        | None ->
          Stats.Registry.incr t.stats "trivial_skips";
          l2_ev ~at:tm ~addr L2_trivial_skip;
          Backend.persist_if_dirty t.backend ~addr ~now:tm))
  in
  finish + t.p.Params.link_latency

let root_inval t ~core ~addr ~now =
  let addr = line t addr in
  Stats.Registry.incr t.stats "root_invals";
  let arrive = now + t.p.Params.link_latency in
  l2_ev ~at:arrive ~addr L2_root_inval;
  let finish =
    sink_c t ~arrive (fun start ->
      let tm = start + t.p.Params.l2_tag_access in
      match Store.find t.store addr with
      | id when id <> Store.miss ->
        let dir = Store.payload t.store id in
        Directory.set_owner dir core Perm.Nothing;
        let n = Directory.owners_into dir Perm.Nothing ~exclude:core t.probe_buf in
        (* Probe and revoke; any dirty data handed back is discarded with
           the line (CBO.INVAL forfeits unwritten data by definition). *)
        let tm = probe_all t ~addr ~cap:Perm.Nothing ~n ~now:tm dir in
        Store.invalidate t.store id;
        Backend.discard_line t.backend ~addr;
        tm
      | _ ->
        Backend.discard_line t.backend ~addr;
        tm)
  in
  finish + t.p.Params.link_latency

let dir_dirty t addr =
  match Store.find t.store (line t addr) with
  | id when id <> Store.miss -> (Store.payload t.store id).Directory.dirty
  | _ -> false

let present t addr = Store.find t.store (line t addr) <> Store.miss

let owner_perm t ~core ~addr =
  match Store.find t.store (line t addr) with
  | id when id <> Store.miss -> Directory.owner_perm (Store.payload t.store id) core
  | _ -> Perm.Nothing

let peek_word t addr =
  let base = line t addr in
  match Store.find t.store base with
  | id when id <> Store.miss ->
    let dir = Store.payload t.store id in
    dir.Directory.data.(Geometry.offset_word t.p.Params.l2_geom addr)
  | _ -> Backend.peek_word t.backend addr

let check_inclusion t ~l1_lines =
  let violation = ref None in
  for core = 0 to t.p.Params.n_cores - 1 do
    List.iter
      (fun (addr, perm) ->
        if !violation = None then begin
          match Store.find t.store (line t addr) with
          | id when id = Store.miss ->
            violation :=
              Some (Printf.sprintf "core %d holds %#x but L2 does not" core addr)
          | id ->
            let dir = Store.payload t.store id in
            if not (Perm.equal (Directory.owner_perm dir core) perm) then
              violation :=
                Some
                  (Printf.sprintf "directory for %#x: core %d has %s, dir says %s" addr
                     core (Perm.to_string perm)
                     (Perm.to_string (Directory.owner_perm dir core)))
        end)
      (l1_lines core)
  done;
  match !violation with Some msg -> Error msg | None -> Ok ()

let iter_lines t f = Store.iter_valid t.store (fun addr id -> f addr (Store.payload t.store id))

let mshrs t = t.mshrs
let list_buffer_occupants t = Admission.occupants t.list_buffer

let crash t =
  Store.invalidate_all t.store;
  (* In-flight transactions die with the power: reset MSHR/bank occupancy
     and ListBuffer admissions so nothing leaks into the next run. *)
  Resource.reset t.mshrs;
  Resource.Banked.reset t.banks;
  Admission.reset t.list_buffer;
  Backend.crash t.backend

(* Bind this cache as the manager agent of [port] for client [core]: the
   client's A/C-channel requests arrive here, and our B-channel probes for
   that core leave through the same port. *)
let connect_client t ~core port =
  if core < 0 || core >= Array.length t.ports then
    invalid_arg (Printf.sprintf "Inclusive_cache.connect_client: core %d out of range" core);
  (match t.ports.(core) with
   | Some _ -> invalid_arg (Printf.sprintf "Inclusive_cache.connect_client: core %d already connected" core)
   | None -> ());
  t.ports.(core) <- Some port;
  Port.connect_manager port
    {
      Port.acquire = (fun ~addr ~grow ~now -> acquire t ~core ~addr ~grow ~now);
      release = (fun ~addr ~shrink ~data ~now -> release t ~core ~addr ~shrink ~data ~now);
      root_release = (fun ~addr ~kind ~data ~now -> root_release t ~core ~addr ~kind ~data ~now);
      root_inval = (fun ~addr ~now -> root_inval t ~core ~addr ~now);
      peek_word = (fun addr -> peek_word t addr);
    }
