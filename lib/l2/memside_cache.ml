open Skipit_sim
open Skipit_cache
module Trace = Skipit_obs.Trace
module Attr = Skipit_obs.Attribution

type line = { mutable dirty : bool; data : int array }

type t = {
  name : string;
  geom : Geometry.t;
  access_latency : int;
  banks : Resource.Banked.t;
  bank_busy : int;
  below : Backend.t;
  store : line Store.t;
  stats : Stats.Registry.t;
  mutable clock_hint : int;  (* monotone hint for LRU ordering *)
  mutable port : Backend.t option;  (* upstream (LLC-facing) memside port *)
}

let stats t = t.stats
let line_base t addr = Geometry.line_base t.geom addr

let mem_ev t ~at ~addr op =
  if Trace.enabled () then Trace.emit ~at (Trace.Mem { name = t.name; op; addr })

let touch_clock t now = if now > t.clock_hint then t.clock_hint <- now

let bank t ~addr ~now =
  let _, finish =
    Resource.Banked.acquire t.banks ~addr ~line_bytes:t.geom.Geometry.line_bytes ~now
      ~busy:t.bank_busy
  in
  finish

(* Queueing a request arriving at [now] would suffer on its bank —
   lookahead for the upstream port's stall accounting. *)
let bank_wait t ~addr ~now =
  let b =
    Resource.Banked.bank_of t.banks ~addr ~line_bytes:t.geom.Geometry.line_bytes
  in
  max 0 (Resource.earliest_free b - (now + t.access_latency))

(* Make room for [addr]: evict the victim (dirty → DRAM, off the critical
   path) and return the free slot. *)
let free_slot t ~addr ~now =
  let victim = Store.victim t.store addr in
  if Store.is_valid t.store victim then begin
    Stats.Registry.incr t.stats "evictions";
    mem_ev t ~at:now ~addr:(Store.slot_addr t.store victim) Trace.Mem_evict;
    let vline = Store.payload t.store victim in
    if vline.dirty then begin
      Stats.Registry.incr t.stats "dram_writebacks";
      (* Off the critical path — shield the attribution cursor. *)
      let saved = Attr.suspend () in
      ignore
        (Backend.write_line t.below ~addr:(Store.slot_addr t.store victim) ~data:vline.data
           ~now);
      Attr.restore saved
    end;
    Store.invalidate t.store victim
  end;
  victim

let read_line t ~addr ~now =
  let addr = line_base t addr in
  touch_clock t now;
  let t0 = bank t ~addr ~now:(now + t.access_latency) in
  match Store.find t.store addr with
  | id when id <> Store.miss ->
    Stats.Registry.incr t.stats "hits";
    mem_ev t ~at:t0 ~addr Trace.Mem_hit;
    Store.touch t.store id ~now;
    let line = Store.payload t.store id in
    Attr.mark Attr.Dram ~at:t0;
    Array.copy line.data, t0, line.dirty
  | _ ->
    Stats.Registry.incr t.stats "misses";
    mem_ev t ~at:t0 ~addr Trace.Mem_miss;
    let data, t_dram, _ = Backend.read_line t.below ~addr ~now:t0 in
    let id = free_slot t ~addr ~now:t0 in
    Store.fill t.store id ~addr ~payload:{ dirty = false; data = Array.copy data } ~now;
    Array.copy data, t_dram, false

let write_line t ~addr ~data ~now =
  let addr = line_base t addr in
  touch_clock t now;
  let t0 = bank t ~addr ~now:(now + t.access_latency) in
  (match Store.find t.store addr with
   | id when id <> Store.miss ->
     let line = Store.payload t.store id in
     Array.blit data 0 line.data 0 (Array.length data);
     line.dirty <- true;
     Store.touch t.store id ~now
   | _ ->
     let id = free_slot t ~addr ~now:t0 in
     Store.fill t.store id ~addr ~payload:{ dirty = true; data = Array.copy data } ~now);
  t0

let persist_line t ~addr ~data ~now =
  let addr = line_base t addr in
  touch_clock t now;
  Stats.Registry.incr t.stats "persist_writes";
  let t0 = bank t ~addr ~now:(now + t.access_latency) in
  (* Update (or bypass) the cached copy, leaving it clean; durability comes
     from the write-through. *)
  (match Store.find t.store addr with
   | id when id <> Store.miss ->
     let line = Store.payload t.store id in
     Array.blit data 0 line.data 0 (Array.length data);
     line.dirty <- false
   | _ -> ());
  Backend.persist_line t.below ~addr ~data ~now:t0

let persist_if_dirty t ~addr ~now =
  let addr = line_base t addr in
  match Store.find t.store addr with
  | id when id <> Store.miss && (Store.payload t.store id).dirty ->
    persist_line t ~addr ~data:(Store.payload t.store id).data ~now
  | _ -> now

let discard_line t ~addr =
  match Store.find t.store (line_base t addr) with
  | id when id <> Store.miss -> Store.invalidate t.store id
  | _ -> ()

let peek_word t addr =
  match Store.find t.store (line_base t addr) with
  | id when id <> Store.miss -> (Store.payload t.store id).data.(Geometry.offset_word t.geom addr)
  | _ -> Backend.peek_word t.below addr

let present t addr = Store.find t.store (line_base t addr) <> Store.miss

let dirty t addr =
  match Store.find t.store (line_base t addr) with
  | id when id <> Store.miss -> (Store.payload t.store id).dirty
  | _ -> false

let iter_lines t f =
  Store.iter_valid t.store (fun addr id ->
    let line = Store.payload t.store id in
    f addr ~dirty:line.dirty ~data:line.data)

let crash t =
  Store.invalidate_all t.store;
  Resource.Banked.reset t.banks

let create ?(name = "l3") ~geom ~access_latency ~banks ~bank_busy ~below ~beats_per_line
    ?(max_inflight = 0) ?(burst_beat_cost = 0) () =
  let t =
    {
      name;
      geom;
      access_latency;
      banks = Resource.Banked.create ~banks (name ^ "-banks");
      bank_busy;
      below;
      store = Store.create geom;
      stats = Stats.Registry.create ();
      clock_hint = 0;
      port = None;
    }
  in
  (* The cache is the agent on its upstream memside port: the LLC above
     reaches it only through the port, which counts beats and the bank
     queueing we report. *)
  t.port <-
    Some
      (Backend.create ~name ~beats_per_line ~max_inflight ~burst_beat_cost (fun stats ->
         {
           Skipit_tilelink.Port.Memside.read_line =
             (fun ~addr ~now ->
               Skipit_tilelink.Port.Memside.note_wait stats (bank_wait t ~addr ~now);
               read_line t ~addr ~now);
           write_line =
             (fun ~addr ~data ~now ->
               Skipit_tilelink.Port.Memside.note_wait stats (bank_wait t ~addr ~now);
               write_line t ~addr ~data ~now);
           persist_line =
             (fun ~addr ~data ~now ->
               Skipit_tilelink.Port.Memside.note_wait stats (bank_wait t ~addr ~now);
               persist_line t ~addr ~data ~now);
           persist_if_dirty = (fun ~addr ~now -> persist_if_dirty t ~addr ~now);
           discard_line = (fun ~addr -> discard_line t ~addr);
           peek_word = (fun addr -> peek_word t addr);
           crash = (fun () -> crash t);
         }));
  t

let backend t = Option.get t.port
