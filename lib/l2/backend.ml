module Dram = Skipit_mem.Dram
open Skipit_tilelink

type t = Port.Memside.t

let create = Port.Memside.create
let name = Port.Memside.name
let stats = Port.Memside.stats
let read_line = Port.Memside.read_line
let write_line = Port.Memside.write_line
let persist_line = Port.Memside.persist_line
let persist_if_dirty = Port.Memside.persist_if_dirty
let discard_line = Port.Memside.discard_line
let peek_word = Port.Memside.peek_word
let crash = Port.Memside.crash

let of_dram ?(name = "dram") ~beats_per_line ?(max_inflight = 0) ?(burst_beat_cost = 0)
    dram =
  Port.Memside.create ~name ~beats_per_line ~max_inflight ~burst_beat_cost (fun stats ->
    {
      Port.Memside.read_line =
        (fun ~addr ~now ->
          Port.Memside.note_wait stats (Dram.queue_wait dram ~now);
          let data, t = Dram.read_line dram ~addr ~now in
          data, t, false);
      write_line =
        (fun ~addr ~data ~now ->
          Port.Memside.note_wait stats (Dram.queue_wait dram ~now);
          Dram.write_line dram ~addr ~data ~now);
      persist_line =
        (fun ~addr ~data ~now ->
          Port.Memside.note_wait stats (Dram.queue_wait dram ~now);
          Dram.write_line dram ~addr ~data ~now);
      persist_if_dirty = (fun ~addr:_ ~now -> now);
      discard_line = (fun ~addr:_ -> ());
      peek_word = (fun addr -> Dram.peek_word dram addr);
      crash = (fun () -> ());
    })
