(** A memory-side L3 between the LLC and DRAM — the deeper hierarchy of the
    §7.4 hypothesis.

    Unlike the inclusive L2 it needs no directory (its only client is the
    L2) and no probes; it is a plain write-back set-associative cache:

    - reads hit here or fetch from DRAM;
    - L2 victim writebacks lodge here dirty (fast) and reach DRAM only on
      eviction;
    - durability writes (the RootRelease path) write {e through} to DRAM
      and leave the L3 copy clean, so the persistence semantics of §4 are
      unchanged — only the depth/latency of the path grows;
    - a dirty L3 copy makes {!Backend.read_line} report [dirty_below],
      keeping the skip-bit invariant (§6.2) intact one level further down. *)

open Skipit_cache

type t

val create :
  ?name:string ->
  geom:Geometry.t ->
  access_latency:int ->
  banks:int ->
  bank_busy:int ->
  below:Backend.t ->
  beats_per_line:int ->
  ?max_inflight:int ->
  ?burst_beat_cost:int ->
  unit ->
  t
(** [below] is the next agent towards the persistence domain — usually
    {!Backend.of_dram} — reached through its own counted port, so the
    L3↔DRAM boundary is observable like every other.  [beats_per_line]
    sizes the beat counters of the upstream port this cache exposes via
    {!backend}; [max_inflight] / [burst_beat_cost] configure that port's
    AXI burst model (defaults timing-neutral). *)

val backend : t -> Backend.t
(** The upstream memside port handed to the L2 (one per cache, stable
    across calls). *)

val present : t -> int -> bool
val dirty : t -> int -> bool

val iter_lines : t -> (int -> dirty:bool -> data:int array -> unit) -> unit
(** Visit every resident line (audit layer). *)

val stats : t -> Skipit_sim.Stats.Registry.t
(** ["hits"], ["misses"], ["evictions"], ["dram_writebacks"],
    ["persist_writes"]. *)
