open Skipit_tilelink

type t = { mutable dirty : bool; data : int array; owners : Perm.t array }

let create ~n_cores ~data ~dirty = { dirty; data; owners = Array.make n_cores Perm.Nothing }

let owner_perm t core = t.owners.(core)
let set_owner t core perm = t.owners.(core) <- perm

let trunk_owner t =
  let n = Array.length t.owners in
  let rec scan i =
    if i >= n then None
    else if Perm.equal t.owners.(i) Perm.Trunk then Some i
    else scan (i + 1)
  in
  scan 0

let owners_above t level =
  let acc = ref [] in
  for i = Array.length t.owners - 1 downto 0 do
    if Perm.compare t.owners.(i) level > 0 then acc := i :: !acc
  done;
  !acc

(* Allocation-free variant for the probe hot paths: write the owning cores
   (ascending, optionally excluding one) into the caller's reusable buffer
   and return the count.  [buf] must have at least [n_cores] room. *)
let owners_into t level ~exclude buf =
  let n = ref 0 in
  for i = 0 to Array.length t.owners - 1 do
    if i <> exclude && Perm.compare t.owners.(i) level > 0 then begin
      buf.(!n) <- i;
      incr n
    end
  done;
  !n

let has_owners t = owners_above t Perm.Nothing <> []

let check_invariants t =
  match trunk_owner t with
  | None -> Ok ()
  | Some core ->
    let others = List.filter (fun c -> c <> core) (owners_above t Perm.Nothing) in
    if others = [] then Ok ()
    else
      Error
        (Printf.sprintf "Trunk owner %d coexists with other owners [%s]" core
           (String.concat "; " (List.map string_of_int others)))
