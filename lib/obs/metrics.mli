(** Windowed metrics registry keyed to simulated cycles.

    Counters, occupancy series (per-window alloc/free deltas, integrated
    to a level series at export) and log2-bucket histograms, aggregated
    into fixed-width windows of the *simulated* clock — no wall clock
    anywhere, so contents are byte-identical at any [--jobs] width.  The
    installed sink is domain-local; the ambient hooks below are no-ops
    with no sink installed. *)

type t

val default_window : int
val create : ?window:int -> unit -> t
val window : t -> int
val widx : t -> at:int -> int
(** Window index of simulated cycle [at]. *)

val bucket_of : int -> int
(** Histogram bucket of a value: 0 for [v <= 0], else its bit width, so
    bucket [b >= 1] covers [2^(b-1), 2^b). *)

val bucket_lo : int -> int
(** Inclusive lower bound of a bucket. *)

(** {1 Recording against an explicit registry} *)

val counter_incr : t -> string -> at:int -> unit
val counter_add : t -> string -> at:int -> int -> unit
val occupancy_alloc : t -> string -> at:int -> unit
val occupancy_free : t -> string -> at:int -> unit
val histogram_observe : t -> string -> at:int -> int -> unit

(** {1 The installed sink (domain-local)} *)

val enabled : unit -> bool
val start : ?window:int -> unit -> t
val stop : unit -> t option

(** Ambient hooks for the hierarchy: no-ops with no sink installed. *)

val count : string -> at:int -> unit
val add : string -> at:int -> int -> unit
val alloc : string -> at:int -> unit
val free : string -> at:int -> unit
val sample : string -> at:int -> int -> unit

(** {1 Deterministic views} *)

val sorted_names : t -> string list

val counter_series : t -> string -> (int * int) list
(** Sorted [(window, count)] pairs for a counter. *)

val occupancy_series : t -> string -> (int * int * int * int) list
(** Sorted [(window, allocs, frees, level-at-window-end)] rows. *)

val counter_total : t -> string -> int
val histogram_totals : t -> string -> int * int
(** [(count, sum)] across all windows. *)

val counter_tracks : t -> (string * (int * int) list) list
(** Per-window points [(cycle, value)] for Perfetto counter tracks:
    counters by window count, occupancy by level at window end. *)

(** {1 Exporters} *)

val to_prometheus : t -> string
val to_csv : t -> string
val to_json : t -> string
