(** Cycle-accounting critical-path attribution.

    Decomposes a request's arrival -> persist-complete span into exclusive
    per-stage cycles via cursor segmentation: marks partition the span, the
    residual lands in [Other] at close, so stage cycles always sum to the
    span (conservation by construction).  The sink is domain-local and
    [enabled ()] is one ref read — with no sink installed every hook is a
    cheap guard and simulated timing is unchanged. *)

type stage =
  | Adm_wait  (** admission-queue wait: intended arrival -> worker dequeue *)
  | L1_hit  (** L1 access: hit latency, load-to-use, store commit *)
  | Mshr  (** L1 miss path: MSHR wait, victim evict, refill beats *)
  | Flushq_wait  (** flush-queue admission wait for a CBO *)
  | Fshr  (** FSHR occupancy: drain waits, forwards, nack retries *)
  | L2  (** L2 directory access, probes, slice occupancy *)
  | Bank_wait  (** wait for the owning L2 NUCA bank's MSHR/ListBuffer *)
  | Dram  (** memory-side: L3 bank + DRAM channel *)
  | Fence  (** fence stall: FSHR drain + fence cost + epoch commit work *)
  | Commit_wait  (** op complete -> persist-epoch commit begins *)
  | Other  (** residual cycles no hook claimed *)

val all_stages : stage list
val n_stages : int
val stage_index : stage -> int
val stage_name : stage -> string

type frame

type record = { total : int; cycles : int array }

type t

val create : ?cores:int -> ?keep_records:bool -> unit -> t

(** {1 Frames} *)

val frame : at:int -> frame
(** A fresh frame whose span opens at [at]. *)

val mark_frame : frame -> stage -> at:int -> unit
(** Charge cycles from the frame's cursor up to [at] to [stage] and advance
    the cursor; a no-op when [at] is not past the cursor. *)

val frame_total : frame -> int
(** Sum of the cycles attributed so far. *)

val close : t -> frame -> at:int -> unit
(** Close the span at [at]: residual goes to [Other]; any cursor overshoot
    (background work that escaped the suspend bracketing) is trimmed so
    the stage sum equals [at - start] exactly.  Folds the frame into the
    sink's totals and (when [keep_records]) the per-request record list. *)

(** {1 The installed sink (domain-local)} *)

val enabled : unit -> bool
val start : ?cores:int -> ?keep_records:bool -> unit -> t
val stop : unit -> t option

val bind : core:int -> frame option -> unit
(** Bind (or with [None] unbind) the frame for [core]'s in-flight request;
    also makes it the active mark target. *)

val activate : core:int -> unit
(** Make [core]'s bound frame the active mark target — called at the
    Dcache entry points, where the core id is in hand. *)

val mark : stage -> at:int -> unit
(** [mark_frame] against the active frame, if any. *)

val suspend : unit -> frame option
(** Detach the active frame (returning it) so background work — FSHR
    walks, writeback acks — cannot pollute the cursor with future-dated
    completion times.  Pair with [restore]. *)

val restore : frame option -> unit

(** {1 Results} *)

val totals : t -> (string * int) list
(** Per-stage cycles summed over closed frames, in stage order — every
    stage present, zero or not, so downstream JSON is schema-stable. *)

val requests : t -> int
val trimmed : t -> int
val records : t -> record list
val conserved : t -> bool
(** True iff every closed record's stage cycles sum to its total span. *)
