(* Chrome trace-event JSON exporter (the legacy JSON flavour Perfetto's
   ui.perfetto.dev opens directly).

   Every component track becomes a named thread of one "skipit_sim" process;
   events render as thread-scoped instants, and matched request spans render
   as complete ("X") slices on one track per request class.  Output is
   deterministic: tracks are numbered in sorted-name order and entries are
   emitted in non-decreasing timestamp order (stable, so same-cycle events
   keep emission order). *)

type entry = {
  ts : int;
  dur : int option;  (* Some d => complete slice, None => instant *)
  track : string;
  name : string;
  args : (string * string) list;
}

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Flatten a trace into renderable entries: instants for plain events,
   slices for matched request pairs. *)
let entries trace =
  let open_reqs : (int, Trace.cls * int * int * int) Hashtbl.t = Hashtbl.create 64 in
  let acc =
    Trace.fold trace [] (fun acc { Trace.at; ev } ->
      match ev with
      | Trace.Req_start { id; cls; core; addr } ->
        Hashtbl.replace open_reqs id (cls, core, addr, at);
        acc
      | Trace.Req_end { id } -> (
        match Hashtbl.find_opt open_reqs id with
        | Some (cls, core, addr, t0) ->
          Hashtbl.remove open_reqs id;
          {
            ts = t0;
            dur = Some (max 0 (at - t0));
            track = "req." ^ Trace.cls_name cls;
            name = Trace.cls_name cls;
            args =
              [
                "id", string_of_int id;
                "core", string_of_int core;
                "addr", Printf.sprintf "%#x" addr;
              ];
          }
          :: acc
        | None -> acc)
      | Trace.Meta _ ->
        (* Declares its track; nothing to render. *)
        { ts = at; dur = None; track = Trace.track ev; name = ""; args = [] } :: acc
      | _ ->
        {
          ts = at;
          dur = None;
          track = Trace.track ev;
          name = Trace.event_name ev;
          args = Trace.event_args ev;
        }
        :: acc)
  in
  List.stable_sort (fun a b -> compare a.ts b.ts) (List.rev acc)

let tracks trace =
  List.sort_uniq String.compare (List.map (fun e -> e.track) (entries trace))

(* Counter tracks ("C" phase, process-scoped): one series per name, points
   already in (cycle, value) order from Metrics.counter_tracks. *)
let emit_counters buf counters =
  List.iter
    (fun (name, points) ->
      List.iter
        (fun (ts, v) ->
          Buffer.add_string buf
            (Printf.sprintf
               ",\n{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%d,\"pid\":0,\"args\":{\"value\":%d}}"
               (escape name) ts v))
        points)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) counters)

let to_buffer ?(counters = []) buf trace =
  let entries = entries trace in
  let tracks = List.sort_uniq String.compare (List.map (fun e -> e.track) entries) in
  let tid_of = Hashtbl.create 16 in
  List.iteri (fun i tr -> Hashtbl.replace tid_of tr (i + 1)) tracks;
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"skipit_sim\"}}";
  List.iter
    (fun tr ->
      Buffer.add_string buf
        (Printf.sprintf
           ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           (Hashtbl.find tid_of tr) (escape tr)))
    tracks;
  List.iter
    (fun e ->
      if e.name <> "" then begin
        let tid = Hashtbl.find tid_of e.track in
        let args =
          String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) e.args)
        in
        match e.dur with
        | Some d ->
          Buffer.add_string buf
            (Printf.sprintf
               ",\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":0,\"tid\":%d,\"args\":{%s}}"
               (escape e.name) e.ts d tid args)
        | None ->
          Buffer.add_string buf
            (Printf.sprintf
               ",\n{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%d,\"pid\":0,\"tid\":%d,\"s\":\"t\",\"args\":{%s}}"
               (escape e.name) e.ts tid args)
      end)
    entries;
  emit_counters buf counters;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ns\"}\n"

let to_string ?counters trace =
  let buf = Buffer.create 65536 in
  to_buffer ?counters buf trace;
  Buffer.contents buf

let write_channel ?counters oc trace = output_string oc (to_string ?counters trace)

(* Ring wraparound means the export is silently missing the oldest events;
   say so on stderr instead of letting a truncated trace pass for a full
   one. *)
let warn_dropped trace =
  let d = Trace.dropped trace in
  if d > 0 then
    Printf.eprintf
      "perfetto: ring buffer wrapped during recording: %d event(s) dropped (capacity %d); export is truncated — raise the trace capacity\n%!"
      d (Trace.capacity trace)

let write_file ?counters path trace =
  warn_dropped trace;
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel ?counters oc trace)
