(* Cycle-stamped structured event tracing.

   One global trace sink, installed for the duration of a run.  Every
   emission point in the hierarchy is guarded by [enabled ()]; with no sink
   installed the guard is a single mutable-ref read and the event payload is
   never allocated, so an untraced run does exactly the work it did before
   this layer existed.  Recording never influences timing: events carry the
   cycle stamps the simulator already computed, so cycle counts are
   bit-identical with tracing on and off. *)

type wb = Clean | Flush

let wb_name = function Clean -> "clean" | Flush -> "flush"

type chan = Ch_a | Ch_b | Ch_c | Ch_d

let chan_name = function Ch_a -> "a" | Ch_b -> "b" | Ch_c -> "c" | Ch_d -> "d"

type l1_op =
  | Load_hit
  | Load_miss
  | Load_forward
  | Load_nack
  | Store_hit
  | Store_miss
  | Store_upgrade
  | Store_nack
  | Evict_clean
  | Evict_dirty
  | Probe_handled
  | Skip_drop
  | Cbo_coalesced

let l1_op_name = function
  | Load_hit -> "load_hit"
  | Load_miss -> "load_miss"
  | Load_forward -> "load_forward"
  | Load_nack -> "load_nack"
  | Store_hit -> "store_hit"
  | Store_miss -> "store_miss"
  | Store_upgrade -> "store_upgrade"
  | Store_nack -> "store_nack"
  | Evict_clean -> "evict_clean"
  | Evict_dirty -> "evict_dirty"
  | Probe_handled -> "probe"
  | Skip_drop -> "skip_drop"
  | Cbo_coalesced -> "cbo_coalesced"

(* The Fig. 7 FSHR FSM states (the walk a dequeued writeback performs). *)
type fshr_state =
  | Fs_meta_write
  | Fs_fill_buffer
  | Fs_release_data
  | Fs_release
  | Fs_release_ack

let fshr_state_name = function
  | Fs_meta_write -> "meta_write"
  | Fs_fill_buffer -> "fill_buffer"
  | Fs_release_data -> "root_release_data"
  | Fs_release -> "root_release"
  | Fs_release_ack -> "root_release_ack"

type fshr_op = Fshr_alloc | Fshr_step of fshr_state | Fshr_free

let fshr_op_name = function
  | Fshr_alloc -> "fshr_alloc"
  | Fshr_step s -> "fshr_" ^ fshr_state_name s
  | Fshr_free -> "fshr_free"

type q_op = Q_enqueue | Q_dequeue | Q_coalesce

let q_op_name = function
  | Q_enqueue -> "enqueue"
  | Q_dequeue -> "dequeue"
  | Q_coalesce -> "coalesce"

type chan_op = Beats of int | Stall of int

type msg_op = Msg_acquire | Msg_release | Msg_root_release | Msg_root_inval | Msg_probe

let msg_op_name = function
  | Msg_acquire -> "acquire"
  | Msg_release -> "release"
  | Msg_root_release -> "root_release"
  | Msg_root_inval -> "root_inval"
  | Msg_probe -> "probe"

type l2_op =
  | L2_hit
  | L2_miss
  | L2_probe
  | L2_release
  | L2_root_release
  | L2_root_inval
  | L2_writeback
  | L2_trivial_skip
  | L2_evict

let l2_op_name = function
  | L2_hit -> "hit"
  | L2_miss -> "miss"
  | L2_probe -> "probe"
  | L2_release -> "release"
  | L2_root_release -> "root_release"
  | L2_root_inval -> "root_inval"
  | L2_writeback -> "writeback"
  | L2_trivial_skip -> "trivial_skip"
  | L2_evict -> "evict"

type mem_op = Mem_read | Mem_write | Mem_persist | Mem_hit | Mem_miss | Mem_evict

let mem_op_name = function
  | Mem_read -> "read"
  | Mem_write -> "write"
  | Mem_persist -> "persist"
  | Mem_hit -> "hit"
  | Mem_miss -> "miss"
  | Mem_evict -> "evict"

type dram_op = Dram_read | Dram_write

let dram_op_name = function Dram_read -> "read" | Dram_write -> "write"

type res_op = Res_alloc | Res_free

let res_op_name = function Res_alloc -> "alloc" | Res_free -> "free"

(* End-to-end request classes for the latency histograms. *)
type cls =
  | Cls_load_miss
  | Cls_store_miss
  | Cls_cbo_clean
  | Cls_cbo_flush
  | Cls_writeback
  | Cls_serve
  | Cls_fleet

let all_classes =
  [ Cls_load_miss; Cls_store_miss; Cls_cbo_clean; Cls_cbo_flush; Cls_writeback; Cls_serve;
    Cls_fleet ]

let cls_name = function
  | Cls_load_miss -> "load_miss"
  | Cls_store_miss -> "store_miss"
  | Cls_cbo_clean -> "cbo.clean"
  | Cls_cbo_flush -> "cbo.flush"
  | Cls_writeback -> "writeback"
  | Cls_serve -> "serve"
  | Cls_fleet -> "fleet"

type event =
  | L1 of { core : int; op : l1_op; addr : int }
  | Fshr of { core : int; idx : int; op : fshr_op; addr : int; kind : wb }
  | Flushq of { name : string; op : q_op; addr : int; kind : wb }
  | Resource of { comp : string; idx : int; op : res_op }
  | Channel of { port : string; chan : chan; op : chan_op }
  | Message of { port : string; op : msg_op; addr : int }
  | L2 of { op : l2_op; addr : int }
  | Mem of { name : string; op : mem_op; addr : int }
  | Dram of { op : dram_op; addr : int }
  | Req_start of { id : int; cls : cls; core : int; addr : int }
  | Req_end of { id : int }
  | Meta of { track : string; note : string }

(* The Perfetto track an event renders on: one per component. *)
let track = function
  | L1 { core; _ } -> Printf.sprintf "l1.%d" core
  | Fshr { core; idx; _ } -> Printf.sprintf "fu.%d.fshr%d" core idx
  | Flushq { name; _ } -> name
  | Resource { comp; _ } -> comp
  | Channel { port; _ } -> "port." ^ port
  | Message { port; _ } -> "port." ^ port
  | L2 _ -> "l2"
  | Mem { name; _ } -> name
  | Dram _ -> "dram"
  | Req_start { cls; _ } -> "req." ^ cls_name cls
  | Req_end _ -> "req"
  | Meta { track; _ } -> track

let event_name = function
  | L1 { op; _ } -> l1_op_name op
  | Fshr { op; _ } -> fshr_op_name op
  | Flushq { op; _ } -> q_op_name op
  | Resource { op; _ } -> res_op_name op
  | Channel { chan; op; _ } -> (
    match op with
    | Beats _ -> chan_name chan ^ "_beats"
    | Stall _ -> chan_name chan ^ "_stall")
  | Message { op; _ } -> msg_op_name op
  | L2 { op; _ } -> l2_op_name op
  | Mem { op; _ } -> mem_op_name op
  | Dram { op; _ } -> dram_op_name op
  | Req_start { cls; _ } -> cls_name cls ^ "_start"
  | Req_end _ -> "req_end"
  | Meta { note; _ } -> note

(* Key/value annotations rendered into the exporter's [args] object. *)
let event_args = function
  | L1 { addr; _ } -> [ "addr", Printf.sprintf "%#x" addr ]
  | Fshr { addr; kind; _ } ->
    [ "addr", Printf.sprintf "%#x" addr; "kind", wb_name kind ]
  | Flushq { addr; kind; _ } ->
    [ "addr", Printf.sprintf "%#x" addr; "kind", wb_name kind ]
  | Resource { idx; _ } -> [ "unit", string_of_int idx ]
  | Channel { op = Beats n; _ } -> [ "beats", string_of_int n ]
  | Channel { op = Stall n; _ } -> [ "cycles", string_of_int n ]
  | Message { addr; _ } -> [ "addr", Printf.sprintf "%#x" addr ]
  | L2 { addr; _ } -> [ "addr", Printf.sprintf "%#x" addr ]
  | Mem { addr; _ } -> [ "addr", Printf.sprintf "%#x" addr ]
  | Dram { addr; _ } -> [ "addr", Printf.sprintf "%#x" addr ]
  | Req_start { id; core; addr; _ } ->
    [ "id", string_of_int id; "core", string_of_int core; "addr", Printf.sprintf "%#x" addr ]
  | Req_end { id } -> [ "id", string_of_int id ]
  | Meta _ -> []

type record = { at : int; ev : event }

type t = {
  capacity : int;
  buf : record array;
  mutable len : int;  (* live records, <= capacity *)
  mutable next : int;  (* next insertion slot (circular) *)
  mutable dropped : int;  (* records overwritten after wraparound *)
  mutable next_id : int;  (* request-id generator *)
  filter : string list;  (* track prefixes to keep; [] = keep all *)
  reqs_only : bool;
      (* Record only [Req_start]/[Req_end] spans: [enabled ()] reports
         [false] so every detail emission site skips both the guard body
         and the event allocation, while the latency histograms still see
         exactly the spans they would under full tracing. *)
}

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) ?(filter = []) ?(reqs_only = false) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  {
    capacity;
    buf = Array.make capacity { at = 0; ev = Meta { track = ""; note = "" } };
    len = 0;
    next = 0;
    dropped = 0;
    next_id = 0;
    filter;
    reqs_only;
  }

let capacity t = t.capacity
let length t = t.len
let dropped t = t.dropped

let keep t ev =
  match t.filter with
  | [] -> true
  | prefixes ->
    let tr = track ev in
    List.exists
      (fun p ->
        String.length p <= String.length tr && String.sub tr 0 (String.length p) = p)
      prefixes

let add t ~at ev =
  if keep t ev then begin
    t.buf.(t.next) <- { at; ev };
    t.next <- (t.next + 1) mod t.capacity;
    if t.len < t.capacity then t.len <- t.len + 1 else t.dropped <- t.dropped + 1
  end

(* Oldest-first snapshot. *)
let records t =
  let start = (t.next - t.len + t.capacity) mod t.capacity in
  List.init t.len (fun i -> t.buf.((start + i) mod t.capacity))

let iter t f = List.iter f (records t)

let fold t init f = List.fold_left f init (records t)

(* == The installed sink ================================================= *)

(* The sink is *domain-local*: each domain of the parallel experiment
   engine installs and drains its own trace independently, so jobs running
   concurrently on pool domains never share a ring buffer.  On the main
   domain this behaves exactly like the previous single global sink. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let enabled () =
  match Domain.DLS.get current with Some t -> not t.reqs_only | None -> false

let start ?capacity ?filter ?reqs_only () =
  let t = create ?capacity ?filter ?reqs_only () in
  Domain.DLS.set current (Some t);
  t

let stop () =
  let t = Domain.DLS.get current in
  Domain.DLS.set current None;
  t

let emit ~at ev =
  match Domain.DLS.get current with None -> () | Some t -> add t ~at ev

(* Request spans: [req_start] hands out the matching id (or [-1] with no
   sink installed, in which case [req_end] is a no-op too). *)
let req_start ~at ~cls ~core ~addr =
  match Domain.DLS.get current with
  | None -> -1
  | Some t ->
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    add t ~at (Req_start { id; cls; core; addr });
    id

let req_end ~at id = if id >= 0 then emit ~at (Req_end { id })

let with_trace ?capacity ?filter f =
  let t = start ?capacity ?filter () in
  let finally () =
    match Domain.DLS.get current with
    | Some x when x == t -> ignore (stop ())
    | Some _ | None -> ()
  in
  Fun.protect ~finally (fun () ->
    let r = f () in
    r, t)
