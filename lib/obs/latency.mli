(** End-to-end latency histograms and occupancy series from a trace.

    Pairs {!Trace.Req_start}/{!Trace.Req_end} events by id and aggregates
    the durations per request class.  Requests whose partner event was lost
    (ring wraparound, track filter) are reported as unmatched instead of
    contributing bogus durations. *)

module Sample = Skipit_sim.Stats.Sample

type t

val of_trace : Trace.t -> t

val sample : t -> Trace.cls -> Sample.t
(** Durations (in cycles) of matched requests of one class. *)

val overall : t -> Sample.t
(** Durations of all matched requests, regardless of class. *)

val unmatched_starts : t -> int
val unmatched_ends : t -> int

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
}

val summarize : Sample.t -> summary option
(** [None] for an empty sample. *)

type gap = { gap_p50 : float; gap_p99 : float; gap_p999 : float }

val gap : intended:summary -> recorded:summary -> gap
(** How much a dequeue-stamped (coordinated-omission-blind) latency summary
    understates the intended-arrival-stamped one at each tail percentile. *)

val summaries : t -> (string * summary) list
(** Per-class summaries for the non-empty classes, in class order. *)

val pp : Format.formatter -> t -> unit
(** Human-readable latency table (one row per class plus overall). *)

val occupancy_series : Trace.t -> comp:string -> (int * int) list
(** Step series [(cycle, occupancy)] for a resource component: counts
    {!Trace.Resource} alloc/free events whose [comp] matches, plus FSHR
    alloc/free events when [comp] is a flush unit ([fu.<core>]).  Sorted by
    cycle; at most one point per cycle (the last value wins). *)
