(* End-to-end latency aggregation over a recorded trace.

   Matches [Req_start]/[Req_end] pairs by id into per-class duration
   samples, and rebuilds occupancy-over-time step series for MSHR/FSHR-style
   resources from their alloc/free events.  Ring-buffer wraparound (or a
   track filter that removed one side of a pair) surfaces as unmatched
   counts rather than silently skewing the histograms. *)

module Sample = Skipit_sim.Stats.Sample

type t = {
  by_class : (Trace.cls * Sample.t) list;
  all : Sample.t;
  unmatched_starts : int;
  unmatched_ends : int;
}

let sample t cls = List.assq cls t.by_class
let overall t = t.all
let unmatched_starts t = t.unmatched_starts
let unmatched_ends t = t.unmatched_ends

let of_trace trace =
  let by_class = List.map (fun c -> c, Sample.create ()) Trace.all_classes in
  let all = Sample.create () in
  let open_reqs : (int, Trace.cls * int) Hashtbl.t = Hashtbl.create 64 in
  let unmatched_ends = ref 0 in
  Trace.iter trace (fun { Trace.at; ev } ->
    match ev with
    | Trace.Req_start { id; cls; _ } -> Hashtbl.replace open_reqs id (cls, at)
    | Trace.Req_end { id } -> (
      match Hashtbl.find_opt open_reqs id with
      | Some (cls, t0) ->
        Hashtbl.remove open_reqs id;
        let d = float_of_int (at - t0) in
        Sample.add (List.assq cls by_class) d;
        Sample.add all d
      | None -> incr unmatched_ends)
    | _ -> ());
  {
    by_class;
    all;
    unmatched_starts = Hashtbl.length open_reqs;
    unmatched_ends = !unmatched_ends;
  }

(* == Percentile summaries =============================================== *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
}

let summarize s =
  if Sample.is_empty s then None
  else
    Some
      {
        count = Sample.count s;
        mean = Sample.mean s;
        p50 = Sample.percentile s 50.;
        p95 = Sample.percentile s 95.;
        p99 = Sample.percentile s 99.;
        p999 = Sample.percentile s 99.9;
        max = Sample.max s;
      }

(* Recorded-vs-intended gap: how much a dequeue-stamped (coordinated-
   omission-blind) summary understates the intended-arrival-stamped truth
   at each tail percentile. *)
type gap = { gap_p50 : float; gap_p99 : float; gap_p999 : float }

let gap ~intended ~recorded =
  {
    gap_p50 = intended.p50 -. recorded.p50;
    gap_p99 = intended.p99 -. recorded.p99;
    gap_p999 = intended.p999 -. recorded.p999;
  }

let summaries t =
  List.filter_map
    (fun (cls, s) -> Option.map (fun sum -> Trace.cls_name cls, sum) (summarize s))
    t.by_class

let pp ppf t =
  let row name { count; mean; p50; p95; p99; p999; max } =
    Format.fprintf ppf "%-12s %8d %10.1f %8.0f %8.0f %8.0f %8.0f %8.0f@," name count mean
      p50 p95 p99 p999 max
  in
  Format.fprintf ppf "@[<v>%-12s %8s %10s %8s %8s %8s %8s %8s@," "class" "count" "mean"
    "p50" "p95" "p99" "p99.9" "max";
  List.iter (fun (name, s) -> row name s) (summaries t);
  (match summarize t.all with Some s -> row "overall" s | None -> ());
  if t.unmatched_starts > 0 || t.unmatched_ends > 0 then
    Format.fprintf ppf "unmatched: %d starts, %d ends (ring wraparound or filtered)@,"
      t.unmatched_starts t.unmatched_ends;
  Format.fprintf ppf "@]"

(* == Occupancy-over-time =============================================== *)

(* FSHR events live on per-unit tracks ("fu.0.fshr3"); fold them into their
   component ("fu.0") alongside Resource alloc/free events whose [comp]
   matches exactly. *)
let occupancy_series trace ~comp =
  let deltas =
    Trace.fold trace [] (fun acc { Trace.at; ev } ->
      match ev with
      | Trace.Resource { comp = c; op; _ } when c = comp ->
        (at, (match op with Trace.Res_alloc -> 1 | Trace.Res_free -> -1)) :: acc
      | Trace.Fshr { core; op = Trace.Fshr_alloc; _ }
        when Printf.sprintf "fu.%d" core = comp -> (at, 1) :: acc
      | Trace.Fshr { core; op = Trace.Fshr_free; _ }
        when Printf.sprintf "fu.%d" core = comp -> (at, -1) :: acc
      | _ -> acc)
  in
  (* Emission order is not time order (the transaction-level model stamps
     future cycles); sort by stamp, keeping emission order for ties so an
     alloc precedes its own free. *)
  let deltas = List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev deltas) in
  let _, rev =
    List.fold_left
      (fun (occ, acc) (at, d) ->
        let occ = occ + d in
        match acc with
        | (t0, _) :: rest when t0 = at -> occ, (at, occ) :: rest
        | _ -> occ, (at, occ) :: acc)
      (0, []) deltas
  in
  List.rev rev
