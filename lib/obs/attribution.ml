(* Cycle-accounting critical-path attribution.

   Decomposes a request's arrival -> persist-complete span into exclusive
   per-stage cycle buckets.  The scheme is cursor segmentation: a frame
   carries the span start and a monotone cursor; every [mark stage ~at]
   charges the cycles between the cursor and [at] to [stage] and advances
   the cursor.  Marks therefore *partition* the span, and whatever the
   hierarchy did not explicitly claim falls into [Other] when the frame
   closes — so the per-stage cycles of every request sum to its total span
   by construction (conservation), which the serve tests pin.

   Frames are bound per core because the effects scheduler interleaves
   fibers: core A can suspend mid-instruction while core B executes.  The
   hierarchy hooks never know which request they serve; they only call
   [activate ~core] at the Dcache entry points (the one place the core id
   is in hand) and then [mark] against whatever frame is active.  Work
   that is *off* the critical path — the background FSHR walk, dirty
   writeback acks — is bracketed with [suspend]/[restore] at the call
   site so its future-dated completion times never pollute the cursor.

   Like [Trace], the sink is domain-local and [enabled ()] is one
   mutable-ref read, so with no sink installed every hook is a cheap
   guard and the simulated cycle counts are bit-identical with
   attribution on or off (recording never alters timing). *)

type stage =
  | Adm_wait  (* admission-queue wait: intended arrival -> worker dequeue *)
  | L1_hit  (* L1 access: hit latency, load-to-use, store commit *)
  | Mshr  (* L1 miss path: MSHR wait, victim evict, refill beats *)
  | Flushq_wait  (* flush-queue admission wait for a CBO *)
  | Fshr  (* FSHR occupancy: drain waits, forwards, nack retries *)
  | L2  (* L2 directory access, probes, slice occupancy *)
  | Bank_wait  (* wait for the owning L2 NUCA bank's MSHR/ListBuffer *)
  | Dram  (* memory-side: L3 bank + DRAM channel *)
  | Fence  (* fence stall: FSHR drain + fence cost + epoch commit work *)
  | Commit_wait  (* op complete -> persist-epoch commit begins *)
  | Other  (* residual cycles no hook claimed *)

let all_stages =
  [ Adm_wait; L1_hit; Mshr; Flushq_wait; Fshr; L2; Bank_wait; Dram; Fence; Commit_wait;
    Other ]

let n_stages = List.length all_stages

let stage_index = function
  | Adm_wait -> 0
  | L1_hit -> 1
  | Mshr -> 2
  | Flushq_wait -> 3
  | Fshr -> 4
  | L2 -> 5
  | Bank_wait -> 6
  | Dram -> 7
  | Fence -> 8
  | Commit_wait -> 9
  | Other -> 10

let stage_name = function
  | Adm_wait -> "adm_wait"
  | L1_hit -> "l1"
  | Mshr -> "mshr"
  | Flushq_wait -> "flushq_wait"
  | Fshr -> "fshr"
  | L2 -> "l2"
  | Bank_wait -> "bank_wait"
  | Dram -> "dram"
  | Fence -> "fence"
  | Commit_wait -> "commit_wait"
  | Other -> "other"

type frame = {
  fstart : int;  (* span origin (intended arrival for serve requests) *)
  mutable cursor : int;  (* everything before the cursor is attributed *)
  stages : int array;  (* exclusive cycles per stage, [n_stages] wide *)
}

type record = { total : int; cycles : int array }

type t = {
  mutable per_core : frame option array;  (* frame bound to each core *)
  mutable active : frame option;  (* frame marks charge against *)
  totals : int array;  (* per-stage cycles summed over closed frames *)
  mutable requests : int;  (* closed frames *)
  mutable trimmed : int;  (* closes that had to trim cursor overshoot *)
  mutable records : record list;  (* closed frames, newest first *)
  keep_records : bool;
}

let create ?(cores = 1) ?(keep_records = false) () =
  {
    per_core = Array.make (max 1 cores) None;
    active = None;
    totals = Array.make n_stages 0;
    requests = 0;
    trimmed = 0;
    records = [];
    keep_records;
  }

(* == Frames ============================================================= *)

let frame ~at = { fstart = at; cursor = at; stages = Array.make n_stages 0 }

let mark_frame f stage ~at =
  if at > f.cursor then begin
    let i = stage_index stage in
    f.stages.(i) <- f.stages.(i) + (at - f.cursor);
    f.cursor <- at
  end

let frame_total f = Array.fold_left ( + ) 0 f.stages

(* Close a frame at [at]: charge the unclaimed residual to [Other], or —
   if some background completion time slipped past the span end despite
   the suspend bracketing — trim the overshoot from the latest stages so
   the invariant sum(stages) = at - fstart always holds. *)
let close t f ~at =
  let total = max 0 (at - f.fstart) in
  let sum = frame_total f in
  if sum < total then f.stages.(stage_index Other) <- f.stages.(stage_index Other) + (total - sum)
  else if sum > total then begin
    t.trimmed <- t.trimmed + 1;
    let excess = ref (sum - total) in
    let i = ref (n_stages - 1) in
    while !excess > 0 && !i >= 0 do
      let take = min f.stages.(!i) !excess in
      f.stages.(!i) <- f.stages.(!i) - take;
      excess := !excess - take;
      decr i
    done
  end;
  for i = 0 to n_stages - 1 do
    t.totals.(i) <- t.totals.(i) + f.stages.(i)
  done;
  t.requests <- t.requests + 1;
  if t.keep_records then
    t.records <- { total; cycles = Array.copy f.stages } :: t.records

(* == The installed sink ================================================= *)

(* Domain-local, like [Trace.current]: pool jobs on different domains each
   carry their own attribution state, so output is byte-identical at any
   [--jobs] width. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let enabled () = Domain.DLS.get current <> None

let start ?cores ?keep_records () =
  let t = create ?cores ?keep_records () in
  Domain.DLS.set current (Some t);
  t

let stop () =
  let t = Domain.DLS.get current in
  Domain.DLS.set current None;
  t

let ensure_core t core =
  let n = Array.length t.per_core in
  if core >= n then begin
    let grown = Array.make (core + 1) None in
    Array.blit t.per_core 0 grown 0 n;
    t.per_core <- grown
  end

(* Bind [f] as the frame for [core]'s in-flight request (or unbind with
   [None]); hierarchy work executed on that core then charges it. *)
let bind ~core f =
  match Domain.DLS.get current with
  | None -> ()
  | Some t ->
    if core >= 0 then begin
      ensure_core t core;
      t.per_core.(core) <- f;
      t.active <- f
    end

(* Dcache entry points call this: instruction execution for [core] is
   beginning, so its frame (if any) becomes the active mark target. *)
let activate ~core =
  match Domain.DLS.get current with
  | None -> ()
  | Some t ->
    t.active <- (if core >= 0 && core < Array.length t.per_core then t.per_core.(core) else None)

let mark stage ~at =
  match Domain.DLS.get current with
  | None -> ()
  | Some t -> ( match t.active with None -> () | Some f -> mark_frame f stage ~at)

(* Bracket background work (FSHR walks, writeback acks) whose completion
   times are in the future relative to the instruction being attributed. *)
let suspend () =
  match Domain.DLS.get current with
  | None -> None
  | Some t ->
    let prev = t.active in
    t.active <- None;
    prev

let restore prev =
  match Domain.DLS.get current with None -> () | Some t -> t.active <- prev

(* == Results ============================================================ *)

let totals t = List.map (fun s -> stage_name s, t.totals.(stage_index s)) all_stages

let requests t = t.requests
let trimmed t = t.trimmed
let records t = List.rev t.records

let conserved t =
  List.for_all (fun r -> Array.fold_left ( + ) 0 r.cycles = r.total) (records t)
