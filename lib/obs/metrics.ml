(* Windowed metrics registry keyed to *simulated* cycles.

   Counters, occupancy series and log2-bucket histograms, all aggregated
   into fixed-width windows of the simulated clock — never the wall clock —
   so the registry's contents are a pure function of the simulation and
   byte-identical at any [--jobs] width.  Like [Trace] the installed sink
   is domain-local and every hierarchy hook is guarded by [enabled ()]
   (one ref read), so an uninstrumented run does no extra work and
   recording never alters simulated timing.

   Occupancy is stored as per-window alloc/free deltas; the level series
   is integrated at export time, which makes recording insensitive to the
   order hooks fire within a window — another determinism guarantee. *)

let default_window = 1024

(* Histograms bucket by bit width: value v >= 0 lands in bucket
   [bits v] covering [2^(b-1), 2^b).  Bucket 0 holds v <= 0. *)
let bucket_of v =
  if v <= 0 then 0
  else
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    bits v 0

let bucket_lo = function 0 -> 0 | b -> 1 lsl (b - 1)
let max_buckets = 63

type windowed = (int, int ref) Hashtbl.t  (* window index -> value *)

type hist_window = { mutable count : int; mutable sum : int; buckets : int array }

type occ = { allocs : windowed; frees : windowed }

type metric =
  | Counter of windowed
  | Occupancy of occ
  | Histogram of (int, hist_window) Hashtbl.t

type t = { window : int; metrics : (string, metric) Hashtbl.t }

let create ?(window = default_window) () =
  if window <= 0 then invalid_arg "Metrics.create: window <= 0";
  { window; metrics = Hashtbl.create 16 }

let window t = t.window
let widx t ~at = if at <= 0 then 0 else at / t.window

let bump (w : windowed) idx by =
  match Hashtbl.find_opt w idx with
  | Some r -> r := !r + by
  | None -> Hashtbl.add w idx (ref by)

let kind_mismatch name = invalid_arg ("Metrics: kind mismatch for " ^ name)

let counter t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Counter w) -> w
  | Some _ -> kind_mismatch name
  | None ->
    let w = Hashtbl.create 16 in
    Hashtbl.add t.metrics name (Counter w);
    w

let occupancy t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Occupancy o) -> o
  | Some _ -> kind_mismatch name
  | None ->
    let o = { allocs = Hashtbl.create 16; frees = Hashtbl.create 16 } in
    Hashtbl.add t.metrics name (Occupancy o);
    o

let histogram t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Histogram h) -> h
  | Some _ -> kind_mismatch name
  | None ->
    let h = Hashtbl.create 16 in
    Hashtbl.add t.metrics name (Histogram h);
    h

let counter_add t name ~at by = bump (counter t name) (widx t ~at) by
let counter_incr t name ~at = counter_add t name ~at 1

let occupancy_alloc t name ~at =
  let o = occupancy t name in
  bump o.allocs (widx t ~at) 1

let occupancy_free t name ~at =
  let o = occupancy t name in
  bump o.frees (widx t ~at) 1

let histogram_observe t name ~at v =
  let h = histogram t name in
  let idx = widx t ~at in
  let hw =
    match Hashtbl.find_opt h idx with
    | Some hw -> hw
    | None ->
      let hw = { count = 0; sum = 0; buckets = Array.make (max_buckets + 1) 0 } in
      Hashtbl.add h idx hw;
      hw
  in
  hw.count <- hw.count + 1;
  hw.sum <- hw.sum + v;
  let b = min max_buckets (bucket_of v) in
  hw.buckets.(b) <- hw.buckets.(b) + 1

(* == The installed sink (domain-local, like Trace) ====================== *)

let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let enabled () = Domain.DLS.get current <> None

let start ?window () =
  let t = create ?window () in
  Domain.DLS.set current (Some t);
  t

let stop () =
  let t = Domain.DLS.get current in
  Domain.DLS.set current None;
  t

let with_current f = match Domain.DLS.get current with None -> () | Some t -> f t

(* Ambient hooks used from the hierarchy: no-ops with no sink installed. *)
let count name ~at = with_current (fun t -> counter_incr t name ~at)
let add name ~at by = with_current (fun t -> counter_add t name ~at by)
let alloc name ~at = with_current (fun t -> occupancy_alloc t name ~at)
let free name ~at = with_current (fun t -> occupancy_free t name ~at)
let sample name ~at v = with_current (fun t -> histogram_observe t name ~at v)

(* == Deterministic views ================================================ *)

let sorted_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.metrics [] |> List.sort compare

let sorted_windows (w : windowed) =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) w [] |> List.sort compare

let counter_series t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Counter w) -> sorted_windows w
  | _ -> []

(* Per-window (allocs, frees, level-at-window-end); level integrates the
   deltas over all windows up to and including each listed one. *)
let occupancy_series t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Occupancy { allocs; frees }) ->
    let touched = Hashtbl.create 16 in
    Hashtbl.iter (fun k _ -> Hashtbl.replace touched k ()) allocs;
    Hashtbl.iter (fun k _ -> Hashtbl.replace touched k ()) frees;
    let windows =
      Hashtbl.fold (fun k () acc -> k :: acc) touched [] |> List.sort compare
    in
    let level = ref 0 in
    List.map
      (fun wi ->
        let a = match Hashtbl.find_opt allocs wi with Some r -> !r | None -> 0 in
        let f = match Hashtbl.find_opt frees wi with Some r -> !r | None -> 0 in
        level := !level + a - f;
        wi, a, f, !level)
      windows
  | _ -> []

let histogram_windows t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Histogram h) ->
    Hashtbl.fold (fun k hw acc -> (k, hw) :: acc) h []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  | _ -> []

let histogram_total_buckets t name =
  let acc = Array.make (max_buckets + 1) 0 in
  List.iter
    (fun (_, hw) -> Array.iteri (fun i c -> acc.(i) <- acc.(i) + c) hw.buckets)
    (histogram_windows t name);
  acc

let counter_total t name = List.fold_left (fun a (_, v) -> a + v) 0 (counter_series t name)

let histogram_totals t name =
  List.fold_left
    (fun (c, s) (_, hw) -> c + hw.count, s + hw.sum)
    (0, 0) (histogram_windows t name)

(* Counter tracks for the Perfetto exporter: one point per touched window,
   stamped at the window's end cycle. *)
let counter_tracks t =
  List.concat_map
    (fun name ->
      match Hashtbl.find_opt t.metrics name with
      | Some (Counter _) ->
        [ name,
          List.map (fun (wi, v) -> (wi + 1) * t.window, v) (counter_series t name) ]
      | Some (Occupancy _) ->
        [ name ^ ".level",
          List.map (fun (wi, _, _, lvl) -> (wi + 1) * t.window, lvl)
            (occupancy_series t name) ]
      | _ -> [])
    (sorted_names t)

(* == Exporters ========================================================== *)

let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

(* Metric names carry dots (component paths); Prometheus wants [a-zA-Z0-9_:]. *)
let prom_name name =
  String.map (fun c ->
    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let to_prometheus t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun name ->
      let pn = prom_name name in
      match Hashtbl.find_opt t.metrics name with
      | Some (Counter _) ->
        buf_addf buf "# TYPE %s counter\n" pn;
        buf_addf buf "%s_total %d\n" pn (counter_total t name)
      | Some (Occupancy _) ->
        let series = occupancy_series t name in
        let final = match List.rev series with (_, _, _, l) :: _ -> l | [] -> 0 in
        let peak = List.fold_left (fun m (_, _, _, l) -> max m l) 0 series in
        buf_addf buf "# TYPE %s gauge\n" pn;
        buf_addf buf "%s %d\n" pn final;
        buf_addf buf "# TYPE %s_peak gauge\n" pn;
        buf_addf buf "%s_peak %d\n" pn peak
      | Some (Histogram _) ->
        let count, sum = histogram_totals t name in
        let buckets = histogram_total_buckets t name in
        buf_addf buf "# TYPE %s histogram\n" pn;
        let cum = ref 0 in
        Array.iteri
          (fun b c ->
            if c > 0 then begin
              cum := !cum + c;
              let le = if b = 0 then 0 else (1 lsl b) - 1 in
              buf_addf buf "%s_bucket{le=\"%d\"} %d\n" pn le !cum
            end)
          buckets;
        buf_addf buf "%s_bucket{le=\"+Inf\"} %d\n" pn count;
        buf_addf buf "%s_sum %d\n" pn sum;
        buf_addf buf "%s_count %d\n" pn count
      | None -> ())
    (sorted_names t);
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "metric,kind,window,field,value\n";
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.metrics name with
      | Some (Counter _) ->
        List.iter
          (fun (wi, v) -> buf_addf buf "%s,counter,%d,count,%d\n" name wi v)
          (counter_series t name)
      | Some (Occupancy _) ->
        List.iter
          (fun (wi, a, f, lvl) ->
            buf_addf buf "%s,occupancy,%d,allocs,%d\n" name wi a;
            buf_addf buf "%s,occupancy,%d,frees,%d\n" name wi f;
            buf_addf buf "%s,occupancy,%d,level,%d\n" name wi lvl)
          (occupancy_series t name)
      | Some (Histogram _) ->
        List.iter
          (fun (wi, hw) ->
            buf_addf buf "%s,histogram,%d,count,%d\n" name wi hw.count;
            buf_addf buf "%s,histogram,%d,sum,%d\n" name wi hw.sum)
          (histogram_windows t name)
      | None -> ())
    (sorted_names t);
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 4096 in
  buf_addf buf "{\n  \"window_cycles\": %d" t.window;
  let counters =
    List.filter
      (fun n -> match Hashtbl.find_opt t.metrics n with Some (Counter _) -> true | _ -> false)
      (sorted_names t)
  and occs =
    List.filter
      (fun n -> match Hashtbl.find_opt t.metrics n with Some (Occupancy _) -> true | _ -> false)
      (sorted_names t)
  and hists =
    List.filter
      (fun n -> match Hashtbl.find_opt t.metrics n with Some (Histogram _) -> true | _ -> false)
      (sorted_names t)
  in
  buf_addf buf ",\n  \"counters\": {";
  List.iteri
    (fun i name ->
      buf_addf buf "%s\n    \"%s\": [%s]" (if i = 0 then "" else ",") name
        (String.concat ", "
           (List.map (fun (wi, v) -> Printf.sprintf "[%d, %d]" wi v) (counter_series t name))))
    counters;
  buf_addf buf "%s},\n  \"occupancy\": {" (if counters = [] then "" else "\n  ");
  List.iteri
    (fun i name ->
      buf_addf buf "%s\n    \"%s\": [%s]" (if i = 0 then "" else ",") name
        (String.concat ", "
           (List.map
              (fun (wi, a, f, lvl) -> Printf.sprintf "[%d, %d, %d, %d]" wi a f lvl)
              (occupancy_series t name))))
    occs;
  buf_addf buf "%s},\n  \"histograms\": {" (if occs = [] then "" else "\n  ");
  List.iteri
    (fun i name ->
      let count, sum = histogram_totals t name in
      let buckets = histogram_total_buckets t name in
      let bucket_rows = ref [] in
      Array.iteri
        (fun b c -> if c > 0 then bucket_rows := Printf.sprintf "[%d, %d]" (bucket_lo b) c :: !bucket_rows)
        buckets;
      buf_addf buf "%s\n    \"%s\": {\"count\": %d, \"sum\": %d, \"buckets\": [%s], \"windows\": [%s]}"
        (if i = 0 then "" else ",") name count sum
        (String.concat ", " (List.rev !bucket_rows))
        (String.concat ", "
           (List.map
              (fun (wi, hw) -> Printf.sprintf "[%d, %d, %d]" wi hw.count hw.sum)
              (histogram_windows t name))))
    hists;
  buf_addf buf "%s}\n}\n" (if hists = [] then "" else "\n  ");
  Buffer.contents buf
