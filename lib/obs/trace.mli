(** Cycle-stamped structured event tracing across the memory hierarchy.

    A single global sink is installed with {!start} (or {!with_trace}) and
    records typed events into a bounded ring buffer.  Emission points guard
    with {!enabled} so that an untraced run performs no extra allocation and
    no extra work beyond one ref read per potential event; tracing itself
    never changes simulated timing — events carry cycle stamps the model
    already computed, so cycle counts are bit-identical with tracing on and
    off.

    Events map onto one {e track} per component ([l1.0], [fu.0.q],
    [fu.0.fshr3], [port.l1.0], [l2], [l2.mem], [dram], ...); {!Perfetto}
    renders each track as a named thread so runs open directly in
    [ui.perfetto.dev], and {!Latency} matches request start/end events into
    per-class latency histograms. *)

(** {1 Event taxonomy} *)

type wb = Clean | Flush  (** Writeback flavour of a CBO request. *)

type chan = Ch_a | Ch_b | Ch_c | Ch_d  (** TileLink channel. *)

type l1_op =
  | Load_hit
  | Load_miss
  | Load_forward  (** load serviced from an FSHR's filled data buffer (§5.3) *)
  | Load_nack
  | Store_hit
  | Store_miss
  | Store_upgrade  (** Branch → Trunk refill *)
  | Store_nack
  | Evict_clean
  | Evict_dirty
  | Probe_handled
  | Skip_drop  (** §6.1 skip-bit elision: the CBO completed without an FSHR *)
  | Cbo_coalesced

(** Fig. 7 FSHR FSM states, stamped as the walk passes through them. *)
type fshr_state =
  | Fs_meta_write
  | Fs_fill_buffer
  | Fs_release_data
  | Fs_release
  | Fs_release_ack

type fshr_op = Fshr_alloc | Fshr_step of fshr_state | Fshr_free

type q_op = Q_enqueue | Q_dequeue | Q_coalesce

type chan_op = Beats of int | Stall of int

type msg_op = Msg_acquire | Msg_release | Msg_root_release | Msg_root_inval | Msg_probe

type l2_op =
  | L2_hit
  | L2_miss
  | L2_probe
  | L2_release
  | L2_root_release
  | L2_root_inval
  | L2_writeback
  | L2_trivial_skip
  | L2_evict

type mem_op = Mem_read | Mem_write | Mem_persist | Mem_hit | Mem_miss | Mem_evict

type dram_op = Dram_read | Dram_write

type res_op = Res_alloc | Res_free

(** Request classes measured end-to-end by {!Latency}.  [Cls_serve] spans a
    serving-engine request from enqueue (arrival) to persist-complete (its
    group-commit epoch's fence); [Cls_fleet] spans a fleet request from
    intended arrival at the router to fleet-wide acknowledgement (every
    executed replica's epoch committed). *)
type cls =
  | Cls_load_miss
  | Cls_store_miss
  | Cls_cbo_clean
  | Cls_cbo_flush
  | Cls_writeback
  | Cls_serve
  | Cls_fleet

val all_classes : cls list
val cls_name : cls -> string

type event =
  | L1 of { core : int; op : l1_op; addr : int }
  | Fshr of { core : int; idx : int; op : fshr_op; addr : int; kind : wb }
  | Flushq of { name : string; op : q_op; addr : int; kind : wb }
  | Resource of { comp : string; idx : int; op : res_op }
      (** MSHR-style occupancy: one [Res_alloc]/[Res_free] pair per tenancy. *)
  | Channel of { port : string; chan : chan; op : chan_op }
  | Message of { port : string; op : msg_op; addr : int }
  | L2 of { op : l2_op; addr : int }
  | Mem of { name : string; op : mem_op; addr : int }
  | Dram of { op : dram_op; addr : int }
  | Req_start of { id : int; cls : cls; core : int; addr : int }
  | Req_end of { id : int }
  | Meta of { track : string; note : string }
      (** Declares a track so it renders even with no events. *)

val track : event -> string
(** The component track the event belongs to. *)

val event_name : event -> string
val event_args : event -> (string * string) list

(** {1 Ring buffer} *)

type record = { at : int; ev : event }

type t

val default_capacity : int
(** 65536 records. *)

val create : ?capacity:int -> ?filter:string list -> ?reqs_only:bool -> unit -> t
(** A detached buffer (not installed as the sink).  [filter] is a list of
    track prefixes to keep; empty keeps everything.  With [reqs_only],
    only {!req_start}/{!req_end} spans are recorded once installed:
    {!enabled} reports [false], so detail emission sites skip event
    construction entirely — the cheap tracing mode the bench harness uses
    for its latency histograms. *)

val capacity : t -> int

val length : t -> int
(** Live records (at most [capacity]). *)

val dropped : t -> int
(** Records overwritten after the ring wrapped. *)

val records : t -> record list
(** Oldest-first snapshot of the live records. *)

val iter : t -> (record -> unit) -> unit
val fold : t -> 'a -> ('a -> record -> 'a) -> 'a

val add : t -> at:int -> event -> unit
(** Record directly into a buffer (respects its filter). *)

(** {1 The installed sink} *)

val enabled : unit -> bool
(** True while a sink that records detail events is installed ([false] for
    a [reqs_only] sink).  Emission sites must guard event construction
    with this so the disabled path allocates nothing. *)

val start : ?capacity:int -> ?filter:string list -> ?reqs_only:bool -> unit -> t
(** Install a fresh sink (replacing any previous one) and return it. *)

val stop : unit -> t option
(** Uninstall and return the sink, if one was installed. *)

val emit : at:int -> event -> unit
(** Record into the installed sink; no-op when disabled. *)

val req_start : at:int -> cls:cls -> core:int -> addr:int -> int
(** Open a request span, returning the id to close it with.  Returns [-1]
    (and records nothing) when disabled. *)

val req_end : at:int -> int -> unit
(** Close a request span opened by {!req_start}; no-op on id [-1]. *)

val with_trace : ?capacity:int -> ?filter:string list -> (unit -> 'a) -> 'a * t
(** [with_trace f] installs a sink around [f] and returns its buffer;
    the sink is uninstalled even if [f] raises. *)
