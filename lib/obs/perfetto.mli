(** Chrome trace-event JSON export (loadable in [ui.perfetto.dev]).

    One named thread per component track, thread-scoped instant events for
    plain trace records, and complete ("X") slices for matched request
    start/end pairs on one [req.<class>] track per class.  Entries are
    written in non-decreasing timestamp order and track numbering is
    deterministic (sorted by name), so identical traces export identical
    bytes. *)

val tracks : Trace.t -> string list
(** Distinct track names the trace would render, sorted. *)

val to_string : Trace.t -> string
val to_buffer : Buffer.t -> Trace.t -> unit
val write_channel : out_channel -> Trace.t -> unit
val write_file : string -> Trace.t -> unit
