(** Chrome trace-event JSON export (loadable in [ui.perfetto.dev]).

    One named thread per component track, thread-scoped instant events for
    plain trace records, and complete ("X") slices for matched request
    start/end pairs on one [req.<class>] track per class.  Entries are
    written in non-decreasing timestamp order and track numbering is
    deterministic (sorted by name), so identical traces export identical
    bytes. *)

val tracks : Trace.t -> string list
(** Distinct track names the trace would render, sorted. *)

(** [?counters] adds Perfetto counter tracks ("C" phase): one series per
    name with [(cycle, value)] points — the shape {!Metrics.counter_tracks}
    produces. *)

val to_string : ?counters:(string * (int * int) list) list -> Trace.t -> string
val to_buffer : ?counters:(string * (int * int) list) list -> Buffer.t -> Trace.t -> unit
val write_channel : ?counters:(string * (int * int) list) list -> out_channel -> Trace.t -> unit

val write_file : ?counters:(string * (int * int) list) list -> string -> Trace.t -> unit
(** Also warns on stderr when the ring buffer wrapped during recording
    (the export is missing its oldest events). *)
