(** The flush unit's request queue (§5.2) with the interference bookkeeping
    of §5.4.

    Entries snapshot the cache-line state (hit?, dirty?) at enqueue time so
    the FSHR need not re-read the metadata array at dequeue.  Because an
    unspecified amount of time passes between enqueue and dequeue, probes
    from other cores (§5.4.1) and evictions by the MSHRs (§5.4.2) must be
    able to {e invalidate} pending entries — downgrade their snapshot — so
    the request is executed with valid metadata.  Dependent CBO.X requests
    may {e coalesce} with a pending entry of the same kind to the same line
    (§5.3), eliding redundant writebacks already in hardware. *)

open Skipit_tilelink

type entry = {
  addr : int;  (** Line base address. *)
  kind : Message.wb_kind;
  mutable hit : bool;
  mutable dirty : bool;
  enq_at : int;
  mutable coalesced : int;  (** Later CBO.X merged into this entry. *)
}

type t

val create : ?name:string -> depth:int -> unit -> t
(** [name] labels the queue's observability track (default ["flushq"];
    the flush unit uses ["fu.<core>.q"]). *)

val name : t -> string
val depth : t -> int

(** Map a TileLink writeback kind onto its trace-event encoding. *)
val trace_kind : Skipit_tilelink.Message.wb_kind -> Skipit_obs.Trace.wb
val length : t -> int
val is_empty : t -> bool
val is_full : t -> bool

val enqueue : t -> entry -> bool
(** [false] when full — the data cache must nack the LSU (§5.2). *)

val dequeue : t -> entry option
(** FIFO head, for FSHR allocation. *)

val peek : t -> entry option

val probe_invalidate : t -> addr:int -> cap:Perm.t -> unit
(** §5.4.1 [probe_invalidate] signal: a coherence probe capping the line to
    [cap] resets the hit and/or dirty bits of every pending entry for that
    line (to [Nothing]: line gone, clear both; to [Branch]: dirty data was
    handed over, clear dirty). *)

val evict_invalidate : t -> addr:int -> unit
(** §5.4.2: the line was evicted by the MSHRs; pending entries lose hit and
    dirty. *)

val find_coalescible : t -> addr:int -> kind:Message.wb_kind -> entry option
(** A pending entry the new request may merge with: same line, same kind
    (§5.3 allows clean-with-clean and flush-with-flush only). *)

val record_coalesce : entry -> unit

val to_list : t -> entry list
(** Head first. *)
