(** The SonicBOOM L1 data cache (§3.3) extended with the flush unit (§5) and
    the Skip-It bit (§6).

    One instance per core.  Entry points take the cycle [now] at which the
    LSU fires the request and return the completion time computed by the
    transaction-level model (hits, MSHR-mediated refills including victim
    eviction through the writeback unit, CBO.X through the flush unit, and
    coherence probes from the L2).

    Skip-bit maintenance (§6.1/§6.2):
    - install on Grant: skip := ¬GrantDataDirty;
    - CBO.CLEAN writeback completed: skip := true (the line is persisted);
    - probe that extracts dirty data: skip := false (the L2 copy is now
      dirty);
    - stores set the dirty bit, rendering the skip bit temporarily invalid
      (§6.2's definition of validity) without changing it.

    The bit is maintained unconditionally; [Params.skip_it] only gates the
    fast-drop of redundant writebacks, so the ablation benches compare pure
    policy. *)

open Skipit_tilelink
open Skipit_cache

type line = {
  mutable perm : Perm.t;
  mutable dirty : bool;
  mutable skip : bool;
  data : int array;
}
(** Snapshot of a line's state (see {!line_state}); the live state is kept
    struct-of-arrays internally, so mutating a snapshot has no effect on
    the cache. *)

type t

val create : Params.t -> core:int -> port:Port.t -> t
(** [create p ~core ~port] builds the cache and binds it as the {e client}
    agent of [port]: all A/C-channel traffic (Acquire, Release, RootRelease,
    RootInval) leaves through the port, and the port's manager (the L2)
    reaches back in via B-channel probes.  The manager side is connected
    separately by the system builder. *)

val core : t -> int
val params : t -> Params.t

val load : t -> addr:int -> now:int -> int * int
(** [(value, done_at)].  Handles §5.3 interactions with pending writebacks:
    forwarding from a filled FSHR buffer, or nack-stall until the FSHR
    completes.  Convenience wrapper over {!load_word}. *)

val load_word : t -> addr:int -> now:int -> int
(** Allocation-free {!load}: returns the value and parks the completion
    time in the {!done_at} scratch slot.  An L1 hit performs zero
    minor-heap allocation on this path — the property the bench's
    [--profile] gate pins. *)

val store : t -> addr:int -> value:int -> now:int -> int
(** Completion time.  Applies the §5.3 store conditions against pending
    writebacks before proceeding. *)

val cas : t -> addr:int -> expected:int -> desired:int -> now:int -> bool * int
(** Atomic compare-and-swap (AMO); acquires write permission like a store.
    Convenience wrapper over {!cas_word}. *)

val cas_word : t -> addr:int -> expected:int -> desired:int -> now:int -> bool
(** Allocation-free {!cas}: returns success and parks the completion time
    in {!done_at}. *)

val done_at : t -> int
(** Completion cycle of the most recent {!load_word}/{!cas_word} on this
    cache.  Only meaningful immediately after one of those calls (the
    simulator is single-threaded per system, so there is no race). *)

type cbo_result = {
  commit_at : int;  (** When the instruction leaves the STQ (committable). *)
  ack_at : int;  (** When the writeback is persisted (RootReleaseAck). *)
  dropped : [ `Skip_bit | `Coalesced | `Executed ];
}

val cbo : t -> addr:int -> kind:Message.wb_kind -> now:int -> cbo_result
(** CBO.CLEAN / CBO.FLUSH. *)

val cbo_inval : t -> addr:int -> now:int -> int
(** CBO.INVAL (CMO spec): discard every cached copy of the line — local L1,
    other L1s and the L2 — without writing anything back.  Dirty data is
    forfeited by definition.  Returns completion time (synchronous: the
    invalidation is a coherence action, not a buffered writeback). *)

val cbo_zero : t -> addr:int -> now:int -> int
(** CBO.ZERO (CMO spec): obtain write permission and set the whole line to
    zero, leaving it dirty in the L1. *)

val fence : t -> now:int -> int
(** FENCE RW,RW extended per §5.3: commits only once the flush counter
    reaches zero; returns completion time. *)

val handle_probe : t -> addr:int -> cap:Perm.t -> now:int -> Port.probe_result
(** Channel-B probe from the L2: blocks on [flush_rdy] (§5.4.1), downgrades
    the line, hands back dirty data.  Reached through the port's client
    binding in normal operation; exposed for direct-drive tests. *)

val peek_word : t -> int -> int
(** Functional read through this cache (falls back to L2/DRAM). *)

val line_state : t -> int -> line option
(** Metadata snapshot of the line, if present (tests). *)

val held_lines : t -> (int * Perm.t) list
(** All (line address, permission) pairs — for inclusion checking. *)

val flush_unit : t -> Flush_unit.t
val port : t -> Port.t
val stats : t -> Skipit_sim.Stats.Registry.t

val mshrs : t -> Skipit_sim.Resource.t
(** MSHR occupancy tracker (audit/conservation checks). *)

val wbu : t -> Skipit_sim.Resource.t
(** Writeback-unit occupancy tracker (audit/conservation checks). *)

val crash : t -> unit
(** Volatile contents vanish, and so do all in-flight requests: MSHR, WBU
    and flush-unit occupancy are reset so a subsequent run on the same
    system starts with empty machinery (no leaked units). *)
