open Skipit_tilelink
module Trace = Skipit_obs.Trace
module Metrics = Skipit_obs.Metrics

type entry = {
  addr : int;
  kind : Message.wb_kind;
  mutable hit : bool;
  mutable dirty : bool;
  enq_at : int;
  mutable coalesced : int;
}

type t = { name : string; depth : int; q : entry Queue.t }

let create ?(name = "flushq") ~depth () =
  if depth < 0 then invalid_arg "Flush_queue.create: negative depth";
  { name; depth; q = Queue.create () }

let name t = t.name
let depth t = t.depth
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let is_full t = Queue.length t.q >= t.depth

let trace_kind = function
  | Message.Wb_clean -> Trace.Clean
  | Message.Wb_flush -> Trace.Flush

let enqueue t entry =
  if is_full t then false
  else begin
    Queue.add entry t.q;
    if Trace.enabled () then
      Trace.emit ~at:entry.enq_at
        (Trace.Flushq
           { name = t.name; op = Trace.Q_enqueue; addr = entry.addr; kind = trace_kind entry.kind });
    if Metrics.enabled () then Metrics.count (t.name ^ ".enqueues") ~at:entry.enq_at;
    true
  end

let dequeue t = Queue.take_opt t.q
let peek t = Queue.peek_opt t.q

let probe_invalidate t ~addr ~cap =
  Queue.iter
    (fun e ->
      if e.addr = addr then begin
        (match cap with
         | Perm.Nothing ->
           e.hit <- false;
           e.dirty <- false
         | Perm.Branch -> e.dirty <- false
         | Perm.Trunk -> ())
      end)
    t.q

let evict_invalidate t ~addr = probe_invalidate t ~addr ~cap:Perm.Nothing

let find_coalescible t ~addr ~kind =
  let found = ref None in
  Queue.iter
    (fun e -> if !found = None && e.addr = addr && e.kind = kind then found := Some e)
    t.q;
  !found

let record_coalesce entry = entry.coalesced <- entry.coalesced + 1

let to_list t = List.of_seq (Queue.to_seq t.q)
