(** The timed flush unit (§5.2, Fig. 6): flush queue + FSHRs + flush counter.

    One instance lives in each L1 data cache.  The data cache performs the
    metadata lookup and the Skip-It fast drop; everything that happens after
    a CBO.X is accepted — buffering, back-pressure when the queue is full,
    FSHR allocation, walking the Fig. 7 FSM, sending the RootRelease and
    waiting for its ack — is computed here.

    The timing model is transactional: a submitted request's whole schedule
    (commit, FSHR allocation, buffer fill, release, ack) is computed at
    submit time from current resource occupancy; the resulting {!pending}
    record then answers the §5.3 interaction queries (may a dependent load
    forward? when may a dependent store proceed? when must a probe wait for
    [flush_rdy]?) and the fence query backed by the flush counter. *)

open Skipit_tilelink
open Skipit_cache

type pending = {
  entry : Flush_queue.entry;
      (** Bookkeeping snapshot (mutable hit/dirty for §5.4 invalidations). *)
  commit_at : int;  (** When the instruction is committable (buffered). *)
  alloc_at : int;  (** FSHR allocation (dequeue) time. *)
  meta_write_at : int option;
      (** [Some t] iff the request rewrites the line metadata, at [t] — the
          point after which its line state has changed (bounds coalescing,
          §5.3). *)
  buffer_ready_at : int option;  (** [Some t] iff the data buffer is filled, at [t]. *)
  release_at : int;  (** RootRelease sent; [flush_rdy] raised hereafter. *)
  ack_at : int;  (** RootReleaseAck received; FSHR freed. *)
}

type submit_result =
  | Coalesced of { commit_at : int; ack_at : int }
      (** Merged with a pending request of the same kind to the same line
          (§5.3); the instruction commits immediately and its completion
          rides on the pending writeback. *)
  | Accepted of pending

type t

val create : Params.t -> core:int -> t

val submit :
  t ->
  addr:int ->
  kind:Message.wb_kind ->
  hit:bool ->
  dirty:bool ->
  line_data:int array option ->
  last_line_change:int ->
  now:int ->
  apply_meta:(Fshr_fsm.meta_effect -> unit) ->
  send:(data:int array option -> now:int -> int) ->
  submit_result
(** [submit] a CBO.X that reached the data cache at [now] with the given
    metadata snapshot.  [line_data] must be [Some] iff [hit && dirty] (the
    dirty line captured for the data buffer).  [last_line_change] is the
    last cycle the line's state was mutated — coalescing is legal only with
    entries enqueued after that (§5.3).  [apply_meta] applies the Fig. 7
    metadata effect; [send ~data ~now] performs the RootRelease against the
    L2 and returns the ack arrival time. *)

val find_pending : t -> addr:int -> now:int -> pending option
(** The in-flight request for this line, if any (queue or FSHR). *)

(** §5.3 load rule for an L1 miss on a line with a pending writeback. *)
type load_conflict =
  | Load_no_conflict
  | Load_forward of int  (** Forward from the FSHR data buffer, ready at [t]. *)
  | Load_wait of int  (** Nacked until [t] (buffer unfilled / FSHR busy). *)

val load_conflict : t -> addr:int -> now:int -> load_conflict

val store_proceed_at : t -> addr:int -> now:int -> int option
(** §5.3 store rule: [Some t] when a pending writeback forces the store to
    wait until [t] ([t = now] if the clean-with-filled-buffer conditions
    already hold); [None] when there is no pending writeback on the line. *)

val probe_block_until : t -> addr:int -> cap:Perm.t -> now:int -> int
(** §5.4.1: the earliest time a coherence probe of [addr] may proceed —
    [now] unless an FSHR holds the line with [flush_rdy] low (allocated but
    not yet past the release), in which case the probe waits for
    [release_at].  Also applies [probe_invalidate] to queued entries. *)

val evict_block_until : t -> addr:int -> now:int -> int
(** §5.4.2: same interlock for MSHR-driven evictions ([wb_rdy]/[flush_rdy]);
    invalidates queued entries for the line. *)

val fence_ready_at : t -> now:int -> int
(** Flush counter (§5.2/§5.3): earliest time with no pending writebacks —
    fences may only commit once this has passed. *)

val outstanding : t -> now:int -> int
(** Pending writebacks (the flush counter's value) at [now]. *)

val fshrs : t -> Skipit_sim.Resource.t
(** The FSHR occupancy tracker (audit/conservation checks). *)

val queue_occupants : t -> int
(** Requests admitted to the flush queue and not yet dequeued into an FSHR
    (0 when the queue has no buffering). *)

val crash : t -> unit
(** Power failure: drop every pending request and reset FSHR occupancy,
    queue admissions and booked entries, so a subsequent run on the same
    system starts from empty flush machinery. *)

val note_skip_drop : t -> unit
(** Record a Skip-It fast drop (the request never reached the queue). *)

val stats : t -> Skipit_sim.Stats.Registry.t
(** ["submitted"], ["coalesced"], ["skip_dropped"], ["fshr_allocs"],
    ["wb_with_data"], ["wb_without_data"]. *)
