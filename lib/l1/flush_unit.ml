open Skipit_sim
open Skipit_tilelink
open Skipit_cache
module Trace = Skipit_obs.Trace
module Attr = Skipit_obs.Attribution
module Metrics = Skipit_obs.Metrics

type pending = {
  entry : Flush_queue.entry;
  commit_at : int;
  alloc_at : int;
  meta_write_at : int option;
  buffer_ready_at : int option;
  release_at : int;
  ack_at : int;
}

type submit_result =
  | Coalesced of { commit_at : int; ack_at : int }
  | Accepted of pending

(* Live pendings sit in an intrusive doubly-linked list in submission
   order (oldest first, matching the order conflict queries expect), so
   retirement is an O(1) unlink driven by the event wheel instead of the
   v1 [List.filter] rescan on every query. *)
type pnode = {
  pend : pending;
  mutable pprev : pnode option;
  mutable pnext : pnode option;
}

type t = {
  p : Params.t;
  core : int;
  fshrs : Resource.t;
  (* Queue-slot back-pressure (§5.2): a request may enqueue only once the
     request [flush_queue_depth] positions earlier was dequeued. *)
  admission : Admission.t option;  (* None when depth = 0 (no buffering) *)
  (* All requests whose ack is still outstanding, oldest first.  Doubles as
     the flush counter (§5.2) and the §5.3/§5.4 conflict-check structure;
     the wheel retires each node when the clock passes its [ack_at]. *)
  mutable phead : pnode option;
  mutable ptail : pnode option;
  mutable pcount : int;
  wheel : pnode Event_wheel.t;
  book : Flush_queue.t;  (** Bookkeeping mirror of queued entries for tests. *)
  stats : Stats.Registry.t;
}

let create p ~core =
  {
    p;
    core;
    fshrs = Resource.create ~count:p.Params.n_fshrs (Printf.sprintf "fshr-%d" core);
    admission =
      (if p.Params.flush_queue_depth > 0 then
         Some (Admission.create ~capacity:p.Params.flush_queue_depth)
       else None);
    phead = None;
    ptail = None;
    pcount = 0;
    wheel = Event_wheel.create ();
    book =
      Flush_queue.create
        ~name:(Printf.sprintf "fu.%d.q" core)
        ~depth:(max 1 p.Params.flush_queue_depth) ();
    stats = Stats.Registry.create ();
  }

let stats t = t.stats
let note_skip_drop t = Stats.Registry.incr t.stats "skip_dropped"

let append_pending t pend =
  let n = { pend; pprev = t.ptail; pnext = None } in
  (match t.ptail with
   | Some tail -> tail.pnext <- Some n
   | None -> t.phead <- Some n);
  t.ptail <- Some n;
  t.pcount <- t.pcount + 1;
  ignore (Event_wheel.insert t.wheel ~at:pend.ack_at n)

let unlink_pending t n =
  (match n.pprev with
   | Some p -> p.pnext <- n.pnext
   | None -> t.phead <- n.pnext);
  (match n.pnext with
   | Some nx -> nx.pprev <- n.pprev
   | None -> t.ptail <- n.pprev);
  n.pprev <- None;
  n.pnext <- None;
  t.pcount <- t.pcount - 1

(* Allocation-free fold over the live pendings, oldest first. *)
let fold_pendings t ~init f =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f acc n.pend) n.pnext
  in
  go init t.phead

let exists_pending t f =
  let rec go = function
    | None -> false
    | Some n -> f n.pend || go n.pnext
  in
  go t.phead

let first_pending t f =
  let rec go = function
    | None -> None
    | Some n -> if f n.pend then Some n.pend else go n.pnext
  in
  go t.phead

(* Retire completed requests from the conflict structures. *)
let prune t ~now =
  Event_wheel.advance t.wheel ~now (fun n -> unlink_pending t n);
  let rec drop_booked () =
    match Flush_queue.peek t.book with
    | Some e when not (exists_pending t (fun p -> p.entry == e && p.alloc_at > now)) ->
      ignore (Flush_queue.dequeue t.book);
      drop_booked ()
    | Some _ | None -> ()
  in
  drop_booked ()

let find_pending t ~addr ~now =
  prune t ~now;
  first_pending t (fun p -> p.entry.Flush_queue.addr = addr)

(* The §5.3 coalescing partner: a request of the same kind to the same
   line, still PENDING IN THE FLUSH QUEUE (not yet dequeued into an FSHR —
   once the FSHR starts, its metadata write is a state change of its own),
   with the cache-line state unchanged since it was enqueued.  This makes
   coalescing self-regulating: when the FSHRs keep up, requests leave the
   queue immediately and nothing merges; when they back up, same-line
   requests pile onto the queued entry — exactly the burst-absorbing
   behaviour §5.2 describes. *)
let find_coalescible t ~addr ~kind ~last_line_change ~now =
  prune t ~now;
  first_pending t (fun p ->
    p.entry.Flush_queue.addr = addr
    && p.entry.Flush_queue.kind = kind
    && p.alloc_at > now
    && p.entry.Flush_queue.enq_at >= last_line_change)

(* Fig. 7 FSM states as trace events ([Invalid] is not a resident state). *)
let trace_state = function
  | Fshr_fsm.Meta_write -> Some Trace.Fs_meta_write
  | Fshr_fsm.Fill_buffer -> Some Trace.Fs_fill_buffer
  | Fshr_fsm.Root_release_data -> Some Trace.Fs_release_data
  | Fshr_fsm.Root_release -> Some Trace.Fs_release
  | Fshr_fsm.Root_release_ack -> Some Trace.Fs_release_ack
  | Fshr_fsm.Invalid -> None

let submit_fresh t ~addr ~kind ~hit ~dirty ~line_data ~now ~apply_meta ~send =
  assert (Option.is_some line_data = (hit && dirty));
  let depth = t.p.Params.flush_queue_depth in
  (* A full queue nacks the LSU, which retries — modelled as the stall
     until the oldest buffered request is dequeued into an FSHR. *)
  let enq_at =
    match t.admission with Some a -> Admission.admit a ~now | None -> now
  in
  Attr.mark Attr.Flushq_wait ~at:enq_at;
  let plan = { Fshr_fsm.hit; dirty; kind } in
  let entry =
    { Flush_queue.addr; kind; hit; dirty; enq_at; coalesced = 0 }
  in
  ignore (Flush_queue.enqueue t.book entry);
  Stats.Registry.incr t.stats "fshr_allocs";
  let tkind = Flush_queue.trace_kind kind in
  let fshr_ev ~at ~idx op =
    Trace.emit ~at (Trace.Fshr { core = t.core; idx; op; addr; kind = tkind })
  in
  (* FSHR allocation and the Fig. 7 walk.  The FSHR is occupied from
     dequeue until the RootReleaseAck returns (root_release_ack state). *)
  let buffer_ready = ref None in
  let meta_write = ref None in
  let release_time = ref 0 in
  let ack_time = ref 0 in
  (* The FSHR walk (and the root-release it sends) drains in the background
     after the CBO commits at [enq_at]; its future-dated completion times
     must not advance the attribution cursor of the issuing request. *)
  let saved_frame = Attr.suspend () in
  let _, fshr_alloc_at, _ =
    Resource.acquire_dyn_idx t.fshrs ~now:enq_at (fun ~idx alloc_at ->
      if Metrics.enabled () then begin
        Metrics.alloc (Printf.sprintf "fu.%d.fshr" t.core) ~at:alloc_at;
        Metrics.count (Printf.sprintf "fu.%d.dequeues" t.core) ~at:alloc_at
      end;
      if Trace.enabled () then begin
        Trace.emit ~at:alloc_at
          (Trace.Flushq
             { name = Flush_queue.name t.book; op = Trace.Q_dequeue; addr; kind = tkind });
        fshr_ev ~at:alloc_at ~idx Trace.Fshr_alloc
      end;
      let meta_cycles = t.p.Params.l1_meta_access in
      let fill_cycles = Params.fill_buffer_cycles t.p in
      let data_beats = Params.data_beats t.p in
      let tm = ref alloc_at in
      List.iter
        (fun state ->
          (match state with
           | Fshr_fsm.Meta_write ->
             meta_write := Some (!tm + meta_cycles);
             apply_meta (Fshr_fsm.meta_effect plan)
           | Fshr_fsm.Fill_buffer -> buffer_ready := Some (!tm + fill_cycles)
           | Fshr_fsm.Invalid | Fshr_fsm.Root_release_data | Fshr_fsm.Root_release
           | Fshr_fsm.Root_release_ack -> ());
          (if Trace.enabled () then
             match trace_state state with
             | Some s -> fshr_ev ~at:!tm ~idx (Trace.Fshr_step s)
             | None -> ());
          tm := !tm + Fshr_fsm.state_cycles state ~meta_cycles ~fill_cycles ~data_beats)
        (Fshr_fsm.path plan);
      release_time := !tm;
      let data = if Fshr_fsm.sends_data plan then line_data else None in
      Stats.Registry.incr t.stats (if data = None then "wb_without_data" else "wb_with_data");
      ack_time := send ~data ~now:!tm;
      if Trace.enabled () then fshr_ev ~at:!ack_time ~idx Trace.Fshr_free;
      if Metrics.enabled () then
        Metrics.free (Printf.sprintf "fu.%d.fshr" t.core) ~at:!ack_time;
      !ack_time)
  in
  Attr.restore saved_frame;
  let pending =
    {
      entry;
      commit_at = (if depth = 0 then !ack_time else enq_at);
      alloc_at = fshr_alloc_at;
      meta_write_at = !meta_write;
      buffer_ready_at = !buffer_ready;
      release_at = !release_time;
      ack_at = !ack_time;
    }
  in
  Stats.Registry.add t.stats "fshr_busy_cycles" (!ack_time - fshr_alloc_at);
  (match t.admission with
   | Some a -> Admission.release a ~at:pending.alloc_at
   | None -> ());
  append_pending t pending;
  Accepted pending

let submit t ~addr ~kind ~hit ~dirty ~line_data ~last_line_change ~now ~apply_meta ~send =
  Stats.Registry.incr t.stats "submitted";
  if t.p.Params.coalescing then begin
    match find_coalescible t ~addr ~kind ~last_line_change ~now with
    | Some partner ->
      Stats.Registry.incr t.stats "coalesced";
      Flush_queue.record_coalesce partner.entry;
      if Trace.enabled () then
        Trace.emit ~at:now
          (Trace.Flushq
             {
               name = Flush_queue.name t.book;
               op = Trace.Q_coalesce;
               addr;
               kind = Flush_queue.trace_kind kind;
             });
      Coalesced { commit_at = now; ack_at = partner.ack_at }
    | None -> submit_fresh t ~addr ~kind ~hit ~dirty ~line_data ~now ~apply_meta ~send
  end
  else submit_fresh t ~addr ~kind ~hit ~dirty ~line_data ~now ~apply_meta ~send

type load_conflict = Load_no_conflict | Load_forward of int | Load_wait of int

let load_conflict t ~addr ~now =
  match find_pending t ~addr ~now with
  | None -> Load_no_conflict
  | Some p -> (
    (* Forwarding from the FSHR's data buffer is only sound while
       [flush_rdy] is still low (before the release): probes are interlocked
       out then (§5.4.1), so the buffer provably holds the line's current
       data.  Once the release has gone out, a remote store may already have
       superseded the buffered data — the load waits for the ack and takes
       the ordinary miss path. *)
    match p.buffer_ready_at with
    | Some tb when max now tb < p.release_at -> Load_forward (max now tb)
    | Some _ | None -> Load_wait (max now p.ack_at))

let store_proceed_at t ~addr ~now =
  match find_pending t ~addr ~now with
  | None -> None
  | Some p -> (
    match p.entry.Flush_queue.kind with
    | Message.Wb_flush -> Some (max now p.ack_at)
    | Message.Wb_clean -> (
      (* Clean: may proceed once the FSHR is allocated and, if the line was
         dirty, once the data buffer is filled (§5.3). *)
      match p.buffer_ready_at with
      | Some tb -> Some (max now (max p.alloc_at tb))
      | None -> Some (max now p.alloc_at)))

let block_until t ~addr ~now =
  prune t ~now;
  fold_pendings t ~init:now (fun acc p ->
    if p.entry.Flush_queue.addr = addr && p.alloc_at <= now && p.release_at > now then
      max acc p.release_at
    else acc)

let probe_block_until t ~addr ~cap ~now =
  Flush_queue.probe_invalidate t.book ~addr ~cap;
  block_until t ~addr ~now

let evict_block_until t ~addr ~now =
  Flush_queue.evict_invalidate t.book ~addr;
  block_until t ~addr ~now

let fence_ready_at t ~now =
  prune t ~now;
  fold_pendings t ~init:now (fun acc p -> max acc p.ack_at)

let outstanding t ~now =
  prune t ~now;
  t.pcount

let fshrs t = t.fshrs
let queue_occupants t = match t.admission with Some a -> Admission.occupants a | None -> 0

let crash t =
  (* Power failure: in-flight writebacks vanish.  Every conflict/occupancy
     structure must come back empty, or the next run on this system would
     inherit phantom back-pressure (leaked FSHR units, stale queue-departure
     times, booked entries that never drain). *)
  t.phead <- None;
  t.ptail <- None;
  t.pcount <- 0;
  Event_wheel.clear t.wheel;
  let rec drain () =
    match Flush_queue.dequeue t.book with Some _ -> drain () | None -> ()
  in
  drain ();
  Resource.reset t.fshrs;
  match t.admission with Some a -> Admission.reset a | None -> ()
