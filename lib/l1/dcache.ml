open Skipit_sim
open Skipit_tilelink
open Skipit_cache
module Trace = Skipit_obs.Trace
module Attr = Skipit_obs.Attribution
module Metrics = Skipit_obs.Metrics

(* Metadata/state snapshot handed to tests; the live state is
   struct-of-arrays (below), so this record is built on demand. *)
type line = {
  mutable perm : Perm.t;
  mutable dirty : bool;
  mutable skip : bool;
  data : int array;
}

(* Per-line state lives in flat tables indexed by the tag store's slot id:
   one packed metadata byte (permission in bits 0-1, dirty bit 2, skip bit
   3) and the line's words at [id * words_per_line] of one int array.  The
   hit paths read and write these tables directly — no per-line records,
   no option returns, no allocation. *)
let perm_mask = 0b11
let dirty_bit = 0b100
let skip_bit = 0b1000

let perm_of_bits = function 0 -> Perm.Nothing | 1 -> Perm.Branch | _ -> Perm.Trunk
let bits_of_perm = function Perm.Nothing -> 0 | Perm.Branch -> 1 | Perm.Trunk -> 2

type t = {
  p : Params.t;
  core : int;
  store_arr : unit Store.t;
  meta : Bytes.t;  (* packed metadata byte, by slot id *)
  data : int array;  (* line words, [slot id * wpl + word] *)
  wpl : int;  (* words per line *)
  mshrs : Resource.t;
  wbu : Resource.t;
  port : Port.t;
  flush : Flush_unit.t;
  (* Last cycle each line's state was changed by a store, probe or eviction;
     bounds flush-queue coalescing legality (§5.3).  Int-keyed and pre-sized
     to the cache's line count: this is touched on every store and probe. *)
  last_change : Int_tbl.t;
  stats : Stats.Registry.t;
  (* Per-access counters resolved once at construction; the registry's
     string lookup is off the load/store path. *)
  c_load_hits : Stats.Counter.t;
  c_store_hits : Stats.Counter.t;
  c_load_misses : Stats.Counter.t;
  c_store_misses : Stats.Counter.t;
  (* Scratch completion time of the most recent [load_word]/[cas_word]:
     the hot API returns the payload unboxed and parks the timestamp here,
     so a hit performs zero minor-heap allocation. *)
  mutable done_at : int;
}

let core t = t.core
let params t = t.p
let flush_unit t = t.flush
let stats t = t.stats
let port t = t.port
let done_at t = t.done_at

let line_base t addr = Geometry.line_base t.p.Params.l1_geom addr
let word_off t addr = Geometry.offset_word t.p.Params.l1_geom addr
let beats t = Params.data_beats t.p

let meta_of t id = Char.code (Bytes.unsafe_get t.meta id)
let set_meta t id m = Bytes.unsafe_set t.meta id (Char.unsafe_chr m)
let line_perm t id = perm_of_bits (meta_of t id land perm_mask)
let set_perm t id p = set_meta t id (meta_of t id land lnot perm_mask lor bits_of_perm p)
let line_dirty t id = meta_of t id land dirty_bit <> 0
let line_skip t id = meta_of t id land skip_bit <> 0

let set_dirty t id b =
  let m = meta_of t id in
  set_meta t id (if b then m lor dirty_bit else m land lnot dirty_bit)

let set_skip t id b =
  let m = meta_of t id in
  set_meta t id (if b then m lor skip_bit else m land lnot skip_bit)

let word t id off = Array.unsafe_get t.data ((id * t.wpl) + off)
let set_word t id off v = Array.unsafe_set t.data ((id * t.wpl) + off) v
let copy_line t id = Array.sub t.data (id * t.wpl) t.wpl
let blit_line t id src = Array.blit src 0 t.data (id * t.wpl) t.wpl

(* Serialize [beats] of an outgoing/incoming message on a shared channel
   whose serialization time is already part of [finish]: contention-free
   sends cost nothing extra, concurrent senders queue. *)
let channel_c t ~addr ~finish ~beats = Port.send_c t.port ~addr ~finish ~beats
let channel_d t ~addr ~finish ~beats = Port.recv_d t.port ~addr ~finish ~beats

let l1_ev t ~at ~addr op =
  if Trace.enabled () then Trace.emit ~at (Trace.L1 { core = t.core; op; addr })

let note_change t ~addr ~now = Int_tbl.replace t.last_change (line_base t addr) now

let last_change t ~addr =
  Int_tbl.find_default t.last_change (line_base t addr) ~default:min_int

let find_line t addr = Store.find t.store_arr (line_base t addr)

(* Victim eviction through the writeback unit (§3.3): dirty lines release
   their data to the L2; clean lines send a permission report so the
   directory stays exact.  Honours the §5.4.2 interlock with the flush unit.
   Returns the cycle at which the slot is free for refill (the L2-side ack
   proceeds off the critical path). *)
let evict_slot t id ~now =
  let vaddr = Store.slot_addr t.store_arr id in
  let t0 = Flush_unit.evict_block_until t.flush ~addr:vaddr ~now in
  note_change t ~addr:vaddr ~now:t0;
  let perm = line_perm t id in
  let t_free =
    if line_dirty t id then begin
      Stats.Registry.incr t.stats "evictions_dirty";
      l1_ev t ~at:t0 ~addr:vaddr Trace.Evict_dirty;
      let rid = Trace.req_start ~at:t0 ~cls:Trace.Cls_writeback ~core:t.core ~addr:vaddr in
      let t_buf = Resource.acquire_finish t.wbu ~now:t0 ~busy:(beats t) in
      let t_sent = channel_c t ~addr:vaddr ~finish:t_buf ~beats:(beats t) in
      let shrink = Perm.shrink_for ~from:perm ~cap:Perm.Nothing in
      (* The L2-side ack is off the critical path: its future-dated L2/DRAM
         completion times must not advance the attribution cursor. *)
      let saved = Attr.suspend () in
      ignore
        (Port.release t.port ~addr:vaddr ~shrink ~data:(Some (copy_line t id)) ~now:t_sent);
      Attr.restore saved;
      Trace.req_end ~at:t_sent rid;
      t_sent
    end
    else begin
      Stats.Registry.incr t.stats "evictions_clean";
      l1_ev t ~at:t0 ~addr:vaddr Trace.Evict_clean;
      let shrink = Perm.shrink_for ~from:perm ~cap:Perm.Nothing in
      let saved = Attr.suspend () in
      ignore (Port.release t.port ~addr:vaddr ~shrink ~data:None ~now:t0);
      Attr.restore saved;
      t0 + 1
    end
  in
  Store.invalidate t.store_arr id;
  t_free

(* Fetch a line at [target] permission through an MSHR: pick and evict a
   victim, Acquire from the L2, install with the skip bit from the grant
   flavour (GrantData vs GrantDataDirty, §6.1).  Returns the slot id and
   the grant completion time. *)
let refill t ~addr ~grow ~now =
  let addr = line_base t addr in
  let installed = ref Store.miss in
  let mshr_comp = lazy (Printf.sprintf "l1.%d.mshr" t.core) in
  let _, _, finish =
    Resource.acquire_dyn_idx t.mshrs ~now (fun ~idx start ->
      if Trace.enabled () then
        Trace.emit ~at:start
          (Trace.Resource { comp = Lazy.force mshr_comp; idx; op = Trace.Res_alloc });
      Attr.mark Attr.Mshr ~at:start;
      if Metrics.enabled () then Metrics.alloc (Lazy.force mshr_comp) ~at:start;
      let id, t_slot =
        match find_line t addr with
        | id when id <> Store.miss ->
          (* Upgrade in place (Branch → Trunk); no victim needed. *)
          id, start
        | _ ->
          let victim = Store.victim t.store_arr addr in
          let t_free =
            if Store.is_valid t.store_arr victim then evict_slot t victim ~now:start
            else start
          in
          victim, t_free
      in
      Attr.mark Attr.Mshr ~at:t_slot;
      let t_sent = Port.send_a t.port ~addr ~now:t_slot in
      let grant = Port.acquire t.port ~addr ~grow ~now:t_sent in
      (* Grant data shares the D channel with every other response into
         this core. *)
      let grant =
        { grant with Port.done_at = channel_d t ~addr ~finish:grant.Port.done_at ~beats:(beats t) }
      in
      Store.fill t.store_arr id ~addr ~payload:() ~now:grant.Port.done_at;
      set_meta t id
        (bits_of_perm grant.Port.perm lor (if grant.Port.l2_dirty then 0 else skip_bit));
      blit_line t id grant.Port.data;
      installed := id;
      if Trace.enabled () then
        Trace.emit ~at:grant.Port.done_at
          (Trace.Resource { comp = Lazy.force mshr_comp; idx; op = Trace.Res_free });
      Attr.mark Attr.Mshr ~at:grant.Port.done_at;
      if Metrics.enabled () then Metrics.free (Lazy.force mshr_comp) ~at:grant.Port.done_at;
      grant.Port.done_at)
  in
  assert (!installed <> Store.miss);
  !installed, finish

let rec load_word t ~addr ~now =
  Attr.activate ~core:t.core;
  match find_line t addr with
  | id when id <> Store.miss ->
    Stats.Counter.incr t.c_load_hits;
    l1_ev t ~at:now ~addr Trace.Load_hit;
    Store.touch t.store_arr id ~now;
    t.done_at <- now + t.p.Params.l1_load_to_use;
    Attr.mark Attr.L1_hit ~at:t.done_at;
    word t id (word_off t addr)
  | _ -> (
    let base = line_base t addr in
    match Flush_unit.load_conflict t.flush ~addr:base ~now with
    | Flush_unit.Load_forward tb ->
      (* §5.3: the FSHR's filled data buffer is forwarded to the load. *)
      Stats.Registry.incr t.stats "load_forwards";
      l1_ev t ~at:now ~addr Trace.Load_forward;
      t.done_at <- tb + t.p.Params.l1_load_to_use;
      Attr.mark Attr.Fshr ~at:t.done_at;
      Port.peek_word t.port addr
    | Flush_unit.Load_wait tw ->
      Stats.Registry.incr t.stats "load_nacks";
      l1_ev t ~at:now ~addr Trace.Load_nack;
      Attr.mark Attr.Fshr ~at:(tw + t.p.Params.nack_retry_delay);
      load_word t ~addr ~now:(tw + t.p.Params.nack_retry_delay)
    | Flush_unit.Load_no_conflict ->
      Stats.Counter.incr t.c_load_misses;
      l1_ev t ~at:now ~addr Trace.Load_miss;
      let rid = Trace.req_start ~at:now ~cls:Trace.Cls_load_miss ~core:t.core ~addr in
      let id, t_done = refill t ~addr ~grow:Perm.N_to_B ~now in
      Trace.req_end ~at:t_done rid;
      t.done_at <- t_done + t.p.Params.l1_load_to_use;
      Attr.mark Attr.L1_hit ~at:t.done_at;
      word t id (word_off t addr))

let load t ~addr ~now =
  let v = load_word t ~addr ~now in
  v, t.done_at

(* Obtain a Trunk copy for a write-type access, honouring the §5.3 pending-
   writeback conditions; returns the slot id and the cycle the write may
   retire. *)
let writable_line t ~addr ~now =
  Attr.activate ~core:t.core;
  let base = line_base t addr in
  let now =
    match Flush_unit.store_proceed_at t.flush ~addr:base ~now with
    | Some tw when tw > now ->
      Stats.Registry.incr t.stats "store_nacks";
      l1_ev t ~at:now ~addr Trace.Store_nack;
      Attr.mark Attr.Fshr ~at:tw;
      tw
    | Some _ | None -> now
  in
  match find_line t addr with
  | id when id <> Store.miss && Perm.includes (line_perm t id) Perm.Trunk ->
    Stats.Counter.incr t.c_store_hits;
    l1_ev t ~at:now ~addr Trace.Store_hit;
    Store.touch t.store_arr id ~now;
    Attr.mark Attr.L1_hit ~at:(now + t.p.Params.l1_store_commit);
    id, now + t.p.Params.l1_store_commit
  | id when id <> Store.miss ->
    (* Branch → Trunk upgrade; data is re-granted (no AcquirePerm, §3.3). *)
    Stats.Registry.incr t.stats "store_upgrades";
    l1_ev t ~at:now ~addr Trace.Store_upgrade;
    let rid = Trace.req_start ~at:now ~cls:Trace.Cls_store_miss ~core:t.core ~addr in
    let id, t_done = refill t ~addr ~grow:Perm.B_to_T ~now in
    Trace.req_end ~at:t_done rid;
    Attr.mark Attr.L1_hit ~at:(t_done + t.p.Params.l1_store_commit);
    id, t_done + t.p.Params.l1_store_commit
  | _ ->
    Stats.Counter.incr t.c_store_misses;
    l1_ev t ~at:now ~addr Trace.Store_miss;
    let rid = Trace.req_start ~at:now ~cls:Trace.Cls_store_miss ~core:t.core ~addr in
    let id, t_done = refill t ~addr ~grow:Perm.N_to_T ~now in
    Trace.req_end ~at:t_done rid;
    Attr.mark Attr.L1_hit ~at:(t_done + t.p.Params.l1_store_commit);
    id, t_done + t.p.Params.l1_store_commit

let store t ~addr ~value ~now =
  let id, t_done = writable_line t ~addr ~now in
  set_word t id (word_off t addr) value;
  set_dirty t id true;
  (* The architectural state change happens in program order at issue; the
     drain completion time is a background timing artefact (§3.2) and must
     not poison the §5.3 coalescing window. *)
  note_change t ~addr ~now;
  t_done

let cas_word t ~addr ~expected ~desired ~now =
  let id, t_done = writable_line t ~addr ~now in
  t.done_at <- t_done + t.p.Params.cas_extra;
  let off = word_off t addr in
  if word t id off = expected then begin
    set_word t id off desired;
    set_dirty t id true;
    note_change t ~addr ~now;
    true
  end
  else false

let cas t ~addr ~expected ~desired ~now =
  let ok = cas_word t ~addr ~expected ~desired ~now in
  ok, t.done_at

type cbo_result = {
  commit_at : int;
  ack_at : int;
  dropped : [ `Skip_bit | `Coalesced | `Executed ];
}

let cbo t ~addr ~kind ~now =
  Attr.activate ~core:t.core;
  let base = line_base t addr in
  let cls =
    match kind with
    | Message.Wb_clean -> Trace.Cls_cbo_clean
    | Message.Wb_flush -> Trace.Cls_cbo_flush
  in
  let rid = Trace.req_start ~at:now ~cls ~core:t.core ~addr:base in
  (* The CBO.X travels the STQ like a store (§5.1) and reads the metadata
     array on arrival; the snapshot is carried in the flush request. *)
  let t_access = now + t.p.Params.cbo_issue_cost in
  let id = find_line t base in
  let hit = id <> Store.miss in
  let dirty = hit && line_dirty t id in
  let skip = hit && line_skip t id in
  if t.p.Params.skip_it && hit && (not dirty) && skip then begin
    (* §6.1 fast drop: the line is persisted; signal success to the LSU. *)
    Flush_unit.note_skip_drop t.flush;
    l1_ev t ~at:t_access ~addr:base Trace.Skip_drop;
    Trace.req_end ~at:t_access rid;
    Attr.mark Attr.L1_hit ~at:t_access;
    { commit_at = t_access; ack_at = t_access; dropped = `Skip_bit }
  end
  else begin
    let line_data = if hit && dirty then Some (copy_line t id) else None in
    let apply_meta effect =
      if hit then begin
        match effect with
        | Fshr_fsm.Invalidate_line -> Store.invalidate t.store_arr id
        | Fshr_fsm.Clear_dirty -> set_dirty t id false
        | Fshr_fsm.No_meta_change -> ()
      end
    in
    let send ~data ~now =
      (* The FSHR's beats are its own serialization; arbitrate them onto
         the shared C channel before the message travels. *)
      let nbeats = if data = None then 1 else beats t in
      let sent = channel_c t ~addr:base ~finish:now ~beats:nbeats in
      Port.root_release t.port ~addr:base ~kind ~data ~now:sent
    in
    let result =
      Flush_unit.submit t.flush ~addr:base ~kind ~hit ~dirty ~line_data
        ~last_line_change:(last_change t ~addr:base) ~now:t_access ~apply_meta ~send
    in
    (* A completed CBO.CLEAN leaves the line persisted: its skip bit may be
       set (§6.2 — L2 wrote the data through to DRAM and cleared its dirty
       bit). *)
    (match result, kind with
     | Flush_unit.Accepted _, Message.Wb_clean when hit ->
       if Perm.compare (line_perm t id) Perm.Nothing > 0 then set_skip t id true
     | (Flush_unit.Accepted _ | Flush_unit.Coalesced _), _ -> ());
    match result with
    | Flush_unit.Coalesced { commit_at; ack_at } ->
      l1_ev t ~at:commit_at ~addr:base Trace.Cbo_coalesced;
      Trace.req_end ~at:ack_at rid;
      Attr.mark Attr.Flushq_wait ~at:commit_at;
      { commit_at; ack_at; dropped = `Coalesced }
    | Flush_unit.Accepted p ->
      Trace.req_end ~at:p.Flush_unit.ack_at rid;
      Attr.mark Attr.Flushq_wait ~at:p.Flush_unit.commit_at;
      { commit_at = p.Flush_unit.commit_at; ack_at = p.Flush_unit.ack_at; dropped = `Executed }
  end

let cbo_inval t ~addr ~now =
  Attr.activate ~core:t.core;
  let base = line_base t addr in
  Stats.Registry.incr t.stats "cbo_invals";
  (* Wait out any pending writeback of the line (its FSHR owns the
     metadata, §5.4), then discard the local copy and tell the L2 to revoke
     the rest. *)
  let t0 =
    match Flush_unit.find_pending t.flush ~addr:base ~now with
    | Some p -> max now p.Flush_unit.ack_at
    | None -> now
  in
  let t0 = t0 + t.p.Params.l1_meta_access in
  Attr.mark Attr.Fshr ~at:t0;
  (match find_line t base with
   | id when id <> Store.miss -> Store.invalidate t.store_arr id
   | _ -> ());
  note_change t ~addr:base ~now:t0;
  Port.root_inval t.port ~addr:base ~now:t0

let cbo_zero t ~addr ~now =
  let base = line_base t addr in
  Stats.Registry.incr t.stats "cbo_zeros";
  let id, t_done = writable_line t ~addr:base ~now in
  Array.fill t.data (id * t.wpl) t.wpl 0;
  set_dirty t id true;
  note_change t ~addr:base ~now:t_done;
  t_done

let fence t ~now =
  Attr.activate ~core:t.core;
  let t_done = Flush_unit.fence_ready_at t.flush ~now + t.p.Params.fence_base_cost in
  Attr.mark Attr.Fence ~at:t_done;
  t_done

let handle_probe t ~addr ~cap ~now =
  let base = line_base t addr in
  Stats.Registry.incr t.stats "probes_handled";
  l1_ev t ~at:now ~addr:base Trace.Probe_handled;
  let t0 = Flush_unit.probe_block_until t.flush ~addr:base ~cap ~now in
  let meta = t.p.Params.l1_meta_access in
  match find_line t base with
  | id when id <> Store.miss ->
    if Perm.compare (line_perm t id) cap > 0 then begin
      let dirty_data =
        if line_dirty t id && Perm.compare cap Perm.Trunk < 0 then Some (copy_line t id)
        else None
      in
      (match cap with
       | Perm.Nothing -> Store.invalidate t.store_arr id
       | Perm.Branch | Perm.Trunk ->
         set_perm t id cap;
         if dirty_data <> None then begin
           set_dirty t id false;
           (* The dirty data now lives (only) in the L2: not persisted. *)
           set_skip t id false
         end);
      note_change t ~addr:base ~now:t0;
      let wire = if dirty_data = None then 1 else beats t in
      let sent = channel_c t ~addr:base ~finish:(t0 + meta + wire) ~beats:wire in
      { Port.dirty_data; done_at = sent + t.p.Params.link_latency }
    end
    else { Port.dirty_data = None; done_at = t0 + meta + 1 + t.p.Params.link_latency }
  | _ -> { Port.dirty_data = None; done_at = t0 + meta + 1 + t.p.Params.link_latency }

let peek_word t addr =
  match find_line t addr with
  | id when id <> Store.miss -> word t id (word_off t addr)
  | _ -> Port.peek_word t.port addr

let line_state t addr =
  match find_line t addr with
  | id when id <> Store.miss ->
    Some
      {
        perm = line_perm t id;
        dirty = line_dirty t id;
        skip = line_skip t id;
        data = copy_line t id;
      }
  | _ -> None

let held_lines t =
  let acc = ref [] in
  Store.iter_valid t.store_arr (fun addr id -> acc := (addr, line_perm t id) :: !acc);
  !acc

let mshrs t = t.mshrs
let wbu t = t.wbu

let crash t =
  Store.invalidate_all t.store_arr;
  (* In-flight refills and writebacks die with the power: occupancy must
     not leak into the next run on this system. *)
  Resource.reset t.mshrs;
  Resource.reset t.wbu;
  Flush_unit.crash t.flush;
  Int_tbl.clear t.last_change

let create p ~core ~port =
  let stats = Stats.Registry.create () in
  let store_arr =
    let policy =
      match p.Params.l1_replacement with
      | `Lru -> Store.Lru
      | `Random -> Store.Random (Skipit_sim.Rng.create ~seed:(0xCAFE + core))
    in
    Store.create ~policy p.Params.l1_geom
  in
  let slots = Store.slots store_arr in
  let wpl = Geometry.words_per_line p.Params.l1_geom in
  let t =
    {
      p;
      core;
      store_arr;
      meta = Bytes.make slots '\000';
      data = Array.make (slots * wpl) 0;
      wpl;
      mshrs = Resource.create ~count:p.Params.l1_mshrs (Printf.sprintf "l1-mshr-%d" core);
      wbu = Resource.create (Printf.sprintf "l1-wbu-%d" core);
      port;
      flush = Flush_unit.create p ~core;
      last_change =
        Int_tbl.create ~size_hint:(Geometry.lines p.Params.l1_geom) ();
      stats;
      c_load_hits = Stats.Registry.counter stats "load_hits";
      c_store_hits = Stats.Registry.counter stats "store_hits";
      c_load_misses = Stats.Registry.counter stats "load_misses";
      c_store_misses = Stats.Registry.counter stats "store_misses";
      done_at = 0;
    }
  in
  (* The cache is the client agent of its port: B-channel probes from the
     manager arrive here. *)
  Port.connect_client port
    { Port.probe = (fun ~addr ~cap ~now -> handle_probe t ~addr ~cap ~now) };
  t
