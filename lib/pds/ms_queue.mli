(** A persistent Michael-Scott lock-free FIFO queue.

    The fifth data structure, beyond the paper's four sets: queues are the
    other workhorse of the durable-data-structure literature (Friedman et
    al.'s durable queue descends directly from this shape), and their
    persist pattern differs from sets — every operation touches the same
    head/tail lines, so redundant-writeback avoidance behaves differently.

    Standard MS algorithm over simulated memory: nodes are (value, next)
    pairs; [enqueue] links at the tail with CAS and swings the tail
    (helping lagging tails); [dequeue] swings the head.  Persistence points
    follow the usual durable-queue placement: the new node, the linking
    CAS'd word, and the swung head pointer.

    Values must lie in [\[1, 2{^49})] (0 is reserved).  All operations must
    run inside a {!Skipit_core.Thread} task. *)

type t

val create : Skipit_persist.Pctx.t -> Skipit_mem.Allocator.t -> t

val enqueue : t -> Skipit_persist.Pctx.t -> int -> unit
val dequeue : t -> Skipit_persist.Pctx.t -> int option

val is_empty : t -> Skipit_persist.Pctx.t -> bool

val repair : t -> Skipit_persist.Pctx.t -> int
(** Post-crash recovery: swing the (never-persisted-on-the-hot-path) tail
    pointer forward to the last reachable node, durably.  Returns the
    number of swings performed. *)

val to_list_unsafe : t -> Skipit_core.System.t -> int list
(** Untimed front-to-back snapshot (tests only). *)
