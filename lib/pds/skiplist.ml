module Pctx = Skipit_persist.Pctx
module Allocator = Skipit_mem.Allocator

let max_level = 12
let tail_key = 1 lsl 50

(* Node layout: 0 = key, 1 = height, 2+l = next at level l. *)
type t = { head : int; tail : int; alloc : Allocator.t; stride : int }

let fkey ~stride n = Node.field ~stride n 0
let fheight ~stride n = Node.field ~stride n 1
let fnext ~stride n l = Node.field ~stride n (2 + l)

(* Deterministic geometric tower height from the key. *)
let height_of key =
  let h = key * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let rec count bits acc =
    if acc >= max_level then max_level
    else if bits land 1 = 1 then count (bits lsr 1) (acc + 1)
    else acc
  in
  max 1 (count h 1)

let alloc_node t p ~key ~height ~nexts =
  let n = Node.alloc t.alloc ~stride:t.stride ~fields:(2 + height) in
  Pctx.write p (fkey ~stride:t.stride n) key;
  Pctx.write p (fheight ~stride:t.stride n) height;
  Array.iteri (fun l succ -> Pctx.write p (fnext ~stride:t.stride n l) succ) nexts;
  Pctx.persist p (fkey ~stride:t.stride n);
  Pctx.persist p (fnext ~stride:t.stride n (height - 1));
  n

let create p alloc =
  let stride = Pctx.stride p in
  let t = { head = 0; tail = 0; alloc; stride } in
  let tail =
    alloc_node { t with alloc } p ~key:tail_key ~height:max_level
      ~nexts:(Array.make max_level Ptr.null)
  in
  let head =
    alloc_node { t with alloc } p ~key:0 ~height:max_level ~nexts:(Array.make max_level tail)
  in
  Pctx.commit p ~updated:true;
  { head; tail; alloc; stride }

let key_of t p n = Pctx.read_traverse p (fkey ~stride:t.stride n)
let next_of t p n l = Pctx.read_traverse p (fnext ~stride:t.stride n l)

exception Retry

(* Herlihy-Shavit find: per-level predecessors/successors, snipping marked
   nodes as they are encountered. *)
let find t p key =
  let preds = Array.make max_level t.head in
  let succs = Array.make max_level t.tail in
  let rec attempt () =
    try
      let pred = ref t.head in
      for level = max_level - 1 downto 0 do
        let curr = ref (Ptr.addr_of (next_of t p !pred level)) in
        let stop = ref false in
        while not !stop do
          let succ_raw = ref (next_of t p !curr level) in
          while Ptr.is_marked !succ_raw do
            let unmarked = Ptr.addr_of !succ_raw in
            if
              not
                (Pctx.cas p (fnext ~stride:t.stride !pred level) ~expected:!curr
                   ~desired:unmarked)
            then raise Retry;
            Pctx.persist p (fnext ~stride:t.stride !pred level);
            curr := unmarked;
            succ_raw := next_of t p !curr level
          done;
          if key_of t p !curr < key then begin
            pred := !curr;
            curr := Ptr.addr_of !succ_raw
          end
          else stop := true
        done;
        preds.(level) <- !pred;
        succs.(level) <- !curr
      done;
      key_of t p succs.(0) = key
    with Retry -> attempt ()
  in
  let found = attempt () in
  found, preds, succs

let contains t p key =
  (* Wait-free traversal: skip over marked nodes without helping. *)
  let pred = ref t.head in
  let curr = ref t.head in
  for level = max_level - 1 downto 0 do
    curr := Ptr.addr_of (next_of t p !pred level);
    let stop = ref false in
    while not !stop do
      let succ_raw = next_of t p !curr level in
      if Ptr.is_marked succ_raw then curr := Ptr.addr_of succ_raw
      else if key_of t p !curr < key then begin
        pred := !curr;
        curr := Ptr.addr_of succ_raw
      end
      else stop := true
    done
  done;
  let found = key_of t p !curr = key && not (Ptr.is_marked (next_of t p !curr 0)) in
  Pctx.commit p ~updated:false;
  found

let rec insert t p key =
  if key <= 0 || key >= tail_key then invalid_arg "Skiplist.insert: key out of range";
  let found, preds, succs = find t p key in
  if found then begin
    Pctx.commit p ~updated:false;
    false
  end
  else begin
    let height = height_of key in
    let nexts = Array.init height (fun l -> succs.(l)) in
    let node = alloc_node t p ~key ~height ~nexts in
    if
      not
        (Pctx.cas p (fnext ~stride:t.stride preds.(0) 0) ~expected:succs.(0) ~desired:node)
    then insert t p key
    else begin
      Pctx.persist p (fnext ~stride:t.stride preds.(0) 0);
      (* Link the index levels best-effort: a failed CAS refreshes the
         search once and retries; a second failure abandons that level. *)
      for l = 1 to height - 1 do
        let rec link attempts preds succs =
          let raw = next_of t p node l in
          if Ptr.is_marked raw then ()
          else begin
            if raw <> succs.(l) then Pctx.write p (fnext ~stride:t.stride node l) succs.(l);
            if
              not
                (Pctx.cas p (fnext ~stride:t.stride preds.(l) l) ~expected:succs.(l)
                   ~desired:node)
            then
              if attempts > 0 then begin
                let _, preds', succs' = find t p key in
                link (attempts - 1) preds' succs'
              end
          end
        in
        link 2 preds succs
      done;
      Pctx.commit p ~updated:true;
      true
    end
  end

let delete t p key =
  let rec attempt () =
    let found, _, succs = find t p key in
    if not found then begin
      Pctx.commit p ~updated:false;
      false
    end
    else begin
      let victim = succs.(0) in
      let height = Pctx.read_traverse p (fheight ~stride:t.stride victim) in
      (* Mark the index levels top-down. *)
      for l = height - 1 downto 1 do
        let rec mark () =
          let raw = next_of t p victim l in
          if not (Ptr.is_marked raw) then begin
            ignore
              (Pctx.cas p (fnext ~stride:t.stride victim l) ~expected:raw
                 ~desired:(Ptr.with_mark raw));
            mark ()
          end
        in
        mark ()
      done;
      (* The bottom-level mark is the linearization point. *)
      let bottom = fnext ~stride:t.stride victim 0 in
      let raw = Pctx.read_critical p bottom in
      if Ptr.is_marked raw then begin
        Pctx.commit p ~updated:false;
        false
      end
      else if Pctx.cas p bottom ~expected:raw ~desired:(Ptr.with_mark raw) then begin
        Pctx.persist p bottom;
        (* Snip eagerly. *)
        ignore (find t p key);
        Pctx.commit p ~updated:true;
        true
      end
      else attempt ()
    end
  in
  attempt ()

let repair t p =
  (* Post-crash recovery: finish interrupted deletions.  A crash between
     persisting a bottom-level mark and persisting the physical unlink
     leaves a durably-marked node still linked; walk every level top-down
     snipping marked successors with persisted CASes.  Upper levels are
     index-only (membership lives at level 0), but snipping them too keeps
     traversals from stepping through dead towers. *)
  let unlinked = ref 0 in
  for level = max_level - 1 downto 0 do
    let rec walk pred =
      let succ_raw = Pctx.read_critical p (fnext ~stride:t.stride pred level) in
      let curr = Ptr.addr_of succ_raw in
      if curr = t.tail || Ptr.is_null curr then ()
      else begin
        let curr_next = Pctx.read_critical p (fnext ~stride:t.stride curr level) in
        if Ptr.is_marked curr_next then begin
          if
            Pctx.cas p (fnext ~stride:t.stride pred level) ~expected:succ_raw
              ~desired:(Ptr.addr_of curr_next)
          then begin
            Pctx.persist p (fnext ~stride:t.stride pred level);
            if level = 0 then incr unlinked
          end;
          walk pred
        end
        else walk curr
      end
    in
    walk t.head
  done;
  Pctx.commit p ~updated:(!unlinked > 0);
  !unlinked

let elements_unsafe t system =
  let module S = Skipit_core.System in
  let strip v = v land lnot Skipit_persist.Strategy.lap_mask in
  let rec walk node acc =
    if node = t.tail || Ptr.is_null node then List.rev acc
    else begin
      let key = strip (S.peek_word system (fkey ~stride:t.stride node)) in
      let raw = strip (S.peek_word system (fnext ~stride:t.stride node 0)) in
      let acc = if Ptr.is_marked raw then acc else key :: acc in
      walk (Ptr.addr_of raw) acc
    end
  in
  walk (Ptr.addr_of (strip (S.peek_word system (fnext ~stride:t.stride t.head 0)))) []
