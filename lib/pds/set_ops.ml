type kind = List_set | Hash_set | Bst_set | Skiplist_set

let all_kinds = [ List_set; Hash_set; Bst_set; Skiplist_set ]

let kind_name = function
  | List_set -> "linked-list"
  | Hash_set -> "hash-table"
  | Bst_set -> "bst"
  | Skiplist_set -> "skiplist"

let uses_word_bits = function
  | Bst_set -> true
  | List_set | Hash_set | Skiplist_set -> false

let compatible kind strategy =
  not (uses_word_bits kind && strategy.Skipit_persist.Strategy.uses_word_bit)

type handle = {
  name : string;
  insert : Skipit_persist.Pctx.t -> int -> bool;
  delete : Skipit_persist.Pctx.t -> int -> bool;
  contains : Skipit_persist.Pctx.t -> int -> bool;
  repair : Skipit_persist.Pctx.t -> int;
  snapshot : Skipit_core.System.t -> int list;
}

let create_sized kind ~buckets p alloc =
  match kind with
  | List_set ->
    let t = Harris_list.create p alloc in
    {
      name = kind_name kind;
      insert = Harris_list.insert t;
      delete = Harris_list.delete t;
      contains = Harris_list.contains t;
      repair = Harris_list.repair t;
      snapshot = Harris_list.to_list_unsafe t;
    }
  | Hash_set ->
    let t = Hash_table.create p alloc ~buckets in
    {
      name = kind_name kind;
      insert = Hash_table.insert t;
      delete = Hash_table.delete t;
      contains = Hash_table.contains t;
      repair = Hash_table.repair t;
      snapshot = Hash_table.elements_unsafe t;
    }
  | Bst_set ->
    let t = Bst.create p alloc in
    {
      name = kind_name kind;
      insert = Bst.insert t;
      delete = Bst.delete t;
      contains = Bst.contains t;
      repair = Bst.repair t;
      snapshot = Bst.elements_unsafe t;
    }
  | Skiplist_set ->
    let t = Skiplist.create p alloc in
    {
      name = kind_name kind;
      insert = Skiplist.insert t;
      delete = Skiplist.delete t;
      contains = Skiplist.contains t;
      repair = Skiplist.repair t;
      snapshot = Skiplist.elements_unsafe t;
    }

let create kind p alloc = create_sized kind ~buckets:512 p alloc
