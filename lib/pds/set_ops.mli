(** Uniform set interface over the four data structures of §7.4, so the
    benchmark harness can sweep structure × strategy × persistence mode. *)

type kind = List_set | Hash_set | Bst_set | Skiplist_set

val all_kinds : kind list
val kind_name : kind -> string

val uses_word_bits : kind -> bool
(** The BST owns spare pointer-word bits, which excludes Link-and-Persist
    (§7.4). *)

val compatible : kind -> Skipit_persist.Strategy.t -> bool

type handle = {
  name : string;
  insert : Skipit_persist.Pctx.t -> int -> bool;
  delete : Skipit_persist.Pctx.t -> int -> bool;
  contains : Skipit_persist.Pctx.t -> int -> bool;
  repair : Skipit_persist.Pctx.t -> int;
      (** Post-crash recovery: complete interrupted operations durably. *)
  snapshot : Skipit_core.System.t -> int list;
      (** Untimed sorted key snapshot (tests). *)
}

val create : kind -> Skipit_persist.Pctx.t -> Skipit_mem.Allocator.t -> handle
(** Must run inside a {!Skipit_core.Thread} task.  Hash tables get 512
    buckets; adjust with {!create_sized}. *)

val create_sized : kind -> buckets:int -> Skipit_persist.Pctx.t -> Skipit_mem.Allocator.t -> handle
