(** Lock-free skiplist [23], persistence-instrumented.

    A tower per key: the bottom level is a Harris-style marked list that
    defines set membership; upper levels are index shortcuts maintained
    best-effort with CAS (the standard Herlihy-Shavit construction).  Tower
    heights are drawn deterministically from a hash of the key (geometric,
    p = 1/2), keeping runs reproducible.

    Keys must lie in [\[1, 2{^49})].  All operations must run inside a
    {!Skipit_core.Thread} task. *)

type t

val max_level : int
(** Tower height cap (12). *)

val create : Skipit_persist.Pctx.t -> Skipit_mem.Allocator.t -> t
val insert : t -> Skipit_persist.Pctx.t -> int -> bool
val delete : t -> Skipit_persist.Pctx.t -> int -> bool
val contains : t -> Skipit_persist.Pctx.t -> int -> bool

val repair : t -> Skipit_persist.Pctx.t -> int
(** Post-crash recovery: durably unlink every marked node at every level
    (a crash window exists between a delete's mark-persist and its
    unlink-persist).  Returns the number of bottom-level (membership)
    unlinks completed. *)

val elements_unsafe : t -> Skipit_core.System.t -> int list
(** Untimed snapshot from the bottom level (tests only). *)
