module Pctx = Skipit_persist.Pctx
module Allocator = Skipit_mem.Allocator

(* Node layout: field 0 = value, field 1 = next.  head/tail are single-word
   cells each on their own line (they are the contention hot spots). *)
type t = { head_cell : int; tail_cell : int; alloc : Allocator.t; stride : int }

let fvalue ~stride n = Node.field ~stride n 0
let fnext ~stride n = Node.field ~stride n 1

let alloc_node t p ~value ~next =
  let n = Node.alloc t.alloc ~stride:t.stride ~fields:2 in
  Pctx.write p (fvalue ~stride:t.stride n) value;
  Pctx.write p (fnext ~stride:t.stride n) next;
  Pctx.persist p (fvalue ~stride:t.stride n);
  n

let create p alloc =
  let stride = Pctx.stride p in
  let t =
    {
      head_cell = Allocator.alloc_line alloc ~line_bytes:64;
      tail_cell = Allocator.alloc_line alloc ~line_bytes:64;
      alloc;
      stride;
    }
  in
  let sentinel = alloc_node t p ~value:0 ~next:Ptr.null in
  Pctx.write p t.head_cell sentinel;
  Pctx.write p t.tail_cell sentinel;
  Pctx.persist p t.head_cell;
  Pctx.persist p t.tail_cell;
  Pctx.commit p ~updated:true;
  t

let enqueue t p value =
  if value <= 0 || value >= 1 lsl 49 then invalid_arg "Ms_queue.enqueue: value out of range";
  let node = alloc_node t p ~value ~next:Ptr.null in
  let rec attempt () =
    let tail = Ptr.addr_of (Pctx.read_traverse p t.tail_cell) in
    let next = Pctx.read_critical p (fnext ~stride:t.stride tail) in
    if Ptr.is_null next then begin
      if Pctx.cas p (fnext ~stride:t.stride tail) ~expected:next ~desired:node then begin
        (* Linking CAS is the linearization point; persist it, then swing
           the tail (failure is benign — someone helped). *)
        Pctx.persist p (fnext ~stride:t.stride tail);
        ignore (Pctx.cas p t.tail_cell ~expected:tail ~desired:node);
        Pctx.commit p ~updated:true
      end
      else attempt ()
    end
    else begin
      (* Tail is lagging: help swing it, then retry. *)
      ignore (Pctx.cas p t.tail_cell ~expected:tail ~desired:(Ptr.addr_of next));
      attempt ()
    end
  in
  attempt ()

let rec dequeue t p =
  let head = Ptr.addr_of (Pctx.read_traverse p t.head_cell) in
  let tail = Ptr.addr_of (Pctx.read_traverse p t.tail_cell) in
  let next = Pctx.read_critical p (fnext ~stride:t.stride head) in
  if head = tail then begin
    if Ptr.is_null next then begin
      Pctx.commit p ~updated:false;
      None
    end
    else begin
      (* Tail lagging behind a concurrent enqueue: help. *)
      ignore (Pctx.cas p t.tail_cell ~expected:tail ~desired:(Ptr.addr_of next));
      dequeue t p
    end
  end
  else if Ptr.is_null next then (
    (* Transient: head read raced a swing; retry. *)
    dequeue t p)
  else begin
    let value = Pctx.read_critical p (fvalue ~stride:t.stride (Ptr.addr_of next)) in
    if Pctx.cas p t.head_cell ~expected:head ~desired:(Ptr.addr_of next) then begin
      Pctx.persist p t.head_cell;
      Pctx.commit p ~updated:true;
      Some value
    end
    else dequeue t p
  end

let is_empty t p =
  let head = Ptr.addr_of (Pctx.read_traverse p t.head_cell) in
  let next = Pctx.read_traverse p (fnext ~stride:t.stride head) in
  Pctx.commit p ~updated:false;
  Ptr.is_null next

let repair t p =
  (* Post-crash recovery: the tail pointer is deliberately never persisted
     on the hot path (the linking CAS is the durable linearization point),
     so after a crash [tail_cell] may lag arbitrarily — or trail the head.
     Walk forward along persisted next links and durably swing the tail to
     the last reachable node, completing any interrupted enqueue's swing. *)
  let rec advance swings =
    let tail = Ptr.addr_of (Pctx.read_critical p t.tail_cell) in
    let next = Pctx.read_critical p (fnext ~stride:t.stride tail) in
    if Ptr.is_null next then swings
    else begin
      ignore (Pctx.cas p t.tail_cell ~expected:tail ~desired:(Ptr.addr_of next));
      advance (swings + 1)
    end
  in
  let n = advance 0 in
  if n > 0 then Pctx.persist p t.tail_cell;
  Pctx.commit p ~updated:(n > 0);
  n

let to_list_unsafe t system =
  let module S = Skipit_core.System in
  let strip v = v land lnot Skipit_persist.Strategy.lap_mask in
  let head = Ptr.addr_of (strip (S.peek_word system t.head_cell)) in
  let rec walk node acc =
    let next = Ptr.addr_of (strip (S.peek_word system (fnext ~stride:t.stride node))) in
    if Ptr.is_null next then List.rev acc
    else walk next (strip (S.peek_word system (fvalue ~stride:t.stride next)) :: acc)
  in
  walk head []
