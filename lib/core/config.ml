module Params = Skipit_cache.Params
module Geometry = Skipit_cache.Geometry

let default = Params.boom_default

let platform ?(cores = 2) ?(skip_it = false) ?(topology = `Crossbar) ?(l2_banks = 1) () =
  { Params.boom_default with Params.n_cores = cores; skip_it; topology; l2_banks }

let tiny ?(cores = 2) () =
  {
    Params.boom_default with
    Params.n_cores = cores;
    l1_geom = Geometry.v ~size_bytes:2048 ~ways:2 ~line_bytes:64;
    l2_geom = Geometry.v ~size_bytes:8192 ~ways:4 ~line_bytes:64;
  }
