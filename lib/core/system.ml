module Params = Skipit_cache.Params
module Instr = Skipit_cpu.Instr
module Lsu = Skipit_cpu.Lsu
module Dcache = Skipit_l1.Dcache
module Flush_unit = Skipit_l1.Flush_unit
module L2 = Skipit_l2.Inclusive_cache
module Dram = Skipit_mem.Dram
module Allocator = Skipit_mem.Allocator
open Skipit_tilelink

module Memside = Skipit_l2.Memside_cache

(* Periodic audit hook (off by default): [hook] fires whenever the maximum
   core clock has advanced at least [every] simulated cycles since the last
   firing.  The hook is untimed — it must only observe, never execute
   instructions — so enabling it cannot perturb cycle counts. *)
type audit_state = {
  every : int;
  mutable next_due : int;
  mutable in_hook : bool;
  hook : unit -> unit;
}

type t = {
  params : Params.t;
  dcaches : Dcache.t array;
  lsus : Lsu.t array;
  ports : Port.t array;  (* client port per core, L1 side <-> L2 side *)
  memside_ports : Skipit_l2.Backend.t list;  (* every boundary below the L2 *)
  l2 : L2.t;
  l3 : Memside.t option;
  dram : Dram.t;
  allocator : Allocator.t;
  persist_log : Skipit_mem.Persist_log.t;
  mutable audit : audit_state option;
}

let create params =
  (match Params.validate params with
   | Ok () -> ()
   | Error msg -> invalid_arg ("System.create: " ^ msg));
  let dram =
    Dram.create ~channels:params.Params.dram_channels
      ~read_latency:params.Params.dram_read_latency
      ~write_latency:params.Params.dram_write_latency
      ~occupancy:params.Params.dram_occupancy ~line_bytes:(Params.line_bytes params)
  in
  let beats = Params.data_beats params in
  (* Memory side of the L2: either DRAM directly behind one counted port, or
     an L3 whose own downstream port fronts DRAM — every boundary counted. *)
  let max_inflight = params.Params.mem_max_inflight in
  let burst_beat_cost = params.Params.mem_burst_beat_cost in
  let l3, backend, memside_ports =
    match params.Params.l3 with
    | Some cfg ->
      let dram_port =
        Skipit_l2.Backend.of_dram ~name:"l3.dram" ~beats_per_line:beats ~max_inflight
          ~burst_beat_cost dram
      in
      let m =
        Memside.create ~name:"l2.l3" ~geom:cfg.Params.l3_geom
          ~access_latency:cfg.Params.l3_latency ~banks:cfg.Params.l3_banks
          ~bank_busy:cfg.Params.l3_bank_busy ~below:dram_port ~beats_per_line:beats
          ~max_inflight ~burst_beat_cost ()
      in
      let b = Memside.backend m in
      Some m, b, [ b; dram_port ]
    | None ->
      let b =
        Skipit_l2.Backend.of_dram ~name:"l2.mem" ~beats_per_line:beats ~max_inflight
          ~burst_beat_cost dram
      in
      None, b, [ b ]
  in
  let l2 = L2.create params ~backend in
  (* Client-side topology: a crossbar gives each L1<->L2 port private channel
     wires; a shared bus threads one wire set through every port; a banked
     bus gives each NUCA bank one wire set that every client contends for
     (messages route by line address, matching the L2's interleave). *)
  let line_bytes = Params.line_bytes params in
  let ports =
    match params.Params.topology with
    | `Crossbar ->
      Array.init params.Params.n_cores (fun core ->
        Port.create ~name:(Printf.sprintf "l1.%d" core) ())
    | `Shared_bus ->
      let channels = Port.Channels.create ~name:"bus" in
      Array.init params.Params.n_cores (fun core ->
        Port.create ~channels ~name:(Printf.sprintf "l1.%d" core) ())
    | `Banked_bus ->
      let bank_channels =
        Array.init params.Params.l2_banks (fun i ->
          Port.Channels.create ~name:(Printf.sprintf "bus.b%d" i))
      in
      Array.init params.Params.n_cores (fun core ->
        Port.create ~bank_channels ~line_bytes ~name:(Printf.sprintf "l1.%d" core) ())
  in
  Array.iteri (fun core port -> L2.connect_client l2 ~core port) ports;
  let dcaches =
    Array.init params.Params.n_cores (fun core ->
      Dcache.create params ~core ~port:ports.(core))
  in
  let lsus = Array.map Lsu.create dcaches in
  let persist_log = Skipit_mem.Persist_log.create () in
  Dram.attach_log dram persist_log;
  {
    params;
    dcaches;
    lsus;
    ports;
    memside_ports;
    l2;
    l3;
    dram;
    allocator = Allocator.create ();
    persist_log;
    audit = None;
  }

let params t = t.params
let n_cores t = t.params.Params.n_cores
let lsu t core = t.lsus.(core)
let dcache t core = t.dcaches.(core)
let l2 t = t.l2
let l3 t = t.l3
let client_port t core = t.ports.(core)
let dram t = t.dram
let persist_log t = t.persist_log
let allocator t = t.allocator

let max_clock t = Array.fold_left (fun acc l -> max acc (Lsu.clock l)) 0 t.lsus

let set_audit_hook t ~every hook =
  if every <= 0 then invalid_arg "System.set_audit_hook: every must be positive";
  t.audit <- Some { every; next_due = max_clock t + every; in_hook = false; hook = (fun () -> hook t) }

let clear_audit_hook t = t.audit <- None

let maybe_audit t =
  match t.audit with
  | None -> ()
  | Some a ->
    let now = max_clock t in
    if now >= a.next_due && not a.in_hook then begin
      a.in_hook <- true;
      (* Catch up in one firing even if the clock jumped several periods. *)
      a.next_due <- now + a.every;
      Fun.protect ~finally:(fun () -> a.in_hook <- false) a.hook
    end

let exec t ~core instr =
  let r = Lsu.exec t.lsus.(core) instr in
  maybe_audit t;
  r

let load t ~core addr = exec t ~core (Instr.Load { addr })
let store t ~core addr value = ignore (exec t ~core (Instr.Store { addr; value }))

let cas t ~core addr ~expected ~desired =
  exec t ~core (Instr.Cas { addr; expected; desired }) = 1

let clean t ~core addr = ignore (exec t ~core (Instr.Cbo_clean { addr }))
let flush t ~core addr = ignore (exec t ~core (Instr.Cbo_flush { addr }))
let inval t ~core addr = ignore (exec t ~core (Instr.Cbo_inval { addr }))
let zero t ~core addr = ignore (exec t ~core (Instr.Cbo_zero { addr }))
let fence t ~core = ignore (exec t ~core Instr.Fence)
let clock t ~core = Lsu.clock t.lsus.(core)

let peek_word t addr =
  (* At most one core holds the line dirty; its copy is the architectural
     value.  Otherwise every cached copy agrees with the L2. *)
  let from_l1 =
    Array.fold_left
      (fun acc dc ->
        match acc, Dcache.line_state dc addr with
        | Some _, _ -> acc
        | None, Some line when line.Dcache.dirty -> Some (Dcache.peek_word dc addr)
        | None, (Some _ | None) -> None)
      None t.dcaches
  in
  match from_l1 with Some v -> v | None -> L2.peek_word t.l2 addr

let poke_word t addr value = Dram.poke_word t.dram addr value
let persisted_word t addr = Dram.peek_word t.dram addr

let crash t =
  Array.iter Dcache.crash t.dcaches;
  L2.crash t.l2;
  Dram.crash t.dram

let check_coherence t =
  (* Inclusion + directory agreement. *)
  let inclusion =
    L2.check_inclusion t.l2 ~l1_lines:(fun core -> Dcache.held_lines t.dcaches.(core))
  in
  match inclusion with
  | Error _ as e -> e
  | Ok () ->
    let error = ref None in
    let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
    let holders addr =
      Array.to_list t.dcaches
      |> List.filter_map (fun dc ->
           match Dcache.line_state dc addr with
           | Some line -> Some (Dcache.core dc, line)
           | None -> None)
    in
    Array.iter
      (fun dc ->
        List.iter
          (fun (addr, perm) ->
            let others =
              List.filter (fun (c, _) -> c <> Dcache.core dc) (holders addr)
            in
            (* Single writer. *)
            if Perm.equal perm Perm.Trunk && others <> [] then
              fail "line %#x: Trunk on core %d but %d other copies" addr (Dcache.core dc)
                (List.length others);
            match Dcache.line_state dc addr with
            | None -> ()
            | Some line ->
              (* At most one dirty copy, and dirty requires Trunk. *)
              if line.Dcache.dirty && not (Perm.equal line.Dcache.perm Perm.Trunk) then
                fail "line %#x: dirty without Trunk on core %d" addr (Dcache.core dc);
              (* §6.2 safety: valid ∧ ¬dirty ∧ skip ⇒ L2 copy not dirty. *)
              if (not line.Dcache.dirty) && line.Dcache.skip && L2.dir_dirty t.l2 addr then
                fail "line %#x: skip bit set on core %d but L2 copy is dirty" addr
                  (Dcache.core dc))
          (Dcache.held_lines dc))
      t.dcaches;
    (match !error with Some msg -> Error msg | None -> Ok ())

(* Declare every component's trace track up front so the exported timeline
   shows the full topology even for components that stay silent. *)
let emit_trace_meta t =
  let module Trace = Skipit_obs.Trace in
  if Trace.enabled () then begin
    let meta track note = Trace.emit ~at:0 (Trace.Meta { track; note }) in
    Array.iteri
      (fun i _ ->
        meta (Printf.sprintf "l1.%d" i) "L1 data cache";
        meta (Printf.sprintf "l1.%d.mshr" i) "L1 MSHRs";
        meta (Printf.sprintf "fu.%d.q" i) "flush queue")
      t.dcaches;
    Array.iter (fun p -> meta ("port." ^ Port.name p) "TileLink client port") t.ports;
    List.iter
      (fun b -> meta ("port." ^ Skipit_l2.Backend.name b) "memside port")
      t.memside_ports;
    meta "l2" "shared inclusive L2";
    if L2.n_banks t.l2 = 1 then meta "l2.mshr" "L2 MSHRs"
    else
      for i = 0 to L2.n_banks t.l2 - 1 do
        meta (Printf.sprintf "l2.bank.%d.mshr" i) (Printf.sprintf "L2 bank %d MSHRs" i)
      done;
    (match t.l3 with Some _ -> meta "l2.l3" "memory-side L3" | None -> ());
    meta "dram" "DRAM (persistence domain)"
  end

let stats_report t =
  let acc = ref [] in
  let push prefix reg =
    List.iter
      (fun (name, v) -> acc := (prefix ^ "." ^ name, v) :: !acc)
      (Skipit_sim.Stats.Registry.to_list reg)
  in
  Array.iteri (fun i dc -> push (Printf.sprintf "l1.%d" i) (Dcache.stats dc)) t.dcaches;
  Array.iteri
    (fun i dc -> push (Printf.sprintf "fu.%d" i) (Flush_unit.stats (Dcache.flush_unit dc)))
    t.dcaches;
  push "l2" (L2.stats t.l2);
  if L2.n_banks t.l2 > 1 then
    Array.iteri
      (fun i reg -> push (Printf.sprintf "l2.bank.%d" i) reg)
      (L2.bank_stats t.l2);
  (match t.l3 with Some m -> push "l3" (Memside.stats m) | None -> ());
  (* Per-port beat/stall/occupancy counters at every hierarchy boundary. *)
  Array.iter (fun p -> push ("port." ^ Port.name p) (Port.stats p)) t.ports;
  List.iter
    (fun b -> push ("port." ^ Skipit_l2.Backend.name b) (Skipit_l2.Backend.stats b))
    t.memside_ports;
  acc := ("dram.reads", Dram.reads t.dram) :: ("dram.writes", Dram.writes t.dram) :: !acc;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc
