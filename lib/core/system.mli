(** The simulated SoC: cores with private L1 data caches, a shared inclusive
    L2, and DRAM as the persistence domain — the paper's experimental
    platform (§7.1) as one object.

    This is the main entry point of the library.  Build a system from a
    {!Config} parameter block, then either drive individual cores through
    {!exec}/the typed wrappers, or run concurrent workloads with
    {!module:Thread}. *)

module Params = Skipit_cache.Params
module Instr = Skipit_cpu.Instr

type t

val create : Params.t -> t
(** Raises [Invalid_argument] if the parameter block fails
    [Params.validate]. *)

val params : t -> Params.t
val n_cores : t -> int

val lsu : t -> int -> Skipit_cpu.Lsu.t
val dcache : t -> int -> Skipit_l1.Dcache.t
val l2 : t -> Skipit_l2.Inclusive_cache.t

val l3 : t -> Skipit_l2.Memside_cache.t option
(** The memory-side L3, when [Params.l3] is set. *)

val client_port : t -> int -> Skipit_tilelink.Port.t
(** The typed TileLink port wiring core [i]'s L1 to the L2.  Under
    [`Crossbar] each port owns private channel wires; under [`Shared_bus]
    they all contend for one set. *)

val dram : t -> Skipit_mem.Dram.t

val persist_log : t -> Skipit_mem.Persist_log.t
(** Ordered record of every line that became durable — the observability
    behind the §4 memory-semantics tests. *)

val allocator : t -> Skipit_mem.Allocator.t
(** A system-wide bump allocator for workload data. *)

val exec : t -> core:int -> Instr.t -> int
(** Run one instruction on [core] at that core's current clock. *)

(** Typed wrappers around {!exec}. *)

val load : t -> core:int -> int -> int
val store : t -> core:int -> int -> int -> unit
val cas : t -> core:int -> int -> expected:int -> desired:int -> bool
val clean : t -> core:int -> int -> unit
val flush : t -> core:int -> int -> unit
val inval : t -> core:int -> int -> unit
val zero : t -> core:int -> int -> unit
val fence : t -> core:int -> unit
val clock : t -> core:int -> int

val max_clock : t -> int
(** Latest core clock — the experiment's elapsed cycle count. *)

val peek_word : t -> int -> int
(** Functional, coherent read of the current architectural value (prefers a
    dirty L1 copy, then L2, then DRAM); costs no simulated time. *)

val poke_word : t -> int -> int -> unit
(** Initialise DRAM contents directly (test fixtures); bypasses caches —
    only sound before any cached access to the location. *)

val persisted_word : t -> int -> int
(** What a crash at this instant would leave at the address (DRAM only). *)

val crash : t -> unit
(** Power failure: all volatile cache state vanishes; DRAM (the NVMM)
    survives; core clocks are preserved.  All in-flight machinery —
    MSHRs, FSHRs, flush-queue admissions, writeback units, L2 banks and
    ListBuffer, DRAM channels — is reset to empty, so re-running a
    workload on the same system inherits no phantom occupancy. *)

val set_audit_hook : t -> every:int -> (t -> unit) -> unit
(** Install a periodic audit hook: [hook] fires after any instruction that
    advances the maximum core clock at least [every] cycles past the last
    firing (and from {!Thread}'s scheduler between instructions).  The hook
    must be purely observational — it runs outside simulated time, so
    enabling it never changes cycle counts.  Off by default; at most one
    hook is installed (a second call replaces the first). *)

val clear_audit_hook : t -> unit

val maybe_audit : t -> unit
(** Fire the installed audit hook if its period has elapsed (no-op
    otherwise, and when no hook is installed).  Called automatically by
    {!exec} and by {!Thread.run}; exposed for custom drivers. *)

val check_coherence : t -> (unit, string) result
(** Global invariants:
    - inclusion: every L1 line is present in L2 with matching directory bits;
    - single writer: a Trunk copy excludes all other copies;
    - at most one dirty copy per line;
    - the Skip-It safety invariant (§6.2): a valid, clean L1 line with its
      skip bit {e set} implies the L2 copy is not dirty (skipping its
      writeback cannot lose data). *)

val emit_trace_meta : t -> unit
(** When tracing is active, emit one [Meta] event per component track
    (L1s, MSHRs, flush queues, ports, L2, L3, DRAM) so the exported
    timeline declares the full topology even for components that emit no
    events during the run.  No-op when tracing is off. *)

val stats_report : t -> (string * int) list
(** Aggregated named counters from all components, prefixed by component
    (["l1.0.load_hits"], ["l2.dram_writebacks"], ["fu.0.skip_dropped"], ...).
    Every port boundary contributes its beat/stall/occupancy-wait counters
    under a ["port."] prefix (["port.l1.0.a_beats"], ["port.l2.mem.stalls"],
    ...). *)
