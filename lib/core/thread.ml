module Instr = Skipit_cpu.Instr
module Lsu = Skipit_cpu.Lsu
open Effect
open Effect.Deep

type request = Exec of Instr.t | Get_now | Get_core

type _ Effect.t += Mem : request -> int Effect.t

let perform_req r = perform (Mem r)

let load addr = perform_req (Exec (Instr.Load { addr }))
let store addr value = ignore (perform_req (Exec (Instr.Store { addr; value })))
let cas addr ~expected ~desired = perform_req (Exec (Instr.Cas { addr; expected; desired })) = 1
let clean addr = ignore (perform_req (Exec (Instr.Cbo_clean { addr })))
let flush addr = ignore (perform_req (Exec (Instr.Cbo_flush { addr })))
let inval addr = ignore (perform_req (Exec (Instr.Cbo_inval { addr })))
let zero addr = ignore (perform_req (Exec (Instr.Cbo_zero { addr })))
let fence () = ignore (perform_req (Exec Instr.Fence))
let delay n = ignore (perform_req (Exec (Instr.Delay n)))
let now () = perform_req Get_now
let core_id () = perform_req Get_core

type task = { core : int; body : unit -> unit }

type status = Done | Blocked of request * (int, status) continuation

type fiber = { fcore : int; mutable status : status }

let start body =
  match_with body ()
    {
      retc = (fun () -> Done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Mem r -> Some (fun (k : (a, status) continuation) -> Blocked (r, k))
          | _ -> None);
    }

let run_loop system ~stop tasks =
  let fibers = Array.of_list (List.map (fun t -> { fcore = t.core; status = start t.body }) tasks) in
  let n = Array.length fibers in
  (* Timestamp-ordered scheduling: always advance the fiber whose core clock
     is smallest, so cross-core state mutations happen in global time
     order.  The scan is a plain array sweep — no per-instruction list
     rebuild — and ties go to the lowest task index, matching the old
     filter-then-fold order. *)
  let live = ref 0 in
  Array.iter (fun f -> match f.status with Blocked _ -> incr live | Done -> ()) fibers;
  let pick () =
    let best = ref (-1) in
    let best_clock = ref max_int in
    for i = 0 to n - 1 do
      let f = Array.unsafe_get fibers i in
      match f.status with
      | Done -> ()
      | Blocked _ ->
        let c = Lsu.clock (System.lsu system f.fcore) in
        if !best < 0 || c < !best_clock then begin
          best := i;
          best_clock := c
        end
    done;
    !best
  in
  let rec loop () =
    if !live = 0 then `Completed (System.max_clock system)
    else if stop () then
      (* Crash point: abandon every blocked fiber mid-instruction.  The
         one-shot continuations are simply dropped (safe to GC); whatever
         the tasks were about to do next never happens — exactly a power
         failure at instruction granularity. *)
      `Stopped (System.max_clock system)
    else begin
      let fiber = fibers.(pick ()) in
      (match fiber.status with
       | Done -> assert false
       | Blocked (req, k) ->
         let lsu = System.lsu system fiber.fcore in
         let answer =
           match req with
           | Exec i -> Lsu.exec lsu i
           | Get_now -> Lsu.clock lsu
           | Get_core -> fiber.fcore
         in
         System.maybe_audit system;
         fiber.status <- continue k answer;
         match fiber.status with Done -> decr live | Blocked _ -> ());
      loop ()
    end
  in
  loop ()

let never_stop () = false

let run system tasks =
  match run_loop system ~stop:never_stop tasks with
  | `Completed c -> c
  | `Stopped _ -> assert false

let run_until system ~stop tasks = run_loop system ~stop tasks
