module Instr = Skipit_cpu.Instr
module Lsu = Skipit_cpu.Lsu
open Effect
open Effect.Deep

type request = Exec of Instr.t | Get_now | Get_core

type _ Effect.t += Mem : request -> int Effect.t

let perform_req r = perform (Mem r)

let load addr = perform_req (Exec (Instr.Load { addr }))
let store addr value = ignore (perform_req (Exec (Instr.Store { addr; value })))
let cas addr ~expected ~desired = perform_req (Exec (Instr.Cas { addr; expected; desired })) = 1
let clean addr = ignore (perform_req (Exec (Instr.Cbo_clean { addr })))
let flush addr = ignore (perform_req (Exec (Instr.Cbo_flush { addr })))
let inval addr = ignore (perform_req (Exec (Instr.Cbo_inval { addr })))
let zero addr = ignore (perform_req (Exec (Instr.Cbo_zero { addr })))
let fence () = ignore (perform_req (Exec Instr.Fence))
let delay n = ignore (perform_req (Exec (Instr.Delay n)))
let now () = perform_req Get_now
let core_id () = perform_req Get_core

type task = { core : int; body : unit -> unit }

type status = Done | Blocked of request * (int, status) continuation

type fiber = { fcore : int; mutable status : status }

let start body =
  match_with body ()
    {
      retc = (fun () -> Done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Mem r -> Some (fun (k : (a, status) continuation) -> Blocked (r, k))
          | _ -> None);
    }

let run_loop system ~stop tasks =
  let fibers = List.map (fun t -> { fcore = t.core; status = start t.body }) tasks in
  let runnable () =
    List.filter (fun f -> match f.status with Done -> false | Blocked _ -> true) fibers
  in
  (* Timestamp-ordered scheduling: always advance the fiber whose core clock
     is smallest, so cross-core state mutations happen in global time
     order. *)
  let rec loop () =
    match runnable () with
    | [] -> `Completed (System.max_clock system)
    | _ when stop () ->
      (* Crash point: abandon every blocked fiber mid-instruction.  The
         one-shot continuations are simply dropped (safe to GC); whatever
         the tasks were about to do next never happens — exactly a power
         failure at instruction granularity. *)
      `Stopped (System.max_clock system)
    | ready ->
      let fiber =
        List.fold_left
          (fun best f ->
            if Lsu.clock (System.lsu system f.fcore) < Lsu.clock (System.lsu system best.fcore)
            then f
            else best)
          (List.hd ready) (List.tl ready)
      in
      (match fiber.status with
       | Done -> assert false
       | Blocked (req, k) ->
         let lsu = System.lsu system fiber.fcore in
         let answer =
           match req with
           | Exec i -> Lsu.exec lsu i
           | Get_now -> Lsu.clock lsu
           | Get_core -> fiber.fcore
         in
         System.maybe_audit system;
         fiber.status <- continue k answer);
      loop ()
  in
  loop ()

let never_stop () = false

let run system tasks =
  match run_loop system ~stop:never_stop tasks with
  | `Completed c -> c
  | `Stopped _ -> assert false

let run_until system ~stop tasks = run_loop system ~stop tasks
