(** Simulated hardware threads over the shared memory hierarchy.

    The multi-threaded experiments (§7.2–§7.4) need concurrent instruction
    streams whose cache interactions interleave.  A {!task} is ordinary
    OCaml code that performs memory operations through this module's typed
    effects; the scheduler runs all tasks cooperatively, always resuming the
    thread whose core clock is {e smallest}, so shared-state mutations occur
    in global timestamp order at memory-operation granularity.

    All operation functions below must be called from inside a running task
    (they perform effects handled by {!run}); calling them elsewhere raises
    [Effect.Unhandled]. *)

val load : int -> int
val store : int -> int -> unit
val cas : int -> expected:int -> desired:int -> bool
val clean : int -> unit
(** CBO.CLEAN of the line containing the address (asynchronous: returns at
    commit; completion is enforced by {!fence}). *)

val flush : int -> unit
(** CBO.FLUSH, same asynchrony. *)

val inval : int -> unit
(** CBO.INVAL (CMO extension): discard the line everywhere, no writeback. *)

val zero : int -> unit
(** CBO.ZERO (CMO extension): zero-fill the line. *)

val fence : unit -> unit
(** FENCE RW,RW — waits for all of this core's pending writebacks. *)

val delay : int -> unit
(** Non-memory work. *)

val now : unit -> int
(** This core's current clock. *)

val core_id : unit -> int

type task = { core : int; body : unit -> unit }

val run : System.t -> task list -> int
(** Run all tasks to completion; returns the final maximum core clock.
    Several tasks may share a core (they interleave on its clock).  Raises
    whatever a task body raises. *)

val run_until :
  System.t -> stop:(unit -> bool) -> task list -> [ `Completed of int | `Stopped of int ]
(** Like {!run}, but [stop] is consulted before every instruction dispatch;
    when it returns [true] all remaining fibers are abandoned {e
    mid-instruction} and [`Stopped max_clock] is returned — a power failure
    at instruction granularity (the crash-campaign driver's primitive).
    Typical predicate: "the persist log has reached [n] events". *)
