(** Experiment configurations.

    Re-exports the microarchitectural parameter block and provides the
    presets used throughout the evaluation (§7.1): the FireSim-style
    dual-core platform for the microbenchmarks and the Enzian-style
    platform for the data-structure runs differ only in host frequency,
    which the simulator does not model — both map to {!platform}. *)

module Params = Skipit_cache.Params
module Geometry = Skipit_cache.Geometry

val default : Params.t
(** Single-core SonicBOOM with the paper's cache sizes, Skip It off. *)

val platform :
  ?cores:int ->
  ?skip_it:bool ->
  ?topology:[ `Crossbar | `Shared_bus | `Banked_bus ] ->
  ?l2_banks:int ->
  unit ->
  Params.t
(** The §7.1 SoC: 32 KiB 8-way L1 per core, shared 512 KiB inclusive L2,
    64 B lines, 16 B bus, 8 FSHRs, 8-deep flush queue.  [topology] selects
    the client↔L2 interconnect wiring (default [`Crossbar], the SiFive
    elaboration); [l2_banks] the NUCA bank count (default 1, the paper's
    monolithic L2). *)

val tiny : ?cores:int -> unit -> Params.t
(** A deliberately small hierarchy (2 KiB L1 / 8 KiB L2) that forces
    evictions quickly — for tests that exercise replacement, inclusion and
    eviction/flush interference. *)
