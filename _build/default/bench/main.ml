(* Benchmark harness.

   Two parts:

   1. Figure regeneration — runs every evaluation experiment of the paper
      (Figs 9-16 plus the §7.2 scalars) at full fidelity and prints the rows
      behind each plot, followed by the design-choice ablations from
      DESIGN.md.

   2. A Bechamel suite with one [Test.make] per table/figure (the quick
      variant of each driver, so the regression harness measures the cost of
      regenerating each experiment) plus microbenchmarks of the simulator's
      hot operations. *)

open Bechamel
open Toolkit

module Figures = Skipit_workload.Figures
module Ablation = Skipit_workload.Ablation
module S = Skipit_core.System
module C = Skipit_core.Config

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let figure_test name =
  Test.make ~name
    (Staged.stage (fun () ->
       match Figures.by_name name with
       | Some f -> f ~quick:true null_ppf
       | None -> assert false))

(* Hot-path microbenchmarks of the simulator itself. *)
let sim_tests =
  let make_hot name f =
    Test.make ~name
      (Staged.stage (fun () ->
         let sys = S.create (C.platform ~cores:1 ~skip_it:true ()) in
         let addr = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
         f sys addr))
  in
  [
    make_hot "sim/store+clean+fence" (fun sys addr ->
      S.store sys ~core:0 addr 1;
      S.clean sys ~core:0 addr;
      S.fence sys ~core:0);
    make_hot "sim/load-hit-x100" (fun sys addr ->
      S.store sys ~core:0 addr 1;
      for _ = 1 to 100 do
        ignore (S.load sys ~core:0 addr)
      done);
    make_hot "sim/skip-drop-x100" (fun sys addr ->
      S.store sys ~core:0 addr 1;
      S.clean sys ~core:0 addr;
      S.fence sys ~core:0;
      for _ = 1 to 100 do
        S.clean sys ~core:0 addr
      done;
      S.fence sys ~core:0);
  ]

let all_tests =
  Test.make_grouped ~name:"skipit" ~fmt:"%s %s"
    (List.map figure_test
       [ "scalar"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "fig15"; "fig16" ]
    @ sim_tests)

let run_bechamel () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n== Bechamel: one Test.make per figure (regeneration cost) ==\n";
  Printf.printf "%-28s %16s %10s\n" "test" "ns/run" "r^2";
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
       let est =
         match Analyze.OLS.estimates ols with Some (x :: _) -> x | Some [] | None -> nan
       in
       let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
       Printf.printf "%-28s %16.0f %10.3f\n" name est r2)

let () =
  let ppf = Format.std_formatter in
  Format.pp_open_vbox ppf 0;
  Figures.all ~quick:false ppf;
  Ablation.run_all ppf;
  Format.pp_close_box ppf ();
  Format.pp_print_newline ppf ();
  run_bechamel ()
