(* The figure drivers and the analytic commercial-CPU models: sanity of the
   shapes the paper reports. *)

module Micro = Skipit_workload.Micro
module Series = Skipit_workload.Series
module Ds_bench = Skipit_workload.Ds_bench
module Ablation = Skipit_workload.Ablation
module Model = Skipit_xarch.Model
module Distribution = Skipit_sim.Distribution
module Rng = Skipit_sim.Rng
open Skipit_tilelink

let ys series = List.map (fun p -> p.Series.y) series.Series.points

let test_single_line_near_100 () =
  let median, _ = Micro.single_line ~kind:Message.Wb_flush ~repeats:5 () in
  Alcotest.(check bool) "§7.2: ~100 cycles" true (median > 60. && median < 160.)

let test_sweep_monotone () =
  let s =
    Micro.writeback_sweep ~kind:Message.Wb_flush ~threads:1 ~sizes:[ 64; 1024; 32768 ]
      ~repeats:1 ()
  in
  match ys s with
  | [ a; b; c ] -> Alcotest.(check bool) "monotone in size" true (a < b && b < c)
  | _ -> Alcotest.fail "expected 3 points"

let test_thread_scaling () =
  let at threads =
    match
      ys (Micro.writeback_sweep ~kind:Message.Wb_flush ~threads ~sizes:[ 32768 ] ~repeats:1 ())
    with
    | [ y ] -> y
    | _ -> Alcotest.fail "expected 1 point"
  in
  let t1 = at 1 and t8 = at 8 in
  let speedup = t1 /. t8 in
  Alcotest.(check bool)
    (Printf.sprintf "8 threads speed up 5-8x (got %.1f)" speedup)
    true
    (speedup > 4.5 && speedup < 8.5)

let test_clean_vs_flush_reread () =
  let total kind =
    match
      ys (Micro.write_wb_read ~kind ~threads:1 ~sizes:[ 4096 ] ~repeats:1 ())
    with
    | [ y ] -> y
    | _ -> Alcotest.fail "expected 1 point"
  in
  let clean = total Message.Wb_clean and flush = total Message.Wb_flush in
  Alcotest.(check bool)
    (Printf.sprintf "flush reread costlier (%.0f vs %.0f)" flush clean)
    true
    (flush > clean *. 1.2)

let test_skip_it_beats_naive () =
  let run skip_it =
    match
      ys
        (Micro.redundant ~kind:Message.Wb_clean ~skip_it ~threads:1 ~redundant:10
           ~sizes:[ 4096 ] ~repeats:1 ())
    with
    | [ y ] -> y
    | _ -> Alcotest.fail "expected 1 point"
  in
  let naive = run false and skip = run true in
  let gain = (naive -. skip) /. naive in
  Alcotest.(check bool)
    (Printf.sprintf "Fig 13 band: 10-40%% (got %.0f%%)" (gain *. 100.))
    true
    (gain > 0.10 && gain < 0.45)

let test_ds_bench_sanity () =
  let w =
    { Ds_bench.default_workload with Ds_bench.key_range = 128; prefill = 64; window = 60_000 }
  in
  let tput spec = Ds_bench.throughput ~kind:Skipit_pds.Set_ops.Hash_set ~mode:Skipit_persist.Pctx.Automatic ~spec w in
  let baseline = tput Ds_bench.Baseline in
  let plain = tput Ds_bench.Plain in
  let skipit = tput Ds_bench.Skipit in
  Alcotest.(check bool) "baseline fastest" true (baseline > plain && baseline > skipit);
  Alcotest.(check bool) "skip-it beats plain under automatic" true (skipit > plain);
  Alcotest.(check bool) "lap x bst = n/a" true
    (Float.is_nan
       (Ds_bench.throughput ~kind:Skipit_pds.Set_ops.Bst_set
          ~mode:Skipit_persist.Pctx.Automatic ~spec:Ds_bench.Link_and_persist w))

let test_xarch_shapes () =
  (* Intel clflush must blow up at large sizes relative to clflushopt. *)
  let clflush = Model.latency Model.Intel_clflush ~threads:1 ~bytes:32768 in
  let opt = Model.latency Model.Intel_clflushopt ~threads:1 ~bytes:32768 in
  Alcotest.(check bool) "clflush serializes" true (clflush > 4. *. opt);
  (* AMD's two instructions behave alike (§7.3). *)
  let amd_f = Model.latency Model.Amd_clflush ~threads:1 ~bytes:32768 in
  let amd_o = Model.latency Model.Amd_clflushopt ~threads:1 ~bytes:32768 in
  Alcotest.(check bool) "amd variants close" true (Float.abs (amd_f -. amd_o) /. amd_o < 0.1);
  (* Graviton grows sub-linearly: overtakes the x86 weak flushes at 32 KiB. *)
  let grav = Model.latency Model.Graviton_civac ~threads:1 ~bytes:32768 in
  Alcotest.(check bool) "graviton sublinear wins large" true (grav < opt);
  let opt_small = Model.latency Model.Intel_clflushopt ~threads:1 ~bytes:64 in
  let grav_small = Model.latency Model.Graviton_civac ~threads:1 ~bytes:64 in
  Alcotest.(check bool) "but similar at small sizes" true
    (grav_small > 0.5 *. opt_small && grav_small < 2. *. opt_small);
  (* More threads never hurt a fixed total size. *)
  List.iter
    (fun instr ->
      let one = Model.latency instr ~threads:1 ~bytes:32768 in
      let eight = Model.latency instr ~threads:8 ~bytes:32768 in
      Alcotest.(check bool) (Model.name instr ^ " scales") true (eight < one))
    Model.all

let test_ablation_fshr_scaling () =
  let s = Ablation.fshr_count ~counts:[ 1; 8 ] () in
  match ys s with
  | [ one; eight ] ->
    Alcotest.(check bool) "8 FSHRs ~8x the MLP" true (one /. eight > 6.)
  | _ -> Alcotest.fail "expected 2 points"

let test_ablation_queue_depth () =
  let s = Ablation.queue_depth ~depths:[ 0; 8 ] () in
  match ys s with
  | [ sync; buffered ] ->
    Alcotest.(check bool) "buffering pays" true (sync > 2. *. buffered)
  | _ -> Alcotest.fail "expected 2 points"

let test_figures_registry () =
  Alcotest.(check int) "ten entries" 10 (List.length Skipit_workload.Figures.names);
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (Skipit_workload.Figures.by_name name <> None))
    Skipit_workload.Figures.names;
  Alcotest.(check bool) "unknown name" true (Skipit_workload.Figures.by_name "fig99" = None)

let test_series_map_y () =
  let s = Series.v "a" [ 1., 10.; 2., 20. ] in
  let doubled = Series.map_y (fun y -> y *. 2.) s in
  Alcotest.(check (list (float 1e-9))) "doubled" [ 20.; 40. ] (ys doubled)

let test_series_rendering () =
  let s = Series.v "a" [ 1., 10.; 2., 20. ] in
  let txt = Format.asprintf "@[<v>%a@]" (Series.pp_table ~x_name:"x" ~y_name:"") [ s ] in
  Alcotest.(check bool) "has header" true (String.length txt > 0);
  let csv = Format.asprintf "@[<v>%a@]" Series.pp_csv [ s ] in
  Alcotest.(check bool) "csv rows" true (String.split_on_char '\n' csv |> List.length >= 3);
  Alcotest.(check string) "bytes label KiB" "4KiB" (Series.bytes_label 4096);
  Alcotest.(check string) "bytes label B" "64B" (Series.bytes_label 64)

let test_distribution () =
  let rng = Rng.create ~seed:3 in
  let u = Distribution.uniform ~lo:5 ~hi:10 in
  for _ = 1 to 200 do
    let v = Distribution.sample u rng in
    if v < 5 || v > 10 then Alcotest.fail "uniform out of range"
  done;
  let z = Distribution.zipf ~n:100 ~theta:0.99 in
  let counts = Array.make 100 0 in
  for _ = 1 to 2000 do
    let v = Distribution.sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "zipf skews to head" true (counts.(0) > counts.(50) * 3);
  Alcotest.(check int) "constant" 7 (Distribution.sample (Distribution.constant 7) rng)

let tests =
  ( "workload",
    [
      Alcotest.test_case "§7.2 single line ~100cy" `Quick test_single_line_near_100;
      Alcotest.test_case "sweep monotone" `Quick test_sweep_monotone;
      Alcotest.test_case "8-thread scaling (Fig 9)" `Slow test_thread_scaling;
      Alcotest.test_case "clean vs flush reread (Fig 10)" `Quick test_clean_vs_flush_reread;
      Alcotest.test_case "skip-it beats naive (Fig 13)" `Quick test_skip_it_beats_naive;
      Alcotest.test_case "ds bench ordering (Fig 14)" `Slow test_ds_bench_sanity;
      Alcotest.test_case "xarch model shapes (Figs 11/12)" `Quick test_xarch_shapes;
      Alcotest.test_case "ablation: FSHR MLP" `Quick test_ablation_fshr_scaling;
      Alcotest.test_case "ablation: queue depth" `Quick test_ablation_queue_depth;
      Alcotest.test_case "figures registry" `Quick test_figures_registry;
      Alcotest.test_case "series map_y" `Quick test_series_map_y;
      Alcotest.test_case "series rendering" `Quick test_series_rendering;
      Alcotest.test_case "distributions" `Quick test_distribution;
    ] )
