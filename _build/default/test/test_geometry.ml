module Geometry = Skipit_cache.Geometry

let test_boom_presets () =
  let l1 = Geometry.boom_l1 in
  Alcotest.(check int) "L1 sets" 64 l1.Geometry.sets;
  Alcotest.(check int) "L1 ways" 8 l1.Geometry.ways;
  Alcotest.(check int) "L1 lines" 512 (Geometry.lines l1);
  let l2 = Geometry.boom_l2 in
  Alcotest.(check int) "L2 sets" 1024 l2.Geometry.sets;
  Alcotest.(check int) "L2 lines" 8192 (Geometry.lines l2)

let test_slicing () =
  let g = Geometry.v ~size_bytes:4096 ~ways:2 ~line_bytes:64 in
  Alcotest.(check int) "sets" 32 g.Geometry.sets;
  Alcotest.(check int) "line base" 0x1000 (Geometry.line_base g 0x103f);
  Alcotest.(check int) "offset word" 7 (Geometry.offset_word g 0x1038);
  Alcotest.(check int) "words per line" 8 (Geometry.words_per_line g)

let test_invalid () =
  Alcotest.check_raises "non-power-of-two line"
    (Invalid_argument "Geometry: line_bytes not a power of two") (fun () ->
      ignore (Geometry.v ~size_bytes:4096 ~ways:2 ~line_bytes:48));
  Alcotest.check_raises "indivisible size"
    (Invalid_argument "Geometry: size not divisible by ways*line") (fun () ->
      ignore (Geometry.v ~size_bytes:4000 ~ways:2 ~line_bytes:64))

let prop_roundtrip =
  QCheck.Test.make ~name:"tag/index/addr_of roundtrip" ~count:500
    QCheck.(int_range 0 0xFF_FFFF)
  @@ fun addr ->
  let g = Skipit_cache.Geometry.boom_l1 in
  let tag = Geometry.tag_of g addr in
  let index = Geometry.index_of g addr in
  Geometry.addr_of g ~tag ~index = Geometry.line_base g addr

let prop_same_line_same_slice =
  QCheck.Test.make ~name:"addresses in one line share tag+index" ~count:500
    QCheck.(pair (int_range 0 0xFF_FFFF) (int_range 0 63))
  @@ fun (addr, off) ->
  let g = Skipit_cache.Geometry.boom_l1 in
  let base = Geometry.line_base g addr in
  Geometry.tag_of g base = Geometry.tag_of g (base + off)
  && Geometry.index_of g base = Geometry.index_of g (base + off)

let tests =
  ( "geometry",
    [
      Alcotest.test_case "boom presets" `Quick test_boom_presets;
      Alcotest.test_case "address slicing" `Quick test_slicing;
      Alcotest.test_case "invalid params rejected" `Quick test_invalid;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_same_line_same_slice;
    ] )
