(* Edge cases across the stack that the mainline suites do not reach:
   parameter validation, config presets, recall-on-L2-eviction with dirty L1
   data, load nacks on dataless writebacks, skiplist internals. *)

module S = Skipit_core.System
module C = Skipit_core.Config
module T = Skipit_core.Thread
module Params = Skipit_cache.Params
module Geometry = Skipit_cache.Geometry
module Dcache = Skipit_l1.Dcache
open Skipit_tilelink

let test_params_validation () =
  let bad f = Result.is_error (Params.validate (f Params.boom_default)) in
  Alcotest.(check bool) "zero cores" true (bad (fun p -> { p with Params.n_cores = 0 }));
  Alcotest.(check bool) "mismatched lines" true
    (bad (fun p ->
       { p with Params.l2_geom = Geometry.v ~size_bytes:4096 ~ways:2 ~line_bytes:128 }));
  Alcotest.(check bool) "bus must divide line" true
    (bad (fun p -> { p with Params.bus_bytes = 48 }));
  Alcotest.(check bool) "no fshrs" true (bad (fun p -> { p with Params.n_fshrs = 0 }));
  Alcotest.(check bool) "negative queue" true
    (bad (fun p -> { p with Params.flush_queue_depth = -1 }));
  Alcotest.(check bool) "empty stq" true (bad (fun p -> { p with Params.stq_entries = 0 }));
  Alcotest.(check bool) "default valid" true (Result.is_ok (Params.validate Params.boom_default));
  Alcotest.(check bool) "l3 preset valid" true
    (Result.is_ok (Params.validate (Params.with_l3 Params.boom_default)));
  Alcotest.check_raises "System.create validates"
    (Invalid_argument "System.create: n_cores must be positive") (fun () ->
      ignore (S.create { Params.boom_default with Params.n_cores = 0 }))

let test_config_presets () =
  let p = C.platform ~cores:2 ~skip_it:true () in
  Alcotest.(check int) "cores" 2 p.Params.n_cores;
  Alcotest.(check bool) "skip" true p.Params.skip_it;
  Alcotest.(check int) "L1 32KiB" (32 * 1024) p.Params.l1_geom.Geometry.size_bytes;
  Alcotest.(check int) "L2 512KiB" (512 * 1024) p.Params.l2_geom.Geometry.size_bytes;
  Alcotest.(check int) "beats" 4 (Params.data_beats p);
  let tiny = C.tiny () in
  Alcotest.(check bool) "tiny smaller" true
    (tiny.Params.l1_geom.Geometry.size_bytes < 4096);
  Alcotest.(check int) "narrow array cycles" 8
    (Params.fill_buffer_cycles { p with Params.wide_data_array = false })

let test_l2_eviction_recalls_dirty_l1 () =
  (* Force an L2 conflict eviction of a line that is dirty in the L1: the
     recall must preserve the data all the way to DRAM. *)
  let sys = S.create (C.tiny ~cores:1 ()) in
  let sets = (S.params sys).Params.l2_geom.Geometry.sets in
  let stride = sets * 64 in
  let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:stride (stride * 8) in
  (* 8 lines aliasing one L2 set (4 ways); all dirty in L1 (L1 has 2 ways on
     the same set, so L1 evictions interleave too). *)
  for i = 0 to 7 do
    S.store sys ~core:0 (base + (i * stride)) (300 + i)
  done;
  (match S.check_coherence sys with Ok () -> () | Error e -> Alcotest.fail e);
  for i = 0 to 7 do
    Alcotest.(check int) "recalled value" (300 + i) (S.load sys ~core:0 (base + (i * stride)))
  done

let test_load_nack_on_dataless_writeback () =
  (* A clean of a non-dirty line has no data buffer; a load racing it after
     invalidation... a FLUSH of a clean line: no buffer, so the load is
     nacked until the ack (§5.3). *)
  let sys = S.create (C.platform ~cores:1 ()) in
  let dc = S.dcache sys 0 in
  let a = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  ignore (Dcache.load dc ~addr:a ~now:0) (* clean line in L1 *);
  let r = Dcache.cbo dc ~addr:a ~kind:Message.Wb_flush ~now:1000 in
  let _, t = Dcache.load dc ~addr:a ~now:(r.Dcache.commit_at + 1) in
  Alcotest.(check bool) "load waited for the ack" true (t > r.Dcache.ack_at);
  Alcotest.(check bool) "nack counted" true
    (Skipit_sim.Stats.Registry.get (Dcache.stats dc) "load_nacks" >= 1)

let test_skiplist_towers () =
  (* Tower heights are deterministic in the key and bounded. *)
  let module SL = Skipit_pds.Skiplist in
  let sys = S.create (C.platform ~cores:1 ()) in
  let p = Skipit_persist.Pctx.make (Skipit_persist.Strategy.plain ()) Skipit_persist.Pctx.Manual in
  let sl = ref None in
  ignore
    (T.run sys
       [
         {
           T.core = 0;
           body =
             (fun () ->
               let t = SL.create p (S.allocator sys) in
               for k = 1 to 200 do
                 ignore (SL.insert t p k)
               done;
               (* Delete every third key and verify membership via contains. *)
               for k = 1 to 66 do
                 ignore (SL.delete t p (k * 3))
               done;
               for k = 1 to 200 do
                 let want = k mod 3 <> 0 in
                 if SL.contains t p k <> want then
                   Alcotest.failf "skiplist membership wrong at %d" k
               done;
               sl := Some t);
         };
       ]);
  let t = Option.get !sl in
  Alcotest.(check int) "134 keys left" 134 (List.length (SL.elements_unsafe t sys));
  match S.check_coherence sys with Ok () -> () | Error e -> Alcotest.fail e

let test_zero_size_writeback_region () =
  (* A sweep at exactly one line with 8 threads: only thread 0 works. *)
  let s =
    Skipit_workload.Micro.writeback_sweep ~kind:Message.Wb_flush ~threads:8 ~sizes:[ 64 ]
      ~repeats:1 ()
  in
  match s.Skipit_workload.Series.points with
  | [ p ] -> Alcotest.(check bool) "sane single-line result" true (p.Skipit_workload.Series.y > 50.)
  | _ -> Alcotest.fail "expected one point"

let test_peek_prefers_dirty_copy () =
  let sys = S.create (C.platform ~cores:2 ()) in
  let a = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  S.poke_word sys a 1;
  ignore (S.load sys ~core:1 a) (* core1 has the stale-free copy *);
  S.store sys ~core:0 a 2 (* core0 now dirty *);
  Alcotest.(check int) "peek returns the dirty copy" 2 (S.peek_word sys a)

let tests =
  ( "edges",
    [
      Alcotest.test_case "params validation" `Quick test_params_validation;
      Alcotest.test_case "config presets" `Quick test_config_presets;
      Alcotest.test_case "L2 eviction recalls dirty L1" `Quick test_l2_eviction_recalls_dirty_l1;
      Alcotest.test_case "load nack on dataless writeback" `Quick test_load_nack_on_dataless_writeback;
      Alcotest.test_case "skiplist towers + membership" `Quick test_skiplist_towers;
      Alcotest.test_case "one-line sweep, 8 threads" `Quick test_zero_size_writeback_region;
      Alcotest.test_case "peek prefers dirty copy" `Quick test_peek_prefers_dirty_copy;
    ] )
