(* The persistence-discipline layer: which accesses reach the strategy's
   persist points under automatic / NVTraverse / manual (§7.4), observed
   through the flush unit's counters. *)

module S = Skipit_core.System
module T = Skipit_core.Thread
module C = Skipit_core.Config
module Strategy = Skipit_persist.Strategy
module Pctx = Skipit_persist.Pctx

let run_task sys body = ignore (T.run sys [ { T.core = 0; body } ])

let submitted sys =
  Option.value ~default:0 (List.assoc_opt "fu.0.submitted" (S.stats_report sys))

(* One traversal read + one critical read + one write + one explicit persist
   point + commit, under the plain strategy (every persist = one flush). *)
let flushes_for mode =
  let sys = S.create (C.platform ~cores:1 ()) in
  let a = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  let p = Pctx.make (Strategy.plain ()) mode in
  run_task sys (fun () ->
    T.store a 1 (* make the line dirty so load-side persists fire *);
    ignore (Pctx.read_traverse p a);
    ignore (Pctx.read_critical p a);
    Pctx.write p a 2;
    Pctx.persist p a;
    Pctx.commit p ~updated:true);
  submitted sys

let test_mode_gating () =
  (* automatic: traverse-read + critical-read + write all persist; the
     explicit point is a no-op (already covered).  nvtraverse: critical-read
     + write.  manual: only the explicit point. *)
  Alcotest.(check int) "automatic persists 3 accesses" 3 (flushes_for Pctx.Automatic);
  Alcotest.(check int) "nvtraverse persists 2" 2 (flushes_for Pctx.Nvtraverse);
  Alcotest.(check int) "manual persists 1" 1 (flushes_for Pctx.Manual)

let fences_for mode ~updated =
  let sys = S.create (C.platform ~cores:1 ()) in
  let a = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  let p = Pctx.make (Strategy.plain ()) mode in
  (* Measure whether commit waits on a pending writeback. *)
  let waited = ref false in
  run_task sys (fun () ->
    T.store a 1;
    T.flush a;
    let t0 = T.now () in
    Pctx.commit p ~updated;
    waited := T.now () - t0 > 50);
  !waited

let test_commit_fencing () =
  Alcotest.(check bool) "automatic fences read-only ops" true
    (fences_for Pctx.Automatic ~updated:false);
  Alcotest.(check bool) "nvtraverse skips read-only fences" false
    (fences_for Pctx.Nvtraverse ~updated:false);
  Alcotest.(check bool) "nvtraverse fences updates" true
    (fences_for Pctx.Nvtraverse ~updated:true);
  Alcotest.(check bool) "manual fences updates" true (fences_for Pctx.Manual ~updated:true)

let test_cas_persist_only_on_success () =
  let sys = S.create (C.platform ~cores:1 ()) in
  let a = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  let p = Pctx.make (Strategy.plain ()) Pctx.Nvtraverse in
  run_task sys (fun () ->
    T.store a 1;
    ignore (Pctx.cas p a ~expected:99 ~desired:2) (* fails: no persist *));
  Alcotest.(check int) "failed cas persists nothing" 0 (submitted sys);
  run_task sys (fun () -> ignore (Pctx.cas p a ~expected:1 ~desired:2));
  Alcotest.(check int) "successful cas persists" 1 (submitted sys)

let test_metadata () =
  let p = Pctx.make (Strategy.flit_adjacent ()) Pctx.Manual in
  Alcotest.(check int) "stride from strategy" 16 (Pctx.stride p);
  Alcotest.(check string) "mode name" "manual" (Pctx.mode_name (Pctx.mode p));
  Alcotest.(check string) "strategy name" "flit-adjacent" (Pctx.strategy p).Strategy.name;
  Alcotest.(check int) "all modes" 3 (List.length Pctx.all_modes)

let tests =
  ( "pctx",
    [
      Alcotest.test_case "mode gating of persists" `Quick test_mode_gating;
      Alcotest.test_case "commit fencing rules" `Quick test_commit_fencing;
      Alcotest.test_case "cas persists only on success" `Quick test_cas_persist_only_on_success;
      Alcotest.test_case "metadata accessors" `Quick test_metadata;
    ] )
