(* Whole-ISA fuzzing against a line-granular reference model.

   The reference mirrors both the architectural state (mem) and the
   persistence domain (persisted) at word granularity with line-granular
   writeback/discard semantics:

   - store/cas mutate mem;
   - clean/flush copy the line's mem words into persisted (our simulator
     applies writeback effects eagerly, so the reference may too);
   - inval reverts the line's mem words to persisted (cached copies are
     discarded);
   - zero clears the line's mem words;
   - crash reverts all of mem to persisted.

   Any divergence in a loaded value, a persisted word, or a coherence /
   inclusion / skip-bit invariant fails the property. *)

module S = Skipit_core.System
module C = Skipit_core.Config
module Rng = Skipit_sim.Rng

type reference = { mem : (int, int) Hashtbl.t; persisted : (int, int) Hashtbl.t }

let ref_create () = { mem = Hashtbl.create 64; persisted = Hashtbl.create 64 }
let get tbl a = Option.value ~default:0 (Hashtbl.find_opt tbl a)
let line_words a = List.init 8 (fun w -> (a land lnot 63) + (w * 8))

let ref_store r a v = Hashtbl.replace r.mem a v

let ref_writeback r a =
  List.iter (fun w -> Hashtbl.replace r.persisted w (get r.mem w)) (line_words a)

let ref_inval r a =
  List.iter (fun w -> Hashtbl.replace r.mem w (get r.persisted w)) (line_words a)

let ref_zero r a = List.iter (fun w -> Hashtbl.replace r.mem w 0) (line_words a)

let ref_crash r =
  Hashtbl.reset r.mem;
  Hashtbl.iter (fun k v -> Hashtbl.replace r.mem k v) r.persisted

let run ?(random_replacement = false) ~tiny ~skip_it ~l3 ~cores ~ops ~seed () =
  let params =
    let p = if tiny then C.tiny ~cores () else C.platform ~cores () in
    let p = { p with Skipit_cache.Params.skip_it } in
    let p = if random_replacement then { p with Skipit_cache.Params.l1_replacement = `Random } else p in
    if l3 then Skipit_cache.Params.with_l3 p else p
  in
  let sys = S.create params in
  let rng = Rng.create ~seed in
  let lines =
    Array.init 16 (fun _ -> Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64)
  in
  let r = ref_create () in
  let failed = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !failed = None then failed := Some s) fmt in
  for op = 1 to ops do
    if !failed = None then begin
      let core = Rng.int rng cores in
      let a = lines.(Rng.int rng (Array.length lines)) + (8 * Rng.int rng 8) in
      (match Rng.int rng 20 with
       | 0 | 1 | 2 | 3 | 4 ->
         let got = S.load sys ~core a in
         if got <> get r.mem a then fail "op%d load %#x: got %d want %d" op a got (get r.mem a)
       | 5 | 6 | 7 | 8 | 9 ->
         let v = Rng.int rng 10000 in
         S.store sys ~core a v;
         ref_store r a v
       | 10 | 11 ->
         let expected = if Rng.bool rng then get r.mem a else Rng.int rng 10000 in
         let desired = Rng.int rng 10000 in
         let got = S.cas sys ~core a ~expected ~desired in
         let want = get r.mem a = expected in
         if got <> want then fail "op%d cas %#x: got %b want %b" op a got want;
         if want then ref_store r a desired
       | 12 | 13 ->
         S.clean sys ~core a;
         S.fence sys ~core;
         ref_writeback r a
       | 14 | 15 ->
         S.flush sys ~core a;
         S.fence sys ~core;
         ref_writeback r a
       | 16 ->
         S.inval sys ~core a;
         ref_inval r a
       | 17 ->
         S.zero sys ~core a;
         ref_zero r a
       | 18 -> S.fence sys ~core
       | _ ->
         S.crash sys;
         ref_crash r);
      (* Spot-check invariants every few ops (full check is O(cache)). *)
      if op mod 25 = 0 then begin
        match S.check_coherence sys with
        | Ok () -> ()
        | Error e -> fail "op%d invariant: %s" op e
      end
    end
  done;
  (* Final sweep: architectural and persisted images must both match. *)
  if !failed = None then
    Array.iter
      (fun base ->
        List.iter
          (fun w ->
            if S.peek_word sys w <> get r.mem w then
              fail "final mem %#x: got %d want %d" w (S.peek_word sys w) (get r.mem w);
            if S.persisted_word sys w <> get r.persisted w then
              fail "final persisted %#x: got %d want %d" w (S.persisted_word sys w)
                (get r.persisted w))
          (line_words base))
      lines;
  !failed

let check name outcome =
  match outcome with None -> () | Some msg -> Alcotest.failf "%s: %s" name msg

let test_boom_2c () = check "boom" (run ~tiny:false ~skip_it:true ~l3:false ~cores:2 ~ops:600 ~seed:5 ())
let test_tiny_2c () = check "tiny" (run ~tiny:true ~skip_it:false ~l3:false ~cores:2 ~ops:600 ~seed:6 ())
let test_l3_2c () = check "l3" (run ~tiny:false ~skip_it:true ~l3:true ~cores:2 ~ops:600 ~seed:7 ())
let test_quad () = check "4-core" (run ~tiny:true ~skip_it:true ~l3:false ~cores:4 ~ops:600 ~seed:8 ())

let test_random_replacement () =
  check "random-repl"
    (run ~random_replacement:true ~tiny:true ~skip_it:true ~l3:false ~cores:2 ~ops:600 ~seed:9 ())

let prop_fuzz =
  QCheck.Test.make ~name:"full-ISA fuzz vs reference" ~count:20
    QCheck.(quad small_int bool bool (int_range 1 4))
  @@ fun (seed, skip_it, l3, cores) ->
  match run ~tiny:(not l3) ~skip_it ~l3 ~cores ~ops:250 ~seed () with
  | None -> true
  | Some msg -> QCheck.Test.fail_report msg

(* Timing parameters must never change architectural outcomes: the same
   program (no inval/crash — their discard semantics legitimately depend on
   what happened to be written back) yields identical memory values under
   radically different geometries and latencies. *)
let prop_timing_independent =
  QCheck.Test.make ~name:"architectural values independent of timing config" ~count:10
    QCheck.small_int
  @@ fun seed ->
  let configs =
    [
      C.platform ~cores:2 ();
      C.tiny ~cores:2 ();
      Skipit_cache.Params.with_l3 (C.platform ~cores:2 ~skip_it:true ());
      { (C.platform ~cores:2 ()) with
        Skipit_cache.Params.n_fshrs = 1;
        flush_queue_depth = 0;
        wide_data_array = false;
        async_stores = false;
      };
    ]
  in
  let outcome params =
    let sys = S.create params in
    let rng = Rng.create ~seed in
    let lines =
      Array.init 12 (fun _ -> Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64)
    in
    for _ = 1 to 300 do
      let core = Rng.int rng 2 in
      let a = lines.(Rng.int rng (Array.length lines)) + (8 * Rng.int rng 8) in
      match Rng.int rng 8 with
      | 0 | 1 | 2 -> ignore (S.load sys ~core a)
      | 3 | 4 -> S.store sys ~core a (Rng.int rng 1000)
      | 5 -> ignore (S.cas sys ~core a ~expected:(Rng.int rng 1000) ~desired:(Rng.int rng 1000))
      | 6 -> S.clean sys ~core a
      | _ ->
        S.flush sys ~core a;
        S.fence sys ~core
    done;
    Array.to_list lines
    |> List.concat_map (fun base -> List.map (fun w -> S.peek_word sys w) (line_words base))
  in
  match List.map outcome configs with
  | first :: rest -> List.for_all (fun o -> o = first) rest
  | [] -> true

let tests =
  ( "fuzz",
    [
      Alcotest.test_case "boom 2-core" `Quick test_boom_2c;
      Alcotest.test_case "tiny 2-core" `Quick test_tiny_2c;
      Alcotest.test_case "with L3" `Quick test_l3_2c;
      Alcotest.test_case "4-core" `Quick test_quad;
      Alcotest.test_case "random replacement" `Quick test_random_replacement;
      QCheck_alcotest.to_alcotest prop_fuzz;
      QCheck_alcotest.to_alcotest prop_timing_independent;
    ] )
