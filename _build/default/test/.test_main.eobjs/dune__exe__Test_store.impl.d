test/test_store.ml: Alcotest Hashtbl List QCheck QCheck_alcotest Skipit_cache Skipit_sim
