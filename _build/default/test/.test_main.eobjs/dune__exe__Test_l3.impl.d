test/test_l3.ml: Alcotest Array Fun List Option Printf Skipit_cache Skipit_core Skipit_l1 Skipit_l2 Skipit_mem Skipit_sim
