test/test_thread.ml: Alcotest List Skipit_core Skipit_mem
