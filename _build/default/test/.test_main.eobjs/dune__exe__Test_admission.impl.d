test/test_admission.ml: Alcotest List QCheck QCheck_alcotest Skipit_cache Skipit_core Skipit_mem Skipit_sim
