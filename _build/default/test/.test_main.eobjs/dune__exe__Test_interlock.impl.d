test/test_interlock.ml: Alcotest List QCheck QCheck_alcotest Skipit_l1 Skipit_sim
