test/test_cpu.ml: Alcotest Format Skipit_cache Skipit_core Skipit_cpu Skipit_mem
