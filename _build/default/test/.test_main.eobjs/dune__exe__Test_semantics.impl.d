test/test_semantics.ml: Alcotest List Option Printf Skipit_core Skipit_cpu Skipit_mem
