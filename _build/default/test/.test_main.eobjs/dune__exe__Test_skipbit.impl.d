test/test_skipbit.ml: Alcotest Array List Option Printf QCheck QCheck_alcotest Skipit_cache Skipit_core Skipit_l1 Skipit_l2 Skipit_mem Skipit_sim
