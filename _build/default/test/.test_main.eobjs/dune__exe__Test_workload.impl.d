test/test_workload.ml: Alcotest Array Float Format List Message Printf Skipit_pds Skipit_persist Skipit_sim Skipit_tilelink Skipit_workload Skipit_xarch String
