test/test_recovery.ml: Alcotest List Option Skipit_core Skipit_pds Skipit_persist
