test/test_resource.ml: Alcotest List QCheck QCheck_alcotest Skipit_sim
