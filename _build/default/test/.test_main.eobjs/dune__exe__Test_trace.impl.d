test/test_trace.ml: Alcotest Array Format List Skipit_core Skipit_cpu Skipit_workload String
