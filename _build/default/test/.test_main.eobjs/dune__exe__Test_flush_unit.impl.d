test/test_flush_unit.ml: Alcotest Array List Message Option Perm Skipit_cache Skipit_l1 Skipit_sim Skipit_tilelink
