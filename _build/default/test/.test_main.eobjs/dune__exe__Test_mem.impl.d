test/test_mem.ml: Alcotest Array List QCheck QCheck_alcotest Skipit_mem
