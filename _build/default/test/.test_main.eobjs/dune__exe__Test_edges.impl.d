test/test_edges.ml: Alcotest List Message Option Result Skipit_cache Skipit_core Skipit_l1 Skipit_mem Skipit_pds Skipit_persist Skipit_sim Skipit_tilelink Skipit_workload
