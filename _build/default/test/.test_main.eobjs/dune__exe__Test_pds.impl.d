test/test_pds.ml: Alcotest Array Hashtbl List Option Printf Skipit_core Skipit_pds Skipit_persist Skipit_sim
