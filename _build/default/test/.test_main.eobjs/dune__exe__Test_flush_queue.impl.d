test/test_flush_queue.ml: Alcotest List Message Perm QCheck QCheck_alcotest Skipit_l1 Skipit_tilelink
