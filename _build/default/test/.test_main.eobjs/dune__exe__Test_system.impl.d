test/test_system.ml: Alcotest Array Hashtbl List Option Printf QCheck QCheck_alcotest Skipit_cache Skipit_core Skipit_mem Skipit_sim
