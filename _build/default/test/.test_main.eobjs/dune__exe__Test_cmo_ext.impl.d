test/test_cmo_ext.ml: Alcotest List Option Skipit_core Skipit_l1 Skipit_l2 Skipit_mem
