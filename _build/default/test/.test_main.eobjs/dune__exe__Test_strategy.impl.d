test/test_strategy.ml: Alcotest List Option Skipit_core Skipit_mem Skipit_persist
