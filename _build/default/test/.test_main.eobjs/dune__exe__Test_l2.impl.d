test/test_l2.ml: Alcotest Array Message Perm Result Skipit_cache Skipit_core Skipit_l1 Skipit_l2 Skipit_mem Skipit_sim Skipit_tilelink
