test/test_geometry.ml: Alcotest QCheck QCheck_alcotest Skipit_cache
