test/test_perm.ml: Alcotest Format List Perm Skipit_tilelink
