test/test_fshr_fsm.ml: Alcotest Format List Message QCheck QCheck_alcotest Skipit_l1 Skipit_tilelink
