test/test_dcache.ml: Alcotest Array Fun List Message Option Perm Skipit_cache Skipit_core Skipit_l1 Skipit_l2 Skipit_mem Skipit_sim Skipit_tilelink
