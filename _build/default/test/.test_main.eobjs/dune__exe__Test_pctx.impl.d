test/test_pctx.ml: Alcotest List Option Skipit_core Skipit_mem Skipit_persist
