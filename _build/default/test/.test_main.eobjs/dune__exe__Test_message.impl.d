test/test_message.ml: Alcotest Array Format List Message Perm Skipit_tilelink
