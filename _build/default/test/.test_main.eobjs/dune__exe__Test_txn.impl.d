test/test_txn.ml: Alcotest List Option Printf QCheck QCheck_alcotest Queue Skipit_core Skipit_mem Skipit_pds Skipit_persist Skipit_sim
