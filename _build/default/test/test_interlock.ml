(* The §5.4.1 ready-signal protocol, including the simultaneous-lowering
   race and its resolution, plus a random-schedule liveness property. *)

module I = Skipit_l1.Interlock
module Rng = Skipit_sim.Rng

let test_initial_state () =
  let t = I.create () in
  Alcotest.(check bool) "probe_rdy" true (I.probe_rdy t);
  Alcotest.(check bool) "wb_rdy" true (I.wb_rdy t);
  Alcotest.(check bool) "flush_rdy" true (I.flush_rdy t)

let test_probe_blocks_dequeue () =
  let t = I.create () in
  Alcotest.(check bool) "intrusion accepted" true
    (I.begin_intrusion t I.Probe_unit = Ok ());
  Alcotest.(check bool) "probe_rdy low" false (I.probe_rdy t);
  Alcotest.(check bool) "dequeue blocked" true (I.try_dequeue t = Error `Blocked);
  I.end_intrusion t I.Probe_unit;
  Alcotest.(check bool) "dequeue after" true (I.try_dequeue t = Ok ())

let test_fshr_blocks_probe () =
  let t = I.create () in
  Alcotest.(check bool) "dequeue" true (I.try_dequeue t = Ok ());
  Alcotest.(check bool) "flush_rdy low" false (I.flush_rdy t);
  (* A probe may still ARRIVE (lower probe_rdy)... *)
  Alcotest.(check bool) "probe arrives" true (I.begin_intrusion t I.Probe_unit = Ok ());
  (* ...but must not proceed until the FSHR completes. *)
  Alcotest.(check bool) "blocked on flush_rdy" false (I.intrusion_may_proceed t I.Probe_unit);
  I.fshr_complete t;
  Alcotest.(check bool) "released" true (I.intrusion_may_proceed t I.Probe_unit);
  I.end_intrusion t I.Probe_unit

let test_simultaneous_lowering_race () =
  (* §5.4.1's corner case: a probe arrives in the same cycle as a dequeue.
     The dequeued request wins; the probe's one-cycle-later re-check waits
     for it, and probe_rdy (still low) stops any further dequeue. *)
  let t = I.create () in
  Alcotest.(check bool) "dequeue this cycle" true (I.try_dequeue t = Ok ());
  Alcotest.(check bool) "probe same cycle" true (I.begin_intrusion t I.Probe_unit = Ok ());
  (* Next cycle: the probe re-checks and waits. *)
  Alcotest.(check bool) "probe waits" false (I.intrusion_may_proceed t I.Probe_unit);
  (* No other flush request can overtake the waiting probe. *)
  I.fshr_complete t;
  Alcotest.(check bool) "dequeue still blocked by probe_rdy" true
    (I.try_dequeue t = Error `Blocked);
  Alcotest.(check bool) "probe proceeds first" true (I.intrusion_may_proceed t I.Probe_unit);
  I.end_intrusion t I.Probe_unit;
  Alcotest.(check bool) "then the queue flows again" true (I.try_dequeue t = Ok ())

let test_wb_unit_same_protocol () =
  let t = I.create () in
  Alcotest.(check bool) "eviction arrives" true
    (I.begin_intrusion t I.Writeback_unit = Ok ());
  Alcotest.(check bool) "dequeue blocked by wb_rdy" true (I.try_dequeue t = Error `Blocked);
  Alcotest.(check bool) "double intrusion refused" true
    (I.begin_intrusion t I.Writeback_unit = Error `Busy);
  I.end_intrusion t I.Writeback_unit

let test_misuse_raises () =
  let t = I.create () in
  Alcotest.check_raises "complete without FSHR"
    (Invalid_argument "Interlock.fshr_complete: no FSHR holds the interlock") (fun () ->
      I.fshr_complete t);
  Alcotest.check_raises "end without begin"
    (Invalid_argument "Interlock.end_intrusion: agent was not intruding") (fun () ->
      I.end_intrusion t I.Probe_unit)

(* Liveness under random schedules: from any reachable state some transition
   fires, and every intrusion/dequeue eventually completes. *)
let prop_liveness =
  QCheck.Test.make ~name:"random schedules never wedge" ~count:200 QCheck.small_int
  @@ fun seed ->
  let rng = Rng.create ~seed in
  let t = I.create () in
  let pending_fshr = ref false in
  let intruding = ref [] in
  let steps = ref 0 in
  for _ = 1 to 300 do
    incr steps;
    (match Rng.int rng 5 with
     | 0 -> (
       match I.try_dequeue t with Ok () -> pending_fshr := true | Error `Blocked -> ())
     | 1 ->
       let agent = if Rng.bool rng then I.Probe_unit else I.Writeback_unit in
       (match I.begin_intrusion t agent with
        | Ok () -> intruding := agent :: !intruding
        | Error `Busy -> ())
     | 2 -> if !pending_fshr then (I.fshr_complete t; pending_fshr := false)
     | 3 ->
       intruding :=
         List.filter
           (fun agent ->
             if I.intrusion_may_proceed t agent then (I.end_intrusion t agent; false)
             else true)
           !intruding
     | _ -> (
       match I.check_deadlock_free t with
       | Ok () -> ()
       | Error msg -> failwith msg))
  done;
  (* Drain: everything must be able to finish. *)
  if !pending_fshr then I.fshr_complete t;
  List.iter
    (fun agent ->
      if not (I.intrusion_may_proceed t agent) then failwith "wedged intrusion";
      I.end_intrusion t agent)
    !intruding;
  I.probe_rdy t && I.wb_rdy t && I.flush_rdy t

let tests =
  ( "interlock",
    [
      Alcotest.test_case "initial state" `Quick test_initial_state;
      Alcotest.test_case "probe blocks dequeue" `Quick test_probe_blocks_dequeue;
      Alcotest.test_case "FSHR blocks probe" `Quick test_fshr_blocks_probe;
      Alcotest.test_case "simultaneous-lowering race (§5.4.1)" `Quick
        test_simultaneous_lowering_race;
      Alcotest.test_case "writeback unit protocol" `Quick test_wb_unit_same_protocol;
      Alcotest.test_case "misuse raises" `Quick test_misuse_raises;
      QCheck_alcotest.to_alcotest prop_liveness;
    ] )
