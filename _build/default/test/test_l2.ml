(* Directory bookkeeping and the inclusive L2's RootRelease handling, driven
   directly (the System wires the real probe handler). *)

module S = Skipit_core.System
module C = Skipit_core.Config
module L2 = Skipit_l2.Inclusive_cache
module Directory = Skipit_l2.Directory
module Dram = Skipit_mem.Dram
open Skipit_tilelink

let test_directory_owners () =
  let dir = Directory.create ~n_cores:4 ~data:(Array.make 8 0) ~dirty:false in
  Alcotest.(check bool) "no owners" false (Directory.has_owners dir);
  Directory.set_owner dir 1 Perm.Branch;
  Directory.set_owner dir 3 Perm.Branch;
  Alcotest.(check (list int)) "sharers" [ 1; 3 ] (Directory.owners_above dir Perm.Nothing);
  Alcotest.(check bool) "no trunk" true (Directory.trunk_owner dir = None);
  Directory.set_owner dir 1 Perm.Trunk;
  Alcotest.(check bool) "trunk found" true (Directory.trunk_owner dir = Some 1);
  Alcotest.(check bool) "invariant violated (T+B)" true
    (Result.is_error (Directory.check_invariants dir));
  Directory.set_owner dir 3 Perm.Nothing;
  Alcotest.(check bool) "invariant restored" true
    (Result.is_ok (Directory.check_invariants dir))

let fresh () =
  let sys = S.create (C.platform ~cores:2 ()) in
  sys, S.l2 sys, Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64

let test_acquire_grants () =
  let _, l2, a = fresh () in
  let g = L2.acquire l2 ~core:0 ~addr:a ~grow:Perm.N_to_B ~now:0 in
  Alcotest.(check bool) "branch granted" true (Perm.equal g.L2.perm Perm.Branch);
  Alcotest.(check bool) "fresh line clean (GrantData)" false g.L2.l2_dirty;
  Alcotest.(check bool) "present after" true (L2.present l2 a);
  Alcotest.(check bool) "directory updated" true
    (Perm.equal (L2.owner_perm l2 ~core:0 ~addr:a) Perm.Branch);
  Alcotest.(check bool) "time advanced" true (g.L2.done_at > 0)

let test_release_data_dirties () =
  let _, l2, a = fresh () in
  ignore (L2.acquire l2 ~core:0 ~addr:a ~grow:Perm.N_to_T ~now:0);
  let data = Array.init 8 (fun i -> i + 1) in
  let t = L2.release l2 ~core:0 ~addr:a ~shrink:Perm.T_to_N ~data:(Some data) ~now:100 in
  Alcotest.(check bool) "ack later" true (t > 100);
  Alcotest.(check bool) "line dirty in L2" true (L2.dir_dirty l2 a);
  Alcotest.(check bool) "owner dropped" true
    (Perm.equal (L2.owner_perm l2 ~core:0 ~addr:a) Perm.Nothing);
  Alcotest.(check int) "L2 serves the data" 1 (L2.peek_word l2 a)

let test_root_release_clean_writes_dram () =
  let sys, l2, a = fresh () in
  ignore (L2.acquire l2 ~core:0 ~addr:a ~grow:Perm.N_to_T ~now:0);
  let data = Array.init 8 (fun i -> 10 + i) in
  let t =
    L2.root_release l2 ~core:0 ~addr:a ~kind:Message.Wb_clean ~data:(Some data) ~now:50
  in
  Alcotest.(check bool) "acked" true (t > 50);
  Alcotest.(check int) "persisted" 10 (Dram.peek_word (S.dram sys) a);
  Alcotest.(check bool) "L2 copy stays (clean)" true (L2.present l2 a);
  Alcotest.(check bool) "L2 no longer dirty" false (L2.dir_dirty l2 a)

let test_root_release_flush_invalidates () =
  let sys, l2, a = fresh () in
  ignore (L2.acquire l2 ~core:0 ~addr:a ~grow:Perm.N_to_T ~now:0);
  let data = Array.init 8 (fun i -> 20 + i) in
  ignore (L2.root_release l2 ~core:0 ~addr:a ~kind:Message.Wb_flush ~data:(Some data) ~now:50);
  Alcotest.(check int) "persisted" 20 (Dram.peek_word (S.dram sys) a);
  Alcotest.(check bool) "L2 copy gone (flush)" false (L2.present l2 a)

let test_trivial_skip () =
  (* §5.5: a RootRelease of a clean line skips the DRAM write via the L2
     dirty bit. *)
  let sys, l2, a = fresh () in
  ignore (S.load sys ~core:0 a) (* clean everywhere *);
  let writes_before = Dram.writes (S.dram sys) in
  ignore (L2.root_release l2 ~core:0 ~addr:a ~kind:Message.Wb_clean ~data:None ~now:1000);
  Alcotest.(check int) "no DRAM write" writes_before (Dram.writes (S.dram sys));
  Alcotest.(check bool) "counted as trivial skip" true
    (Skipit_sim.Stats.Registry.get (L2.stats l2) "trivial_skips" >= 1)

let test_root_release_miss_acks () =
  let _, l2, a = fresh () in
  (* Nothing cached anywhere: the ack still comes (§5.2). *)
  let t = L2.root_release l2 ~core:1 ~addr:a ~kind:Message.Wb_flush ~data:None ~now:10 in
  Alcotest.(check bool) "ack" true (t > 10)

let test_root_release_probes_other_owner () =
  (* Core 1 issues the writeback; core 0 holds the line dirty.  The L2 must
     probe core 0 and push its data to DRAM (§5.5). *)
  let sys, l2, a = fresh () in
  S.store sys ~core:0 a 77;
  ignore (L2.root_release l2 ~core:1 ~addr:a ~kind:Message.Wb_flush ~data:None ~now:5000);
  Alcotest.(check int) "probed dirty data persisted" 77 (Dram.peek_word (S.dram sys) a);
  Alcotest.(check bool) "probe happened" true
    (Skipit_sim.Stats.Registry.get (L2.stats l2) "probes" >= 1);
  Alcotest.(check bool) "core0 revoked" true
    (Skipit_l1.Dcache.line_state (S.dcache sys 0) a = None)

let test_acquire_probes_trunk_owner () =
  let sys, l2, a = fresh () in
  S.store sys ~core:0 a 9 (* core 0: Trunk, dirty *);
  let g = L2.acquire l2 ~core:1 ~addr:a ~grow:Perm.N_to_B ~now:5000 in
  Alcotest.(check bool) "grant carries the dirty data" true (g.L2.data.(0) = 9);
  Alcotest.(check bool) "GrantDataDirty flavour" true g.L2.l2_dirty;
  Alcotest.(check bool) "former owner downgraded" true
    (Perm.equal (L2.owner_perm l2 ~core:0 ~addr:a) Perm.Branch)

let test_l2_eviction_recalls_l1 () =
  (* Inclusion: evicting an L2 victim must revoke the L1 copies.  The tiny
     hierarchy makes L2 conflicts easy to provoke. *)
  let sys = S.create (C.tiny ~cores:1 ()) in
  let l2 = S.l2 sys in
  let l2_geom = (S.params sys).Skipit_cache.Params.l2_geom in
  let sets = l2_geom.Skipit_cache.Geometry.sets in
  let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:(sets * 64) (sets * 64 * 16) in
  (* 16 lines mapping to the same L2 set (ways = 4): forces L2 evictions. *)
  for i = 0 to 15 do
    S.store sys ~core:0 (base + (i * sets * 64)) (100 + i)
  done;
  (match S.check_coherence sys with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "L2 evictions happened" true
    (Skipit_sim.Stats.Registry.get (L2.stats l2) "evictions" > 0);
  (* All values remain architecturally visible. *)
  for i = 0 to 15 do
    Alcotest.(check int) "value" (100 + i) (S.load sys ~core:0 (base + (i * sets * 64)))
  done

let test_crash_drops_l2 () =
  let sys, l2, a = fresh () in
  S.store sys ~core:0 a 1;
  ignore (S.load sys ~core:1 a) (* data now in L2, dirty *);
  L2.crash l2;
  Alcotest.(check bool) "gone" false (L2.present l2 a)

let tests =
  ( "l2",
    [
      Alcotest.test_case "directory owners" `Quick test_directory_owners;
      Alcotest.test_case "acquire grants" `Quick test_acquire_grants;
      Alcotest.test_case "release data dirties L2" `Quick test_release_data_dirties;
      Alcotest.test_case "root release clean" `Quick test_root_release_clean_writes_dram;
      Alcotest.test_case "root release flush" `Quick test_root_release_flush_invalidates;
      Alcotest.test_case "trivial skip (§5.5)" `Quick test_trivial_skip;
      Alcotest.test_case "root release on miss acks" `Quick test_root_release_miss_acks;
      Alcotest.test_case "root release probes owner" `Quick test_root_release_probes_other_owner;
      Alcotest.test_case "acquire probes trunk owner" `Quick test_acquire_probes_trunk_owner;
      Alcotest.test_case "L2 eviction recalls L1" `Quick test_l2_eviction_recalls_l1;
      Alcotest.test_case "crash drops L2" `Quick test_crash_drops_l2;
    ] )
