(* The persistent lock-free data structures: sequential oracle testing,
   concurrent runs with invariants, and crash durability. *)

module S = Skipit_core.System
module T = Skipit_core.Thread
module C = Skipit_core.Config
module Strategy = Skipit_persist.Strategy
module Pctx = Skipit_persist.Pctx
module Ops = Skipit_pds.Set_ops
module Rng = Skipit_sim.Rng

let run_task sys body = ignore (T.run sys [ { T.core = 0; body } ])

(* Sequential oracle: random ops mirrored into a Hashtbl must agree on every
   return value and on the final snapshot. *)
let oracle ~kind ~strategy ~mode ~ops ~seed () =
  let sys = S.create (C.platform ~cores:2 ~skip_it:true ()) in
  let pctx = Pctx.make strategy mode in
  let handle = ref None in
  run_task sys (fun () ->
    handle := Some (Ops.create_sized kind ~buckets:16 pctx (S.allocator sys)));
  let h = Option.get !handle in
  let model = Hashtbl.create 64 in
  let rng = Rng.create ~seed in
  run_task sys (fun () ->
    for _ = 1 to ops do
      let key = 1 + Rng.int rng 60 in
      match Rng.int rng 3 with
      | 0 ->
        let expected = not (Hashtbl.mem model key) in
        let got = h.Ops.insert pctx key in
        if got <> expected then
          Alcotest.failf "insert %d: got %b want %b" key got expected;
        if got then Hashtbl.replace model key ()
      | 1 ->
        let expected = Hashtbl.mem model key in
        let got = h.Ops.delete pctx key in
        if got <> expected then
          Alcotest.failf "delete %d: got %b want %b" key got expected;
        if got then Hashtbl.remove model key
      | _ ->
        let expected = Hashtbl.mem model key in
        let got = h.Ops.contains pctx key in
        if got <> expected then
          Alcotest.failf "contains %d: got %b want %b" key got expected
    done);
  let want = Hashtbl.fold (fun k () acc -> k :: acc) model [] |> List.sort compare in
  Alcotest.(check (list int)) "snapshot = model" want (h.Ops.snapshot sys);
  match S.check_coherence sys with Ok () -> () | Error e -> Alcotest.fail e

let oracle_case kind (sname, strategy) mode =
  let name =
    Printf.sprintf "%s / %s / %s" (Ops.kind_name kind) sname (Pctx.mode_name mode)
  in
  Alcotest.test_case name `Quick (fun () ->
    oracle ~kind ~strategy:(strategy ()) ~mode ~ops:250 ~seed:11 ())

(* Concurrent run: two threads own disjoint key ranges, so a per-range
   oracle applies even under interleaving. *)
let concurrent ~kind ~strategy () =
  let sys = S.create (C.platform ~cores:2 ~skip_it:true ()) in
  let pctx = Pctx.make strategy Pctx.Nvtraverse in
  let handle = ref None in
  run_task sys (fun () ->
    handle := Some (Ops.create_sized kind ~buckets:16 pctx (S.allocator sys)));
  let h = Option.get !handle in
  let models = Array.init 2 (fun _ -> Hashtbl.create 32) in
  let worker core =
    {
      T.core;
      body =
        (fun () ->
          let rng = Rng.create ~seed:(100 + core) in
          let model = models.(core) in
          for _ = 1 to 150 do
            (* Odd keys to thread 0, even keys to thread 1. *)
            let key = 1 + (2 * Rng.int rng 40) + core in
            if Rng.bool rng then begin
              if h.Ops.insert pctx key then Hashtbl.replace model key ()
            end
            else if h.Ops.delete pctx key then Hashtbl.remove model key
          done);
    }
  in
  ignore (T.run sys [ worker 0; worker 1 ]);
  let want =
    List.sort compare
      (Hashtbl.fold (fun k () acc -> k :: acc) models.(0) []
      @ Hashtbl.fold (fun k () acc -> k :: acc) models.(1) [])
  in
  Alcotest.(check (list int)) "disjoint-range oracle" want (h.Ops.snapshot sys);
  match S.check_coherence sys with Ok () -> () | Error e -> Alcotest.fail e

(* Crash durability: with every update fenced (any persistent strategy +
   nvtraverse), completed updates must survive a crash. *)
let durability ~kind () =
  let sys = S.create (C.platform ~cores:1 ~skip_it:true ()) in
  let pctx = Pctx.make (Strategy.plain ()) Pctx.Nvtraverse in
  let handle = ref None in
  run_task sys (fun () ->
    let h = Ops.create_sized kind ~buckets:16 pctx (S.allocator sys) in
    for k = 1 to 30 do
      ignore (h.Ops.insert pctx k)
    done;
    for k = 1 to 10 do
      ignore (h.Ops.delete pctx (k * 3))
    done;
    handle := Some h);
  let h = Option.get !handle in
  let before = h.Ops.snapshot sys in
  S.crash sys;
  let after = h.Ops.snapshot sys in
  Alcotest.(check (list int)) "fenced updates survive the crash" before after

let test_bst_rejects_lap () =
  Alcotest.(check bool) "BST x LaP incompatible" false
    (Ops.compatible Ops.Bst_set (Strategy.link_and_persist ()));
  Alcotest.(check bool) "list x LaP fine" true
    (Ops.compatible Ops.List_set (Strategy.link_and_persist ()))

let test_skiplist_height_bounded () =
  Alcotest.(check bool) "max level sane" true
    (Skipit_pds.Skiplist.max_level >= 4 && Skipit_pds.Skiplist.max_level <= 32)

let test_key_range_guard () =
  let sys = S.create (C.platform ~cores:1 ()) in
  let pctx = Pctx.make (Strategy.plain ()) Pctx.Manual in
  run_task sys (fun () ->
    let h = Ops.create Ops.List_set pctx (S.allocator sys) in
    (try
       ignore (h.Ops.insert pctx 0);
       Alcotest.fail "key 0 must be rejected"
     with Invalid_argument _ -> ()))

let strategies_for kind =
  List.filter
    (fun (_, mk) -> Ops.compatible kind (mk ()))
    [
      "plain", Strategy.plain;
      "flit-adjacent", Strategy.flit_adjacent;
      "link-and-persist", Strategy.link_and_persist;
      "skipit", Strategy.skipit_hw;
    ]

let tests =
  let oracle_cases =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun strat -> List.map (oracle_case kind strat) Pctx.all_modes)
          (strategies_for kind))
      Ops.all_kinds
  in
  let concurrent_cases =
    List.map
      (fun kind ->
        Alcotest.test_case
          (Printf.sprintf "concurrent %s" (Ops.kind_name kind))
          `Quick
          (fun () -> concurrent ~kind ~strategy:(Strategy.plain ()) ()))
      Ops.all_kinds
  in
  let durability_cases =
    List.map
      (fun kind ->
        Alcotest.test_case
          (Printf.sprintf "durability %s" (Ops.kind_name kind))
          `Quick (durability ~kind))
      Ops.all_kinds
  in
  ( "pds",
    oracle_cases @ concurrent_cases @ durability_cases
    @ [
        Alcotest.test_case "BST rejects LaP" `Quick test_bst_rejects_lap;
        Alcotest.test_case "skiplist height bounded" `Quick test_skiplist_height_bounded;
        Alcotest.test_case "key range guard" `Quick test_key_range_guard;
      ] )
