module FU = Skipit_l1.Flush_unit
module Params = Skipit_cache.Params
open Skipit_tilelink

let params ?(n_fshrs = 2) ?(depth = 2) ?(coalescing = true) () =
  { Params.boom_default with Params.n_fshrs; flush_queue_depth = depth; coalescing }

let ack_after = 50

let submit ?(kind = Message.Wb_clean) ?(hit = true) ?(dirty = true) ?(last_change = min_int)
    ?(on_meta = fun _ -> ()) fu ~addr ~now =
  let line_data = if hit && dirty then Some (Array.make 8 0) else None in
  FU.submit fu ~addr ~kind ~hit ~dirty ~line_data ~last_line_change:last_change ~now
    ~apply_meta:on_meta
    ~send:(fun ~data:_ ~now -> now + ack_after)


(* Coalescing applies to requests still waiting in the queue (§5.3); pin a
   single FSHR down with a blocker so the next request queues. *)
let with_queued_partner fu ~addr ~now =
  ignore (submit fu ~addr:0xF000 ~now:(now - 1));
  match submit fu ~addr ~now with
  | FU.Accepted p ->
    assert (p.FU.alloc_at > now);
    p
  | FU.Coalesced _ -> Alcotest.fail "partner cannot coalesce"

let test_commit_is_early () =
  let fu = FU.create (params ()) ~core:0 in
  match submit fu ~addr:0x40 ~now:10 with
  | FU.Accepted p ->
    Alcotest.(check int) "commits at enqueue" 10 p.FU.commit_at;
    Alcotest.(check bool) "ack much later" true (p.FU.ack_at >= 10 + ack_after);
    Alcotest.(check bool) "release before ack" true (p.FU.release_at < p.FU.ack_at)
  | FU.Coalesced _ -> Alcotest.fail "unexpected coalesce"

let test_depth_zero_synchronous () =
  let fu = FU.create (params ~depth:0 ()) ~core:0 in
  match submit fu ~addr:0x40 ~now:10 with
  | FU.Accepted p ->
    Alcotest.(check int) "no queue => commit at completion" p.FU.ack_at p.FU.commit_at
  | FU.Coalesced _ -> Alcotest.fail "unexpected coalesce"

let test_fshr_parallelism () =
  (* 2 FSHRs: two writebacks overlap, the third queues behind the first. *)
  let fu = FU.create (params ~n_fshrs:2 ~depth:8 ()) ~core:0 in
  let acks =
    List.map
      (fun addr ->
        match submit fu ~addr ~now:0 with
        | FU.Accepted p -> p.FU.ack_at
        | FU.Coalesced _ -> Alcotest.fail "unexpected coalesce")
      [ 0x40; 0x80; 0xc0 ]
  in
  match acks with
  | [ a1; a2; a3 ] ->
    Alcotest.(check bool) "two overlap" true (a2 - a1 < ack_after / 2);
    Alcotest.(check bool) "third serialized behind first" true (a3 >= a1 + ack_after)
  | _ -> assert false

let test_queue_backpressure () =
  (* Depth 1, 1 FSHR: the third request stalls until a queue slot frees. *)
  let fu = FU.create (params ~n_fshrs:1 ~depth:1 ()) ~core:0 in
  let commits =
    List.map
      (fun addr ->
        match submit fu ~addr ~now:0 with
        | FU.Accepted p -> p.FU.commit_at
        | FU.Coalesced _ -> Alcotest.fail "unexpected coalesce")
      [ 0x40; 0x80; 0xc0 ]
  in
  match commits with
  | [ c1; c2; c3 ] ->
    Alcotest.(check int) "first immediate" 0 c1;
    Alcotest.(check int) "second buffered immediately" 0 c2;
    Alcotest.(check bool) "third waits for a slot" true (c3 > 0)
  | _ -> assert false

let test_coalescing () =
  let fu = FU.create (params ~n_fshrs:1 ~depth:8 ()) ~core:0 in
  let first = with_queued_partner fu ~addr:0x40 ~now:1 in
  (match submit fu ~addr:0x40 ~now:5 with
   | FU.Coalesced { ack_at; _ } ->
     Alcotest.(check int) "rides the queued writeback" first.FU.ack_at ack_at
   | FU.Accepted _ -> Alcotest.fail "expected coalesce");
  (* Different kind never coalesces. *)
  (match submit fu ~kind:Message.Wb_flush ~addr:0x40 ~now:6 with
   | FU.Accepted _ -> ()
   | FU.Coalesced _ -> Alcotest.fail "kinds must not merge");
  Alcotest.(check int) "stats" 1 (Skipit_sim.Stats.Registry.get (FU.stats fu) "coalesced")

let test_coalescing_blocked_by_line_change () =
  let fu = FU.create (params ~n_fshrs:1 ~depth:8 ()) ~core:0 in
  ignore (with_queued_partner fu ~addr:0x40 ~now:1);
  (* A store at t=3 changed the line: the t=5 request must not merge. *)
  match submit fu ~addr:0x40 ~now:5 ~last_change:3 with
  | FU.Accepted _ -> ()
  | FU.Coalesced _ -> Alcotest.fail "state changed between the two CBO.X"

let test_coalescing_disabled () =
  let fu = FU.create (params ~coalescing:false ~n_fshrs:1 ~depth:8 ()) ~core:0 in
  ignore (with_queued_partner fu ~addr:0x40 ~now:1);
  match submit fu ~addr:0x40 ~now:5 with
  | FU.Accepted _ -> ()
  | FU.Coalesced _ -> Alcotest.fail "coalescing disabled"

let test_no_coalescing_once_allocated () =
  (* Once the partner holds an FSHR its metadata write is a state change of
     its own: later requests must not merge (§5.3 reading). *)
  let fu = FU.create (params ~n_fshrs:2 ~depth:8 ()) ~core:0 in
  (match submit fu ~addr:0x40 ~now:0 with
   | FU.Accepted p -> assert (p.FU.alloc_at = 0)
   | FU.Coalesced _ -> assert false);
  match submit fu ~addr:0x40 ~now:5 with
  | FU.Accepted _ -> ()
  | FU.Coalesced _ -> Alcotest.fail "partner already left the queue"

let test_fence_waits_for_all () =
  let fu = FU.create (params ~n_fshrs:2 ~depth:8 ()) ~core:0 in
  let acks =
    List.filter_map
      (fun addr ->
        match submit fu ~addr ~now:0 with FU.Accepted p -> Some p.FU.ack_at | _ -> None)
      [ 0x40; 0x80; 0xc0; 0x100 ]
  in
  let latest = List.fold_left max 0 acks in
  Alcotest.(check int) "fence = last ack" latest (FU.fence_ready_at fu ~now:1);
  Alcotest.(check int) "outstanding" 4 (FU.outstanding fu ~now:1);
  Alcotest.(check int) "drained after" 0 (FU.outstanding fu ~now:(latest + 1));
  Alcotest.(check int) "fence free once drained" (latest + 1)
    (FU.fence_ready_at fu ~now:(latest + 1))

let test_load_conflict_forwarding () =
  let fu = FU.create (params ()) ~core:0 in
  let p =
    match submit fu ~addr:0x40 ~now:0 with FU.Accepted p -> p | _ -> assert false
  in
  (* Dirty request: buffer gets filled; loads forward from it (§5.3). *)
  (match FU.load_conflict fu ~addr:0x40 ~now:1 with
   | FU.Load_forward t ->
     Alcotest.(check int) "ready when buffer filled"
       (max 1 (Option.get p.FU.buffer_ready_at)) t
   | _ -> Alcotest.fail "expected forwarding");
  (* Clean-line request: no data buffer; loads must wait for completion. *)
  let p2 =
    match submit fu ~addr:0x80 ~dirty:false ~now:0 with
    | FU.Accepted p -> p
    | _ -> assert false
  in
  (match FU.load_conflict fu ~addr:0x80 ~now:1 with
   | FU.Load_wait t -> Alcotest.(check int) "waits for ack" p2.FU.ack_at t
   | _ -> Alcotest.fail "expected wait");
  match FU.load_conflict fu ~addr:0x200 ~now:1 with
  | FU.Load_no_conflict -> ()
  | _ -> Alcotest.fail "unrelated line must not conflict"

let test_store_rules () =
  let fu = FU.create (params ()) ~core:0 in
  (* Pending flush: stores wait for the ack. *)
  let pf =
    match submit fu ~kind:Message.Wb_flush ~addr:0x40 ~now:0 with
    | FU.Accepted p -> p
    | _ -> assert false
  in
  (match FU.store_proceed_at fu ~addr:0x40 ~now:1 with
   | Some t -> Alcotest.(check int) "flush blocks stores until ack" pf.FU.ack_at t
   | None -> Alcotest.fail "expected conflict");
  (* Pending clean with filled buffer: stores proceed once filled. *)
  let pc =
    match submit fu ~kind:Message.Wb_clean ~addr:0x80 ~now:0 with
    | FU.Accepted p -> p
    | _ -> assert false
  in
  (match FU.store_proceed_at fu ~addr:0x80 ~now:1 with
   | Some t ->
     Alcotest.(check bool) "clean releases stores early" true (t < pc.FU.ack_at);
     Alcotest.(check bool) "but not before the buffer fill" true
       (t >= Option.get pc.FU.buffer_ready_at || t = 1)
   | None -> Alcotest.fail "expected conflict");
  Alcotest.(check bool) "unrelated line free" true
    (FU.store_proceed_at fu ~addr:0x200 ~now:1 = None)

let test_probe_interlock () =
  (* §5.4.1: while an FSHR holds the line (flush_rdy low), probes wait for
     release_at. *)
  let fu = FU.create (params ()) ~core:0 in
  let p =
    match submit fu ~addr:0x40 ~now:0 with FU.Accepted p -> p | _ -> assert false
  in
  let t = FU.probe_block_until fu ~addr:0x40 ~cap:Perm.Nothing ~now:(p.FU.alloc_at + 1) in
  Alcotest.(check int) "probe waits for release" p.FU.release_at t;
  let t2 = FU.probe_block_until fu ~addr:0x40 ~cap:Perm.Nothing ~now:(p.FU.release_at + 1) in
  Alcotest.(check int) "after release probes flow" (p.FU.release_at + 1) t2;
  let t3 = FU.evict_block_until fu ~addr:0x40 ~now:(p.FU.alloc_at + 1) in
  Alcotest.(check int) "evictions obey the same interlock" p.FU.release_at t3

let test_skip_counter () =
  let fu = FU.create (params ()) ~core:0 in
  FU.note_skip_drop fu;
  FU.note_skip_drop fu;
  Alcotest.(check int) "skip drops" 2
    (Skipit_sim.Stats.Registry.get (FU.stats fu) "skip_dropped")

let tests =
  ( "flush_unit",
    [
      Alcotest.test_case "early commit" `Quick test_commit_is_early;
      Alcotest.test_case "depth-0 synchronous" `Quick test_depth_zero_synchronous;
      Alcotest.test_case "FSHR parallelism" `Quick test_fshr_parallelism;
      Alcotest.test_case "queue back-pressure" `Quick test_queue_backpressure;
      Alcotest.test_case "coalescing" `Quick test_coalescing;
      Alcotest.test_case "coalescing blocked by change" `Quick test_coalescing_blocked_by_line_change;
      Alcotest.test_case "coalescing disabled" `Quick test_coalescing_disabled;
      Alcotest.test_case "no coalescing once allocated" `Quick test_no_coalescing_once_allocated;
      Alcotest.test_case "fence waits for all" `Quick test_fence_waits_for_all;
      Alcotest.test_case "load forwarding rules" `Quick test_load_conflict_forwarding;
      Alcotest.test_case "store rules" `Quick test_store_rules;
      Alcotest.test_case "probe/evict interlock" `Quick test_probe_interlock;
      Alcotest.test_case "skip counter" `Quick test_skip_counter;
    ] )
