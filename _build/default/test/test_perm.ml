open Skipit_tilelink

let all_perms = [ Perm.Nothing; Perm.Branch; Perm.Trunk ]
let all_grows = [ Perm.N_to_B; Perm.N_to_T; Perm.B_to_T ]

let all_shrinks =
  [ Perm.T_to_B; Perm.T_to_N; Perm.B_to_N; Perm.T_to_T; Perm.B_to_B; Perm.N_to_N ]

let test_order () =
  Alcotest.(check bool) "N < B" true (Perm.compare Perm.Nothing Perm.Branch < 0);
  Alcotest.(check bool) "B < T" true (Perm.compare Perm.Branch Perm.Trunk < 0);
  List.iter (fun p -> Alcotest.(check bool) "reflexive includes" true (Perm.includes p p)) all_perms;
  Alcotest.(check bool) "T includes B" true (Perm.includes Perm.Trunk Perm.Branch);
  Alcotest.(check bool) "B !includes T" false (Perm.includes Perm.Branch Perm.Trunk)

let test_grow_endpoints () =
  List.iter
    (fun g ->
      Alcotest.(check bool) "grow raises" true
        (Perm.compare (Perm.grow_from g) (Perm.grow_to g) < 0))
    all_grows

let test_shrink_endpoints () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "shrink never raises" true
        (Perm.compare (Perm.shrink_from s) (Perm.shrink_to s) >= 0))
    all_shrinks

let test_grow_for () =
  Alcotest.(check bool) "write from N" true (Perm.grow_for_write Perm.Nothing = Some Perm.N_to_T);
  Alcotest.(check bool) "write from B" true (Perm.grow_for_write Perm.Branch = Some Perm.B_to_T);
  Alcotest.(check bool) "write from T" true (Perm.grow_for_write Perm.Trunk = None);
  Alcotest.(check bool) "read from N" true (Perm.grow_for_read Perm.Nothing = Some Perm.N_to_B);
  Alcotest.(check bool) "read from B" true (Perm.grow_for_read Perm.Branch = None);
  Alcotest.(check bool) "read from T" true (Perm.grow_for_read Perm.Trunk = None)

let test_shrink_for_consistent () =
  List.iter
    (fun from ->
      List.iter
        (fun cap ->
          let s = Perm.shrink_for ~from ~cap in
          Alcotest.(check bool) "reports the held level" true
            (Perm.equal (Perm.shrink_from s) from);
          let target = if Perm.compare from cap > 0 then cap else from in
          Alcotest.(check bool) "lands at min(from, cap)" true
            (Perm.equal (Perm.shrink_to s) target))
        all_perms)
    all_perms

let test_pp () =
  Alcotest.(check string) "perm" "T" (Perm.to_string Perm.Trunk);
  Alcotest.(check string) "grow" "NtoT" (Format.asprintf "%a" Perm.pp_grow Perm.N_to_T);
  Alcotest.(check string) "shrink" "TtoN" (Format.asprintf "%a" Perm.pp_shrink Perm.T_to_N)

let tests =
  ( "perm",
    [
      Alcotest.test_case "lattice order" `Quick test_order;
      Alcotest.test_case "grow endpoints" `Quick test_grow_endpoints;
      Alcotest.test_case "shrink endpoints" `Quick test_shrink_endpoints;
      Alcotest.test_case "grow_for_read/write" `Quick test_grow_for;
      Alcotest.test_case "shrink_for consistent" `Quick test_shrink_for_consistent;
      Alcotest.test_case "pretty printing" `Quick test_pp;
    ] )
