(* Durable transactions: atomicity under crash injection at every phase
   boundary, plus the MS queue's durability. *)

module S = Skipit_core.System
module T = Skipit_core.Thread
module C = Skipit_core.Config
module Txn = Skipit_persist.Txn
module Pctx = Skipit_persist.Pctx
module Strategy = Skipit_persist.Strategy
module Ms_queue = Skipit_pds.Ms_queue
module Rng = Skipit_sim.Rng

let run_task sys f =
  let r = ref None in
  ignore (T.run sys [ { T.core = 0; body = (fun () -> r := Some (f ())) } ]);
  Option.get !r

let fresh () =
  let sys = S.create (C.platform ~cores:1 ~skip_it:true ()) in
  let a = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  let b = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  sys, a, b

let test_commit_is_durable () =
  let sys, a, b = fresh () in
  let txn = run_task sys (fun () -> Txn.create (S.allocator sys) ~capacity:8) in
  run_task sys (fun () ->
    Txn.execute txn (fun tx ->
      Txn.write tx a 1;
      Txn.write tx b 2));
  S.crash sys;
  Alcotest.(check int) "a durable" 1 (S.persisted_word sys a);
  Alcotest.(check int) "b durable" 2 (S.persisted_word sys b)

let test_reads_see_own_writes () =
  let sys, a, _ = fresh () in
  let txn = run_task sys (fun () -> Txn.create (S.allocator sys) ~capacity:4) in
  let seen = run_task sys (fun () ->
    let seen = ref (-1) in
    Txn.execute txn (fun tx ->
      Txn.write tx a 5;
      seen := Txn.read tx a);
    !seen)
  in
  Alcotest.(check int) "read-your-writes" 5 seen;
  Alcotest.(check int) "applied" 5 (S.peek_word sys a)

(* Crash after [steps] commit phases, recover, check atomicity. *)
let crash_at_phase steps =
  let sys, a, b = fresh () in
  run_task sys (fun () ->
    T.store a 100;
    T.clean a;
    T.store b 200;
    T.clean b;
    T.fence ());
  let txn = run_task sys (fun () -> Txn.create (S.allocator sys) ~capacity:8) in
  run_task sys (fun () ->
    Txn.execute_steps txn ~steps (fun tx ->
      Txn.write tx a 101;
      Txn.write tx b 201));
  S.crash sys;
  let outcome = run_task sys (fun () -> Txn.recover txn) in
  let va = S.persisted_word sys a and vb = S.persisted_word sys b in
  outcome, va, vb

let test_crash_before_mark_discards () =
  List.iter
    (fun steps ->
      let outcome, va, vb = crash_at_phase steps in
      Alcotest.(check bool) "nothing to replay" true (outcome = `Nothing);
      Alcotest.(check int) "a old" 100 va;
      Alcotest.(check int) "b old" 200 vb)
    [ 0; 1 ]

let test_crash_after_mark_replays () =
  List.iter
    (fun steps ->
      let outcome, va, vb = crash_at_phase steps in
      Alcotest.(check bool) "replayed both" true (outcome = `Replayed 2);
      Alcotest.(check int) "a new" 101 va;
      Alcotest.(check int) "b new" 201 vb)
    [ 2; 3 ]

let test_full_commit_then_crash () =
  let outcome, va, vb = crash_at_phase 4 in
  Alcotest.(check bool) "log already retired" true (outcome = `Nothing);
  Alcotest.(check int) "a new" 101 va;
  Alcotest.(check int) "b new" 201 vb

let test_atomicity_never_partial () =
  (* At no crash point may exactly one of the two writes be visible. *)
  List.iter
    (fun steps ->
      let _, va, vb = crash_at_phase steps in
      let both_old = va = 100 && vb = 200 in
      let both_new = va = 101 && vb = 201 in
      Alcotest.(check bool)
        (Printf.sprintf "atomic at phase %d (got a=%d b=%d)" steps va vb)
        true (both_old || both_new))
    [ 0; 1; 2; 3; 4 ]

let test_capacity_guard () =
  let sys, a, _ = fresh () in
  let txn = run_task sys (fun () -> Txn.create (S.allocator sys) ~capacity:1) in
  run_task sys (fun () ->
    Txn.execute txn (fun tx ->
      Txn.write tx a 1;
      Txn.write tx a 2 (* same address: rewrites, no extra slot *);
      (try
         Txn.write tx (a + 8) 3;
         Alcotest.fail "capacity not enforced"
       with Invalid_argument _ -> ())));
  Alcotest.(check int) "last buffered value wins" 2 (S.peek_word sys a)

(* MS queue. *)

let mk_queue sys = run_task sys (fun () ->
  Ms_queue.create (Pctx.make (Strategy.skipit_hw ()) Pctx.Nvtraverse) (S.allocator sys))

let test_queue_fifo () =
  let sys, _, _ = fresh () in
  let p = Pctx.make (Strategy.skipit_hw ()) Pctx.Nvtraverse in
  let q = mk_queue sys in
  run_task sys (fun () ->
    Alcotest.(check bool) "empty at start" true (Ms_queue.is_empty q p);
    List.iter (fun v -> Ms_queue.enqueue q p v) [ 3; 1; 4; 1; 5 ];
    Alcotest.(check (list int)) "snapshot order" [ 3; 1; 4; 1; 5 ]
      (Ms_queue.to_list_unsafe q sys);
    Alcotest.(check (option int)) "deq 1" (Some 3) (Ms_queue.dequeue q p);
    Alcotest.(check (option int)) "deq 2" (Some 1) (Ms_queue.dequeue q p);
    Ms_queue.enqueue q p 9;
    Alcotest.(check (option int)) "deq 3" (Some 4) (Ms_queue.dequeue q p);
    Alcotest.(check (option int)) "deq 4" (Some 1) (Ms_queue.dequeue q p);
    Alcotest.(check (option int)) "deq 5" (Some 5) (Ms_queue.dequeue q p);
    Alcotest.(check (option int)) "deq 6" (Some 9) (Ms_queue.dequeue q p);
    Alcotest.(check (option int)) "drained" None (Ms_queue.dequeue q p))

let test_queue_concurrent_producers () =
  let sys = S.create (C.platform ~cores:2 ~skip_it:true ()) in
  let p = Pctx.make (Strategy.skipit_hw ()) Pctx.Nvtraverse in
  let q = mk_queue sys in
  let producer core =
    {
      T.core;
      body = (fun () -> for i = 1 to 30 do Ms_queue.enqueue q p ((core * 1000) + i) done);
    }
  in
  ignore (T.run sys [ producer 0; producer 1 ]);
  let all = Ms_queue.to_list_unsafe q sys in
  Alcotest.(check int) "all 60 present" 60 (List.length all);
  (* Per-producer FIFO order preserved. *)
  let per core = List.filter (fun v -> v / 1000 = core) all in
  List.iter
    (fun core ->
      let mine = per core in
      Alcotest.(check (list int)) "producer order preserved"
        (List.sort compare mine) mine)
    [ 0; 1 ];
  match S.check_coherence sys with Ok () -> () | Error e -> Alcotest.fail e

let test_queue_durability () =
  let sys, _, _ = fresh () in
  let p = Pctx.make (Strategy.plain ()) Pctx.Nvtraverse in
  let q = run_task sys (fun () -> Ms_queue.create p (S.allocator sys)) in
  run_task sys (fun () ->
    List.iter (fun v -> Ms_queue.enqueue q p v) [ 1; 2; 3 ];
    ignore (Ms_queue.dequeue q p));
  let before = Ms_queue.to_list_unsafe q sys in
  S.crash sys;
  Alcotest.(check (list int)) "fenced queue state survives" before
    (Ms_queue.to_list_unsafe q sys)

let prop_queue_oracle =
  QCheck.Test.make ~name:"queue matches Queue oracle" ~count:15 QCheck.small_int
  @@ fun seed ->
  let sys = S.create (C.platform ~cores:1 ~skip_it:true ()) in
  let p = Pctx.make (Strategy.flit_adjacent ()) Pctx.Automatic in
  let q = run_task sys (fun () -> Ms_queue.create p (S.allocator sys)) in
  let oracle = Queue.create () in
  let rng = Rng.create ~seed in
  let ok = ref true in
  run_task sys (fun () ->
    for _ = 1 to 120 do
      if Rng.bool rng then begin
        let v = 1 + Rng.int rng 1000 in
        Ms_queue.enqueue q p v;
        Queue.add v oracle
      end
      else begin
        let got = Ms_queue.dequeue q p in
        let want = Queue.take_opt oracle in
        if got <> want then ok := false
      end
    done);
  !ok

let tests =
  ( "txn",
    [
      Alcotest.test_case "commit is durable" `Quick test_commit_is_durable;
      Alcotest.test_case "read your writes" `Quick test_reads_see_own_writes;
      Alcotest.test_case "crash before mark discards" `Quick test_crash_before_mark_discards;
      Alcotest.test_case "crash after mark replays" `Quick test_crash_after_mark_replays;
      Alcotest.test_case "full commit retires log" `Quick test_full_commit_then_crash;
      Alcotest.test_case "atomicity at every phase" `Quick test_atomicity_never_partial;
      Alcotest.test_case "capacity guard" `Quick test_capacity_guard;
      Alcotest.test_case "ms-queue fifo" `Quick test_queue_fifo;
      Alcotest.test_case "ms-queue concurrent producers" `Quick test_queue_concurrent_producers;
      Alcotest.test_case "ms-queue durability" `Quick test_queue_durability;
      QCheck_alcotest.to_alcotest prop_queue_oracle;
    ] )
