module S = Skipit_core.System
module T = Skipit_core.Thread
module C = Skipit_core.Config

let make ?(cores = 2) () = S.create (C.platform ~cores ())
let line sys = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64

let test_single_task () =
  let sys = make () in
  let a = line sys in
  let seen = ref 0 in
  let final =
    T.run sys
      [ { T.core = 0; body = (fun () -> T.store a 9; seen := T.load a) } ]
  in
  Alcotest.(check int) "value flows" 9 !seen;
  Alcotest.(check bool) "time advanced" true (final > 0)

let test_core_id_and_now () =
  let sys = make () in
  let ids = ref [] in
  ignore
    (T.run sys
       (List.init 2 (fun core ->
          {
            T.core;
            body =
              (fun () ->
                (* Bind effects first: [!ids] must be read after the last
                   suspension point or concurrent fibers lose updates. *)
                let c = T.core_id () in
                let t = T.now () in
                ids := (c, t) :: !ids);
          })));
  Alcotest.(check (list int)) "both cores ran" [ 0; 1 ]
    (List.sort compare (List.map fst !ids))

let test_timestamp_ordering () =
  (* The slow thread's store at t~1000 must land after the fast thread's at
     t~0 — observable as the final value. *)
  let sys = make () in
  let a = line sys in
  let order = ref [] in
  ignore
    (T.run sys
       [
         {
           T.core = 0;
           body = (fun () -> T.delay 1000; T.store a 1; order := 1 :: !order);
         };
         { T.core = 1; body = (fun () -> T.store a 2; order := 2 :: !order) };
       ]);
  Alcotest.(check (list int)) "min-clock-first execution" [ 1; 2 ] !order;
  Alcotest.(check int) "later store wins" 1 (S.peek_word sys a)

let test_two_tasks_one_core () =
  let sys = make ~cores:1 () in
  let a = line sys in
  ignore
    (T.run sys
       [
         { T.core = 0; body = (fun () -> for _ = 1 to 10 do T.store a 1 done) };
         { T.core = 0; body = (fun () -> for _ = 1 to 10 do T.store a 2 done) };
       ]);
  Alcotest.(check bool) "completed" true (List.mem (S.peek_word sys a) [ 1; 2 ])

let test_fence_and_flush_in_thread () =
  let sys = make () in
  let a = line sys in
  ignore
    (T.run sys
       [
         {
           T.core = 0;
           body =
             (fun () ->
               T.store a 5;
               T.clean a;
               T.fence ());
         };
       ]);
  Alcotest.(check int) "persisted from a task" 5 (S.persisted_word sys a)

let test_cas_in_thread () =
  let sys = make () in
  let a = line sys in
  let wins = ref 0 in
  ignore
    (T.run sys
       (List.init 2 (fun core ->
          {
            T.core;
            body =
              (fun () ->
                if T.cas a ~expected:0 ~desired:(core + 1) then incr wins);
          })));
  Alcotest.(check int) "exactly one CAS wins" 1 !wins

let test_exception_propagates () =
  let sys = make () in
  Alcotest.check_raises "body exception escapes run" Exit (fun () ->
    ignore (T.run sys [ { T.core = 0; body = (fun () -> raise Exit) } ]))

let test_delay_advances_clock () =
  let sys = make ~cores:1 () in
  let t = ref 0 in
  ignore (T.run sys [ { T.core = 0; body = (fun () -> T.delay 500; t := T.now ()) } ]);
  Alcotest.(check bool) "delay counted" true (!t >= 500)

let test_many_tasks_progress () =
  (* 8 cores contending on one line: all must terminate and agree. *)
  let sys = make ~cores:8 () in
  let a = line sys in
  let total = ref 0 in
  ignore
    (T.run sys
       (List.init 8 (fun core ->
          {
            T.core;
            body =
              (fun () ->
                for _ = 1 to 20 do
                  (* Atomic increment via CAS retry. *)
                  let rec bump () =
                    let v = T.load a in
                    if not (T.cas a ~expected:v ~desired:(v + 1)) then bump ()
                  in
                  bump ()
                done;
                incr total);
          })));
  Alcotest.(check int) "all ran" 8 !total;
  Alcotest.(check int) "atomic counter exact" 160 (S.peek_word sys a);
  match S.check_coherence sys with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let tests =
  ( "thread",
    [
      Alcotest.test_case "single task" `Quick test_single_task;
      Alcotest.test_case "core_id/now" `Quick test_core_id_and_now;
      Alcotest.test_case "timestamp ordering" `Quick test_timestamp_ordering;
      Alcotest.test_case "two tasks, one core" `Quick test_two_tasks_one_core;
      Alcotest.test_case "flush+fence in task" `Quick test_fence_and_flush_in_thread;
      Alcotest.test_case "cas race has one winner" `Quick test_cas_in_thread;
      Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
      Alcotest.test_case "delay advances clock" `Quick test_delay_advances_clock;
      Alcotest.test_case "8-core atomic counter" `Quick test_many_tasks_progress;
    ] )
