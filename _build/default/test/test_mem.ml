module Backing = Skipit_mem.Backing
module Allocator = Skipit_mem.Allocator
module Dram = Skipit_mem.Dram

let test_backing_rw () =
  let b = Backing.create () in
  Alcotest.(check int) "unwritten reads zero" 0 (Backing.read_word b 0x100);
  Backing.write_word b 0x100 42;
  Alcotest.(check int) "readback" 42 (Backing.read_word b 0x100);
  Backing.write_word b 0x100 43;
  Alcotest.(check int) "overwrite" 43 (Backing.read_word b 0x100)

let test_backing_alignment () =
  let b = Backing.create () in
  Alcotest.check_raises "unaligned read"
    (Invalid_argument "Backing: unaligned word address 0x3") (fun () ->
      ignore (Backing.read_word b 3))

let test_backing_lines () =
  let b = Backing.create () in
  let line = Array.init 8 (fun i -> i * 11) in
  Backing.write_line b ~line_bytes:64 0x240 line;
  (* Any address within the line reads the whole aligned line. *)
  Alcotest.(check (array int)) "roundtrip via interior address" line
    (Backing.read_line b ~line_bytes:64 0x278);
  Alcotest.(check int) "word view agrees" 33 (Backing.read_word b 0x258)

let test_backing_copy_independent () =
  let b = Backing.create () in
  Backing.write_word b 0x8 1;
  let snap = Backing.copy b in
  Backing.write_word b 0x8 2;
  Alcotest.(check int) "snapshot unaffected" 1 (Backing.read_word snap 0x8);
  Alcotest.(check int) "footprint" 1 (Backing.footprint snap)

let test_allocator_alignment () =
  let a = Allocator.create ~base:0 () in
  let p1 = Allocator.alloc a 10 in
  let p2 = Allocator.alloc a ~align:64 10 in
  Alcotest.(check int) "first at base" 0 p1;
  Alcotest.(check int) "second line aligned" 0 (p2 land 63);
  Alcotest.(check bool) "no overlap" true (p2 >= p1 + 10);
  let p3 = Allocator.alloc_line a ~line_bytes:64 in
  Alcotest.(check int) "line aligned" 0 (p3 land 63);
  Alcotest.(check bool) "monotone" true (p3 >= p2 + 10)

let test_allocator_invalid () =
  let a = Allocator.create () in
  Alcotest.check_raises "bad align"
    (Invalid_argument "Allocator.alloc: align not a power of two") (fun () ->
      ignore (Allocator.alloc a ~align:12 8))

let prop_alloc_disjoint =
  QCheck.Test.make ~name:"allocations never overlap" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (int_range 1 256))
  @@ fun sizes ->
  let a = Allocator.create () in
  let regions = List.map (fun size -> Allocator.alloc a size, size) sizes in
  let rec disjoint = function
    | [] -> true
    | (base, size) :: rest ->
      List.for_all (fun (b2, s2) -> b2 >= base + size || base >= b2 + s2) rest
      && disjoint rest
  in
  disjoint regions

let test_dram_timing () =
  let d =
    Dram.create ~channels:1 ~read_latency:10 ~write_latency:8 ~occupancy:4 ~line_bytes:64
  in
  let line = Array.make 8 7 in
  let t_w = Dram.write_line d ~addr:0 ~data:line ~now:0 in
  Alcotest.(check int) "write durable at occupancy start + latency" 8 t_w;
  (* Second request queues behind the first's channel occupancy. *)
  let _, t_r = Dram.read_line d ~addr:64 ~now:0 in
  Alcotest.(check int) "read queued behind write burst" 14 t_r;
  Alcotest.(check (array int)) "write visible" line (Dram.peek_line d ~addr:0);
  Alcotest.(check int) "counters" 1 (Dram.reads d);
  Alcotest.(check int) "counters" 1 (Dram.writes d)

let test_dram_parallel_channels () =
  let d =
    Dram.create ~channels:2 ~read_latency:10 ~write_latency:8 ~occupancy:4 ~line_bytes:64
  in
  let _ = Dram.write_line d ~addr:0 ~data:(Array.make 8 0) ~now:0 in
  let t2 = Dram.write_line d ~addr:64 ~data:(Array.make 8 0) ~now:0 in
  Alcotest.(check int) "second channel parallel" 8 t2

let test_dram_snapshot () =
  let d =
    Dram.create ~channels:1 ~read_latency:1 ~write_latency:1 ~occupancy:1 ~line_bytes:64
  in
  Dram.poke_word d 0x40 5;
  let snap = Dram.snapshot d in
  Dram.poke_word d 0x40 6;
  Alcotest.(check int) "snapshot immutable" 5 (Backing.read_word snap 0x40);
  Alcotest.(check int) "live view" 6 (Dram.peek_word d 0x40)

let tests =
  ( "mem",
    [
      Alcotest.test_case "backing read/write" `Quick test_backing_rw;
      Alcotest.test_case "backing alignment" `Quick test_backing_alignment;
      Alcotest.test_case "backing lines" `Quick test_backing_lines;
      Alcotest.test_case "backing copy" `Quick test_backing_copy_independent;
      Alcotest.test_case "allocator alignment" `Quick test_allocator_alignment;
      Alcotest.test_case "allocator invalid align" `Quick test_allocator_invalid;
      Alcotest.test_case "dram timing" `Quick test_dram_timing;
      Alcotest.test_case "dram parallel channels" `Quick test_dram_parallel_channels;
      Alcotest.test_case "dram snapshot" `Quick test_dram_snapshot;
      QCheck_alcotest.to_alcotest prop_alloc_disjoint;
    ] )
