(* The software flush-avoidance strategies (§7.4) against the simulated
   hierarchy: each must persist correctly and elide only safe writebacks. *)

module S = Skipit_core.System
module T = Skipit_core.Thread
module C = Skipit_core.Config
module Strategy = Skipit_persist.Strategy

let run_task sys f =
  let result = ref None in
  ignore (T.run sys [ { T.core = 0; body = (fun () -> result := Some (f ())) } ]);
  Option.get !result

let fresh ?(skip_it = false) () =
  let sys = S.create (C.platform ~cores:1 ~skip_it ()) in
  sys, Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64

let persist_roundtrip strategy =
  let sys, a = fresh () in
  run_task sys (fun () ->
    strategy.Strategy.write a 42;
    strategy.Strategy.persist_store a;
    strategy.Strategy.fence ());
  sys, a

let strip v = v land lnot Strategy.lap_mask

let test_persists name mk () =
  let strategy = mk () in
  let sys, a = persist_roundtrip strategy in
  if strategy.Strategy.persistent then
    Alcotest.(check int) (name ^ " persists") 42 (strip (S.persisted_word sys a))
  else Alcotest.(check int) "baseline does not persist" 0 (S.persisted_word sys a)

let test_read_after_write name mk () =
  let strategy = mk () in
  let sys, a = fresh () in
  let v =
    run_task sys (fun () ->
      strategy.Strategy.write a 7;
      strategy.Strategy.read a)
  in
  Alcotest.(check int) (name ^ " read-back") 7 v

let test_cas name mk () =
  let strategy = mk () in
  let sys, a = fresh () in
  let ok, ok2, v =
    run_task sys (fun () ->
      strategy.Strategy.write a 1;
      let ok = strategy.Strategy.cas a ~expected:1 ~desired:2 in
      let ok2 = strategy.Strategy.cas a ~expected:1 ~desired:3 in
      ok, ok2, strategy.Strategy.read a)
  in
  Alcotest.(check bool) (name ^ " cas wins") true ok;
  Alcotest.(check bool) (name ^ " stale cas loses") false ok2;
  Alcotest.(check int) (name ^ " value") 2 v

let flushes sys =
  Option.value ~default:0 (List.assoc_opt "fu.0.submitted" (S.stats_report sys))

let test_flit_elides_redundant () =
  let strategy = Strategy.flit_adjacent () in
  let sys, a = fresh () in
  run_task sys (fun () ->
    strategy.Strategy.write a 1;
    strategy.Strategy.persist_store a;
    strategy.Strategy.fence ();
    (* Load-side persists: the counter is down, no flush should issue. *)
    strategy.Strategy.persist_load a;
    strategy.Strategy.persist_load a;
    strategy.Strategy.fence ());
  Alcotest.(check int) "exactly one writeback issued" 1 (flushes sys)

let test_flit_load_flushes_pending () =
  let strategy = Strategy.flit_adjacent () in
  let sys, a = fresh () in
  run_task sys (fun () ->
    strategy.Strategy.write a 1;
    (* A reader hits the word before the writer's persist point: the
       counter is up, so the load-side persist must flush. *)
    strategy.Strategy.persist_load a;
    strategy.Strategy.fence ());
  Alcotest.(check int) "pending store flushed by the reader" 1 (flushes sys);
  Alcotest.(check int) "value persisted" 1 (S.persisted_word sys a)

let test_lap_elides_redundant () =
  let strategy = Strategy.link_and_persist () in
  let sys, a = fresh () in
  run_task sys (fun () ->
    strategy.Strategy.write a 1;
    strategy.Strategy.persist_store a;
    strategy.Strategy.fence ();
    strategy.Strategy.persist_load a;
    strategy.Strategy.persist_load a;
    strategy.Strategy.fence ());
  Alcotest.(check int) "exactly one writeback issued" 1 (flushes sys)

let test_plain_never_elides () =
  let strategy = Strategy.plain () in
  let sys, a = fresh () in
  run_task sys (fun () ->
    strategy.Strategy.write a 1;
    strategy.Strategy.persist_store a;
    strategy.Strategy.persist_load a;
    strategy.Strategy.persist_load a;
    strategy.Strategy.fence ());
  Alcotest.(check int) "all three issued" 3 (flushes sys)

let test_lap_mark_invisible () =
  let strategy = Strategy.link_and_persist () in
  let sys, a = fresh () in
  let before, after =
    run_task sys (fun () ->
      strategy.Strategy.write a 9;
      let before = strategy.Strategy.read a in
      strategy.Strategy.persist_store a;
      strategy.Strategy.fence ();
      before, strategy.Strategy.read a)
  in
  Alcotest.(check int) "masked before persist" 9 before;
  Alcotest.(check int) "masked after persist" 9 after;
  (* The raw persisted image carries no mark after persist cleared it. *)
  Alcotest.(check int) "persisted image clean... modulo mark" 9
    (strip (S.persisted_word sys a))

let test_flit_hash_collisions_are_safe () =
  (* Two addresses sharing one counter slot: a persist of the unwritten one
     may spuriously flush, but never skips a required writeback. *)
  let sys = S.create (C.platform ~cores:1 ()) in
  let table = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:64 8 in
  let strategy = Strategy.flit_hash ~table_base:table ~table_slots:1 in
  let a = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  let b = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  run_task sys (fun () ->
    strategy.Strategy.write a 1;
    strategy.Strategy.write b 2;
    strategy.Strategy.persist_store a;
    strategy.Strategy.persist_store b;
    strategy.Strategy.fence ());
  (* The shared counter counts both pending stores, so neither store-side
     persist is elided: collisions cost spurious load-side flushes, never a
     missed writeback. *)
  Alcotest.(check int) "a persisted" 1 (S.persisted_word sys a);
  Alcotest.(check int) "b persisted" 2 (S.persisted_word sys b)

let test_skipit_uses_hardware () =
  let strategy = Strategy.skipit_hw () in
  let sys = S.create (C.platform ~cores:1 ~skip_it:true ()) in
  let a = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  run_task sys (fun () ->
    strategy.Strategy.write a 1;
    strategy.Strategy.persist_store a;
    strategy.Strategy.fence ();
    (* Line is invalid after the flush; reload it, then redundant persists
       are dropped by the skip bit. *)
    ignore (strategy.Strategy.read a);
    strategy.Strategy.persist_load a;
    strategy.Strategy.persist_load a;
    strategy.Strategy.fence ());
  let drops = Option.value ~default:0 (List.assoc_opt "fu.0.skip_dropped" (S.stats_report sys)) in
  Alcotest.(check int) "hardware dropped the redundant pair" 2 drops

let strategies =
  [
    "plain", Strategy.plain;
    "flit-adjacent", Strategy.flit_adjacent;
    "link-and-persist", Strategy.link_and_persist;
    "skipit", Strategy.skipit_hw;
    "none", Strategy.none;
  ]

let tests =
  ( "strategy",
    List.concat_map
      (fun (name, mk) ->
        [
          Alcotest.test_case (name ^ " persist") `Quick (test_persists name mk);
          Alcotest.test_case (name ^ " read-after-write") `Quick (test_read_after_write name mk);
          Alcotest.test_case (name ^ " cas") `Quick (test_cas name mk);
        ])
      strategies
    @ [
        Alcotest.test_case "flit elides redundant" `Quick test_flit_elides_redundant;
        Alcotest.test_case "flit load flushes pending" `Quick test_flit_load_flushes_pending;
        Alcotest.test_case "lap elides redundant" `Quick test_lap_elides_redundant;
        Alcotest.test_case "plain never elides" `Quick test_plain_never_elides;
        Alcotest.test_case "lap mark invisible" `Quick test_lap_mark_invisible;
        Alcotest.test_case "flit-hash collisions safe" `Quick test_flit_hash_collisions_are_safe;
        Alcotest.test_case "skipit uses the hardware" `Quick test_skipit_uses_hardware;
      ] )
