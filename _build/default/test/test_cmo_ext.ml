(* The CMO extension instructions CBO.INVAL and CBO.ZERO. *)

module S = Skipit_core.System
module C = Skipit_core.Config

let make ?(cores = 2) () = S.create (C.platform ~cores ())
let line sys = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64

let check_ok sys =
  match S.check_coherence sys with Ok () -> () | Error e -> Alcotest.fail e

let test_inval_discards_dirty () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 42;
  S.inval sys ~core:0 a;
  Alcotest.(check int) "dirty data forfeited" 0 (S.peek_word sys a);
  Alcotest.(check int) "never persisted" 0 (S.persisted_word sys a);
  check_ok sys

let test_inval_keeps_persisted_value () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 7;
  S.clean sys ~core:0 a;
  S.fence sys ~core:0;
  S.store sys ~core:0 a 8 (* volatile update after the writeback *);
  S.inval sys ~core:0 a;
  Alcotest.(check int) "reverts to the persisted value" 7 (S.load sys ~core:0 a);
  check_ok sys

let test_inval_revokes_other_cores () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 5;
  ignore (S.load sys ~core:1 a) (* both share *);
  S.inval sys ~core:1 a (* issued by the non-owner *);
  Alcotest.(check bool) "core0 revoked" true
    (Skipit_l1.Dcache.line_state (S.dcache sys 0) a = None);
  Alcotest.(check bool) "core1 revoked" true
    (Skipit_l1.Dcache.line_state (S.dcache sys 1) a = None);
  Alcotest.(check bool) "L2 dropped it" false
    (Skipit_l2.Inclusive_cache.present (S.l2 sys) a);
  check_ok sys

let test_inval_of_uncached_line () =
  let sys = make () in
  let a = line sys in
  S.poke_word sys a 3;
  S.inval sys ~core:0 a (* nothing cached: a no-op on state *);
  Alcotest.(check int) "memory untouched" 3 (S.persisted_word sys a);
  check_ok sys

let test_inval_waits_for_pending_writeback () =
  (* An inval racing a pending flush must not discard the data the flush is
     committed to persist. *)
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 9;
  S.flush sys ~core:0 a (* asynchronous *);
  S.inval sys ~core:0 a (* must wait for the writeback's ack *);
  Alcotest.(check int) "flushed data still persisted" 9 (S.persisted_word sys a);
  check_ok sys

let test_zero_fills_line () =
  let sys = make () in
  let a = line sys in
  for w = 0 to 7 do
    S.store sys ~core:0 (a + (w * 8)) (w + 1)
  done;
  S.zero sys ~core:0 a;
  for w = 0 to 7 do
    Alcotest.(check int) "word zeroed" 0 (S.load sys ~core:0 (a + (w * 8)))
  done;
  check_ok sys

let test_zero_is_dirty_until_written_back () =
  let sys = make () in
  let a = line sys in
  S.poke_word sys a 77;
  S.zero sys ~core:0 a;
  Alcotest.(check int) "DRAM still has the old value" 77 (S.persisted_word sys a);
  S.clean sys ~core:0 a;
  S.fence sys ~core:0;
  Alcotest.(check int) "zeros persisted after clean+fence" 0 (S.persisted_word sys a);
  check_ok sys

let test_zero_acquires_exclusive () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:1 a 4 (* core 1 owns it *);
  S.zero sys ~core:0 a;
  Alcotest.(check bool) "former owner revoked" true
    (Skipit_l1.Dcache.line_state (S.dcache sys 1) a = None);
  Alcotest.(check int) "coherent zero visible" 0 (S.load sys ~core:1 a);
  check_ok sys

let test_stats_counted () =
  let sys = make () in
  let a = line sys in
  S.inval sys ~core:0 a;
  S.zero sys ~core:0 a;
  let report = S.stats_report sys in
  let get k = Option.value ~default:0 (List.assoc_opt k report) in
  Alcotest.(check int) "inval counted" 1 (get "l1.0.cbo_invals");
  Alcotest.(check int) "zero counted" 1 (get "l1.0.cbo_zeros");
  Alcotest.(check int) "L2 saw the inval" 1 (get "l2.root_invals")

let tests =
  ( "cmo_ext",
    [
      Alcotest.test_case "inval discards dirty data" `Quick test_inval_discards_dirty;
      Alcotest.test_case "inval reverts to persisted" `Quick test_inval_keeps_persisted_value;
      Alcotest.test_case "inval revokes all cores" `Quick test_inval_revokes_other_cores;
      Alcotest.test_case "inval of uncached line" `Quick test_inval_of_uncached_line;
      Alcotest.test_case "inval waits for pending writeback" `Quick
        test_inval_waits_for_pending_writeback;
      Alcotest.test_case "zero fills the line" `Quick test_zero_fills_line;
      Alcotest.test_case "zero is volatile until written back" `Quick
        test_zero_is_dirty_until_written_back;
      Alcotest.test_case "zero acquires exclusivity" `Quick test_zero_acquires_exclusive;
      Alcotest.test_case "stats counted" `Quick test_stats_counted;
    ] )
