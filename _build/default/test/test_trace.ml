module TP = Skipit_workload.Trace_program
module Instr = Skipit_cpu.Instr
module S = Skipit_core.System
module C = Skipit_core.Config

let parse_ok src =
  match TP.parse src with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse failed: %s" e

let parse_err src =
  match TP.parse src with Ok _ -> Alcotest.fail "expected parse error" | Error e -> e

let test_parse_basic () =
  let t = parse_ok "core 0\n  ld 0x40\n  sd 0x40 7\n  fence\n" in
  Alcotest.(check int) "one core" 1 (List.length t);
  let _, instrs = List.hd t in
  Alcotest.(check int) "three instructions" 3 (List.length instrs);
  Alcotest.(check bool) "first is load" true (List.hd instrs = Instr.Load { addr = 0x40 })

let test_parse_all_ops () =
  let t =
    parse_ok
      "core 2\n\
       ld 64\n\
       sd 64 1\n\
       cas 64 1 2\n\
       cbo.clean 64\n\
       cbo.flush 64\n\
       cbo.inval 64\n\
       cbo.zero 64\n\
       fence\n\
       delay 10\n"
  in
  Alcotest.(check int) "max core" 2 (TP.max_core t);
  let _, instrs = List.hd t in
  Alcotest.(check int) "nine instructions" 9 (List.length instrs)

let test_parse_comments_whitespace () =
  let t = parse_ok "# header\n\ncore 0\n\t ld 0x40  # trailing\n   \n" in
  let _, instrs = List.hd t in
  Alcotest.(check int) "comment stripped" 1 (List.length instrs)

let test_repeat_unrolls () =
  let t = parse_ok "core 0\nrepeat 3\n  sd 0x40 1\nend\n" in
  let _, instrs = List.hd t in
  Alcotest.(check int) "unrolled" 3 (List.length instrs)

let test_repeat_nested () =
  let t = parse_ok "core 0\nrepeat 2\n sd 0x40 1\n repeat 3\n  ld 0x40\n end\nend\n" in
  let _, instrs = List.hd t in
  Alcotest.(check int) "2*(1+3)" 8 (List.length instrs);
  (* Ordering: sd, ld, ld, ld, sd, ld, ld, ld. *)
  Alcotest.(check bool) "first store" true (List.hd instrs = Instr.Store { addr = 0x40; value = 1 });
  Alcotest.(check bool) "fifth store" true (List.nth instrs 4 = Instr.Store { addr = 0x40; value = 1 })

let test_parse_errors () =
  let contains sub s =
    let n = String.length sub in
    let rec scan i = i + n <= String.length s && (String.sub s i n = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "line number reported" true
    (contains "line 2" (parse_err "core 0\n  bogus 1\n"));
  Alcotest.(check bool) "outside core" true
    (contains "outside" (parse_err "ld 0x40\n"));
  Alcotest.(check bool) "unterminated repeat" true
    (contains "unterminated" (parse_err "core 0\nrepeat 2\n ld 0x40\n"));
  Alcotest.(check bool) "end without repeat" true
    (contains "end without" (parse_err "core 0\nend\n"));
  Alcotest.(check bool) "duplicate core" true
    (contains "duplicate" (parse_err "core 0\n ld 0x40\ncore 0\n ld 0x40\n"))

let test_run_dataflow () =
  let t =
    parse_ok
      "core 0\n sd 0x1000 42\n cbo.clean 0x1000\n fence\ncore 1\n delay 500\n ld 0x1000\n"
  in
  let sys = S.create (C.platform ~cores:2 ()) in
  let cycles, checksums = TP.run sys t in
  Alcotest.(check bool) "time advanced" true (cycles > 500);
  Alcotest.(check int) "consumer saw the value" 42 checksums.(1);
  Alcotest.(check int) "persisted" 42 (S.persisted_word sys 0x1000)

let test_pp_roundtrip () =
  let t = parse_ok "core 0\n ld 0x40\n sd 0x80 5\n fence\ncore 1\n cbo.flush 0x40\n" in
  let printed = Format.asprintf "@[<v>%a@]" TP.pp t in
  let t2 = parse_ok printed in
  Alcotest.(check bool) "pp parses back to the same program" true (t = t2)

let test_example_traces_parse () =
  List.iter
    (fun path ->
      match TP.load_file path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" path e)
    [ "../../../examples/traces/producer_consumer.trace";
      "../../../examples/traces/redundant_flush.trace";
      "../../../examples/traces/fig5_semantics.trace" ]

let tests =
  ( "trace",
    [
      Alcotest.test_case "parse basic" `Quick test_parse_basic;
      Alcotest.test_case "parse all ops" `Quick test_parse_all_ops;
      Alcotest.test_case "comments/whitespace" `Quick test_parse_comments_whitespace;
      Alcotest.test_case "repeat unrolls" `Quick test_repeat_unrolls;
      Alcotest.test_case "nested repeat" `Quick test_repeat_nested;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "run dataflow" `Quick test_run_dataflow;
      Alcotest.test_case "pp roundtrip" `Quick test_pp_roundtrip;
      Alcotest.test_case "example traces parse" `Quick test_example_traces_parse;
    ] )
