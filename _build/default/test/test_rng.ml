(* The deterministic RNG underpins experiment reproducibility. *)

let test_determinism () =
  let a = Skipit_sim.Rng.create ~seed:123 in
  let b = Skipit_sim.Rng.create ~seed:123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Skipit_sim.Rng.next_int64 a)
      (Skipit_sim.Rng.next_int64 b)
  done

let test_seeds_differ () =
  let a = Skipit_sim.Rng.create ~seed:1 in
  let b = Skipit_sim.Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Skipit_sim.Rng.next_int64 a = Skipit_sim.Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 4)

let test_copy_preserves () =
  let a = Skipit_sim.Rng.create ~seed:9 in
  ignore (Skipit_sim.Rng.next_int64 a);
  let b = Skipit_sim.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Skipit_sim.Rng.next_int64 a)
    (Skipit_sim.Rng.next_int64 b)

let test_split_independent () =
  let a = Skipit_sim.Rng.create ~seed:5 in
  let child = Skipit_sim.Rng.split a in
  (* The child stream should not replay the parent's continuation. *)
  let parent_next = Skipit_sim.Rng.next_int64 a in
  let child_next = Skipit_sim.Rng.next_int64 child in
  Alcotest.(check bool) "split diverges" true (parent_next <> child_next)

let prop_int_bounds =
  QCheck.Test.make ~name:"int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
  @@ fun (seed, bound) ->
  let rng = Skipit_sim.Rng.create ~seed in
  let v = Skipit_sim.Rng.int rng bound in
  v >= 0 && v < bound

let prop_int_in_bounds =
  QCheck.Test.make ~name:"int_in within inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
  @@ fun (seed, lo, width) ->
  let rng = Skipit_sim.Rng.create ~seed in
  let v = Skipit_sim.Rng.int_in rng ~lo ~hi:(lo + width) in
  v >= lo && v <= lo + width

let prop_float_unit =
  QCheck.Test.make ~name:"float in [0,1)" ~count:500 QCheck.small_int @@ fun seed ->
  let rng = Skipit_sim.Rng.create ~seed in
  let v = Skipit_sim.Rng.float rng in
  v >= 0. && v < 1.

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 0 40) int))
  @@ fun (seed, xs) ->
  let rng = Skipit_sim.Rng.create ~seed in
  let arr = Array.of_list xs in
  Skipit_sim.Rng.shuffle rng arr;
  List.sort compare (Array.to_list arr) = List.sort compare xs

let test_chance_extremes () =
  let rng = Skipit_sim.Rng.create ~seed:3 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always true" true (Skipit_sim.Rng.chance rng 1.0);
    Alcotest.(check bool) "p=0 always false" false (Skipit_sim.Rng.chance rng 0.0)
  done

let tests =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
      Alcotest.test_case "copy preserves state" `Quick test_copy_preserves;
      Alcotest.test_case "split independent" `Quick test_split_independent;
      Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
      QCheck_alcotest.to_alcotest prop_int_bounds;
      QCheck_alcotest.to_alcotest prop_int_in_bounds;
      QCheck_alcotest.to_alcotest prop_float_unit;
      QCheck_alcotest.to_alcotest prop_shuffle_permutation;
    ] )
