module S = Skipit_core.System
module C = Skipit_core.Config
module Instr = Skipit_cpu.Instr
module Lsu = Skipit_cpu.Lsu

let fresh () =
  let sys = S.create (C.platform ~cores:1 ()) in
  sys, S.lsu sys 0, Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64

let test_instr_classification () =
  Alcotest.(check bool) "load is memory" true (Instr.is_memory (Instr.Load { addr = 0 }));
  Alcotest.(check bool) "fence is not" false (Instr.is_memory Instr.Fence);
  Alcotest.(check bool) "delay is not" false (Instr.is_memory (Instr.Delay 5));
  Alcotest.(check (option int)) "touches" (Some 64)
    (Instr.touches (Instr.Cbo_flush { addr = 64 }));
  Alcotest.(check (option int)) "fence touches nothing" None (Instr.touches Instr.Fence)

let test_instr_pp () =
  Alcotest.(check string) "load" "ld 0x40"
    (Format.asprintf "%a" Instr.pp (Instr.Load { addr = 0x40 }));
  Alcotest.(check string) "cbo" "cbo.clean 0x40"
    (Format.asprintf "%a" Instr.pp (Instr.Cbo_clean { addr = 0x40 }))

let test_lsu_executes () =
  let _, lsu, a = fresh () in
  ignore (Lsu.exec lsu (Instr.Store { addr = a; value = 3 }));
  let v = Lsu.exec lsu (Instr.Load { addr = a }) in
  Alcotest.(check int) "value through LSU" 3 v;
  Alcotest.(check int) "instruction count" 2 (Lsu.instructions lsu);
  Alcotest.(check bool) "clock advanced" true (Lsu.clock lsu > 0)

let test_cbo_async_commit () =
  let _, lsu, a = fresh () in
  ignore (Lsu.exec lsu (Instr.Store { addr = a; value = 1 }));
  let before = Lsu.clock lsu in
  ignore (Lsu.exec lsu (Instr.Cbo_flush { addr = a }));
  Alcotest.(check bool) "CBO.X advances only to commit" true (Lsu.clock lsu - before < 20);
  Alcotest.(check int) "one pending writeback" 1 (Lsu.pending_writebacks lsu);
  ignore (Lsu.exec lsu Instr.Fence);
  Alcotest.(check int) "drained by the fence" 0 (Lsu.pending_writebacks lsu);
  Alcotest.(check bool) "fence paid the latency" true (Lsu.clock lsu - before > 50)

let test_cas_result_encoding () =
  let _, lsu, a = fresh () in
  ignore (Lsu.exec lsu (Instr.Store { addr = a; value = 2 }));
  Alcotest.(check int) "success = 1" 1
    (Lsu.exec lsu (Instr.Cas { addr = a; expected = 2; desired = 3 }));
  Alcotest.(check int) "failure = 0" 0
    (Lsu.exec lsu (Instr.Cas { addr = a; expected = 2; desired = 4 }))

let test_advance_to () =
  let _, lsu, _ = fresh () in
  Lsu.advance_to lsu 100;
  Alcotest.(check int) "forward" 100 (Lsu.clock lsu);
  Lsu.advance_to lsu 50;
  Alcotest.(check int) "never backwards" 100 (Lsu.clock lsu)

let test_delay_negative_rejected () =
  let _, lsu, _ = fresh () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Lsu.exec: negative delay")
    (fun () -> ignore (Lsu.exec lsu (Instr.Delay (-1))))

module SQ = Skipit_cpu.Store_queue

let test_store_queue_basics () =
  let q = SQ.create ~entries:2 in
  Alcotest.(check int) "empty" 0 (SQ.occupancy q ~now:0);
  Alcotest.(check int) "insert commits now" 0 (SQ.insert q ~now:0 ~drain_at:100);
  Alcotest.(check int) "second too" 1 (SQ.insert q ~now:1 ~drain_at:90);
  Alcotest.(check int) "occupancy" 2 (SQ.occupancy q ~now:2);
  (* Full: the third insert stalls until the oldest drains. *)
  Alcotest.(check int) "third waits" 100 (SQ.insert q ~now:2 ~drain_at:150);
  (* In-order drain: the 90-cycle store cannot complete before the 100. *)
  Alcotest.(check int) "fence waits for all (in order)" 150 (SQ.drained_at q ~now:2);
  Alcotest.(check int) "drained later" 200 (SQ.drained_at q ~now:200);
  Alcotest.(check int) "pruned" 0 (SQ.occupancy q ~now:200)

let test_async_store_hides_miss () =
  let sys = S.create (C.platform ~cores:1 ()) in
  let lsu = S.lsu sys 0 in
  let a = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  let t0 = Lsu.clock lsu in
  ignore (Lsu.exec lsu (Instr.Store { addr = a; value = 1 }));
  Alcotest.(check bool) "store miss hidden by the STQ (§3.2)" true
    (Lsu.clock lsu - t0 < 20);
  Alcotest.(check int) "one store draining" 1 (Lsu.pending_stores lsu);
  ignore (Lsu.exec lsu Instr.Fence);
  Alcotest.(check bool) "fence exposes the drain" true (Lsu.clock lsu - t0 > 50);
  Alcotest.(check int) "drained" 0 (Lsu.pending_stores lsu)

let test_sync_store_blocks () =
  let params =
    { (C.platform ~cores:1 ()) with Skipit_cache.Params.async_stores = false }
  in
  let sys = S.create params in
  let lsu = S.lsu sys 0 in
  let a = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64 in
  let t0 = Lsu.clock lsu in
  ignore (Lsu.exec lsu (Instr.Store { addr = a; value = 1 }));
  Alcotest.(check bool) "synchronous store pays the miss" true (Lsu.clock lsu - t0 > 50);
  Alcotest.(check int) "nothing pending" 0 (Lsu.pending_stores lsu)

let tests =
  ( "cpu",
    [
      Alcotest.test_case "instr classification" `Quick test_instr_classification;
      Alcotest.test_case "instr pp" `Quick test_instr_pp;
      Alcotest.test_case "lsu executes" `Quick test_lsu_executes;
      Alcotest.test_case "CBO.X async commit" `Quick test_cbo_async_commit;
      Alcotest.test_case "cas encoding" `Quick test_cas_result_encoding;
      Alcotest.test_case "advance_to monotone" `Quick test_advance_to;
      Alcotest.test_case "negative delay rejected" `Quick test_delay_negative_rejected;
      Alcotest.test_case "store queue basics" `Quick test_store_queue_basics;
      Alcotest.test_case "async store hides miss (§3.2)" `Quick test_async_store_hides_miss;
      Alcotest.test_case "sync-store ablation blocks" `Quick test_sync_store_blocks;
    ] )
