(* The Skip-It mechanism (§6): GrantData vs GrantDataDirty maintenance, the
   §6.2 safety argument, and end-to-end "skipping never loses data". *)

module S = Skipit_core.System
module C = Skipit_core.Config
module Dcache = Skipit_l1.Dcache
module L2 = Skipit_l2.Inclusive_cache
module Rng = Skipit_sim.Rng

let make ?(cores = 2) () = S.create (C.platform ~cores ~skip_it:true ())
let line sys = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64

let skip_of sys ~core a =
  match Dcache.line_state (S.dcache sys core) a with
  | Some l -> l.Dcache.skip
  | None -> Alcotest.fail "line not present"

let dirty_of sys ~core a =
  match Dcache.line_state (S.dcache sys core) a with
  | Some l -> l.Dcache.dirty
  | None -> Alcotest.fail "line not present"

let test_grant_clean_sets_skip () =
  let sys = make () in
  let a = line sys in
  ignore (S.load sys ~core:0 a) (* fresh from DRAM: persisted *);
  Alcotest.(check bool) "GrantData => skip set" true (skip_of sys ~core:0 a)

let test_grant_dirty_clears_skip () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 5;
  (* Core 1 reads: core 0's dirty data moves to L2 (dirty there), and core 1
     receives GrantDataDirty. *)
  ignore (S.load sys ~core:1 a);
  Alcotest.(check bool) "L2 holds it dirty" true (L2.dir_dirty (S.l2 sys) a);
  Alcotest.(check bool) "GrantDataDirty => skip unset" false (skip_of sys ~core:1 a)

let test_probe_downgrade_clears_skip () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 5;
  ignore (S.load sys ~core:1 a);
  (* Core 0 was downgraded Trunk→Branch and handed its dirty data to the
     L2; its copy is clean but NOT persisted, so skip must be unset. *)
  Alcotest.(check bool) "downgraded copy clean" false (dirty_of sys ~core:0 a);
  Alcotest.(check bool) "skip cleared on the downgraded copy" false (skip_of sys ~core:0 a)

let test_clean_sets_skip () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 5;
  S.clean sys ~core:0 a;
  S.fence sys ~core:0;
  Alcotest.(check bool) "post-clean line persisted => skip" true (skip_of sys ~core:0 a)

let drops sys core =
  Option.value ~default:0
    (List.assoc_opt (Printf.sprintf "fu.%d.skip_dropped" core) (S.stats_report sys))

let test_redundant_clean_dropped () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 5;
  S.clean sys ~core:0 a;
  S.fence sys ~core:0;
  S.clean sys ~core:0 a;
  S.clean sys ~core:0 a;
  S.fence sys ~core:0;
  Alcotest.(check int) "both redundant cleans dropped" 2 (drops sys 0);
  Alcotest.(check int) "data persisted exactly once" 5 (S.persisted_word sys a)

let test_store_invalidates_skip_protection () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 5;
  S.clean sys ~core:0 a;
  S.fence sys ~core:0;
  (* New store re-dirties the line: the next clean must NOT be dropped. *)
  S.store sys ~core:0 a 6;
  S.clean sys ~core:0 a;
  S.fence sys ~core:0;
  Alcotest.(check int) "no drop for the dirty line" 0 (drops sys 0);
  Alcotest.(check int) "new value persisted" 6 (S.persisted_word sys a)

let test_drop_after_refetch () =
  (* §6.1: a flush of a line granted clean (GrantData) is dropped. *)
  let sys = make ~cores:1 () in
  let a = line sys in
  S.store sys ~core:0 a 5;
  S.flush sys ~core:0 a;
  S.fence sys ~core:0;
  ignore (S.load sys ~core:0 a) (* refetch: GrantData, skip set *);
  let before = drops sys 0 in
  S.flush sys ~core:0 a;
  S.fence sys ~core:0;
  Alcotest.(check int) "flush of persisted line dropped" (before + 1) (drops sys 0)

let test_no_drop_when_l2_dirty () =
  (* Scenario 1 of §6: clean in L1 but dirty in L2 — the writeback MUST be
     issued. *)
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 7;
  ignore (S.load sys ~core:1 a) (* dirty data now (only) in L2 *);
  S.clean sys ~core:1 a;
  S.fence sys ~core:1;
  Alcotest.(check int) "no skip drop" 0 (drops sys 1);
  Alcotest.(check int) "L2's dirty data persisted" 7 (S.persisted_word sys a)

(* End-to-end safety property: under random workloads with Skip It on, after
   every CBO.X + fence the fenced line's architectural value equals its
   persisted value — dropping a writeback never loses data. *)
let prop_drop_never_loses_data =
  QCheck.Test.make ~name:"skip drop never loses data" ~count:15 QCheck.small_int
  @@ fun seed ->
  let sys = S.create { (C.tiny ~cores:2 ()) with Skipit_cache.Params.skip_it = true } in
  let rng = Rng.create ~seed in
  let lines = Array.init 12 (fun _ -> line sys) in
  let ok = ref true in
  for _ = 1 to 250 do
    let core = Rng.int rng 2 in
    let a = lines.(Rng.int rng (Array.length lines)) in
    match Rng.int rng 5 with
    | 0 | 1 -> ignore (S.load sys ~core a)
    | 2 -> S.store sys ~core a (Rng.int rng 1000)
    | 3 ->
      S.clean sys ~core a;
      S.fence sys ~core;
      if S.persisted_word sys a <> S.peek_word sys a then ok := false
    | _ ->
      S.flush sys ~core a;
      S.fence sys ~core;
      if S.persisted_word sys a <> S.peek_word sys a then ok := false
  done;
  !ok && S.check_coherence sys = Ok ()

let tests =
  ( "skip_bit",
    [
      Alcotest.test_case "GrantData sets skip" `Quick test_grant_clean_sets_skip;
      Alcotest.test_case "GrantDataDirty clears skip" `Quick test_grant_dirty_clears_skip;
      Alcotest.test_case "probe downgrade clears skip" `Quick test_probe_downgrade_clears_skip;
      Alcotest.test_case "clean sets skip" `Quick test_clean_sets_skip;
      Alcotest.test_case "redundant clean dropped" `Quick test_redundant_clean_dropped;
      Alcotest.test_case "store re-arms writeback" `Quick test_store_invalidates_skip_protection;
      Alcotest.test_case "drop after refetch" `Quick test_drop_after_refetch;
      Alcotest.test_case "no drop when L2 dirty (§6 scenario 1)" `Quick test_no_drop_when_l2_dirty;
      QCheck_alcotest.to_alcotest prop_drop_never_loses_data;
    ] )
