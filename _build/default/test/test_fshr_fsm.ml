(* The five legal paths of Fig. 7 and their metadata effects. *)

module F = Skipit_l1.Fshr_fsm
open Skipit_tilelink

let plan ~hit ~dirty ~kind = { F.hit; dirty; kind }

let path_names p = List.map (Format.asprintf "%a" F.pp_state) (F.path p)

let test_hit_dirty_flush () =
  let p = plan ~hit:true ~dirty:true ~kind:Message.Wb_flush in
  Alcotest.(check (list string)) "path"
    [ "meta_write"; "fill_buffer"; "root_release_data"; "root_release_ack" ]
    (path_names p);
  Alcotest.(check bool) "invalidates" true (F.meta_effect p = F.Invalidate_line);
  Alcotest.(check bool) "sends data" true (F.sends_data p)

let test_hit_dirty_clean () =
  let p = plan ~hit:true ~dirty:true ~kind:Message.Wb_clean in
  Alcotest.(check (list string)) "path"
    [ "meta_write"; "fill_buffer"; "root_release_data"; "root_release_ack" ]
    (path_names p);
  Alcotest.(check bool) "clears dirty only" true (F.meta_effect p = F.Clear_dirty)

let test_hit_clean_flush () =
  let p = plan ~hit:true ~dirty:false ~kind:Message.Wb_flush in
  Alcotest.(check (list string)) "path"
    [ "meta_write"; "root_release"; "root_release_ack" ]
    (path_names p);
  Alcotest.(check bool) "invalidates" true (F.meta_effect p = F.Invalidate_line);
  Alcotest.(check bool) "no data" false (F.sends_data p)

let test_hit_clean_clean () =
  let p = plan ~hit:true ~dirty:false ~kind:Message.Wb_clean in
  Alcotest.(check (list string)) "path" [ "root_release"; "root_release_ack" ] (path_names p);
  Alcotest.(check bool) "no metadata change" true (F.meta_effect p = F.No_meta_change)

let test_miss () =
  (* §5.2: on a miss the RootRelease is still sent — other caches may hold
     dirty data. *)
  List.iter
    (fun kind ->
      let p = plan ~hit:false ~dirty:false ~kind in
      Alcotest.(check (list string)) "path" [ "root_release"; "root_release_ack" ]
        (path_names p);
      Alcotest.(check bool) "no metadata change" true (F.meta_effect p = F.No_meta_change))
    [ Message.Wb_clean; Message.Wb_flush ]

let test_ack_returns_to_invalid () =
  let p = plan ~hit:true ~dirty:true ~kind:Message.Wb_flush in
  Alcotest.(check bool) "cycle closes" true
    (F.equal_state (F.next p F.Root_release_ack) F.Invalid)

let test_invalid_needs_first_state () =
  let p = plan ~hit:false ~dirty:false ~kind:Message.Wb_clean in
  Alcotest.check_raises "next from Invalid"
    (Invalid_argument "Fshr_fsm.next: use first_state from Invalid") (fun () ->
      ignore (F.next p F.Invalid))

let test_state_cycles () =
  let cycles s = F.state_cycles s ~meta_cycles:2 ~fill_cycles:1 ~data_beats:4 in
  Alcotest.(check int) "meta" 2 (cycles F.Meta_write);
  Alcotest.(check int) "fill (widened array)" 1 (cycles F.Fill_buffer);
  Alcotest.(check int) "data release = 4 beats" 4 (cycles F.Root_release_data);
  Alcotest.(check int) "headers 1 beat" 1 (cycles F.Root_release);
  Alcotest.(check int) "ack waits, no occupancy" 0 (cycles F.Root_release_ack)

let prop_path_well_formed =
  QCheck.Test.make ~name:"every plan's path ends in ack and never revisits" ~count:100
    QCheck.(triple bool bool bool)
  @@ fun (hit, dirty_raw, clean) ->
  let dirty = hit && dirty_raw in
  let kind = if clean then Message.Wb_clean else Message.Wb_flush in
  let path = F.path { F.hit; dirty; kind } in
  let rec last = function [ x ] -> Some x | _ :: tl -> last tl | [] -> None in
  last path = Some F.Root_release_ack
  && List.length (List.sort_uniq compare path) = List.length path

let tests =
  ( "fshr_fsm",
    [
      Alcotest.test_case "hit+dirty flush" `Quick test_hit_dirty_flush;
      Alcotest.test_case "hit+dirty clean" `Quick test_hit_dirty_clean;
      Alcotest.test_case "hit clean-line flush" `Quick test_hit_clean_flush;
      Alcotest.test_case "hit clean-line clean" `Quick test_hit_clean_clean;
      Alcotest.test_case "miss still releases" `Quick test_miss;
      Alcotest.test_case "ack -> invalid" `Quick test_ack_returns_to_invalid;
      Alcotest.test_case "invalid guarded" `Quick test_invalid_needs_first_state;
      Alcotest.test_case "state cycle costs" `Quick test_state_cycles;
      QCheck_alcotest.to_alcotest prop_path_well_formed;
    ] )
