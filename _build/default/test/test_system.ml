(* Full-system integration: coherence, persistence and CBO.X semantics
   across cores. *)

module S = Skipit_core.System
module C = Skipit_core.Config
module Rng = Skipit_sim.Rng

let make ?(cores = 2) ?(skip_it = false) ?(tiny = false) () =
  let params = if tiny then C.tiny ~cores () else C.platform ~cores ~skip_it () in
  let params = { params with Skipit_cache.Params.skip_it } in
  S.create params

let line sys = Skipit_mem.Allocator.alloc_line (S.allocator sys) ~line_bytes:64

let check_ok sys =
  match S.check_coherence sys with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("coherence: " ^ e)

let test_store_load_roundtrip () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 7;
  Alcotest.(check int) "same core" 7 (S.load sys ~core:0 a);
  Alcotest.(check int) "other word still 0" 0 (S.load sys ~core:0 (a + 8));
  check_ok sys

let test_cross_core_coherence () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 1;
  (* Core 1's load probes core 0's Trunk copy. *)
  Alcotest.(check int) "core1 sees the store" 1 (S.load sys ~core:1 a);
  check_ok sys;
  (* Core 1's store revokes core 0's copy; core 0 re-reads the new value. *)
  S.store sys ~core:1 a 2;
  check_ok sys;
  Alcotest.(check int) "core0 sees core1's store" 2 (S.load sys ~core:0 a)

let test_cas () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 5;
  Alcotest.(check bool) "cas succeeds" true (S.cas sys ~core:1 a ~expected:5 ~desired:6);
  Alcotest.(check bool) "stale cas fails" false (S.cas sys ~core:0 a ~expected:5 ~desired:7);
  Alcotest.(check int) "value" 6 (S.load sys ~core:0 a)

let test_flush_persists_and_invalidates () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 11;
  Alcotest.(check int) "not yet persisted" 0 (S.persisted_word sys a);
  S.flush sys ~core:0 a;
  S.fence sys ~core:0;
  Alcotest.(check int) "persisted" 11 (S.persisted_word sys a);
  (* Invalidated everywhere: the re-read must pay a DRAM refetch. *)
  let t0 = S.clock sys ~core:0 in
  Alcotest.(check int) "value survives" 11 (S.load sys ~core:0 a);
  Alcotest.(check bool) "read was a full miss" true (S.clock sys ~core:0 - t0 > 50);
  check_ok sys

let test_clean_persists_keeps_line () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 12;
  S.clean sys ~core:0 a;
  S.fence sys ~core:0;
  Alcotest.(check int) "persisted" 12 (S.persisted_word sys a);
  let t0 = S.clock sys ~core:0 in
  Alcotest.(check int) "still cached" 12 (S.load sys ~core:0 a);
  Alcotest.(check bool) "read was a hit" true (S.clock sys ~core:0 - t0 < 10);
  check_ok sys

let test_cross_core_writeback () =
  (* §5.5: flushing a line that is dirty in ANOTHER core must probe it and
     persist its data. *)
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 21;
  S.flush sys ~core:1 a (* core 1 misses; core 0 holds it dirty *);
  S.fence sys ~core:1;
  Alcotest.(check int) "other core's dirty data persisted" 21 (S.persisted_word sys a);
  check_ok sys

let test_clean_of_remote_dirty () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 22;
  S.clean sys ~core:1 a;
  S.fence sys ~core:1;
  Alcotest.(check int) "persisted via probe" 22 (S.persisted_word sys a);
  (* The clean downgraded core 0 to Branch; its next read still hits. *)
  let t0 = S.clock sys ~core:0 in
  Alcotest.(check int) "core0 keeps a copy" 22 (S.load sys ~core:0 a);
  Alcotest.(check bool) "hit" true (S.clock sys ~core:0 - t0 < 10);
  check_ok sys

let test_fence_orders_writebacks () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 31;
  let t0 = S.clock sys ~core:0 in
  S.flush sys ~core:0 a;
  let commit_cost = S.clock sys ~core:0 - t0 in
  Alcotest.(check bool) "flush commits asynchronously" true (commit_cost < 20);
  S.fence sys ~core:0;
  Alcotest.(check bool) "fence pays the writeback" true (S.clock sys ~core:0 - t0 > 50)

let test_crash_semantics () =
  let sys = make () in
  let a = line sys and b = line sys in
  S.store sys ~core:0 a 1;
  S.clean sys ~core:0 a;
  S.fence sys ~core:0;
  S.store sys ~core:0 b 2 (* never written back *);
  S.crash sys;
  Alcotest.(check int) "cleaned survives" 1 (S.persisted_word sys a);
  Alcotest.(check int) "volatile lost" 0 (S.persisted_word sys b);
  (* After the crash the caches are empty; loads refetch from DRAM. *)
  Alcotest.(check int) "reload persisted" 1 (S.load sys ~core:0 a);
  Alcotest.(check int) "reload lost" 0 (S.load sys ~core:0 b)

let test_eviction_writeback () =
  (* Tiny hierarchy: storing more lines than L1+L2 capacity forces dirty
     evictions all the way to DRAM without any CBO.X. *)
  let sys = make ~tiny:true () in
  let n = 512 in
  let base = Skipit_mem.Allocator.alloc (S.allocator sys) ~align:64 (n * 64) in
  for i = 0 to n - 1 do
    S.store sys ~core:0 (base + (i * 64)) (i + 1)
  done;
  check_ok sys;
  for i = 0 to n - 1 do
    Alcotest.(check int) (Printf.sprintf "line %d value" i) (i + 1)
      (S.load sys ~core:0 (base + (i * 64)))
  done;
  check_ok sys;
  Alcotest.(check bool) "dirty lines reached DRAM" true (Skipit_mem.Dram.writes (S.dram sys) > 0)

let test_stats_report () =
  let sys = make () in
  let a = line sys in
  S.store sys ~core:0 a 1;
  S.flush sys ~core:0 a;
  S.fence sys ~core:0;
  let report = S.stats_report sys in
  let get k = Option.value ~default:0 (List.assoc_opt k report) in
  Alcotest.(check int) "one store miss" 1 (get "l1.0.store_misses");
  Alcotest.(check int) "one root release" 1 (get "l2.root_releases");
  Alcotest.(check bool) "a DRAM write happened" true (get "l2.dram_writebacks" >= 1)

(* Random cross-core workload against a flat reference memory.  The
   reference is updated at the same op granularity the scheduler uses, so
   values must agree exactly; invariants are checked throughout. *)
let random_ops ~tiny ~skip_it ~ops ~seed () =
  let sys = make ~cores:2 ~skip_it ~tiny () in
  let rng = Rng.create ~seed in
  let lines = Array.init 24 (fun _ -> line sys) in
  let reference = Hashtbl.create 64 in
  let ref_get a = Option.value ~default:0 (Hashtbl.find_opt reference a) in
  for _ = 1 to ops do
    let core = Rng.int rng 2 in
    let a = lines.(Rng.int rng (Array.length lines)) + (8 * Rng.int rng 8) in
    match Rng.int rng 6 with
    | 0 | 1 ->
      let got = S.load sys ~core a in
      Alcotest.(check int) (Printf.sprintf "load %#x" a) (ref_get a) got
    | 2 | 3 ->
      let v = Rng.int rng 1000 in
      S.store sys ~core a v;
      Hashtbl.replace reference a v
    | 4 -> S.clean sys ~core a
    | _ -> S.flush sys ~core a
  done;
  S.fence sys ~core:0;
  S.fence sys ~core:1;
  check_ok sys;
  (* Architectural values must match the reference everywhere. *)
  Hashtbl.iter
    (fun a v -> Alcotest.(check int) (Printf.sprintf "final %#x" a) v (S.peek_word sys a))
    reference

let test_random_small () = random_ops ~tiny:false ~skip_it:false ~ops:800 ~seed:1 ()
let test_random_tiny () = random_ops ~tiny:true ~skip_it:false ~ops:800 ~seed:2 ()
let test_random_skipit () = random_ops ~tiny:true ~skip_it:true ~ops:800 ~seed:3 ()

let prop_random_workloads =
  QCheck.Test.make ~name:"random workloads preserve values+invariants" ~count:12
    QCheck.(pair small_int bool)
  @@ fun (seed, skip_it) ->
  random_ops ~tiny:true ~skip_it ~ops:300 ~seed ();
  true

let tests =
  ( "system",
    [
      Alcotest.test_case "store/load roundtrip" `Quick test_store_load_roundtrip;
      Alcotest.test_case "cross-core coherence" `Quick test_cross_core_coherence;
      Alcotest.test_case "cas" `Quick test_cas;
      Alcotest.test_case "flush persists+invalidates" `Quick test_flush_persists_and_invalidates;
      Alcotest.test_case "clean persists, keeps line" `Quick test_clean_persists_keeps_line;
      Alcotest.test_case "cross-core flush (§5.5)" `Quick test_cross_core_writeback;
      Alcotest.test_case "clean of remote dirty line" `Quick test_clean_of_remote_dirty;
      Alcotest.test_case "fence orders writebacks" `Quick test_fence_orders_writebacks;
      Alcotest.test_case "crash semantics" `Quick test_crash_semantics;
      Alcotest.test_case "eviction writeback" `Quick test_eviction_writeback;
      Alcotest.test_case "stats report" `Quick test_stats_report;
      Alcotest.test_case "random ops (boom)" `Quick test_random_small;
      Alcotest.test_case "random ops (tiny)" `Quick test_random_tiny;
      Alcotest.test_case "random ops (skip-it)" `Quick test_random_skipit;
      QCheck_alcotest.to_alcotest prop_random_workloads;
    ] )
