(* Post-crash repair of interrupted deletions: the crash window between
   persisting the logical mark and persisting the physical unlink is
   constructed directly in the persisted image, then repaired. *)

module S = Skipit_core.System
module T = Skipit_core.Thread
module C = Skipit_core.Config
module Strategy = Skipit_persist.Strategy
module Pctx = Skipit_persist.Pctx
module HL = Skipit_pds.Harris_list
module HT = Skipit_pds.Hash_table
module Ptr = Skipit_pds.Ptr

let run_task sys f =
  let r = ref None in
  ignore (T.run sys [ { T.core = 0; body = (fun () -> r := Some (f ())) } ]);
  Option.get !r

let pctx () = Pctx.make (Strategy.plain ()) Pctx.Nvtraverse

let test_list_repair () =
  let sys = S.create (C.platform ~cores:1 ()) in
  let p = pctx () in
  let list = run_task sys (fun () -> HL.create p (S.allocator sys)) in
  run_task sys (fun () ->
    List.iter (fun k -> ignore (HL.insert list p k)) [ 10; 20; 30; 40 ]);
  (* Construct the interrupted-deletion state for key 20: set the mark bit
     on its next pointer directly in the persisted image (the state a crash
     leaves after delete's mark-persist but before its unlink-persist). *)
  run_task sys (fun () -> T.fence ());
  let node20 =
    (* key 20's node: walk the persisted chain from key 10's predecessor;
       the snapshot API gives us each key, and nodes are (key,next). *)
    let rec hunt addr limit =
      if limit = 0 then None
      else if S.persisted_word sys addr = 20 && S.persisted_word sys (addr + 8) <> 0 then
        Some addr
      else hunt (addr + 16) (limit - 1)
    in
    (* Nodes were bump-allocated in a small arena; scan it. *)
    hunt 0x1_0000 4096
  in
  (match node20 with
   | None -> Alcotest.fail "could not locate node 20 in the persisted image"
   | Some addr ->
     let next = S.persisted_word sys (addr + 8) in
     S.poke_word sys (addr + 8) (Ptr.with_mark next));
  S.crash sys;
  (* After the crash the mark is visible; 20 is logically gone. *)
  Alcotest.(check (list int)) "20 logically deleted" [ 10; 30; 40 ]
    (HL.to_list_unsafe list sys);
  let unlinked = run_task sys (fun () -> HL.repair list p) in
  Alcotest.(check int) "one node unlinked" 1 unlinked;
  Alcotest.(check (list int)) "snapshot unchanged" [ 10; 30; 40 ]
    (HL.to_list_unsafe list sys);
  (* The repair is durable: crash again, still clean, nothing to do. *)
  S.crash sys;
  Alcotest.(check (list int)) "durably repaired" [ 10; 30; 40 ]
    (HL.to_list_unsafe list sys);
  let again = run_task sys (fun () -> HL.repair list p) in
  Alcotest.(check int) "idempotent" 0 again

let test_repair_clean_list_noop () =
  let sys = S.create (C.platform ~cores:1 ()) in
  let p = pctx () in
  let list = run_task sys (fun () -> HL.create p (S.allocator sys)) in
  run_task sys (fun () ->
    List.iter (fun k -> ignore (HL.insert list p k)) [ 1; 2; 3 ];
    ignore (HL.delete list p 2));
  let n = run_task sys (fun () -> HL.repair list p) in
  Alcotest.(check int) "nothing interrupted" 0 n;
  Alcotest.(check (list int)) "content" [ 1; 3 ] (HL.to_list_unsafe list sys)

let test_hash_repair_runs () =
  let sys = S.create (C.platform ~cores:1 ()) in
  let p = pctx () in
  let ht = run_task sys (fun () -> HT.create p (S.allocator sys) ~buckets:8) in
  run_task sys (fun () ->
    for k = 1 to 20 do
      ignore (HT.insert ht p k)
    done;
    for k = 1 to 5 do
      ignore (HT.delete ht p (k * 4))
    done);
  S.crash sys;
  let n = run_task sys (fun () -> HT.repair ht p) in
  Alcotest.(check int) "no interrupted deletions" 0 n;
  Alcotest.(check int) "elements intact" 15 (List.length (HT.elements_unsafe ht sys))

let test_bst_repair () =
  let sys = S.create (C.platform ~cores:1 ()) in
  let p = pctx () in
  let bst = run_task sys (fun () -> Skipit_pds.Bst.create p (S.allocator sys)) in
  run_task sys (fun () ->
    List.iter (fun k -> ignore (Skipit_pds.Bst.insert bst p k)) [ 50; 25; 75; 10; 60 ]);
  (* Interrupted NM deletion of 25: inject the flag on its incoming edge
     directly in memory (the state after delete's injection CAS persisted
     but before cleanup), then crash. *)
  run_task sys (fun () ->
    ignore (Skipit_pds.Bst.delete bst p 10));
  (* For the injected state, find 25's parent edge in the persisted image:
     scan the arena for an edge word pointing at a leaf with key 25. *)
  run_task sys (fun () -> T.fence ());
  let leaf25 =
    let rec hunt addr limit =
      if limit = 0 then None
      else if
        S.persisted_word sys addr = 25
        && S.persisted_word sys (addr + 8) = 0
        && S.persisted_word sys (addr + 16) = 0
      then Some addr
      else hunt (addr + 8) (limit - 1)
    in
    hunt 0x1_0000 32768
  in
  let leaf25 = match leaf25 with Some a -> a | None -> Alcotest.fail "leaf 25 not found" in
  let edge =
    let rec hunt addr limit =
      if limit = 0 then None
      else if S.persisted_word sys addr = leaf25 then Some addr
      else hunt (addr + 8) (limit - 1)
    in
    hunt 0x1_0000 32768
  in
  (match edge with
   | Some e -> S.poke_word sys e (Ptr.with_mark leaf25)
   | None -> Alcotest.fail "edge to leaf 25 not found");
  S.crash sys;
  Alcotest.(check (list int)) "25 logically deleted by the flag" [ 50; 60; 75 ]
    (Skipit_pds.Bst.elements_unsafe bst sys);
  let n = run_task sys (fun () -> Skipit_pds.Bst.repair bst p) in
  Alcotest.(check int) "one cleanup completed" 1 n;
  Alcotest.(check (list int)) "content preserved" [ 50; 60; 75 ]
    (Skipit_pds.Bst.elements_unsafe bst sys);
  (* Repaired durably and idempotently. *)
  S.crash sys;
  let again = run_task sys (fun () -> Skipit_pds.Bst.repair bst p) in
  Alcotest.(check int) "idempotent" 0 again;
  run_task sys (fun () ->
    Alcotest.(check bool) "tree still works" true (Skipit_pds.Bst.insert bst p 26);
    Alcotest.(check bool) "lookup" true (Skipit_pds.Bst.contains bst p 26))

let tests =
  ( "recovery",
    [
      Alcotest.test_case "list repair after crash" `Quick test_list_repair;
      Alcotest.test_case "repair of clean list is a no-op" `Quick test_repair_clean_list_noop;
      Alcotest.test_case "hash repair runs per bucket" `Quick test_hash_repair_runs;
      Alcotest.test_case "bst repair after crash" `Quick test_bst_repair;
    ] )
