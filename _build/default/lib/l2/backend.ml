module Dram = Skipit_mem.Dram

type t = {
  read_line : addr:int -> now:int -> int array * int * bool;
  write_line : addr:int -> data:int array -> now:int -> int;
  persist_line : addr:int -> data:int array -> now:int -> int;
  persist_if_dirty : addr:int -> now:int -> int;
  discard_line : addr:int -> unit;
  peek_word : int -> int;
  crash : unit -> unit;
}

let of_dram dram =
  {
    read_line =
      (fun ~addr ~now ->
        let data, t = Dram.read_line dram ~addr ~now in
        data, t, false);
    write_line = (fun ~addr ~data ~now -> Dram.write_line dram ~addr ~data ~now);
    persist_line = (fun ~addr ~data ~now -> Dram.write_line dram ~addr ~data ~now);
    persist_if_dirty = (fun ~addr:_ ~now -> now);
    discard_line = (fun ~addr:_ -> ());
    peek_word = (fun addr -> Dram.peek_word dram addr);
    crash = (fun () -> ());
  }
