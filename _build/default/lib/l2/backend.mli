(** The LLC's memory-side interface.

    The paper's platform has DRAM directly behind the L2; §7.4 hypothesises
    that a deeper hierarchy (an L3/L4) would increase writeback latencies
    and thus Skip It's savings.  To test that, the inclusive cache talks to
    an abstract backend that is either DRAM itself or a {!Memside_cache} in
    front of it.

    Semantics the L2 relies on:

    - {!read_line} returns the freshest copy and whether that copy is
      {e dirty with respect to the persistence domain} (a dirty memory-side
      copy means the line is not yet durable — the grant flavour and hence
      the skip bit must reflect it, §6);
    - {!write_line} is a cacheable victim writeback: it may lodge in the
      memory-side cache without reaching DRAM;
    - {!persist_line} is a durability write (RootRelease path): it must not
      be acknowledged before the data is in DRAM;
    - {!persist_if_dirty} pushes the backend's own dirty copy (if any) to
      DRAM — needed so the L2's "trivial skip" (§5.5) never skips a line
      whose only dirty copy lives below it;
    - {!discard_line} drops any cached copy without writing back
      (CBO.INVAL);
    - {!crash} loses all volatile state. *)

type t = {
  read_line : addr:int -> now:int -> int array * int * bool;
      (** [(data, available_at, dirty_below)]. *)
  write_line : addr:int -> data:int array -> now:int -> int;
  persist_line : addr:int -> data:int array -> now:int -> int;
  persist_if_dirty : addr:int -> now:int -> int;
  discard_line : addr:int -> unit;
  peek_word : int -> int;
  crash : unit -> unit;
}

val of_dram : Skipit_mem.Dram.t -> t
(** DRAM is the persistence domain itself: [write_line] = [persist_line],
    [persist_if_dirty] and [discard_line] are no-ops, nothing is volatile. *)
