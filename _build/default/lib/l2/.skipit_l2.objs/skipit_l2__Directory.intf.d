lib/l2/directory.mli: Perm Skipit_tilelink
