lib/l2/inclusive_cache.mli: Backend Message Params Perm Skipit_cache Skipit_sim Skipit_tilelink
