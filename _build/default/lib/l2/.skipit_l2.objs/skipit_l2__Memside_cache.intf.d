lib/l2/memside_cache.mli: Backend Geometry Skipit_cache Skipit_mem Skipit_sim
