lib/l2/memside_cache.ml: Array Backend Geometry Resource Skipit_cache Skipit_mem Skipit_sim Stats Store
