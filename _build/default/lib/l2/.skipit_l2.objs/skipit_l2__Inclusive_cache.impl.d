lib/l2/inclusive_cache.ml: Admission Array Backend Directory Geometry List Message Option Params Perm Printf Resource Skipit_cache Skipit_sim Skipit_tilelink Stats Store
