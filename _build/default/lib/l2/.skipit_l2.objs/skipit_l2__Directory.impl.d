lib/l2/directory.ml: Array List Perm Printf Skipit_tilelink String
