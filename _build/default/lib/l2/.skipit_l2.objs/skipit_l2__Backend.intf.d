lib/l2/backend.mli: Skipit_mem
