lib/l2/backend.ml: Skipit_mem
