lib/xarch/model.mli:
