lib/xarch/model.ml: Float
