(** Analytic latency models of the commercial writeback instructions used in
    the §7.3 comparison (Figs 11–12).

    The paper measures AMD EPYC 7763 and Intel Xeon Gold 6238T (x86:
    clflush, clflushopt, clwb) and AWS Graviton3 (ARMv8: DC CIVAC / DC
    CVAC).  We obviously cannot run those CPUs here, so each instruction is
    modelled by a small closed-form latency curve encoding the mechanisms
    the paper identifies:

    - Intel [clflush] is inherently ordered — consecutive flushes serialize,
      so latency grows with the full per-line cost and explodes beyond
      4 KiB (1 thread) / 16 KiB (8 threads);
    - Intel [clflushopt]/[clwb] are weakly ordered — per-line cost is
      amortised across the store-buffer/LFB parallelism;
    - AMD's [clflush] behaves like its [clflushopt] (both weakly ordered
      until the final fence), as the paper observes;
    - Graviton3's [dc civac]/[dc cvac] latency grows {e sub-linearly} in the
      region size, overtaking the others above ≈4 KiB;
    - extra threads divide the throughput-bound portion, with an efficiency
      factor below one.

    The constants are calibrated to reproduce the relative positions and
    crossover points of the published curves, not absolute cycle counts on
    any particular machine. *)

type instruction =
  | Intel_clflush
  | Intel_clflushopt
  | Intel_clwb
  | Amd_clflush
  | Amd_clflushopt
  | Graviton_civac  (** flush: clean+invalidate. *)
  | Graviton_cvac  (** clean. *)

val name : instruction -> string
val all : instruction list

val flush_like : instruction list
(** The instructions plotted in the flush comparison (Fig. 11/12):
    both Intel and AMD clflush/clflushopt plus Graviton CIVAC. *)

val latency : instruction -> threads:int -> bytes:int -> float
(** Modelled latency in cycles for writing back [bytes] (one fence at the
    end), split across [threads]. *)
