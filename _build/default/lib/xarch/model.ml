type instruction =
  | Intel_clflush
  | Intel_clflushopt
  | Intel_clwb
  | Amd_clflush
  | Amd_clflushopt
  | Graviton_civac
  | Graviton_cvac

let name = function
  | Intel_clflush -> "intel-clflush"
  | Intel_clflushopt -> "intel-clflushopt"
  | Intel_clwb -> "intel-clwb"
  | Amd_clflush -> "amd-clflush"
  | Amd_clflushopt -> "amd-clflushopt"
  | Graviton_civac -> "graviton-civac"
  | Graviton_cvac -> "graviton-cvac"

let all =
  [
    Intel_clflush;
    Intel_clflushopt;
    Intel_clwb;
    Amd_clflush;
    Amd_clflushopt;
    Graviton_civac;
    Graviton_cvac;
  ]

let flush_like =
  [ Intel_clflush; Intel_clflushopt; Amd_clflush; Amd_clflushopt; Graviton_civac ]

type shape =
  | Serializing of { base : float; per_line : float }
      (** Each writeback is ordered after the previous one. *)
  | Amortized of { base : float; per_line : float }
      (** Weakly ordered; per-line cost already reflects LFB-level MLP. *)
  | Sublinear of { base : float; coeff : float; exponent : float }

let shape_of = function
  | Intel_clflush -> Serializing { base = 250.; per_line = 100. }
  | Intel_clflushopt -> Amortized { base = 250.; per_line = 14. }
  | Intel_clwb -> Amortized { base = 230.; per_line = 13. }
  (* AMD's clflush is not serializing in practice — the paper observes it
     performing identically to clflushopt. *)
  | Amd_clflush -> Amortized { base = 300.; per_line = 15.5 }
  | Amd_clflushopt -> Amortized { base = 300.; per_line = 15. }
  | Graviton_civac -> Sublinear { base = 280.; coeff = 27.; exponent = 0.75 }
  | Graviton_cvac -> Sublinear { base = 260.; coeff = 25.; exponent = 0.75 }

let latency instr ~threads ~bytes =
  if threads <= 0 then invalid_arg "Model.latency: threads <= 0";
  if bytes <= 0 then invalid_arg "Model.latency: bytes <= 0";
  let lines = max 1 (bytes / 64) in
  let per_thread = float_of_int (max 1 (lines / threads)) in
  (* Sharing the memory system across threads is slightly sub-linear. *)
  let thread_tax = Float.pow (float_of_int threads) 0.08 in
  match shape_of instr with
  | Serializing { base; per_line } -> base +. (per_thread *. per_line *. thread_tax)
  | Amortized { base; per_line } -> base +. (per_thread *. per_line *. thread_tax)
  | Sublinear { base; coeff; exponent } ->
    base +. (coeff *. Float.pow per_thread exponent *. thread_tax)
