(** Per-core load-store unit model (§3.2) over the L1 data cache.

    Maintains the core's logical clock and fires instructions into the data
    cache with BOOM's ordering discipline in transaction-level form:

    - loads return their value and advance the clock to load-to-use
      completion;
    - stores and CBO.X are STQ entries fired at commit — a CBO.X advances
      the clock only to its {e commit} time (it is buffered by the flush
      unit and executes asynchronously, §5.2);
    - fences drain the STQ and wait for the flush counter (§5.3);
    - nacks (full flush queue, pending-writeback conflicts) surface as
      stalls computed by the data cache.

    The executed-instruction and cycle counters feed the throughput
    figures. *)

type t

val create : Skipit_l1.Dcache.t -> t
val dcache : t -> Skipit_l1.Dcache.t
val core : t -> int

val clock : t -> int
val advance_to : t -> int -> unit
(** Move the clock forward (scheduler use); never backwards. *)

val exec : t -> Instr.t -> int
(** Execute one instruction at the current clock; returns its value (loaded
    word, CAS success as 0/1, else 0) and advances the clock. *)

val instructions : t -> int
(** Instructions executed so far. *)

val pending_writebacks : t -> int
(** Current flush-counter value for this core. *)

val pending_stores : t -> int
(** Stores still draining from the STQ (0 when [Params.async_stores] is
    off). *)
