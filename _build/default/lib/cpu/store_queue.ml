type t = { entries : int; q : int Queue.t }

let create ~entries =
  if entries <= 0 then invalid_arg "Store_queue.create: no entries";
  { entries; q = Queue.create () }

let capacity t = t.entries

let prune t ~now =
  let rec drop () =
    match Queue.peek_opt t.q with
    | Some drain when drain <= now ->
      ignore (Queue.pop t.q);
      drop ()
    | Some _ | None -> ()
  in
  drop ()

let insert t ~now ~drain_at =
  prune t ~now;
  let commit =
    if Queue.length t.q >= t.entries then max now (Queue.pop t.q) else now
  in
  (* Entries drain in order; a later store never completes before an
     earlier one (stores fire in order, §3.2). *)
  let drain_at =
    match Queue.fold (fun acc d -> max acc d) 0 t.q with
    | 0 -> drain_at
    | latest -> max drain_at latest
  in
  Queue.add drain_at t.q;
  commit

let drained_at t ~now =
  prune t ~now;
  Queue.fold (fun acc d -> max acc d) now t.q

let occupancy t ~now =
  prune t ~now;
  Queue.length t.q
