lib/cpu/store_queue.ml: Queue
