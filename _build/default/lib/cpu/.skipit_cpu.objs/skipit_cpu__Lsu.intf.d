lib/cpu/lsu.mli: Instr Skipit_l1
