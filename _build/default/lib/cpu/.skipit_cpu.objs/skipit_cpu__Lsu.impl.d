lib/cpu/lsu.ml: Instr Message Skipit_cache Skipit_l1 Skipit_tilelink Store_queue
