lib/cpu/instr.ml: Format
