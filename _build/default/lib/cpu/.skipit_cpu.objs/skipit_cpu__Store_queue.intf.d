lib/cpu/store_queue.mli:
