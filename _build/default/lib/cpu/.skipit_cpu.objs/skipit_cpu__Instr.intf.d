lib/cpu/instr.mli: Format
