type t =
  | Load of { addr : int }
  | Store of { addr : int; value : int }
  | Cas of { addr : int; expected : int; desired : int }
  | Cbo_clean of { addr : int }
  | Cbo_flush of { addr : int }
  | Cbo_inval of { addr : int }
  | Cbo_zero of { addr : int }
  | Fence
  | Delay of int

let is_memory = function
  | Load _ | Store _ | Cas _ | Cbo_clean _ | Cbo_flush _ | Cbo_inval _ | Cbo_zero _ -> true
  | Fence | Delay _ -> false

let touches = function
  | Load { addr }
  | Store { addr; _ }
  | Cas { addr; _ }
  | Cbo_clean { addr }
  | Cbo_flush { addr }
  | Cbo_inval { addr }
  | Cbo_zero { addr } -> Some addr
  | Fence | Delay _ -> None

let pp ppf = function
  | Load { addr } -> Format.fprintf ppf "ld %#x" addr
  | Store { addr; value } -> Format.fprintf ppf "sd %#x <- %d" addr value
  | Cas { addr; expected; desired } -> Format.fprintf ppf "cas %#x %d->%d" addr expected desired
  | Cbo_clean { addr } -> Format.fprintf ppf "cbo.clean %#x" addr
  | Cbo_flush { addr } -> Format.fprintf ppf "cbo.flush %#x" addr
  | Cbo_inval { addr } -> Format.fprintf ppf "cbo.inval %#x" addr
  | Cbo_zero { addr } -> Format.fprintf ppf "cbo.zero %#x" addr
  | Fence -> Format.fprintf ppf "fence rw,rw"
  | Delay n -> Format.fprintf ppf "delay %d" n
