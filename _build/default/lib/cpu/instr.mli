(** The memory-instruction vocabulary of the simulated core.

    These are the RV64 operations relevant to the paper: ordinary loads and
    stores, AMO compare-and-swap, the two new cache-management operations
    CBO.CLEAN / CBO.FLUSH (§2.6), the strongest fence (FENCE RW,RW — the
    only fence implemented on BOOM, §4), and a compute delay standing in for
    non-memory work between accesses. *)

type t =
  | Load of { addr : int }
  | Store of { addr : int; value : int }
  | Cas of { addr : int; expected : int; desired : int }
  | Cbo_clean of { addr : int }
  | Cbo_flush of { addr : int }
  | Cbo_inval of { addr : int }  (** CMO extension: discard without writeback. *)
  | Cbo_zero of { addr : int }  (** CMO extension: zero-fill the line. *)
  | Fence
  | Delay of int  (** [Delay n]: n cycles of non-memory work. *)

val is_memory : t -> bool
val touches : t -> int option
(** The address the instruction operates on, if any. *)

val pp : Format.formatter -> t -> unit
