(** The store-queue (STQ) timing model of §3.2.

    BOOM's STQ lets a store retire as soon as the data cache accepts it —
    the entry drains in the background while the core runs ahead.  The LSU
    inserts each store's background completion time here; the only stalls
    the core sees are a full queue (capacity 32 in SonicBOOM) and fences,
    which must wait for the queue to drain.

    Values are completion cycles computed by the data cache; the queue
    itself is pure bookkeeping over them. *)

type t

val create : entries:int -> t

val insert : t -> now:int -> drain_at:int -> int
(** Insert a store draining at [drain_at]; returns the cycle the insert
    (i.e. the store's commit) happens — [now] unless the queue is full, in
    which case it is delayed until the oldest entry drains. *)

val drained_at : t -> now:int -> int
(** Earliest cycle (≥ [now]) by which every current entry has drained —
    what a fence waits for. *)

val occupancy : t -> now:int -> int
(** Entries still draining at [now]. *)

val capacity : t -> int
