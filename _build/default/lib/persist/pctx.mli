(** Persistence context: a flush-avoidance {!Strategy} composed with one of
    the three persistence {e algorithms} of §7.4.

    The paper evaluates each data structure under three disciplines for
    {e where} writebacks and fences are placed:

    - {b Automatic} [36, 73]: every shared-memory access is instrumented —
      loads and stores alike persist the line they touch, and every
      operation ends with a fence;
    - {b NVTraverse} [27]: the traversal prefix of an operation runs bare;
      only the {e critical} accesses (reads validating and writes performing
      the update) persist, with a fence before an update returns;
    - {b Manual} [23]: nothing is automatic; the data structure author
      placed explicit {!persist} calls at the provably sufficient points,
      plus the final fence.

    Data-structure code is written once against this context; the mode
    decides which accesses actually reach {!Strategy.persist}. *)

type mode = Automatic | Nvtraverse | Manual

val mode_name : mode -> string
val all_modes : mode list

type t

val make : Strategy.t -> mode -> t

val strategy : t -> Strategy.t
val mode : t -> mode
val stride : t -> int
(** Field stride for node layouts ({!Strategy.field_stride}). *)

val read_traverse : t -> int -> int
(** A read on the traversal path (persists only under [Automatic]). *)

val read_critical : t -> int -> int
(** A read the update depends on (persists under [Automatic] and
    [Nvtraverse]). *)

val write : t -> int -> int -> unit
(** A shared write (persists unless [Manual]). *)

val cas : t -> int -> expected:int -> desired:int -> bool
(** A linearizing CAS (persists on success unless [Manual]). *)

val persist : t -> int -> unit
(** Explicit persist point; only active under [Manual] (the other modes
    already persisted the access). *)

val commit : t -> updated:bool -> unit
(** Operation end: fence per the mode's rule (always under [Automatic],
    on updates otherwise). *)
