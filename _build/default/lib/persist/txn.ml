module T = Skipit_core.Thread
module Allocator = Skipit_mem.Allocator

let committed_flag = 1
let idle_flag = 0

(* Log layout: one header line ([status; count]) followed by one line per
   entry ([addr; value] — a whole line each so a single clean covers the
   entry).  The in-place targets are the user's own lines. *)
type t = { header : int; entries : int; capacity : int }

type txn = { owner : t; mutable writes : (int * int) list; mutable count : int }

let capacity t = t.capacity

let status_addr t = t.header
let count_addr t = t.header + 8
let entry_addr t i = t.entries + (i * 64)

let create alloc ~capacity =
  if capacity <= 0 then invalid_arg "Txn.create: capacity must be positive";
  let header = Allocator.alloc_line alloc ~line_bytes:64 in
  let entries = Allocator.alloc alloc ~align:64 (capacity * 64) in
  let t = { header; entries; capacity } in
  T.store (status_addr t) idle_flag;
  T.clean (status_addr t);
  T.fence ();
  t

let read txn addr =
  match List.assoc_opt addr txn.writes with
  | Some v -> v
  | None -> T.load addr

let write txn addr value =
  if addr land 7 <> 0 then invalid_arg "Txn.write: unaligned address";
  if (not (List.mem_assoc addr txn.writes)) && txn.count >= txn.owner.capacity then
    invalid_arg "Txn.write: transaction capacity exceeded";
  if not (List.mem_assoc addr txn.writes) then txn.count <- txn.count + 1;
  txn.writes <- (addr, value) :: List.remove_assoc addr txn.writes

(* The four commit phases (see the interface). *)
let phases t txn =
  let writes = List.rev txn.writes in
  [
    (fun () ->
      (* log *)
      List.iteri
        (fun i (addr, value) ->
          T.store (entry_addr t i) addr;
          T.store (entry_addr t i + 8) value;
          T.clean (entry_addr t i))
        writes;
      T.store (count_addr t) (List.length writes);
      T.fence ());
    (fun () ->
      (* mark: the durability point *)
      T.store (status_addr t) committed_flag;
      T.clean (status_addr t);
      T.fence ());
    (fun () ->
      (* apply *)
      List.iter
        (fun (addr, value) ->
          T.store addr value;
          T.clean addr)
        writes;
      T.fence ());
    (fun () ->
      (* clear *)
      T.store (status_addr t) idle_flag;
      T.clean (status_addr t);
      T.fence ());
  ]

let execute_steps t body ~steps =
  let txn = { owner = t; writes = []; count = 0 } in
  body txn;
  List.iteri (fun i phase -> if i < steps then phase ()) (phases t txn)

let execute t body = execute_steps t body ~steps:4

let recover t =
  if T.load (status_addr t) <> committed_flag then `Nothing
  else begin
    let count = T.load (count_addr t) in
    for i = 0 to count - 1 do
      let addr = T.load (entry_addr t i) in
      let value = T.load (entry_addr t i + 8) in
      T.store addr value;
      T.clean addr
    done;
    T.fence ();
    T.store (status_addr t) idle_flag;
    T.clean (status_addr t);
    T.fence ();
    `Replayed count
  end

let status_persisted t sys =
  if Skipit_core.System.persisted_word sys (status_addr t) = committed_flag then `Committed
  else `Idle
