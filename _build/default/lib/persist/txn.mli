(** Durable transactions over the simulated NVMM — the redo-log discipline
    the paper's writeback instructions exist to support (§1, §2.5).

    A transaction buffers writes, then commits with the canonical
    clean+fence protocol:

    + {b log}: append (address, value) pairs to the persistent redo log and
      write them back;
    + {b mark}: persist the COMMITTED flag — the durability point;
    + {b apply}: perform the writes in place and write them back;
    + {b clear}: persist the IDLE flag, retiring the log.

    A crash before {e mark} loses the transaction entirely; a crash after
    it is repaired by {!recover}, which replays the log.  Either way the
    transaction is atomic.  {!execute_steps} exposes the protocol's phases
    individually so tests can inject crashes between (and inside) them.

    All operations must run inside a {!Skipit_core.Thread} task. *)

type t
type txn

val capacity : t -> int

val create : Skipit_mem.Allocator.t -> capacity:int -> t
(** Allocate and initialise the log region ([capacity] = max writes per
    transaction). *)

val read : txn -> int -> int
(** Read through the transaction (sees its own buffered writes). *)

val write : txn -> int -> int -> unit
(** Buffer a write.  Raises [Invalid_argument] beyond [capacity] (or on a
    misaligned address). *)

val execute : t -> (txn -> unit) -> unit
(** Run the body and commit durably (all four phases). *)

val execute_steps : t -> (txn -> unit) -> steps:int -> unit
(** Crash-injection hook: run the body, then only the first [steps] commit
    phases (0–4).  [steps >= 4] is a full commit. *)

val recover : t -> [ `Replayed of int | `Nothing ]
(** After a crash: if the persisted log is marked COMMITTED, replay its
    entries durably and retire it, returning the entry count. *)

val status_persisted : t -> Skipit_core.System.t -> [ `Idle | `Committed ]
(** Untimed view of the persisted commit flag (tests). *)
