lib/persist/strategy.mli:
