lib/persist/txn.mli: Skipit_core Skipit_mem
