lib/persist/txn.ml: List Skipit_core Skipit_mem
