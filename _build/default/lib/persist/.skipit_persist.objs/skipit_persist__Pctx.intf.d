lib/persist/pctx.mli: Strategy
