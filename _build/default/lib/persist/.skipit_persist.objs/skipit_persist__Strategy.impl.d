lib/persist/strategy.ml: Printf Skipit_core
