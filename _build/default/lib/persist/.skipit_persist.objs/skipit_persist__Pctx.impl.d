lib/persist/pctx.ml: Strategy
