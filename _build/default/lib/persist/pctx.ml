type mode = Automatic | Nvtraverse | Manual

let mode_name = function
  | Automatic -> "automatic"
  | Nvtraverse -> "nvtraverse"
  | Manual -> "manual"

let all_modes = [ Automatic; Nvtraverse; Manual ]

type t = { s : Strategy.t; mode : mode }

let make s mode = { s; mode }
let strategy t = t.s
let mode t = t.mode
let stride t = t.s.Strategy.field_stride

let read_traverse t addr =
  let v = t.s.Strategy.read addr in
  (match t.mode with
   | Automatic -> t.s.Strategy.persist_load addr
   | Nvtraverse | Manual -> ());
  v

let read_critical t addr =
  let v = t.s.Strategy.read addr in
  (match t.mode with
   | Automatic | Nvtraverse -> t.s.Strategy.persist_load addr
   | Manual -> ());
  v

let write t addr value =
  t.s.Strategy.write addr value;
  match t.mode with
  | Automatic | Nvtraverse -> t.s.Strategy.persist_store addr
  | Manual -> ()

let cas t addr ~expected ~desired =
  let ok = t.s.Strategy.cas addr ~expected ~desired in
  (if ok then
     match t.mode with
     | Automatic | Nvtraverse -> t.s.Strategy.persist_store addr
     | Manual -> ());
  ok

let persist t addr =
  match t.mode with
  | Manual -> t.s.Strategy.persist_store addr
  | Automatic | Nvtraverse -> ()

let commit t ~updated =
  match t.mode with
  | Automatic -> t.s.Strategy.fence ()
  | Nvtraverse | Manual -> if updated then t.s.Strategy.fence ()
