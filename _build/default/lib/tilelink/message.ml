type line_data = int array

type wb_kind = Wb_clean | Wb_flush

let pp_wb_kind ppf k =
  Format.pp_print_string ppf (match k with Wb_clean -> "CLEAN" | Wb_flush -> "FLUSH")

type chan_a = Acquire_block of { addr : int; grow : Perm.grow }
type chan_b = Probe of { addr : int; cap : Perm.t }

type chan_c =
  | Probe_ack of { addr : int; shrink : Perm.shrink }
  | Probe_ack_data of { addr : int; shrink : Perm.shrink; data : line_data }
  | Release of { addr : int; shrink : Perm.shrink }
  | Release_data of { addr : int; shrink : Perm.shrink; data : line_data }
  | Root_release of { addr : int; kind : wb_kind; data : line_data option }
  | Root_inval of { addr : int }

type chan_d =
  | Grant_data of { addr : int; perm : Perm.t; dirty : bool; data : line_data }
  | Release_ack of { addr : int }
  | Root_release_ack of { addr : int }

type chan_e = Grant_ack of { addr : int }

let beats ~bus_bytes ~line_bytes ~has_data =
  if has_data then begin
    assert (bus_bytes > 0 && line_bytes mod bus_bytes = 0);
    line_bytes / bus_bytes
  end
  else 1

let chan_c_addr = function
  | Probe_ack { addr; _ }
  | Probe_ack_data { addr; _ }
  | Release { addr; _ }
  | Release_data { addr; _ }
  | Root_release { addr; _ } -> addr
  | Root_inval { addr } -> addr

let chan_c_has_data = function
  | Probe_ack _ | Release _ -> false
  | Probe_ack_data _ | Release_data _ -> true
  | Root_release { data; _ } -> Option.is_some data
  | Root_inval _ -> false

let pp_chan_a ppf (Acquire_block { addr; grow }) =
  Format.fprintf ppf "Acquire(%#x, %a)" addr Perm.pp_grow grow

let pp_chan_b ppf (Probe { addr; cap }) =
  Format.fprintf ppf "Probe(%#x, cap=%a)" addr Perm.pp cap

let pp_chan_c ppf = function
  | Probe_ack { addr; shrink } ->
    Format.fprintf ppf "ProbeAck(%#x, %a)" addr Perm.pp_shrink shrink
  | Probe_ack_data { addr; shrink; _ } ->
    Format.fprintf ppf "ProbeAckData(%#x, %a)" addr Perm.pp_shrink shrink
  | Release { addr; shrink } ->
    Format.fprintf ppf "Release(%#x, %a)" addr Perm.pp_shrink shrink
  | Release_data { addr; shrink; _ } ->
    Format.fprintf ppf "ReleaseData(%#x, %a)" addr Perm.pp_shrink shrink
  | Root_release { addr; kind; data } ->
    Format.fprintf ppf "RootRelease%a(%#x%s)" pp_wb_kind kind addr
      (if Option.is_some data then ", +data" else "")
  | Root_inval { addr } -> Format.fprintf ppf "RootInval(%#x)" addr

let pp_chan_d ppf = function
  | Grant_data { addr; perm; dirty; _ } ->
    Format.fprintf ppf "GrantData%s(%#x, %a)" (if dirty then "Dirty" else "") addr Perm.pp perm
  | Release_ack { addr } -> Format.fprintf ppf "ReleaseAck(%#x)" addr
  | Root_release_ack { addr } -> Format.fprintf ppf "RootReleaseAck(%#x)" addr

let pp_chan_e ppf (Grant_ack { addr }) = Format.fprintf ppf "GrantAck(%#x)" addr
