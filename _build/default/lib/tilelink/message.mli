(** TileLink-C message vocabulary, including the paper's extensions (§5.1, §6).

    The five channels of an agent-to-agent link carry:

    - {b A} (client→manager): [Acquire_block] — request a copy / an upgrade;
    - {b B} (manager→client): [Probe] — demand a downgrade;
    - {b C} (client→manager): [Probe_ack]/[Probe_ack_data], [Release]/
      [Release_data], and the paper's new [Root_release] (encoded on real
      hardware as a ProbeAck with param FLUSH/CLEAN to avoid widening the
      opcode bitvector);
    - {b D} (manager→client): [Grant_data] (with the paper's dirty variant
      {e GrantDataDirty}, §6), [Release_ack], and the new [Root_release_ack]
      (encoded as ReleaseAck with param ROOT);
    - {b E} (client→manager): [Grant_ack].

    This module is purely the message vocabulary plus the beat-cost model;
    routing is performed by the caches. *)

type line_data = int array
(** The payload of one cache line, as [words_per_line] 64-bit words. *)

(** Which writeback instruction a RootRelease performs. *)
type wb_kind = Wb_clean | Wb_flush

val pp_wb_kind : Format.formatter -> wb_kind -> unit

(** Channel A. *)
type chan_a = Acquire_block of { addr : int; grow : Perm.grow }

(** Channel B. *)
type chan_b = Probe of { addr : int; cap : Perm.t }

(** Channel C. *)
type chan_c =
  | Probe_ack of { addr : int; shrink : Perm.shrink }
  | Probe_ack_data of { addr : int; shrink : Perm.shrink; data : line_data }
  | Release of { addr : int; shrink : Perm.shrink }
  | Release_data of { addr : int; shrink : Perm.shrink; data : line_data }
  | Root_release of { addr : int; kind : wb_kind; data : line_data option }
  | Root_inval of { addr : int }
      (** CBO.INVAL support (CMO spec): demand that every cached copy of the
          line be discarded {e without} writeback.  Encoded like
          [Root_release] as a ProbeAck with an INVAL parameter. *)

(** Channel D. *)
type chan_d =
  | Grant_data of { addr : int; perm : Perm.t; dirty : bool; data : line_data }
      (** [dirty = true] is the paper's {e GrantDataDirty}: the granted block
          is not persisted, so the receiving L1 must clear its skip bit. *)
  | Release_ack of { addr : int }
  | Root_release_ack of { addr : int }

(** Channel E. *)
type chan_e = Grant_ack of { addr : int }

val beats : bus_bytes:int -> line_bytes:int -> has_data:bool -> int
(** Cycles needed to transfer a message over a link whose data bus is
    [bus_bytes] wide: data-bearing messages take [line_bytes / bus_bytes]
    beats (4 for the SonicBOOM's 16 B bus and 64 B lines, §5.2 state
    {e root_release_data}), header-only messages take 1. *)

val chan_c_addr : chan_c -> int
val chan_c_has_data : chan_c -> bool

val pp_chan_a : Format.formatter -> chan_a -> unit
val pp_chan_b : Format.formatter -> chan_b -> unit
val pp_chan_c : Format.formatter -> chan_c -> unit
val pp_chan_d : Format.formatter -> chan_d -> unit
val pp_chan_e : Format.formatter -> chan_e -> unit
