open Skipit_sim

type t = { a : Resource.t; c : Resource.t; d : Resource.t }

let create ~core =
  {
    a = Resource.create (Printf.sprintf "link-a-%d" core);
    c = Resource.create (Printf.sprintf "link-c-%d" core);
    d = Resource.create (Printf.sprintf "link-d-%d" core);
  }

let acquire_a t ~now = snd (Resource.acquire t.a ~now ~busy:1)
let acquire_c t ~now ~beats = snd (Resource.acquire t.c ~now ~busy:beats)
let acquire_d t ~now ~beats = snd (Resource.acquire t.d ~now ~busy:beats)
let c_busy_cycles t = Resource.total_busy_cycles t.c
