type t = Nothing | Branch | Trunk

let equal a b =
  match a, b with
  | Nothing, Nothing | Branch, Branch | Trunk, Trunk -> true
  | (Nothing | Branch | Trunk), _ -> false

let rank = function Nothing -> 0 | Branch -> 1 | Trunk -> 2
let compare a b = Int.compare (rank a) (rank b)
let includes have need = rank have >= rank need

let to_string = function Nothing -> "N" | Branch -> "B" | Trunk -> "T"
let pp ppf t = Format.pp_print_string ppf (to_string t)

type grow = N_to_B | N_to_T | B_to_T
type shrink = T_to_B | T_to_N | B_to_N | T_to_T | B_to_B | N_to_N

let grow_from = function N_to_B | N_to_T -> Nothing | B_to_T -> Branch
let grow_to = function N_to_B -> Branch | N_to_T | B_to_T -> Trunk

let shrink_from = function
  | T_to_B | T_to_N | T_to_T -> Trunk
  | B_to_N | B_to_B -> Branch
  | N_to_N -> Nothing

let shrink_to = function
  | T_to_B | B_to_B -> Branch
  | T_to_N | B_to_N | N_to_N -> Nothing
  | T_to_T -> Trunk

let grow_for_write = function
  | Nothing -> Some N_to_T
  | Branch -> Some B_to_T
  | Trunk -> None

let grow_for_read = function
  | Nothing -> Some N_to_B
  | Branch | Trunk -> None

let shrink_for ~from ~cap =
  match from, cap with
  | Trunk, Nothing -> T_to_N
  | Trunk, Branch -> T_to_B
  | Trunk, Trunk -> T_to_T
  | Branch, Nothing -> B_to_N
  | Branch, (Branch | Trunk) -> B_to_B
  | Nothing, (Nothing | Branch | Trunk) -> N_to_N

let pp_grow ppf g =
  Format.pp_print_string ppf
    (match g with N_to_B -> "NtoB" | N_to_T -> "NtoT" | B_to_T -> "BtoT")

let pp_shrink ppf s =
  Format.pp_print_string ppf
    (match s with
     | T_to_B -> "TtoB"
     | T_to_N -> "TtoN"
     | B_to_N -> "BtoN"
     | T_to_T -> "TtoT"
     | B_to_B -> "BtoB"
     | N_to_N -> "NtoN")
