(** Per-core TileLink link occupancy (§2.2, Fig. 3).

    Each L1↔L2 link has one physical wire set per channel, so concurrent
    senders serialize on it: eight FSHRs may be ready to release
    simultaneously, but their beats leave one at a time on channel C;
    likewise grants share channel D.  This module owns the per-channel
    occupancy; travel latency stays with the message-level costs.

    Channels B and E carry single-beat messages on dedicated wires and are
    never a bottleneck in the modelled system, so only A, C and D are
    tracked. *)

type t

val create : core:int -> t

val acquire_a : t -> now:int -> int
(** Occupy channel A for one header beat; returns the cycle the message has
    left the core. *)

val acquire_c : t -> now:int -> beats:int -> int
(** Occupy channel C for [beats] cycles (4 for a data-bearing release on
    the 16 B bus); returns the send-completion cycle. *)

val acquire_d : t -> now:int -> beats:int -> int
(** Occupy channel D (grants, acks into the core). *)

val c_busy_cycles : t -> int
(** Total cycles channel C has been occupied (utilisation accounting). *)
