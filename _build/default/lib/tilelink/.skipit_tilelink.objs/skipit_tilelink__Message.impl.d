lib/tilelink/message.ml: Format Option Perm
