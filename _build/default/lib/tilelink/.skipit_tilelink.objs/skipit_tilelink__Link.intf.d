lib/tilelink/link.mli:
