lib/tilelink/perm.mli: Format
