lib/tilelink/link.ml: Printf Resource Skipit_sim
