lib/tilelink/perm.ml: Format Int
