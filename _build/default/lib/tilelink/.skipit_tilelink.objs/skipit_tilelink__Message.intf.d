lib/tilelink/message.mli: Format Perm
