(** TileLink permission lattice and its correspondence to MESI (§2.2).

    A client holds one of three permission levels on a cache block:

    - [None]   — no copy (MESI Invalid);
    - [Branch] — read-only copy, possibly shared (MESI Shared);
    - [Trunk]  — exclusive read/write copy (MESI Exclusive, and MESI Modified
      once the local dirty bit is set).

    Coherence messages carry {e transition parameters}: a [grow] names the
    upgrade an Acquire requests, a [shrink] (a.k.a. cap/prune in the spec)
    names the downgrade a Probe demands or a Release/ProbeAck performs, and a
    [report] states a final permission without change.  The predicates here
    are the single source of truth for which transitions are legal; both the
    L1 and the L2 directory use them. *)

type t = Nothing | Branch | Trunk

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order [Nothing < Branch < Trunk]. *)

val includes : t -> t -> bool
(** [includes have need]: do [have] permissions suffice for an access that
    needs [need]? *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Permission-growth parameter carried by an Acquire (client asks the
    manager to raise it from the first level to the second). *)
type grow = N_to_B | N_to_T | B_to_T

(** Permission-shrink parameter carried by Probe (demand), ProbeAck and
    Release (report of a performed downgrade). *)
type shrink = T_to_B | T_to_N | B_to_N | T_to_T | B_to_B | N_to_N

val grow_from : grow -> t
val grow_to : grow -> t
val shrink_from : shrink -> t
(** The level the client held {e before} the downgrade (for the [X_to_X]
    reports, the unchanged level). *)

val shrink_to : shrink -> t

val grow_for_write : t -> grow option
(** [grow_for_write have] is the Acquire parameter needed to reach [Trunk]
    from [have], or [None] if already sufficient. *)

val grow_for_read : t -> grow option
(** Likewise for [Branch]. *)

val shrink_for : from:t -> cap:t -> shrink
(** [shrink_for ~from ~cap] is the downgrade report when a client at [from]
    is capped to at most [cap].  When [from] is already within [cap] this is
    one of the no-change reports. *)

val pp_grow : Format.formatter -> grow -> unit
val pp_shrink : Format.formatter -> shrink -> unit
