(** The probe_rdy / flush_rdy / wb_rdy handshake of §5.4.

    The flush unit, the probe unit and the writeback unit interlock through
    three ready signals so that a cache line is never simultaneously
    manipulated by a coherence probe (or an eviction) and an allocated FSHR:

    - [flush_rdy] is lowered when an FSHR is allocated and raised when it
      reaches {e root_release_ack} (metadata written, line released);
      probes and evictions must not proceed while it is low for their line;
    - [probe_rdy] is lowered the moment a probe arrives, {e before} the
      probe unit invalidates conflicting flush-queue entries; the flush
      queue may only dequeue (allocate an FSHR) while it is high;
    - [wb_rdy] plays [probe_rdy]'s role for the writeback unit's evictions.

    §5.4.1 argues the simultaneous-lowering race is benign: if a probe
    arrives in the same cycle as a dequeue, the probe unit re-checks
    [flush_rdy] one cycle later; the in-flight FSHR request wins, completes,
    raises [flush_rdy], and the probe proceeds — while [probe_rdy] being low
    prevents any further dequeue from overtaking it.  This module models
    that protocol cycle-by-cycle so the argument is executable; the timed
    {!Flush_unit} realises the same rules as completion-time arithmetic. *)

type agent = Probe_unit | Writeback_unit

type t

val create : unit -> t

(** Observable signal state. *)

val probe_rdy : t -> bool
val flush_rdy : t -> bool
val wb_rdy : t -> bool

(** Events, each advancing one cycle of the §5.4.1 protocol. *)

val begin_intrusion : t -> agent -> (unit, [ `Busy ]) result
(** A probe arrives ([Probe_unit]) or the MSHRs pick an eviction victim
    ([Writeback_unit]): lowers the corresponding ready signal.  Fails if
    that agent is already mid-intrusion. *)

val try_dequeue : t -> (unit, [ `Blocked ]) result
(** The flush queue attempts to allocate an FSHR: allowed only while
    [probe_rdy] and [wb_rdy] are both high (and no FSHR already holds the
    interlock — single-line view).  On success lowers [flush_rdy]. *)

val fshr_complete : t -> unit
(** The allocated FSHR reaches root_release_ack: raises [flush_rdy].
    Raises [Invalid_argument] if no FSHR holds the interlock. *)

val intrusion_may_proceed : t -> agent -> bool
(** The agent's one-cycle-later re-check of [flush_rdy] (§5.4.1): true when
    no FSHR holds the line. *)

val end_intrusion : t -> agent -> unit
(** The probe/eviction finished: raises the agent's ready signal. *)

val check_deadlock_free : t -> (unit, string) result
(** Structural check: some enabled transition always exists (an FSHR can
    complete, an intrusion can proceed, or the queue can dequeue). *)
