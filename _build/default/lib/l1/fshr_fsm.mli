(** The Flush Status Holding Register state machine of Fig. 7 (§5.2).

    A pure model of one FSHR: given the execution plan inferred at dequeue
    (did the request hit, was the line dirty, is it a clean or a flush), the
    FSM walks

    {v invalid → [meta_write] → [fill_buffer] → (root_release_data |
       root_release) → root_release_ack → invalid v}

    The five legal paths are:
    + hit, dirty, flush  — meta_write (invalidate), fill_buffer, release+data;
    + hit, dirty, clean  — meta_write (clear dirty), fill_buffer, release+data;
    + hit, clean line, flush — meta_write (invalidate), release without data;
    + hit, clean line, clean — no metadata change, release without data;
    + miss — release without data (the line may be dirty elsewhere, §5.2).

    This module is unit-testable in isolation; {!Flush_unit} drives it with
    real timing. *)

open Skipit_tilelink

type state =
  | Invalid
  | Meta_write
  | Fill_buffer
  | Root_release_data
  | Root_release
  | Root_release_ack

val pp_state : Format.formatter -> state -> unit
val equal_state : state -> state -> bool

type plan = { hit : bool; dirty : bool; kind : Message.wb_kind }

type meta_effect =
  | No_meta_change
  | Invalidate_line  (** CBO.FLUSH on a hit. *)
  | Clear_dirty  (** CBO.CLEAN on a dirty hit. *)

val meta_effect : plan -> meta_effect

val sends_data : plan -> bool
(** Whether the RootRelease carries the line (hit ∧ dirty). *)

val first_state : plan -> state
(** Successor of [Invalid] on accepting a request with this plan. *)

val next : plan -> state -> state
(** One transition.  Raises [Invalid_argument] from [Invalid] (use
    {!first_state}) — and [Root_release_ack] loops back to [Invalid] when the
    ack arrives. *)

val path : plan -> state list
(** The full visit sequence from acceptance to (and including)
    [Root_release_ack]. *)

val state_cycles :
  state ->
  meta_cycles:int ->
  fill_cycles:int ->
  data_beats:int ->
  int
(** Occupancy of each state: [Meta_write] = metadata-array access,
    [Fill_buffer] = data-array read (1 cycle with the §5.2 widened array),
    [Root_release_data] = [data_beats] bus beats (4 on a 16 B bus),
    [Root_release] = 1 beat, [Root_release_ack] = 0 (pure wait). *)
