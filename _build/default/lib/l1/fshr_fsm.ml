open Skipit_tilelink

type state =
  | Invalid
  | Meta_write
  | Fill_buffer
  | Root_release_data
  | Root_release
  | Root_release_ack

let pp_state ppf s =
  Format.pp_print_string ppf
    (match s with
     | Invalid -> "invalid"
     | Meta_write -> "meta_write"
     | Fill_buffer -> "fill_buffer"
     | Root_release_data -> "root_release_data"
     | Root_release -> "root_release"
     | Root_release_ack -> "root_release_ack")

let equal_state (a : state) (b : state) = a = b

type plan = { hit : bool; dirty : bool; kind : Message.wb_kind }

type meta_effect = No_meta_change | Invalidate_line | Clear_dirty

let meta_effect plan =
  if not plan.hit then No_meta_change
  else
    match plan.kind with
    | Message.Wb_flush -> Invalidate_line
    | Message.Wb_clean -> if plan.dirty then Clear_dirty else No_meta_change

let sends_data plan = plan.hit && plan.dirty

let needs_meta plan = meta_effect plan <> No_meta_change

let release_state plan = if sends_data plan then Root_release_data else Root_release

let first_state plan =
  if needs_meta plan then Meta_write
  else if sends_data plan then Fill_buffer
  else release_state plan

let next plan = function
  | Invalid -> invalid_arg "Fshr_fsm.next: use first_state from Invalid"
  | Meta_write -> if sends_data plan then Fill_buffer else release_state plan
  | Fill_buffer -> release_state plan
  | Root_release_data | Root_release -> Root_release_ack
  | Root_release_ack -> Invalid

let path plan =
  let rec walk s acc =
    match s with
    | Root_release_ack -> List.rev (Root_release_ack :: acc)
    | s -> walk (next plan s) (s :: acc)
  in
  walk (first_state plan) []

let state_cycles state ~meta_cycles ~fill_cycles ~data_beats =
  match state with
  | Invalid -> 0
  | Meta_write -> meta_cycles
  | Fill_buffer -> fill_cycles
  | Root_release_data -> data_beats
  | Root_release -> 1
  | Root_release_ack -> 0
