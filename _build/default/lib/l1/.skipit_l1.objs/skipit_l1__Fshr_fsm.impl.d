lib/l1/fshr_fsm.ml: Format List Message Skipit_tilelink
