lib/l1/dcache.mli: Flush_unit Message Params Perm Skipit_cache Skipit_l2 Skipit_sim Skipit_tilelink
