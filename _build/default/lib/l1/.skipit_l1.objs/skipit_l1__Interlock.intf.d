lib/l1/interlock.mli:
