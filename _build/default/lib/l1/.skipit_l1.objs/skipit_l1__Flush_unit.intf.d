lib/l1/flush_unit.mli: Flush_queue Fshr_fsm Message Params Perm Skipit_cache Skipit_sim Skipit_tilelink
