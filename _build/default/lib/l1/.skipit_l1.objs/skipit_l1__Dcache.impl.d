lib/l1/dcache.ml: Array Flush_unit Fshr_fsm Geometry Hashtbl Link Message Option Params Perm Printf Resource Skipit_cache Skipit_l2 Skipit_sim Skipit_tilelink Stats Store
