lib/l1/interlock.ml:
