lib/l1/flush_unit.ml: Admission Flush_queue Fshr_fsm List Message Option Params Printf Resource Skipit_cache Skipit_sim Skipit_tilelink Stats
