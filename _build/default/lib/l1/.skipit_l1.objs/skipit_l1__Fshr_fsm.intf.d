lib/l1/fshr_fsm.mli: Format Message Skipit_tilelink
