lib/l1/flush_queue.mli: Message Perm Skipit_tilelink
