lib/l1/flush_queue.ml: List Message Perm Queue Skipit_tilelink
