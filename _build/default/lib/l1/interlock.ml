type agent = Probe_unit | Writeback_unit

type t = {
  mutable probe_rdy : bool;
  mutable wb_rdy : bool;
  mutable flush_rdy : bool;  (* low while an FSHR holds the line *)
}

let create () = { probe_rdy = true; wb_rdy = true; flush_rdy = true }

let probe_rdy t = t.probe_rdy
let flush_rdy t = t.flush_rdy
let wb_rdy t = t.wb_rdy

let agent_rdy t = function Probe_unit -> t.probe_rdy | Writeback_unit -> t.wb_rdy

let set_agent_rdy t agent v =
  match agent with
  | Probe_unit -> t.probe_rdy <- v
  | Writeback_unit -> t.wb_rdy <- v

let begin_intrusion t agent =
  if not (agent_rdy t agent) then Error `Busy
  else begin
    set_agent_rdy t agent false;
    Ok ()
  end

let try_dequeue t =
  (* Dequeue requires both intruders quiescent AND no FSHR already active
     (single-line interlock view). *)
  if t.probe_rdy && t.wb_rdy && t.flush_rdy then begin
    t.flush_rdy <- false;
    Ok ()
  end
  else Error `Blocked

let fshr_complete t =
  if t.flush_rdy then invalid_arg "Interlock.fshr_complete: no FSHR holds the interlock";
  t.flush_rdy <- true

let intrusion_may_proceed t agent =
  ignore agent;
  t.flush_rdy

let end_intrusion t agent =
  if agent_rdy t agent then invalid_arg "Interlock.end_intrusion: agent was not intruding";
  set_agent_rdy t agent true

let check_deadlock_free t =
  (* The system can always advance:
     - an active FSHR can complete (raising flush_rdy);
     - with flush_rdy high, any intruder may proceed and then finish;
     - with all signals high, the queue may dequeue.
     The only conceivable stuck shape would be an intruder waiting on
     flush_rdy while the FSHR waits on the intruder — but FSHR completion
     never waits on probe_rdy/wb_rdy, so the cycle cannot close. *)
  let fshr_active = not t.flush_rdy in
  let intruder_active = (not t.probe_rdy) || not t.wb_rdy in
  match fshr_active, intruder_active with
  | true, _ -> Ok () (* FSHR completion is always enabled. *)
  | false, true -> Ok () (* intrusion_may_proceed is true. *)
  | false, false -> Ok () (* try_dequeue is enabled. *)
