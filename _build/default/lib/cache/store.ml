type 'a slot = {
  set_index : int;
  way : int;
  mutable tag : int;
  mutable valid : bool;
  mutable payload : 'a option;
  mutable last_use : int;
}

type policy = Lru | Random of Skipit_sim.Rng.t

type 'a t = { geom : Geometry.t; policy : policy; sets : 'a slot array array }

let create ?(policy = Lru) geom =
  let make_slot set_index way =
    { set_index; way; tag = 0; valid = false; payload = None; last_use = 0 }
  in
  let sets =
    Array.init geom.Geometry.sets (fun s -> Array.init geom.Geometry.ways (make_slot s))
  in
  { geom; policy; sets }

let geometry t = t.geom

let find t addr =
  let set = t.sets.(Geometry.index_of t.geom addr) in
  let tag = Geometry.tag_of t.geom addr in
  let rec scan i =
    if i >= Array.length set then None
    else begin
      let slot = set.(i) in
      if slot.valid && slot.tag = tag then Some slot else scan (i + 1)
    end
  in
  scan 0

let payload_exn slot =
  match slot.payload with
  | Some p -> p
  | None -> invalid_arg "Store.payload_exn: invalid slot"

let touch _t slot ~now = slot.last_use <- now

let victim t addr =
  let set = t.sets.(Geometry.index_of t.geom addr) in
  let rec find_invalid i =
    if i >= Array.length set then None
    else if not set.(i).valid then Some set.(i)
    else find_invalid (i + 1)
  in
  match find_invalid 0 with
  | Some slot -> slot
  | None -> (
    match t.policy with
    | Lru ->
      Array.fold_left
        (fun best slot -> if slot.last_use < best.last_use then slot else best)
        set.(0) set
    | Random rng -> set.(Skipit_sim.Rng.int rng (Array.length set)))

let fill t slot ~addr ~payload ~now =
  slot.tag <- Geometry.tag_of t.geom addr;
  slot.valid <- true;
  slot.payload <- Some payload;
  slot.last_use <- now

let invalidate slot =
  slot.valid <- false;
  slot.payload <- None

let slot_addr t slot =
  if not slot.valid then invalid_arg "Store.slot_addr: invalid slot";
  Geometry.addr_of t.geom ~tag:slot.tag ~index:slot.set_index

let iter_valid t f =
  Array.iter
    (fun set ->
      Array.iter (fun slot -> if slot.valid then f (slot_addr t slot) slot) set)
    t.sets

let count_valid t =
  let n = ref 0 in
  iter_valid t (fun _ _ -> incr n);
  !n

let invalidate_all t = Array.iter (Array.iter invalidate) t.sets
