(** Generic set-associative tag/metadata store with LRU replacement.

    Both the L1 metadata/data arrays (§3.3) and the L2 directory+BankedStore
    (§3.4) are instances: the per-line payload type ['a] carries whatever
    metadata that level needs (permission, dirty bit, skip bit, directory
    bits, line data).  Replacement picks an invalid way first; among valid
    ways the policy chooses: [Lru] (the default — deterministic and easiest
    to reason about in tests) or [Random] seeded pseudo-random — what the
    BOOM data cache actually implements. *)

(** Victim-selection policy among valid ways. *)
type policy = Lru | Random of Skipit_sim.Rng.t

type 'a slot = private {
  set_index : int;
  way : int;
  mutable tag : int;
  mutable valid : bool;
  mutable payload : 'a option;  (** [Some] iff [valid]. *)
  mutable last_use : int;
}

type 'a t

val create : ?policy:policy -> Geometry.t -> 'a t
val geometry : 'a t -> Geometry.t

val find : 'a t -> int -> 'a slot option
(** [find t addr] is the valid slot whose tag matches [addr]'s line. *)

val payload_exn : 'a slot -> 'a
(** Payload of a valid slot.  Raises [Invalid_argument] on an invalid slot. *)

val touch : 'a t -> 'a slot -> now:int -> unit
(** Record a use for LRU. *)

val victim : 'a t -> int -> 'a slot
(** [victim t addr] is the slot to (re)fill for [addr]'s set: an invalid way
    if one exists, else the LRU way (which the caller must first evict). *)

val fill : 'a t -> 'a slot -> addr:int -> payload:'a -> now:int -> unit
(** Install a line into [slot] (tag set from [addr], marked valid). *)

val invalidate : 'a slot -> unit

val slot_addr : 'a t -> 'a slot -> int
(** Line base address currently held by a valid slot. *)

val iter_valid : 'a t -> (int -> 'a slot -> unit) -> unit
(** [iter_valid t f] calls [f line_addr slot] for every valid slot. *)

val count_valid : 'a t -> int

val invalidate_all : 'a t -> unit
(** Drop every line — used to simulate a crash (volatile caches lose
    contents, §2.5). *)
