lib/cache/params.mli: Geometry
