lib/cache/store.ml: Array Geometry Skipit_sim
